// Evolving-database walkthrough: the MIDAS scenario from the tutorial's
// Section 2.4 — a compound database receiving daily batch updates (as
// PubChem and DrugBank do), with the VQI's canned patterns maintained
// incrementally instead of re-selected from scratch.
//
//	go run ./examples/evolving
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graph"
)

func main() {
	corpus := datagen.ChemicalCorpus(3, 200, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 20})
	opts := core.Options{Budget: core.Budget{Count: 8, MinSize: 4, MaxSize: 10}, Seed: 3}

	start := time.Now()
	m, err := core.NewMaintainer(corpus, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 0: built VQI over %d compounds in %v\n",
		m.Corpus().Len(), time.Since(start).Round(time.Millisecond))
	fmt.Println(core.Describe(m.Spec()))

	rng := rand.New(rand.NewSource(99))
	// Simulate a week: days 1-3 receive routine batches (same structural
	// regime); days 4-5 receive a surge of ring-heavy compounds, shifting
	// the graphlet distribution.
	for day := 1; day <= 5; day++ {
		var batch []*graph.Graph
		gen := datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 20}
		n := 8
		if day >= 4 {
			gen.RingBias = 0.95
			gen.MinNodes, gen.MaxNodes = 12, 28
			n = 50
		}
		for i := 0; i < n; i++ {
			batch = append(batch, datagen.Chemical(rng, fmt.Sprintf("day%d-%d", day, i), gen))
		}
		// A few deletions, like a curated database retiring entries.
		removals := m.Corpus().Names()[:3]

		t0 := time.Now()
		rep, err := m.ApplyBatch(batch, removals)
		if err != nil {
			log.Fatal(err)
		}
		kind := "minor — clusters/CSGs maintained, patterns untouched"
		if rep.Major {
			kind = fmt.Sprintf("MAJOR — %d candidates, %d swaps, score %.3f → %.3f",
				rep.Candidates, rep.Swaps, rep.ScoreBefore, rep.ScoreAfter)
		}
		fmt.Printf("day %d: +%d/-%d compounds, GFD distance %.4f, %s (%v)\n",
			day, rep.Added, rep.Removed, rep.GFDDistance, kind,
			time.Since(t0).Round(time.Millisecond))
	}

	// Final quality check: the maintained pattern set against the final
	// corpus state.
	q, err := core.EvaluateQuality(m.Spec(), m.Corpus(), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal corpus: %d compounds; maintained pattern set quality: coverage=%.3f diversity=%.3f cogload=%.3f\n",
		m.Corpus().Len(), q.Coverage, q.Diversity, q.CognitiveLoad)
	fmt.Println("(MIDAS's guarantee: the maintained set scores at least as high as the stale one)")
}
