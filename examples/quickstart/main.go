// Quickstart: build a data-driven VQI over a synthetic compound database
// in a few lines, inspect its panels, and run one query through a session.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/datagen"
)

func main() {
	// 1. A graph repository: 200 chemical-compound-like data graphs.
	corpus := datagen.ChemicalCorpus(42, 200, datagen.ChemicalOptions{})

	// 2. Build the VQI: the Attribute Panel is scanned from the data, the
	//    Pattern Panel's canned patterns are selected by CATAPULT under a
	//    budget of 8 patterns of 4-10 edges.
	spec, err := core.BuildCorpusVQI(corpus, core.Options{
		Budget: core.Budget{Count: 8, MinSize: 4, MaxSize: 10},
		Seed:   1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(core.Describe(spec))
	fmt.Println("\nAttribute Panel node labels:", spec.Attribute.NodeLabels)
	fmt.Println("\nCanned patterns:")
	for i, p := range spec.Patterns.Canned {
		fmt.Printf("  %d. %s: %d nodes, %d edges (cognitive load %.1f)\n",
			i+1, p.Source, len(p.NodeLabels), len(p.Edges), p.CognitiveLoad)
	}

	// 3. Quality of the selected pattern set.
	q, err := core.EvaluateQuality(spec, corpus, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nPattern set quality: coverage=%.3f diversity=%.3f cogload=%.3f\n",
		q.Coverage, q.Diversity, q.CognitiveLoad)

	// 4. Draw a query interactively: a carbon bonded to a nitrogen.
	session := core.OpenSession(spec, corpus)
	c := session.AddNode("C")
	n := session.AddNode("N")
	if err := session.AddEdge(c, n, "s"); err != nil {
		log.Fatal(err)
	}
	res := session.Run()
	fmt.Printf("\nQuery C-N matched %d of %d compounds (in %d formulation steps)\n",
		len(res.MatchedGraphs), corpus.Len(), session.Actions)
}
