// Beyond graphs: the tutorial's Section 2.5 argues the data-driven VQI
// paradigm transfers to sketch-based time-series querying — instead of
// making users browse a huge series collection for shapes worth sketching,
// mine the collection for representative motifs and expose them as canned
// sketches. This example builds such a Sketch Panel over a synthetic
// sensor archive and answers a sketch query with it.
//
//	go run ./examples/timeseries
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"strings"

	"repro/internal/timeseries"
)

func main() {
	col := buildArchive()
	fmt.Printf("archive: %d series of %d points each\n",
		len(col.Series), len(col.Series[0].Values))

	cfg := timeseries.Config{Window: 48, Segments: 8, Alphabet: 4, Budget: 6}
	panel, err := timeseries.BuildSketchPanel(col, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSketch Panel (window %d):\n", panel.Window)
	for i, m := range panel.Sketches {
		fmt.Printf("  %d. word=%s occurrences=%d series-coverage=%.0f%% complexity=%.2f\n     %s\n",
			i+1, m.Word, m.Count, 100*m.SeriesCoverage, m.Complexity(), sparkline(m.Shape))
	}

	// Bottom-up search: the user picks the first canned sketch instead of
	// drawing from scratch, exactly like stamping a canned pattern.
	best := panel.Sketches[0]
	matches := timeseries.QuerySketch(col, best.Shape, 0.35, 0)
	perSeries := map[string]int{}
	for _, m := range matches {
		perSeries[m.Series]++
	}
	fmt.Printf("\nquerying with canned sketch %q: %d matches across %d series\n",
		best.Word, len(matches), len(perSeries))

	// Top-down search: the user sketches a spike by hand.
	spike := make([]float64, 48)
	for i := range spike {
		spike[i] = math.Exp(-math.Pow(float64(i-24)/4, 2))
	}
	spikes := timeseries.QuerySketch(col, spike, 0.4, 10)
	fmt.Printf("hand-drawn spike sketch: %d matches (first in %q at offset %d)\n",
		len(spikes), first(spikes).Series, first(spikes).Offset)
}

func first(m []timeseries.Match) timeseries.Match {
	if len(m) == 0 {
		return timeseries.Match{Series: "none"}
	}
	return m[0]
}

// buildArchive mixes seasonal, trending, and spiky sensors.
func buildArchive() *timeseries.Collection {
	rng := rand.New(rand.NewSource(4))
	col := &timeseries.Collection{}
	for s := 0; s < 8; s++ { // daily-cycle sensors
		vals := make([]float64, 480)
		for i := range vals {
			vals[i] = math.Sin(2*math.Pi*float64(i)/48) + 0.1*rng.NormFloat64()
		}
		col.Add(fmt.Sprintf("seasonal-%d", s), vals)
	}
	for s := 0; s < 6; s++ { // drifting sensors
		vals := make([]float64, 480)
		level := 0.0
		for i := range vals {
			level += 0.02 + 0.05*rng.NormFloat64()
			vals[i] = level
		}
		col.Add(fmt.Sprintf("drift-%d", s), vals)
	}
	for s := 0; s < 6; s++ { // spiky sensors
		vals := make([]float64, 480)
		for i := range vals {
			vals[i] = 0.1 * rng.NormFloat64()
		}
		for k := 0; k < 8; k++ {
			c := 30 + rng.Intn(420)
			for i := -6; i <= 6; i++ {
				vals[c+i] += 3 * math.Exp(-math.Pow(float64(i)/3, 2))
			}
		}
		col.Add(fmt.Sprintf("spiky-%d", s), vals)
	}
	return col
}

// sparkline renders a shape as a tiny ASCII curve.
func sparkline(shape []float64) string {
	levels := []byte("_.-~^")
	min, max := shape[0], shape[0]
	for _, v := range shape {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range shape {
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(levels)-1))
		}
		b.WriteByte(levels[idx])
	}
	return b.String()
}
