// Beyond VQIs: the tutorial's Section 2.5 suggests that canned patterns —
// high-coverage, diverse, cognitively light — make good building blocks
// for visualization-friendly graph summaries. This example mines canned
// patterns from a network with TATTOO and then uses them to contract the
// network into a readable summary.
//
//	go run ./examples/summarize
package main

import (
	"fmt"
	"log"

	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/summary"
	"repro/internal/tattoo"
)

func main() {
	g := datagen.WattsStrogatz(13, 2000, 6, 0.08)
	fmt.Printf("network: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	res, err := tattoo.Select(g, tattoo.Config{
		Budget: pattern.Budget{Count: 8, MinSize: 4, MaxSize: 10},
		Seed:   13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TATTOO selected %d canned patterns (classes: %v)\n",
		len(res.Patterns), res.SelectedClasses)

	sum, err := summary.Summarize(g, res.Patterns, summary.Options{MaxInstancesPerPattern: 400})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsummary: %d nodes, %d edges (%d supernodes)\n",
		sum.Summary.NumNodes(), sum.Summary.NumEdges(), len(sum.Supernodes))
	fmt.Printf("node reduction %.1f%%, edge reduction %.1f%%, pattern coverage %.1f%%\n",
		100*sum.NodeReduction, 100*sum.EdgeReduction, 100*sum.Coverage(g))

	perPattern := map[int]int{}
	for _, sn := range sum.Supernodes {
		perPattern[sn.Pattern]++
	}
	fmt.Println("\ncontractions per pattern:")
	for pi, p := range res.Patterns {
		if perPattern[pi] > 0 {
			fmt.Printf("  %-24s ×%d (%d nodes each)\n",
				res.SelectedClasses[pi], perPattern[pi], p.Nodes())
		}
	}
	fmt.Println("\nIn contrast to classical topological summaries, every supernode here")
	fmt.Println("is a shape an end user already knows from the VQI's Pattern Panel.")
}
