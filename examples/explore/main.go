// Results exploration: what happens after the user presses Run. The
// filter-verify index answers the query at interactive latency, the
// matches are faceted by the canned patterns they contain (data-derived
// drill-down), one result is highlighted to show *why* it matched, and the
// highlighted view is exported as Graphviz DOT for inspection.
//
//	go run ./examples/explore
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/results"
	"repro/internal/vqi"
)

func main() {
	corpus := datagen.ChemicalCorpus(17, 500, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 24})
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 6, MinSize: 4, MaxSize: 10}, Seed: 17})
	if err != nil {
		log.Fatal(err)
	}

	// Index the corpus for interactive Results Panel latency.
	t0 := time.Now()
	idx := gindex.Build(corpus)
	fmt.Printf("indexed %d compounds in %v\n", corpus.Len(), time.Since(t0).Round(time.Microsecond))

	// The user's query: an aromatic carbon ring fragment with a nitrogen.
	q := graph.New("query")
	c1 := q.AddNode("C")
	c2 := q.AddNode("C")
	n := q.AddNode("N")
	q.MustAddEdge(c1, c2, "a")
	q.MustAddEdge(c2, n, "s")

	t1 := time.Now()
	res := idx.Search(q, pattern.MatchOptions())
	fmt.Printf("query answered in %v: %d matches (%d of %d graphs verified after filtering)\n",
		time.Since(t1).Round(time.Microsecond), len(res.Matches), res.Candidates, res.Scanned)

	// Facet the matches by the VQI's canned patterns.
	panel, err := spec.AllPatterns()
	if err != nil {
		log.Fatal(err)
	}
	canned := panel[len(spec.Patterns.Basic):]
	facets, rest := results.Facets(res.Matches, corpus, canned, pattern.MatchOptions())
	fmt.Println("\nfacets (matches grouped by canned pattern):")
	for _, f := range facets {
		fmt.Printf("  contains %-16s %d graphs\n", spec.Patterns.Canned[f.PatternIndex].Name, len(f.Graphs))
	}
	fmt.Printf("  (no canned pattern)   %d graphs\n", len(rest))

	// Highlight the first match and export it for Graphviz.
	if len(res.Matches) == 0 {
		return
	}
	g, _ := corpus.ByName(res.Matches[0])
	view, ok := results.BuildView(q, g, 400, 400, 17, pattern.MatchOptions())
	if !ok {
		log.Fatal("match did not re-verify")
	}
	fmt.Printf("\nhighlighting match in %s: nodes %v, %d highlighted edges\n",
		g.Name(), view.Highlight.Nodes, len(view.Highlight.Edges))
	fmt.Printf("result drawing: %d crossings, visual complexity %.2f\n",
		view.Metrics.Crossings, view.Metrics.VisualComplexity)

	out, err := os.Create("result.dot")
	if err != nil {
		log.Fatal(err)
	}
	defer out.Close()
	if err := gio.WriteDOTHighlighted(out, g, view.Highlight.Nodes, view.Highlight.Edges); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote result.dot — render with: dot -Tsvg result.dot -o result.svg")
}
