// Chemical-database walkthrough: the CATAPULT scenario from the tutorial's
// Section 2.3 — a large collection of small/medium compound graphs, a
// data-driven VQI built over it, and a head-to-head usability comparison
// against two manual interfaces (basic-only and a chemistry sketcher with
// hard-coded motifs), using the simulated-user workload.
//
//	go run ./examples/chemical
package main

import (
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/baseline"
	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/simulate"
	"repro/internal/vqi"
)

func main() {
	corpus := datagen.ChemicalCorpus(7, 400, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 30})
	stats := corpus.Stats()
	fmt.Printf("corpus: %d compounds, %.1f atoms and %.1f bonds on average\n",
		stats.Graphs, stats.MeanNodes, stats.MeanEdges)

	budget := pattern.Budget{Count: 10, MinSize: 4, MaxSize: 12}

	// Data-driven VQI via CATAPULT.
	start := time.Now()
	ddSpec, res, err := vqi.BuildFromCorpus(corpus, catapult.Config{Budget: budget, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nCATAPULT: %d clusters, %d candidates, %d patterns selected in %v (coverage %.3f)\n",
		res.Clustering.K, res.Candidates, len(res.Patterns),
		time.Since(start).Round(time.Millisecond), res.Coverage)

	// Manual comparisons.
	manBasic, _ := vqi.BuildManual(vqi.PresetBasicOnly, corpus)
	manChem, _ := vqi.BuildManual(vqi.PresetChemistry, corpus)

	// Pattern-set quality against baselines.
	opts := pattern.MatchOptions()
	rnd, _ := baseline.Random(corpus, budget, 7)
	frq, _ := baseline.TopFrequent(corpus, budget, 7, 0)
	fmt.Println("\npattern-set quality (coverage / diversity / cognitive load):")
	for _, row := range []struct {
		name string
		set  []*pattern.Pattern
	}{
		{"catapult", res.Patterns},
		{"top-frequent", frq},
		{"random", rnd},
	} {
		fmt.Printf("  %-14s %.3f / %.3f / %.3f\n", row.name,
			pattern.SetEdgeCoverage(row.set, corpus, opts),
			pattern.SetDiversity(row.set),
			pattern.SetCognitiveLoad(row.set, budget))
	}

	// Usability: simulated users formulating 100 subgraph queries.
	wl, err := simulate.CorpusWorkload(corpus, 100, 5, 11, 7)
	if err != nil {
		log.Fatal(err)
	}
	cm := simulate.DefaultCostModel()
	type entry struct {
		name string
		sum  simulate.Summary
	}
	var rows []entry
	for _, s := range []struct {
		name string
		spec *vqi.Spec
	}{
		{"manual basic-only", manBasic},
		{"manual chemistry", manChem},
		{"data-driven CATAPULT", ddSpec},
	} {
		panel, _ := s.spec.AllPatterns()
		rows = append(rows, entry{s.name, simulate.Evaluate(wl, panel, cm)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].sum.MeanSteps > rows[j].sum.MeanSteps })
	fmt.Println("\nusability over 100 simulated query formulations:")
	for _, r := range rows {
		fmt.Printf("  %-22s %.1f steps, %.1fs, %.0f%% of edges via patterns\n",
			r.name, r.sum.MeanSteps, r.sum.MeanTime, 100*r.sum.PatternEdgeShare)
	}
	fmt.Println("\n(the data-driven interface should need the fewest steps — the tutorial's headline usability claim)")

	// The seven usability criteria of Section 2.1, scored from proxies.
	baseline := simulate.Evaluate(wl, nil, simulate.ErrorAwareCostModel())
	fmt.Println("\nusability criteria (0-1, higher better):")
	fmt.Println("  interface              learn  flex  robust  effic  memor  errors  satisf")
	for _, r := range []struct {
		name string
		spec *vqi.Spec
	}{
		{"manual basic-only", manBasic},
		{"data-driven CATAPULT", ddSpec},
	} {
		panel, _ := r.spec.AllPatterns()
		sum := simulate.Evaluate(wl, panel, simulate.ErrorAwareCostModel())
		crit := simulate.Score(simulate.CriteriaInputs{
			Summary: sum, Baseline: baseline, PanelSize: len(panel), PanelComplexity: 0.4,
		})
		fmt.Printf("  %-22s %.2f   %.2f  %.2f    %.2f   %.2f   %.2f    %.2f\n",
			r.name, crit.Learnability, crit.Flexibility, crit.Robustness,
			crit.Efficiency, crit.Memorability, crit.Errors, crit.Satisfaction)
	}
}
