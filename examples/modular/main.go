// Modular-architecture walkthrough: the Tzanikos et al. scenario from the
// tutorial's Section 2.3 — the canned pattern selection problem decomposed
// into four swappable stages (similarity, clustering, merging, extraction),
// compared across configurations on the same corpus.
//
//	go run ./examples/modular
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datagen"
	"repro/internal/modular"
	"repro/internal/pattern"
)

func main() {
	corpus := datagen.ChemicalCorpus(5, 250, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 20})
	budget := pattern.Budget{Count: 8, MinSize: 4, MaxSize: 10}
	opts := pattern.MatchOptions()

	configs := []struct {
		name string
		p    modular.Pipeline
	}{
		{"CATAPULT-equivalent", modular.CatapultEquivalent(budget, 5)},
		{"graphlet features", modular.Pipeline{
			Similarity: modular.GraphletSimilarity{}, Clusterer: modular.KMedoidsClusterer{},
			Merger: modular.ClosureMerger{}, Extractor: modular.WalkExtractor{Walks: 120},
			Budget: budget, Seed: 5}},
		{"cheap labels + agglomerative", modular.Pipeline{
			Similarity: modular.LabelSimilarity{}, Clusterer: modular.AgglomerativeClusterer{},
			Merger: modular.ClosureMerger{}, Extractor: modular.WalkExtractor{Walks: 120},
			Budget: budget, Seed: 5}},
		{"no clustering, no closure", modular.Pipeline{
			Similarity: modular.LabelSimilarity{}, Clusterer: modular.SingleCluster{},
			Merger: modular.UnionMerger{}, Extractor: modular.WalkExtractor{Walks: 120},
			Budget: budget, Seed: 5}},
		{"deterministic heaviest-subgraph", modular.Pipeline{
			Similarity: modular.GraphletSimilarity{}, Clusterer: modular.KMedoidsClusterer{},
			Merger: modular.ClosureMerger{}, Extractor: modular.HeaviestSubgraphExtractor{},
			Budget: budget, Seed: 5}},
	}

	fmt.Println("pipeline                          time     coverage  diversity  patterns")
	for _, cfg := range configs {
		t0 := time.Now()
		res, err := cfg.p.Run(corpus)
		if err != nil {
			log.Fatalf("%s: %v", cfg.name, err)
		}
		fmt.Printf("%-32s  %-7v  %.3f     %.3f      %d\n",
			cfg.name, time.Since(t0).Round(time.Millisecond),
			pattern.SetEdgeCoverage(res.Patterns, corpus, opts),
			pattern.SetDiversity(res.Patterns),
			len(res.Patterns))
	}
	fmt.Println("\nThe architectural point: each stage can be swapped independently —")
	fmt.Println("cheaper similarity trades quality for speed; skipping clustering and")
	fmt.Println("closure (disjoint union) loses the weight signal the walks rely on.")
}
