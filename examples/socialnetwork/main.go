// Large-network walkthrough: the TATTOO scenario from the tutorial's
// Section 2.3 — a single large network, its truss decomposition into a
// triangle-rich region G_T and a sparse region G_O, topology-classified
// candidate generation, and the selected canned pattern set.
//
//	go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/simulate"
	"repro/internal/tattoo"
	"repro/internal/vqi"
)

func main() {
	// A 30k-node preferential-attachment network: hubs, triangles around
	// them, long sparse chains in the periphery — the mixture TATTOO's
	// truss split separates.
	g := datagen.BarabasiAlbert(11, 30000, 3)
	fmt.Printf("network: %d nodes, %d edges, max degree %d\n",
		g.NumNodes(), g.NumEdges(), g.MaxDegree())

	budget := pattern.Budget{Count: 10, MinSize: 4, MaxSize: 12}
	start := time.Now()
	spec, res, err := vqi.BuildFromNetwork(g, tattoo.Config{Budget: budget, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nTATTOO selected %d patterns in %v\n",
		len(res.Patterns), time.Since(start).Round(time.Millisecond))
	fmt.Printf("truss split: %d edges in G_T (trussness ≥ 3), %d in G_O, max trussness %d\n",
		res.TrussStats.TrussEdges, res.TrussStats.ObliviousEdge, res.TrussStats.MaxTrussness)

	fmt.Println("\ncandidates per topology class (after the query-log taxonomy):")
	for _, cls := range tattoo.Classes() {
		if n := res.ClassCounts[cls]; n > 0 {
			fmt.Printf("  %-14s %d\n", cls, n)
		}
	}
	fmt.Println("\nselected patterns:")
	for i, p := range res.Patterns {
		fmt.Printf("  %2d. %-22s %d nodes, %d edges (class %s)\n",
			i+1, p.Source, p.Nodes(), p.Size(), res.SelectedClasses[i])
	}
	fmt.Printf("\nsampled-instance coverage of the network: %.3f\n", res.Coverage)

	// Bottom-up search in action: a user who has no query in mind stamps
	// a canned pattern and immediately gets real matches.
	session := vqi.NewSession(spec, vqi.DataSource{Corpus: pattern.SingletonCorpus(g), Network: true})
	if _, err := session.StampPattern(3); err != nil { // first canned pattern
		log.Fatal(err)
	}
	r := session.Run()
	fmt.Printf("\nstamping the first canned pattern and running it: %d embeddings (1 formulation step)\n",
		r.Embeddings)

	// Usability on network queries.
	wl, err := simulate.NetworkWorkload(g, 60, 5, 10, 11)
	if err != nil {
		log.Fatal(err)
	}
	panel, _ := spec.AllPatterns()
	cm := simulate.DefaultCostModel()
	dd := simulate.Evaluate(wl, panel, cm)
	manual := simulate.Evaluate(wl, nil, cm)
	fmt.Printf("\nusability over 60 simulated queries: data-driven %.1f steps vs manual %.1f steps\n",
		dd.MeanSteps, manual.MeanSteps)
}
