package repro

// One testing.B benchmark per experiment in EXPERIMENTS.md. These exercise
// the same code paths as cmd/benchvqi at reduced sizes so `go test
// -bench=.` finishes in minutes; the harness regenerates the full tables.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/baseline"
	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/layout"
	"repro/internal/midas"
	"repro/internal/modular"
	"repro/internal/pattern"
	"repro/internal/simulate"
	"repro/internal/summary"
	"repro/internal/tattoo"
	"repro/internal/timeseries"
	"repro/internal/truss"
	"repro/internal/vqi"
)

func benchCorpus(n int) *graph.Corpus {
	return datagen.ChemicalCorpus(1, n, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 20})
}

func benchBudget() pattern.Budget {
	return pattern.Budget{Count: 8, MinSize: 4, MaxSize: 10}
}

// BenchmarkE1SelectionTimeCorpus measures CATAPULT end-to-end selection
// time per corpus size (experiment E1).
func BenchmarkE1SelectionTimeCorpus(b *testing.B) {
	for _, n := range []int{100, 200, 400} {
		corpus := benchCorpus(n)
		b.Run(fmt.Sprintf("graphs=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := catapult.Select(corpus, catapult.Config{Budget: benchBudget(), Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE2CoverageVsBudget measures pattern-set edge-coverage
// computation, the dominant cost of the E2 quality sweep.
func BenchmarkE2CoverageVsBudget(b *testing.B) {
	corpus := benchCorpus(150)
	res, err := catapult.Select(corpus, catapult.Config{Budget: benchBudget(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opts := pattern.MatchOptions()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pattern.SetEdgeCoverage(res.Patterns, corpus, opts)
	}
}

// BenchmarkE3DiversityCogload measures the diversity and cognitive-load
// scoring of a selected set (experiment E3).
func BenchmarkE3DiversityCogload(b *testing.B) {
	corpus := benchCorpus(150)
	res, err := catapult.Select(corpus, catapult.Config{Budget: benchBudget(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pattern.SetDiversity(res.Patterns)
		pattern.SetCognitiveLoad(res.Patterns, benchBudget())
	}
}

// BenchmarkE4FormulationSteps measures the simulated-user workload
// evaluation comparing manual and data-driven panels (experiment E4).
func BenchmarkE4FormulationSteps(b *testing.B) {
	corpus := benchCorpus(100)
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{Budget: benchBudget(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	panel, err := spec.AllPatterns()
	if err != nil {
		b.Fatal(err)
	}
	wl, err := simulate.CorpusWorkload(corpus, 30, 5, 9, 1)
	if err != nil {
		b.Fatal(err)
	}
	cm := simulate.DefaultCostModel()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		simulate.Evaluate(wl, panel, cm)
		simulate.Evaluate(wl, nil, cm)
	}
}

// BenchmarkE5TattooScale measures TATTOO end-to-end selection per network
// size (experiment E5).
func BenchmarkE5TattooScale(b *testing.B) {
	for _, n := range []int{2000, 8000} {
		g := datagen.BarabasiAlbert(1, n, 3)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tattoo.Select(g, tattoo.Config{Budget: benchBudget(), Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE6TrussSplit measures the k-truss decomposition underlying the
// G_T/G_O split (experiment E6).
func BenchmarkE6TrussSplit(b *testing.B) {
	for _, n := range []int{5000, 20000} {
		g := datagen.WattsStrogatz(1, n, 6, 0.1)
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				truss.Decompose(g)
			}
		})
	}
}

// BenchmarkE7MidasVsRerun measures one MIDAS batch maintenance against the
// CATAPULT re-run it replaces (experiment E7).
func BenchmarkE7MidasVsRerun(b *testing.B) {
	cfg := catapult.Config{Budget: benchBudget(), Seed: 1}
	b.Run("midas-apply", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			corpus := benchCorpus(150)
			st, err := midas.Build(corpus, midas.Config{Catapult: cfg})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(i)))
			var added []*graph.Graph
			for j := 0; j < 15; j++ {
				added = append(added, datagen.Chemical(rng, fmt.Sprintf("b%d-%d", i, j),
					datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 22, RingBias: 0.9}))
			}
			removed := corpus.Names()[:5]
			b.StartTimer()
			if _, err := st.Apply(added, removed); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rerun-from-scratch", func(b *testing.B) {
		corpus := benchCorpus(160)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := catapult.Select(corpus, cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE8MinorMajor measures the graphlet-frequency-distribution
// computation that classifies batch updates (experiment E8).
func BenchmarkE8MinorMajor(b *testing.B) {
	corpus := benchCorpus(200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graphlet.CorpusGFD(corpus)
	}
}

// BenchmarkE9AblationScore measures CATAPULT under each scoring variant
// (experiment E9).
func BenchmarkE9AblationScore(b *testing.B) {
	corpus := benchCorpus(120)
	for _, row := range []struct {
		name string
		wt   pattern.Weights
	}{
		{"coverage-only", pattern.Weights{Coverage: 1}},
		{"full-score", pattern.DefaultWeights()},
	} {
		b.Run(row.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := catapult.Select(corpus, catapult.Config{Budget: benchBudget(), Weights: row.wt, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10ModularSwap measures two modular pipeline configurations
// (experiment E10).
func BenchmarkE10ModularSwap(b *testing.B) {
	corpus := benchCorpus(120)
	for _, row := range []struct {
		name string
		p    modular.Pipeline
	}{
		{"catapult-equivalent", modular.CatapultEquivalent(benchBudget(), 1)},
		{"label+single+union", modular.Pipeline{
			Similarity: modular.LabelSimilarity{}, Clusterer: modular.SingleCluster{},
			Merger: modular.UnionMerger{}, Extractor: modular.WalkExtractor{Walks: 120},
			Budget: benchBudget(), Seed: 1}},
	} {
		b.Run(row.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := row.p.Run(corpus); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11Aesthetics measures layout computation plus aesthetic metric
// extraction for a pattern panel (experiment E11).
func BenchmarkE11Aesthetics(b *testing.B) {
	corpus := benchCorpus(100)
	res, err := catapult.Select(corpus, catapult.Config{Budget: benchBudget(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j, p := range res.Patterns {
			l := layout.FruchtermanReingold(p.G, vqi.ThumbSize, vqi.ThumbSize, 120, int64(j))
			layout.Measure(p.G, l, 0)
		}
	}
}

// BenchmarkE12SketchPanel measures data-driven sketch-panel construction
// for time series (experiment E12).
func BenchmarkE12SketchPanel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	col := &timeseries.Collection{}
	for s := 0; s < 30; s++ {
		vals := make([]float64, 480)
		for i := range vals {
			vals[i] = float64((i+s)%48)/48 + 0.1*rng.NormFloat64()
		}
		col.Add(fmt.Sprintf("s%d", s), vals)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := timeseries.BuildSketchPanel(col, timeseries.Config{Budget: 8}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE13Summarize measures pattern-based graph summarization
// (experiment E13).
func BenchmarkE13Summarize(b *testing.B) {
	g := datagen.WattsStrogatz(1, 1500, 6, 0.08)
	res, err := tattoo.Select(g, tattoo.Config{Budget: benchBudget(), Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := summary.Summarize(g, res.Patterns, summary.Options{MaxInstancesPerPattern: 300}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselineTopFrequent measures the frequent-subgraph baseline E1
// compares against.
func BenchmarkBaselineTopFrequent(b *testing.B) {
	corpus := benchCorpus(100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := baseline.TopFrequent(corpus, benchBudget(), 1, 100); err != nil {
			b.Fatal(err)
		}
	}
}
