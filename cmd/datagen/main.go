// Command datagen generates the synthetic datasets used throughout the
// repository: chemical-compound-like corpora (CATAPULT/MIDAS experiments)
// and large networks of several topologies (TATTOO experiments), in the
// .lg corpus format.
//
// Examples:
//
//	datagen -kind chemical -n 1000 -out corpus.lg -seed 1
//	datagen -kind ba -n 100000 -k 3 -out network.lg
//	datagen -kind ws -n 50000 -k 6 -beta 0.1 -out smallworld.lg
//	datagen -kind er -n 10000 -m 40000 -out random.lg
//	datagen -kind pp -communities 20 -size 500 -pin 0.05 -pout 0.0005 -out comm.lg
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/datagen"
	"repro/internal/gio"
	"repro/internal/graph"
)

func main() {
	var (
		kind        = flag.String("kind", "chemical", "dataset kind: chemical|ba|ws|er|pp")
		n           = flag.Int("n", 1000, "graphs (chemical) or nodes (networks)")
		out         = flag.String("out", "", "output .lg file (required)")
		seed        = flag.Int64("seed", 1, "random seed")
		minN        = flag.Int("min", 8, "chemical: min compound size")
		maxN        = flag.Int("max", 40, "chemical: max compound size")
		k           = flag.Int("k", 3, "ba: edges per new node; ws: lattice degree")
		m           = flag.Int("m", 0, "er: edge count (default 3n)")
		beta        = flag.Float64("beta", 0.1, "ws: rewiring probability")
		communities = flag.Int("communities", 10, "pp: community count")
		size        = flag.Int("size", 100, "pp: community size")
		pin         = flag.Float64("pin", 0.05, "pp: intra-community edge probability")
		pout        = flag.Float64("pout", 0.001, "pp: inter-community edge probability")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}

	var corpus *graph.Corpus
	switch *kind {
	case "chemical":
		corpus = datagen.ChemicalCorpus(*seed, *n, datagen.ChemicalOptions{MinNodes: *minN, MaxNodes: *maxN})
	case "ba":
		corpus = single(datagen.BarabasiAlbert(*seed, *n, *k))
	case "ws":
		corpus = single(datagen.WattsStrogatz(*seed, *n, *k, *beta))
	case "er":
		edges := *m
		if edges == 0 {
			edges = 3 * *n
		}
		corpus = single(datagen.ErdosRenyi(*seed, *n, edges))
	case "pp":
		corpus = single(datagen.PlantedPartition(*seed, *communities, *size, *pin, *pout))
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if err := gio.SaveCorpus(*out, corpus); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	stats := corpus.Stats()
	fmt.Printf("wrote %s: %d graphs, %d nodes, %d edges total\n",
		*out, stats.Graphs, stats.TotalNodes, stats.TotalEdges)
}

func single(g *graph.Graph) *graph.Corpus {
	c := graph.NewCorpus()
	c.MustAdd(g)
	return c
}
