package main

// Experiments E12-E13: the tutorial's "beyond" future directions made
// concrete — data-driven sketch panels for time series, and pattern-based
// graph summarization.

import (
	"fmt"
	"math"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/summary"
	"repro/internal/tattoo"
	"repro/internal/timeseries"
)

func init() {
	register("E12", "beyond graphs: data-driven sketch panel for time series", runE12)
	register("E13", "beyond VQIs: pattern-based graph summarization", runE13)
}

func runE12(cfg runConfig, w *tabwriter.Writer) {
	seriesCount := 40
	length := 960
	if cfg.full {
		seriesCount, length = 200, 2880
	}
	col := syntheticArchive(cfg.seed, seriesCount, length)
	fmt.Fprintln(w, "budget\tmining+selection (s)\tmean series-coverage\tmean complexity\tdistinct words")
	for _, b := range []int{4, 8, 12} {
		t0 := time.Now()
		panel, err := timeseries.BuildSketchPanel(col, timeseries.Config{
			Window: 48, Segments: 8, Alphabet: 4, Budget: b})
		if err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", b, err)
			continue
		}
		elapsed := time.Since(t0)
		cov, cplx := 0.0, 0.0
		for _, m := range panel.Sketches {
			cov += m.SeriesCoverage
			cplx += m.Complexity()
		}
		k := float64(len(panel.Sketches))
		fmt.Fprintf(w, "%d\t%.2f\t%.3f\t%.3f\t%d\n",
			b, elapsed.Seconds(), cov/k, cplx/k, len(panel.Sketches))
	}
}

func syntheticArchive(seed int64, count, length int) *timeseries.Collection {
	rng := rand.New(rand.NewSource(seed))
	col := &timeseries.Collection{}
	for s := 0; s < count; s++ {
		vals := make([]float64, length)
		switch s % 3 {
		case 0: // seasonal
			for i := range vals {
				vals[i] = math.Sin(2*math.Pi*float64(i)/48) + 0.1*rng.NormFloat64()
			}
		case 1: // drift
			level := 0.0
			for i := range vals {
				level += 0.02 + 0.05*rng.NormFloat64()
				vals[i] = level
			}
		default: // spiky
			for i := range vals {
				vals[i] = 0.1 * rng.NormFloat64()
			}
			for k := 0; k < length/60; k++ {
				c := 10 + rng.Intn(length-20)
				for i := -6; i <= 6 && c+i < length; i++ {
					if c+i >= 0 {
						vals[c+i] += 3 * math.Exp(-math.Pow(float64(i)/3, 2))
					}
				}
			}
		}
		col.Add(fmt.Sprintf("s%d", s), vals)
	}
	return col
}

func runE13(cfg runConfig, w *tabwriter.Writer) {
	n := 2000
	if cfg.full {
		n = 10000
	}
	fmt.Fprintln(w, "network\tsupernodes\tnode reduction\tedge reduction\tpattern coverage\ttime (s)")
	for _, net := range []struct {
		name string
		g    *graph.Graph
	}{
		{"watts-strogatz", datagen.WattsStrogatz(cfg.seed, n, 6, 0.08)},
		{"barabasi-albert", datagen.BarabasiAlbert(cfg.seed, n, 3)},
	} {
		g := net.g
		res, err := tattoo.Select(g, tattoo.Config{Budget: stdBudget(8), Seed: cfg.seed})
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", net.name, err)
			continue
		}
		t0 := time.Now()
		sum, err := summary.Summarize(g, res.Patterns, summary.Options{MaxInstancesPerPattern: n / 5})
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", net.name, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f%%\t%.1f%%\t%.1f%%\t%.2f\n",
			net.name, len(sum.Supernodes),
			100*sum.NodeReduction, 100*sum.EdgeReduction, 100*sum.Coverage(g),
			time.Since(t0).Seconds())
	}
}
