package main

// Experiment D1: the durability suite. Measures what crash safety charges
// the write path — per-batch WAL-append latency (the /admin/update shape:
// one graph per batch) under each fsync policy — and what the snapshot
// refunds on the read path: cold boot via snapshot + WAL replay, and via a
// compacted snapshot, versus re-parsing the equivalent .lg corpus; the
// sharded index build is included in every boot variant. Emits
// BENCH_store.json for tracking across runs.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/store"
)

func init() {
	register("D1", "durability: WAL-append latency per fsync policy, cold boot vs .lg re-parse (emits BENCH_store.json)", runD1)
}

type storeAppendVariant struct {
	Policy    string  `json:"policy"`
	Appends   int     `json:"appends"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	WALBytes  int64   `json:"wal_bytes"`
}

type storeBootVariant struct {
	Name     string  `json:"name"`
	Graphs   int     `json:"graphs"`
	Replayed int     `json:"replayed"`
	Millis   float64 `json:"ms"`
}

type storeReport struct {
	CPUs       int                  `json:"cpus"`
	Full       bool                 `json:"full"`
	Seed       int64                `json:"seed"`
	BaseGraphs int                  `json:"base_graphs"`
	Shards     int                  `json:"shards"`
	Appends    []storeAppendVariant `json:"appends"`
	Boots      []storeBootVariant   `json:"boots"`
}

func runD1(cfg runConfig, w *tabwriter.Writer) {
	baseGraphs, appends := 150, 120
	if cfg.full {
		baseGraphs, appends = 1000, 600
	}
	const shards = 4
	genOpts := datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16}
	corpus := datagen.ChemicalCorpus(cfg.seed, baseGraphs, genOpts)
	rng := rand.New(rand.NewSource(cfg.seed + 1))
	batches := make([]store.Batch, appends)
	for i := range batches {
		g := datagen.Chemical(rng, fmt.Sprintf("d1-add-%d", i), genOpts)
		batches[i] = store.Batch{Added: []*graph.Graph{g}}
	}

	report := storeReport{CPUs: runtime.NumCPU(), Full: cfg.full, Seed: cfg.seed,
		BaseGraphs: baseGraphs, Shards: shards}

	// Write path: the same update stream under each fsync policy. The
	// "always" directory is kept for the boot comparison below — its WAL
	// holds every append.
	fmt.Fprintf(w, "append policy\tbatches\tp50 (ms)\tp99 (ms)\tWAL bytes\n")
	var bootDir string
	for _, v := range []struct {
		name string
		opts store.Options
	}{
		{"always", store.Options{Sync: store.SyncAlways}},
		{"interval 25ms", store.Options{Sync: store.SyncInterval, SyncEvery: 25 * time.Millisecond}},
		{"none", store.Options{Sync: store.SyncNone}},
	} {
		dir, err := os.MkdirTemp("", "benchvqi-d1-*")
		if err != nil {
			fmt.Fprintf(w, "tempdir: %v\n", err)
			return
		}
		keep := v.opts.Sync == store.SyncAlways
		if !keep {
			defer os.RemoveAll(dir)
		}
		st, _, err := store.Open(context.Background(), dir, v.opts)
		if err != nil {
			fmt.Fprintf(w, "%s: open: %v\n", v.name, err)
			return
		}
		if err := st.WriteSnapshot(corpus, 0, nil); err != nil {
			fmt.Fprintf(w, "%s: snapshot: %v\n", v.name, err)
			return
		}
		lat := make([]float64, 0, appends)
		for _, b := range batches {
			t0 := time.Now()
			if _, err := st.Append(b); err != nil {
				fmt.Fprintf(w, "%s: append: %v\n", v.name, err)
				return
			}
			lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
		}
		if err := st.Close(); err != nil {
			fmt.Fprintf(w, "%s: close: %v\n", v.name, err)
			return
		}
		var walBytes int64
		if fi, err := os.Stat(filepath.Join(dir, "wal.vqilog")); err == nil {
			walBytes = fi.Size()
		}
		sort.Float64s(lat)
		entry := storeAppendVariant{Policy: v.name, Appends: len(lat),
			P50Millis: percentile(lat, 0.50), P99Millis: percentile(lat, 0.99),
			WALBytes: walBytes}
		report.Appends = append(report.Appends, entry)
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%d\n",
			entry.Policy, entry.Appends, entry.P50Millis, entry.P99Millis, entry.WALBytes)
		if keep {
			bootDir = dir
		}
	}
	defer os.RemoveAll(bootDir)

	// Read path: three cold boots to the same serving state (recovered
	// corpus + built index). snapshot+replay pays per-append replay cost;
	// a compacted directory folds the WAL away; the .lg baseline is what
	// a non-durable deployment re-parses on every boot.
	fmt.Fprintf(w, "cold boot\tgraphs\treplayed\ttotal (ms)\n")
	boot := func(name string) *storeBootVariant {
		t0 := time.Now()
		di, rep, err := core.OpenDurableIndex(context.Background(), bootDir, nil,
			core.DurableIndexOptions{Shards: shards})
		if err != nil {
			fmt.Fprintf(w, "%s: %v\n", name, err)
			return nil
		}
		elapsed := time.Since(t0)
		defer di.Close()
		return &storeBootVariant{Name: name, Graphs: di.Corpus().Len(),
			Replayed: rep.Replayed, Millis: float64(elapsed.Microseconds()) / 1000}
	}
	replayBoot := boot("snapshot + WAL replay")
	if replayBoot == nil {
		return
	}

	// Fold the WAL (the vqimaintain -compact path), then boot again.
	di, _, err := core.OpenDurableIndex(context.Background(), bootDir, nil,
		core.DurableIndexOptions{Shards: shards})
	if err != nil {
		fmt.Fprintf(w, "compact open: %v\n", err)
		return
	}
	finalCorpus := di.Corpus()
	if _, err := di.Compact(); err != nil {
		fmt.Fprintf(w, "compact: %v\n", err)
		return
	}
	di.Close()
	compactBoot := boot("compacted snapshot")
	if compactBoot == nil {
		return
	}

	lgPath := filepath.Join(bootDir, "corpus.lg")
	if err := gio.SaveCorpus(lgPath, finalCorpus); err != nil {
		fmt.Fprintf(w, "save .lg: %v\n", err)
		return
	}
	t0 := time.Now()
	reparsed, err := gio.LoadCorpus(lgPath)
	if err != nil {
		fmt.Fprintf(w, "re-parse .lg: %v\n", err)
		return
	}
	gindex.BuildSharded(reparsed, shards, 0)
	lgBoot := &storeBootVariant{Name: ".lg re-parse", Graphs: reparsed.Len(),
		Millis: float64(time.Since(t0).Microseconds()) / 1000}

	for _, b := range []*storeBootVariant{replayBoot, compactBoot, lgBoot} {
		report.Boots = append(report.Boots, *b)
		fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\n", b.Name, b.Graphs, b.Replayed, b.Millis)
	}
	if replayBoot.Graphs != lgBoot.Graphs || compactBoot.Graphs != lgBoot.Graphs {
		fmt.Fprintf(w, "BOOT MISMATCH: variants recovered different corpus sizes\n")
	}

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_store.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_store.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_store.json")
		}
	}
}
