package main

import (
	"strings"
	"testing"
	"text/tabwriter"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8",
		"E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16", "T1", "P1", "P2", "R1", "K1", "S1", "O1", "A1", "D1", "M1"}
	have := map[string]bool{}
	for _, e := range experiments {
		if have[e.id] {
			t.Fatalf("duplicate experiment id %s", e.id)
		}
		have[e.id] = true
		if e.title == "" || e.run == nil {
			t.Fatalf("experiment %s incomplete", e.id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment %s not registered", id)
		}
	}
	if len(experiments) != len(want) {
		t.Fatalf("registered %d experiments, want %d", len(experiments), len(want))
	}
}

func TestExperimentOrder(t *testing.T) {
	if experimentOrder("E2") >= experimentOrder("E10") {
		t.Fatal("numeric ordering broken (E2 must precede E10)")
	}
	if experimentOrder("T1") <= experimentOrder("E15") {
		t.Fatal("T1 must come last")
	}
}

func TestT1Runs(t *testing.T) {
	// T1 is static and must render the whole tutorial inventory.
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	runT1(runConfig{}, w)
	w.Flush()
	out := sb.String()
	for _, topic := range []string{"Introduction", "maintenance", "Future"} {
		if !strings.Contains(out, topic) {
			t.Fatalf("T1 output missing %q:\n%s", topic, out)
		}
	}
}
