package main

// Experiment P2: the query-plan compiler suite. Measures what compiling a
// visual query into a physical plan buys over the monolithic budgeted
// fan-out: rarest-edge-first VF2 ordering, and — on large patterns —
// decomposition into sub-pattern fragments whose containment views are
// cached and joined, with exact verification of the stitched matches.
// Queries are bucketed by edge count (the 4–16 range a visual interface
// realistically produces); each bucket reports monolithic vs planned
// (cold- and warm-view) p50/p99, and every planned answer is checked for
// set-equality against the monolithic oracle — "contract_violations" in
// BENCH_plan.json must be 0. The headline number is the warm decomposed
// p99 speedup on the >=10-edge buckets (target >=2x).

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/qcache"
)

func init() {
	register("P2", "query plan compiler: rarest-edge ordering + cached-view decomposition vs monolithic VF2 (emits BENCH_plan.json)", runP2)
}

type planBucketReport struct {
	EdgesMin int `json:"edges_min"`
	EdgesMax int `json:"edges_max"`
	Queries  int `json:"queries"`

	// StrategyCounts is what the cost model picked per query (auto mode).
	StrategyCounts map[string]int `json:"strategy_counts"`

	MonoP50     float64 `json:"mono_p50_secs"`
	MonoP99     float64 `json:"mono_p99_secs"`
	PlanColdP50 float64 `json:"plan_cold_p50_secs"`
	PlanColdP99 float64 `json:"plan_cold_p99_secs"`
	PlanWarmP50 float64 `json:"plan_warm_p50_secs"`
	PlanWarmP99 float64 `json:"plan_warm_p99_secs"`

	// SpeedupWarmP99 is mono_p99 / plan_warm_p99 (>1 means the plan wins).
	SpeedupWarmP99 float64 `json:"speedup_warm_p99"`
}

type planBenchReport struct {
	Full   bool  `json:"full"`
	Seed   int64 `json:"seed"`
	Corpus int   `json:"corpus_graphs"`
	Shards int   `json:"shards"`

	// ContractViolations counts planned answers that differed from the
	// monolithic oracle. Must be zero; the suite is a correctness gate as
	// much as a benchmark.
	ContractViolations int `json:"contract_violations"`

	Buckets []planBucketReport `json:"buckets"`

	// HeadlineSpeedupP99 is the smallest warm-view p99 speedup across the
	// >=10-edge buckets — the acceptance number (target >=2).
	HeadlineSpeedupP99 float64 `json:"headline_speedup_p99"`
}

// planBucket delimits one query-size class.
type planBucket struct{ lo, hi int }

func runP2(cfg runConfig, w *tabwriter.Writer) {
	corpusN, perBucket, coldReps, warmReps := 400, 8, 2, 10
	if cfg.full {
		corpusN, perBucket, coldReps, warmReps = 1200, 12, 3, 15
	}
	const k = 4
	report := planBenchReport{Full: cfg.full, Seed: cfg.seed, Corpus: corpusN, Shards: k}

	// Ring-heavy compounds share aromatic motifs, so even large query
	// patterns stay label-common and the containment filter leaves real
	// verification work — the regime a planner exists for.
	corpus := datagen.ChemicalCorpus(cfg.seed, corpusN, datagen.ChemicalOptions{MinNodes: 14, MaxNodes: 30, RingBias: 0.85})
	sh := gindex.BuildSharded(corpus, k, 0)
	rng := rand.New(rand.NewSource(cfg.seed + 7))

	opts := pattern.MatchOptions() // unbudgeted: full answers, exact equivalence
	ctx := context.Background()

	// Queries: connected subgraphs of corpus graphs (so they match at least
	// once), bucketed by the edge count they actually came out with.
	// Queries whose label-filter candidate set is trivial are excluded:
	// when the filter already answers the query, both arms measure fixed
	// overhead and no plan (or planner bug) could show up either way.
	const minCandidates = 8
	buckets := []planBucket{{4, 6}, {7, 9}, {10, 12}, {13, 16}}
	pools := make([][]*graph.Graph, len(buckets))
	for tries := 0; tries < 40000; tries++ {
		full := true
		for bi := range buckets {
			if len(pools[bi]) < perBucket {
				full = false
			}
		}
		if full {
			break
		}
		g := corpus.Graph(rng.Intn(corpus.Len()))
		q := datagen.RandomConnectedSubgraph(rng, g, 5+rng.Intn(9))
		if q == nil {
			continue
		}
		for bi, b := range buckets {
			if m := q.NumEdges(); m >= b.lo && m <= b.hi && len(pools[bi]) < perBucket {
				if sh.SearchCtx(ctx, q, opts).Candidates < minCandidates {
					break
				}
				pools[bi] = append(pools[bi], q)
			}
		}
	}
	autoCfg := pattern.PlanConfig()
	autoCfg.HasViewCache = true
	forcedCfg := autoCfg
	forcedCfg.Force = plan.StrategyDecomposed

	timeIt := func(f func()) float64 {
		t0 := time.Now()
		f()
		return time.Since(t0).Seconds()
	}
	// One latency per (query, arm): the median across reps. Medians filter
	// scheduler/GC outliers that would otherwise own every tail percentile
	// at these microsecond scales; the bucket percentiles then rank
	// queries, so p99 is the cost of the hardest query, not the unluckiest
	// sample.
	med := func(lat []float64) float64 {
		sort.Float64s(lat)
		return percentile(lat, 0.50)
	}
	pcts := func(lat []float64) (p50, p99 float64) {
		sort.Float64s(lat)
		return percentile(lat, 0.50), percentile(lat, 0.99)
	}

	report.HeadlineSpeedupP99 = -1
	for bi, b := range buckets {
		pool := pools[bi]
		br := planBucketReport{EdgesMin: b.lo, EdgesMax: b.hi, Queries: len(pool),
			StrategyCounts: map[string]int{}}
		if len(pool) == 0 {
			report.Buckets = append(report.Buckets, br)
			continue
		}
		// The planned arm forces decomposition on the big buckets (the
		// feature under test); smaller patterns run whatever the cost model
		// picks, which is what serving would do.
		armCfg := autoCfg
		if b.lo >= 10 {
			armCfg = forcedCfg
		}
		var monoLat, coldLat, warmLat []float64
		for _, q := range pool {
			pl := sh.CompilePlan(q, autoCfg)
			br.StrategyCounts[string(pl.Strategy)]++
			armPl := sh.CompilePlan(q, armCfg)

			// Arms run as separate loops with a GC between them so one arm's
			// allocation debt is not billed to the next, and mono gets the
			// same rep count as warm (medians compare like for like).
			var oracle, planned gindex.Result
			var qMono, qCold, qWarm []float64
			runtime.GC()
			for r := 0; r < warmReps; r++ {
				qMono = append(qMono, timeIt(func() { oracle = sh.SearchCtx(ctx, q, opts) }))
			}
			for r := 0; r < coldReps; r++ {
				// Cold: a fresh view cache per rep — every fragment view is
				// computed on this query's dime.
				views := qcache.New[gindex.ShardResult](256)
				qCold = append(qCold, timeIt(func() {
					planned = sh.SearchPlan(ctx, q, opts, armPl, gindex.PlanOptions{Views: views})
				}))
				if !reflect.DeepEqual(planned.Matches, oracle.Matches) {
					report.ContractViolations++
				}
			}
			// Warm: one shared cache, pre-populated by a throwaway run.
			views := qcache.New[gindex.ShardResult](1024)
			sh.SearchPlan(ctx, q, opts, armPl, gindex.PlanOptions{Views: views})
			runtime.GC()
			for r := 0; r < warmReps; r++ {
				qWarm = append(qWarm, timeIt(func() {
					planned = sh.SearchPlan(ctx, q, opts, armPl, gindex.PlanOptions{Views: views})
				}))
				if !reflect.DeepEqual(planned.Matches, oracle.Matches) {
					report.ContractViolations++
				}
			}
			monoLat = append(monoLat, med(qMono))
			coldLat = append(coldLat, med(qCold))
			warmLat = append(warmLat, med(qWarm))
		}
		br.MonoP50, br.MonoP99 = pcts(monoLat)
		br.PlanColdP50, br.PlanColdP99 = pcts(coldLat)
		br.PlanWarmP50, br.PlanWarmP99 = pcts(warmLat)
		if br.PlanWarmP99 > 0 {
			br.SpeedupWarmP99 = br.MonoP99 / br.PlanWarmP99
		}
		if b.lo >= 10 && (report.HeadlineSpeedupP99 < 0 || br.SpeedupWarmP99 < report.HeadlineSpeedupP99) {
			report.HeadlineSpeedupP99 = br.SpeedupWarmP99
		}
		report.Buckets = append(report.Buckets, br)
		fmt.Fprintf(w, "%d-%d edges (%d queries)\tmono p50/p99 %.5f/%.5fs\tplan cold %.5f/%.5fs\twarm %.5f/%.5fs\twarm p99 speedup %.1fx\n",
			b.lo, b.hi, len(pool), br.MonoP50, br.MonoP99,
			br.PlanColdP50, br.PlanColdP99, br.PlanWarmP50, br.PlanWarmP99, br.SpeedupWarmP99)
	}
	fmt.Fprintf(w, "contract violations\t%d (must be 0)\n", report.ContractViolations)
	fmt.Fprintf(w, "headline >=10-edge warm p99 speedup\t%.1fx (target >=2x)\n", report.HeadlineSpeedupP99)

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_plan.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_plan.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_plan.json")
		}
	}
}
