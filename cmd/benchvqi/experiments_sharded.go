package main

// Experiment S1: the sharded-index suite. Measures what sharding the
// filter-verify index (gindex.Sharded) buys and costs: parallel build
// time vs the monolithic index, incremental batch-update latency as a
// function of how many shards the batch touches (vs the naive
// rebuild-everything alternative), and query latency under concurrent
// budgeted load at several shard counts — including the K=1 configuration,
// which must not regress against the monolithic search path. Emits
// BENCH_sharded.json for tracking across runs.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func init() {
	register("S1", "sharded index: build, incremental batch updates, budgeted concurrent queries (emits BENCH_sharded.json)", runS1)
}

type shardedQueryLoad struct {
	// Shards is the configuration; 0 means the monolithic gindex.Index
	// baseline running under the same concurrent harness.
	Shards     int     `json:"shards"`
	Clients    int     `json:"clients"`
	MaxResults int     `json:"max_results"`
	P50Secs    float64 `json:"p50_secs"`
	P99Secs    float64 `json:"p99_secs"`
	Samples    int     `json:"samples"`
}

type shardedBenchReport struct {
	Full   bool  `json:"full"`
	Seed   int64 `json:"seed"`
	Shards int   `json:"shards"` // K for the build/update measurements
	Corpus int   `json:"corpus_graphs"`

	MonoBuildSecs    float64 `json:"mono_build_secs"`
	ShardedBuildSecs float64 `json:"sharded_build_secs"`

	BatchGraphs          int     `json:"batch_graphs"`
	RebuildFullSecs      float64 `json:"rebuild_full_secs"` // naive: re-Build everything
	UpdateOneShardSecs   float64 `json:"update_one_shard_secs"`
	UpdateManyShardsSecs float64 `json:"update_many_shards_secs"`
	OneShardTouched      int     `json:"one_shard_touched"`
	ManyShardsTouched    int     `json:"many_shards_touched"`

	QueryLoads []shardedQueryLoad `json:"query_loads"`
	// K1VsMonoP50 is sharded-K=1 p50 over monolithic p50 under the same
	// load — the no-regression acceptance ratio (≈1 is the goal).
	K1VsMonoP50 float64 `json:"k1_vs_mono_p50"`
}

func runS1(cfg runConfig, w *tabwriter.Writer) {
	corpusN, batchN, queryN, clients, reps := 240, 6, 12, 4, 4
	if cfg.full {
		corpusN, batchN, queryN, clients, reps = 1000, 12, 20, 8, 10
	}
	k := runtime.GOMAXPROCS(0)
	if k < 2 {
		k = 2
	}
	report := shardedBenchReport{Full: cfg.full, Seed: cfg.seed, Shards: k, Corpus: corpusN, BatchGraphs: batchN}

	// Build: monolithic vs K-shard parallel.
	corpus := datagen.ChemicalCorpus(cfg.seed, corpusN, chemOpts())
	t0 := time.Now()
	mono := gindex.Build(corpus)
	report.MonoBuildSecs = time.Since(t0).Seconds()
	t0 = time.Now()
	sh := gindex.BuildSharded(corpus, k, 0)
	report.ShardedBuildSecs = time.Since(t0).Seconds()
	fmt.Fprintf(w, "build (n=%d)\tmonolithic %.4fs\tsharded k=%d %.4fs\n",
		corpusN, report.MonoBuildSecs, k, report.ShardedBuildSecs)

	// Incremental updates: a batch confined to one shard vs a batch spread
	// across shards vs the naive full rebuild. ShardOf is a pure function
	// of the name, so batches can be steered onto shards by name choice.
	rng := rand.New(rand.NewSource(cfg.seed + 1))
	mkBatch := func(prefix string, oneShard bool, n int) []*graph.Graph {
		var out []*graph.Graph
		for i := 0; len(out) < n; i++ {
			name := fmt.Sprintf("%s-%d", prefix, i)
			if oneShard && gindex.ShardOf(name, k) != 0 {
				continue
			}
			out = append(out, datagen.Chemical(rng, name, chemOpts()))
		}
		return out
	}
	oneBatch := mkBatch("upd1", true, batchN)
	t0 = time.Now()
	next, rep1, err := sh.ApplyBatch(oneBatch, nil)
	if err != nil {
		fmt.Fprintf(w, "ApplyBatch: %v\n", err)
		return
	}
	report.UpdateOneShardSecs = time.Since(t0).Seconds()
	report.OneShardTouched = len(rep1.Rebuilt)
	manyBatch := mkBatch("updN", false, batchN)
	t0 = time.Now()
	_, repN, err := next.ApplyBatch(manyBatch, nil)
	if err != nil {
		fmt.Fprintf(w, "ApplyBatch: %v\n", err)
		return
	}
	report.UpdateManyShardsSecs = time.Since(t0).Seconds()
	report.ManyShardsTouched = len(repN.Rebuilt)
	// The naive alternative: mutate the corpus and rebuild the whole index.
	mut := corpus.Clone()
	for _, g := range oneBatch {
		mut.MustAdd(g)
	}
	t0 = time.Now()
	gindex.Build(mut)
	report.RebuildFullSecs = time.Since(t0).Seconds()
	fmt.Fprintf(w, "batch +%d graphs\tfull rebuild %.4fs\t%d/%d shards %.4fs\t%d/%d shards %.4fs\n",
		batchN, report.RebuildFullSecs,
		report.OneShardTouched, k, report.UpdateOneShardSecs,
		report.ManyShardsTouched, k, report.UpdateManyShardsSecs)

	// Query latency under concurrent budgeted load: C clients hammer the
	// same query pool with MaxResults set, at several shard counts plus
	// the monolithic baseline (Shards=0 in the report).
	var queries []*graph.Graph
	for len(queries) < queryN {
		q := datagen.RandomConnectedSubgraph(rng, corpus.Graph(rng.Intn(corpus.Len())), 5+rng.Intn(4))
		if q != nil {
			queries = append(queries, q)
		}
	}
	opts := pattern.MatchOptions()
	opts.MaxResults = 10
	ctx := context.Background()
	runLoad := func(search func(context.Context, *graph.Graph) gindex.Result) []float64 {
		var mu sync.Mutex
		var lat []float64
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				local := make([]float64, 0, reps*len(queries))
				for r := 0; r < reps; r++ {
					for _, q := range queries {
						t := time.Now()
						search(ctx, q)
						local = append(local, time.Since(t).Seconds())
					}
				}
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			}()
		}
		wg.Wait()
		sort.Float64s(lat)
		return lat
	}
	record := func(shards int, lat []float64) shardedQueryLoad {
		l := shardedQueryLoad{
			Shards: shards, Clients: clients, MaxResults: opts.MaxResults,
			P50Secs: percentile(lat, 0.50), P99Secs: percentile(lat, 0.99),
			Samples: len(lat),
		}
		report.QueryLoads = append(report.QueryLoads, l)
		label := fmt.Sprintf("sharded k=%d", shards)
		if shards == 0 {
			label = "monolithic"
		}
		fmt.Fprintf(w, "query load (%d clients, max %d)\t%s\tp50 %.6fs\tp99 %.6fs\n",
			clients, opts.MaxResults, label, l.P50Secs, l.P99Secs)
		return l
	}
	monoLoad := record(0, runLoad(func(ctx context.Context, q *graph.Graph) gindex.Result {
		return mono.SearchCtx(ctx, q, opts)
	}))
	ks := []int{1, 4, k}
	seen := map[int]bool{}
	for _, kk := range ks {
		if seen[kk] {
			continue
		}
		seen[kk] = true
		idx := gindex.BuildSharded(corpus, kk, 0)
		l := record(kk, runLoad(func(ctx context.Context, q *graph.Graph) gindex.Result {
			return idx.SearchCtx(ctx, q, opts)
		}))
		if kk == 1 && monoLoad.P50Secs > 0 {
			report.K1VsMonoP50 = l.P50Secs / monoLoad.P50Secs
		}
	}
	fmt.Fprintf(w, "k=1 vs monolithic p50 ratio\t%.2f (≈1 means no sharding overhead at k=1)\n", report.K1VsMonoP50)

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_sharded.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_sharded.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_sharded.json")
		}
	}
}
