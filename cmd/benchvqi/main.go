// Command benchvqi regenerates every experiment in EXPERIMENTS.md: the
// headline results of the frameworks the tutorial surveys (CATAPULT,
// TATTOO, MIDAS, the modular architecture) plus the usability and
// aesthetics measurements, printed as paper-style tables.
//
// Usage:
//
//	benchvqi -exp all          # run everything (quick sizes)
//	benchvqi -exp E1           # one experiment
//	benchvqi -exp E5 -full     # full paper-scale sizes
//	benchvqi -list             # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
)

// experiment is one reproducible table/figure.
type experiment struct {
	id    string
	title string
	run   func(cfg runConfig, w *tabwriter.Writer)
}

// runConfig carries global harness settings.
type runConfig struct {
	full bool
	seed int64
}

var experiments []experiment

func register(id, title string, run func(runConfig, *tabwriter.Writer)) {
	experiments = append(experiments, experiment{id: id, title: title, run: run})
}

func main() {
	var (
		exp  = flag.String("exp", "all", "experiment id (E1..E11, T1) or 'all'")
		full = flag.Bool("full", false, "paper-scale sizes (slower)")
		seed = flag.Int64("seed", 1, "random seed")
		list = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()
	sort.Slice(experiments, func(i, j int) bool { return experimentOrder(experiments[i].id) < experimentOrder(experiments[j].id) })
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.id, e.title)
		}
		return
	}
	cfg := runConfig{full: *full, seed: *seed}
	ran := 0
	for _, e := range experiments {
		if *exp != "all" && !strings.EqualFold(*exp, e.id) {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.title)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		e.run(cfg, w)
		w.Flush()
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "benchvqi: unknown experiment %q (use -list)\n", *exp)
		os.Exit(2)
	}
}

func experimentOrder(id string) int {
	// E1..E11 first, then T1, P1, R1, D1.
	if strings.HasPrefix(id, "E") {
		n := 0
		fmt.Sscanf(id[1:], "%d", &n)
		return n
	}
	switch id[0] {
	case 'T':
		return 100
	case 'P':
		return 200
	case 'R':
		return 300
	}
	return 400
}
