package main

// Experiments E9-E11 and T1: the score-component ablation, the modular
// pipeline comparison, the aesthetics measurements, and the tutorial's own
// Table 1 inventory.

import (
	"fmt"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/layout"
	"repro/internal/modular"
	"repro/internal/pattern"
	"repro/internal/vqi"
)

func init() {
	register("E9", "ablation: coverage-only vs +diversity vs +cognitive-load scoring", runE9)
	register("E10", "modular architecture: stage swaps, quality and time", runE10)
	register("E11", "aesthetics: layout metrics of pattern panels", runE11)
	register("T1", "tutorial Table 1 inventory cross-check", runT1)
}

func runE9(cfg runConfig, w *tabwriter.Writer) {
	n := 300
	if cfg.full {
		n = 1000
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	budget := stdBudget(10)
	opts := pattern.MatchOptions()
	fmt.Fprintln(w, "scoring variant\tcoverage\tdiversity\tmean cognitive load")
	for _, row := range []struct {
		name string
		wt   pattern.Weights
	}{
		{"coverage only", pattern.Weights{Coverage: 1}},
		{"+ diversity", pattern.Weights{Coverage: 1, Diversity: 1}},
		{"+ cognitive load (full)", pattern.Weights{Coverage: 1, Diversity: 1, CogLoad: 1}},
		{"diversity only", pattern.Weights{Diversity: 1}},
	} {
		res, err := catapult.Select(corpus, catapult.Config{Budget: budget, Weights: row.wt, Seed: cfg.seed})
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", row.name, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.3f\n", row.name,
			pattern.SetEdgeCoverage(res.Patterns, corpus, opts),
			pattern.SetDiversity(res.Patterns),
			pattern.SetCognitiveLoad(res.Patterns, budget))
	}
}

func runE10(cfg runConfig, w *tabwriter.Writer) {
	n := 200
	if cfg.full {
		n = 600
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	budget := stdBudget(8)
	opts := pattern.MatchOptions()
	pipelines := []modular.Pipeline{
		modular.CatapultEquivalent(budget, cfg.seed),
		{Similarity: modular.GraphletSimilarity{}, Clusterer: modular.KMedoidsClusterer{},
			Merger: modular.ClosureMerger{}, Extractor: modular.WalkExtractor{Walks: 120},
			Budget: budget, Seed: cfg.seed},
		{Similarity: modular.LabelSimilarity{}, Clusterer: modular.AgglomerativeClusterer{},
			Merger: modular.ClosureMerger{}, Extractor: modular.WalkExtractor{Walks: 120},
			Budget: budget, Seed: cfg.seed},
		{Similarity: modular.LabelSimilarity{}, Clusterer: modular.SingleCluster{},
			Merger: modular.UnionMerger{}, Extractor: modular.WalkExtractor{Walks: 120},
			Budget: budget, Seed: cfg.seed},
		{Similarity: modular.GraphletSimilarity{}, Clusterer: modular.KMedoidsClusterer{},
			Merger: modular.ClosureMerger{}, Extractor: modular.HeaviestSubgraphExtractor{},
			Budget: budget, Seed: cfg.seed},
	}
	fmt.Fprintln(w, "similarity\tclustering\tmerging\textraction\ttime (s)\tcoverage\tdiversity")
	for _, p := range pipelines {
		t0 := time.Now()
		res, err := p.Run(corpus)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			continue
		}
		fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%.2f\t%.3f\t%.3f\n",
			res.Stages[0], res.Stages[1], res.Stages[2], res.Stages[3],
			time.Since(t0).Seconds(),
			pattern.SetEdgeCoverage(res.Patterns, corpus, opts),
			pattern.SetDiversity(res.Patterns))
	}
}

func runE11(cfg runConfig, w *tabwriter.Writer) {
	n := 200
	if cfg.full {
		n = 600
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	budget := stdBudget(10)
	res, err := catapult.Select(corpus, catapult.Config{Budget: budget, Seed: cfg.seed})
	if err != nil {
		fmt.Fprintf(w, "error: %v\n", err)
		return
	}
	manual, _ := vqi.BuildManual(vqi.PresetChemistry, corpus)
	manualPats, _ := manual.AllPatterns()
	rnd, _ := baseline.Random(corpus, budget, cfg.seed)

	fmt.Fprintln(w, "panel\tpatterns\tmean crossings\tmean overlaps\tmean angular res\tmean visual complexity")
	for _, row := range []struct {
		name string
		set  []*pattern.Pattern
	}{
		{"data-driven (CATAPULT)", res.Patterns},
		{"manual chemistry", manualPats},
		{"random baseline", rnd},
	} {
		if len(row.set) == 0 {
			continue
		}
		var crossings, overlaps, angular, complexity float64
		for i, p := range row.set {
			l := layout.FruchtermanReingold(p.G, vqi.ThumbSize, vqi.ThumbSize, 120, cfg.seed+int64(i))
			m := layout.Measure(p.G, l, 0)
			crossings += float64(m.Crossings)
			overlaps += float64(m.Overlaps)
			angular += m.AngularResolution
			complexity += m.VisualComplexity
		}
		k := float64(len(row.set))
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.3f\n",
			row.name, len(row.set), crossings/k, overlaps/k, angular/k, complexity/k)
	}
}

func runT1(_ runConfig, w *tabwriter.Writer) {
	fmt.Fprintln(w, "tutorial topic\tminutes\tthis repository")
	rows := [][3]string{
		{"Introduction", "5", "README.md, DESIGN.md"},
		{"Usability of manual VQI", "15", "internal/vqi (manual presets), internal/simulate (usability model)"},
		{"The concept of data-driven VQI", "10", "internal/vqi (data-driven builders), internal/core facade"},
		{"Data-driven construction of VQIs", "30", "internal/catapult, internal/tattoo, internal/modular + substrates (fct, cluster, closure, truss, isomorph, canon)"},
		{"Data-driven maintenance of VQIs", "10", "internal/midas (+ graphlet trigger, FCT maintenance)"},
		{"Future research direction", "15", "internal/layout (aesthetics, E11), internal/timeseries (beyond graphs, E12), internal/summary (beyond VQIs, E13); distributed/massive left open as in the tutorial"},
	}
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%s\n", r[0], r[1], r[2])
	}
}
