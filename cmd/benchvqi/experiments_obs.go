package main

// Experiment O1: observability overhead. The obs layer promises that
// instrumenting the hot kernels costs under 5% — a few cached atomic adds
// per call, never per search step. This experiment measures exactly that
// promise: the same query workload as the K1 kernel suite is timed with
// recording enabled and with the obs.SetEnabled kill switch off,
// interleaved round-robin so clock drift and cache warmth hit both arms
// equally, and the relative overhead lands in BENCH_obs.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
)

func init() {
	register("O1", "observability overhead: instrumented vs kill-switched kernels (emits BENCH_obs.json)", runO1)
}

type obsBenchReport struct {
	Full bool  `json:"full"`
	Seed int64 `json:"seed"`

	// Query-path best-round wall clock with recording on vs off, and the
	// relative overhead. The acceptance bound for the obs layer is
	// OverheadPct < 5.
	QueryOnSecs  float64 `json:"query_on_secs"`
	QueryOffSecs float64 `json:"query_off_secs"`
	OverheadPct  float64 `json:"overhead_pct"`
	QuerySamples int     `json:"query_samples"`

	// Microcosts of the primitives, ns per operation.
	CounterNsOn  float64 `json:"counter_ns_on"`
	CounterNsOff float64 `json:"counter_ns_off"`
	SpanNsOn     float64 `json:"span_ns_on"`
	SpanNsOff    float64 `json:"span_ns_off"`
}

func runO1(cfg runConfig, w *tabwriter.Writer) {
	corpusN, rounds := 300, 12
	if cfg.full {
		corpusN, rounds = 800, 20
	}
	report := obsBenchReport{Full: cfg.full, Seed: cfg.seed}
	defer obs.SetEnabled(true) // never leave the process with recording off

	// Workload: filter-verify searches over a corpus index — the path that
	// records gindex_* and isomorph_* metrics on every call.
	corpus := datagen.ChemicalCorpus(cfg.seed, corpusN, chemOpts())
	idx := gindex.Build(corpus)
	rng := rand.New(rand.NewSource(cfg.seed))
	var queries []*graph.Graph
	for len(queries) < 24 {
		q := datagen.RandomConnectedSubgraph(rng, corpus.Graph(rng.Intn(corpus.Len())), 5+rng.Intn(4))
		if q != nil {
			queries = append(queries, q)
		}
	}
	ctx := context.Background()
	opts := pattern.MatchOptions()

	runPass := func() time.Duration {
		t0 := time.Now()
		for _, q := range queries {
			idx.SearchCtx(ctx, q, opts)
		}
		return time.Since(t0)
	}
	runPass() // warm caches before either arm is timed

	// Interleave on/off rounds so neither arm systematically runs on a
	// colder cache or a busier machine, and compare the best round of each
	// arm: the minimum is the run least disturbed by scheduler noise, which
	// at these pass times (tens of ms) otherwise swamps a few-percent
	// effect.
	onBest, offBest := time.Duration(1<<62), time.Duration(1<<62)
	for r := 0; r < rounds; r++ {
		obs.SetEnabled(true)
		if d := runPass(); d < onBest {
			onBest = d
		}
		obs.SetEnabled(false)
		if d := runPass(); d < offBest {
			offBest = d
		}
	}
	obs.SetEnabled(true)
	report.QueryOnSecs = onBest.Seconds()
	report.QueryOffSecs = offBest.Seconds()
	report.QuerySamples = rounds * len(queries)
	if report.QueryOffSecs > 0 {
		report.OverheadPct = (report.QueryOnSecs - report.QueryOffSecs) / report.QueryOffSecs * 100
	}
	verdict := "PASS (< 5%)"
	if report.OverheadPct >= 5 {
		verdict = "FAIL (>= 5%)"
	}
	fmt.Fprintf(w, "query path (%d samples/arm)\ton %.4fs\toff %.4fs\toverhead %+.2f%%\t%s\n",
		report.QuerySamples, report.QueryOnSecs, report.QueryOffSecs, report.OverheadPct, verdict)

	// Microcosts: one counter add and one whole span, recording on vs off.
	const micro = 2_000_000
	c := obs.Default.Counter("o1_bench_counter_total")
	microTime := func(f func()) float64 {
		t0 := time.Now()
		for i := 0; i < micro; i++ {
			f()
		}
		return float64(time.Since(t0).Nanoseconds()) / micro
	}
	gated := func() {
		if obs.On() {
			c.Inc()
		}
	}
	span := func() {
		_, sp := obs.StartSpan(ctx, "o1.bench")
		sp.End()
	}
	obs.SetEnabled(true)
	report.CounterNsOn = microTime(gated)
	report.SpanNsOn = microTime(span)
	obs.SetEnabled(false)
	report.CounterNsOff = microTime(gated)
	report.SpanNsOff = microTime(span)
	obs.SetEnabled(true)
	fmt.Fprintf(w, "counter inc\ton %.1fns\toff %.1fns\n", report.CounterNsOn, report.CounterNsOff)
	fmt.Fprintf(w, "span start+end\ton %.1fns\toff %.1fns\n", report.SpanNsOn, report.SpanNsOff)

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_obs.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_obs.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_obs.json")
		}
	}
}
