package main

// Experiment A1: the approximate-retrieval suite. Measures what the
// per-shard LSH index (internal/ann via gindex.BuildShardedANN) buys over
// the exact cosine corpus scan it replaces: a recall@10-vs-latency curve
// across probe budgets (the multi-probe knob trades lookup cost for
// recall), the headline speedup at the default configuration, and the
// maintenance property that a batch update rebuilds only the touched
// shards' ANN tables (asserted via the obs rebuild counters). Emits
// BENCH_ann.json for tracking across runs.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/ann"
	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/obs"
)

func init() {
	register("A1", "approximate similarity: LSH recall@10-vs-latency vs exact scan, touched-shard ANN rebuilds (emits BENCH_ann.json)", runA1)
}

// annCurvePoint is one probe-budget setting on the recall/latency curve.
type annCurvePoint struct {
	Probes        int     `json:"probes"`
	RecallAt10    float64 `json:"recall_at_10"`
	P50Secs       float64 `json:"p50_secs"`
	P99Secs       float64 `json:"p99_secs"`
	MeanSecs      float64 `json:"mean_secs"`
	MeanShortlist float64 `json:"mean_shortlist"`
	// Speedup is exact-scan mean latency over this setting's mean latency.
	Speedup float64 `json:"speedup"`
}

type annBenchReport struct {
	Full   bool  `json:"full"`
	Seed   int64 `json:"seed"`
	Corpus int   `json:"corpus_graphs"`
	Shards int   `json:"shards"`
	Dim    int   `json:"dim"`
	Tables int   `json:"tables"`
	Bits   int   `json:"bits"`

	BuildSecs      float64 `json:"build_secs"`       // embed + LSH + filter index
	PlainBuildSecs float64 `json:"plain_build_secs"` // filter index only (the ANN overhead baseline)

	Queries       int     `json:"queries"`
	ExactMeanSecs float64 `json:"exact_mean_secs"` // per-query exact cosine scan
	ExactP50Secs  float64 `json:"exact_p50_secs"`
	ExactP99Secs  float64 `json:"exact_p99_secs"`

	Curve []annCurvePoint `json:"curve"`

	// Headline numbers at the default probe budget — the acceptance pair:
	// speedup >= 5x at recall@10 >= 0.9.
	HeadlineProbes  int     `json:"headline_probes"`
	HeadlineRecall  float64 `json:"headline_recall_at_10"`
	HeadlineSpeedup float64 `json:"headline_speedup"`

	// Batch-maintenance assertion: one added graph must rebuild exactly the
	// shards that own it — the ANN rebuild counter delta equals the touched
	// shard count and stays below the shard total.
	BatchShardsTouched int   `json:"batch_shards_touched"`
	BatchANNRebuilds   int   `json:"batch_ann_rebuilds"`
	RebuildOnlyTouched bool  `json:"rebuild_only_touched"`
	BatchUpdateMillis  int64 `json:"batch_update_millis"`
}

// annRebuildCounter reads gindex's ANN shard-rebuild counter from the
// library registry.
func annRebuildCounter() int64 {
	if c, ok := obs.Default.Snapshot().Find("gindex_ann_shard_rebuilds_total"); ok {
		return c.Value
	}
	return 0
}

// annBenchConfig returns the LSH configuration the benchmark indexes with.
// Bits scale with the per-shard corpus size (bucket occupancy ~ n/2^bits, so
// fixed bits would make shortlists — and lookup cost — grow linearly with
// the corpus): ceil(log2(perShard)) + 1, clamped to [10, 16]. The serving
// default (ann.NewConfig) keeps the smaller interactive-corpus tuning;
// vqiserve -ann-bits exposes the same knob to operators.
func annBenchConfig(corpusN, shards int) ann.Config {
	perShard := corpusN / shards
	bits := 1
	for 1<<bits < perShard {
		bits++
	}
	bits++
	if bits < 10 {
		bits = 10
	}
	if bits > 16 {
		bits = 16
	}
	return ann.Config{Tables: 12, Bits: bits, Probes: 4, Center: true}
}

// a1Reps: every latency below is the best-of-reps mean after a warmup
// pass — single-pass timings at sub-millisecond scale are dominated by GC
// and scheduler noise (observed non-monotone latency vs shortlist size).
const a1Reps = 3

func runA1(cfg runConfig, w *tabwriter.Writer) {
	corpusN, queryN, shards := 8000, 40, 4
	if cfg.full {
		corpusN, queryN, shards = 20000, 120, 8
	}
	annCfg := annBenchConfig(corpusN, shards)
	report := annBenchReport{
		Full: cfg.full, Seed: cfg.seed, Corpus: corpusN, Shards: shards,
		Dim: ann.NewEmbedder().Dim(), Tables: annCfg.Tables, Bits: annCfg.Bits,
	}

	corpus := datagen.ChemicalCorpus(cfg.seed, corpusN, chemOpts())
	t0 := time.Now()
	gindex.BuildSharded(corpus, shards, 0)
	report.PlainBuildSecs = time.Since(t0).Seconds()
	t0 = time.Now()
	sh := gindex.BuildShardedANN(corpus, shards, 0, annCfg)
	report.BuildSecs = time.Since(t0).Seconds()
	fmt.Fprintf(w, "build (n=%d, k=%d)\tplain %.4fs\t+ann %.4fs (dim %d, %d tables x %d bits)\n",
		corpusN, shards, report.PlainBuildSecs, report.BuildSecs, report.Dim, report.Tables, report.Bits)

	// Query pool: corpus graphs themselves ("more like this one") — the
	// workload the ISSUE's interactive story is about.
	rng := rand.New(rand.NewSource(cfg.seed + 7))
	queries := make([]*graph.Graph, 0, queryN)
	for len(queries) < queryN {
		queries = append(queries, corpus.Graph(rng.Intn(corpus.Len())))
	}
	report.Queries = len(queries)

	// Exact-scan oracle: the ground-truth top-10 sets every probe setting's
	// recall is scored against (results are deterministic, so one pass), and
	// the per-query latency distribution (warmup + best-of-reps).
	exactTops := make([]map[string]bool, len(queries))
	for qi, q := range queries {
		res, err := sh.Similar(q, gindex.SimilarOptions{K: 10, Exact: true})
		if err != nil {
			fmt.Fprintf(w, "exact Similar: %v\n", err)
			return
		}
		truth := make(map[string]bool, len(res.Matches))
		for _, m := range res.Matches {
			truth[m.Name] = true
		}
		exactTops[qi] = truth
	}
	exactLat := a1Measure(sh, queries, gindex.SimilarOptions{K: 10, Exact: true})
	report.ExactMeanSecs = mean(exactLat)
	report.ExactP50Secs = percentile(exactLat, 0.50)
	report.ExactP99Secs = percentile(exactLat, 0.99)
	fmt.Fprintf(w, "exact scan (%d queries)\tmean %.6fs\tp50 %.6fs\tp99 %.6fs\n",
		report.Queries, report.ExactMeanSecs, report.ExactP50Secs, report.ExactP99Secs)

	// The curve: probe budgets from a single bucket per table up to 4x the
	// bench default. Recall and latency both rise with probes — the knob an
	// operator actually turns.
	probesCurve := []int{1, 2, annCfg.Probes, 2 * annCfg.Probes, 4 * annCfg.Probes}
	for _, probes := range probesCurve {
		opts := gindex.SimilarOptions{K: 10, Probes: probes}
		hits, want, shortlistSum := 0, 0, 0
		for qi, q := range queries {
			res, err := sh.Similar(q, opts)
			if err != nil {
				fmt.Fprintf(w, "approx Similar: %v\n", err)
				return
			}
			for _, m := range res.Matches {
				if exactTops[qi][m.Name] {
					hits++
				}
			}
			want += len(exactTops[qi])
			shortlistSum += res.Shortlist
		}
		lat := a1Measure(sh, queries, opts)
		pt := annCurvePoint{
			Probes:        probes,
			RecallAt10:    float64(hits) / float64(want),
			P50Secs:       percentile(lat, 0.50),
			P99Secs:       percentile(lat, 0.99),
			MeanSecs:      mean(lat),
			MeanShortlist: float64(shortlistSum) / float64(len(queries)),
		}
		if pt.MeanSecs > 0 {
			pt.Speedup = report.ExactMeanSecs / pt.MeanSecs
		}
		report.Curve = append(report.Curve, pt)
		fmt.Fprintf(w, "probes=%d\trecall@10 %.3f\tmean %.6fs\tp50 %.6fs\tshortlist %.0f\tspeedup %.1fx\n",
			pt.Probes, pt.RecallAt10, pt.MeanSecs, pt.P50Secs, pt.MeanShortlist, pt.Speedup)
		if probes == annCfg.Probes {
			report.HeadlineProbes = probes
			report.HeadlineRecall = pt.RecallAt10
			report.HeadlineSpeedup = pt.Speedup
		}
	}
	fmt.Fprintf(w, "headline (probes=%d)\trecall@10 %.3f\tspeedup %.1fx\t(acceptance: >=0.9 at >=5x)\n",
		report.HeadlineProbes, report.HeadlineRecall, report.HeadlineSpeedup)

	// Maintenance: one added graph touches one shard; the ANN rebuild
	// counter must move by exactly the touched-shard count.
	add := datagen.Chemical(rng, "a1-batch-added", chemOpts())
	before := annRebuildCounter()
	t0 = time.Now()
	_, rep, err := sh.ApplyBatch([]*graph.Graph{add}, nil)
	report.BatchUpdateMillis = time.Since(t0).Milliseconds()
	if err != nil {
		fmt.Fprintf(w, "ApplyBatch: %v\n", err)
		return
	}
	report.BatchShardsTouched = len(rep.Rebuilt)
	report.BatchANNRebuilds = int(annRebuildCounter() - before)
	report.RebuildOnlyTouched = report.BatchANNRebuilds == report.BatchShardsTouched &&
		report.BatchANNRebuilds < shards
	fmt.Fprintf(w, "batch +1 graph\ttouched %d/%d shards\tann rebuilds %d\tonly-touched %v\n",
		report.BatchShardsTouched, shards, report.BatchANNRebuilds, report.RebuildOnlyTouched)

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_ann.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_ann.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_ann.json")
		}
	}
}

// a1Measure times opts over the query set: one untimed warmup pass, then
// a1Reps timed passes, keeping each query's minimum observed latency (the
// standard de-noising for sub-millisecond operations — the minimum is the
// run least disturbed by GC and scheduling). Returned slice is sorted.
func a1Measure(sh *gindex.Sharded, queries []*graph.Graph, opts gindex.SimilarOptions) []float64 {
	for _, q := range queries {
		sh.Similar(q, opts)
	}
	best := make([]float64, len(queries))
	for r := 0; r < a1Reps; r++ {
		for qi, q := range queries {
			t := time.Now()
			sh.Similar(q, opts)
			d := time.Since(t).Seconds()
			if r == 0 || d < best[qi] {
				best[qi] = d
			}
		}
	}
	sort.Float64s(best)
	return best
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
