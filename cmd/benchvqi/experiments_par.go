package main

// Experiment P1: the parallel execution layer. Times the hot paths that
// internal/par accelerates — pairwise distance matrices, graphlet censuses,
// coverage sweeps (cold and memoized), and the full CATAPULT selection —
// at workers=1 versus all CPUs, and emits the measurements as
// BENCH_parallel.json for tracking across runs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"text/tabwriter"
	"time"

	"repro/internal/catapult"
	"repro/internal/cluster"
	"repro/internal/datagen"
	"repro/internal/graphlet"
	"repro/internal/pattern"
)

func init() {
	register("P1", "parallel execution layer: workers=1 vs all-CPU speedups (emits BENCH_parallel.json)", runP1)
}

type parBenchEntry struct {
	Name    string  `json:"name"`
	SeqSecs float64 `json:"seq_secs"`
	ParSecs float64 `json:"par_secs"`
	Speedup float64 `json:"speedup"`
}

type parBenchReport struct {
	CPUs    int             `json:"cpus"`
	Full    bool            `json:"full"`
	Seed    int64           `json:"seed"`
	Entries []parBenchEntry `json:"entries"`
}

func runP1(cfg runConfig, w *tabwriter.Writer) {
	matrixN, censusNodes, corpusN := 600, 1200, 120
	if cfg.full {
		matrixN, censusNodes, corpusN = 1500, 4000, 400
	}
	cpus := runtime.NumCPU()
	report := parBenchReport{CPUs: cpus, Full: cfg.full, Seed: cfg.seed}
	bench := func(name string, run func(workers int)) {
		t0 := time.Now()
		run(1)
		seq := time.Since(t0)
		t1 := time.Now()
		run(0) // 0 = GOMAXPROCS
		par := time.Since(t1)
		e := parBenchEntry{Name: name, SeqSecs: seq.Seconds(), ParSecs: par.Seconds()}
		if par > 0 {
			e.Speedup = seq.Seconds() / par.Seconds()
		}
		report.Entries = append(report.Entries, e)
		fmt.Fprintf(w, "%s\t%.3f\t%.3f\t%.2fx\n", name, e.SeqSecs, e.ParSecs, e.Speedup)
	}

	fmt.Fprintf(w, "stage\tworkers=1 (s)\tworkers=%d (s)\tspeedup\n", cpus)

	vecs := randomFeatureVectors(matrixN, 24, cfg.seed)
	bench("cluster.Matrix", func(workers int) {
		cluster.Matrix(vecs, cluster.Euclidean, workers)
	})

	net := datagen.WattsStrogatz(cfg.seed, censusNodes, 8, 0.1)
	bench("graphlet.Census k=4", func(workers int) {
		graphlet.CensusN(net, 4, workers)
	})

	corpus := datagen.ChemicalCorpus(cfg.seed, corpusN, chemOpts())
	bench("graphlet.CorpusGFD", func(workers int) {
		graphlet.CorpusGFDN(corpus, workers)
	})

	// Coverage: one cold sweep per worker count (cache miss) and then a
	// warm repeat against the same cache (memoized hit).
	b := stdBudget(8)
	res, err := catapult.Select(corpus, catapult.Config{Budget: b, Seed: cfg.seed, Workers: 0})
	if err != nil {
		fmt.Fprintf(w, "coverage bench skipped: %v\n", err)
	} else {
		pats := res.Patterns
		u := pattern.NewUniverse(corpus)
		opts := pattern.MatchOptions()
		bench("coverage sweep (cold)", func(workers int) {
			cc := pattern.NewCoverCache(corpus, u, opts)
			cc.Bitsets(pats, workers)
		})
		warm := pattern.NewCoverCache(corpus, u, opts)
		warm.Bitsets(pats, 0)
		t0 := time.Now()
		warm.Bitsets(pats, 0)
		hit := time.Since(t0)
		report.Entries = append(report.Entries, parBenchEntry{Name: "coverage sweep (memoized)", ParSecs: hit.Seconds()})
		fmt.Fprintf(w, "coverage sweep (memoized)\t-\t%.6f\t(cache hits: %d)\n", hit.Seconds(), warm.Hits())
	}

	bench("catapult.Select", func(workers int) {
		if _, err := catapult.Select(corpus, catapult.Config{Budget: b, Seed: cfg.seed, Workers: workers}); err != nil {
			fmt.Fprintf(w, "catapult.Select error: %v\n", err)
		}
	})

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_parallel.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_parallel.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_parallel.json")
		}
	}
}

// randomFeatureVectors synthesizes dense vectors for the distance-matrix
// benchmark, deterministic per seed.
func randomFeatureVectors(n, dim int, seed int64) [][]float64 {
	out := make([][]float64, n)
	state := uint64(seed)*0x9E3779B97F4A7C15 + 1
	next := func() float64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return float64(state%1000) / 1000.0
	}
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = next()
		}
		out[i] = v
	}
	return out
}
