package main

// Experiments E5-E8: TATTOO scalability, truss decomposition statistics,
// and MIDAS maintenance.

import (
	"fmt"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/midas"
	"repro/internal/pattern"
	"repro/internal/tattoo"
	"repro/internal/truss"
)

func init() {
	register("E5", "TATTOO selection time vs network size", runE5)
	register("E6", "truss decomposition: G_T/G_O split across network families", runE6)
	register("E7", "MIDAS maintenance vs CATAPULT re-run: time and quality", runE7)
	register("E8", "minor/major classification vs update magnitude (GFD distance)", runE8)
}

func runE5(cfg runConfig, w *tabwriter.Writer) {
	sizes := []int{5000, 20000, 50000}
	if cfg.full {
		sizes = []int{10000, 50000, 100000, 200000}
	}
	fmt.Fprintln(w, "nodes\tedges\ttruss (s)\ttotal select (s)\tcoverage\tcandidates")
	for _, n := range sizes {
		g := datagen.BarabasiAlbert(cfg.seed, n, 3)
		t0 := time.Now()
		truss.Decompose(g)
		trussTime := time.Since(t0)
		t1 := time.Now()
		res, err := tattoo.Select(g, tattoo.Config{Budget: stdBudget(10), Seed: cfg.seed})
		if err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", n, err)
			continue
		}
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.3f\t%d\n",
			n, g.NumEdges(), trussTime.Seconds(), time.Since(t1).Seconds(),
			res.Coverage, res.Candidates)
	}
}

func runE6(cfg runConfig, w *tabwriter.Writer) {
	n := 10000
	if cfg.full {
		n = 100000
	}
	nets := []struct {
		name string
		g    *graph.Graph
	}{
		{"barabasi-albert", datagen.BarabasiAlbert(cfg.seed, n, 3)},
		{"watts-strogatz", datagen.WattsStrogatz(cfg.seed, n, 6, 0.1)},
		{"erdos-renyi", datagen.ErdosRenyi(cfg.seed, n, 3*n)},
		{"planted-partition", datagen.PlantedPartition(cfg.seed, n/100, 100, 0.08, 2.0/float64(n))},
	}
	fmt.Fprintln(w, "network\tedges\t|G_T| edges\t|G_O| edges\tG_T share\tmax trussness")
	for _, net := range nets {
		s := truss.ComputeStats(net.g)
		share := 0.0
		if s.Edges > 0 {
			share = float64(s.TrussEdges) / float64(s.Edges)
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.3f\t%d\n",
			net.name, s.Edges, s.TrussEdges, s.ObliviousEdge, share, s.MaxTrussness)
	}
}

func runE7(cfg runConfig, w *tabwriter.Writer) {
	base := 300
	if cfg.full {
		base = 2000
	}
	fmt.Fprintln(w, "batch size\tmidas (s)\tre-run (s)\tspeedup\tGFD dist\tmajor?\tswaps\tscore before\tscore after")
	for _, frac := range []float64{0.05, 0.10, 0.20} {
		corpus := datagen.ChemicalCorpus(cfg.seed, base, chemOpts())
		ccfg := catapult.Config{Budget: stdBudget(8), Seed: cfg.seed}
		// A sensitive threshold so realistic same-domain batches still
		// trigger the maintenance path being measured.
		st, err := midas.Build(corpus, midas.Config{Catapult: ccfg, Threshold: 0.001})
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		batchN := int(frac * float64(base))
		rng := rand.New(rand.NewSource(cfg.seed + int64(batchN)))
		var added []*graph.Graph
		for i := 0; i < batchN; i++ {
			// Ring-heavy additions shift the GFD to force maintenance.
			added = append(added, datagen.Chemical(rng, fmt.Sprintf("add-%d-%d", batchN, i),
				datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 24, RingBias: 0.95}))
		}
		removed := corpus.Names()[:batchN/2]

		t0 := time.Now()
		rep, err := st.Apply(added, removed)
		if err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		midasTime := time.Since(t0)

		t1 := time.Now()
		if _, err := catapult.Select(st.Corpus().Clone(), ccfg); err != nil {
			fmt.Fprintf(w, "error: %v\n", err)
			return
		}
		rerunTime := time.Since(t1)

		fmt.Fprintf(w, "%.0f%% (%d)\t%.2f\t%.2f\t%.1fx\t%.4f\t%v\t%d\t%.3f\t%.3f\n",
			frac*100, batchN, midasTime.Seconds(), rerunTime.Seconds(),
			rerunTime.Seconds()/midasTime.Seconds(), rep.GFDDistance, rep.Major, rep.Swaps,
			rep.ScoreBefore, rep.ScoreAfter)
	}
}

func runE8(cfg runConfig, w *tabwriter.Writer) {
	base := 300
	if cfg.full {
		base = 1000
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, base, chemOpts())
	before := graphlet.CorpusGFD(corpus)
	fmt.Fprintln(w, "batch\tkind\tGFD distance\tclassified")
	threshold := 0.02
	for _, row := range []struct {
		name  string
		count int
		dense bool
	}{
		{"1 similar graph", 1, false},
		{"5% similar graphs", base / 20, false},
		{"20% similar graphs", base / 5, false},
		{"5% dense cliques", base / 20, true},
		{"20% dense cliques", base / 5, true},
	} {
		c2 := corpus.Clone()
		rng := rand.New(rand.NewSource(cfg.seed + int64(row.count)))
		for i := 0; i < row.count; i++ {
			var g *graph.Graph
			if row.dense {
				g = graph.New(fmt.Sprintf("k-%s-%d", row.name[:2], i))
				g.AddNodes(6, "C")
				for a := 0; a < 6; a++ {
					for b := a + 1; b < 6; b++ {
						g.MustAddEdge(a, b, "s")
					}
				}
			} else {
				g = datagen.Chemical(rng, fmt.Sprintf("s-%s-%d", row.name[:2], i), chemOpts())
			}
			c2.MustAdd(g)
		}
		dist := graphlet.EuclideanDistance(before, graphlet.CorpusGFD(c2))
		kind := "minor"
		if dist > threshold {
			kind = "major"
		}
		fmt.Fprintf(w, "%s\t%s\t%.4f\t%s\n", row.name, denseName(row.dense), dist, kind)
	}
}

func denseName(dense bool) string {
	if dense {
		return "structurally alien"
	}
	return "same distribution"
}

// ensure pattern import used by stdBudget signature stays referenced even
// if budgets move.
var _ = pattern.DefaultBudget
