package main

// Experiment R1: the robustness serving layer. Drives a query endpoint —
// the same shape vqiserve exposes — through an httptest server with and
// without the per-request timeout middleware, and reports p50/p99 latency
// plus how often the budgeted variant degrades to truncated partial
// results. Emits BENCH_robustness.json for tracking across runs.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
)

func init() {
	register("R1", "hardened serving: query latency with/without timeout middleware (emits BENCH_robustness.json)", runR1)
}

type robustVariant struct {
	Name      string  `json:"name"`
	Requests  int     `json:"requests"`
	P50Millis float64 `json:"p50_ms"`
	P99Millis float64 `json:"p99_ms"`
	Truncated int     `json:"truncated"`
}

type robustReport struct {
	CPUs     int             `json:"cpus"`
	Full     bool            `json:"full"`
	Seed     int64           `json:"seed"`
	Budget   string          `json:"budget"`
	Variants []robustVariant `json:"variants"`
}

func runR1(cfg runConfig, w *tabwriter.Writer) {
	netNodes, requests := 2000, 40
	if cfg.full {
		netNodes, requests = 10000, 200
	}
	budget := 5 * time.Millisecond

	g := datagen.WattsStrogatz(cfg.seed, netNodes, 6, 0.1)
	// A wildcard 8-path keeps the matcher busy long enough for the budget
	// to bite: many embeddings exist, and the cap is set high so an
	// unbudgeted request does real work.
	q := graph.New("q")
	for i := 0; i < 8; i++ {
		q.AddNode("")
		if i > 0 {
			q.AddEdge(i-1, i, "")
		}
	}
	queryHandler := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		res := isomorph.Count(q, g, isomorph.Options{
			MaxEmbeddings: 2_000_000, MaxSteps: 100_000_000, Ctx: r.Context()})
		rw.Header().Set("Content-Type", "application/json")
		if res.Reason == isomorph.StopCanceled {
			rw.WriteHeader(http.StatusGatewayTimeout)
		}
		json.NewEncoder(rw).Encode(map[string]any{
			"embeddings": res.Embeddings, "truncated": res.Truncated})
	})
	withTimeout := http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), budget)
		defer cancel()
		queryHandler.ServeHTTP(rw, r.WithContext(ctx))
	})

	report := robustReport{CPUs: runtime.NumCPU(), Full: cfg.full, Seed: cfg.seed, Budget: budget.String()}
	fmt.Fprintf(w, "variant\trequests\tp50 (ms)\tp99 (ms)\ttruncated\n")
	for _, v := range []struct {
		name string
		h    http.Handler
	}{
		{"no middleware", queryHandler},
		{fmt.Sprintf("timeout %v", budget), withTimeout},
	} {
		ts := httptest.NewServer(v.h)
		lat := make([]float64, 0, requests)
		truncated := 0
		for i := 0; i < requests+2; i++ {
			t0 := time.Now()
			res, err := http.Get(ts.URL)
			if err != nil {
				fmt.Fprintf(w, "%s: request failed: %v\n", v.name, err)
				break
			}
			body, _ := io.ReadAll(res.Body)
			res.Body.Close()
			if i < 2 {
				continue // warmup
			}
			lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
			if strings.Contains(string(body), `"truncated":true`) {
				truncated++
			}
		}
		ts.Close()
		sort.Float64s(lat)
		entry := robustVariant{Name: v.name, Requests: len(lat),
			P50Millis: percentile(lat, 0.50), P99Millis: percentile(lat, 0.99),
			Truncated: truncated}
		report.Variants = append(report.Variants, entry)
		fmt.Fprintf(w, "%s\t%d\t%.3f\t%.3f\t%d\n",
			entry.Name, entry.Requests, entry.P50Millis, entry.P99Millis, entry.Truncated)
	}

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_robustness.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_robustness.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_robustness.json")
		}
	}
}

// percentile reads the q-quantile from sorted data (nearest-rank).
func percentile(sorted []float64, qn float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(qn * float64(len(sorted)-1))
	return sorted[idx]
}
