package main

// Experiment E15: portability. Section 2.2's core selling point is that a
// data-driven VQI ports across domains and sources without reimplementation
// — the same build path, pointed at different repositories, yields a
// complete working interface for each. This experiment runs one code path
// over three unrelated data sources and reports the interface each one
// gets.

import (
	"fmt"
	"text/tabwriter"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func init() {
	register("E15", "portability: one build path, three unrelated data sources", runE15)
}

func runE15(cfg runConfig, w *tabwriter.Writer) {
	n := 200
	netN := 3000
	if cfg.full {
		n, netN = 1000, 20000
	}
	opts := core.Options{Budget: core.Budget{Count: 8, MinSize: 4, MaxSize: 10}, Seed: cfg.seed}

	type source struct {
		name   string
		corpus *graph.Corpus // nil for networks
		net    *graph.Graph  // nil for corpora
	}
	sources := []source{
		{name: "chemistry corpus", corpus: datagen.ChemicalCorpus(cfg.seed, n, chemOpts())},
		{name: "social network (BA)", net: datagen.BarabasiAlbert(cfg.seed, netN, 3)},
		{name: "collaboration network (WS)", net: datagen.WattsStrogatz(cfg.seed, netN, 6, 0.1)},
	}
	fmt.Fprintln(w, "data source\tbuild (s)\tattribute labels\tcanned patterns\tcoverage\tmean steps (sim)")
	for _, src := range sources {
		t0 := time.Now()
		var spec *core.Spec
		var err error
		var evalCorpus *graph.Corpus
		if src.corpus != nil {
			spec, err = core.BuildCorpusVQI(src.corpus, opts)
			evalCorpus = src.corpus
		} else {
			spec, err = core.BuildNetworkVQI(src.net, opts)
			evalCorpus = pattern.SingletonCorpus(src.net)
		}
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", src.name, err)
			continue
		}
		build := time.Since(t0)
		q, err := core.EvaluateQuality(spec, evalCorpus, opts)
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", src.name, err)
			continue
		}
		u, err := core.EvaluateUsability(spec, evalCorpus, 30, 5, 9, cfg.seed)
		if err != nil {
			fmt.Fprintf(w, "%s\terror: %v\n", src.name, err)
			continue
		}
		fmt.Fprintf(w, "%s\t%.2f\t%d\t%d\t%.3f\t%.1f\n",
			src.name, build.Seconds(),
			len(spec.Attribute.NodeLabels)+len(spec.Attribute.EdgeLabels),
			len(spec.Patterns.Canned), q.Coverage, u.MeanSteps)
	}
	fmt.Fprintln(w, "\t\t\t\t\t(identical build code for all three sources)")
}
