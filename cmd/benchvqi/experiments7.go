package main

// Experiment E16: Results Panel query processing. The tutorial's framing —
// "a powerful query processor has no practical usage to an end user if
// he/she fails to formulate subgraph queries" — works both ways: once
// users can formulate queries quickly, the interface must also answer them
// interactively. This experiment measures the filter-verify index that
// backs the Results Panel against a full VF2 scan.

import (
	"fmt"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

func init() {
	register("E16", "results-panel query processing: filter-verify index vs full scan", runE16)
}

func runE16(cfg runConfig, w *tabwriter.Writer) {
	n := 1000
	if cfg.full {
		n = 5000
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	t0 := time.Now()
	idx := gindex.Build(corpus)
	buildTime := time.Since(t0)
	fmt.Fprintf(w, "corpus %d graphs; index build %.3fs\n", n, buildTime.Seconds())
	fmt.Fprintln(w, "query nodes\tqueries\tmean filter ratio\tindexed (ms/q)\tscan (ms/q)\tspeedup")

	rng := rand.New(rand.NewSource(cfg.seed))
	opts := pattern.MatchOptions()
	for _, size := range []int{3, 5, 8} {
		var queries []*graph.Graph
		for len(queries) < 25 {
			src := corpus.Graph(rng.Intn(corpus.Len()))
			if q := datagen.RandomConnectedSubgraph(rng, src, size); q != nil {
				queries = append(queries, q)
			}
		}
		ratio := 0.0
		t1 := time.Now()
		for _, q := range queries {
			idx.Search(q, opts)
			ratio += idx.FilterRatio(q)
		}
		indexed := time.Since(t1)
		t2 := time.Now()
		for _, q := range queries {
			corpus.Each(func(_ int, g *graph.Graph) {
				isomorph.Exists(q, g, opts)
			})
		}
		scan := time.Since(t2)
		k := float64(len(queries))
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.1f\t%.1f\t%.1fx\n",
			size, len(queries), ratio/k,
			float64(indexed.Milliseconds())/k,
			float64(scan.Milliseconds())/k,
			float64(scan)/float64(indexed))
	}
}
