package main

// Experiment E14: formulation effort broken down by query topology, with
// the workload shaped after the published query-log distribution that
// TATTOO's candidate taxonomy is built on.

import (
	"fmt"
	"text/tabwriter"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/simulate"
	"repro/internal/vqi"
	"repro/internal/workload"
)

func init() {
	register("E14", "formulation effort by query topology (query-log mix)", runE14)
}

func runE14(cfg runConfig, w *tabwriter.Writer) {
	n, queries := 200, 400
	if cfg.full {
		n, queries = 800, 1200
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	ddSpec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{Budget: stdBudget(10), Seed: cfg.seed})
	if err != nil {
		fmt.Fprintf(w, "error: %v\n", err)
		return
	}
	ddPanel, _ := ddSpec.AllPatterns()
	qs, err := workload.Generate(queries, workload.FromCorpus(corpus), workload.Options{MinNodes: 4, MaxNodes: 9}, cfg.seed)
	if err != nil {
		fmt.Fprintf(w, "error: %v\n", err)
		return
	}
	cm := simulate.DefaultCostModel()

	type accum struct {
		n                    int
		manSteps, ddSteps    float64
		manTime, ddTime      float64
		patternEdges, totalE int
	}
	byClass := map[workload.Topology]*accum{}
	for _, q := range qs {
		a, ok := byClass[q.Class]
		if !ok {
			a = &accum{}
			byClass[q.Class] = a
		}
		man := simulate.Formulate(q.G, nil, cm)
		dd := simulate.Formulate(q.G, ddPanel, cm)
		a.n++
		a.manSteps += float64(man.Steps)
		a.ddSteps += float64(dd.Steps)
		a.manTime += man.Time
		a.ddTime += dd.Time
		a.patternEdges += dd.EdgesViaPatterns
		a.totalE += q.G.NumEdges()
	}
	fmt.Fprintln(w, "topology\tqueries\tmanual steps\tdata-driven steps\tstep reduction\tpattern edge share")
	for _, cls := range []workload.Topology{workload.Chain, workload.Star, workload.Tree,
		workload.Cycle, workload.Petal, workload.Flower} {
		a := byClass[cls]
		if a == nil || a.n == 0 {
			continue
		}
		k := float64(a.n)
		reduction := 0.0
		if a.manSteps > 0 {
			reduction = 1 - a.ddSteps/a.manSteps
		}
		share := 0.0
		if a.totalE > 0 {
			share = float64(a.patternEdges) / float64(a.totalE)
		}
		fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.0f%%\t%.2f\n",
			cls, a.n, a.manSteps/k, a.ddSteps/k, 100*reduction, share)
	}
}
