package main

// Experiment K1: the kernel suite. Times the three hot kernels this
// repository's serving latency rests on — the 4-node graphlet census
// (combinatorial vs ESU enumeration), gindex candidate filtering (bitset
// vs reference), and the query path cold vs cached (canonical-keyed
// qcache, the vqiserve configuration) — and emits BENCH_kernels.json for
// tracking across runs.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/canon"
	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/pattern"
	"repro/internal/qcache"
)

func init() {
	register("K1", "kernel suite: census, candidate filtering, cached vs cold queries (emits BENCH_kernels.json)", runK1)
}

type kernelBenchReport struct {
	Full bool  `json:"full"`
	Seed int64 `json:"seed"`

	CensusEnumSecs float64 `json:"census_enum_secs"`
	CensusCombSecs float64 `json:"census_comb_secs"`
	CensusSpeedup  float64 `json:"census_speedup"`

	CandidatesRefSecs float64 `json:"candidates_ref_secs"`
	CandidatesNewSecs float64 `json:"candidates_new_secs"`
	CandidatesSpeedup float64 `json:"candidates_speedup"`

	ColdP50Secs    float64 `json:"cold_p50_secs"`
	ColdP99Secs    float64 `json:"cold_p99_secs"`
	CachedP50Secs  float64 `json:"cached_p50_secs"`
	CachedP99Secs  float64 `json:"cached_p99_secs"`
	CacheP99Ratio  float64 `json:"cache_p99_ratio"`
	QuerySamples   int     `json:"query_samples"`
	DistinctShapes int     `json:"distinct_shapes"`
}

func runK1(cfg runConfig, w *tabwriter.Writer) {
	censusNodes, corpusN, queryReps := 400, 500, 20
	if cfg.full {
		censusNodes, corpusN, queryReps = 1200, 1000, 40
	}
	report := kernelBenchReport{Full: cfg.full, Seed: cfg.seed}

	// Kernel 1: the 4-node census, ESU enumeration vs combinatorial
	// counting on the same synthetic network (identical results, checked).
	net := datagen.WattsStrogatz(cfg.seed, censusNodes, 8, 0.1)
	t0 := time.Now()
	enumCensus := graphlet.CensusEnumN(net, 4, 1)
	report.CensusEnumSecs = time.Since(t0).Seconds()
	t0 = time.Now()
	combCensus := graphlet.CensusN(net, 4, 1)
	report.CensusCombSecs = time.Since(t0).Seconds()
	if report.CensusCombSecs > 0 {
		report.CensusSpeedup = report.CensusEnumSecs / report.CensusCombSecs
	}
	if len(enumCensus) != len(combCensus) {
		fmt.Fprintf(w, "WARNING: census mismatch (%d vs %d keys)\n", len(enumCensus), len(combCensus))
	}
	fmt.Fprintf(w, "census k=4 (n=%d)\tenum %.3fs\tcomb %.5fs\t%.0fx\n",
		censusNodes, report.CensusEnumSecs, report.CensusCombSecs, report.CensusSpeedup)

	// Kernel 2: candidate filtering over a corpus index, reference vs
	// bitset path, amortized over a pool of random connected queries.
	corpus := datagen.ChemicalCorpus(cfg.seed, corpusN, chemOpts())
	idx := gindex.Build(corpus)
	rng := rand.New(rand.NewSource(cfg.seed))
	var queries []*graph.Graph
	for len(queries) < 30 {
		q := datagen.RandomConnectedSubgraph(rng, corpus.Graph(rng.Intn(corpus.Len())), 5+rng.Intn(4))
		if q != nil {
			queries = append(queries, q)
		}
	}
	const candReps = 300
	t0 = time.Now()
	for r := 0; r < candReps; r++ {
		for _, q := range queries {
			idx.CandidatesReference(q)
		}
	}
	report.CandidatesRefSecs = time.Since(t0).Seconds()
	t0 = time.Now()
	for r := 0; r < candReps; r++ {
		for _, q := range queries {
			idx.Candidates(q)
		}
	}
	report.CandidatesNewSecs = time.Since(t0).Seconds()
	if report.CandidatesNewSecs > 0 {
		report.CandidatesSpeedup = report.CandidatesRefSecs / report.CandidatesNewSecs
	}
	fmt.Fprintf(w, "gindex.Candidates (%d queries x%d)\tref %.4fs\tbitset %.4fs\t%.2fx\n",
		len(queries), candReps, report.CandidatesRefSecs, report.CandidatesNewSecs, report.CandidatesSpeedup)

	// Kernel 3: the serving query path, cold vs cached. Cold runs the full
	// filter-verify search per request; cached goes through the
	// canonical-keyed qcache exactly as vqiserve's /api/query does.
	opts := pattern.MatchOptions()
	ctx := context.Background()
	var cold []float64
	for r := 0; r < queryReps; r++ {
		for _, q := range queries {
			t := time.Now()
			idx.SearchCtx(ctx, q, opts)
			cold = append(cold, time.Since(t).Seconds())
		}
	}
	cache := qcache.New[gindex.Result](1024)
	for _, q := range queries { // prime: one miss per distinct shape
		qq := q
		cache.Do(canon.String(qq), func() (gindex.Result, bool) {
			return idx.SearchCtx(ctx, qq, opts), true
		})
	}
	var cached []float64
	for r := 0; r < queryReps; r++ {
		for _, q := range queries {
			qq := q
			t := time.Now()
			cache.Do(canon.String(qq), func() (gindex.Result, bool) {
				return idx.SearchCtx(ctx, qq, opts), true
			})
			cached = append(cached, time.Since(t).Seconds())
		}
	}
	sort.Float64s(cold)
	sort.Float64s(cached)
	report.ColdP50Secs = percentile(cold, 0.50)
	report.ColdP99Secs = percentile(cold, 0.99)
	report.CachedP50Secs = percentile(cached, 0.50)
	report.CachedP99Secs = percentile(cached, 0.99)
	if report.CachedP99Secs > 0 {
		report.CacheP99Ratio = report.ColdP99Secs / report.CachedP99Secs
	}
	report.QuerySamples = len(cold)
	report.DistinctShapes = len(queries)
	fmt.Fprintf(w, "query path (%d samples)\tcold p50 %.6fs p99 %.6fs\tcached p50 %.6fs p99 %.6fs\tp99 ratio %.0fx\n",
		report.QuerySamples, report.ColdP50Secs, report.ColdP99Secs,
		report.CachedP50Secs, report.CachedP99Secs, report.CacheP99Ratio)

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_kernels.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_kernels.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_kernels.json")
		}
	}
}
