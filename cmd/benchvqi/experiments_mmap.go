package main

// Experiment M1: the snapshot-v2 capacity suite. Measures what the mmap
// boot path buys as the corpus grows: time-to-ready and Go heap residency
// for an eager (decode everything) boot versus an mmap boot (validate
// header + frame index, restore persisted per-shard index sections, leave
// every graph cold) at 1x/4x/16x corpus scale, plus the price of lazy
// hydration on the query path — first-touch p99 (each query faults in the
// graphs it verifies against) versus warm p99 on the same query pool.
// Asserts the contract the boot path is sold on: a clean mmap boot
// restores every shard from sections (restores > 0, rebuilds == 0,
// nothing replayed). Emits BENCH_mmap.json.

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"repro/internal/ann"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/store"
)

func init() {
	register("M1", "mmap capacity: cold-ready + heap eager vs mapped at 1x/4x/16x, first-touch vs warm p99 (emits BENCH_mmap.json)", runM1)
}

type mmapScaleResult struct {
	Scale            int     `json:"scale"`
	Graphs           int     `json:"graphs"`
	SnapshotBytes    int64   `json:"snapshot_bytes"`
	EagerReadyMillis float64 `json:"eager_ready_ms"`
	MmapReadyMillis  float64 `json:"mmap_ready_ms"`
	EagerHeapBytes   int64   `json:"eager_heap_bytes"`
	MmapHeapBytes    int64   `json:"mmap_heap_bytes"`
	SectionsRestored int     `json:"sections_restored"`
	SectionsRebuilt  int     `json:"sections_rebuilt"`
	Replayed         int     `json:"replayed"`
	FirstTouchP99    float64 `json:"first_touch_p99_ms"`
	WarmP99          float64 `json:"warm_p99_ms"`
}

type mmapReport struct {
	CPUs   int               `json:"cpus"`
	Full   bool              `json:"full"`
	Seed   int64             `json:"seed"`
	Shards int               `json:"shards"`
	Scales []mmapScaleResult `json:"scales"`
	// Cold-ready growth from 1x to 16x corpus, per boot mode. The mmap
	// ratio is the headline: boot cost tracks index size, not corpus
	// size, so it must stay well under the 16x corpus growth.
	EagerReady16xOver1x float64 `json:"eager_ready_16x_over_1x"`
	MmapReady16xOver1x  float64 `json:"mmap_ready_16x_over_1x"`
	ContractViolations  int     `json:"contract_violations"`
}

// heapInUse forces a collection and reports live heap. Mapped snapshot
// pages live outside the Go heap, so this is the eager-vs-mmap contrast
// we care about: what boot itself forces resident.
func heapInUse() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapInuse)
}

func runM1(cfg runConfig, w *tabwriter.Writer) {
	base, batchN, queryN := 60, 2, 12
	if cfg.full {
		base, batchN, queryN = 250, 4, 30
	}
	const shards = 4
	annCfg := ann.Config{Tables: 6, Bits: 10, Seed: cfg.seed}
	report := mmapReport{CPUs: runtime.NumCPU(), Full: cfg.full, Seed: cfg.seed, Shards: shards}

	fmt.Fprintf(w, "scale\tgraphs\tsnap bytes\teager ready (ms)\tmmap ready (ms)\teager heap\tmmap heap\tsections\tfirst-touch p99\twarm p99\n")
	for _, scale := range []int{1, 4, 16} {
		n := base * scale
		res, ok := runM1Scale(cfg, w, scale, n, batchN, queryN, shards, annCfg, &report)
		if !ok {
			return
		}
		report.Scales = append(report.Scales, res)
		fmt.Fprintf(w, "%dx\t%d\t%d\t%.1f\t%.1f\t%s\t%s\t%d/%d\t%.3f\t%.3f\n",
			scale, res.Graphs, res.SnapshotBytes, res.EagerReadyMillis, res.MmapReadyMillis,
			fmtBytes(res.EagerHeapBytes), fmtBytes(res.MmapHeapBytes),
			res.SectionsRestored, res.SectionsRestored+res.SectionsRebuilt,
			res.FirstTouchP99, res.WarmP99)
	}

	first, last := report.Scales[0], report.Scales[len(report.Scales)-1]
	if first.EagerReadyMillis > 0 {
		report.EagerReady16xOver1x = last.EagerReadyMillis / first.EagerReadyMillis
	}
	if first.MmapReadyMillis > 0 {
		report.MmapReady16xOver1x = last.MmapReadyMillis / first.MmapReadyMillis
	}
	fmt.Fprintf(w, "cold-ready growth 1x->16x\teager %.2fx\tmmap %.2fx\t(corpus grew 16x)\n",
		report.EagerReady16xOver1x, report.MmapReady16xOver1x)
	if report.ContractViolations > 0 {
		fmt.Fprintf(w, "CONTRACT VIOLATIONS: %d (see lines above)\n", report.ContractViolations)
	}

	payload, err := json.MarshalIndent(report, "", "  ")
	if err == nil {
		if err := os.WriteFile("BENCH_mmap.json", payload, 0o644); err != nil {
			fmt.Fprintf(w, "write BENCH_mmap.json: %v\n", err)
		} else {
			fmt.Fprintln(w, "wrote BENCH_mmap.json")
		}
	}
}

func runM1Scale(cfg runConfig, w *tabwriter.Writer, scale, n, batchN, queryN, shards int, annCfg ann.Config, report *mmapReport) (mmapScaleResult, bool) {
	res := mmapScaleResult{Scale: scale, Graphs: n}
	dir, err := os.MkdirTemp("", "benchvqi-m1-*")
	if err != nil {
		fmt.Fprintf(w, "tempdir: %v\n", err)
		return res, false
	}
	defer os.RemoveAll(dir)

	// Seed a durable instance, run a few batches so epochs are non-zero,
	// then compact: the compacted snapshot is v2 with per-shard sections,
	// which is what both boot variants below recover from.
	seedCorpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	opts := core.DurableIndexOptions{Shards: shards, ANN: &annCfg}
	di, _, err := core.OpenDurableIndex(context.Background(), dir, seedCorpus, opts)
	if err != nil {
		fmt.Fprintf(w, "%dx seed: %v\n", scale, err)
		return res, false
	}
	rng := rand.New(rand.NewSource(cfg.seed + int64(scale)))
	for b := 0; b < batchN; b++ {
		g := datagen.Chemical(rng, fmt.Sprintf("m1-%dx-add-%d", scale, b), chemOpts())
		if _, _, err := di.ApplyBatch([]*graph.Graph{g}, nil); err != nil {
			fmt.Fprintf(w, "%dx batch: %v\n", scale, err)
			return res, false
		}
	}
	if _, err := di.Compact(); err != nil {
		fmt.Fprintf(w, "%dx compact: %v\n", scale, err)
		return res, false
	}
	res.Graphs = di.Corpus().Len()
	di.Close()
	di = nil
	if ents, err := os.ReadDir(dir); err == nil {
		for _, e := range ents {
			if fi, err := e.Info(); err == nil && !e.IsDir() {
				res.SnapshotBytes += fi.Size()
			}
		}
	}

	// The query pool is drawn from an in-memory regeneration of the same
	// deterministic corpus so building it never touches (and never warms)
	// the instance under measurement.
	var queries []*graph.Graph
	for len(queries) < queryN {
		q := datagen.RandomConnectedSubgraph(rng, seedCorpus.Graph(rng.Intn(seedCorpus.Len())), 5+rng.Intn(4))
		if q != nil {
			queries = append(queries, q)
		}
	}
	seedCorpus = nil

	boot := func(mmap bool) (*core.DurableIndex, *core.BootReport, float64, int64, bool) {
		before := heapInUse()
		t0 := time.Now()
		bo := opts
		bo.Store = store.Options{Mmap: mmap}
		bdi, rep, err := core.OpenDurableIndex(context.Background(), dir, nil, bo)
		elapsed := float64(time.Since(t0).Microseconds()) / 1000
		if err != nil {
			fmt.Fprintf(w, "%dx boot mmap=%v: %v\n", scale, mmap, err)
			return nil, nil, 0, 0, false
		}
		heap := heapInUse() - before
		if heap < 0 {
			heap = 0
		}
		return bdi, rep, elapsed, heap, true
	}

	edi, _, eagerMs, eagerHeap, ok := boot(false)
	if !ok {
		return res, false
	}
	res.EagerReadyMillis, res.EagerHeapBytes = eagerMs, eagerHeap
	edi.Close()
	edi = nil

	mdi, mrep, mmapMs, mmapHeap, ok := boot(true)
	if !ok {
		return res, false
	}
	defer mdi.Close()
	res.MmapReadyMillis, res.MmapHeapBytes = mmapMs, mmapHeap
	res.SectionsRestored, res.SectionsRebuilt = mrep.SectionsRestored, mrep.SectionsRebuilt
	res.Replayed = mrep.Replayed
	if !mrep.Mapped || mrep.SectionsRestored == 0 || mrep.SectionsRebuilt != 0 || mrep.Replayed != 0 {
		report.ContractViolations++
		fmt.Fprintf(w, "%dx CONTRACT: mapped=%v restored=%d rebuilt=%d replayed=%d (want mapped, >0, 0, 0)\n",
			scale, mrep.Mapped, mrep.SectionsRestored, mrep.SectionsRebuilt, mrep.Replayed)
	}

	// First pass hydrates every graph a query verifies against straight
	// from the mapping; the second pass runs against warm state.
	mopts := pattern.MatchOptions()
	mopts.MaxResults = 10
	measure := func() []float64 {
		lat := make([]float64, 0, len(queries))
		for _, q := range queries {
			t0 := time.Now()
			mdi.Index().Search(q, mopts)
			lat = append(lat, float64(time.Since(t0).Microseconds())/1000)
		}
		sort.Float64s(lat)
		return lat
	}
	res.FirstTouchP99 = percentile(measure(), 0.99)
	res.WarmP99 = percentile(measure(), 0.99)
	return res, true
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
