package main

// Experiments E1-E4: CATAPULT efficiency and quality, and the usability
// comparison between manual and data-driven VQIs.

import (
	"fmt"
	"text/tabwriter"
	"time"

	"repro/internal/baseline"
	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/simulate"
	"repro/internal/tattoo"
	"repro/internal/vqi"
)

func chemOpts() datagen.ChemicalOptions {
	return datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 24}
}

func stdBudget(count int) pattern.Budget {
	return pattern.Budget{Count: count, MinSize: 4, MaxSize: 12}
}

func init() {
	register("E1", "CATAPULT selection time vs corpus size (vs frequent-mining baseline)", runE1)
	register("E2", "coverage vs pattern budget: CATAPULT vs random vs top-frequent", runE2)
	register("E3", "diversity and cognitive load of selected pattern sets", runE3)
	register("E4", "query formulation steps/time: manual vs data-driven VQI", runE4)
}

func runE1(cfg runConfig, w *tabwriter.Writer) {
	sizes := []int{250, 500, 1000, 2000}
	fsmLimit := 60 * time.Second
	if cfg.full {
		sizes = []int{1000, 2000, 4000, 8000}
		fsmLimit = 300 * time.Second
	}
	fmt.Fprintln(w, "|D|\tCATAPULT (s)\texhaustive FSM (s)\tFSM timed out?\tcatapult coverage\tFSM coverage")
	for _, n := range sizes {
		corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
		b := stdBudget(10)

		t0 := time.Now()
		res, err := catapult.Select(corpus, catapult.Config{Budget: b, Seed: cfg.seed})
		if err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", n, err)
			continue
		}
		catTime := time.Since(t0)

		t1 := time.Now()
		fsm, truncated, err := baseline.ExhaustiveFSM(corpus, b, 0.1, fsmLimit)
		if err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", n, err)
			continue
		}
		fsmTime := time.Since(t1)
		fsmCov := pattern.SetEdgeCoverage(fsm, corpus, pattern.MatchOptions())

		fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%v\t%.3f\t%.3f\n",
			n, catTime.Seconds(), fsmTime.Seconds(), truncated, res.Coverage, fsmCov)
	}
}

func runE2(cfg runConfig, w *tabwriter.Writer) {
	n := 300
	if cfg.full {
		n = 1000
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	opts := pattern.MatchOptions()
	fmt.Fprintln(w, "budget b\tCATAPULT\trandom\ttop-frequent\tmanual(chemistry)")
	manual, _ := vqi.BuildManual(vqi.PresetChemistry, corpus)
	manualPats, _ := manual.AllPatterns()
	var manualCanned []*pattern.Pattern
	for _, p := range manualPats {
		if !p.IsBasic() {
			manualCanned = append(manualCanned, p)
		}
	}
	manualCov := pattern.SetEdgeCoverage(manualCanned, corpus, opts)
	for _, b := range []int{5, 10, 15, 20} {
		budget := stdBudget(b)
		res, err := catapult.Select(corpus, catapult.Config{Budget: budget, Seed: cfg.seed})
		if err != nil {
			fmt.Fprintf(w, "%d\terror: %v\n", b, err)
			continue
		}
		rnd, _ := baseline.Random(corpus, budget, cfg.seed)
		frq, _ := baseline.TopFrequent(corpus, budget, cfg.seed, 0)
		fmt.Fprintf(w, "%d\t%.3f\t%.3f\t%.3f\t%.3f\n",
			b,
			res.Coverage,
			pattern.SetEdgeCoverage(rnd, corpus, opts),
			pattern.SetEdgeCoverage(frq, corpus, opts),
			manualCov)
	}
}

func runE3(cfg runConfig, w *tabwriter.Writer) {
	n := 300
	if cfg.full {
		n = 1000
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	fmt.Fprintln(w, "budget b\tselector\tdiversity\tmean cognitive load")
	for _, b := range []int{5, 10, 15} {
		budget := stdBudget(b)
		res, err := catapult.Select(corpus, catapult.Config{Budget: budget, Seed: cfg.seed})
		if err != nil {
			continue
		}
		rnd, _ := baseline.Random(corpus, budget, cfg.seed)
		frq, _ := baseline.TopFrequent(corpus, budget, cfg.seed, 0)
		for _, row := range []struct {
			name string
			set  []*pattern.Pattern
		}{
			{"catapult", res.Patterns},
			{"random", rnd},
			{"top-frequent", frq},
		} {
			fmt.Fprintf(w, "%d\t%s\t%.3f\t%.3f\n", b, row.name,
				pattern.SetDiversity(row.set),
				pattern.SetCognitiveLoad(row.set, budget))
		}
	}
}

func runE4(cfg runConfig, w *tabwriter.Writer) {
	n, queries := 200, 60
	if cfg.full {
		n, queries = 1000, 200
	}
	corpus := datagen.ChemicalCorpus(cfg.seed, n, chemOpts())
	// Error-aware cost model: slips cost undo+redo, so the "Errors"
	// usability criterion is reported alongside steps and time.
	cm := simulate.ErrorAwareCostModel()

	ddSpec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{Budget: stdBudget(10), Seed: cfg.seed})
	if err != nil {
		fmt.Fprintf(w, "error: %v\n", err)
		return
	}
	manBasic, _ := vqi.BuildManual(vqi.PresetBasicOnly, corpus)
	manChem, _ := vqi.BuildManual(vqi.PresetChemistry, corpus)

	fmt.Fprintln(w, "query size (nodes)\tVQI\tmean steps\tmean time (s)\texp. errors\tpattern edge share")
	for _, qsize := range [][2]int{{4, 6}, {7, 9}, {10, 12}} {
		wl, err := simulate.CorpusWorkload(corpus, queries, qsize[0], qsize[1], cfg.seed)
		if err != nil {
			continue
		}
		for _, row := range []struct {
			name string
			spec *vqi.Spec
		}{
			{"manual basic-only", manBasic},
			{"manual chemistry", manChem},
			{"data-driven (CATAPULT)", ddSpec},
		} {
			panel, _ := row.spec.AllPatterns()
			s := simulate.Evaluate(wl, panel, cm)
			fmt.Fprintf(w, "%d-%d\t%s\t%.1f\t%.1f\t%.2f\t%.2f\n",
				qsize[0], qsize[1], row.name, s.MeanSteps, s.MeanTime, s.MeanErrors, s.PatternEdgeShare)
		}
	}

	// Network-side comparison (TATTOO vs basic-only), one row each.
	g := datagen.BarabasiAlbert(cfg.seed, 2000, 3)
	netSpec, _, err := vqi.BuildFromNetwork(g, tattoo.Config{Budget: stdBudget(10), Seed: cfg.seed})
	if err != nil {
		return
	}
	wl, err := simulate.NetworkWorkload(g, queries, 5, 10, cfg.seed)
	if err != nil {
		return
	}
	for _, row := range []struct {
		name string
		spec *vqi.Spec
	}{
		{"network manual basic-only", manBasic},
		{"network data-driven (TATTOO)", netSpec},
	} {
		panel, _ := row.spec.AllPatterns()
		s := simulate.Evaluate(wl, panel, cm)
		fmt.Fprintf(w, "5-10\t%s\t%.1f\t%.1f\t%.2f\t%.2f\n",
			row.name, s.MeanSteps, s.MeanTime, s.MeanErrors, s.PatternEdgeShare)
	}
}

// singletonCorpus builds a 1-graph corpus (helper shared by experiments).
func singletonCorpus(g *graph.Graph) *graph.Corpus {
	c := graph.NewCorpus()
	c.MustAdd(g)
	return c
}
