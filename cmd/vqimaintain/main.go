// Command vqimaintain demonstrates MIDAS maintenance: it builds a VQI over
// a base corpus, applies one or more daily batch updates, and reports the
// minor/major classification and swap statistics of each batch alongside
// the cost of the naive alternative (re-running CATAPULT from scratch).
//
// Example:
//
//	vqimaintain -base base.lg -add day1.lg -add day2.lg -remove mol3,mol7 \
//	            -out maintained.json -count 10
//
// Each -add file contributes one batch; -remove names are deleted in the
// first batch.
//
// With -compact it instead operates on a durable data directory (the
// vqiserve -data-dir layout): it folds the write-ahead log into a fresh
// snapshot via an atomic rename swap and exits:
//
//	vqimaintain -compact -data-dir /var/lib/vqi -shards 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var adds multiFlag
	var (
		base    = flag.String("base", "", "base corpus .lg file (required)")
		remove  = flag.String("remove", "", "comma-separated graph names to delete in the first batch")
		out     = flag.String("out", "maintained.json", "output spec file")
		count   = flag.Int("count", 10, "canned pattern budget")
		minSize = flag.Int("minsize", 4, "min pattern size (edges)")
		maxSize = flag.Int("maxsize", 12, "max pattern size (edges)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "worker pool size for parallel stages (0 = all CPUs); results are identical at any value")
		shards  = flag.Int("shards", 0, "also maintain a sharded filter-verify index with this many shards, rebuilding only touched shards per batch (0 = all CPUs, -1 = no index)")
		rerun   = flag.Bool("compare-rerun", false, "also time a from-scratch rebuild per batch")
		state   = flag.String("state", "", "maintenance state file: loaded if present, saved after the run (with the updated corpus alongside as <state>.lg)")
		timeout = flag.Duration("timeout", 0, "per-batch maintenance budget; corpus bookkeeping always completes, pattern improvement stops at the deadline (0 = unlimited)")
		metrics = flag.Bool("metrics", false, "print a per-stage timing table for each maintenance batch")
		dataDir = flag.String("data-dir", "", "durable data directory (snapshots + write-ahead log) to operate on; required by -compact")
		compact = flag.Bool("compact", false, "fold the data directory's WAL into a fresh snapshot (atomic rename swap), prune superseded snapshots and stale temp files, and exit; pass the serving -shards so recovered epochs stay exact")
		mmap    = flag.Bool("mmap", false, "with -compact: recover via the mapped O(index) boot path (persisted index sections; graphs hydrate lazily)")
	)
	flag.Var(&adds, "add", ".lg file of graphs to insert (repeatable; one batch each)")
	flag.Parse()
	if *compact {
		if *dataDir == "" {
			fmt.Fprintln(os.Stderr, "vqimaintain: -compact requires -data-dir")
			os.Exit(2)
		}
		if err := compactDataDir(*dataDir, *shards, *workers, *mmap, *metrics); err != nil {
			fatal(err)
		}
		return
	}
	if *base == "" {
		fmt.Fprintln(os.Stderr, "vqimaintain: -base is required")
		flag.Usage()
		os.Exit(2)
	}
	corpus, err := gio.LoadCorpus(*base)
	if err != nil {
		fatal(err)
	}
	opts := core.Options{
		Budget:  core.Budget{Count: *count, MinSize: *minSize, MaxSize: *maxSize},
		Seed:    *seed,
		Workers: *workers,
	}
	start := time.Now()
	var m *core.Maintainer
	if *state != "" {
		if data, err := os.ReadFile(*state); err == nil {
			m, err = core.LoadMaintainer(data, corpus, opts)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("resumed maintenance state from %s (%d graphs)\n", *state, m.Corpus().Len())
		}
	}
	if m == nil {
		var err error
		m, err = core.NewMaintainer(corpus, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("initial build over %d graphs in %v\n", m.Corpus().Len(), time.Since(start).Round(time.Millisecond))
	}
	if *shards >= 0 {
		t0 := time.Now()
		m.EnableIndex(*shards, *workers)
		fmt.Printf("built %d-shard filter-verify index in %v\n",
			m.Index().NumShards(), time.Since(t0).Round(time.Millisecond))
	}

	removals := splitNames(*remove)
	for bi, addFile := range adds {
		batchCorpus, err := gio.LoadCorpus(addFile)
		if err != nil {
			fatal(err)
		}
		var added []*graph.Graph
		batchCorpus.Each(func(_ int, g *graph.Graph) { added = append(added, g) })
		var rm []string
		if bi == 0 {
			rm = removals
		}
		t0 := time.Now()
		rep, err := applyWithBudget(m, *timeout, *metrics, fmt.Sprintf("batch %d", bi+1), added, rm)
		if err != nil {
			fatal(err)
		}
		maintainTime := time.Since(t0)
		kind := "minor"
		if rep.Major {
			kind = "major"
		}
		if rep.Truncated {
			kind += ", truncated by -timeout"
		}
		fmt.Printf("batch %d (%s): +%d -%d graphs, GFD distance %.4f (%s), %d candidates, %d swaps, score %.3f -> %.3f, patterns %v, total %v\n",
			bi+1, addFile, rep.Added, rep.Removed, rep.GFDDistance, kind,
			rep.Candidates, rep.Swaps, rep.ScoreBefore, rep.ScoreAfter,
			rep.Elapsed.Round(time.Millisecond), maintainTime.Round(time.Millisecond))
		if rep.Index != nil {
			fmt.Printf("  index: rebuilt %d/%d shards %v\n",
				len(rep.Index.Rebuilt), rep.Index.Shards, rep.Index.Rebuilt)
		}
		if *rerun {
			t1 := time.Now()
			if _, err := core.BuildCorpusVQI(m.Corpus().Clone(), opts); err != nil {
				fatal(err)
			}
			fmt.Printf("  from-scratch rebuild would take %v (%.1fx maintenance)\n",
				time.Since(t1).Round(time.Millisecond),
				float64(time.Since(t1))/float64(maintainTime))
		}
	}
	if len(adds) == 0 && len(removals) > 0 {
		rep, err := applyWithBudget(m, *timeout, *metrics, "removal batch", nil, removals)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("removal-only batch: -%d graphs, GFD distance %.4f, %v\n", rep.Removed, rep.GFDDistance, rep.Elapsed.Round(time.Millisecond))
		if rep.Index != nil {
			fmt.Printf("  index: rebuilt %d/%d shards %v\n",
				len(rep.Index.Rebuilt), rep.Index.Shards, rep.Index.Rebuilt)
		}
	}

	payload, err := m.Spec().Encode()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fatal(err)
	}
	if *state != "" {
		stData, err := m.MarshalState()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*state, stData, 0o644); err != nil {
			fatal(err)
		}
		if err := gio.SaveCorpus(*state+".lg", m.Corpus()); err != nil {
			fatal(err)
		}
		fmt.Printf("saved maintenance state to %s (corpus: %s.lg)\n", *state, *state)
	}
	fmt.Printf("final: %s\nwrote %s\n", core.Describe(m.Spec()), *out)
}

// compactDataDir folds the directory's WAL suffix into a fresh snapshot:
// recover (snapshot + replay, which re-derives the per-shard epochs
// exactly as a serving instance would), write the new snapshot via
// tmp-file + atomic rename, retain the previous snapshot as the
// corruption fallback, and prune the folded WAL records. The store's
// exclusive directory lock makes running this against a live vqiserve's
// data directory fail fast instead of racing its appends — stop the
// server (or point at a copy) first; the shard count should match the
// serving -shards so the snapshotted epochs carry over on the next boot.
func compactDataDir(dir string, shards, workers int, mmap, metrics bool) error {
	start := time.Now()
	ctx := context.Background()
	var tr *obs.Trace
	if metrics {
		ctx, tr = obs.StartTrace(ctx, "compact")
	}
	di, rep, err := core.OpenDurableIndex(ctx, dir, nil,
		core.DurableIndexOptions{Shards: shards, Workers: workers,
			Store: store.Options{Mmap: mmap}})
	if err != nil {
		return err
	}
	defer di.Close()
	fmt.Printf("recovered %d graphs at seq %d (replayed %d WAL batches", di.Corpus().Len(), rep.Seq, rep.Replayed)
	if rep.TailTruncated {
		fmt.Printf(", truncated a torn WAL tail")
	}
	if rep.SnapshotsSkipped > 0 {
		fmt.Printf(", skipped %d corrupt snapshots", rep.SnapshotsSkipped)
	}
	if mmap {
		fmt.Printf(", mapped=%v, sections restored/rebuilt %d/%d",
			rep.Mapped, rep.SectionsRestored, rep.SectionsRebuilt)
	}
	fmt.Printf(")\n")
	// Even a fully-folded WAL still gets a prune pass: superseded
	// snapshots beyond the single fallback and stale temp files are
	// reclaimed, so repeated runs keep the directory bounded.
	pr, err := di.Compact()
	if err != nil {
		return err
	}
	if !pr.SnapshotWritten {
		fmt.Println("WAL already folded; snapshot up to date")
	}
	fmt.Printf("pruned: %d snapshots (%d bytes), %d temp files, %d WAL records (%d bytes)\n",
		pr.SnapshotsRemoved, pr.SnapshotBytesReclaimed, pr.TmpFilesRemoved,
		pr.WALRecordsFolded, pr.WALBytesReclaimed)
	if tr != nil {
		fmt.Print(tr.Table())
	}
	fmt.Printf("compacted %s to seq %d in %v\n", dir, rep.Seq, time.Since(start).Round(time.Millisecond))
	return nil
}

// applyWithBudget runs one maintenance batch under the -timeout budget
// (unlimited when zero). With metrics, the batch runs under a trace and
// its per-stage timing table (midas.assign, midas.gfd, ...) is printed.
func applyWithBudget(m *core.Maintainer, timeout time.Duration, metrics bool, name string, added []*graph.Graph, rm []string) (*core.BatchReport, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var tr *obs.Trace
	if metrics {
		ctx, tr = obs.StartTrace(ctx, name)
	}
	rep, err := m.ApplyBatchCtx(ctx, added, rm)
	if tr != nil && err == nil {
		fmt.Print(tr.Table())
	}
	return rep, err
}

func splitNames(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vqimaintain: %v\n", err)
	os.Exit(1)
}
