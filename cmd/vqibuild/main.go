// Command vqibuild constructs a visual query interface specification from
// a graph data source and writes it as JSON.
//
// Data-driven construction picks the right framework automatically: a
// multi-graph .lg file is treated as a corpus of data graphs (CATAPULT), a
// single-graph file as a large network (TATTOO). Manual presets build the
// hard-coded comparison interfaces.
//
// Examples:
//
//	vqibuild -data corpus.lg -out vqi.json -count 10 -minsize 4 -maxsize 12
//	vqibuild -data network.lg -out vqi.json
//	vqibuild -data corpus.lg -manual chemistry -out manual.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/gio"
	"repro/internal/obs"
	"repro/internal/store"
)

func main() {
	var (
		data    = flag.String("data", "", "input .lg file (required)")
		out     = flag.String("out", "vqi.json", "output spec file")
		count   = flag.Int("count", 10, "canned pattern budget")
		minSize = flag.Int("minsize", 4, "min pattern size (edges)")
		maxSize = flag.Int("maxsize", 12, "max pattern size (edges)")
		seed    = flag.Int64("seed", 1, "random seed")
		workers = flag.Int("workers", 0, "worker pool size for parallel stages (0 = all CPUs); results are identical at any value")
		manual  = flag.String("manual", "", "build a manual preset instead: basic-only|chemistry")
		timeout = flag.Duration("timeout", 0, "overall build budget; an exhausted budget still writes the best spec found so far (0 = unlimited)")
		metrics = flag.Bool("metrics", false, "print a per-stage timing table for the build pipeline")
		dataDir = flag.String("data-dir", "", "also write the corpus as the initial snapshot of a durable data directory, so vqiserve -data-dir boots from it without re-parsing the .lg")
	)
	flag.Parse()
	if *data == "" {
		fmt.Fprintln(os.Stderr, "vqibuild: -data is required")
		flag.Usage()
		os.Exit(2)
	}
	corpus, err := gio.LoadCorpus(*data)
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		st, rec, err := store.Open(context.Background(), *dataDir, store.Options{})
		if err != nil {
			fatal(err)
		}
		if rec.Corpus != nil {
			fatal(fmt.Errorf("data directory %s already holds durable state at seq %d; refusing to overwrite it with a fresh seed", *dataDir, rec.LastSeq()))
		}
		if err := st.Seed(corpus); err != nil {
			fatal(err)
		}
		if err := st.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("seeded data directory %s with %d graphs\n", *dataDir, corpus.Len())
	}
	opts := core.Options{
		Budget:  core.Budget{Count: *count, MinSize: *minSize, MaxSize: *maxSize},
		Seed:    *seed,
		Workers: *workers,
	}
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	// With -metrics, a trace rides the context so every pipeline stage
	// span (catapult.cluster, tattoo.sample, ...) lands in one table.
	var tr *obs.Trace
	if *metrics {
		ctx, tr = obs.StartTrace(ctx, "vqibuild")
	}
	start := time.Now()
	var spec *core.Spec
	var truncated bool
	switch {
	case *manual != "":
		spec, err = core.BuildManualVQI(*manual, corpus)
	case corpus.Len() == 1:
		fmt.Printf("single graph with %d nodes: using TATTOO (large network)\n",
			corpus.Graph(0).NumNodes())
		spec, truncated, err = core.BuildNetworkVQICtx(ctx, corpus.Graph(0), opts)
	default:
		fmt.Printf("corpus of %d data graphs: using CATAPULT\n", corpus.Len())
		spec, truncated, err = core.BuildCorpusVQICtx(ctx, corpus, opts)
	}
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	if tr != nil {
		fmt.Print(tr.Table())
	}
	if truncated {
		fmt.Printf("warning: -timeout %v exhausted after %v; writing the best spec found so far\n",
			*timeout, elapsed.Round(time.Millisecond))
	}

	payload, err := spec.Encode()
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, payload, 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("built in %v: %s\n", elapsed.Round(time.Millisecond), core.Describe(spec))
	if *manual == "" {
		q, err := core.EvaluateQuality(spec, corpus, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("quality: coverage=%.3f diversity=%.3f cogload=%.3f score=%.3f\n",
			q.Coverage, q.Diversity, q.CognitiveLoad, q.SetScore)
	}
	fmt.Printf("wrote %s\n", *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "vqibuild: %v\n", err)
	os.Exit(1)
}
