package main

import (
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// snapshotMetrics scrapes the handler's /metrics endpoint the way a
// client would, so the tests exercise the full serialization path rather
// than peeking at the registry.
func snapshotMetrics(t *testing.T, s *server) obs.Snapshot {
	t.Helper()
	rec := httptest.NewRecorder()
	s.routes().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestMetricsConsistentUnderConcurrentLoad is the accounting property:
// whatever interleaving the scheduler picks, after the dust settles the
// request counter, the latency histogram's sample count, and the sum of
// the status-class counters all equal exactly the number of requests
// issued, valid and invalid alike. Run under -race this also proves the
// recording paths are data-race-free.
func TestMetricsConsistentUnderConcurrentLoad(t *testing.T) {
	s := adminServer(t, 2, 64)
	h := s.routes()
	const workers = 8
	const perWorker = 25 // per worker: 15 valid + 10 malformed

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				body := ccQuery
				if i%5 >= 3 { // 2 of every 5 malformed
					body = `{"nodes":`
				}
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/query", strings.NewReader(body)))
				if rec.Code != 200 && rec.Code != 400 {
					t.Errorf("unexpected status %d", rec.Code)
				}
			}
		}()
	}
	wg.Wait()

	const total = workers * perWorker
	const bad = workers * (perWorker / 5 * 2)
	snap := snapshotMetrics(t, s)
	if got := counterOf(t, snap, "vqiserve_requests_total", "route", "/api/query"); got != total {
		t.Fatalf("requests counter = %d, want %d", got, total)
	}
	hist, ok := snap.FindHistogram("vqiserve_request_seconds", "route", "/api/query")
	if !ok {
		t.Fatal("latency histogram missing")
	}
	if hist.Count != total {
		t.Fatalf("histogram count = %d, want %d", hist.Count, total)
	}
	if hist.Sum <= 0 || math.IsNaN(hist.Sum) || math.IsInf(hist.Sum, 0) {
		t.Fatalf("histogram sum = %v, want finite positive", hist.Sum)
	}
	var classSum int64
	for _, c := range snap.Counters {
		if c.Name == "vqiserve_responses_total" && c.Labels["route"] == "/api/query" {
			classSum += c.Value
		}
	}
	if classSum != total {
		t.Fatalf("status classes sum to %d, want %d", classSum, total)
	}
	if got := counterOf(t, snap, "vqiserve_responses_total", "route", "/api/query", "class", "4xx"); got != bad {
		t.Fatalf("4xx = %d, want %d", got, bad)
	}
	if got := counterOf(t, snap, "vqiserve_responses_total", "route", "/api/query", "class", "2xx"); got != total-bad {
		t.Fatalf("2xx = %d, want %d", got, total-bad)
	}
	// The scrape that produced this snapshot is itself in flight while the
	// snapshot is taken, so a drained server reads exactly 1.
	if inflight := gaugeOf(t, snap, "vqiserve_inflight_requests"); inflight != 1 {
		t.Fatalf("inflight = %v after load drained, want 1 (the scrape itself)", inflight)
	}
}

// TestVerifyFaultCountsErrors injects deterministic verify-stage failures
// and checks they surface as 500s, increment the error counter exactly as
// many times as they fired, and leave the latency histogram accounting
// every request — errors included — without corruption.
func TestVerifyFaultCountsErrors(t *testing.T) {
	s := adminServer(t, 2, 0) // cache off: every request reaches the verify site
	s.inject = faultinject.New(1,
		faultinject.Fault{Site: "verify", Err: errors.New("verify blew up"), After: 2, Count: 3})
	h := s.routes()

	const total = 10
	got500 := 0
	for i := 0; i < total; i++ {
		rec, body := post(t, h, "/api/query", ccQuery)
		switch rec.Code {
		case 200:
		case 500:
			got500++
			if decodeErr(t, body).Code != "injected" {
				t.Fatalf("unexpected error body %s", body)
			}
		default:
			t.Fatalf("status = %d", rec.Code)
		}
	}
	if got500 != 3 {
		t.Fatalf("injected failures observed = %d, want 3", got500)
	}
	if fired := s.inject.Fired("verify"); fired != 3 {
		t.Fatalf("faults fired = %d, want 3", fired)
	}

	snap := snapshotMetrics(t, s)
	if got := counterOf(t, snap, "vqiserve_verify_errors_total"); got != 3 {
		t.Fatalf("verify error counter = %d, want 3", got)
	}
	if got := counterOf(t, snap, "vqiserve_responses_total", "route", "/api/query", "class", "5xx"); got != 3 {
		t.Fatalf("5xx = %d, want 3", got)
	}
	if got := counterOf(t, snap, "vqiserve_responses_total", "route", "/api/query", "class", "2xx"); got != total-3 {
		t.Fatalf("2xx = %d, want %d", got, total-3)
	}
	hist, _ := snap.FindHistogram("vqiserve_request_seconds", "route", "/api/query")
	if hist.Count != total {
		t.Fatalf("histogram count = %d, want %d (failed requests still timed)", hist.Count, total)
	}
	if math.IsNaN(hist.Sum) || hist.Sum < 0 {
		t.Fatalf("histogram sum corrupted: %v", hist.Sum)
	}
}

// TestVerifyPanicKeepsHistogramConsistent panics inside the verify stage:
// withRecover turns it into a 500, and the metrics middleware still
// accounts the request in both the class counter and the histogram.
func TestVerifyPanicKeepsHistogramConsistent(t *testing.T) {
	s := adminServer(t, 2, 0)
	s.inject = faultinject.New(1,
		faultinject.Fault{Site: "verify", PanicMsg: "verify stage crashed", Count: 1})
	h := s.routes()

	rec, body := post(t, h, "/api/query", ccQuery)
	if rec.Code != 500 || decodeErr(t, body).Code != "internal" {
		t.Fatalf("panic not converted to 500 envelope: %d %s", rec.Code, body)
	}
	rec, _ = post(t, h, "/api/query", ccQuery)
	if rec.Code != 200 {
		t.Fatalf("server did not survive the panic: %d", rec.Code)
	}

	snap := snapshotMetrics(t, s)
	if got := counterOf(t, snap, "vqiserve_responses_total", "route", "/api/query", "class", "5xx"); got != 1 {
		t.Fatalf("5xx = %d, want 1 (the panic)", got)
	}
	hist, _ := snap.FindHistogram("vqiserve_request_seconds", "route", "/api/query")
	if hist.Count != 2 {
		t.Fatalf("histogram count = %d, want 2 (panicking request still timed)", hist.Count)
	}
	// 1 = the scrape itself; the panicking request must not have leaked.
	if inflight := gaugeOf(t, snap, "vqiserve_inflight_requests"); inflight != 1 {
		t.Fatalf("inflight = %v, want 1 (panic must not leak the gauge)", inflight)
	}
}

// TestMetricsContentTypeAndFormat: both exposition formats declare an
// explicit Content-Type, unknown formats are a 400 envelope (not a silent
// JSON fallback), and the JSON body stays parseable even when the caches
// have never seen a lookup (the hit-ratio gauge must be 0, never NaN —
// NaN is unrepresentable in JSON and would poison the whole response).
func TestMetricsContentTypeAndFormat(t *testing.T) {
	s := adminServer(t, 2, 64) // caches enabled, zero traffic so far
	h := s.routes()

	get := func(target string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
		return rec
	}

	rec := get("/metrics")
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("JSON Content-Type = %q", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("zero-traffic /metrics is not valid JSON: %v", err)
	}
	for _, g := range snap.Gauges {
		if strings.HasSuffix(g.Name, "_hit_ratio") {
			if math.IsNaN(g.Value) || math.IsInf(g.Value, 0) {
				t.Fatalf("%s = %v", g.Name, g.Value)
			}
			if g.Value != 0 {
				t.Fatalf("%s = %v with zero lookups, want 0", g.Name, g.Value)
			}
		}
	}

	rec = get("/metrics?format=json")
	if rec.Code != 200 || rec.Header().Get("Content-Type") != "application/json" {
		t.Fatalf("format=json: %d %q", rec.Code, rec.Header().Get("Content-Type"))
	}

	rec = get("/metrics?format=prometheus")
	if rec.Code != 200 {
		t.Fatalf("format=prometheus = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("prometheus Content-Type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "vqiserve_requests_total") {
		t.Fatal("prometheus body missing request counter")
	}

	rec = get("/metrics?format=openmetrics")
	if rec.Code != 400 {
		t.Fatalf("unknown format = %d, want 400", rec.Code)
	}
	var errResp errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &errResp); err != nil || errResp.Error.Code != "bad_format" {
		t.Fatalf("unknown format envelope: %s (err %v)", rec.Body.Bytes(), err)
	}
}
