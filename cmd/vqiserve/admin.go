package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/store"
)

// Admin batch updates: POST /admin/update applies a MIDAS-style batch
// (removals, then additions) to the live corpus. The handler is
// read-copy-update: it never mutates the corpus or index a concurrent
// query may be reading. It derives a fresh (corpus, index) pair — the
// index via Sharded.ApplyBatch, which rebuilds only the shards owning
// touched graphs and shares every other shard's core with the old index —
// and installs the pair atomically. In-flight queries finish against the
// snapshot they started on; new queries see the update.
//
// Caches are NOT reset. ApplyBatch bumps the rebuilt shards' epochs, and
// both caches key on epochs (qcache.ShardKey / qcache.EpochKey), so
// entries that could have changed become unreachable while per-shard
// partials for untouched shards keep hitting.

// updateRequest is the batch body. Added graphs use the same node/edge
// shape as queries, plus a unique name.
type updateRequest struct {
	Add []struct {
		Name  string   `json:"name"`
		Nodes []string `json:"nodes"`
		Edges []struct {
			U     int    `json:"u"`
			V     int    `json:"v"`
			Label string `json:"label"`
		} `json:"edges"`
	} `json:"add"`
	Remove []string `json:"remove"`
}

// updateResponse reports what the batch did and what it cost.
type updateResponse struct {
	Added   int    `json:"added"`
	Removed int    `json:"removed"`
	Graphs  int    `json:"graphs"`        // corpus size after the batch
	Shards  int    `json:"shards"`        // total shard count
	Rebuilt []int  `json:"rebuilt"`       // shards whose index was rebuilt
	Millis  int64  `json:"millis"`        // wall-clock for apply+install
	Seq     uint64 `json:"seq,omitempty"` // durable WAL sequence number (persistent servers only)
}

// applyValidatedLocked derives the next (corpus, index) pair from the
// current one and installs it: the index via Sharded.ApplyBatch (rebuilds
// only touched shards), the corpus mirrored with the same order
// discipline — survivors keep their relative order, additions append — so
// corpus positions agree with the index's global positions. Callers hold
// updateMu and have already validated (or durably logged) the batch.
func (s *server) applyValidatedLocked(added []*graph.Graph, removed []string) (*gindex.UpdateReport, error) {
	corpus, idx := s.snapshot()
	next, rep, err := idx.ApplyBatch(added, removed)
	if err != nil {
		return nil, err
	}
	rm := make(map[string]bool, len(removed))
	for _, n := range removed {
		rm[n] = true
	}
	// Survivors are adopted by name so a lazy (mmap-backed) corpus is not
	// forced resident by an unrelated batch; hydration state is shared
	// with the outgoing corpus, which in-flight queries still hold.
	nc := graph.NewCorpus()
	corpus.EachName(func(i int, name string) {
		if !rm[name] {
			nc.MustAdopt(corpus, i)
		}
	})
	for _, g := range added {
		nc.MustAdd(g)
	}
	s.mu.Lock()
	s.corpus = nc
	s.index = next
	s.mu.Unlock()
	return rep, nil
}

func (s *server) handleAdminUpdate(w http.ResponseWriter, r *http.Request) {
	if err := s.inject.Fire("admin"); err != nil {
		writeErr(w, http.StatusInternalServerError, "injected", err.Error())
		return
	}
	if s.network {
		writeErr(w, http.StatusConflict, "network_mode",
			"batch updates apply to corpus mode; this server serves a single network")
		return
	}
	if s.phase.Load() != phaseReady {
		writeErr(w, http.StatusServiceUnavailable, "not_ready", "index build in progress")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	var req updateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.maxBodyBytes))
			return
		}
		writeErr(w, http.StatusBadRequest, "bad_json", err.Error())
		return
	}
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		writeErr(w, http.StatusBadRequest, "empty_batch", "batch has no additions and no removals")
		return
	}
	added := make([]*graph.Graph, 0, len(req.Add))
	for i, ag := range req.Add {
		if ag.Name == "" {
			writeErr(w, http.StatusBadRequest, "bad_batch",
				fmt.Sprintf("add[%d]: graph name is required", i))
			return
		}
		g := graph.New(ag.Name)
		for _, l := range ag.Nodes {
			g.AddNode(l)
		}
		for _, e := range ag.Edges {
			if _, err := g.AddEdge(e.U, e.V, e.Label); err != nil {
				writeErr(w, http.StatusBadRequest, "bad_batch",
					fmt.Sprintf("add[%d] %q: %v", i, ag.Name, err))
				return
			}
		}
		added = append(added, g)
	}

	// One writer at a time: ApplyBatch derives the next index from the
	// current one, so concurrent updates must serialize or one would
	// clobber the other. Queries never take updateMu.
	s.updateMu.Lock()
	defer s.updateMu.Unlock()
	start := time.Now()
	// Durability ordering: validate, then durably log, then apply. The
	// validation comes first so every logged record is guaranteed to replay
	// cleanly after a crash; the append comes before the apply (and the
	// 200) so in-memory state never gets ahead of the log — a batch whose
	// append fails is NOT applied, and the client retries against unchanged
	// state.
	_, idx := s.snapshot()
	if err := idx.ValidateBatch(added, req.Remove); err != nil {
		writeErr(w, http.StatusBadRequest, "bad_batch", err.Error())
		return
	}
	var seq uint64
	if s.st != nil {
		var err error
		seq, err = s.st.Append(store.Batch{Added: added, Removed: req.Remove})
		if err != nil {
			s.obs.Counter("vqiserve_admin_wal_errors_total").Inc()
			writeErr(w, http.StatusInternalServerError, "wal_append",
				fmt.Sprintf("batch not applied: %v", err))
			return
		}
	}
	rep, err := s.applyValidatedLocked(added, req.Remove)
	if err != nil {
		// Unreachable after ValidateBatch; if it ever trips the durable
		// record is still replayable and memory is merely behind the log.
		writeErr(w, http.StatusInternalServerError, "apply_failed", err.Error())
		return
	}
	nc, _ := s.snapshot()
	elapsed := time.Since(start)
	s.obs.Counter("vqiserve_admin_updates_total").Inc()
	s.obs.Counter("vqiserve_admin_graphs_added_total").Add(int64(rep.Added))
	s.obs.Counter("vqiserve_admin_graphs_removed_total").Add(int64(rep.Removed))
	s.obs.Counter("vqiserve_admin_shards_rebuilt_total").Add(int64(len(rep.Rebuilt)))
	s.obs.Histogram("vqiserve_admin_update_seconds").Observe(elapsed.Seconds())
	log.Printf("vqiserve: admin update +%d -%d graphs, rebuilt %d/%d shards in %v",
		rep.Added, rep.Removed, len(rep.Rebuilt), rep.Shards, elapsed.Round(time.Microsecond))
	rebuilt := rep.Rebuilt
	if rebuilt == nil {
		rebuilt = []int{}
	}
	writeJSON(w, http.StatusOK, updateResponse{
		Added:   rep.Added,
		Removed: rep.Removed,
		Graphs:  nc.Len(),
		Shards:  rep.Shards,
		Rebuilt: rebuilt,
		Millis:  elapsed.Milliseconds(),
		Seq:     seq,
	})
}
