// Command vqiserve serves a built VQI spec over HTTP with a minimal
// data-driven front end: every panel (attributes, patterns, query,
// results) is rendered from the spec JSON at runtime — nothing about the
// data source is hard-coded in the page, which is the whole point of the
// data-driven paradigm.
//
// Endpoints:
//
//	GET  /            the interface
//	GET  /healthz     liveness (200 as soon as the process serves)
//	GET  /readyz      readiness (200 only after the corpus index is built)
//	GET  /api/spec    the VQI spec JSON
//	POST /api/query   {"nodes":["C",...],"edges":[{"u":0,"v":1,"label":"s"}]}
//	                  → {"matched":[...names...],"embeddings":N,"truncated":false}
//	                  ?plan= selects the query planner per request: auto
//	                  (cost model, the default with -plan), off, or a forced
//	                  strategy (monolithic, decompose, ann); when the
//	                  parameter is present the response carries the compiled
//	                  plan summary and the request's stage timings
//	POST /api/suggest partial query → suggested pattern completions
//	POST /api/similar {"graph":"mol7","k":10,"mode":"approx","verify":true}
//	                  (or an inline nodes/edges pattern) → top-k most
//	                  similar corpus graphs by embedding cosine, via the
//	                  per-shard LSH index (-ann required); mode=exact runs
//	                  the full-scan oracle, verify re-ranks by exact VF2
//	                  containment
//	POST /admin/update {"add":[{"name":"g9","nodes":[...],"edges":[...]}],"remove":["g3"]}
//	                  batch corpus update; rebuilds only the index shards
//	                  owning touched graphs and invalidates only their
//	                  cached partials
//	GET  /metrics     counters, gauges and latency histograms (JSON;
//	                  ?format=prometheus for the text exposition format)
//	GET  /debug/vars  the same metrics as one flat expvar-style map
//	GET  /debug/pprof/ net/http/pprof profiles, only with -pprof
//
// The server is hardened for interactive use: every query runs under a
// per-request deadline (-query-timeout) threaded into the matcher, request
// bodies are capped (-max-body-bytes), handler panics become 500s without
// killing the process, errors use a consistent JSON envelope
// {"error":{"code","message"}} with real status codes (400 malformed, 413
// oversized body, 422 oversized query, 504 budget exhausted — with the
// partial results found so far marked "truncated"), and SIGINT/SIGTERM
// drain in-flight requests for up to -shutdown-grace before exiting 0.
//
// Example:
//
//	vqiserve -spec vqi.json -data corpus.lg -addr :8080 -query-timeout 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/ann"
	"repro/internal/faultinject"
	"repro/internal/gindex"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/qcache"
	"repro/internal/store"
	"repro/internal/vqi"
)

// Boot phases, reported by /readyz: the server accepts traffic only once
// the index is built (building) and every durable WAL record has been
// re-applied on top of it (replaying).
const (
	phaseBuilding int32 = iota
	phaseReplaying
	phaseReady
)

type server struct {
	spec    *vqi.Spec
	network bool
	workers int // worker pool size for per-graph query verification

	shards     int // filter-verify index shard count (0 = GOMAXPROCS)
	maxResults int // per-query cap on matching graphs (0 = unlimited)

	// annEnabled builds per-shard embedding vectors + LSH tables alongside
	// the filter-verify index and serves POST /api/similar; annCfg carries
	// the -ann-tables/-ann-bits/-ann-probes knobs.
	annEnabled bool
	annCfg     ann.Config

	queryTimeout time.Duration // per-request budget for /api/query and /api/suggest
	maxBodyBytes int64         // request body cap
	maxQuerySize int           // node+edge cap on posted query graphs

	inject *faultinject.Injector // nil in production; armed by fault-injection tests

	// obs is the server's private metrics registry: per-route request
	// counters, status classes, latency histograms, cache gauges. Kept
	// separate from obs.Default (the library-side registry) so tests
	// assert exact counts without cross-test pollution; /metrics serves
	// both merged.
	obs *obs.Registry

	// pprofEnabled mounts net/http/pprof under /debug/pprof/ (-pprof).
	pprofEnabled bool

	// qc caches whole query responses under an epoch-scoped key
	// (qcache.EpochKey over the canonical query code and every shard's
	// epoch), with single-flight de-duplication of concurrent identical
	// queries. nil when caching is disabled. Invalidation is by key: a
	// batch update bumps the rebuilt shards' epochs, so post-update
	// lookups use fresh keys and stale entries age out of the LRU. The
	// from-scratch build path (buildIndex) still Resets explicitly, since
	// a rebuilt index restarts its epochs.
	qc *qcache.Cache[cachedResponse]

	// shardQC caches per-shard partial results under (query, shard,
	// epoch) keys (qcache.ShardKey). After a batch update only the
	// rebuilt shards' partials miss; the untouched shards' partials —
	// usually most of the work — are reused, which is the partial cache
	// invalidation the sharded index exists for. nil when caching is
	// disabled.
	shardQC *qcache.Cache[gindex.ShardResult]

	// simQC caches /api/similar responses, keyed by (request shape, full
	// shard-epoch vector) — similarity answers can depend on every shard,
	// so any rebuilt shard retires the entry. nil when caching is disabled.
	simQC *qcache.Cache[cachedSimilar]

	// planEnabled routes queries through the plan compiler by default
	// (-plan); ?plan= overrides per request either way.
	planEnabled bool

	// planQC caches compiled plans under qcache.PlanKey (canonical query
	// code + compile mode, scoped to the full epoch vector — plans bake in
	// corpus-wide label statistics, so any shard rebuild invalidates them).
	// nil when caching is disabled.
	planQC *qcache.Cache[*plan.Plan]

	// viewQC caches fragment containment views for decomposed plans under
	// qcache.ViewKey (fragment canon x shard x epoch). Views are the
	// sub-pattern materialized views two queries sharing a fragment reuse;
	// epoch keying retires exactly the rebuilt shards' views. nil when
	// caching is disabled.
	viewQC *qcache.Cache[gindex.ShardResult]

	// phase is the boot state machine (building → replaying → ready).
	// Query-shaped endpoints and /readyz gate on it; /healthz does not.
	phase atomic.Int32

	// st is the durable store (-data-dir); nil runs fully in-memory. When
	// set, /admin/update appends each batch to the WAL — and waits for it
	// to be durable under the configured fsync policy — before applying or
	// acknowledging it.
	st *store.Store
	// bootMeta/replay carry the recovered snapshot metadata and WAL suffix
	// from store.Open into buildIndex, which replays the suffix through
	// the normal apply path before declaring the server ready.
	bootMeta store.SnapshotMeta
	replay   []store.Batch
	// bootSections are the persisted per-shard index sections surfaced by
	// an -mmap recovery; buildIndex restores matching shards from them
	// instead of rebuilding from graphs.
	bootSections []store.IndexSection

	// updateMu serializes admin batch updates (read-copy-update writers);
	// queries never take it.
	updateMu sync.Mutex

	// mu guards the (corpus, index) snapshot pair. Both values are
	// immutable once installed — readers snapshot the pointers and then
	// work lock-free; admin updates install fresh pairs.
	mu     sync.RWMutex
	corpus *graph.Corpus
	index  *gindex.Sharded // sharded filter-verify index; set once buildIndex completes
}

// snapshot returns the current corpus/index pair. The returned values are
// immutable; a concurrent admin update installs new ones rather than
// mutating these.
func (s *server) snapshot() (*graph.Corpus, *gindex.Sharded) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.corpus, s.index
}

// cachedResponse is a completed query outcome: the response body plus the
// HTTP status it was served with.
type cachedResponse struct {
	resp   queryResponse
	status int
}

// serverConfig carries the serving knobs from flags (and tests).
type serverConfig struct {
	workers      int
	shards       int // index shard count (0 = GOMAXPROCS)
	maxResults   int // per-query match cap (0 = unlimited)
	queryTimeout time.Duration
	maxBodyBytes int64
	maxQuerySize int
	cacheSize    int  // query-cache capacity; 0 disables caching
	pprofEnabled bool // serve /debug/pprof/ (opt-in)
	planEnabled  bool // compile query plans by default (-plan)

	annEnabled bool       // build similarity state; serve /api/similar
	annCfg     ann.Config // LSH shape (zero fields = ann defaults)
}

func newServer(spec *vqi.Spec, corpus *graph.Corpus, cfg serverConfig) *server {
	if cfg.maxBodyBytes <= 0 {
		cfg.maxBodyBytes = 1 << 20
	}
	if cfg.maxQuerySize <= 0 {
		cfg.maxQuerySize = 256
	}
	s := &server{
		spec:         spec,
		corpus:       corpus,
		network:      corpus.Len() == 1,
		workers:      cfg.workers,
		shards:       cfg.shards,
		maxResults:   cfg.maxResults,
		queryTimeout: cfg.queryTimeout,
		maxBodyBytes: cfg.maxBodyBytes,
		maxQuerySize: cfg.maxQuerySize,
		obs:          obs.NewRegistry(),
		pprofEnabled: cfg.pprofEnabled,
		annEnabled:   cfg.annEnabled,
		annCfg:       cfg.annCfg,
		planEnabled:  cfg.planEnabled,
	}
	if cfg.cacheSize > 0 {
		s.qc = qcache.New[cachedResponse](cfg.cacheSize)
		s.shardQC = qcache.New[gindex.ShardResult](cfg.cacheSize)
		s.simQC = qcache.New[cachedSimilar](cfg.cacheSize)
		s.planQC = qcache.New[*plan.Plan](cfg.cacheSize)
		s.viewQC = qcache.New[gindex.ShardResult](cfg.cacheSize)
	}
	return s
}

// attachStore binds the durable store and recovery state. Called before
// serve/buildIndex; the recovered WAL suffix is replayed by buildIndex.
func (s *server) attachStore(st *store.Store, rec *store.Recovery) {
	s.st = st
	if rec != nil {
		s.bootMeta = rec.Meta
		s.replay = rec.Batches
		s.bootSections = rec.Sections
	}
}

// buildIndex builds the sharded filter-verify index (corpus mode),
// replays any recovered WAL suffix through the normal batch-apply path,
// and flips the readiness gate. It runs in the background so the listener
// is up — and /healthz green — while a large corpus indexes; /readyz
// reports "replaying" during the WAL phase. Installing a from-scratch
// index resets both caches: its epochs restart at zero (or at the
// snapshot's restored values), so key-based invalidation cannot
// distinguish it from the previous build.
func (s *server) buildIndex() {
	corpus, _ := s.snapshot()
	if !s.network {
		var idx *gindex.Sharded
		k := s.shards
		if k <= 0 {
			k = runtime.GOMAXPROCS(0)
		}
		var annCfg *ann.Config
		if s.annEnabled {
			cfg := s.annCfg
			annCfg = &cfg
		}
		if len(s.bootSections) > 0 && s.bootMeta.Shards == k {
			// Persisted sections from an -mmap recovery: shards whose section
			// epoch matches the snapshot restore without decoding graphs.
			secs := make(map[int][]byte, len(s.bootSections))
			for _, sec := range s.bootSections {
				if sec.Shard < len(s.bootMeta.Epochs) && sec.Epoch == s.bootMeta.Epochs[sec.Shard] {
					secs[sec.Shard] = sec.Data
				}
			}
			var rr *gindex.RestoreReport
			idx, rr = gindex.RestoreSharded(corpus, k, s.workers, annCfg, secs)
			log.Printf("vqiserve: restored %d/%d shards from persisted index sections (%d rebuilt)",
				rr.Restored, idx.NumShards(), rr.Rebuilt)
		} else if s.annEnabled {
			idx = gindex.BuildShardedANN(corpus, s.shards, s.workers, s.annCfg)
		} else {
			idx = gindex.BuildSharded(corpus, s.shards, s.workers)
		}
		s.bootSections = nil
		if s.bootMeta.Shards == idx.NumShards() {
			// Same shard count as the snapshotted instance: carry its epochs
			// so this boot's epoch-keyed cache entries line up with where the
			// pre-crash instance left off.
			idx.RestoreEpochs(s.bootMeta.Epochs)
		}
		s.mu.Lock()
		s.index = idx
		s.mu.Unlock()
	}
	if len(s.replay) > 0 {
		s.phase.Store(phaseReplaying)
		log.Printf("vqiserve: replaying %d WAL batches (seq %d..%d)",
			len(s.replay), s.replay[0].Seq, s.replay[len(s.replay)-1].Seq)
		s.updateMu.Lock()
		for _, b := range s.replay {
			// Replayed records were validated and durably logged before the
			// crash, so they must apply cleanly; a failure here means the
			// directory does not match the serving configuration, and limping
			// on would serve a corpus that silently diverged from the log.
			if _, err := s.applyValidatedLocked(b.Added, b.Removed); err != nil {
				s.updateMu.Unlock()
				log.Fatalf("vqiserve: WAL replay seq %d: %v", b.Seq, err)
			}
		}
		s.updateMu.Unlock()
		s.replay = nil
	}
	if s.qc != nil {
		s.qc.Reset()
	}
	if s.shardQC != nil {
		s.shardQC.Reset()
	}
	if s.simQC != nil {
		s.simQC.Reset()
	}
	if s.planQC != nil {
		s.planQC.Reset()
	}
	if s.viewQC != nil {
		s.viewQC.Reset()
	}
	s.phase.Store(phaseReady)
	corpus, _ = s.snapshot()
	log.Printf("vqiserve: ready (%d data graphs)", corpus.Len())
}

// serve binds addr, starts the hardened http.Server, and blocks until the
// context is canceled (graceful drain, returns nil) or the server fails.
// Binding happens eagerly so an occupied address fails fast with a clear
// error instead of dying inside ListenAndServe; the resolved address
// (useful with ":0") is logged and sent to started if non-nil.
func (s *server) serve(ctx context.Context, addr string, grace time.Duration, started chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cannot listen on %s: %w", addr, err)
	}
	corpus, _ := s.snapshot()
	log.Printf("vqiserve: %d data graphs, %d canned patterns, listening on %s",
		corpus.Len(), len(s.spec.Patterns.Canned), ln.Addr())
	if started != nil {
		started <- ln.Addr()
	}
	srv := &http.Server{
		Handler:           s.routes(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
	go s.buildIndex()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("vqiserve: shutdown requested; draining in-flight requests for up to %v", grace)
		sctx, cancel := context.WithTimeout(context.Background(), grace)
		defer cancel()
		if err := srv.Shutdown(sctx); err != nil {
			srv.Close()
			return fmt.Errorf("drain deadline exceeded: %w", err)
		}
		log.Printf("vqiserve: drained cleanly")
		return nil
	}
}

func main() {
	var (
		specPath = flag.String("spec", "vqi.json", "VQI spec JSON file")
		dataPath = flag.String("data", "", "data source .lg file (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size for query verification (0 = all CPUs)")
		shards   = flag.Int("shards", 0, "filter-verify index shard count (0 = all CPUs); batch updates posted to /admin/update rebuild only the touched shards")
		maxRes   = flag.Int("max-results", 0, "cap on matching graphs returned per query; the sharded search stops verifying once the cap is provably reached (0 = unlimited)")
		qTimeout = flag.Duration("query-timeout", 10*time.Second, "per-request budget for query/suggest; exhausted budgets return 504 with partial results (0 = unlimited)")
		grace    = flag.Duration("shutdown-grace", 5*time.Second, "how long to drain in-flight requests on SIGINT/SIGTERM")
		maxBody  = flag.Int64("max-body-bytes", 1<<20, "request body size cap (413 beyond it)")
		maxQuery = flag.Int("max-query-size", 256, "posted query node+edge cap (422 beyond it)")
		useCache = flag.Bool("cache", true, "cache query results by canonical query code (repeated and concurrent identical queries hit memory)")
		planOn   = flag.Bool("plan", true, "compile each query into an optimized physical plan (rarest-edge-first matching order; large patterns decompose into cached sub-pattern views joined and verified exactly); ?plan= overrides per request")
		cacheSz  = flag.Int("cache-size", 512, "maximum cached query results (LRU eviction)")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default; profiles expose internals)")
		dataDir  = flag.String("data-dir", "", "durable data directory (snapshots + write-ahead log); empty disables persistence. On a non-empty directory the corpus is recovered from it and -data is ignored; on an empty one -data seeds the initial snapshot")
		mmapBoot = flag.Bool("mmap", false, "boot by mapping the snapshot read-only instead of decoding it: cold start validates only the header + frame index + persisted index sections, graphs hydrate lazily on first touch, and shards whose section epoch matches skip their rebuild (requires -data-dir; v1 snapshots fall back to the eager load)")
		walSync  = flag.String("wal-sync", "always", "WAL fsync policy: always (fsync before acknowledging each /admin/update), none, or a duration like 100ms (background interval sync)")
		annOn    = flag.Bool("ann", false, "build per-shard LSH similarity tables and serve POST /api/similar (sub-linear approximate top-k with exact re-ranking)")
		annTabs  = flag.Int("ann-tables", 0, "LSH hash tables per shard (0 = default 12); more tables raise recall at linear memory cost")
		annBits  = flag.Int("ann-bits", 0, "LSH signature bits per table (0 = default 10); more bits shrink buckets, trading recall for shortlist size")
		annProbe = flag.Int("ann-probes", 0, "buckets probed per table per lookup (0 = default 2x bits); more probes raise recall at linear lookup cost")
	)
	flag.Parse()
	if *dataPath == "" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "vqiserve: -data is required (or -data-dir with recovered state)")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatalf("vqiserve: %v", err)
	}
	spec, err := vqi.Decode(raw)
	if err != nil {
		log.Fatalf("vqiserve: %v", err)
	}
	if err := spec.Validate(); err != nil {
		log.Fatalf("vqiserve: invalid spec: %v", err)
	}

	// Durable boot: mount the data directory first. A recovered corpus wins
	// over -data (the directory is the source of truth once it exists); an
	// empty directory is seeded from the -data .lg file.
	var (
		st     *store.Store
		rec    *store.Recovery
		corpus *graph.Corpus
	)
	if *dataDir != "" {
		policy, every, err := store.ParseSyncPolicy(*walSync)
		if err != nil {
			log.Fatalf("vqiserve: %v", err)
		}
		st, rec, err = store.Open(context.Background(), *dataDir, store.Options{Sync: policy, SyncEvery: every, Mmap: *mmapBoot})
		if err != nil {
			log.Fatalf("vqiserve: %v", err)
		}
		if rec.TailTruncated {
			log.Printf("vqiserve: truncated a torn WAL tail in %s", *dataDir)
		}
		if rec.SnapshotsSkipped > 0 {
			log.Printf("vqiserve: skipped %d corrupt snapshot(s) in %s", rec.SnapshotsSkipped, *dataDir)
		}
		corpus = rec.Corpus
		if corpus != nil {
			how := "decoded"
			if *mmapBoot {
				how = "read-backed lazy"
				if rec.Mapped {
					how = "mapped lazy"
				}
			}
			log.Printf("vqiserve: recovered %d graphs at seq %d (+%d WAL batches, %d index sections, %s) from %s",
				corpus.Len(), rec.Meta.Seq, len(rec.Batches), len(rec.Sections), how, *dataDir)
		}
	} else if *mmapBoot {
		log.Fatalf("vqiserve: -mmap requires -data-dir")
	}
	if corpus == nil {
		if *dataPath == "" {
			log.Fatalf("vqiserve: data directory %s is empty and no -data seed was given", *dataDir)
		}
		corpus, err = gio.LoadCorpus(*dataPath)
		if err != nil {
			log.Fatalf("vqiserve: %v", err)
		}
		if st != nil {
			// Seed the directory so the next boot recovers without the .lg.
			// Seed refuses a directory holding WAL records but no snapshot —
			// booting a fresh seed over orphaned records would silently
			// diverge across restarts.
			if err := st.Seed(corpus); err != nil {
				log.Fatalf("vqiserve: writing seed snapshot: %v", err)
			}
			log.Printf("vqiserve: seeded %s with %d graphs", *dataDir, corpus.Len())
		}
	}
	size := *cacheSz
	if !*useCache {
		size = 0
	}
	// Zero flag values resolve to the tuned ann defaults (unset -ann-probes
	// derives from the chosen -ann-bits); centering is always on — the
	// clustered embeddings need it.
	annCfg := ann.Config{Tables: *annTabs, Bits: *annBits, Probes: *annProbe, Center: true}
	s := newServer(spec, corpus, serverConfig{
		workers:      *workers,
		shards:       *shards,
		maxResults:   *maxRes,
		queryTimeout: *qTimeout,
		maxBodyBytes: *maxBody,
		maxQuerySize: *maxQuery,
		cacheSize:    size,
		pprofEnabled: *pprofOn,
		planEnabled:  *planOn,
		annEnabled:   *annOn,
		annCfg:       annCfg,
	})
	if st != nil {
		if s.network {
			log.Fatalf("vqiserve: -data-dir requires corpus mode; this data source is a single network")
		}
		s.attachStore(st, rec)
	}
	// SIGINT and SIGTERM drain identically. AfterFunc unregisters the
	// handler the moment the first signal lands, restoring the default
	// disposition — a second signal during the drain kills the process
	// instead of being swallowed.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	context.AfterFunc(ctx, stop)
	err = s.serve(ctx, *addr, *grace, nil)
	if st != nil {
		// Flush and release the WAL after the drain so in-flight admin
		// updates finish their durable appends first.
		if cerr := st.Close(); cerr != nil {
			log.Printf("vqiserve: closing store: %v", cerr)
		}
	}
	if err != nil {
		log.Fatalf("vqiserve: %v", err)
	}
}
