// Command vqiserve serves a built VQI spec over HTTP with a minimal
// data-driven front end: every panel (attributes, patterns, query,
// results) is rendered from the spec JSON at runtime — nothing about the
// data source is hard-coded in the page, which is the whole point of the
// data-driven paradigm.
//
// Endpoints:
//
//	GET  /           the interface
//	GET  /api/spec   the VQI spec JSON
//	POST /api/query  {"nodes":["C",...],"edges":[{"u":0,"v":1,"label":"s"}]}
//	                 → {"matched":[...names...],"embeddings":N}
//
// Example:
//
//	vqiserve -spec vqi.json -data corpus.lg -addr :8080
package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"os"

	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/results"
	"repro/internal/vqi"

	"flag"

	"repro/internal/gio"
)

type server struct {
	spec    *vqi.Spec
	corpus  *graph.Corpus
	network bool
	index   *gindex.Index // filter-verify index for corpus queries
	workers int           // worker pool size for per-graph query verification
}

func main() {
	var (
		specPath = flag.String("spec", "vqi.json", "VQI spec JSON file")
		dataPath = flag.String("data", "", "data source .lg file (required)")
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "worker pool size for query verification (0 = all CPUs)")
	)
	flag.Parse()
	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "vqiserve: -data is required")
		os.Exit(2)
	}
	raw, err := os.ReadFile(*specPath)
	if err != nil {
		log.Fatalf("vqiserve: %v", err)
	}
	spec, err := vqi.Decode(raw)
	if err != nil {
		log.Fatalf("vqiserve: %v", err)
	}
	if err := spec.Validate(); err != nil {
		log.Fatalf("vqiserve: invalid spec: %v", err)
	}
	corpus, err := gio.LoadCorpus(*dataPath)
	if err != nil {
		log.Fatalf("vqiserve: %v", err)
	}
	s := &server{spec: spec, corpus: corpus, network: corpus.Len() == 1, workers: *workers}
	if !s.network {
		s.index = gindex.Build(corpus)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.handleIndex)
	mux.HandleFunc("GET /api/spec", s.handleSpec)
	mux.HandleFunc("POST /api/query", s.handleQuery)
	mux.HandleFunc("POST /api/suggest", s.handleSuggest)
	log.Printf("vqiserve: %d data graphs, %d canned patterns, listening on %s",
		corpus.Len(), len(spec.Patterns.Canned), *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *server) handleSpec(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	payload, err := s.spec.Encode()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(payload)
}

type queryRequest struct {
	Nodes []string `json:"nodes"`
	Edges []struct {
		U     int    `json:"u"`
		V     int    `json:"v"`
		Label string `json:"label"`
	} `json:"edges"`
}

type queryResponse struct {
	Matched    []string     `json:"matched"`
	Facets     []facetEntry `json:"facets,omitempty"`
	Embeddings int          `json:"embeddings"`
	Error      string       `json:"error,omitempty"`
}

// facetEntry groups matches by the canned pattern they contain, so the
// front end can offer drill-down instead of a flat list.
type facetEntry struct {
	Pattern string   `json:"pattern"`
	Graphs  []string `json:"graphs"`
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		json.NewEncoder(w).Encode(queryResponse{Error: err.Error()})
		return
	}
	q := graph.New("query")
	for _, l := range req.Nodes {
		q.AddNode(l)
	}
	for _, e := range req.Edges {
		if _, err := q.AddEdge(e.U, e.V, e.Label); err != nil {
			json.NewEncoder(w).Encode(queryResponse{Error: err.Error()})
			return
		}
	}
	var resp queryResponse
	if s.network {
		res := isomorph.Count(q, s.corpus.Graph(0), isomorph.Options{MaxEmbeddings: 1000, MaxSteps: 2_000_000})
		resp.Embeddings = res.Embeddings
	} else if s.index != nil {
		resp.Matched = s.index.Search(q, pattern.MatchOptions()).Matches
		resp.Facets = s.facets(resp.Matched)
	} else {
		// Fallback without an index: verify every graph, fanning the
		// independent VF2 checks over the worker pool and collecting
		// matches in corpus order.
		opts := pattern.MatchOptions()
		matched := par.Map(s.corpus.Len(), s.workers, func(i int) bool {
			return isomorph.Exists(q, s.corpus.Graph(i), opts)
		})
		for i, ok := range matched {
			if ok {
				resp.Matched = append(resp.Matched, s.corpus.Graph(i).Name())
			}
		}
	}
	json.NewEncoder(w).Encode(resp)
}

// facets groups matched graphs by the spec's canned patterns.
func (s *server) facets(matched []string) []facetEntry {
	if len(matched) == 0 {
		return nil
	}
	panel, err := s.spec.AllPatterns()
	if err != nil {
		return nil
	}
	// Only canned patterns facet usefully; basics match almost everything.
	canned := panel[len(s.spec.Patterns.Basic):]
	fs, _ := results.Facets(matched, s.corpus, canned, pattern.MatchOptions())
	var out []facetEntry
	for _, f := range fs {
		out = append(out, facetEntry{
			Pattern: s.spec.Patterns.Canned[f.PatternIndex].Name,
			Graphs:  f.Graphs,
		})
	}
	return out
}

type suggestResponse struct {
	Suggestions []suggestEntry `json:"suggestions"`
	Error       string         `json:"error,omitempty"`
}

type suggestEntry struct {
	PatternIndex int    `json:"pattern_index"`
	Name         string `json:"name"`
	NewEdges     int    `json:"new_edges"`
}

// handleSuggest proposes panel patterns that continue the posted partial
// query (VIIQ-style auto-suggestion).
func (s *server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		json.NewEncoder(w).Encode(suggestResponse{Error: err.Error()})
		return
	}
	q := graph.New("partial")
	for _, l := range req.Nodes {
		q.AddNode(l)
	}
	for _, e := range req.Edges {
		if _, err := q.AddEdge(e.U, e.V, e.Label); err != nil {
			json.NewEncoder(w).Encode(suggestResponse{Error: err.Error()})
			return
		}
	}
	sugs, err := vqi.SuggestForSpec(s.spec, q, 8)
	if err != nil {
		json.NewEncoder(w).Encode(suggestResponse{Error: err.Error()})
		return
	}
	var resp suggestResponse
	for _, sg := range sugs {
		resp.Suggestions = append(resp.Suggestions, suggestEntry{
			PatternIndex: sg.PatternIndex,
			Name:         sg.Pattern.Name,
			NewEdges:     sg.NewEdges,
		})
	}
	json.NewEncoder(w).Encode(resp)
}
