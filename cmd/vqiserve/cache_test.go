package main

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/vqi"
)

func cachedTestServer(t *testing.T) *server {
	t.Helper()
	corpus := datagen.ChemicalCorpus(2, 20, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(spec, corpus, serverConfig{cacheSize: 64})
	s.buildIndex()
	return s
}

func cachePost(t *testing.T, s *server, body string) (*httptest.ResponseRecorder, queryResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("POST", "/api/query", strings.NewReader(body)))
	var resp queryResponse
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	return rec, resp
}

func TestQueryCacheHit(t *testing.T) {
	s := cachedTestServer(t)
	body := `{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}`
	rec1, resp1 := cachePost(t, s, body)
	if rec1.Code != 200 {
		t.Fatalf("status = %d (%s)", rec1.Code, rec1.Body)
	}
	_, resp2 := cachePost(t, s, body)
	if !reflect.DeepEqual(resp1, resp2) {
		t.Fatalf("cached response differs: %+v vs %+v", resp1, resp2)
	}
	hits, misses, _ := s.qc.Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d; second identical query must be a hit", hits, misses)
	}
}

// TestQueryCacheCanonicalKey pins that two different drawings of the same
// pattern (relabeled node ids) share a cache entry.
func TestQueryCacheCanonicalKey(t *testing.T) {
	s := cachedTestServer(t)
	a := `{"nodes":["C","O","C"],"edges":[{"u":0,"v":1,"label":"s"},{"u":1,"v":2,"label":"s"}]}`
	b := `{"nodes":["C","C","O"],"edges":[{"u":2,"v":1,"label":"s"},{"u":0,"v":2,"label":"s"}]}`
	_, respA := cachePost(t, s, a)
	_, respB := cachePost(t, s, b)
	if !reflect.DeepEqual(respA, respB) {
		t.Fatalf("isomorphic queries answered differently: %+v vs %+v", respA, respB)
	}
	hits, misses, _ := s.qc.Stats()
	if misses != 1 || hits != 1 {
		t.Fatalf("hits=%d misses=%d; isomorphic queries must share one entry", hits, misses)
	}
}

func TestQueryCacheInvalidatedByRebuild(t *testing.T) {
	s := cachedTestServer(t)
	body := `{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}`
	cachePost(t, s, body)
	if s.qc.Len() != 1 {
		t.Fatalf("cache len = %d", s.qc.Len())
	}
	s.buildIndex() // rebuild path must reset the cache
	if s.qc.Len() != 0 {
		t.Fatal("index rebuild did not invalidate the query cache")
	}
	_, _ = cachePost(t, s, body)
	_, misses, _ := s.qc.Stats()
	if misses != 2 {
		t.Fatalf("misses = %d; post-rebuild query must recompute", misses)
	}
}

func TestQueryCacheConcurrentIdentical(t *testing.T) {
	s := cachedTestServer(t)
	body := `{"nodes":["C","C","C"],"edges":[{"u":0,"v":1,"label":"s"},{"u":1,"v":2,"label":"s"}]}`
	const n = 16
	var wg sync.WaitGroup
	responses := make([]queryResponse, n)
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := httptest.NewRecorder()
			s.handleQuery(rec, httptest.NewRequest("POST", "/api/query", strings.NewReader(body)))
			codes[i] = rec.Code
			json.Unmarshal(rec.Body.Bytes(), &responses[i])
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if codes[i] != codes[0] || !reflect.DeepEqual(responses[i], responses[0]) {
			t.Fatalf("response %d differs: %d %+v vs %d %+v", i, codes[i], responses[i], codes[0], responses[0])
		}
	}
	hits, misses, dedups := s.qc.Stats()
	if misses != 1 {
		t.Fatalf("misses = %d; concurrent identical queries must compute once", misses)
	}
	if hits+dedups != n-1 {
		t.Fatalf("hits=%d dedups=%d; want %d combined", hits, dedups, n-1)
	}
}

func TestCacheDisabledByDefaultConfig(t *testing.T) {
	s := testServer(t)
	if s.qc != nil {
		t.Fatal("zero config must not enable the cache")
	}
	body := `{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}`
	if rec, _ := cachePost(t, s, body); rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
}
