package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"

	"repro/internal/canon"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/qcache"
	"repro/internal/results"
	"repro/internal/vqi"
)

// apiError is the uniform error envelope: {"error":{"code","message"}}.
// Code is a stable machine-readable slug; Message is human-readable.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: apiError{Code: code, Message: msg}})
}

// routes assembles the handler chain: recovery outermost (panics anywhere
// below become 500s), request metrics + per-request trace on every route,
// per-request deadlines on the query-shaped endpoints. Wrapping at route
// registration pre-creates every metric family, so a scrape that arrives
// before any traffic still sees them (at zero).
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /", s.withMetrics("/", s.handleIndex))
	mux.HandleFunc("GET /healthz", s.withMetrics("/healthz", s.handleHealthz))
	mux.HandleFunc("GET /readyz", s.withMetrics("/readyz", s.handleReadyz))
	mux.HandleFunc("GET /api/spec", s.withMetrics("/api/spec", s.handleSpec))
	mux.HandleFunc("POST /api/query", s.withMetrics("/api/query", s.withTimeout(s.handleQuery)))
	mux.HandleFunc("POST /api/suggest", s.withMetrics("/api/suggest", s.withTimeout(s.handleSuggest)))
	mux.HandleFunc("POST /api/similar", s.withMetrics("/api/similar", s.withTimeout(s.handleSimilar)))
	mux.HandleFunc("POST /admin/update", s.withMetrics("/admin/update", s.handleAdminUpdate))
	mux.HandleFunc("GET /metrics", s.withMetrics("/metrics", s.handleMetrics))
	mux.HandleFunc("GET /debug/vars", s.withMetrics("/debug/vars", s.handleVars))
	if s.pprofEnabled {
		registerPprof(mux)
	}
	return withRecover(mux)
}

// withTimeout attaches the server's query budget to the request context.
// Handlers thread that context into the matcher, so an exhausted budget
// surfaces as a 504 carrying whatever partial results were found.
func (s *server) withTimeout(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if s.queryTimeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.queryTimeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		h(w, r)
	}
}

// withRecover converts handler panics into 500 responses so one bad
// request cannot take the whole server down. http.ErrAbortHandler keeps
// its net/http meaning and is re-raised.
func withRecover(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				log.Printf("vqiserve: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeErr(w, http.StatusInternalServerError, "internal", "internal server error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports the boot state machine: 503 "not_ready" while the
// index builds, 503 "replaying" while recovered WAL records re-apply, 200
// once the server answers queries against fully recovered state. The
// distinct replaying code lets orchestration tell a slow recovery from a
// stuck build.
func (s *server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	switch s.phase.Load() {
	case phaseBuilding:
		writeErr(w, http.StatusServiceUnavailable, "not_ready", "index build in progress")
	case phaseReplaying:
		writeErr(w, http.StatusServiceUnavailable, "replaying", "write-ahead log replay in progress")
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprint(w, indexHTML)
}

func (s *server) handleSpec(w http.ResponseWriter, _ *http.Request) {
	payload, err := s.spec.Encode()
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

type queryRequest struct {
	Nodes []string `json:"nodes"`
	Edges []struct {
		U     int    `json:"u"`
		V     int    `json:"v"`
		Label string `json:"label"`
	} `json:"edges"`
}

type queryResponse struct {
	Matched    []string     `json:"matched"`
	Facets     []facetEntry `json:"facets,omitempty"`
	Embeddings int          `json:"embeddings"`
	// Truncated marks a response whose budget ran out: what is present is
	// valid, but more matches may exist.
	Truncated bool `json:"truncated"`
	// Plan and Stages are attached only when the request carried a ?plan=
	// parameter: the compiled plan summary and this request's stage-span
	// timings (plan.compile, plan.fragment-probe, plan.join, plan.verify,
	// ...). Never cached — they describe this request, not the answer.
	Plan   *planInfo    `json:"plan,omitempty"`
	Stages []stageEntry `json:"stages,omitempty"`
}

// planInfo is the compiled-plan summary echoed to a ?plan= request.
type planInfo struct {
	Mode     string `json:"mode"`     // resolved planning mode (auto/off/forced)
	Strategy string `json:"strategy"` // chosen execution strategy, "" when off
	Summary  string `json:"summary"`  // human-readable plan line
}

// stageEntry is one stage span of this request's trace.
type stageEntry struct {
	Name string  `json:"name"`
	Ms   float64 `json:"ms"`
}

// facetEntry groups matches by the canned pattern they contain, so the
// front end can offer drill-down instead of a flat list.
type facetEntry struct {
	Pattern string   `json:"pattern"`
	Graphs  []string `json:"graphs"`
}

// decodeQuery reads, validates, and builds the posted query graph. On
// failure it writes the appropriate error envelope (413 oversized body,
// 400 malformed JSON or invalid edges, 422 oversized query) and returns
// ok=false.
func (s *server) decodeQuery(w http.ResponseWriter, r *http.Request) (*graph.Graph, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	var req queryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.maxBodyBytes))
			return nil, false
		}
		writeErr(w, http.StatusBadRequest, "bad_json", err.Error())
		return nil, false
	}
	if size := len(req.Nodes) + len(req.Edges); size > s.maxQuerySize {
		writeErr(w, http.StatusUnprocessableEntity, "query_too_large",
			fmt.Sprintf("query has %d nodes+edges, limit is %d", size, s.maxQuerySize))
		return nil, false
	}
	q := graph.New("query")
	for _, l := range req.Nodes {
		q.AddNode(l)
	}
	for _, e := range req.Edges {
		if _, err := q.AddEdge(e.U, e.V, e.Label); err != nil {
			writeErr(w, http.StatusBadRequest, "bad_query", err.Error())
			return nil, false
		}
	}
	return q, true
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if err := s.inject.Fire("query"); err != nil {
		writeErr(w, http.StatusInternalServerError, "injected", err.Error())
		return
	}
	q, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	// The "verify" fault site models a failure inside query verification,
	// after the request parsed cleanly. It feeds the error counter the
	// fault-injection tests assert on.
	if err := s.inject.Fire("verify"); err != nil {
		s.obs.Counter("vqiserve_verify_errors_total").Inc()
		writeErr(w, http.StatusInternalServerError, "injected", err.Error())
		return
	}
	mode, ok := s.planParam(w, r)
	if !ok {
		return
	}
	ctx := r.Context()
	corpus, idx := s.snapshot()
	// Compile (or fetch) the plan before the response cache: compilation is
	// cheap and plan-cached, and a ?plan= request needs the summary even
	// when the answer itself is served from cache.
	var pl *plan.Plan
	if mode != "off" && !s.network && idx != nil {
		_, span := obs.StartSpan(ctx, "plan.compile")
		pl = s.compiledPlan(idx, q, mode)
		span.End()
	}
	finish := func(resp queryResponse, status int) {
		if r.URL.Query().Has("plan") {
			s.attachPlanTrace(&resp, r, mode, pl)
		}
		writeJSON(w, status, resp)
	}
	if s.qc == nil {
		resp, status := s.execQuery(ctx, q, corpus, idx, pl)
		finish(resp, status)
		return
	}
	// Isomorphic queries share one cache line regardless of how the user
	// drew them: the key starts from the canonical code of the query graph,
	// scoped by the resolved planning mode (different modes may produce
	// differently-truncated outcomes and must not alias).
	// With a sharded index the key is additionally scoped to the full
	// shard-epoch vector, so a batch update silently retires every cached
	// answer that could have changed — no Reset, and answers computed
	// against the old index never leak past the update. Only complete
	// answers are stored — a truncated or timed-out response is handed to
	// its waiters but never cached. Waiters de-duplicated onto an in-flight
	// computation share the leader's outcome (including its budget), which
	// is the desired behavior for a stampede of identical queries.
	key := canon.String(q) + "|plan=" + mode
	if idx != nil {
		key = qcache.EpochKey(key, idx.Epochs())
	}
	out := s.qc.Do(key, func() (cachedResponse, bool) {
		resp, status := s.execQuery(ctx, q, corpus, idx, pl)
		return cachedResponse{resp: resp, status: status},
			status == http.StatusOK && !resp.Truncated
	})
	finish(out.resp, out.status)
}

// planParam resolves the request's planning mode: the ?plan= parameter
// when present (400 bad_plan on unknown values; empty means auto), else
// the -plan flag's default. The returned mode is one of off, auto,
// monolithic, decompose, ann.
func (s *server) planParam(w http.ResponseWriter, r *http.Request) (string, bool) {
	if !r.URL.Query().Has("plan") {
		if s.planEnabled {
			return "auto", true
		}
		return "off", true
	}
	mode := r.URL.Query().Get("plan")
	switch mode {
	case "":
		return "auto", true
	case "auto", "off", "monolithic", "decompose", "ann":
		return mode, true
	default:
		writeErr(w, http.StatusBadRequest, "bad_plan",
			fmt.Sprintf("plan mode %q is not supported; use auto, off, monolithic, decompose, or ann", mode))
		return "", false
	}
}

// compiledPlan compiles q for the given mode, serving repeats from the
// plan cache. PlanKey scopes the entry to the full epoch vector: plans
// bake in corpus-wide label statistics, so any shard rebuild retires them.
func (s *server) compiledPlan(idx *gindex.Sharded, q *graph.Graph, mode string) *plan.Plan {
	cfg := pattern.PlanConfig()
	cfg.ANN = s.annEnabled
	cfg.MaxResults = s.maxResults
	cfg.HasViewCache = s.viewQC != nil
	switch mode {
	case "monolithic":
		cfg.Force = plan.StrategyMonolithic
	case "decompose":
		cfg.Force = plan.StrategyDecomposed
	case "ann":
		cfg.Force = plan.StrategyANN
	}
	if s.planQC == nil {
		return idx.CompilePlan(q, cfg)
	}
	key := qcache.PlanKey(canon.String(q)+"|m="+mode, idx.Epochs())
	return s.planQC.Do(key, func() (*plan.Plan, bool) {
		return idx.CompilePlan(q, cfg), true
	})
}

// attachPlanTrace adds the plan summary and this request's stage timings
// to an (uncached copy of the) response — only for explicit ?plan=
// requests, and always after the response cache, so cached entries stay
// free of per-request data.
func (s *server) attachPlanTrace(resp *queryResponse, r *http.Request, mode string, pl *plan.Plan) {
	info := &planInfo{Mode: mode}
	if pl != nil {
		info.Strategy = string(pl.Strategy)
		info.Summary = pl.String()
	} else {
		info.Summary = "planner off"
	}
	resp.Plan = info
	if tr := obs.TraceFrom(r.Context()); tr != nil {
		for _, sp := range tr.Spans() {
			resp.Stages = append(resp.Stages, stageEntry{Name: sp.Name, Ms: sp.Dur.Seconds() * 1000})
		}
	}
}

// execQuery answers a decoded query graph against one (corpus, index)
// snapshot: network-mode embedding count, sharded filter-verify, or the
// pre-index fallback scan. Returns the response and the HTTP status to
// serve it with. Taking the snapshot as parameters (rather than reading
// s.corpus/s.index) keeps one request on one corpus version even if an
// admin update lands mid-query.
func (s *server) execQuery(ctx context.Context, q *graph.Graph, corpus *graph.Corpus, idx *gindex.Sharded, pl *plan.Plan) (queryResponse, int) {
	var resp queryResponse
	status := http.StatusOK
	if s.network {
		res := isomorph.Count(q, corpus.Graph(0), isomorph.Options{
			MaxEmbeddings: 1000, MaxSteps: 2_000_000, Ctx: ctx})
		resp.Embeddings = res.Embeddings
		resp.Truncated = res.Truncated
		if res.Reason == isomorph.StopCanceled {
			status = http.StatusGatewayTimeout
		}
	} else if idx != nil {
		res := s.searchSharded(ctx, idx, q, pl)
		resp.Matched = res.Matches
		resp.Truncated = res.Truncated
		if ctx.Err() != nil {
			status = http.StatusGatewayTimeout
		} else {
			// Facets cost extra matching; skip them once the budget is gone.
			resp.Facets = s.facets(resp.Matched, corpus)
		}
	} else {
		// Fallback without an index (e.g. before the background build
		// finishes): verify every graph, fanning the independent VF2
		// checks over the worker pool and collecting matches in corpus
		// order. Cancellation stops dispatch; completed slots are kept.
		opts := pattern.MatchOptions()
		opts.Ctx = ctx
		matched, err := par.MapCtx(ctx, corpus.Len(), s.workers, func(i int) bool {
			return isomorph.Exists(q, corpus.Graph(i), opts)
		})
		for i, hit := range matched {
			if hit {
				resp.Matched = append(resp.Matched, corpus.Graph(i).Name())
			}
		}
		if err != nil {
			resp.Truncated = true
			status = http.StatusGatewayTimeout
		}
	}
	return resp, status
}

// searchSharded runs the query over the sharded index. A compiled plan
// routes decomposed and ANN strategies to the plan executor (with the
// fragment-view cache and the fault injector); a monolithic plan just
// applies its compiled matching order to the existing paths — the order
// changes Steps, never the match set, so order-agnostic cache keys stay
// sound. With the partial cache enabled, each shard's result is fetched
// (or computed) under a (query, shard, epoch) key and the partials are
// merged to the exact global answer — after a batch update only the
// rebuilt shards recompute. Per-shard partials are computed independently
// (each capped at MaxResults) rather than under the shared cross-shard
// budget, precisely so they are a pure function of (query, shard content)
// and therefore cacheable; MergeShardResults re-applies the global cap.
// Without the cache, the shared-budget fan-out in SearchCtx is cheaper
// and is used directly.
func (s *server) searchSharded(ctx context.Context, idx *gindex.Sharded, q *graph.Graph, pl *plan.Plan) gindex.Result {
	opts := pattern.MatchOptions()
	opts.MaxResults = s.maxResults
	if pl != nil {
		if pl.Strategy != plan.StrategyMonolithic {
			return idx.SearchPlan(ctx, q, opts, pl, gindex.PlanOptions{Views: s.viewQC, Inject: s.inject})
		}
		opts.Order = pl.Order
	}
	if s.shardQC == nil {
		return idx.SearchCtx(ctx, q, opts)
	}
	base := canon.String(q)
	partials := make([]gindex.ShardResult, idx.NumShards())
	par.ForEachN(idx.NumShards(), s.workers, func(si int) {
		key := qcache.ShardKey(base, si, idx.Epoch(si))
		partials[si] = s.shardQC.Do(key, func() (gindex.ShardResult, bool) {
			// A partial cut short by cancellation is incomplete for this
			// shard; hand it to waiters but never cache it.
			r := idx.SearchShardCtx(ctx, si, q, opts)
			return r, !r.Truncated
		})
	})
	return gindex.MergeShardResults(partials, s.maxResults)
}

// facets groups matched graphs by the spec's canned patterns.
func (s *server) facets(matched []string, corpus *graph.Corpus) []facetEntry {
	if len(matched) == 0 {
		return nil
	}
	panel, err := s.spec.AllPatterns()
	if err != nil {
		return nil
	}
	// Only canned patterns facet usefully; basics match almost everything.
	canned := panel[len(s.spec.Patterns.Basic):]
	fs, _ := results.Facets(matched, corpus, canned, pattern.MatchOptions())
	var out []facetEntry
	for _, f := range fs {
		out = append(out, facetEntry{
			Pattern: s.spec.Patterns.Canned[f.PatternIndex].Name,
			Graphs:  f.Graphs,
		})
	}
	return out
}

type suggestResponse struct {
	Suggestions []suggestEntry `json:"suggestions"`
}

type suggestEntry struct {
	PatternIndex int    `json:"pattern_index"`
	Name         string `json:"name"`
	NewEdges     int    `json:"new_edges"`
}

// handleSuggest proposes panel patterns that continue the posted partial
// query (VIIQ-style auto-suggestion).
func (s *server) handleSuggest(w http.ResponseWriter, r *http.Request) {
	if err := s.inject.Fire("suggest"); err != nil {
		writeErr(w, http.StatusInternalServerError, "injected", err.Error())
		return
	}
	q, ok := s.decodeQuery(w, r)
	if !ok {
		return
	}
	sugs, err := vqi.SuggestForSpec(s.spec, q, 8)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	resp := suggestResponse{Suggestions: []suggestEntry{}}
	for _, sg := range sugs {
		resp.Suggestions = append(resp.Suggestions, suggestEntry{
			PatternIndex: sg.PatternIndex,
			Name:         sg.Pattern.Name,
			NewEdges:     sg.NewEdges,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
