package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"slices"
	"strings"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/vqi"
)

// adminServer builds a ready corpus-mode server with k index shards and
// both caches enabled.
func adminServer(t *testing.T, k, cacheSize int) *server {
	t.Helper()
	corpus := datagen.ChemicalCorpus(2, 24, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(spec, corpus, serverConfig{shards: k, cacheSize: cacheSize})
	s.buildIndex()
	return s
}

func post(t *testing.T, h http.Handler, path, body string) (*httptest.ResponseRecorder, []byte) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", path, strings.NewReader(body)))
	return rec, rec.Body.Bytes()
}

const ccQuery = `{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}`

func queryMatched(t *testing.T, h http.Handler) []string {
	t.Helper()
	rec, body := post(t, h, "/api/query", ccQuery)
	if rec.Code != 200 {
		t.Fatalf("query status = %d (body %s)", rec.Code, body)
	}
	var resp queryResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	return resp.Matched
}

// TestAdminUpdateRoundTrip adds a graph through /admin/update, sees it
// matched by the very next query, removes it, and sees it gone — all
// without any index rebuild beyond the touched shards.
func TestAdminUpdateRoundTrip(t *testing.T) {
	const k = 4
	s := adminServer(t, k, 64)
	h := s.routes()

	before := queryMatched(t, h)
	if slices.Contains(before, "adm-added") {
		t.Fatal("fixture already contains the graph to add")
	}

	add := `{"add":[{"name":"adm-added","nodes":["C","C","O"],"edges":[{"u":0,"v":1,"label":"s"},{"u":1,"v":2,"label":"s"}]}]}`
	rec, body := post(t, h, "/admin/update", add)
	if rec.Code != 200 {
		t.Fatalf("update status = %d (body %s)", rec.Code, body)
	}
	var rep updateResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Added != 1 || rep.Removed != 0 || rep.Shards != k {
		t.Fatalf("report %+v", rep)
	}
	if len(rep.Rebuilt) != 1 {
		t.Fatalf("one added graph must rebuild exactly one shard, got %v", rep.Rebuilt)
	}
	if rep.Graphs != 25 {
		t.Fatalf("graphs = %d, want 24 fixtures + 1 added", rep.Graphs)
	}

	after := queryMatched(t, h)
	if !slices.Contains(after, "adm-added") {
		t.Fatalf("added graph not matched: %v", after)
	}
	// The added graph lands at the end of corpus order.
	if after[len(after)-1] != "adm-added" {
		t.Fatalf("added graph must sort last in corpus order: %v", after)
	}
	if !slices.Equal(after[:len(after)-1], before) {
		t.Fatalf("surviving matches changed order: %v vs %v", after, before)
	}

	rec, body = post(t, h, "/admin/update", `{"remove":["adm-added"]}`)
	if rec.Code != 200 {
		t.Fatalf("remove status = %d (body %s)", rec.Code, body)
	}
	final := queryMatched(t, h)
	if !slices.Equal(final, before) {
		t.Fatalf("after remove: %v, want %v", final, before)
	}
}

// TestAdminUpdatePartialCacheInvalidation is the point of per-shard epoch
// keys: after a batch that rebuilds R of K shards, re-running a cached
// query recomputes exactly R shard partials and reuses the other K-R from
// the cache.
func TestAdminUpdatePartialCacheInvalidation(t *testing.T) {
	const k = 4
	s := adminServer(t, k, 64)
	h := s.routes()

	queryMatched(t, h)
	hits0, miss0, _ := s.shardQC.Stats()
	if miss0 != k || hits0 != 0 {
		t.Fatalf("first query: %d hits, %d misses, want 0/%d", hits0, miss0, k)
	}
	// An identical query hits the full-response cache and never reaches the
	// shard cache.
	queryMatched(t, h)
	if hits1, miss1, _ := s.shardQC.Stats(); hits1 != hits0 || miss1 != miss0 {
		t.Fatalf("repeat query touched the shard cache: %d/%d", hits1, miss1)
	}

	add := `{"add":[{"name":"adm-cache","nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}]}`
	rec, body := post(t, h, "/admin/update", add)
	if rec.Code != 200 {
		t.Fatalf("update status = %d (body %s)", rec.Code, body)
	}
	var rep updateResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}

	// The epoch vector changed, so the full-response cache misses and the
	// shard fan-out reruns — but only the rebuilt shards' partials miss.
	queryMatched(t, h)
	hits2, miss2, _ := s.shardQC.Stats()
	if got, want := miss2-miss0, uint64(len(rep.Rebuilt)); got != want {
		t.Fatalf("shard-cache misses after update = %d, want %d (rebuilt %v)", got, want, rep.Rebuilt)
	}
	if got, want := hits2-hits0, uint64(k-len(rep.Rebuilt)); got != want {
		t.Fatalf("shard-cache hits after update = %d, want %d", got, want)
	}
}

func TestAdminUpdateErrors(t *testing.T) {
	s := adminServer(t, 2, 8)
	h := s.routes()
	for name, tc := range map[string]struct {
		body   string
		status int
		code   string
	}{
		"bad-json":        {`{`, 400, "bad_json"},
		"empty-batch":     {`{}`, 400, "empty_batch"},
		"missing-name":    {`{"add":[{"nodes":["C"]}]}`, 400, "bad_batch"},
		"bad-edge":        {`{"add":[{"name":"x","nodes":["C"],"edges":[{"u":0,"v":9,"label":"s"}]}]}`, 400, "bad_batch"},
		"unknown-removal": {`{"remove":["no-such-graph"]}`, 400, "bad_batch"},
		"duplicate-add":   {`{"add":[{"name":"mol0","nodes":["C"]}]}`, 400, "bad_batch"},
	} {
		rec, body := post(t, h, "/admin/update", tc.body)
		if rec.Code != tc.status {
			t.Fatalf("%s: status = %d, want %d (body %s)", name, rec.Code, tc.status, body)
		}
		if e := decodeErr(t, body); e.Code != tc.code {
			t.Fatalf("%s: code = %q, want %q", name, e.Code, tc.code)
		}
	}

	// Before the index is built the endpoint refuses rather than racing the
	// background build.
	cold := testServer(t)
	rec, body := post(t, cold.routes(), "/admin/update", `{"remove":["mol0"]}`)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cold server: status = %d (body %s)", rec.Code, body)
	}

	// Network mode has no corpus to batch-update.
	net := networkServer(t, serverConfig{})
	net.phase.Store(phaseReady)
	rec, body = post(t, net.routes(), "/admin/update", `{"remove":["g"]}`)
	if rec.Code != http.StatusConflict {
		t.Fatalf("network server: status = %d (body %s)", rec.Code, body)
	}
	if e := decodeErr(t, body); e.Code != "network_mode" {
		t.Fatalf("network server: code = %q", e.Code)
	}
}

// TestAdminUpdateConcurrentWithQueries races batch updates against a
// stream of queries (run under -race by scripts/verify.sh): every query
// must see a consistent snapshot and return cleanly.
func TestAdminUpdateConcurrentWithQueries(t *testing.T) {
	s := adminServer(t, 4, 64)
	h := s.routes()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 8; i++ {
			name := fmt.Sprintf("conc-%d", i)
			add := fmt.Sprintf(`{"add":[{"name":%q,"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}]}`, name)
			if rec, body := post(t, h, "/admin/update", add); rec.Code != 200 {
				t.Errorf("add %s: %d (%s)", name, rec.Code, body)
				return
			}
			if rec, body := post(t, h, "/admin/update", fmt.Sprintf(`{"remove":[%q]}`, name)); rec.Code != 200 {
				t.Errorf("remove %s: %d (%s)", name, rec.Code, body)
				return
			}
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
			if rec, body := post(t, h, "/api/query", ccQuery); rec.Code != 200 {
				t.Fatalf("query during updates: %d (%s)", rec.Code, body)
			}
		}
	}
}
