package main

// POST /api/similar — two-stage similarity retrieval over the ANN-enabled
// index (start the server with -ann). The query is either a corpus graph
// by name ({"graph":"mol7"}) or an inline pattern (the same nodes/edges
// shape as /api/query); "k" caps the result size, "mode" selects
// approx (LSH shortlist, the default) or exact (full cosine scan — the
// oracle), and "verify" re-ranks the top-k by exact VF2 containment.
//
// Responses are cached in simQC under a key covering the full request
// shape and every shard's epoch: a similarity answer can draw from any
// shard, so any rebuilt shard must retire it. Only complete (200,
// non-truncated) answers are stored, mirroring /api/query.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/canon"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/qcache"
)

type similarRequest struct {
	// Graph names a corpus graph to use as the query; mutually exclusive
	// with an inline pattern.
	Graph string   `json:"graph,omitempty"`
	Nodes []string `json:"nodes,omitempty"`
	Edges []struct {
		U     int    `json:"u"`
		V     int    `json:"v"`
		Label string `json:"label"`
	} `json:"edges,omitempty"`

	K      int    `json:"k,omitempty"`    // top-k (0 = 10)
	Mode   string `json:"mode,omitempty"` // "approx" (default) | "exact"
	Verify bool   `json:"verify,omitempty"`
}

type similarMatch struct {
	Name     string  `json:"name"`
	Score    float64 `json:"score"`
	Contains bool    `json:"contains,omitempty"`
}

type similarResponse struct {
	Matches   []similarMatch `json:"matches"`
	Mode      string         `json:"mode"`
	Probed    int            `json:"probed"`    // LSH buckets examined (approx)
	Shortlist int            `json:"shortlist"` // candidates exact-scored
	Scanned   int            `json:"scanned"`   // corpus size at query time
	Verified  int            `json:"verified"`  // VF2 checks completed
	Truncated bool           `json:"truncated"`
}

// cachedSimilar is a completed similarity outcome: body plus HTTP status.
type cachedSimilar struct {
	resp   similarResponse
	status int
}

const maxSimilarK = 100

func (s *server) handleSimilar(w http.ResponseWriter, r *http.Request) {
	if s.network {
		writeErr(w, http.StatusConflict, "network_mode",
			"similarity retrieval applies to corpus mode; this server serves a single network")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	var req similarRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeErr(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", s.maxBodyBytes))
			return
		}
		writeErr(w, http.StatusBadRequest, "bad_json", err.Error())
		return
	}
	switch req.Mode {
	case "", "approx", "exact":
	default:
		writeErr(w, http.StatusBadRequest, "bad_mode",
			fmt.Sprintf("mode %q is not supported; use \"approx\" or \"exact\"", req.Mode))
		return
	}
	if req.K < 0 || req.K > maxSimilarK {
		writeErr(w, http.StatusBadRequest, "bad_k",
			fmt.Sprintf("k must be in [0, %d] (0 = default 10)", maxSimilarK))
		return
	}
	if req.Graph != "" && (len(req.Nodes) > 0 || len(req.Edges) > 0) {
		writeErr(w, http.StatusBadRequest, "bad_query",
			"provide either a graph name or an inline pattern, not both")
		return
	}

	corpus, idx := s.snapshot()
	if idx == nil {
		writeErr(w, http.StatusServiceUnavailable, "not_ready", "index build in progress")
		return
	}
	if !idx.ANNEnabled() {
		writeErr(w, http.StatusConflict, "ann_disabled",
			"similarity retrieval requires the ANN index; start the server with -ann")
		return
	}

	// Resolve the query graph and its cache identity. By-name queries key
	// on the name (cheap, and already canonical); inline patterns key on
	// their canonical code so isomorphic drawings share a cache line.
	var q *graph.Graph
	var keyBase string
	if req.Graph != "" {
		g, ok := corpus.ByName(req.Graph)
		if !ok {
			writeErr(w, http.StatusNotFound, "unknown_graph",
				fmt.Sprintf("graph %q is not in the corpus", req.Graph))
			return
		}
		q = g
		keyBase = "name\x00" + req.Graph
	} else {
		if size := len(req.Nodes) + len(req.Edges); size > s.maxQuerySize {
			writeErr(w, http.StatusUnprocessableEntity, "query_too_large",
				fmt.Sprintf("query has %d nodes+edges, limit is %d", size, s.maxQuerySize))
			return
		}
		q = graph.New("query")
		for _, l := range req.Nodes {
			q.AddNode(l)
		}
		for _, e := range req.Edges {
			if _, err := q.AddEdge(e.U, e.V, e.Label); err != nil {
				writeErr(w, http.StatusBadRequest, "bad_query", err.Error())
				return
			}
		}
		if q.NumNodes() == 0 {
			writeErr(w, http.StatusBadRequest, "bad_query", "query graph is empty")
			return
		}
		keyBase = "canon\x00" + canon.String(q)
	}

	ctx := r.Context()
	if s.simQC == nil {
		resp, status := s.execSimilar(ctx, idx, q, req)
		writeJSON(w, status, resp)
		return
	}
	key := qcache.EpochKey(
		fmt.Sprintf("sim\x00%s\x00%d\x00%v\x00%s", req.Mode, req.K, req.Verify, keyBase),
		idx.Epochs())
	out := s.simQC.Do(key, func() (cachedSimilar, bool) {
		resp, status := s.execSimilar(ctx, idx, q, req)
		return cachedSimilar{resp: resp, status: status},
			status == http.StatusOK && !resp.Truncated
	})
	writeJSON(w, out.status, out.resp)
}

// execSimilar runs the two-stage retrieval against one index snapshot and
// shapes the HTTP outcome: a query whose verification budget died on the
// request deadline degrades to 504 + truncated, mirroring /api/query.
func (s *server) execSimilar(ctx context.Context, idx *gindex.Sharded, q *graph.Graph, req similarRequest) (similarResponse, int) {
	opts := gindex.SimilarOptions{
		K:          req.K,
		Exact:      req.Mode == "exact",
		Verify:     req.Verify,
		VerifyOpts: pattern.MatchOptions(),
	}
	res, err := idx.SimilarCtx(ctx, q, opts)
	if err != nil {
		// Structural misuse is screened before this point; anything left is
		// a server-side invariant violation.
		return similarResponse{}, http.StatusInternalServerError
	}
	mode := "approx"
	if req.Mode == "exact" {
		mode = "exact"
	}
	resp := similarResponse{
		Matches:   make([]similarMatch, 0, len(res.Matches)),
		Mode:      mode,
		Probed:    res.Probed,
		Shortlist: res.Shortlist,
		Scanned:   res.Scanned,
		Verified:  res.Verified,
		Truncated: res.Truncated,
	}
	for _, m := range res.Matches {
		resp.Matches = append(resp.Matches, similarMatch{Name: m.Name, Score: m.Score, Contains: m.Contains})
	}
	status := http.StatusOK
	if res.Truncated && ctx.Err() != nil {
		status = http.StatusGatewayTimeout
	}
	return resp, status
}
