package main

// indexHTML is the data-driven front end. It contains zero knowledge of
// the data source: every label and pattern is fetched from /api/spec and
// rendered at runtime.
const indexHTML = `<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>Data-driven VQI</title>
<style>
  body { font-family: system-ui, sans-serif; margin: 0; display: grid;
         grid-template-columns: 220px 1fr 260px; grid-template-rows: 42px 1fr 180px;
         height: 100vh; }
  header { grid-column: 1 / 4; background: #1c2733; color: #fff;
           display: flex; align-items: center; padding: 0 14px; font-size: 15px; }
  header .mode { margin-left: auto; font-size: 12px; opacity: .8; }
  #attrs  { grid-row: 2 / 4; border-right: 1px solid #ddd; overflow-y: auto; padding: 8px; }
  #query  { position: relative; }
  #patterns { grid-row: 2 / 4; border-left: 1px solid #ddd; overflow-y: auto; padding: 8px; }
  #results { grid-column: 2; border-top: 1px solid #ddd; overflow-y: auto; padding: 8px; font-size: 13px; }
  h3 { font-size: 12px; text-transform: uppercase; letter-spacing: .06em; color: #667; margin: 8px 0 4px; }
  .label-chip { display: inline-block; margin: 2px; padding: 2px 8px; border: 1px solid #bcd;
                border-radius: 10px; font-size: 12px; cursor: pointer; background: #f4f8ff; }
  .label-chip.sel { background: #2266cc; color: #fff; }
  .thumb { border: 1px solid #ccd; border-radius: 6px; margin: 6px 0; cursor: pointer; background: #fff; }
  .thumb:hover { border-color: #26c; }
  .thumb .cap { font-size: 11px; color: #556; padding: 2px 6px; }
  svg.canvas { width: 100%; height: 100%; background: #fafbfc; }
  button { margin: 4px; }
  #toolbar { position: absolute; top: 6px; left: 6px; z-index: 2; background: #ffffffcc; border-radius: 6px; }
</style>
</head>
<body>
<header>Data-driven Visual Query Interface<span class="mode" id="mode"></span></header>
<div id="attrs"><h3>Attribute Panel</h3><div id="nodeLabels"></div><h3>Edge labels</h3><div id="edgeLabels"></div></div>
<div id="query">
  <div id="toolbar">
    <button onclick="setTool('node')">+ node</button>
    <button onclick="setTool('edge')">+ edge</button>
    <button onclick="runQuery()">Run ▶</button>
    <button onclick="suggest()">Suggest</button>
    <button onclick="clearQuery()">Clear</button>
    <span id="tool" style="font-size:12px;color:#667"></span>
  </div>
  <svg class="canvas" id="canvas"></svg>
</div>
<div id="patterns"><h3>Pattern Panel — basic</h3><div id="basic"></div><h3>Pattern Panel — canned (data-driven)</h3><div id="canned"></div></div>
<div id="results"><h3>Results Panel</h3><div id="resultBody">Draw a query and press Run.</div></div>
<script>
let spec = null, tool = 'node', selLabel = '', selEdgeLabel = '';
let q = { nodes: [], edges: [] }, pos = [], pendingEdge = -1;

fetch('/api/spec').then(r => r.json()).then(s => { spec = s; render(); });

function render() {
  document.getElementById('mode').textContent = spec.mode + ' · ' + spec.name;
  const nl = document.getElementById('nodeLabels');
  spec.attribute_panel.node_labels.forEach(l => nl.appendChild(chip(l, 'node')));
  const el = document.getElementById('edgeLabels');
  spec.attribute_panel.edge_labels.forEach(l => el.appendChild(chip(l, 'edge')));
  drawPanel('basic', spec.pattern_panel.basic, 0);
  drawPanel('canned', spec.pattern_panel.canned, spec.pattern_panel.basic.length);
}
function chip(label, kind) {
  const d = document.createElement('span');
  d.className = 'label-chip'; d.textContent = label || '*';
  d.onclick = () => {
    if (kind === 'node') { selLabel = label;
      document.querySelectorAll('#nodeLabels .label-chip').forEach(c => c.classList.remove('sel'));
    } else { selEdgeLabel = label;
      document.querySelectorAll('#edgeLabels .label-chip').forEach(c => c.classList.remove('sel'));
    }
    d.classList.add('sel');
  };
  return d;
}
function drawPanel(id, patterns, offset) {
  const host = document.getElementById(id);
  patterns.forEach((p, i) => {
    const div = document.createElement('div'); div.className = 'thumb';
    div.appendChild(thumbSVG(p));
    const cap = document.createElement('div'); cap.className = 'cap';
    cap.textContent = p.name + ' (load ' + p.cognitive_load.toFixed(1) + ')';
    div.appendChild(cap);
    div.onclick = () => stamp(p);
    host.appendChild(div);
  });
}
function thumbSVG(p) {
  const s = document.createElementNS('http://www.w3.org/2000/svg', 'svg');
  s.setAttribute('viewBox', '0 0 120 120'); s.setAttribute('width', '100%'); s.setAttribute('height', '90');
  p.edges.forEach(e => {
    const l = document.createElementNS(s.namespaceURI, 'line');
    l.setAttribute('x1', p.positions[e.u].x); l.setAttribute('y1', p.positions[e.u].y);
    l.setAttribute('x2', p.positions[e.v].x); l.setAttribute('y2', p.positions[e.v].y);
    l.setAttribute('stroke', '#789'); s.appendChild(l);
  });
  p.nodes.forEach((label, i) => {
    const c = document.createElementNS(s.namespaceURI, 'circle');
    c.setAttribute('cx', p.positions[i].x); c.setAttribute('cy', p.positions[i].y);
    c.setAttribute('r', 7); c.setAttribute('fill', '#2266cc'); s.appendChild(c);
    const t = document.createElementNS(s.namespaceURI, 'text');
    t.setAttribute('x', p.positions[i].x); t.setAttribute('y', p.positions[i].y + 3);
    t.setAttribute('text-anchor', 'middle'); t.setAttribute('font-size', '8'); t.setAttribute('fill', '#fff');
    t.textContent = label || '*'; s.appendChild(t);
  });
  return s;
}
function setTool(t) { tool = t; pendingEdge = -1; info(); }
function info() { document.getElementById('tool').textContent =
  tool === 'node' ? 'click canvas to add "' + (selLabel || '*') + '"' : 'click two nodes to connect'; }
document.getElementById('canvas').addEventListener('click', ev => {
  const r = ev.currentTarget.getBoundingClientRect();
  const x = ev.clientX - r.left, y = ev.clientY - r.top;
  if (tool === 'node') { q.nodes.push(selLabel); pos.push({x, y}); redraw(); return; }
  const hit = pos.findIndex(p => (p.x - x) ** 2 + (p.y - y) ** 2 < 144);
  if (hit < 0) return;
  if (pendingEdge < 0) { pendingEdge = hit; }
  else if (pendingEdge !== hit) {
    q.edges.push({u: pendingEdge, v: hit, label: selEdgeLabel}); pendingEdge = -1; redraw();
  }
});
function stamp(p) {
  const base = q.nodes.length, cx = 120 + Math.random() * 200, cy = 80 + Math.random() * 160;
  p.nodes.forEach((label, i) => { q.nodes.push(label); pos.push({x: cx + (p.positions[i].x - 60) * 0.8, y: cy + (p.positions[i].y - 60) * 0.8}); });
  p.edges.forEach(e => q.edges.push({u: base + e.u, v: base + e.v, label: e.label}));
  redraw();
}
function redraw() {
  const s = document.getElementById('canvas');
  while (s.firstChild) s.removeChild(s.firstChild);
  q.edges.forEach(e => {
    const l = document.createElementNS(s.namespaceURI, 'line');
    l.setAttribute('x1', pos[e.u].x); l.setAttribute('y1', pos[e.u].y);
    l.setAttribute('x2', pos[e.v].x); l.setAttribute('y2', pos[e.v].y);
    l.setAttribute('stroke', '#456'); l.setAttribute('stroke-width', '2'); s.appendChild(l);
  });
  q.nodes.forEach((label, i) => {
    const c = document.createElementNS(s.namespaceURI, 'circle');
    c.setAttribute('cx', pos[i].x); c.setAttribute('cy', pos[i].y);
    c.setAttribute('r', 12); c.setAttribute('fill', '#2266cc'); s.appendChild(c);
    const t = document.createElementNS(s.namespaceURI, 'text');
    t.setAttribute('x', pos[i].x); t.setAttribute('y', pos[i].y + 4);
    t.setAttribute('text-anchor', 'middle'); t.setAttribute('font-size', '10'); t.setAttribute('fill', '#fff');
    t.textContent = label || '*'; s.appendChild(t);
  });
}
function clearQuery() { q = {nodes: [], edges: []}; pos = []; pendingEdge = -1; redraw(); }
function runQuery() {
  fetch('/api/query', {method: 'POST', body: JSON.stringify(q)}).then(r => r.json()).then(res => {
    const host = document.getElementById('resultBody');
    if (res.error) { host.textContent = 'error (' + res.error.code + '): ' + res.error.message; return; }
    const note = res.truncated ? ' [budget exhausted — partial results]' : '';
    if (res.matched && res.matched.length) {
      host.textContent = res.matched.length + ' matching graphs' + note + ': ' + res.matched.slice(0, 50).join(', ');
      if (res.facets && res.facets.length) {
        const ul = document.createElement('ul');
        res.facets.forEach(f => {
          const li = document.createElement('li');
          li.textContent = 'contains ' + f.pattern + ': ' + f.graphs.length + ' graphs';
          ul.appendChild(li);
        });
        host.appendChild(ul);
      }
    } else if (res.embeddings) {
      host.textContent = res.embeddings + ' embeddings in the network' + note;
    } else { host.textContent = 'no matches' + note; }
  });
}
function suggest() {
  fetch('/api/suggest', {method: 'POST', body: JSON.stringify(q)}).then(r => r.json()).then(res => {
    const host = document.getElementById('resultBody');
    if (res.error) { host.textContent = 'error (' + res.error.code + '): ' + res.error.message; return; }
    if (!res.suggestions || !res.suggestions.length) { host.textContent = 'no suggested continuations'; return; }
    host.textContent = 'suggested continuations (click a pattern in the panel to stamp):';
    const ul = document.createElement('ul');
    res.suggestions.forEach(sg => {
      const li = document.createElement('li');
      li.textContent = sg.name + ' (+' + sg.new_edges + ' edges)';
      ul.appendChild(li);
    });
    host.appendChild(ul);
  });
}
info();
</script>
</body>
</html>
`
