package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/ann"
	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/pattern"
	"repro/internal/vqi"
)

// annTestServer builds a ready corpus-mode server with similarity state.
func annTestServer(t *testing.T, cacheSize int) *server {
	t.Helper()
	corpus := datagen.ChemicalCorpus(2, 24, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(spec, corpus, serverConfig{
		shards: 4, cacheSize: cacheSize, annEnabled: true, annCfg: ann.NewConfig()})
	s.buildIndex()
	return s
}

func postSimilar(t *testing.T, h http.Handler, body string) (int, similarResponse, errorResponse) {
	t.Helper()
	rec, raw := post(t, h, "/api/similar", body)
	var resp similarResponse
	var errResp errorResponse
	if rec.Code == http.StatusOK {
		if err := json.Unmarshal(raw, &resp); err != nil {
			t.Fatalf("bad response %s: %v", raw, err)
		}
	} else if err := json.Unmarshal(raw, &errResp); err != nil {
		t.Fatalf("bad error body %s: %v", raw, err)
	}
	return rec.Code, resp, errResp
}

func TestSimilarByName(t *testing.T) {
	s := annTestServer(t, 0)
	h := s.routes()
	code, resp, _ := postSimilar(t, h, `{"graph":"mol3","k":5}`)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if resp.Mode != "approx" || resp.Probed == 0 {
		t.Fatalf("approx query: %+v", resp)
	}
	if len(resp.Matches) == 0 || resp.Matches[0].Name != "mol3" {
		t.Fatalf("query graph is not its own nearest neighbor: %+v", resp.Matches)
	}
	if resp.Matches[0].Score < 0.999 {
		t.Fatalf("self-similarity %v", resp.Matches[0].Score)
	}
}

func TestSimilarInlineExactAndVerify(t *testing.T) {
	s := annTestServer(t, 0)
	h := s.routes()
	// A C-C-O path exists in chemical data; exact mode scans every vector.
	body := `{"nodes":["C","C","O"],"edges":[{"u":0,"v":1,"label":"s"},{"u":1,"v":2,"label":"s"}],"k":8,"mode":"exact","verify":true}`
	code, resp, _ := postSimilar(t, h, body)
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	corpus, _ := s.snapshot()
	if resp.Mode != "exact" || resp.Shortlist != corpus.Len() || resp.Scanned != corpus.Len() {
		t.Fatalf("exact scan accounting: %+v", resp)
	}
	if resp.Verified != len(resp.Matches) {
		t.Fatalf("verified %d of %d", resp.Verified, len(resp.Matches))
	}
	seenNonContaining := false
	for _, m := range resp.Matches {
		if !m.Contains {
			seenNonContaining = true
		} else if seenNonContaining {
			t.Fatalf("contains ordering violated: %+v", resp.Matches)
		}
	}
}

func TestSimilarRequestValidation(t *testing.T) {
	s := annTestServer(t, 0)
	h := s.routes()
	cases := []struct {
		body string
		code int
		slug string
	}{
		{`{"graph":"mol3","mode":"fuzzy"}`, 400, "bad_mode"},
		{`{"graph":"mol3","k":-1}`, 400, "bad_k"},
		{fmt.Sprintf(`{"graph":"mol3","k":%d}`, maxSimilarK+1), 400, "bad_k"},
		{`{"graph":"no-such-graph"}`, 404, "unknown_graph"},
		{`{"graph":"mol3","nodes":["C"]}`, 400, "bad_query"},
		{`{}`, 400, "bad_query"},
		{`{not json`, 400, "bad_json"},
	}
	for _, tc := range cases {
		code, _, errResp := postSimilar(t, h, tc.body)
		if code != tc.code || errResp.Error.Code != tc.slug {
			t.Fatalf("%s: got (%d, %q), want (%d, %q)",
				tc.body, code, errResp.Error.Code, tc.code, tc.slug)
		}
	}
}

func TestSimilarANNDisabled(t *testing.T) {
	s := adminServer(t, 4, 0) // plain index, no -ann
	h := s.routes()
	code, _, errResp := postSimilar(t, h, `{"graph":"mol3"}`)
	if code != http.StatusConflict || errResp.Error.Code != "ann_disabled" {
		t.Fatalf("got (%d, %q), want (409, ann_disabled)", code, errResp.Error.Code)
	}
}

// TestSimilarCache: identical requests share a cache line; an admin batch
// bumps touched epochs, which retires every similarity entry (any shard
// can contribute to a top-k).
func TestSimilarCache(t *testing.T) {
	s := annTestServer(t, 64)
	h := s.routes()
	req := `{"graph":"mol3","k":5}`
	if code, _, _ := postSimilar(t, h, req); code != 200 {
		t.Fatal("first request failed")
	}
	m0 := s.simQC.Metrics()
	if code, _, _ := postSimilar(t, h, req); code != 200 {
		t.Fatal("second request failed")
	}
	m1 := s.simQC.Metrics()
	if m1.Hits != m0.Hits+1 {
		t.Fatalf("identical request did not hit the cache: %+v -> %+v", m0, m1)
	}
	// Distinct k is a distinct answer.
	if code, _, _ := postSimilar(t, h, `{"graph":"mol3","k":6}`); code != 200 {
		t.Fatal("request with different k failed")
	}
	if m := s.simQC.Metrics(); m.Hits != m1.Hits {
		t.Fatalf("different k hit the same cache line: %+v", m)
	}
	// A batch update changes the epoch vector: the old entry is unreachable.
	add := `{"add":[{"name":"sim-added","nodes":["C","C","O"],"edges":[{"u":0,"v":1,"label":"s"},{"u":1,"v":2,"label":"s"}]}]}`
	if rec, body := post(t, h, "/admin/update", add); rec.Code != 200 {
		t.Fatalf("admin update: %d %s", rec.Code, body)
	}
	hitsBefore := s.simQC.Metrics().Hits
	if code, _, _ := postSimilar(t, h, req); code != 200 {
		t.Fatal("post-update request failed")
	}
	if m := s.simQC.Metrics(); m.Hits != hitsBefore {
		t.Fatalf("stale similarity answer served after batch update: %+v", m)
	}
	// The added graph is retrievable by name immediately.
	code, resp, _ := postSimilar(t, h, `{"graph":"sim-added","k":3}`)
	if code != 200 || len(resp.Matches) == 0 || resp.Matches[0].Name != "sim-added" {
		t.Fatalf("added graph not retrievable: %d %+v", code, resp)
	}
}
