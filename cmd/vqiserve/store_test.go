package main

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"slices"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/pattern"
	"repro/internal/store"
	"repro/internal/vqi"
)

// durableServer mounts dir (seeding it from the standard 24-graph fixture
// corpus when empty), builds a ready server on top, and returns it. The
// injector arms store fault sites; nil for clean runs.
func durableServer(t *testing.T, dir string, inj *faultinject.Injector) *server {
	t.Helper()
	st, rec, err := store.Open(context.Background(), dir, store.Options{Inject: inj})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	corpus := rec.Corpus
	if corpus == nil {
		corpus = datagen.ChemicalCorpus(2, 24, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
		if err := st.Seed(corpus); err != nil {
			t.Fatal(err)
		}
	}
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(spec, corpus, serverConfig{shards: 4, cacheSize: 32})
	s.attachStore(st, rec)
	s.buildIndex()
	return s
}

const durableAdd = `{"add":[{"name":"dur-added","nodes":["C","C","O"],"edges":[{"u":0,"v":1,"label":"s"},{"u":1,"v":2,"label":"s"}]}]}`

// TestDurableServerRecoversUpdates: an acknowledged /admin/update
// survives an abrupt restart — the new process replays the WAL onto the
// seed snapshot and answers queries as if it never died.
func TestDurableServerRecoversUpdates(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, nil)
	h := s.routes()

	rec, body := post(t, h, "/admin/update", durableAdd)
	if rec.Code != 200 {
		t.Fatalf("update status = %d (body %s)", rec.Code, body)
	}
	var rep updateResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seq != 1 {
		t.Fatalf("first durable update got seq %d, want 1", rep.Seq)
	}
	liveEpochs := s.index.Epochs()
	liveMatched := queryMatched(t, h)
	if !slices.Contains(liveMatched, "dur-added") {
		t.Fatalf("added graph not matched live: %v", liveMatched)
	}

	// "Crash": abandon the server without a clean store close, then boot a
	// fresh one from the same directory.
	s.st.Abandon()
	s2 := durableServer(t, dir, nil)
	h2 := s2.routes()
	if got := queryMatched(t, h2); !slices.Equal(got, liveMatched) {
		t.Fatalf("recovered matches %v, want %v", got, liveMatched)
	}
	if !slices.Equal(s2.index.Epochs(), liveEpochs) {
		t.Fatalf("recovered epochs %v, want %v", s2.index.Epochs(), liveEpochs)
	}
	if s2.corpus.Len() != s.corpus.Len() {
		t.Fatalf("recovered corpus len %d, want %d", s2.corpus.Len(), s.corpus.Len())
	}
	// Readiness lands on 200/ready after recovery.
	rr := httptest.NewRecorder()
	h2.ServeHTTP(rr, httptest.NewRequest("GET", "/readyz", nil))
	if rr.Code != 200 {
		t.Fatalf("readyz after recovery = %d", rr.Code)
	}
	// And the recovered server keeps accepting durable updates at the next
	// sequence number.
	rec, body = post(t, h2, "/admin/update", `{"remove":["dur-added"]}`)
	if rec.Code != 200 {
		t.Fatalf("post-recovery update = %d (body %s)", rec.Code, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seq != 2 {
		t.Fatalf("post-recovery seq = %d, want 2", rep.Seq)
	}
}

// TestDurableServerWALAppendFailure: when the durable append fails the
// batch must NOT be applied or acknowledged — the 500 carries wal_append,
// the in-memory corpus is unchanged (the torn frame is rolled back on the
// spot), and a restart recovers the pre-batch state.
func TestDurableServerWALAppendFailure(t *testing.T) {
	dir := t.TempDir()
	inj := faultinject.New(5, faultinject.Fault{
		Site: "store.wal.append", Err: errors.New("injected crash"), Count: 1,
	})
	s := durableServer(t, dir, inj)
	h := s.routes()
	before := queryMatched(t, h)

	rec, body := post(t, h, "/admin/update", durableAdd)
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("update with failing WAL = %d (body %s)", rec.Code, body)
	}
	if e := decodeErr(t, body); e.Code != "wal_append" {
		t.Fatalf("error code = %q, want wal_append", e.Code)
	}
	if got := queryMatched(t, h); !slices.Equal(got, before) {
		t.Fatal("failed durable append mutated in-memory state")
	}

	s.st.Abandon()
	s2 := durableServer(t, dir, nil)
	if got := queryMatched(t, s2.routes()); !slices.Equal(got, before) {
		t.Fatalf("recovered state includes unacknowledged batch: %v", got)
	}
	if s2.st.LastSeq() != 0 {
		t.Fatalf("recovered seq %d, want 0", s2.st.LastSeq())
	}
	// The failed append's torn prefix is gone: the next update gets seq 1.
	rec, body = post(t, s2.routes(), "/admin/update", durableAdd)
	if rec.Code != 200 {
		t.Fatalf("retry after recovery = %d (body %s)", rec.Code, body)
	}
	var rep updateResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Seq != 1 {
		t.Fatalf("retry seq = %d, want 1", rep.Seq)
	}
}

// TestReadyzReplayingPhase pins the distinct 503 code while recovered WAL
// records re-apply, between "not_ready" (building) and 200 (ready).
func TestReadyzReplayingPhase(t *testing.T) {
	s := adminServer(t, 2, 0)
	h := s.routes()
	get := func() (*httptest.ResponseRecorder, []byte) {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		return rec, rec.Body.Bytes()
	}
	for _, tc := range []struct {
		phase int32
		code  int
		slug  string
	}{
		{phaseBuilding, http.StatusServiceUnavailable, "not_ready"},
		{phaseReplaying, http.StatusServiceUnavailable, "replaying"},
		{phaseReady, http.StatusOK, ""},
	} {
		s.phase.Store(tc.phase)
		rec, body := get()
		if rec.Code != tc.code {
			t.Fatalf("phase %d: readyz = %d, want %d", tc.phase, rec.Code, tc.code)
		}
		if tc.slug != "" && decodeErr(t, body).Code != tc.slug {
			t.Fatalf("phase %d: code = %q, want %q", tc.phase, decodeErr(t, body).Code, tc.slug)
		}
	}
}

// TestDurableServerSkipsSeedWhenRecovered: the boot path treats the data
// directory as the source of truth — a second boot ignores the seed
// corpus entirely and serves the recovered one.
func TestDurableServerSkipsSeedWhenRecovered(t *testing.T) {
	dir := t.TempDir()
	s := durableServer(t, dir, nil)
	if _, body := post(t, s.routes(), "/admin/update", durableAdd); !json.Valid(body) {
		t.Fatal("bad update response")
	}
	s.st.Abandon()

	st, rec, err := store.Open(context.Background(), dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if rec.Corpus == nil {
		t.Fatal("second boot found no snapshot")
	}
	if rec.Corpus.Len() != 24 {
		t.Fatalf("recovered snapshot has %d graphs, want the 24 seeded", rec.Corpus.Len())
	}
	if len(rec.Batches) != 1 {
		t.Fatalf("recovered %d WAL batches, want 1", len(rec.Batches))
	}
}
