package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/gindex"
	"repro/internal/pattern"
	"repro/internal/tattoo"
	"repro/internal/vqi"
)

func testServer(t *testing.T) *server {
	t.Helper()
	corpus := datagen.ChemicalCorpus(2, 20, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	return newServer(spec, corpus, serverConfig{})
}

func decodeErr(t *testing.T, body []byte) apiError {
	t.Helper()
	var resp errorResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatalf("error envelope not JSON: %v (body %q)", err, body)
	}
	if resp.Error.Code == "" {
		t.Fatalf("error envelope missing code: %q", body)
	}
	return resp.Error
}

func TestHandleIndex(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleIndex(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "Pattern Panel") || !strings.Contains(body, "/api/spec") {
		t.Fatal("front end incomplete")
	}
	// The page must not hard-code any data-source content.
	if strings.Contains(body, "benzene") || strings.Contains(body, "mol0") {
		t.Fatal("front end contains data-source specifics")
	}
	// Unknown paths 404.
	rec404 := httptest.NewRecorder()
	s.handleIndex(rec404, httptest.NewRequest("GET", "/nope", nil))
	if rec404.Code != 404 {
		t.Fatalf("status = %d", rec404.Code)
	}
}

func TestHandleSpec(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleSpec(rec, httptest.NewRequest("GET", "/api/spec", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	spec, err := vqi.Decode(rec.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Patterns.Basic) != 3 {
		t.Fatal("spec payload wrong")
	}
}

func TestHandleQuery(t *testing.T) {
	s := testServer(t)
	body := `{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}`
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("POST", "/api/query", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Matched) == 0 {
		t.Fatal("C-C must match compounds")
	}
	if resp.Truncated {
		t.Fatal("unbounded query marked truncated")
	}
}

func TestHandleQueryErrors(t *testing.T) {
	s := testServer(t)
	for name, tc := range map[string]struct {
		body   string
		status int
		code   string
	}{
		"bad-json":  {`{`, 400, "bad_json"},
		"bad-edge":  {`{"nodes":["C"],"edges":[{"u":0,"v":5,"label":"s"}]}`, 400, "bad_query"},
		"self-loop": {`{"nodes":["C"],"edges":[{"u":0,"v":0,"label":"s"}]}`, 400, "bad_query"},
	} {
		rec := httptest.NewRecorder()
		s.handleQuery(rec, httptest.NewRequest("POST", "/api/query", strings.NewReader(tc.body)))
		if rec.Code != tc.status {
			t.Fatalf("%s: status = %d, want %d", name, rec.Code, tc.status)
		}
		if e := decodeErr(t, rec.Body.Bytes()); e.Code != tc.code {
			t.Fatalf("%s: code = %q, want %q", name, e.Code, tc.code)
		}
	}
}

func TestHandleQueryFacets(t *testing.T) {
	// With an index attached, corpus queries return facets grouping
	// matches by canned pattern.
	corpus := datagen.ChemicalCorpus(2, 30, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 18})
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 4, MinSize: 4, MaxSize: 8}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(spec, corpus, serverConfig{})
	s.index = gindex.BuildSharded(corpus, 4, 0)
	body := `{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}`
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("POST", "/api/query", strings.NewReader(body)))
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Matched) == 0 {
		t.Fatal("no matches")
	}
	if len(resp.Facets) == 0 {
		t.Fatal("no facets despite canned patterns and matches")
	}
	for _, f := range resp.Facets {
		if f.Pattern == "" || len(f.Graphs) == 0 {
			t.Fatalf("malformed facet %+v", f)
		}
	}
}

func TestHandleSuggest(t *testing.T) {
	s := testServer(t)
	rec := httptest.NewRecorder()
	s.handleSuggest(rec, httptest.NewRequest("POST", "/api/suggest",
		strings.NewReader(`{"nodes":[],"edges":[]}`)))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp suggestResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Suggestions) == 0 {
		t.Fatalf("suggest = %+v", resp)
	}
	if len(resp.Suggestions) > 8 {
		t.Fatal("suggestion cap ignored")
	}
	// Malformed body yields a 400 envelope, not a 500.
	rec2 := httptest.NewRecorder()
	s.handleSuggest(rec2, httptest.NewRequest("POST", "/api/suggest", strings.NewReader("{")))
	if rec2.Code != 400 {
		t.Fatalf("status = %d", rec2.Code)
	}
	if e := decodeErr(t, rec2.Body.Bytes()); e.Code != "bad_json" {
		t.Fatalf("code = %q", e.Code)
	}
}

func TestHandleQueryNetworkMode(t *testing.T) {
	g := datagen.WattsStrogatz(3, 100, 4, 0.1)
	spec, _, err := vqi.BuildFromNetwork(g, tattoo.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(spec, pattern.SingletonCorpus(g), serverConfig{})
	if !s.network {
		t.Fatal("single-graph corpus must select network mode")
	}
	body := `{"nodes":["",""],"edges":[{"u":0,"v":1,"label":""}]}`
	rec := httptest.NewRecorder()
	s.handleQuery(rec, httptest.NewRequest("POST", "/api/query", strings.NewReader(body)))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Embeddings == 0 {
		t.Fatal("network mode must report embeddings")
	}
}
