package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/pattern"
	"repro/internal/vqi"
)

// networkServer builds a network-mode server (single data graph) with the
// given config; network queries are the cheapest to drive through the
// full middleware chain.
func networkServer(t *testing.T, cfg serverConfig) *server {
	t.Helper()
	g := datagen.WattsStrogatz(3, 200, 4, 0.1)
	spec := &vqi.Spec{Name: "net", Mode: vqi.DataDriven}
	return newServer(spec, pattern.SingletonCorpus(g), cfg)
}

const wildcardEdge = `{"nodes":["",""],"edges":[{"u":0,"v":1,"label":""}]}`

func postQuery(t *testing.T, h http.Handler, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", "/api/query", strings.NewReader(body)))
	return rec
}

func TestOversizedBody413(t *testing.T) {
	s := networkServer(t, serverConfig{maxBodyBytes: 64})
	big := `{"nodes":[` + strings.Repeat(`"C",`, 50) + `"C"],"edges":[]}`
	rec := postQuery(t, s.routes(), big)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if e := decodeErr(t, rec.Body.Bytes()); e.Code != "body_too_large" {
		t.Fatalf("code = %q", e.Code)
	}
}

func TestOversizedQuery422(t *testing.T) {
	s := networkServer(t, serverConfig{maxQuerySize: 4})
	rec := postQuery(t, s.routes(), `{"nodes":["a","b","c","d","e"],"edges":[]}`)
	if rec.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if e := decodeErr(t, rec.Body.Bytes()); e.Code != "query_too_large" {
		t.Fatalf("code = %q", e.Code)
	}
}

func TestQueryTimeout504WithPartialResults(t *testing.T) {
	// A 20ms budget against a handler held up for 200ms by an injected
	// slow dependency: the matcher sees a dead context and returns its
	// best-so-far immediately, and the response is a 504 whose payload is
	// still well-formed and marked truncated.
	s := networkServer(t, serverConfig{queryTimeout: 20 * time.Millisecond})
	s.inject = faultinject.New(1, faultinject.Fault{Site: "query", Delay: 200 * time.Millisecond})
	start := time.Now()
	rec := postQuery(t, s.routes(), wildcardEdge)
	elapsed := time.Since(start)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	var resp queryResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("504 response not marked truncated")
	}
	// The matcher must bail out promptly once the budget is gone, not run
	// to completion: total time stays near the injected delay.
	if elapsed > 2*time.Second {
		t.Fatalf("handler took %v after budget expiry", elapsed)
	}
	// Without the timeout middleware the same query completes normally.
	s2 := networkServer(t, serverConfig{})
	rec2 := postQuery(t, s2.routes(), wildcardEdge)
	if rec2.Code != 200 {
		t.Fatalf("untimed status = %d", rec2.Code)
	}
}

func TestPanicInjectionReturns500AndServerSurvives(t *testing.T) {
	s := networkServer(t, serverConfig{})
	s.inject = faultinject.New(1, faultinject.Fault{Site: "query", PanicMsg: "wild pointer", Count: 1})
	ts := httptest.NewServer(s.routes())
	defer ts.Close()

	res, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(wildcardEdge))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d (body %s)", res.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "internal" {
		t.Fatalf("code = %q", e.Code)
	}
	// The process is still serving: the very next request succeeds.
	res2, err := http.Post(ts.URL+"/api/query", "application/json", strings.NewReader(wildcardEdge))
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != 200 {
		t.Fatalf("post-panic status = %d", res2.StatusCode)
	}
}

func TestHealthzAndReadyzGate(t *testing.T) {
	s := testServer(t)
	h := s.routes()
	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}
	if rec := get("/healthz"); rec.Code != 200 {
		t.Fatalf("healthz = %d", rec.Code)
	}
	if rec := get("/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz before index build = %d", rec.Code)
	}
	s.buildIndex()
	if rec := get("/readyz"); rec.Code != 200 {
		t.Fatalf("readyz after index build = %d", rec.Code)
	}
	if _, idx := s.snapshot(); idx == nil {
		t.Fatal("corpus server ready without an index")
	}
}

func TestServeFailFastOnBusyAddr(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	s := networkServer(t, serverConfig{})
	err = s.serve(context.Background(), ln.Addr().String(), time.Second, nil)
	if err == nil {
		t.Fatal("serve bound an occupied address")
	}
	if !strings.Contains(err.Error(), "cannot listen") {
		t.Fatalf("err = %v", err)
	}
}

func TestServeDrainsInFlightRequestOnShutdown(t *testing.T) {
	s := networkServer(t, serverConfig{})
	// Hold the request open long enough for shutdown to start while it is
	// in flight.
	s.inject = faultinject.New(1, faultinject.Fault{Site: "query", Delay: 300 * time.Millisecond})

	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan net.Addr, 1)
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.serve(ctx, "127.0.0.1:0", 5*time.Second, started) }()
	addr := <-started

	reqDone := make(chan error, 1)
	var status int
	go func() {
		res, err := http.Post("http://"+addr.String()+"/api/query", "application/json",
			strings.NewReader(wildcardEdge))
		if err == nil {
			status = res.StatusCode
			io.Copy(io.Discard, res.Body)
			res.Body.Close()
		}
		reqDone <- err
	}()

	// Give the request time to reach the handler, then ask for shutdown.
	time.Sleep(100 * time.Millisecond)
	cancel()

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request dropped during drain: %v", err)
	}
	if status != 200 {
		t.Fatalf("in-flight request status = %d", status)
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not return after drain")
	}
}
