package main

import (
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/qcache"
)

// HTTP-layer observability. Every route is wrapped by withMetrics, which
// maintains, in the server's private registry (s.obs, isolated from the
// process-wide obs.Default so tests see exact counts):
//
//	vqiserve_requests_total{route}          requests started
//	vqiserve_responses_total{route,class}   responses by status class (2xx/4xx/5xx)
//	vqiserve_request_seconds{route}         latency histogram (p50/p95/p99 in snapshots)
//	vqiserve_inflight_requests              gauge of requests currently executing
//
// Each request also gets its own obs trace (ID echoed in X-Trace-ID), so
// stage spans recorded by the pipeline packages under this request's
// context attach to it.
//
// GET /metrics serves the merged snapshot of s.obs and obs.Default (the
// library-side registry: gindex_*, isomorph_*, stage_seconds) as JSON, or
// in the Prometheus text format with ?format=prometheus. GET /debug/vars
// serves the same data as one flat expvar-style map. Cache traffic is
// exported at scrape time from the qcache counters as vqiserve_cache_* /
// vqiserve_shardcache_* gauges, including the hit ratio.

// statusWriter captures the first status code a handler writes. An
// implicit 200 (body bytes before any WriteHeader) is recorded too; a
// handler that panics before writing anything leaves status 0, which the
// middleware accounts as the 500 that withRecover will send.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// withMetrics wraps one route with request accounting and a per-request
// trace. Metric handles are resolved once at wrap time (routes() runs
// once), so the per-request cost is a few atomic operations — and the
// families exist, at zero, from the moment the server is routable, which
// is what lets a scrape-before-traffic health check see them.
func (s *server) withMetrics(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.obs.Counter("vqiserve_requests_total", "route", route)
	secs := s.obs.Histogram("vqiserve_request_seconds", "route", route)
	inflight := s.obs.Gauge("vqiserve_inflight_requests")
	classes := map[int]*obs.Counter{
		2: s.obs.Counter("vqiserve_responses_total", "route", route, "class", "2xx"),
		4: s.obs.Counter("vqiserve_responses_total", "route", route, "class", "4xx"),
		5: s.obs.Counter("vqiserve_responses_total", "route", route, "class", "5xx"),
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		reqs.Inc()
		inflight.Add(1)
		sw := &statusWriter{ResponseWriter: w}
		ctx, tr := obs.StartTrace(r.Context(), route)
		sw.Header().Set("X-Trace-ID", tr.ID)
		// The deferred accounting runs even when the handler panics (the
		// panic keeps unwinding to withRecover, which sends the 500 this
		// records), so histogram count always equals requests served.
		defer func() {
			inflight.Add(-1)
			secs.Observe(time.Since(start).Seconds())
			st := sw.status
			if st == 0 {
				st = http.StatusInternalServerError
			}
			cl, ok := classes[st/100]
			if !ok {
				cl = s.obs.Counter("vqiserve_responses_total",
					"route", route, "class", strconv.Itoa(st/100)+"xx")
			}
			cl.Inc()
		}()
		h(sw, r.WithContext(ctx))
	}
}

// refreshCacheMetrics mirrors the qcache traffic counters into gauges so
// scrapes see them without the caches having to push on every operation.
func (s *server) refreshCacheMetrics() {
	if s.qc != nil {
		s.exportCache("vqiserve_cache", s.qc.Metrics())
	}
	if s.shardQC != nil {
		s.exportCache("vqiserve_shardcache", s.shardQC.Metrics())
	}
	if s.planQC != nil {
		s.exportCache("vqiserve_plancache", s.planQC.Metrics())
	}
	if s.viewQC != nil {
		s.exportCache("vqiserve_viewcache", s.viewQC.Metrics())
	}
}

func (s *server) exportCache(prefix string, m qcache.Metrics) {
	s.obs.Gauge(prefix + "_hits").Set(float64(m.Hits))
	s.obs.Gauge(prefix + "_misses").Set(float64(m.Misses))
	s.obs.Gauge(prefix + "_dedups").Set(float64(m.Dedups))
	s.obs.Gauge(prefix + "_evictions").Set(float64(m.Evictions))
	s.obs.Gauge(prefix + "_resets").Set(float64(m.Resets))
	s.obs.Gauge(prefix + "_entries").Set(float64(m.Len))
	// qcache.Metrics guards the zero-lookup 0/0 case itself, but a gauge
	// feeding JSON must never carry NaN/Inf regardless of the producer —
	// encoding/json refuses them, which would take down the whole /metrics
	// response. Belt and suspenders at the export boundary.
	ratio := m.HitRatio
	if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
		ratio = 0
	}
	s.obs.Gauge(prefix + "_hit_ratio").Set(ratio)
}

// handleMetrics serves the merged metric state: JSON by default
// (application/json), Prometheus text exposition with ?format=prometheus
// (text/plain; version=0.0.4). Unknown format values are a 400, not a
// silent fallback — a scraper asking for a format it won't get should
// find out at configuration time.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	format := r.URL.Query().Get("format")
	switch format {
	case "", "json", "prometheus":
	default:
		writeErr(w, http.StatusBadRequest, "bad_format",
			fmt.Sprintf("format %q is not supported; use \"json\" or \"prometheus\"", format))
		return
	}
	s.refreshCacheMetrics()
	if format == "prometheus" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.obs.WritePrometheus(w)
		obs.Default.WritePrometheus(w)
		return
	}
	snap := s.obs.Snapshot()
	lib := obs.Default.Snapshot()
	snap.Counters = append(snap.Counters, lib.Counters...)
	snap.Gauges = append(snap.Gauges, lib.Gauges...)
	snap.Histograms = append(snap.Histograms, lib.Histograms...)
	writeJSON(w, http.StatusOK, snap)
}

// handleVars serves an expvar-style flat map of every metric — the same
// data as /metrics, keyed name{label="value"} for quick eyeballing.
func (s *server) handleVars(w http.ResponseWriter, _ *http.Request) {
	s.refreshCacheMetrics()
	vars := make(map[string]any)
	for _, snap := range []obs.Snapshot{s.obs.Snapshot(), obs.Default.Snapshot()} {
		for _, c := range snap.Counters {
			vars[varKey(c.Name, c.Labels)] = c.Value
		}
		for _, g := range snap.Gauges {
			vars[varKey(g.Name, g.Labels)] = g.Value
		}
		for _, h := range snap.Histograms {
			vars[varKey(h.Name, h.Labels)] = h
		}
	}
	writeJSON(w, http.StatusOK, vars)
}

// varKey renders name{k="v",...} with label keys sorted, matching the
// Prometheus sample identity.
func varKey(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(labels[k])
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// registerPprof mounts the standard pprof handlers. Opt-in via -pprof:
// profiles expose call stacks and timings, which an operator wants and an
// open endpoint shouldn't serve by default.
func registerPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
