package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/vqi"
)

// planTestServer builds a planner-enabled server over a corpus large
// enough that double-digit-edge queries decompose and still match.
func planTestServer(t *testing.T) *server {
	t.Helper()
	corpus := datagen.ChemicalCorpus(5, 40, datagen.ChemicalOptions{MinNodes: 12, MaxNodes: 24})
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(spec, corpus, serverConfig{cacheSize: 64, planEnabled: true, annEnabled: true})
	s.buildIndex()
	return s
}

// bigQueryBody draws a connected subgraph of the corpus with at least
// minEdges edges and renders it as an /api/query body — guaranteed to
// match at least its source graph.
func bigQueryBody(t *testing.T, s *server, minEdges int) string {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	corpus, _ := s.snapshot()
	for tries := 0; tries < 200; tries++ {
		g := corpus.Graph(rng.Intn(corpus.Len()))
		q := datagen.RandomConnectedSubgraph(rng, g, 8+rng.Intn(6))
		if q == nil || q.NumEdges() < minEdges {
			continue
		}
		return queryBodyFor(q)
	}
	t.Fatal("no large subgraph query found")
	return ""
}

func queryBodyFor(q *graph.Graph) string {
	var b strings.Builder
	b.WriteString(`{"nodes":[`)
	for i := 0; i < q.NumNodes(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q", q.NodeLabel(i))
	}
	b.WriteString(`],"edges":[`)
	for i, e := range q.Edges() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `{"u":%d,"v":%d,"label":%q}`, e.U, e.V, e.Label)
	}
	b.WriteString(`]}`)
	return b.String()
}

// postPlanQuery sends body through the full handler chain (so the request
// carries a trace and stage spans attach to it).
func postPlanQuery(t *testing.T, h http.Handler, url, body string) (*httptest.ResponseRecorder, queryResponse) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("POST", url, strings.NewReader(body)))
	var resp queryResponse
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
	}
	return rec, resp
}

// TestHandleQueryPlanParamValidation: unknown ?plan= values are a 400
// envelope; an empty value means auto.
func TestHandleQueryPlanParamValidation(t *testing.T) {
	s := planTestServer(t)
	h := s.routes()
	body := `{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}`
	rec, _ := postPlanQuery(t, h, "/api/query?plan=fastest", body)
	if rec.Code != 400 {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if e := decodeErr(t, rec.Body.Bytes()); e.Code != "bad_plan" {
		t.Fatalf("code = %q", e.Code)
	}
	if rec, _ := postPlanQuery(t, h, "/api/query?plan=", body); rec.Code != 200 {
		t.Fatalf("empty plan value: status = %d (body %s)", rec.Code, rec.Body)
	}
}

// TestHandleQueryPlanModesAgree: every planning mode answers with the
// same match list as the planner-off baseline — the serving-layer view of
// the plan/oracle equivalence property.
func TestHandleQueryPlanModesAgree(t *testing.T) {
	s := planTestServer(t)
	h := s.routes()
	for _, body := range []string{
		`{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}`,
		bigQueryBody(t, s, 10),
	} {
		rec, base := postPlanQuery(t, h, "/api/query?plan=off", body)
		if rec.Code != 200 {
			t.Fatalf("baseline status = %d (body %s)", rec.Code, rec.Body)
		}
		for _, mode := range []string{"auto", "monolithic", "decompose", "ann"} {
			rec, got := postPlanQuery(t, h, "/api/query?plan="+mode, body)
			if rec.Code != 200 {
				t.Fatalf("%s: status = %d (body %s)", mode, rec.Code, rec.Body)
			}
			if !reflect.DeepEqual(got.Matched, base.Matched) {
				t.Fatalf("%s: matched %v, baseline %v", mode, got.Matched, base.Matched)
			}
			if got.Plan == nil || got.Plan.Mode != mode {
				t.Fatalf("%s: plan info missing or wrong: %+v", mode, got.Plan)
			}
		}
	}
}

// TestHandleQueryPlanTrace: an explicit ?plan=decompose request on a
// large query reports the decomposed strategy and the plan stage spans.
func TestHandleQueryPlanTrace(t *testing.T) {
	s := planTestServer(t)
	h := s.routes()
	body := bigQueryBody(t, s, 10)
	rec, resp := postPlanQuery(t, h, "/api/query?plan=decompose", body)
	if rec.Code != 200 {
		t.Fatalf("status = %d (body %s)", rec.Code, rec.Body)
	}
	if resp.Plan == nil || resp.Plan.Strategy != "decomposed" {
		t.Fatalf("plan = %+v; want forced decomposed strategy", resp.Plan)
	}
	if resp.Plan.Summary == "" {
		t.Fatal("plan summary empty")
	}
	stages := map[string]bool{}
	for _, st := range resp.Stages {
		stages[st.Name] = true
	}
	for _, want := range []string{"plan.compile", "plan.fragment-probe", "plan.join", "plan.verify"} {
		if !stages[want] {
			t.Fatalf("stage %q missing from %v", want, resp.Stages)
		}
	}
	// No ?plan= parameter: the response stays free of plan/stage fields.
	rec2, resp2 := postPlanQuery(t, h, "/api/query", body)
	if rec2.Code != 200 {
		t.Fatalf("status = %d", rec2.Code)
	}
	if resp2.Plan != nil || resp2.Stages != nil {
		t.Fatal("plan detail attached without the ?plan= parameter")
	}
	if !reflect.DeepEqual(resp2.Matched, resp.Matched) {
		t.Fatal("default-mode answer diverged")
	}
}

// TestHandleQueryPlanCachedStillTraced: a response served from the query
// cache still carries the plan summary and this request's stages — the
// detail is attached after the cache, never stored in it.
func TestHandleQueryPlanCachedStillTraced(t *testing.T) {
	s := planTestServer(t)
	h := s.routes()
	body := bigQueryBody(t, s, 10)
	postPlanQuery(t, h, "/api/query?plan=auto", body)
	rec, resp := postPlanQuery(t, h, "/api/query?plan=auto", body)
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if hits, _, dedups := s.qc.Stats(); hits+dedups == 0 {
		t.Fatal("second identical query did not hit the response cache")
	}
	if resp.Plan == nil || resp.Plan.Summary == "" {
		t.Fatal("cached response lost the plan summary")
	}
	if len(resp.Stages) == 0 {
		t.Fatal("cached response lost the stage table")
	}
}

// TestPlanCacheMetricsExported: the plan and view cache gauges appear at
// the metrics boundary (sanitized like every other cache family).
func TestPlanCacheMetricsExported(t *testing.T) {
	s := planTestServer(t)
	h := s.routes()
	postPlanQuery(t, h, "/api/query?plan=decompose", bigQueryBody(t, s, 10))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"vqiserve_plancache_hits", "vqiserve_plancache_misses", "vqiserve_plancache_hit_ratio",
		"vqiserve_viewcache_hits", "vqiserve_viewcache_misses", "vqiserve_viewcache_hit_ratio",
	} {
		if _, ok := vars[key]; !ok {
			t.Fatalf("gauge %q missing from /debug/vars", key)
		}
	}
	if misses := string(vars["vqiserve_plancache_misses"]); misses == "0" {
		t.Fatal("plan compile never reached the plan cache")
	}
}
