package main

import (
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/vqi"
)

// End-to-end harness: the full serving stack — real TCP listener,
// background index build, readiness gate, both cache layers, metrics
// middleware — exercised over actual HTTP, with every behavioral claim
// cross-checked against the /metrics endpoint. The point is that the
// observability layer reports what the server actually did: request
// counts equal requests issued, cache hit ratios move exactly when
// repeats hit, and a batch update's rebuilt-shard count shows up both in
// the admin counters and in the shard-cache miss delta of the next query.

// e2eHarness is one booted server plus the client-side bookkeeping the
// assertions need.
type e2eHarness struct {
	t    *testing.T
	s    *server
	base string // http://127.0.0.1:port
}

// startE2E builds a corpus-mode server with k shards and boots it through
// the production serve path (real listener, background index build). The
// harness is torn down — context canceled, drain awaited — in t.Cleanup.
func startE2E(t *testing.T, k, cacheSize int) *e2eHarness {
	t.Helper()
	corpus := datagen.ChemicalCorpus(2, 24, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	spec, _, err := vqi.BuildFromCorpus(corpus, catapult.Config{
		Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := newServer(spec, corpus, serverConfig{shards: k, cacheSize: cacheSize})
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() { done <- s.serve(ctx, "127.0.0.1:0", 2*time.Second, started) }()
	var addr net.Addr
	select {
	case addr = <-started:
	case err := <-done:
		t.Fatalf("serve died before listening: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never started listening")
	}
	t.Cleanup(func() {
		cancel()
		if err := <-done; err != nil {
			t.Errorf("serve returned %v", err)
		}
	})
	h := &e2eHarness{t: t, s: s, base: "http://" + addr.String()}
	h.awaitReady()
	return h
}

func (h *e2eHarness) awaitReady() {
	h.t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st, _, _ := h.get("/readyz")
		if st == http.StatusOK {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	h.t.Fatal("server never became ready")
}

func (h *e2eHarness) get(path string) (int, []byte, http.Header) {
	h.t.Helper()
	resp, err := http.Get(h.base + path)
	if err != nil {
		h.t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body, resp.Header
}

func (h *e2eHarness) post(path, body string) (int, []byte) {
	h.t.Helper()
	resp, err := http.Post(h.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		h.t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// scrape fetches /metrics and decodes the merged snapshot.
func (h *e2eHarness) scrape() obs.Snapshot {
	h.t.Helper()
	st, body, _ := h.get("/metrics")
	if st != http.StatusOK {
		h.t.Fatalf("/metrics status = %d (body %s)", st, body)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		h.t.Fatalf("/metrics not a snapshot: %v (body %s)", err, body)
	}
	return snap
}

func counterOf(t *testing.T, snap obs.Snapshot, name string, labels ...string) int64 {
	t.Helper()
	c, ok := snap.Find(name, labels...)
	if !ok {
		t.Fatalf("counter %s%v missing from scrape", name, labels)
	}
	return c.Value
}

func gaugeOf(t *testing.T, snap obs.Snapshot, name string, labels ...string) float64 {
	t.Helper()
	g, ok := snap.FindGauge(name, labels...)
	if !ok {
		t.Fatalf("gauge %s%v missing from scrape", name, labels)
	}
	return g.Value
}

// TestE2EServingMetrics drives build → query → repeat-query →
// /admin/update → query through the full stack and checks that every
// metrics delta matches the traffic it observed first-hand.
func TestE2EServingMetrics(t *testing.T) {
	const k = 4
	h := startE2E(t, k, 64)

	// Metric families exist (at zero) before any query traffic.
	base := h.scrape()
	if got := counterOf(t, base, "vqiserve_requests_total", "route", "/api/query"); got != 0 {
		t.Fatalf("pre-traffic query count = %d, want 0", got)
	}

	// Two identical queries: the first computes (k shard partials, one
	// response-cache miss), the second is a whole-response cache hit.
	for i := 0; i < 2; i++ {
		st, body := h.post("/api/query", ccQuery)
		if st != http.StatusOK {
			t.Fatalf("query %d status = %d (body %s)", i, st, body)
		}
	}
	snap := h.scrape()
	if got := counterOf(t, snap, "vqiserve_requests_total", "route", "/api/query"); got != 2 {
		t.Fatalf("query requests = %d, want 2", got)
	}
	if got := counterOf(t, snap, "vqiserve_responses_total", "route", "/api/query", "class", "2xx"); got != 2 {
		t.Fatalf("query 2xx = %d, want 2", got)
	}
	hist, ok := snap.FindHistogram("vqiserve_request_seconds", "route", "/api/query")
	if !ok {
		t.Fatal("query latency histogram missing")
	}
	if hist.Count != 2 || hist.Sum <= 0 {
		t.Fatalf("latency histogram count=%d sum=%v, want count 2 and positive sum", hist.Count, hist.Sum)
	}
	if hist.P50 <= 0 || hist.P95 < hist.P50 || hist.P99 < hist.P95 {
		t.Fatalf("percentiles not ordered: p50=%v p95=%v p99=%v", hist.P50, hist.P95, hist.P99)
	}
	if hits := gaugeOf(t, snap, "vqiserve_cache_hits"); hits != 1 {
		t.Fatalf("response-cache hits = %v, want 1 (second identical query)", hits)
	}
	if ratio := gaugeOf(t, snap, "vqiserve_cache_hit_ratio"); ratio != 0.5 {
		t.Fatalf("response-cache hit ratio = %v, want 0.5 (1 hit / 2 lookups)", ratio)
	}
	if misses := gaugeOf(t, snap, "vqiserve_shardcache_misses"); misses != k {
		t.Fatalf("shard-cache misses = %v, want %d (one partial per shard, once)", misses, k)
	}

	// A batch update rebuilds only the shards owning touched graphs; the
	// admin counters must agree with the response's rebuilt list.
	add := `{"add":[{"name":"e2e-added","nodes":["C","C","O"],"edges":[{"u":0,"v":1,"label":"s"},{"u":1,"v":2,"label":"s"}]}]}`
	st, body := h.post("/admin/update", add)
	if st != http.StatusOK {
		t.Fatalf("update status = %d (body %s)", st, body)
	}
	var rep updateResponse
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Rebuilt) != 1 {
		t.Fatalf("one added graph must rebuild one shard, got %v", rep.Rebuilt)
	}
	snap = h.scrape()
	if got := counterOf(t, snap, "vqiserve_admin_updates_total"); got != 1 {
		t.Fatalf("admin updates = %d, want 1", got)
	}
	if got := counterOf(t, snap, "vqiserve_admin_shards_rebuilt_total"); got != int64(len(rep.Rebuilt)) {
		t.Fatalf("shards rebuilt counter = %d, want %d", got, len(rep.Rebuilt))
	}
	if got := counterOf(t, snap, "vqiserve_admin_graphs_added_total"); got != 1 {
		t.Fatalf("graphs added counter = %d, want 1", got)
	}

	// The same query again: only the rebuilt shards' partials recompute
	// (shard-cache misses advance by exactly len(rebuilt)); the response
	// cache misses once because the epoch vector changed. And the answer
	// itself must include the graph the update added.
	st, body = h.post("/api/query", ccQuery)
	if st != http.StatusOK {
		t.Fatalf("post-update query status = %d (body %s)", st, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range qr.Matched {
		found = found || name == "e2e-added"
	}
	if !found {
		t.Fatalf("post-update query missed the added graph: %v", qr.Matched)
	}
	snap = h.scrape()
	if misses := gaugeOf(t, snap, "vqiserve_shardcache_misses"); misses != float64(k+len(rep.Rebuilt)) {
		t.Fatalf("shard-cache misses = %v, want %d (only rebuilt shards recompute)", misses, k+len(rep.Rebuilt))
	}
	if misses := gaugeOf(t, snap, "vqiserve_cache_misses"); misses != 2 {
		t.Fatalf("response-cache misses = %v, want 2 (initial + post-update epoch change)", misses)
	}

	// Library-side metrics (obs.Default) ride along in the same scrape.
	if _, ok := snap.Find("gindex_searches_total"); !ok {
		t.Fatal("library metric gindex_searches_total missing from merged scrape")
	}
}

// TestE2ETraceAndFormats checks the per-request trace header, the
// Prometheus exposition format, and the /debug/vars flat map.
func TestE2ETraceAndFormats(t *testing.T) {
	h := startE2E(t, 2, 16)

	st, _, hdr := h.get("/healthz")
	if st != http.StatusOK {
		t.Fatalf("healthz = %d", st)
	}
	if hdr.Get("X-Trace-ID") == "" {
		t.Fatal("response missing X-Trace-ID")
	}

	st, body, hdr := h.get("/metrics?format=prometheus")
	if st != http.StatusOK {
		t.Fatalf("prometheus scrape = %d", st)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("prometheus content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"# TYPE vqiserve_requests_total counter",
		"# TYPE vqiserve_request_seconds histogram",
		`vqiserve_request_seconds_bucket{route="/healthz",le="+Inf"}`,
		"# TYPE vqiserve_inflight_requests gauge",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, text)
		}
	}

	st, body, _ = h.get("/debug/vars")
	if st != http.StatusOK {
		t.Fatalf("/debug/vars = %d", st)
	}
	var vars map[string]any
	if err := json.Unmarshal(body, &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars[`vqiserve_requests_total{route="/healthz"}`]; !ok {
		t.Fatalf("/debug/vars missing healthz request counter; keys: %v", varsKeys(vars))
	}

	// pprof stays off unless opted in.
	st, _, _ = h.get("/debug/pprof/")
	if st != http.StatusNotFound {
		t.Fatalf("/debug/pprof/ without -pprof = %d, want 404", st)
	}
}

func varsKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// TestPprofOptIn mounts the profile endpoints only when configured.
func TestPprofOptIn(t *testing.T) {
	s := adminServer(t, 2, 0)
	s.pprofEnabled = true
	hdl := s.routes()
	rec := httptest.NewRecorder()
	hdl.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/ with -pprof = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "goroutine") {
		t.Fatal("pprof index incomplete")
	}
	rec = httptest.NewRecorder()
	hdl.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/symbol", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/pprof/symbol = %d", rec.Code)
	}
}
