package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/canon"
)

// FuzzDecodeQuery throws arbitrary bytes at the query-request decoder.
// The contract under fuzzing: never panic, never accept a query larger
// than the configured bound, and anything accepted must be canonizable
// (the first thing every downstream consumer — cache keying, index
// search — does with it).
func FuzzDecodeQuery(f *testing.F) {
	f.Add(ccQuery)
	f.Add(`{"nodes":[],"edges":[]}`)
	f.Add(`{"nodes":["C"],"edges":[{"u":0,"v":0,"label":"s"}]}`)
	f.Add(`{"nodes":["C","N"],"edges":[{"u":-1,"v":1,"label":""}]}`)
	f.Add(`{"nodes":["C","N"],"edges":[{"u":0,"v":99}]}`)
	f.Add(`{"edges":[{}]}`)
	f.Add(`{"nodes":`)
	f.Add(`[]`)
	f.Add("\x00\xff")
	f.Add(`{"nodes":["` + strings.Repeat(`C","`, 70) + `C"],"edges":[]}`)
	// decodeQuery only reads the body limits; a bare server is enough.
	s := &server{maxBodyBytes: 1 << 16, maxQuerySize: 64}
	f.Fuzz(func(t *testing.T, body string) {
		rec := httptest.NewRecorder()
		req := httptest.NewRequest("POST", "/api/query", strings.NewReader(body))
		q, ok := s.decodeQuery(rec, req)
		if !ok {
			if rec.Code == 200 {
				t.Fatal("rejection without an error status")
			}
			return
		}
		if rec.Code != 200 {
			t.Fatalf("accepted query but wrote status %d", rec.Code)
		}
		if size := q.NumNodes() + q.NumEdges(); size > s.maxQuerySize {
			t.Fatalf("accepted query of size %d past the %d bound", size, s.maxQuerySize)
		}
		if canon.String(q) == "" && q.NumNodes() > 0 {
			t.Fatal("non-empty accepted query canonized to empty")
		}
	})
}
