#!/usr/bin/env bash
# Repo verification: build, vet, full tests, then the race detector over
# every package (the parallel layer in internal/par and its call sites are
# only trustworthy under -race), and finally a focused fault-injection
# smoke pass over the hardened serving layer. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== fault-injection smoke (-race) =="
go test -race -count=1 -run 'Fault|Panic|Timeout|Drain|Inject|Ctx|Context|Cancel|Deadline' \
  ./internal/faultinject ./internal/isomorph ./internal/par ./cmd/vqiserve

echo "== benchmark smoke (K1 kernel suite) =="
go run ./cmd/benchvqi -exp K1

echo "== benchmark smoke (S1 sharded-index suite) =="
go run ./cmd/benchvqi -exp S1

echo "verify: OK"
