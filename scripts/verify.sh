#!/usr/bin/env bash
# Repo verification: build, vet, full tests, then the race detector over
# every package (the parallel layer in internal/par and its call sites are
# only trustworthy under -race), and finally a focused fault-injection
# smoke pass over the hardened serving layer. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== fault-injection smoke (-race) =="
go test -race -count=1 -run 'Fault|Panic|Timeout|Drain|Inject|Ctx|Context|Cancel|Deadline' \
  ./internal/faultinject ./internal/isomorph ./internal/par ./internal/gindex ./cmd/vqiserve

echo "== fuzz-seed regression (checked-in corpora) =="
go test -count=1 -run 'Fuzz' ./internal/gio ./cmd/vqiserve

echo "== benchmark smoke (K1 kernel suite) =="
go run ./cmd/benchvqi -exp K1

echo "== benchmark smoke (S1 sharded-index suite) =="
go run ./cmd/benchvqi -exp S1

echo "== benchmark smoke (O1 observability-overhead suite) =="
go run ./cmd/benchvqi -exp O1

echo "== benchmark smoke (A1 approximate-similarity suite) =="
go run ./cmd/benchvqi -exp A1
grep -q '"rebuild_only_touched": true' BENCH_ann.json \
  || { echo "A1: batch update rebuilt more than the touched shards"; exit 1; }

echo "== benchmark smoke (P2 query-plan suite, plan-vs-oracle equivalence) =="
go run ./cmd/benchvqi -exp P2
grep -q '"contract_violations": 0' BENCH_plan.json \
  || { echo "P2: a planned answer differed from the monolithic oracle"; exit 1; }

echo "== metrics endpoint smoke (vqiserve -pprof, live scrape) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"; [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true' EXIT
go run ./cmd/datagen -kind chemical -n 20 -out "$tmpdir/corpus.lg"
go run ./cmd/vqibuild -data "$tmpdir/corpus.lg" -out "$tmpdir/vqi.json" -count 3 -metrics
go build -o "$tmpdir/vqiserve" ./cmd/vqiserve
"$tmpdir/vqiserve" -spec "$tmpdir/vqi.json" -data "$tmpdir/corpus.lg" \
  -addr 127.0.0.1:0 -pprof -ann >"$tmpdir/serve.log" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$tmpdir/serve.log" | head -1)"
  [[ -n "$addr" ]] && break
  sleep 0.1
done
[[ -n "$addr" ]] || { echo "vqiserve never reported its address"; cat "$tmpdir/serve.log"; exit 1; }
curl -fsS "http://$addr/metrics" | grep 'vqiserve_requests_total' >/dev/null \
  || { echo "/metrics JSON missing request counters"; exit 1; }
curl -fsS "http://$addr/metrics?format=prometheus" | grep '# TYPE vqiserve_request_seconds histogram' >/dev/null \
  || { echo "/metrics prometheus output missing histogram family"; exit 1; }
curl -fsS "http://$addr/debug/vars" | grep 'vqiserve_inflight_requests' >/dev/null \
  || { echo "/debug/vars missing inflight gauge"; exit 1; }
curl -fsS "http://$addr/debug/pprof/cmdline" >/dev/null \
  || { echo "-pprof did not mount /debug/pprof/"; exit 1; }
ct="$(curl -fsS -o /dev/null -w '%{content_type}' "http://$addr/metrics")"
[[ "$ct" == application/json* ]] \
  || { echo "/metrics JSON content-type: $ct"; exit 1; }
ct="$(curl -fsS -o /dev/null -w '%{content_type}' "http://$addr/metrics?format=prometheus")"
[[ "$ct" == "text/plain; version=0.0.4"* ]] \
  || { echo "/metrics prometheus content-type: $ct"; exit 1; }
code="$(curl -s -o "$tmpdir/badformat.json" -w '%{http_code}' "http://$addr/metrics?format=bogus")"
[[ "$code" == 400 ]] && grep -q '"bad_format"' "$tmpdir/badformat.json" \
  || { echo "/metrics?format=bogus: got $code $(cat "$tmpdir/badformat.json")"; exit 1; }
echo "metrics endpoint: OK"

echo "== similarity endpoint smoke (live /api/similar) =="
curl -fsS "http://$addr/api/similar" -d '{"graph":"mol3","k":3}' \
  | grep '"mol3"' >/dev/null \
  || { echo "/api/similar did not retrieve the query graph"; exit 1; }
curl -fsS "http://$addr/api/similar" \
  -d '{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}],"k":3,"mode":"exact","verify":true}' \
  | grep '"matches"' >/dev/null \
  || { echo "/api/similar inline exact+verify query failed"; exit 1; }
code="$(curl -s -o /dev/null -w '%{http_code}' "http://$addr/api/similar" -d '{"graph":"mol3","mode":"bogus"}')"
[[ "$code" == 400 ]] \
  || { echo "/api/similar bad mode: got $code, want 400"; exit 1; }
echo "similarity endpoint: OK"

echo "== query planner smoke (live /api/query?plan=decompose trace) =="
# A 9-ring with a chord: 10 edges, comfortably past the decomposition
# threshold, so the forced-decompose plan must report its strategy and the
# trace must show the fragment-probe/join/verify stages.
plan_resp="$(curl -fsS "http://$addr/api/query?plan=decompose" \
  -d '{"nodes":["C","C","C","C","C","C","C","C","C"],"edges":[{"u":0,"v":1,"label":"s"},{"u":1,"v":2,"label":"s"},{"u":2,"v":3,"label":"s"},{"u":3,"v":4,"label":"s"},{"u":4,"v":5,"label":"s"},{"u":5,"v":6,"label":"s"},{"u":6,"v":7,"label":"s"},{"u":7,"v":8,"label":"s"},{"u":8,"v":0,"label":"s"},{"u":0,"v":4,"label":"s"}]}')"
grep -q '"strategy":"decomposed"' <<<"$plan_resp" \
  || { echo "?plan=decompose did not report a decomposed strategy: $plan_resp"; exit 1; }
grep -q '"plan.fragment-probe"' <<<"$plan_resp" \
  || { echo "?plan=decompose trace missing the fragment-probe stage: $plan_resp"; exit 1; }
grep -q '"plan.verify"' <<<"$plan_resp" \
  || { echo "?plan=decompose trace missing the verify stage: $plan_resp"; exit 1; }
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "query planner: OK"

echo "== benchmark smoke (D1 durability suite) =="
go run ./cmd/benchvqi -exp D1
grep -q '"compacted snapshot"' BENCH_store.json \
  || { echo "D1: BENCH_store.json missing the cold-boot variants"; exit 1; }

echo "== crash-recovery smoke (kill -9 mid-stream, restart, re-query) =="
datadir="$tmpdir/data"
start_durable() {
  "$tmpdir/vqiserve" -spec "$tmpdir/vqi.json" -data "$tmpdir/corpus.lg" \
    -data-dir "$datadir" -addr 127.0.0.1:0 >"$1" 2>&1 &
  server_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$1" | head -1)"
    [[ -n "$addr" ]] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "durable vqiserve never became ready"; cat "$1"; exit 1
}
start_durable "$tmpdir/durable1.log"
update_resp="$(curl -fsS "http://$addr/admin/update" \
  -d '{"add":[{"name":"crash-added","nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}]}')"
grep -q '"seq":1' <<<"$update_resp" \
  || { echo "durable update not acknowledged at seq 1: $update_resp"; exit 1; }
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
start_durable "$tmpdir/durable2.log"
grep -q 'replaying 1 WAL batches' "$tmpdir/durable2.log" \
  || { echo "restart did not replay the acknowledged WAL batch"; cat "$tmpdir/durable2.log"; exit 1; }
curl -fsS "http://$addr/api/query" \
  -d '{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}' \
  | grep -q '"crash-added"' \
  || { echo "restart lost the acknowledged update"; exit 1; }
echo "crash recovery: OK"

echo "== SIGINT graceful drain =="
kill -INT "$server_pid"
rc=0; wait "$server_pid" || rc=$?
[[ "$rc" == 0 ]] \
  || { echo "SIGINT exit code $rc, want 0"; cat "$tmpdir/durable2.log"; exit 1; }
grep -q 'drained cleanly' "$tmpdir/durable2.log" \
  || { echo "SIGINT did not drain cleanly"; cat "$tmpdir/durable2.log"; exit 1; }
server_pid=""
echo "SIGINT drain: OK"

echo "== benchmark smoke (M1 mmap capacity suite) =="
go run ./cmd/benchvqi -exp M1
grep -q '"contract_violations": 0' BENCH_mmap.json \
  || { echo "M1: mmap boot contract violated (sections not restored cleanly)"; exit 1; }

echo "== mmap crash-recovery smoke (kill -9 mid-stream, mmap restart, compact, section-restored boot) =="
mmapdir="$tmpdir/mmapdata"
start_mmap() {
  "$tmpdir/vqiserve" -spec "$tmpdir/vqi.json" -data "$tmpdir/corpus.lg" \
    -data-dir "$mmapdir" -mmap -addr 127.0.0.1:0 >"$1" 2>&1 &
  server_pid=$!
  addr=""
  for _ in $(seq 1 100); do
    addr="$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$1" | head -1)"
    [[ -n "$addr" ]] && curl -fsS "http://$addr/readyz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "mmap vqiserve never became ready"; cat "$1"; exit 1
}
start_mmap "$tmpdir/mmap1.log"
update_resp="$(curl -fsS "http://$addr/admin/update" \
  -d '{"add":[{"name":"mmap-added","nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}]}')"
grep -q '"seq":1' <<<"$update_resp" \
  || { echo "mmap durable update not acknowledged at seq 1: $update_resp"; exit 1; }
kill -9 "$server_pid" 2>/dev/null || true
wait "$server_pid" 2>/dev/null || true
start_mmap "$tmpdir/mmap2.log"
grep -q 'mapped lazy' "$tmpdir/mmap2.log" \
  || { echo "mmap restart did not use the mapped boot path"; cat "$tmpdir/mmap2.log"; exit 1; }
grep -q 'replaying 1 WAL batches' "$tmpdir/mmap2.log" \
  || { echo "mmap restart did not replay the acknowledged WAL batch"; cat "$tmpdir/mmap2.log"; exit 1; }
curl -fsS "http://$addr/api/query" \
  -d '{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}' \
  | grep -q '"mmap-added"' \
  || { echo "mmap restart lost the acknowledged update"; exit 1; }
kill -INT "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""
go run ./cmd/vqimaintain -compact -data-dir "$mmapdir" -mmap
start_mmap "$tmpdir/mmap3.log"
grep -Eq 'restored [0-9]+/[0-9]+ shards from persisted index sections \(0 rebuilt\)' "$tmpdir/mmap3.log" \
  || { echo "compacted mmap boot did not restore every shard from sections"; cat "$tmpdir/mmap3.log"; exit 1; }
curl -fsS "http://$addr/api/query" \
  -d '{"nodes":["C","C"],"edges":[{"u":0,"v":1,"label":"s"}]}' \
  | grep -q '"mmap-added"' \
  || { echo "section-restored boot lost the acknowledged update"; exit 1; }
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "mmap crash recovery: OK"

echo "verify: OK"
