#!/usr/bin/env bash
# Repo verification: build, vet, full tests, then the race detector over
# every package (the parallel layer in internal/par and its call sites are
# only trustworthy under -race), and finally a focused fault-injection
# smoke pass over the hardened serving layer. Run from the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go build =="
go build ./...

echo "== go vet =="
go vet ./...

echo "== go test =="
go test ./...

echo "== go test -race =="
go test -race ./...

echo "== fault-injection smoke (-race) =="
go test -race -count=1 -run 'Fault|Panic|Timeout|Drain|Inject|Ctx|Context|Cancel|Deadline' \
  ./internal/faultinject ./internal/isomorph ./internal/par ./cmd/vqiserve

echo "== fuzz-seed regression (checked-in corpora) =="
go test -count=1 -run 'Fuzz' ./internal/gio ./cmd/vqiserve

echo "== benchmark smoke (K1 kernel suite) =="
go run ./cmd/benchvqi -exp K1

echo "== benchmark smoke (S1 sharded-index suite) =="
go run ./cmd/benchvqi -exp S1

echo "== benchmark smoke (O1 observability-overhead suite) =="
go run ./cmd/benchvqi -exp O1

echo "== metrics endpoint smoke (vqiserve -pprof, live scrape) =="
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"; [[ -n "${server_pid:-}" ]] && kill "$server_pid" 2>/dev/null || true' EXIT
go run ./cmd/datagen -kind chemical -n 20 -out "$tmpdir/corpus.lg"
go run ./cmd/vqibuild -data "$tmpdir/corpus.lg" -out "$tmpdir/vqi.json" -count 3 -metrics
go build -o "$tmpdir/vqiserve" ./cmd/vqiserve
"$tmpdir/vqiserve" -spec "$tmpdir/vqi.json" -data "$tmpdir/corpus.lg" \
  -addr 127.0.0.1:0 -pprof >"$tmpdir/serve.log" 2>&1 &
server_pid=$!
addr=""
for _ in $(seq 1 100); do
  addr="$(sed -n 's/.*listening on \([0-9.:]*\)$/\1/p' "$tmpdir/serve.log" | head -1)"
  [[ -n "$addr" ]] && break
  sleep 0.1
done
[[ -n "$addr" ]] || { echo "vqiserve never reported its address"; cat "$tmpdir/serve.log"; exit 1; }
curl -fsS "http://$addr/metrics" | grep -q 'vqiserve_requests_total' \
  || { echo "/metrics JSON missing request counters"; exit 1; }
curl -fsS "http://$addr/metrics?format=prometheus" | grep -q '# TYPE vqiserve_request_seconds histogram' \
  || { echo "/metrics prometheus output missing histogram family"; exit 1; }
curl -fsS "http://$addr/debug/vars" | grep -q 'vqiserve_inflight_requests' \
  || { echo "/debug/vars missing inflight gauge"; exit 1; }
curl -fsS "http://$addr/debug/pprof/cmdline" >/dev/null \
  || { echo "-pprof did not mount /debug/pprof/"; exit 1; }
kill "$server_pid" && wait "$server_pid" 2>/dev/null || true
server_pid=""
echo "metrics endpoint: OK"

echo "verify: OK"
