// Package repro is a from-scratch Go reproduction of the systems surveyed
// in "Data-driven Visual Query Interfaces for Graphs: Past, Present, and
// (Near) Future" (Bhowmick & Choi, SIGMOD 2022): the CATAPULT and TATTOO
// canned-pattern selection frameworks, the MIDAS maintenance framework,
// the Tzanikos et al. modular selection architecture, and the data-driven
// visual query interface model they plug into, together with every
// substrate they need (labeled graphs, subgraph isomorphism, canonical
// forms, graphlet censuses, k-truss decomposition, frequent closed trees,
// clustering, graph closure, force-directed layout and aesthetic metrics,
// and a usability simulator).
//
// See README.md for the tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced tables and figures. The top-level
// bench_test.go holds one testing.B benchmark per experiment; cmd/benchvqi
// regenerates the full paper-style tables.
package repro
