package repro

// End-to-end integration tests spanning the full stack: data generation →
// VQI construction (both frameworks) → JSON round trip → interactive
// sessions → usability simulation → maintenance under updates.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
	"repro/internal/simulate"
	"repro/internal/vqi"
)

func TestIntegrationCorpusPipeline(t *testing.T) {
	// 1. Generate a corpus and persist it through the .lg format.
	corpus := datagen.ChemicalCorpus(21, 60, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
	dir := t.TempDir()
	path := dir + "/corpus.lg"
	if err := gio.SaveCorpus(path, corpus); err != nil {
		t.Fatal(err)
	}
	loaded, err := gio.LoadCorpus(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != corpus.Len() {
		t.Fatalf("corpus round trip lost graphs: %d vs %d", loaded.Len(), corpus.Len())
	}

	// 2. Build the data-driven VQI over the loaded corpus.
	opts := core.Options{Budget: core.Budget{Count: 5, MinSize: 4, MaxSize: 8}, Seed: 21}
	spec, err := core.BuildCorpusVQI(loaded, opts)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Spec JSON round trip.
	payload, err := spec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := vqi.Decode(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Patterns.Canned) != len(spec.Patterns.Canned) {
		t.Fatal("spec JSON round trip lost patterns")
	}

	// 4. Every canned pattern must actually occur somewhere in the corpus
	// (they were selected for coverage).
	covered := 0
	for _, ps := range back.Patterns.Canned {
		pg, err := ps.PatternGraph()
		if err != nil {
			t.Fatal(err)
		}
		found := false
		loaded.Each(func(_ int, g *graph.Graph) {
			if !found && isomorph.Exists(pg, g, pattern.MatchOptions()) {
				found = true
			}
		})
		if found {
			covered++
		}
	}
	if covered == 0 {
		t.Fatal("no canned pattern embeds in the corpus")
	}

	// 5. A session over the decoded spec: stamp the first canned pattern
	// and run it; it must match whatever it covers.
	session := core.OpenSession(back, loaded)
	if _, err := session.StampPattern(3); err != nil {
		t.Fatal(err)
	}
	res := session.Run()
	if res.Truncated {
		t.Log("session run truncated (budget) — acceptable")
	}

	// 6. Usability: the data-driven panel must beat pattern-less manual
	// formulation on a workload drawn from the same corpus.
	u, err := core.EvaluateUsability(back, loaded, 25, 5, 9, 21)
	if err != nil {
		t.Fatal(err)
	}
	wl, _ := simulate.CorpusWorkload(loaded, 25, 5, 9, 21)
	manual := simulate.Evaluate(wl, nil, simulate.DefaultCostModel())
	if u.MeanSteps > manual.MeanSteps {
		t.Fatalf("data-driven steps %.1f worse than manual %.1f", u.MeanSteps, manual.MeanSteps)
	}
}

func TestIntegrationNetworkPipeline(t *testing.T) {
	g := datagen.WattsStrogatz(33, 500, 6, 0.1)
	spec, err := core.BuildNetworkVQI(g, core.Options{
		Budget: core.Budget{Count: 6, MinSize: 4, MaxSize: 9}, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Patterns.Canned) == 0 {
		t.Fatal("no canned patterns for network")
	}
	// Stamp + run: every TATTOO pattern was cut out of the network, so it
	// must have at least one embedding.
	session := core.OpenNetworkSession(spec, g)
	if _, err := session.StampPattern(3); err != nil {
		t.Fatal(err)
	}
	res := session.Run()
	if res.Embeddings == 0 && !res.Truncated {
		t.Fatal("stamped network pattern found no embeddings")
	}
}

func TestIntegrationMaintenanceConvergence(t *testing.T) {
	// Repeated batches through the maintainer keep the corpus, spec, and
	// quality in a consistent state; quality never collapses to zero.
	corpus := datagen.ChemicalCorpus(55, 50, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	opts := core.Options{Budget: core.Budget{Count: 4, MinSize: 4, MaxSize: 8}, Seed: 55}
	m, err := core.NewMaintainer(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(55))
	for round := 0; round < 3; round++ {
		var batch []*graph.Graph
		for i := 0; i < 10; i++ {
			batch = append(batch, datagen.Chemical(rng, fmt.Sprintf("r%d-%d", round, i),
				datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16}))
		}
		removed := m.Corpus().Names()[:5]
		rep, err := m.ApplyBatch(batch, removed)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if rep.Major && rep.ScoreAfter+1e-9 < rep.ScoreBefore {
			t.Fatalf("round %d: maintenance guarantee violated", round)
		}
		if m.Corpus().Len() != 50+5*(round+1) {
			t.Fatalf("round %d: corpus len %d", round, m.Corpus().Len())
		}
	}
	q, err := core.EvaluateQuality(m.Spec(), m.Corpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if q.Coverage <= 0 {
		t.Fatalf("maintained coverage collapsed: %+v", q)
	}
}

func TestIntegrationManualVsDataDrivenQuality(t *testing.T) {
	// The tutorial's core comparison, end to end: on the same corpus, the
	// data-driven VQI's canned set must out-cover both manual presets.
	corpus := datagen.ChemicalCorpus(77, 60, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 20})
	opts := core.Options{Budget: core.Budget{Count: 6, MinSize: 4, MaxSize: 10}, Seed: 77}
	dd, err := core.BuildCorpusVQI(corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	chem, err := core.BuildManualVQI("chemistry", corpus)
	if err != nil {
		t.Fatal(err)
	}
	qdd, err := core.EvaluateQuality(dd, corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	qchem, err := core.EvaluateQuality(chem, corpus, opts)
	if err != nil {
		t.Fatal(err)
	}
	if qdd.Coverage <= qchem.Coverage {
		t.Fatalf("data-driven coverage %.3f must beat manual chemistry %.3f",
			qdd.Coverage, qchem.Coverage)
	}
}
