package results

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

func facetCorpus() *graph.Corpus {
	c := graph.NewCorpus()
	// g0, g1: triangle graphs. g2: path. g3: star.
	tri := func(name string) *graph.Graph {
		g := graph.New(name)
		g.AddNodes(3, "A")
		g.MustAddEdge(0, 1, "-")
		g.MustAddEdge(1, 2, "-")
		g.MustAddEdge(0, 2, "-")
		return g
	}
	c.MustAdd(tri("g0"))
	c.MustAdd(tri("g1"))
	p := graph.New("g2")
	p.AddNodes(4, "A")
	p.MustAddEdge(0, 1, "-")
	p.MustAddEdge(1, 2, "-")
	p.MustAddEdge(2, 3, "-")
	c.MustAdd(p)
	s := graph.New("g3")
	ctr := s.AddNode("A")
	for i := 0; i < 3; i++ {
		l := s.AddNode("A")
		s.MustAddEdge(ctr, l, "-")
	}
	c.MustAdd(s)
	return c
}

func trianglePattern() *pattern.Pattern {
	g := graph.New("tri")
	g.AddNodes(3, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	g.MustAddEdge(0, 2, "-")
	return pattern.New(g, "p")
}

func clawPattern() *pattern.Pattern {
	g := graph.New("claw")
	ctr := g.AddNode("A")
	for i := 0; i < 3; i++ {
		l := g.AddNode("A")
		g.MustAddEdge(ctr, l, "-")
	}
	return pattern.New(g, "p")
}

func TestFacets(t *testing.T) {
	c := facetCorpus()
	matched := []string{"g0", "g1", "g2", "g3"}
	panel := []*pattern.Pattern{trianglePattern(), clawPattern()}
	facets, rest := Facets(matched, c, panel, pattern.MatchOptions())
	if len(facets) != 2 {
		t.Fatalf("facets = %+v", facets)
	}
	// Triangle facet has 2 members, claw facet 1 → triangle first.
	if facets[0].PatternIndex != 0 || len(facets[0].Graphs) != 2 {
		t.Fatalf("facet 0 = %+v", facets[0])
	}
	if facets[1].PatternIndex != 1 || len(facets[1].Graphs) != 1 || facets[1].Graphs[0] != "g3" {
		t.Fatalf("facet 1 = %+v", facets[1])
	}
	// The path belongs to no facet.
	if len(rest) != 1 || rest[0] != "g2" {
		t.Fatalf("rest = %v", rest)
	}
}

func TestFacetsEmpty(t *testing.T) {
	c := facetCorpus()
	facets, rest := Facets(nil, c, []*pattern.Pattern{trianglePattern()}, pattern.MatchOptions())
	if len(facets) != 0 || len(rest) != 0 {
		t.Fatal("empty matches must yield nothing")
	}
	// Unknown names are skipped.
	facets, rest = Facets([]string{"missing"}, c, []*pattern.Pattern{trianglePattern()}, pattern.MatchOptions())
	if len(facets) != 0 || len(rest) != 1 {
		t.Fatalf("facets=%v rest=%v", facets, rest)
	}
}

func TestFindHighlight(t *testing.T) {
	c := facetCorpus()
	g, _ := c.ByName("g0")
	q := graph.New("q")
	q.AddNodes(2, "A")
	q.MustAddEdge(0, 1, "-")
	h, ok := FindHighlight(q, g, isomorph.Options{})
	if !ok {
		t.Fatal("no highlight")
	}
	if len(h.Nodes) != 2 || len(h.Edges) != 1 {
		t.Fatalf("highlight = %+v", h)
	}
	// Highlighted edge joins highlighted nodes.
	e := g.Edge(h.Edges[0])
	inNodes := map[graph.NodeID]bool{h.Nodes[0]: true, h.Nodes[1]: true}
	if !inNodes[e.U] || !inNodes[e.V] {
		t.Fatal("highlight inconsistent")
	}
	// Non-matching query.
	big := graph.New("b")
	big.AddNodes(5, "Z")
	if _, ok := FindHighlight(big, g, isomorph.Options{}); ok {
		t.Fatal("impossible highlight found")
	}
}

func TestBuildView(t *testing.T) {
	c := facetCorpus()
	g, _ := c.ByName("g3")
	q := graph.New("q")
	ctr := q.AddNode("A")
	l := q.AddNode("A")
	q.MustAddEdge(ctr, l, "-")
	v, ok := BuildView(q, g, 200, 200, 1, isomorph.Options{})
	if !ok {
		t.Fatal("no view")
	}
	if len(v.Layout.Pos) != g.NumNodes() {
		t.Fatal("layout incomplete")
	}
	if len(v.Highlight.Nodes) != 2 {
		t.Fatalf("highlight = %+v", v.Highlight)
	}
	if _, ok := BuildView(trianglePattern().G, g, 200, 200, 1, isomorph.Options{}); ok {
		t.Fatal("triangle cannot embed in star")
	}
}
