// Package results structures the Results Panel: raw match lists are hard
// to explore (the tutorial's Section 2.5 notes that a result subgraph
// drawn as a hairball defeats the user), so this package provides
//
//   - faceting: matched graphs are grouped by which canned patterns they
//     contain, giving the user data-derived facets to drill into rather
//     than a flat list;
//   - highlighting: for one matched graph, the embedding of the query is
//     materialized as node/edge sets so the front end can emphasize *why*
//     the graph matched;
//   - result layout: a force-directed drawing of the matched graph with
//     the highlight attached, ready for an aesthetics-aware Results Panel.
package results

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/layout"
	"repro/internal/pattern"
)

// Facet is one group of matches sharing a canned pattern.
type Facet struct {
	// PatternIndex is the position of the facet's pattern in the panel
	// slice passed to Facets.
	PatternIndex int
	// Graphs are the names of matched graphs containing the pattern,
	// sorted.
	Graphs []string
}

// Facets groups matched corpus graphs by the canned patterns they contain.
// Patterns that match nothing produce no facet; graphs containing no panel
// pattern are collected in rest. Facets are ordered by decreasing size.
func Facets(matched []string, c *graph.Corpus, panel []*pattern.Pattern, opts isomorph.Options) (facets []Facet, rest []string) {
	inFacet := make(map[string]bool)
	for pi, p := range panel {
		var members []string
		for _, name := range matched {
			g, ok := c.ByName(name)
			if !ok {
				continue
			}
			if isomorph.Exists(p.G, g, opts) {
				members = append(members, name)
				inFacet[name] = true
			}
		}
		if len(members) > 0 {
			sort.Strings(members)
			facets = append(facets, Facet{PatternIndex: pi, Graphs: members})
		}
	}
	sort.SliceStable(facets, func(i, j int) bool {
		if len(facets[i].Graphs) != len(facets[j].Graphs) {
			return len(facets[i].Graphs) > len(facets[j].Graphs)
		}
		return facets[i].PatternIndex < facets[j].PatternIndex
	})
	for _, name := range matched {
		if !inFacet[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	return facets, rest
}

// Highlight is the witness of one query match inside a data graph.
type Highlight struct {
	// Nodes are the data-graph nodes the query maps onto.
	Nodes []graph.NodeID
	// Edges are the data-graph edges covered by query edges.
	Edges []graph.EdgeID
}

// FindHighlight returns the first embedding of q in g as a highlight, or
// false if none exists within the search budget.
func FindHighlight(q, g *graph.Graph, opts isomorph.Options) (Highlight, bool) {
	var h Highlight
	found := false
	isomorph.Enumerate(q, g, opts, func(mapping []graph.NodeID) bool {
		h.Nodes = append([]graph.NodeID(nil), mapping...)
		for _, qe := range q.Edges() {
			if eid, ok := g.EdgeBetween(mapping[qe.U], mapping[qe.V]); ok {
				h.Edges = append(h.Edges, eid)
			}
		}
		found = true
		return false // first embedding suffices
	})
	if found {
		sort.Ints(h.Nodes)
		sort.Ints(h.Edges)
	}
	return h, found
}

// View is a drawable result: the matched graph's layout plus the match
// highlight.
type View struct {
	Graph     *graph.Graph
	Layout    *layout.Layout
	Highlight Highlight
	Metrics   layout.Metrics
}

// BuildView lays out the matched graph (best-of-seeds, aesthetics-aware)
// and attaches the query highlight. Returns false if q does not embed.
func BuildView(q, g *graph.Graph, w, h float64, seed int64, opts isomorph.Options) (View, bool) {
	hl, ok := FindHighlight(q, g, opts)
	if !ok {
		return View{}, false
	}
	items := layout.OptimizePanel([]*graph.Graph{g}, w, h, 4, seed)
	return View{Graph: g, Layout: items[0].Layout, Highlight: hl, Metrics: items[0].Metrics}, true
}
