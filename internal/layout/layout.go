// Package layout computes 2-D positions for pattern graphs and the
// aesthetic metrics the tutorial's future-directions section calls for
// (Section 2.5): data-driven VQI construction should become
// aesthetics-aware, measuring layout quality with metrics such as edge
// crossings, node overlap (clutter), and angular resolution, which HCI
// research links to visual complexity and hence cognitive load.
//
// The layout algorithm is Fruchterman–Reingold force simulation with
// deterministic seeded initialization; the metrics operate on any layout.
package layout

import (
	"math"
	"math/rand"

	"repro/internal/graph"
)

// Point is a 2-D position.
type Point struct {
	X, Y float64
}

// Layout is a set of node positions inside a W×H canvas.
type Layout struct {
	Pos  []Point
	W, H float64
}

// FruchtermanReingold computes a force-directed layout of g inside a w×h
// canvas using the given number of iterations (0 = 100). Deterministic for
// a given seed.
func FruchtermanReingold(g *graph.Graph, w, h float64, iterations int, seed int64) *Layout {
	n := g.NumNodes()
	l := &Layout{Pos: make([]Point, n), W: w, H: h}
	if n == 0 {
		return l
	}
	if iterations == 0 {
		iterations = 100
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range l.Pos {
		l.Pos[i] = Point{X: rng.Float64() * w, Y: rng.Float64() * h}
	}
	if n == 1 {
		l.Pos[0] = Point{X: w / 2, Y: h / 2}
		return l
	}
	k := math.Sqrt(w * h / float64(n)) // ideal edge length
	temp := w / 10
	cool := temp / float64(iterations+1)
	disp := make([]Point, n)
	for iter := 0; iter < iterations; iter++ {
		for i := range disp {
			disp[i] = Point{}
		}
		// Repulsive forces between all pairs.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				dx := l.Pos[i].X - l.Pos[j].X
				dy := l.Pos[i].Y - l.Pos[j].Y
				d := math.Hypot(dx, dy)
				if d < 1e-9 {
					// Deterministic nudge for coincident nodes.
					dx, dy, d = 0.01*float64(i-j), 0.01, 0.0141
				}
				f := k * k / d
				disp[i].X += dx / d * f
				disp[i].Y += dy / d * f
				disp[j].X -= dx / d * f
				disp[j].Y -= dy / d * f
			}
		}
		// Attractive forces along edges.
		for _, e := range g.Edges() {
			dx := l.Pos[e.U].X - l.Pos[e.V].X
			dy := l.Pos[e.U].Y - l.Pos[e.V].Y
			d := math.Hypot(dx, dy)
			if d < 1e-9 {
				continue
			}
			f := d * d / k
			disp[e.U].X -= dx / d * f
			disp[e.U].Y -= dy / d * f
			disp[e.V].X += dx / d * f
			disp[e.V].Y += dy / d * f
		}
		// Apply displacement capped by temperature; clamp to canvas.
		for i := 0; i < n; i++ {
			d := math.Hypot(disp[i].X, disp[i].Y)
			if d < 1e-9 {
				continue
			}
			step := math.Min(d, temp)
			l.Pos[i].X += disp[i].X / d * step
			l.Pos[i].Y += disp[i].Y / d * step
			l.Pos[i].X = math.Max(0, math.Min(w, l.Pos[i].X))
			l.Pos[i].Y = math.Max(0, math.Min(h, l.Pos[i].Y))
		}
		temp -= cool
	}
	return l
}

// EdgeCrossings counts pairs of non-adjacent edges whose segments
// intersect.
func EdgeCrossings(g *graph.Graph, l *Layout) int {
	edges := g.Edges()
	count := 0
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			a, b := edges[i], edges[j]
			if a.U == b.U || a.U == b.V || a.V == b.U || a.V == b.V {
				continue // share an endpoint
			}
			if segmentsIntersect(l.Pos[a.U], l.Pos[a.V], l.Pos[b.U], l.Pos[b.V]) {
				count++
			}
		}
	}
	return count
}

func segmentsIntersect(p1, p2, p3, p4 Point) bool {
	d1 := cross(p3, p4, p1)
	d2 := cross(p3, p4, p2)
	d3 := cross(p1, p2, p3)
	d4 := cross(p1, p2, p4)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return false
}

func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// NodeOverlaps counts node pairs closer than 2·radius — visual clutter.
func NodeOverlaps(l *Layout, radius float64) int {
	count := 0
	for i := 0; i < len(l.Pos); i++ {
		for j := i + 1; j < len(l.Pos); j++ {
			dx := l.Pos[i].X - l.Pos[j].X
			dy := l.Pos[i].Y - l.Pos[j].Y
			if math.Hypot(dx, dy) < 2*radius {
				count++
			}
		}
	}
	return count
}

// AngularResolution returns the mean over nodes (degree ≥ 2) of the
// minimum angle between consecutive incident edges, in radians. Larger is
// better (edges spread apart); the ideal for degree d is 2π/d.
func AngularResolution(g *graph.Graph, l *Layout) float64 {
	total, counted := 0.0, 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.Degree(v) < 2 {
			continue
		}
		var angles []float64
		g.VisitNeighbors(v, func(nbr graph.NodeID, _ graph.EdgeID) bool {
			angles = append(angles, math.Atan2(l.Pos[nbr].Y-l.Pos[v].Y, l.Pos[nbr].X-l.Pos[v].X))
			return true
		})
		sortFloats(angles)
		min := math.Inf(1)
		for i := range angles {
			var diff float64
			if i == 0 {
				diff = angles[0] + 2*math.Pi - angles[len(angles)-1]
			} else {
				diff = angles[i] - angles[i-1]
			}
			if diff < min {
				min = diff
			}
		}
		total += min
		counted++
	}
	if counted == 0 {
		return math.Pi // vacuously perfect
	}
	return total / float64(counted)
}

func sortFloats(s []float64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// EdgeLengthCV returns the coefficient of variation of edge lengths;
// uniform edge lengths (low CV) read better.
func EdgeLengthCV(g *graph.Graph, l *Layout) float64 {
	edges := g.Edges()
	if len(edges) == 0 {
		return 0
	}
	lengths := make([]float64, len(edges))
	mean := 0.0
	for i, e := range edges {
		lengths[i] = math.Hypot(l.Pos[e.U].X-l.Pos[e.V].X, l.Pos[e.U].Y-l.Pos[e.V].Y)
		mean += lengths[i]
	}
	mean /= float64(len(edges))
	if mean < 1e-9 {
		return 0
	}
	va := 0.0
	for _, x := range lengths {
		va += (x - mean) * (x - mean)
	}
	va /= float64(len(edges))
	return math.Sqrt(va) / mean
}

// Metrics bundles the aesthetic measurements of one laid-out graph.
type Metrics struct {
	Crossings         int
	Overlaps          int
	AngularResolution float64
	EdgeLengthCV      float64
	VisualComplexity  float64
}

// Measure computes all metrics. nodeRadius is the drawn node radius used
// for overlap detection (0 = 2% of canvas width).
func Measure(g *graph.Graph, l *Layout, nodeRadius float64) Metrics {
	if nodeRadius == 0 {
		nodeRadius = l.W * 0.02
	}
	m := Metrics{
		Crossings:         EdgeCrossings(g, l),
		Overlaps:          NodeOverlaps(l, nodeRadius),
		AngularResolution: AngularResolution(g, l),
		EdgeLengthCV:      EdgeLengthCV(g, l),
	}
	m.VisualComplexity = visualComplexity(g, m)
	return m
}

// visualComplexity combines the metrics into a single [0,∞) score; higher
// means visually busier (more crossings and clutter, cramped angles,
// uneven edges) following the visual-complexity aggregation of the
// interface-aesthetics literature.
func visualComplexity(g *graph.Graph, m Metrics) float64 {
	mEdges := float64(g.NumEdges())
	if mEdges == 0 {
		return 0
	}
	crossTerm := float64(m.Crossings) / mEdges
	overlapTerm := float64(m.Overlaps) / float64(g.NumNodes()+1)
	angleTerm := 0.0
	if m.AngularResolution > 0 {
		angleTerm = math.Min(1, 0.5/m.AngularResolution)
	}
	return crossTerm + overlapTerm + angleTerm + m.EdgeLengthCV/2
}
