package layout

import (
	"math"
	"testing"

	"repro/internal/graph"
)

func cycle(n int) *graph.Graph {
	g := graph.New("c")
	g.AddNodes(n, "A")
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, "-")
	}
	return g
}

func TestFruchtermanReingoldBasics(t *testing.T) {
	g := cycle(6)
	l := FruchtermanReingold(g, 100, 100, 150, 1)
	if len(l.Pos) != 6 {
		t.Fatalf("positions = %d", len(l.Pos))
	}
	for _, p := range l.Pos {
		if p.X < 0 || p.X > 100 || p.Y < 0 || p.Y > 100 {
			t.Fatalf("position %v outside canvas", p)
		}
	}
	// Deterministic.
	l2 := FruchtermanReingold(g, 100, 100, 150, 1)
	for i := range l.Pos {
		if l.Pos[i] != l2.Pos[i] {
			t.Fatal("layout nondeterministic")
		}
	}
	// Nodes spread out: no two coincide.
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			d := math.Hypot(l.Pos[i].X-l.Pos[j].X, l.Pos[i].Y-l.Pos[j].Y)
			if d < 1 {
				t.Fatalf("nodes %d,%d nearly coincide (d=%v)", i, j, d)
			}
		}
	}
}

func TestLayoutDegenerateSizes(t *testing.T) {
	empty := FruchtermanReingold(graph.New("e"), 50, 50, 10, 1)
	if len(empty.Pos) != 0 {
		t.Fatal("empty layout")
	}
	one := graph.New("1")
	one.AddNode("A")
	l := FruchtermanReingold(one, 50, 50, 10, 1)
	if l.Pos[0] != (Point{25, 25}) {
		t.Fatalf("single node not centered: %v", l.Pos[0])
	}
}

func TestEdgeCrossingsKnown(t *testing.T) {
	// A "bowtie" drawn with crossing diagonals: nodes at square corners,
	// edges (0,2) and (1,3) cross; edges (0,1) and (2,3) don't.
	g := graph.New("x")
	g.AddNodes(4, "A")
	g.MustAddEdge(0, 2, "-")
	g.MustAddEdge(1, 3, "-")
	l := &Layout{Pos: []Point{{0, 0}, {10, 0}, {10, 10}, {0, 10}}, W: 10, H: 10}
	if c := EdgeCrossings(g, l); c != 1 {
		t.Fatalf("crossings = %d, want 1", c)
	}
	// Same graph, planar drawing: move node 2.
	l2 := &Layout{Pos: []Point{{0, 0}, {10, 0}, {5, 5}, {0, 10}}, W: 10, H: 10}
	_ = l2
	g2 := graph.New("p")
	g2.AddNodes(4, "A")
	g2.MustAddEdge(0, 1, "-")
	g2.MustAddEdge(2, 3, "-")
	if c := EdgeCrossings(g2, l); c != 0 {
		t.Fatalf("parallel sides crossings = %d, want 0", c)
	}
	// Edges sharing an endpoint never count.
	g3 := graph.New("s")
	g3.AddNodes(3, "A")
	g3.MustAddEdge(0, 1, "-")
	g3.MustAddEdge(0, 2, "-")
	l3 := &Layout{Pos: []Point{{0, 0}, {10, 0}, {0, 10}}, W: 10, H: 10}
	if c := EdgeCrossings(g3, l3); c != 0 {
		t.Fatalf("shared endpoint crossings = %d", c)
	}
}

func TestNodeOverlaps(t *testing.T) {
	l := &Layout{Pos: []Point{{0, 0}, {1, 0}, {50, 50}}, W: 100, H: 100}
	if n := NodeOverlaps(l, 1); n != 1 {
		t.Fatalf("overlaps = %d, want 1", n)
	}
	if n := NodeOverlaps(l, 0.4); n != 0 {
		t.Fatalf("overlaps = %d, want 0", n)
	}
}

func TestAngularResolution(t *testing.T) {
	// A star with 4 leaves at right angles: min angle at center = π/2.
	g := graph.New("s")
	c := g.AddNode("A")
	for i := 0; i < 4; i++ {
		l := g.AddNode("A")
		g.MustAddEdge(c, l, "-")
	}
	l := &Layout{Pos: []Point{{0, 0}, {10, 0}, {0, 10}, {-10, 0}, {0, -10}}, W: 20, H: 20}
	ar := AngularResolution(g, l)
	if math.Abs(ar-math.Pi/2) > 1e-9 {
		t.Fatalf("angular resolution = %v, want π/2", ar)
	}
	// Cramped: all leaves on the same side.
	cramped := &Layout{Pos: []Point{{0, 0}, {10, 0}, {10, 1}, {10, 2}, {10, 3}}, W: 20, H: 20}
	if AngularResolution(g, cramped) >= ar {
		t.Fatal("cramped layout must have worse angular resolution")
	}
	// No degree-2 node → vacuous π.
	edge := graph.New("e")
	edge.AddNodes(2, "A")
	edge.MustAddEdge(0, 1, "-")
	if AngularResolution(edge, &Layout{Pos: []Point{{0, 0}, {1, 1}}, W: 2, H: 2}) != math.Pi {
		t.Fatal("vacuous angular resolution")
	}
}

func TestEdgeLengthCV(t *testing.T) {
	g := graph.New("p")
	g.AddNodes(3, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	uniform := &Layout{Pos: []Point{{0, 0}, {10, 0}, {20, 0}}, W: 20, H: 20}
	if cv := EdgeLengthCV(g, uniform); math.Abs(cv) > 1e-9 {
		t.Fatalf("uniform CV = %v", cv)
	}
	skewed := &Layout{Pos: []Point{{0, 0}, {1, 0}, {20, 0}}, W: 20, H: 20}
	if EdgeLengthCV(g, skewed) <= 0 {
		t.Fatal("skewed CV must be positive")
	}
	if EdgeLengthCV(graph.New("e"), &Layout{}) != 0 {
		t.Fatal("edgeless CV must be 0")
	}
}

func TestMeasureAndComplexityOrdering(t *testing.T) {
	// A well-laid-out cycle should be less visually complex than the same
	// cycle with positions shuffled into a tangle.
	g := cycle(8)
	good := FruchtermanReingold(g, 100, 100, 200, 1)
	tangle := &Layout{Pos: make([]Point, 8), W: 100, H: 100}
	// Deliberate tangle: alternate opposite corners.
	for i := range tangle.Pos {
		if i%2 == 0 {
			tangle.Pos[i] = Point{float64(i), float64(i)}
		} else {
			tangle.Pos[i] = Point{100 - float64(i), 100 - float64(i*7%100)}
		}
	}
	mg := Measure(g, good, 0)
	mt := Measure(g, tangle, 0)
	if mg.VisualComplexity >= mt.VisualComplexity {
		t.Fatalf("good layout complexity %v must be below tangle %v",
			mg.VisualComplexity, mt.VisualComplexity)
	}
	if em := Measure(graph.New("e"), &Layout{W: 10, H: 10}, 0); em.VisualComplexity != 0 {
		t.Fatal("empty graph complexity must be 0")
	}
}
