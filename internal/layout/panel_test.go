package layout

import (
	"testing"

	"repro/internal/graph"
)

func denseGraph(n int) *graph.Graph {
	g := graph.New("d")
	g.AddNodes(n, "A")
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, "-")
		}
	}
	return g
}

func TestOptimizePanelOrdering(t *testing.T) {
	patterns := []*graph.Graph{
		denseGraph(6), // complex
		pathGraphN(5), // simple
		cycle(8),      // medium
		starGraphN(6), // simple-ish
	}
	items := OptimizePanel(patterns, 120, 120, 4, 1)
	if len(items) != 4 {
		t.Fatalf("items = %d", len(items))
	}
	// Cells are a permutation of 0..3.
	seen := map[int]bool{}
	for _, it := range items {
		if it.Cell < 0 || it.Cell >= 4 || seen[it.Cell] {
			t.Fatalf("bad cell assignment: %+v", items)
		}
		seen[it.Cell] = true
	}
	// Panel order is ascending complexity.
	byCell := make([]PanelItem, 4)
	for _, it := range items {
		byCell[it.Cell] = it
	}
	for i := 1; i < 4; i++ {
		if byCell[i].Metrics.VisualComplexity < byCell[i-1].Metrics.VisualComplexity {
			t.Fatal("panel not ordered by complexity")
		}
	}
	// The clique must not come first.
	if byCell[0].Index == 0 {
		t.Fatal("K6 ordered before simple shapes")
	}
}

func TestOptimizePanelBeatsSingleSeed(t *testing.T) {
	patterns := []*graph.Graph{cycle(10), denseGraph(5), cycle(12)}
	single := OptimizePanel(patterns, 120, 120, 1, 3)
	multi := OptimizePanel(patterns, 120, 120, 6, 3)
	if PanelComplexity(multi) > PanelComplexity(single)+1e-9 {
		t.Fatalf("seed search made the panel worse: %v vs %v",
			PanelComplexity(multi), PanelComplexity(single))
	}
}

func TestOptimizePanelDeterministic(t *testing.T) {
	patterns := []*graph.Graph{cycle(7), pathGraphN(6)}
	a := OptimizePanel(patterns, 120, 120, 3, 9)
	b := OptimizePanel(patterns, 120, 120, 3, 9)
	for i := range a {
		if a[i].Cell != b[i].Cell || a[i].Metrics != b[i].Metrics {
			t.Fatal("panel optimization nondeterministic")
		}
	}
}

func TestOptimizePanelEmpty(t *testing.T) {
	if items := OptimizePanel(nil, 120, 120, 3, 1); len(items) != 0 {
		t.Fatal("empty panel")
	}
	if PanelComplexity(nil) != 0 {
		t.Fatal("empty panel complexity")
	}
}

func pathGraphN(n int) *graph.Graph {
	g := graph.New("p")
	g.AddNodes(n, "A")
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, "-")
	}
	return g
}

func starGraphN(leaves int) *graph.Graph {
	g := graph.New("s")
	c := g.AddNode("A")
	for i := 0; i < leaves; i++ {
		l := g.AddNode("A")
		g.MustAddEdge(c, l, "-")
	}
	return g
}
