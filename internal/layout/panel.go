package layout

// Panel-level aesthetics. The tutorial's future-directions section
// reformulates data-driven visual layout design as an optimization
// problem: find the layout minimizing the interface's visual complexity
// and the cognitive load it induces. This file implements that for the
// Pattern Panel:
//
//   - per pattern, a small search over layout seeds keeps the drawing with
//     the lowest visual complexity (fewest crossings, least clutter);
//   - across the panel, patterns are ordered simplest-first, which HCI
//     scanning models favor: users dismiss cheap-to-parse thumbnails
//     quickly and spend their attention budget on the complex tail.

import (
	"sort"

	"repro/internal/graph"
)

// PanelItem is one laid-out pattern in an optimized panel.
type PanelItem struct {
	// Index is the pattern's position in the input slice.
	Index int
	// Layout is the chosen (complexity-minimizing) drawing.
	Layout *Layout
	// Metrics are the aesthetics of the chosen drawing.
	Metrics Metrics
	// Cell is the display position in the panel (0 = first).
	Cell int
}

// OptimizePanel lays out every pattern with a best-of-seeds search and
// orders the panel by ascending visual complexity. seeds is the number of
// layout restarts tried per pattern (0 = 4).
func OptimizePanel(patterns []*graph.Graph, cellW, cellH float64, seeds int, baseSeed int64) []PanelItem {
	if seeds <= 0 {
		seeds = 4
	}
	items := make([]PanelItem, len(patterns))
	for i, g := range patterns {
		var best *Layout
		var bestM Metrics
		for s := 0; s < seeds; s++ {
			l := FruchtermanReingold(g, cellW, cellH, 120, baseSeed+int64(i*seeds+s))
			m := Measure(g, l, 0)
			if best == nil || m.VisualComplexity < bestM.VisualComplexity {
				best, bestM = l, m
			}
		}
		items[i] = PanelItem{Index: i, Layout: best, Metrics: bestM}
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return items[order[a]].Metrics.VisualComplexity < items[order[b]].Metrics.VisualComplexity
	})
	for cell, idx := range order {
		items[idx].Cell = cell
	}
	return items
}

// PanelComplexity returns the total visual complexity of a panel — the
// quantity the optimization minimizes.
func PanelComplexity(items []PanelItem) float64 {
	total := 0.0
	for _, it := range items {
		total += it.Metrics.VisualComplexity
	}
	return total
}
