package fct

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
)

// chainGraph builds a labeled path A-B-C-... with "-" edges.
func chainGraph(name string, labels ...string) *graph.Graph {
	g := graph.New(name)
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.MustAddEdge(i, i+1, "-")
	}
	return g
}

func TestMinerValidate(t *testing.T) {
	if err := (Miner{MinSupport: 0, MaxEdges: 3}).Validate(); err == nil {
		t.Fatal("MinSupport 0 accepted")
	}
	if err := (Miner{MinSupport: 1, MaxEdges: 0}).Validate(); err == nil {
		t.Fatal("MaxEdges 0 accepted")
	}
	if _, err := (Miner{}).Mine(graph.NewCorpus()); err == nil {
		t.Fatal("invalid miner must error")
	}
}

func TestMineSingleEdges(t *testing.T) {
	c := graph.NewCorpus()
	c.MustAdd(chainGraph("g0", "A", "B"))
	c.MustAdd(chainGraph("g1", "A", "B"))
	c.MustAdd(chainGraph("g2", "A", "C"))
	s, err := Miner{MinSupport: 2, MaxEdges: 1}.Mine(c)
	if err != nil {
		t.Fatal(err)
	}
	// Only A-B is frequent (support 2).
	if s.Len() != 1 || s.Trees[0].Support != 2 {
		t.Fatalf("mined %d trees: %+v", s.Len(), s.Trees)
	}
}

func TestMineLevelTwo(t *testing.T) {
	c := graph.NewCorpus()
	// Both graphs contain the path A-B-C.
	c.MustAdd(chainGraph("g0", "A", "B", "C"))
	c.MustAdd(chainGraph("g1", "A", "B", "C", "D"))
	s, err := Miner{MinSupport: 2, MaxEdges: 2}.Mine(c)
	if err != nil {
		t.Fatal(err)
	}
	// Frequent 1-edge: A-B, B-C (support 2 each). C-D support 1.
	// Frequent 2-edge: A-B-C (support 2).
	var sizes []int
	for _, tr := range s.Trees {
		sizes = append(sizes, tr.Edges())
	}
	if !reflect.DeepEqual(sizes, []int{1, 1, 2}) {
		t.Fatalf("tree sizes = %v", sizes)
	}
	for _, tr := range s.Trees {
		if tr.Support != 2 {
			t.Fatalf("tree %s support = %d", tr.G.Name(), tr.Support)
		}
	}
}

func TestMineStarTrees(t *testing.T) {
	// A star with three B-leaves in both graphs: the claw A(B,B,B) must be
	// found at level 3.
	mkStar := func(name string) *graph.Graph {
		g := graph.New(name)
		c := g.AddNode("A")
		for i := 0; i < 3; i++ {
			l := g.AddNode("B")
			g.MustAddEdge(c, l, "-")
		}
		return g
	}
	c := graph.NewCorpus()
	c.MustAdd(mkStar("g0"))
	c.MustAdd(mkStar("g1"))
	s, err := Miner{MinSupport: 2, MaxEdges: 3}.Mine(c)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tr := range s.Trees {
		if tr.Edges() == 3 && tr.G.MaxDegree() == 3 {
			found = true
			if tr.Support != 2 {
				t.Fatalf("claw support = %d", tr.Support)
			}
		}
	}
	if !found {
		t.Fatal("claw not mined")
	}
}

func TestClosed(t *testing.T) {
	// g0,g1 contain A-B-C; g2 contains only A-B. So A-B has support 3 and
	// B-C support 2; A-B-C support 2. B-C (support 2) has supertree A-B-C
	// with equal support → B-C is NOT closed. A-B (support 3) is closed.
	c := graph.NewCorpus()
	c.MustAdd(chainGraph("g0", "A", "B", "C"))
	c.MustAdd(chainGraph("g1", "A", "B", "C"))
	c.MustAdd(chainGraph("g2", "A", "B"))
	s, err := Miner{MinSupport: 2, MaxEdges: 2}.Mine(c)
	if err != nil {
		t.Fatal(err)
	}
	closed := s.Closed()
	if len(closed) != 2 {
		for _, tr := range closed {
			t.Logf("closed: %s sup=%d m=%d", tr.Canon, tr.Support, tr.Edges())
		}
		t.Fatalf("closed count = %d, want 2 (A-B and A-B-C)", len(closed))
	}
}

func TestFeatureVector(t *testing.T) {
	c := graph.NewCorpus()
	c.MustAdd(chainGraph("g0", "A", "B", "C"))
	c.MustAdd(chainGraph("g1", "A", "B"))
	s, err := Miner{MinSupport: 1, MaxEdges: 2}.Mine(c)
	if err != nil {
		t.Fatal(err)
	}
	v0 := s.FeatureVector(c.Graph(0))
	v1 := s.FeatureVector(c.Graph(1))
	if len(v0) != s.Len() || len(v1) != s.Len() {
		t.Fatal("feature vector length mismatch")
	}
	// g0 contains everything mined; g1 contains only A-B.
	sum0, sum1 := 0.0, 0.0
	for i := range v0 {
		sum0 += v0[i]
		sum1 += v1[i]
	}
	if sum0 != float64(s.Len()) {
		t.Fatalf("g0 features = %v", v0)
	}
	if sum1 != 1 {
		t.Fatalf("g1 features = %v", v1)
	}
}

// minesEqual compares two sets by (canon, support).
func minesEqual(a, b *Set) bool {
	if a.Len() != b.Len() {
		return false
	}
	for i := range a.Trees {
		if a.Trees[i].Canon != b.Trees[i].Canon || a.Trees[i].Support != b.Trees[i].Support {
			return false
		}
	}
	return true
}

func TestUpdateMatchesRemine(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	base := datagen.ChemicalCorpus(1, 30, datagen.ChemicalOptions{MinNodes: 6, MaxNodes: 14})
	miner := Miner{MinSupport: 5, MaxEdges: 2}
	s, err := miner.Mine(base)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		// Batch: remove 3 random graphs, add 5 new ones.
		var removed []*graph.Graph
		names := base.Names()
		for i := 0; i < 3; i++ {
			name := names[rng.Intn(len(names))]
			if g, ok := base.ByName(name); ok {
				removed = append(removed, g)
				base.Remove(name)
			}
		}
		var added []*graph.Graph
		for i := 0; i < 5; i++ {
			g := datagen.Chemical(rng, fmt.Sprintf("new-%d-%d", round, i), datagen.ChemicalOptions{MinNodes: 6, MaxNodes: 14})
			added = append(added, g)
			base.MustAdd(g)
		}
		if err := s.Update(base, added, removed); err != nil {
			t.Fatal(err)
		}
		fresh, err := miner.Mine(base)
		if err != nil {
			t.Fatal(err)
		}
		if !minesEqual(s, fresh) {
			t.Fatalf("round %d: incremental update diverged from re-mining (%d vs %d trees)",
				round, s.Len(), fresh.Len())
		}
	}
}

func TestUpdateDeletionsOnly(t *testing.T) {
	c := graph.NewCorpus()
	c.MustAdd(chainGraph("g0", "A", "B"))
	c.MustAdd(chainGraph("g1", "A", "B"))
	c.MustAdd(chainGraph("g2", "A", "B"))
	miner := Miner{MinSupport: 2, MaxEdges: 1}
	s, _ := miner.Mine(c)
	if s.Len() != 1 {
		t.Fatalf("initial trees = %d", s.Len())
	}
	// Remove two of the three graphs: A-B drops below threshold.
	g1, _ := c.ByName("g1")
	g2, _ := c.ByName("g2")
	c.Remove("g1")
	c.Remove("g2")
	if err := s.Update(c, nil, []*graph.Graph{g1, g2}); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("after deletion: %d trees, want 0", s.Len())
	}
}

func TestUpdateAdditionsIntroduceNewTrees(t *testing.T) {
	c := graph.NewCorpus()
	c.MustAdd(chainGraph("g0", "A", "B"))
	miner := Miner{MinSupport: 2, MaxEdges: 2}
	s, _ := miner.Mine(c)
	if s.Len() != 0 {
		t.Fatalf("initial trees = %d, want 0", s.Len())
	}
	// Add two graphs containing X-Y: new frequent tree not stored before.
	a1 := chainGraph("a1", "X", "Y")
	a2 := chainGraph("a2", "X", "Y", "Z")
	c.MustAdd(a1)
	c.MustAdd(a2)
	if err := s.Update(c, []*graph.Graph{a1, a2}, nil); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 {
		t.Fatalf("after additions: %d trees, want 1 (X-Y)", s.Len())
	}
	if s.Trees[0].Support != 2 {
		t.Fatalf("X-Y support = %d", s.Trees[0].Support)
	}
}
