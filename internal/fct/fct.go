// Package fct mines frequent trees from a corpus of data graphs and
// maintains them incrementally under batch updates.
//
// CATAPULT clusters a corpus by representing each data graph as a feature
// vector over frequent subtrees; MIDAS replaces plain frequent subtrees
// with frequent closed trees (FCTs) because closedness makes the feature
// set compact and efficiently maintainable as the corpus evolves. A tree is
// closed if no frequent supertree has the same support.
//
// The miner is Apriori-style pattern growth: level 1 is the frequent
// single-edge trees (label triples); level k+1 extends level-k trees by one
// labeled edge at any node, deduplicates by canonical form, and keeps those
// meeting the support threshold. Downward closure of subtree containment
// makes this complete.
//
// Incremental maintenance exploits a simple exactness argument: additions
// only increase a tree's support and deletions only decrease it, so every
// tree that is frequent after a batch update either was frequent before or
// occurs in an added graph. The maintained candidate set is therefore the
// stored frequent trees plus the trees mined from the added graphs, each
// re-counted exactly.
package fct

import (
	"fmt"
	"sort"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/isomorph"
)

// Tree is a frequent tree with its support (number of corpus graphs
// containing it).
type Tree struct {
	G       *graph.Graph
	Support int
	Canon   string
}

// Edges returns the tree size in edges.
func (t *Tree) Edges() int { return t.G.NumEdges() }

// Miner configures frequent-tree mining.
type Miner struct {
	// MinSupport is the absolute support threshold: a tree is frequent if
	// at least this many corpus graphs contain it. Must be ≥ 1.
	MinSupport int
	// MaxEdges bounds tree size; level-wise growth stops there. Typical
	// feature mining uses 3.
	MaxEdges int
}

// Validate returns an error for nonsensical parameters.
func (m Miner) Validate() error {
	if m.MinSupport < 1 {
		return fmt.Errorf("fct: MinSupport %d must be ≥ 1", m.MinSupport)
	}
	if m.MaxEdges < 1 {
		return fmt.Errorf("fct: MaxEdges %d must be ≥ 1", m.MaxEdges)
	}
	return nil
}

// Set is a mined collection of frequent trees plus the parameters needed to
// maintain it.
type Set struct {
	Miner   Miner
	Trees   []*Tree
	byCanon map[string]*Tree
}

// NewSet returns an empty set with the given mining parameters, ready for
// Insert — used when restoring a persisted set.
func NewSet(m Miner) *Set {
	return &Set{Miner: m, byCanon: make(map[string]*Tree)}
}

// Insert adds a tree (with its precomputed support and canonical form) to
// the set, keeping the stable order. Duplicate canonical forms are ignored.
func (s *Set) Insert(t *Tree) {
	if _, dup := s.byCanon[t.Canon]; dup {
		return
	}
	s.byCanon[t.Canon] = t
	s.Trees = append(s.Trees, t)
	s.sort()
}

// matchOpts bounds containment checks; trees are tiny so generous budgets
// suffice and results stay exact in practice.
func matchOpts() isomorph.Options {
	return isomorph.Options{MaxEmbeddings: 1, MaxSteps: 100000}
}

// contains reports whether graph g contains tree t.
func contains(t *graph.Graph, g *graph.Graph) bool {
	return isomorph.Exists(t, g, matchOpts())
}

// Mine runs the level-wise miner over the corpus.
func (m Miner) Mine(c *graph.Corpus) (*Set, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	s := &Set{Miner: m, byCanon: make(map[string]*Tree)}

	// Level 1: frequent labeled edges, counted directly.
	counts := make(map[labelTriple]int)
	c.Each(func(_ int, g *graph.Graph) {
		seen := make(map[labelTriple]bool)
		for _, ed := range g.Edges() {
			a, b := g.NodeLabel(ed.U), g.NodeLabel(ed.V)
			if a > b {
				a, b = b, a
			}
			seen[labelTriple{a, ed.Label, b}] = true
		}
		for tr := range seen {
			counts[tr]++
		}
	})
	var level []*Tree
	for tr, sup := range counts {
		if sup < m.MinSupport {
			continue
		}
		g := graph.New(fmt.Sprintf("fct-%s-%s-%s", tr.a, tr.e, tr.b))
		u := g.AddNode(tr.a)
		v := g.AddNode(tr.b)
		g.MustAddEdge(u, v, tr.e)
		level = append(level, &Tree{G: g, Support: sup, Canon: canon.String(g)})
	}
	s.addAll(level)

	// Extension alphabet: the frequent label triples.
	alphabet := frequentTriples(counts, m.MinSupport)

	for size := 2; size <= m.MaxEdges && len(level) > 0; size++ {
		candidates := make(map[string]*Tree)
		for _, t := range level {
			for _, ext := range extendTree(t.G, alphabet) {
				key := canon.String(ext)
				if _, dup := candidates[key]; dup {
					continue
				}
				if _, known := s.byCanon[key]; known {
					continue
				}
				candidates[key] = &Tree{G: ext, Canon: key}
			}
		}
		level = level[:0]
		for _, cand := range candidates {
			cand.Support = countSupport(cand.G, c)
			if cand.Support >= m.MinSupport {
				level = append(level, cand)
			}
		}
		s.addAll(level)
	}
	s.sort()
	return s, nil
}

type labelTriple struct{ a, e, b string }

func frequentTriples(counts map[labelTriple]int, minSup int) []labelTriple {
	var out []labelTriple
	for tr, sup := range counts {
		if sup >= minSup {
			out = append(out, tr)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].a != out[j].a {
			return out[i].a < out[j].a
		}
		if out[i].e != out[j].e {
			return out[i].e < out[j].e
		}
		return out[i].b < out[j].b
	})
	return out
}

// extendTree returns all one-edge extensions of t: for every node and every
// alphabet triple whose endpoint label matches the node, attach a fresh
// leaf. Extensions remain trees by construction.
func extendTree(t *graph.Graph, alphabet []labelTriple) []*graph.Graph {
	var out []*graph.Graph
	for v := 0; v < t.NumNodes(); v++ {
		vl := t.NodeLabel(v)
		for _, tr := range alphabet {
			var leafLabels []string
			if tr.a == vl {
				leafLabels = append(leafLabels, tr.b)
			}
			if tr.b == vl && tr.b != tr.a {
				leafLabels = append(leafLabels, tr.a)
			}
			for _, ll := range leafLabels {
				ext := t.Clone()
				ext.SetName(t.Name() + "+")
				leaf := ext.AddNode(ll)
				ext.MustAddEdge(v, leaf, tr.e)
				out = append(out, ext)
			}
		}
	}
	return out
}

func countSupport(t *graph.Graph, c *graph.Corpus) int {
	sup := 0
	c.Each(func(_ int, g *graph.Graph) {
		if contains(t, g) {
			sup++
		}
	})
	return sup
}

func (s *Set) addAll(trees []*Tree) {
	for _, t := range trees {
		if _, dup := s.byCanon[t.Canon]; !dup {
			s.byCanon[t.Canon] = t
			s.Trees = append(s.Trees, t)
		}
	}
}

func (s *Set) sort() {
	sort.Slice(s.Trees, func(i, j int) bool {
		if s.Trees[i].Edges() != s.Trees[j].Edges() {
			return s.Trees[i].Edges() < s.Trees[j].Edges()
		}
		return s.Trees[i].Canon < s.Trees[j].Canon
	})
}

// Len returns the number of frequent trees.
func (s *Set) Len() int { return len(s.Trees) }

// Closed returns the frequent closed trees: trees with no frequent
// supertree of equal support. MIDAS clusters on these.
func (s *Set) Closed() []*Tree {
	var out []*Tree
	for _, t := range s.Trees {
		closed := true
		for _, u := range s.Trees {
			if u.Edges() != t.Edges()+1 || u.Support != t.Support {
				continue
			}
			if contains(t.G, u.G) {
				closed = false
				break
			}
		}
		if closed {
			out = append(out, t)
		}
	}
	return out
}

// FeatureVector returns the binary presence vector of g over the set's
// trees, in the set's stable order. Graphs are clustered on these vectors.
func (s *Set) FeatureVector(g *graph.Graph) []float64 {
	v := make([]float64, len(s.Trees))
	for i, t := range s.Trees {
		if contains(t.G, g) {
			v[i] = 1
		}
	}
	return v
}

// Update maintains the set after a batch update. updated is the corpus
// after the update; added and removed are the graphs that were inserted and
// deleted (removed graphs must be the pre-deletion copies). The result is
// identical to re-mining the updated corpus from scratch.
func (s *Set) Update(updated *graph.Corpus, added, removed []*graph.Graph) error {
	// Phase 1: adjust supports of stored trees.
	for _, t := range s.Trees {
		for _, g := range added {
			if contains(t.G, g) {
				t.Support++
			}
		}
		for _, g := range removed {
			if contains(t.G, g) {
				t.Support--
			}
		}
	}
	// Phase 2: discover new candidates from added graphs. Any tree that
	// newly becomes frequent must occur in an added graph.
	if len(added) > 0 {
		addedCorpus := graph.NewCorpus()
		for i, g := range added {
			cp := g.Clone()
			cp.SetName(fmt.Sprintf("added-%d", i))
			addedCorpus.MustAdd(cp)
		}
		local := Miner{MinSupport: 1, MaxEdges: s.Miner.MaxEdges}
		mined, err := local.Mine(addedCorpus)
		if err != nil {
			return err
		}
		for _, cand := range mined.Trees {
			if _, known := s.byCanon[cand.Canon]; known {
				continue
			}
			sup := countSupport(cand.G, updated)
			if sup >= s.Miner.MinSupport {
				t := &Tree{G: cand.G, Support: sup, Canon: cand.Canon}
				s.byCanon[t.Canon] = t
				s.Trees = append(s.Trees, t)
			}
		}
	}
	// Phase 3: evict trees that fell below the threshold.
	kept := s.Trees[:0]
	for _, t := range s.Trees {
		if t.Support >= s.Miner.MinSupport {
			kept = append(kept, t)
		} else {
			delete(s.byCanon, t.Canon)
		}
	}
	s.Trees = kept
	s.sort()
	return nil
}
