package graphlet

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// randomGraph builds a labeled G(n, p) graph from a fixed seed.
func randomGraph(seed int64, n int, p float64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	g := graph.New("r")
	labels := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(i, j, "e")
			}
		}
	}
	return g
}

// TestCountMatchesEnum is the property test anchoring the combinatorial
// kernel: on randomized graphs across the density range, the closed-formula
// vector must equal the ESU enumeration vector exactly (both are integer
// counts stored in float64).
func TestCountMatchesEnum(t *testing.T) {
	cases := []struct {
		seed int64
		n    int
		p    float64
	}{
		{1, 12, 0.1}, {2, 12, 0.3}, {3, 12, 0.6}, {4, 12, 0.9},
		{5, 25, 0.1}, {6, 25, 0.25}, {7, 25, 0.5},
		{8, 40, 0.08}, {9, 40, 0.2},
		{10, 60, 0.05}, {11, 60, 0.12},
	}
	for _, tc := range cases {
		g := randomGraph(tc.seed, tc.n, tc.p)
		got := Count(g)
		want := CountEnum(g)
		if got != want {
			t.Errorf("seed=%d n=%d p=%.2f: combinatorial %v != enum %v", tc.seed, tc.n, tc.p, got, want)
		}
	}
}

// TestCountSmallShapes pins each graphlet type on its prototype graph.
func TestCountSmallShapes(t *testing.T) {
	build := func(n int, edges [][2]int) *graph.Graph {
		g := graph.New("p")
		g.AddNodes(n, "X")
		for _, e := range edges {
			g.MustAddEdge(e[0], e[1], "e")
		}
		return g
	}
	cases := []struct {
		name  string
		g     *graph.Graph
		typ   Type
		count float64
	}{
		{"wedge", build(3, [][2]int{{0, 1}, {1, 2}}), Wedge, 1},
		{"triangle", build(3, [][2]int{{0, 1}, {1, 2}, {0, 2}}), Triangle, 1},
		{"path4", build(4, [][2]int{{0, 1}, {1, 2}, {2, 3}}), Path4, 1},
		{"claw", build(4, [][2]int{{0, 1}, {0, 2}, {0, 3}}), Claw, 1},
		{"cycle4", build(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}), Cycle4, 1},
		{"paw", build(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {2, 3}}), Paw, 1},
		{"diamond", build(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}}), Diamond, 1},
		{"clique4", build(4, [][2]int{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}, {2, 3}}), Clique4, 1},
	}
	for _, tc := range cases {
		v := Count(tc.g)
		if v[tc.typ] != tc.count {
			t.Errorf("%s: count[%v] = %v want %v (full %v)", tc.name, tc.typ, v[tc.typ], tc.count, v)
		}
		if got, want := v, CountEnum(tc.g); got != want {
			t.Errorf("%s: combinatorial %v != enum %v", tc.name, got, want)
		}
	}
}

// TestCensusMatchesEnum cross-checks the combinatorial census keys and
// counts against the enumeration census for k=3 and k=4 — same canonical
// keys, same values, only-nonzero entries.
func TestCensusMatchesEnum(t *testing.T) {
	for _, seed := range []int64{21, 22, 23} {
		g := randomGraph(seed, 20, 0.25)
		for _, k := range []int{3, 4} {
			got := CensusN(g, k, 1)
			want := CensusEnumN(g, k, 1)
			if len(got) != len(want) {
				t.Fatalf("seed=%d k=%d: %d keys vs %d", seed, k, len(got), len(want))
			}
			for key, v := range want {
				if got[key] != v {
					t.Errorf("seed=%d k=%d key %q: %v want %v", seed, k, key, got[key], v)
				}
			}
		}
	}
}

// TestCountEmptyAndTiny covers degenerate inputs.
func TestCountEmptyAndTiny(t *testing.T) {
	if v := Count(graph.New("empty")); v != (Vector{}) {
		t.Errorf("empty graph: %v", v)
	}
	g := graph.New("edge")
	g.AddNodes(2, "X")
	g.MustAddEdge(0, 1, "e")
	if v := Count(g); v != (Vector{}) {
		t.Errorf("single edge: %v", v)
	}
}

func BenchmarkCountCombinatorial(b *testing.B) {
	g := randomGraph(99, 150, 0.1)
	cs := g.Snapshot()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountCSR(cs)
	}
}

func BenchmarkCountEnum(b *testing.B) {
	g := randomGraph(99, 150, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountEnum(g)
	}
}
