// Package graphlet counts small induced connected subgraphs (graphlets) and
// computes graphlet frequency distributions (GFDs).
//
// MIDAS classifies a batch update to a graph corpus as minor or major by the
// Euclidean distance between the corpus's GFD before and after the update;
// this package supplies that machinery. The census covers the eight
// connected graphlets on 3 and 4 nodes:
//
//	k=3: wedge (path), triangle
//	k=4: path, claw (3-star), cycle, paw (tailed triangle), diamond, clique
//
// Enumeration uses the ESU (FANMOD) algorithm, which visits every connected
// induced k-subgraph exactly once; classification is by within-subgraph
// degree sequence, which is unique over these types.
package graphlet

import (
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/par"
)

// Type enumerates the eight connected graphlet types on 3-4 nodes.
type Type int

// Graphlet types, in the fixed order used by Vector and Distribution.
const (
	Wedge Type = iota // 3 nodes, 2 edges
	Triangle
	Path4 // 4 nodes, 3 edges, degrees 1,1,2,2
	Claw  // 4 nodes, 3 edges, degrees 1,1,1,3
	Cycle4
	Paw // triangle with a pendant edge
	Diamond
	Clique4
	// NumTypes is the number of graphlet types.
	NumTypes
)

var typeNames = [NumTypes]string{
	"wedge", "triangle", "path4", "claw", "cycle4", "paw", "diamond", "clique4",
}

// String returns the graphlet type name.
func (t Type) String() string {
	if t < 0 || t >= NumTypes {
		return fmt.Sprintf("Type(%d)", int(t))
	}
	return typeNames[t]
}

// Vector is a graphlet count vector in the fixed type order.
type Vector [NumTypes]float64

// Add accumulates o into v.
func (v *Vector) Add(o Vector) {
	for i := range v {
		v[i] += o[i]
	}
}

// Total returns the sum of all counts.
func (v Vector) Total() float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// Normalize returns the vector scaled to sum 1, or the zero vector if the
// total is zero.
func (v Vector) Normalize() Vector {
	t := v.Total()
	if t == 0 {
		return Vector{}
	}
	var out Vector
	for i, x := range v {
		out[i] = x / t
	}
	return out
}

// EuclideanDistance returns the L2 distance between two vectors.
func EuclideanDistance(a, b Vector) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Count returns the graphlet count vector of g (induced, connected, 3- and
// 4-node graphlets). Counting is combinatorial (see CountCSR); the ESU
// enumeration path survives as CountEnum and is cross-checked against this
// one by property tests.
func Count(g *graph.Graph) Vector {
	return CountCSR(g.Snapshot())
}

// CountEnum is the ESU-enumeration reference implementation of Count: it
// visits every connected induced 3- and 4-subgraph and classifies it by
// degree sequence. Kept as the ground truth for property tests and
// benchmarks; use Count on hot paths.
func CountEnum(g *graph.Graph) Vector {
	var v Vector
	enumerate(g, 3, func(sub []graph.NodeID) {
		v[classify3(g, sub)]++
	})
	enumerate(g, 4, func(sub []graph.NodeID) {
		v[classify4(g, sub)]++
	})
	return v
}

// CorpusGFD returns the normalized graphlet frequency distribution
// aggregated over every graph in the corpus. Equivalent to CorpusGFDN with
// workers = GOMAXPROCS.
func CorpusGFD(c *graph.Corpus) Vector {
	return CorpusGFDN(c, 0)
}

// corpusGrain is the minimum per-worker graph count before corpus-level
// fan-out pays: combinatorial per-graph counts are cheap enough that small
// corpora (the 0.89× CorpusGFD regression in BENCH_parallel.json) are
// faster inline.
const corpusGrain = 4

// CorpusGFDN is CorpusGFD with an explicit worker count: per-graph counts
// fan out on the shared pool (grain-capped, so small corpora run inline),
// then the slot-indexed vectors are folded sequentially in corpus order.
// Counts are integers, so the aggregate is identical at any worker count.
func CorpusGFDN(c *graph.Corpus, workers int) Vector {
	vecs := par.Map(c.Len(), par.Grain(workers, c.Len(), corpusGrain), func(i int) Vector {
		return Count(c.Graph(i))
	})
	var total Vector
	for _, v := range vecs {
		total.Add(v)
	}
	return total.Normalize()
}

// classify3 distinguishes wedge from triangle by edge count.
func classify3(g *graph.Graph, sub []graph.NodeID) Type {
	if g.HasEdge(sub[0], sub[1]) && g.HasEdge(sub[1], sub[2]) && g.HasEdge(sub[0], sub[2]) {
		return Triangle
	}
	return Wedge
}

// classify4 distinguishes the six connected 4-node graphlets by edge count
// and maximum within-subgraph degree.
func classify4(g *graph.Graph, sub []graph.NodeID) Type {
	edges := 0
	var deg [4]int
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if g.HasEdge(sub[i], sub[j]) {
				edges++
				deg[i]++
				deg[j]++
			}
		}
	}
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	switch edges {
	case 3:
		if maxDeg == 3 {
			return Claw
		}
		return Path4
	case 4:
		if maxDeg == 3 {
			return Paw
		}
		return Cycle4
	case 5:
		return Diamond
	case 6:
		return Clique4
	}
	// Unreachable for connected induced subgraphs of size 4.
	panic(fmt.Sprintf("graphlet: connected 4-subgraph with %d edges", edges))
}

// enumerate runs ESU: fn is called once for every connected induced
// k-subgraph of g, with the node set in discovery order.
func enumerate(g *graph.Graph, k int, fn func(sub []graph.NodeID)) {
	enumerateRoots(g, k, 0, g.NumNodes(), fn)
}

// enumerateRoots runs ESU restricted to root nodes in [lo, hi). Every
// connected induced k-subgraph has exactly one ESU root (its minimum node),
// so partitioning the root range partitions the enumeration — the basis for
// the parallel census. All traversal state is local to the call.
func enumerateRoots(g *graph.Graph, k, lo, hi int, fn func(sub []graph.NodeID)) {
	n := g.NumNodes()
	if k <= 0 || n < k {
		return
	}
	sub := make([]graph.NodeID, 0, k)
	inSub := make([]bool, n)
	var extend func(ext []graph.NodeID, root graph.NodeID)
	extend = func(ext []graph.NodeID, root graph.NodeID) {
		if len(sub) == k {
			fn(sub)
			return
		}
		for i := 0; i < len(ext); i++ {
			w := ext[i]
			// The recursive extension set is (ext minus w and everything
			// tried before it) plus the exclusive neighbors of w: neighbors
			// greater than root that are not adjacent to any node already
			// in the subgraph. Exclusivity is what guarantees each
			// connected induced k-set is generated exactly once.
			next := make([]graph.NodeID, 0, len(ext)-i-1+g.Degree(w))
			next = append(next, ext[i+1:]...)
			g.VisitNeighbors(w, func(nbr graph.NodeID, _ graph.EdgeID) bool {
				if nbr > root && !inSub[nbr] {
					for _, s := range sub {
						if g.HasEdge(nbr, s) {
							return true
						}
					}
					next = append(next, nbr)
				}
				return true
			})
			sub = append(sub, w)
			inSub[w] = true
			extend(next, root)
			inSub[w] = false
			sub = sub[:len(sub)-1]
		}
	}
	for v := lo; v < hi; v++ {
		var ext []graph.NodeID
		g.VisitNeighbors(v, func(nbr graph.NodeID, _ graph.EdgeID) bool {
			if nbr > v {
				ext = append(ext, nbr)
			}
			return true
		})
		sub = append(sub[:0], v)
		inSub[v] = true
		extend(ext, v)
		inSub[v] = false
		sub = sub[:0]
	}
}
