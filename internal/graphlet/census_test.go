package graphlet

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestCensusMatchesFixedVector(t *testing.T) {
	// The 3- and 4-censuses must agree in total with the fixed Count
	// vector on random graphs, and the number of distinct 4-shapes must
	// match the nonzero 4-type counts.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		n := 5 + rng.Intn(7)
		g := graph.New("r")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		v := Count(g)
		c3 := Census(g, 3)
		c4 := Census(g, 4)
		total3, total4 := 0.0, 0.0
		for _, x := range c3 {
			total3 += x
		}
		for _, x := range c4 {
			total4 += x
		}
		if total3 != v[Wedge]+v[Triangle] {
			t.Fatalf("3-census total %v vs vector %v", total3, v[Wedge]+v[Triangle])
		}
		want4 := v[Path4] + v[Claw] + v[Cycle4] + v[Paw] + v[Diamond] + v[Clique4]
		if total4 != want4 {
			t.Fatalf("4-census total %v vs vector %v", total4, want4)
		}
		types4 := 0
		for _, ty := range []Type{Path4, Claw, Cycle4, Paw, Diamond, Clique4} {
			if v[ty] > 0 {
				types4++
			}
		}
		if len(c4) != types4 {
			t.Fatalf("distinct 4-shapes %d vs nonzero types %d", len(c4), types4)
		}
	}
}

func TestCensusFiveNode(t *testing.T) {
	// C5 has exactly one connected induced 5-subgraph: itself.
	c5 := cycle(5)
	census := Census(c5, 5)
	if len(census) != 1 {
		t.Fatalf("C5 5-census = %v", census)
	}
	for _, v := range census {
		if v != 1 {
			t.Fatalf("C5 5-census count = %v", v)
		}
	}
	// K5: one shape (the clique), one occurrence.
	k5 := clique(5)
	ck := Census(k5, 5)
	if len(ck) != 1 {
		t.Fatalf("K5 5-census = %v", ck)
	}
	// C5 and K5 have different shapes.
	for k := range census {
		if _, same := ck[k]; same {
			t.Fatal("C5 and K5 shapes collide")
		}
	}
	// Unsupported k.
	if len(Census(c5, 6)) != 0 || len(Census(c5, 2)) != 0 {
		t.Fatal("unsupported k must return empty")
	}
}

func TestCensusLabelBlind(t *testing.T) {
	a := cycle(4)
	b := cycle(4)
	for v := 0; v < 4; v++ {
		b.SetNodeLabel(v, "X")
	}
	ca, cb := Census(a, 4), Census(b, 4)
	if len(ca) != 1 || len(cb) != 1 {
		t.Fatalf("censuses %v / %v", ca, cb)
	}
	for k := range ca {
		if cb[k] != ca[k] {
			t.Fatal("census must ignore labels")
		}
	}
}

func TestCensusDistance(t *testing.T) {
	a := map[string]float64{"x": 1}
	b := map[string]float64{"y": 1}
	if d := CensusDistance(a, b); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("distance = %v", d)
	}
	if CensusDistance(a, a) != 0 {
		t.Fatal("self distance")
	}
	if CensusDistance(nil, nil) != 0 {
		t.Fatal("empty distance")
	}
}

func TestCorpusCensusNormalized(t *testing.T) {
	c := graph.NewCorpus()
	g1 := cycle(5)
	g1.SetName("a")
	c.MustAdd(g1)
	g2 := clique(5)
	g2.SetName("b")
	c.MustAdd(g2)
	cc := CorpusCensus(c, 4)
	total := 0.0
	for _, v := range cc {
		total += v
	}
	if math.Abs(total-1) > 1e-12 {
		t.Fatalf("normalized total = %v", total)
	}
	if len(NormalizeCensus(nil)) != 0 {
		t.Fatal("empty normalize")
	}
}
