package graphlet

// Generalized census: the fixed 8-type vector of graphlet.Count covers 3-
// and 4-node graphlets, which is what MIDAS's trigger uses. For finer
// distribution analysis (e.g. telling near-cliques from dense bipartite
// regions) a 5-node census helps; rather than hard-coding the 21 connected
// 5-node types, Census keys counts by the canonical form of the induced
// (label-blind) subgraph, which works for any k the ESU enumeration can
// afford.

import (
	"math"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/par"
)

// Census counts connected induced k-subgraphs of g, keyed by the
// label-blind canonical form of each shape. Supported k: 3, 4, 5 (cost
// grows steeply with k and density). Equivalent to CensusN with
// workers = GOMAXPROCS.
func Census(g *graph.Graph, k int) map[string]float64 {
	return CensusN(g, k, 0)
}

// shapeKeys maps each 3/4-node graphlet type to the canonical-form key the
// enumeration census produces for that shape: the label-blind prototype of
// the type, canonicalized once at init. This is what lets the combinatorial
// census emit byte-identical keys without touching canon on the hot path.
var shapeKeys = func() [NumTypes]string {
	protos := [NumTypes][][2]int{
		Wedge:    {{0, 1}, {1, 2}},
		Triangle: {{0, 1}, {1, 2}, {0, 2}},
		Path4:    {{0, 1}, {1, 2}, {2, 3}},
		Claw:     {{0, 1}, {0, 2}, {0, 3}},
		Cycle4:   {{0, 1}, {1, 2}, {2, 3}, {0, 3}},
		Paw:      {{0, 1}, {1, 2}, {0, 2}, {2, 3}},
		Diamond:  {{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}},
		Clique4:  {{0, 1}, {1, 2}, {0, 2}, {0, 3}, {1, 3}, {2, 3}},
	}
	var keys [NumTypes]string
	for t, edges := range protos {
		n := 3
		if Type(t) >= Path4 {
			n = 4
		}
		p := graph.New("proto")
		p.AddNodes(n, "")
		for _, e := range edges {
			p.MustAddEdge(e[0], e[1], "")
		}
		keys[t] = canon.String(p)
	}
	return keys
}()

// CensusN is Census with an explicit worker count. For k=3 and k=4 the
// census is just the combinatorial count vector relabeled with canonical
// keys — no enumeration at all. k=5 enumerates with ESU: the root range is
// split into contiguous chunks, each counted into a private partial map,
// and the partials are merged sequentially in chunk order — integer
// counts, so the result is identical at any worker count.
func CensusN(g *graph.Graph, k, workers int) map[string]float64 {
	out := make(map[string]float64)
	switch {
	case k == 3 || k == 4:
		v := Count(g)
		lo, hi := Wedge, Triangle
		if k == 4 {
			lo, hi = Path4, Clique4
		}
		for t := lo; t <= hi; t++ {
			if v[t] != 0 {
				out[shapeKeys[t]] = v[t]
			}
		}
		return out
	case k != 5:
		return out
	}
	n := g.NumNodes()
	w := par.Workers(workers, n)
	if w == 1 {
		enumerate(g, k, func(sub []graph.NodeID) {
			shape, _ := g.InducedSubgraph(sub)
			blind(shape)
			out[canon.String(shape)]++
		})
		return out
	}
	chunk := (n + w - 1) / w
	parts := par.Map(w, w, func(ci int) map[string]float64 {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		part := make(map[string]float64)
		if lo < hi {
			enumerateRoots(g, k, lo, hi, func(sub []graph.NodeID) {
				shape, _ := g.InducedSubgraph(sub)
				blind(shape)
				part[canon.String(shape)]++
			})
		}
		return part
	})
	for _, part := range parts {
		for key, v := range part {
			out[key] += v
		}
	}
	return out
}

// CensusEnum is the full ESU-enumeration census for any supported k (3-5),
// the pre-combinatorial implementation. Kept as the ground truth the
// property tests compare CensusN against, and as the benchmark baseline.
// Equivalent to CensusEnumN with workers = GOMAXPROCS.
func CensusEnum(g *graph.Graph, k int) map[string]float64 {
	return CensusEnumN(g, k, 0)
}

// CensusEnumN is CensusEnum with an explicit worker count; see CensusN for
// the chunking scheme.
func CensusEnumN(g *graph.Graph, k, workers int) map[string]float64 {
	out := make(map[string]float64)
	if k < 3 || k > 5 {
		return out
	}
	n := g.NumNodes()
	w := par.Workers(workers, n)
	if w == 1 {
		enumerate(g, k, func(sub []graph.NodeID) {
			shape, _ := g.InducedSubgraph(sub)
			blind(shape)
			out[canon.String(shape)]++
		})
		return out
	}
	chunk := (n + w - 1) / w
	parts := par.Map(w, w, func(ci int) map[string]float64 {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		part := make(map[string]float64)
		if lo < hi {
			enumerateRoots(g, k, lo, hi, func(sub []graph.NodeID) {
				shape, _ := g.InducedSubgraph(sub)
				blind(shape)
				part[canon.String(shape)]++
			})
		}
		return part
	})
	for _, part := range parts {
		for key, v := range part {
			out[key] += v
		}
	}
	return out
}

// blind strips labels in place.
func blind(g *graph.Graph) {
	for v := 0; v < g.NumNodes(); v++ {
		g.SetNodeLabel(v, "")
	}
	for e := 0; e < g.NumEdges(); e++ {
		g.SetEdgeLabel(e, "")
	}
}

// NormalizeCensus scales a census to sum 1 (empty input stays empty).
func NormalizeCensus(c map[string]float64) map[string]float64 {
	total := 0.0
	for _, v := range c {
		total += v
	}
	if total == 0 {
		return map[string]float64{}
	}
	out := make(map[string]float64, len(c))
	for k, v := range c {
		out[k] = v / total
	}
	return out
}

// CensusDistance is the Euclidean distance between two (sparse) censuses
// over the union of their keys.
func CensusDistance(a, b map[string]float64) float64 {
	s := 0.0
	for k, va := range a {
		d := va - b[k]
		s += d * d
	}
	for k, vb := range b {
		if _, seen := a[k]; !seen {
			s += vb * vb
		}
	}
	return math.Sqrt(s)
}

// CorpusCensus aggregates the normalized k-census over a corpus.
// Equivalent to CorpusCensusN with workers = GOMAXPROCS.
func CorpusCensus(c *graph.Corpus, k int) map[string]float64 {
	return CorpusCensusN(c, k, 0)
}

// CorpusCensusN is CorpusCensus with an explicit worker count: the fan-out
// is per graph (each census sequential within its task, grain-capped so
// small corpora run inline), merged in corpus order.
func CorpusCensusN(c *graph.Corpus, k, workers int) map[string]float64 {
	parts := par.Map(c.Len(), par.Grain(workers, c.Len(), corpusGrain), func(i int) map[string]float64 {
		return CensusN(c.Graph(i), k, 1)
	})
	total := make(map[string]float64)
	for _, part := range parts {
		for key, v := range part {
			total[key] += v
		}
	}
	return NormalizeCensus(total)
}
