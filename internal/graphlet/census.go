package graphlet

// Generalized census: the fixed 8-type vector of graphlet.Count covers 3-
// and 4-node graphlets, which is what MIDAS's trigger uses. For finer
// distribution analysis (e.g. telling near-cliques from dense bipartite
// regions) a 5-node census helps; rather than hard-coding the 21 connected
// 5-node types, Census keys counts by the canonical form of the induced
// (label-blind) subgraph, which works for any k the ESU enumeration can
// afford.

import (
	"math"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/par"
)

// Census counts connected induced k-subgraphs of g, keyed by the
// label-blind canonical form of each shape. Supported k: 3, 4, 5 (cost
// grows steeply with k and density). Equivalent to CensusN with
// workers = GOMAXPROCS.
func Census(g *graph.Graph, k int) map[string]float64 {
	return CensusN(g, k, 0)
}

// CensusN is Census with an explicit worker count. The ESU root range is
// split into contiguous chunks, each enumerated into a private partial
// count map, and the partials are merged sequentially in chunk order —
// integer counts, so the result is identical at any worker count.
func CensusN(g *graph.Graph, k, workers int) map[string]float64 {
	out := make(map[string]float64)
	if k < 3 || k > 5 {
		return out
	}
	n := g.NumNodes()
	w := par.Workers(workers, n)
	if w == 1 {
		enumerate(g, k, func(sub []graph.NodeID) {
			shape, _ := g.InducedSubgraph(sub)
			blind(shape)
			out[canon.String(shape)]++
		})
		return out
	}
	chunk := (n + w - 1) / w
	parts := par.Map(w, w, func(ci int) map[string]float64 {
		lo := ci * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		part := make(map[string]float64)
		if lo < hi {
			enumerateRoots(g, k, lo, hi, func(sub []graph.NodeID) {
				shape, _ := g.InducedSubgraph(sub)
				blind(shape)
				part[canon.String(shape)]++
			})
		}
		return part
	})
	for _, part := range parts {
		for key, v := range part {
			out[key] += v
		}
	}
	return out
}

// blind strips labels in place.
func blind(g *graph.Graph) {
	for v := 0; v < g.NumNodes(); v++ {
		g.SetNodeLabel(v, "")
	}
	for e := 0; e < g.NumEdges(); e++ {
		g.SetEdgeLabel(e, "")
	}
}

// NormalizeCensus scales a census to sum 1 (empty input stays empty).
func NormalizeCensus(c map[string]float64) map[string]float64 {
	total := 0.0
	for _, v := range c {
		total += v
	}
	if total == 0 {
		return map[string]float64{}
	}
	out := make(map[string]float64, len(c))
	for k, v := range c {
		out[k] = v / total
	}
	return out
}

// CensusDistance is the Euclidean distance between two (sparse) censuses
// over the union of their keys.
func CensusDistance(a, b map[string]float64) float64 {
	s := 0.0
	for k, va := range a {
		d := va - b[k]
		s += d * d
	}
	for k, vb := range b {
		if _, seen := a[k]; !seen {
			s += vb * vb
		}
	}
	return math.Sqrt(s)
}

// CorpusCensus aggregates the normalized k-census over a corpus.
// Equivalent to CorpusCensusN with workers = GOMAXPROCS.
func CorpusCensus(c *graph.Corpus, k int) map[string]float64 {
	return CorpusCensusN(c, k, 0)
}

// CorpusCensusN is CorpusCensus with an explicit worker count: the fan-out
// is per graph (each census sequential within its task), merged in corpus
// order.
func CorpusCensusN(c *graph.Corpus, k, workers int) map[string]float64 {
	parts := par.Map(c.Len(), workers, func(i int) map[string]float64 {
		return CensusN(c.Graph(i), k, 1)
	})
	total := make(map[string]float64)
	for _, part := range parts {
		for key, v := range part {
			total[key] += v
		}
	}
	return NormalizeCensus(total)
}
