package graphlet

// Generalized census: the fixed 8-type vector of graphlet.Count covers 3-
// and 4-node graphlets, which is what MIDAS's trigger uses. For finer
// distribution analysis (e.g. telling near-cliques from dense bipartite
// regions) a 5-node census helps; rather than hard-coding the 21 connected
// 5-node types, Census keys counts by the canonical form of the induced
// (label-blind) subgraph, which works for any k the ESU enumeration can
// afford.

import (
	"math"

	"repro/internal/canon"
	"repro/internal/graph"
)

// Census counts connected induced k-subgraphs of g, keyed by the
// label-blind canonical form of each shape. Supported k: 3, 4, 5 (cost
// grows steeply with k and density).
func Census(g *graph.Graph, k int) map[string]float64 {
	out := make(map[string]float64)
	if k < 3 || k > 5 {
		return out
	}
	// cache maps a cheap shape signature (within-subgraph degree sequence
	// + edge count) to canonical strings where unique, avoiding repeated
	// canonicalization; ambiguous signatures fall through to canon.
	enumerate(g, k, func(sub []graph.NodeID) {
		shape, _ := g.InducedSubgraph(sub)
		blind(shape)
		out[canon.String(shape)]++
	})
	return out
}

// blind strips labels in place.
func blind(g *graph.Graph) {
	for v := 0; v < g.NumNodes(); v++ {
		g.SetNodeLabel(v, "")
	}
	for e := 0; e < g.NumEdges(); e++ {
		g.SetEdgeLabel(e, "")
	}
}

// NormalizeCensus scales a census to sum 1 (empty input stays empty).
func NormalizeCensus(c map[string]float64) map[string]float64 {
	total := 0.0
	for _, v := range c {
		total += v
	}
	if total == 0 {
		return map[string]float64{}
	}
	out := make(map[string]float64, len(c))
	for k, v := range c {
		out[k] = v / total
	}
	return out
}

// CensusDistance is the Euclidean distance between two (sparse) censuses
// over the union of their keys.
func CensusDistance(a, b map[string]float64) float64 {
	s := 0.0
	for k, va := range a {
		d := va - b[k]
		s += d * d
	}
	for k, vb := range b {
		if _, seen := a[k]; !seen {
			s += vb * vb
		}
	}
	return math.Sqrt(s)
}

// CorpusCensus aggregates the normalized k-census over a corpus.
func CorpusCensus(c *graph.Corpus, k int) map[string]float64 {
	total := make(map[string]float64)
	c.Each(func(_ int, g *graph.Graph) {
		for key, v := range Census(g, k) {
			total[key] += v
		}
	})
	return NormalizeCensus(total)
}
