package graphlet

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func cycle(n int) *graph.Graph {
	g := graph.New("c")
	g.AddNodes(n, "A")
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, "-")
	}
	return g
}

func path(n int) *graph.Graph {
	g := graph.New("p")
	g.AddNodes(n, "A")
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, "-")
	}
	return g
}

func clique(n int) *graph.Graph {
	g := graph.New("k")
	g.AddNodes(n, "A")
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, "-")
		}
	}
	return g
}

func star(leaves int) *graph.Graph {
	g := graph.New("s")
	c := g.AddNode("A")
	for i := 0; i < leaves; i++ {
		l := g.AddNode("A")
		g.MustAddEdge(c, l, "-")
	}
	return g
}

func TestCountKnownShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want Vector
	}{
		{"triangle", cycle(3), Vector{Triangle: 1}},
		{"path3", path(3), Vector{Wedge: 1}},
		{"path4", path(4), Vector{Wedge: 2, Path4: 1}},
		{"C4", cycle(4), Vector{Wedge: 4, Cycle4: 1}},
		{"C5", cycle(5), Vector{Wedge: 5, Path4: 5}},
		{"claw", star(3), Vector{Wedge: 3, Claw: 1}},
		// Counts are for *induced* graphlets: K4 contains no induced wedge
		// (every triple induces a triangle).
		{"K4", clique(4), Vector{Triangle: 4, Clique4: 1}},
		// Paw: triangle 0-1-2 plus pendant 3 on node 2. Induced wedges are
		// {0,2,3} and {1,2,3}.
		{"paw", pawGraph(), Vector{Wedge: 2, Triangle: 1, Paw: 1}},
		// Diamond: K4 minus edge (0,3).
		{"diamond", diamondGraph(), Vector{Wedge: 2, Triangle: 2, Diamond: 1}},
	}
	for _, tc := range cases {
		if got := Count(tc.g); got != tc.want {
			t.Errorf("%s: Count = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func pawGraph() *graph.Graph {
	g := cycle(3)
	p := g.AddNode("A")
	g.MustAddEdge(2, p, "-")
	return g
}

func diamondGraph() *graph.Graph {
	g := graph.New("d")
	g.AddNodes(4, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(0, 2, "-")
	g.MustAddEdge(1, 2, "-")
	g.MustAddEdge(1, 3, "-")
	g.MustAddEdge(2, 3, "-")
	return g
}

// bruteCount enumerates all 3- and 4-node subsets directly.
func bruteCount(g *graph.Graph) Vector {
	var v Vector
	n := g.NumNodes()
	connected := func(sub []graph.NodeID) bool {
		s, _ := g.InducedSubgraph(sub)
		return s.IsConnected() && s.NumNodes() == len(sub)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				sub := []graph.NodeID{i, j, k}
				if connected(sub) {
					v[classify3(g, sub)]++
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			for k := j + 1; k < n; k++ {
				for l := k + 1; l < n; l++ {
					sub := []graph.NodeID{i, j, k, l}
					if connected(sub) {
						v[classify4(g, sub)]++
					}
				}
			}
		}
	}
	return v
}

func TestCountMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(9)
		g := graph.New("r")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		if got, want := Count(g), bruteCount(g); got != want {
			t.Fatalf("trial %d: Count=%v brute=%v\n%s", trial, got, want, g.Dump())
		}
	}
}

func TestVectorOps(t *testing.T) {
	a := Vector{1, 2, 3, 0, 0, 0, 0, 0}
	b := Vector{1, 0, 1, 0, 0, 0, 0, 0}
	a.Add(b)
	if a != (Vector{2, 2, 4, 0, 0, 0, 0, 0}) {
		t.Fatalf("Add = %v", a)
	}
	if a.Total() != 8 {
		t.Fatalf("Total = %v", a.Total())
	}
	n := a.Normalize()
	if math.Abs(n.Total()-1) > 1e-12 {
		t.Fatalf("Normalize total = %v", n.Total())
	}
	if (Vector{}).Normalize() != (Vector{}) {
		t.Fatal("zero vector normalize must stay zero")
	}
}

func TestEuclideanDistance(t *testing.T) {
	a := Vector{1, 0, 0, 0, 0, 0, 0, 0}
	b := Vector{0, 1, 0, 0, 0, 0, 0, 0}
	if d := EuclideanDistance(a, b); math.Abs(d-math.Sqrt2) > 1e-12 {
		t.Fatalf("distance = %v", d)
	}
	if EuclideanDistance(a, a) != 0 {
		t.Fatal("self distance must be 0")
	}
}

func TestCorpusGFD(t *testing.T) {
	c := graph.NewCorpus()
	t1 := cycle(3)
	t1.SetName("t1")
	c.MustAdd(t1)
	p := path(3)
	p.SetName("p1")
	c.MustAdd(p)
	gfd := CorpusGFD(c)
	// One triangle + one wedge → 0.5 / 0.5.
	if gfd[Triangle] != 0.5 || gfd[Wedge] != 0.5 {
		t.Fatalf("GFD = %v", gfd)
	}
	if CorpusGFD(graph.NewCorpus()) != (Vector{}) {
		t.Fatal("empty corpus GFD must be zero")
	}
}

func TestGFDSensitivity(t *testing.T) {
	// Adding triangle-rich graphs must move the GFD toward Triangle; this
	// is the signal MIDAS thresholds on.
	c := graph.NewCorpus()
	for i := 0; i < 10; i++ {
		g := path(5)
		g.SetName(names("p", i))
		c.MustAdd(g)
	}
	before := CorpusGFD(c)
	for i := 0; i < 10; i++ {
		g := clique(4)
		g.SetName(names("k", i))
		c.MustAdd(g)
	}
	after := CorpusGFD(c)
	if after[Triangle] <= before[Triangle] {
		t.Fatal("triangle fraction must rise")
	}
	if EuclideanDistance(before, after) <= 0 {
		t.Fatal("distance must be positive")
	}
}

func names(prefix string, i int) string {
	return prefix + string(rune('a'+i))
}

func TestTypeString(t *testing.T) {
	if Triangle.String() != "triangle" || Clique4.String() != "clique4" {
		t.Fatal("type names wrong")
	}
	if Type(99).String() != "Type(99)" {
		t.Fatal("out-of-range type name")
	}
}

// TestPropertyESUCountsTotal checks that the number of enumerated 3-sets
// equals the brute-force count of connected triples on random graphs.
func TestPropertyESUCountsTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(9)
		g := graph.New("q")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		got, want := Count(g), bruteCount(g)
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkCountMediumGraph(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.New("m")
	g.AddNodes(60, "A")
	for i := 0; i < 60; i++ {
		for j := i + 1; j < 60; j++ {
			if rng.Float64() < 0.08 {
				g.MustAddEdge(i, j, "-")
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Count(g)
	}
}
