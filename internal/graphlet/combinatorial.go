package graphlet

// Combinatorial (closed-formula) graphlet counting over CSR snapshots,
// replacing ESU enumeration of every connected 3- and 4-subset on the hot
// path. The approach is the ESCAPE / PGD one: count triangles per edge by
// sorted-adjacency merge intersection, count 4-cliques locally inside
// common neighborhoods, count 4-cycles from codegrees, and derive every
// remaining non-induced 4-pattern count from degree and triangle
// statistics in O(n + m). Induced counts then follow from the fixed
// inclusion–exclusion system between the six connected 4-node types.
//
// Cost: O(m · d_max) for triangles, O(Σ_v d_v²) for 4-cycles, and
// O(Σ_e t_e · d) for 4-cliques — orders of magnitude below the ~n · d³
// subgraph visits ESU pays on the same graph, and entirely allocation-free
// after the snapshot is built.

import "repro/internal/graph"

// CountCSR computes the 3- and 4-node graphlet vector of a snapshot with
// combinatorial counting. Callers that already hold a CSR (one snapshot,
// many kernels) should prefer this over Count to avoid rebuilding it.
func CountCSR(cs *graph.CSR) Vector {
	var v Vector
	n, m := cs.NumNodes(), cs.NumEdges()
	if n == 0 {
		return v
	}
	d := make([]int64, n)
	for u := 0; u < n; u++ {
		d[u] = int64(cs.Degree(u))
	}

	// Triangles per edge via merge intersection of the sorted rows; each
	// triangle is seen once per incident edge, so Σ tE = 3T.
	tE := make([]int64, m)
	var triples int64
	for e := 0; e < m; e++ {
		u, w := cs.EdgeEndpoints(e)
		c := int64(cs.CommonCount(int(u), int(w)))
		tE[e] = c
		triples += c
	}
	T := triples / 3

	// Triangles per vertex: every triangle at v contributes to exactly two
	// of v's incident edges.
	tV := make([]int64, n)
	for u := 0; u < n; u++ {
		_, eids := cs.NeighborEdges(u)
		s := int64(0)
		for _, e := range eids {
			s += tE[e]
		}
		tV[u] = s / 2
	}

	// Degree-only aggregates: 2-paths (wedges) and 3-stars.
	var wedges2, stars3 int64
	for u := 0; u < n; u++ {
		du := d[u]
		wedges2 += du * (du - 1) / 2
		stars3 += du * (du - 1) * (du - 2) / 6
	}

	// Non-induced 3-paths: middle-edge counting, minus the 3 closed walks
	// each triangle contributes.
	var nPath int64
	for e := 0; e < m; e++ {
		u, w := cs.EdgeEndpoints(e)
		nPath += (d[u] - 1) * (d[w] - 1)
	}
	nPath -= 3 * T

	// Non-induced 4-cycles from codegrees: Σ_{u<v} C(codeg(u,v), 2) counts
	// every 4-cycle once per diagonal pair, i.e. exactly twice. The
	// codegree sweep touches each two-hop pair through a flat counter.
	var cycleAcc int64
	cnt := make([]int32, n)
	touched := make([]int32, 0, 64)
	for u := 0; u < n; u++ {
		for _, w := range cs.Neighbors(u) {
			for _, x := range cs.Neighbors(int(w)) {
				if x > int32(u) {
					if cnt[x] == 0 {
						touched = append(touched, x)
					}
					cnt[x]++
				}
			}
		}
		for _, x := range touched {
			c := int64(cnt[x])
			cycleAcc += c * (c - 1) / 2
			cnt[x] = 0
		}
		touched = touched[:0]
	}
	nCycle := cycleAcc / 2

	// Non-induced tailed triangles: each triangle vertex can extend along
	// any of its d-2 non-triangle edges.
	var nTailed int64
	for u := 0; u < n; u++ {
		nTailed += tV[u] * (d[u] - 2)
	}

	// Non-induced diamonds: two triangles sharing an edge.
	var nDiamond int64
	for e := 0; e < m; e++ {
		nDiamond += tE[e] * (tE[e] - 1) / 2
	}

	// 4-cliques: for each edge, count adjacent pairs inside its common
	// neighborhood (marked in a stamp array); each K4 is counted once per
	// edge, i.e. six times.
	var k4Acc int64
	mark := make([]bool, n)
	common := make([]int32, 0, 64)
	for e := 0; e < m; e++ {
		u, w := cs.EdgeEndpoints(e)
		if tE[e] < 2 {
			continue
		}
		common = common[:0]
		cs.ForEachCommon(int(u), int(w), func(x, _, _ int32) {
			mark[x] = true
			common = append(common, x)
		})
		for _, x := range common {
			for _, y := range cs.Neighbors(int(x)) {
				if y > x && mark[y] {
					k4Acc++
				}
			}
		}
		for _, x := range common {
			mark[x] = false
		}
	}
	k4 := k4Acc / 6

	// Induced counts via the inclusion–exclusion system between the six
	// connected 4-node types (subgraph multiplicities: paths 4/2/6/12 in
	// cycle/paw/diamond/clique, claws 1/2/4 in paw/diamond/clique, cycles
	// 1/3 in diamond/clique, paws 4/12 in diamond/clique, diamonds 6 in
	// clique).
	dia := nDiamond - 6*k4
	cyc := nCycle - dia - 3*k4
	paw := nTailed - 4*dia - 12*k4
	claw := stars3 - paw - 2*dia - 4*k4
	path := nPath - 4*cyc - 2*paw - 6*dia - 12*k4

	v[Wedge] = float64(wedges2 - 3*T)
	v[Triangle] = float64(T)
	v[Path4] = float64(path)
	v[Claw] = float64(claw)
	v[Cycle4] = float64(cyc)
	v[Paw] = float64(paw)
	v[Diamond] = float64(dia)
	v[Clique4] = float64(k4)
	return v
}
