// Package summary applies canned patterns beyond VQIs, the tutorial's
// final future direction (Section 2.5): because canned patterns have high
// coverage, high diversity, and low cognitive load, they make good
// building blocks for *visualization-friendly graph summaries* — in
// contrast to classical topological summaries, which ignore what humans
// can comfortably read.
//
// The summarizer greedily contracts vertex-disjoint instances of the
// canned patterns into supernodes: each instance becomes one node labeled
// by its pattern, edges between contracted regions collapse into
// superedges, and untouched structure survives as-is. Quality is reported
// as compression (node/edge reduction) and coverage (fraction of original
// edges explained by pattern instances).
package summary

import (
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

// Supernode describes one contracted pattern instance.
type Supernode struct {
	// Pattern is the index (into the input pattern set) of the pattern
	// this supernode contracts.
	Pattern int
	// Members are the original node IDs contracted into this supernode.
	Members []graph.NodeID
}

// Result is a pattern-based graph summary.
type Result struct {
	// Summary is the contracted graph. Supernodes carry the label
	// "pattern:<name>"; surviving original nodes keep their labels.
	Summary *graph.Graph
	// Supernodes lists the contractions, in creation order. Supernode i
	// corresponds to summary node i (original nodes follow).
	Supernodes []Supernode
	// CoveredEdges is the number of original edges inside contracted
	// instances.
	CoveredEdges int
	// NodeReduction and EdgeReduction are 1 - |summary|/|original|.
	NodeReduction float64
	EdgeReduction float64
}

// Options configure summarization.
type Options struct {
	// MaxInstancesPerPattern bounds how many disjoint instances of each
	// pattern are contracted (0 = unlimited).
	MaxInstancesPerPattern int
	// Match bounds the embedding searches (zero value =
	// pattern.MatchOptions with a raised embedding cap).
	Match isomorph.Options
}

// Summarize contracts vertex-disjoint instances of the given patterns in
// g. Patterns are applied in order, so callers should pass them sorted by
// importance (a selection framework's output order already is).
func Summarize(g *graph.Graph, patterns []*pattern.Pattern, opts Options) (*Result, error) {
	if g.NumNodes() == 0 {
		return nil, fmt.Errorf("summary: empty graph")
	}
	match := opts.Match
	if match.IsZero() {
		match = isomorph.Options{MaxEmbeddings: 4096, MaxSteps: 2_000_000}
	}

	used := make([]bool, g.NumNodes())
	var supers []Supernode
	coveredEdge := make([]bool, g.NumEdges())

	for pi, p := range patterns {
		if p.G.NumNodes() == 0 {
			continue
		}
		taken := 0
		// Enumerate embeddings and greedily take vertex-disjoint ones.
		isomorph.Enumerate(p.G, g, match, func(mapping []graph.NodeID) bool {
			for _, v := range mapping {
				if used[v] {
					return true // overlaps an earlier contraction
				}
			}
			members := append([]graph.NodeID(nil), mapping...)
			sort.Ints(members)
			for _, v := range members {
				used[v] = true
			}
			for _, pe := range p.G.Edges() {
				if eid, ok := g.EdgeBetween(mapping[pe.U], mapping[pe.V]); ok {
					coveredEdge[eid] = true
				}
			}
			supers = append(supers, Supernode{Pattern: pi, Members: members})
			taken++
			return opts.MaxInstancesPerPattern == 0 || taken < opts.MaxInstancesPerPattern
		})
	}

	// Build the contracted graph: supernodes first, then surviving nodes.
	sum := graph.New(g.Name() + "#summary")
	nodeMap := make([]graph.NodeID, g.NumNodes())
	for i := range nodeMap {
		nodeMap[i] = -1
	}
	for i, sn := range supers {
		name := patterns[sn.Pattern].G.Name()
		if name == "" {
			name = fmt.Sprintf("p%d", sn.Pattern)
		}
		id := sum.AddNode("pattern:" + name)
		if id != i {
			return nil, fmt.Errorf("summary: internal node ordering broken")
		}
		for _, v := range sn.Members {
			nodeMap[v] = id
		}
	}
	for v := 0; v < g.NumNodes(); v++ {
		if nodeMap[v] < 0 {
			nodeMap[v] = sum.AddNode(g.NodeLabel(v))
		}
	}
	for _, e := range g.Edges() {
		u, v := nodeMap[e.U], nodeMap[e.V]
		if u == v || sum.HasEdge(u, v) {
			continue
		}
		sum.MustAddEdge(u, v, e.Label)
	}

	res := &Result{Summary: sum, Supernodes: supers}
	for _, c := range coveredEdge {
		if c {
			res.CoveredEdges++
		}
	}
	if g.NumNodes() > 0 {
		res.NodeReduction = 1 - float64(sum.NumNodes())/float64(g.NumNodes())
	}
	if g.NumEdges() > 0 {
		res.EdgeReduction = 1 - float64(sum.NumEdges())/float64(g.NumEdges())
	}
	return res, nil
}

// Coverage returns the fraction of original edges inside contracted
// instances.
func (r *Result) Coverage(original *graph.Graph) float64 {
	if original.NumEdges() == 0 {
		return 0
	}
	return float64(r.CoveredEdges) / float64(original.NumEdges())
}
