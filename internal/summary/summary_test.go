package summary

import (
	"math"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/tattoo"
)

func trianglePattern() *pattern.Pattern {
	g := graph.New("triangle")
	g.AddNodes(3, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	g.MustAddEdge(0, 2, "-")
	return pattern.New(g, "test")
}

func TestSummarizeTwoTriangles(t *testing.T) {
	// Two disjoint triangles joined by a bridge.
	g := graph.New("g")
	g.AddNodes(6, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	g.MustAddEdge(0, 2, "-")
	g.MustAddEdge(3, 4, "-")
	g.MustAddEdge(4, 5, "-")
	g.MustAddEdge(3, 5, "-")
	g.MustAddEdge(2, 3, "-")

	res, err := Summarize(g, []*pattern.Pattern{trianglePattern()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Supernodes) != 2 {
		t.Fatalf("supernodes = %d, want 2", len(res.Supernodes))
	}
	// Summary: two supernodes + bridge edge between them.
	if res.Summary.NumNodes() != 2 || res.Summary.NumEdges() != 1 {
		t.Fatalf("summary = %s", res.Summary)
	}
	if !strings.HasPrefix(res.Summary.NodeLabel(0), "pattern:") {
		t.Fatalf("supernode label = %q", res.Summary.NodeLabel(0))
	}
	if res.CoveredEdges != 6 {
		t.Fatalf("covered edges = %d", res.CoveredEdges)
	}
	if cov := res.Coverage(g); cov != 6.0/7 {
		t.Fatalf("coverage = %v", cov)
	}
	if math.Abs(res.NodeReduction-(1-2.0/6)) > 1e-12 || math.Abs(res.EdgeReduction-(1-1.0/7)) > 1e-12 {
		t.Fatalf("reductions = %v / %v", res.NodeReduction, res.EdgeReduction)
	}
}

func TestSummarizeDisjointness(t *testing.T) {
	// A K4 contains 4 triangles, but only one vertex-disjoint triangle
	// fits: one supernode plus one leftover node.
	g := graph.New("k4")
	g.AddNodes(4, "A")
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.MustAddEdge(i, j, "-")
		}
	}
	res, err := Summarize(g, []*pattern.Pattern{trianglePattern()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Supernodes) != 1 {
		t.Fatalf("supernodes = %d, want 1", len(res.Supernodes))
	}
	if res.Summary.NumNodes() != 2 || res.Summary.NumEdges() != 1 {
		t.Fatalf("summary = %s", res.Summary)
	}
}

func TestSummarizeNoMatches(t *testing.T) {
	g := graph.New("path")
	g.AddNodes(4, "A")
	for i := 0; i+1 < 4; i++ {
		g.MustAddEdge(i, i+1, "-")
	}
	res, err := Summarize(g, []*pattern.Pattern{trianglePattern()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Supernodes) != 0 || res.Summary.NumNodes() != 4 || res.Summary.NumEdges() != 3 {
		t.Fatalf("no-match summary changed the graph: %s", res.Summary)
	}
	if res.NodeReduction != 0 {
		t.Fatal("no reduction expected")
	}
}

func TestSummarizeInstanceCap(t *testing.T) {
	// Three disjoint triangles; cap at 2 instances.
	g := graph.New("g")
	g.AddNodes(9, "A")
	for k := 0; k < 3; k++ {
		b := 3 * k
		g.MustAddEdge(b, b+1, "-")
		g.MustAddEdge(b+1, b+2, "-")
		g.MustAddEdge(b, b+2, "-")
	}
	res, err := Summarize(g, []*pattern.Pattern{trianglePattern()}, Options{MaxInstancesPerPattern: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Supernodes) != 2 {
		t.Fatalf("supernodes = %d, want 2 (capped)", len(res.Supernodes))
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(graph.New("e"), nil, Options{}); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestSummarizeWithTattooPatterns(t *testing.T) {
	// End-to-end "beyond VQIs" use case: TATTOO's canned patterns
	// summarize the network they were mined from.
	g := datagen.WattsStrogatz(9, 300, 6, 0.1)
	res, err := tattoo.Select(g, tattoo.Config{
		Budget: pattern.Budget{Count: 6, MinSize: 4, MaxSize: 9}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(g, res.Patterns, Options{MaxInstancesPerPattern: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Supernodes) == 0 {
		t.Fatal("no contractions from TATTOO patterns")
	}
	if sum.Summary.NumNodes() >= g.NumNodes() {
		t.Fatalf("no compression: %d vs %d nodes", sum.Summary.NumNodes(), g.NumNodes())
	}
	if sum.Coverage(g) <= 0 {
		t.Fatal("no coverage")
	}
}
