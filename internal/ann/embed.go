package ann

// The embedding provider: one fixed-dimension float32 vector per graph,
// shared by every similarity surface (the LSH index, exact cosine
// re-ranking, benchvqi's recall oracle). It normalizes the two embedding
// families the repository already computes into a single representation:
//
//   - the graphlet census (ESCAPE-style closed formulas, internal/graphlet)
//     — 8 structural frequencies over the connected 3/4-node graphlets;
//   - CATAPULT-style label features — the level-1 frequent-tree features
//     (labeled edge triples) plus the node-label histogram, feature-hashed
//     into fixed-width blocks so the dimension is corpus-independent and a
//     query pattern embeds the same way as a data graph.
//
// Every block is a function of label/graphlet *multisets*, never of vertex
// numbering, so the embedding is canonically invariant: isomorphic graphs
// (any vertex relabeling) embed to the identical vector, which is what lets
// the serving layer cache similarity answers under canonical query keys.
// The final vector is L2-normalized — cosine similarity is the metric
// everywhere downstream.

import (
	"hash/fnv"
	"math"

	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/par"
)

// Block widths and weights of the default embedding layout. The widths are
// fixed (the dimension is part of the index's identity); the weights set
// how much each family contributes to the cosine metric before the global
// normalization.
const (
	labelBuckets  = 20 // node-label histogram, feature-hashed
	tripleBuckets = 32 // labeled edge triples (CATAPULT level-1 tree features)
	numStats      = 4  // log-size / degree shape statistics

	graphletWeight = 1.0
	labelWeight    = 1.0
	tripleWeight   = 1.5 // most discriminative family on labeled corpora
	statsWeight    = 0.5
)

// Embedder maps graphs to fixed-dimension L2-normalized float32 vectors.
// It is stateless and safe for concurrent use; embedding is a pure function
// of the graph, so corpus embeddings are identical at any worker count.
type Embedder struct{}

// NewEmbedder returns the default embedder. All Embedders produce the same
// vectors — the type exists so an index can carry its provider.
func NewEmbedder() *Embedder { return &Embedder{} }

// Dim returns the embedding dimension.
func (e *Embedder) Dim() int {
	return int(graphlet.NumTypes) + labelBuckets + tripleBuckets + numStats
}

// hashSign feature-hashes s: bucket index in [0, buckets) plus a ±1 sign
// (the hashing-trick sign bit, which keeps colliding features from only
// accumulating). FNV-1a, so stable across processes.
func hashSign(s string, buckets int) (int, float64) {
	h := fnv.New64a()
	h.Write([]byte(s))
	v := h.Sum64()
	sign := 1.0
	if v&(1<<63) != 0 {
		sign = -1.0
	}
	return int(v % uint64(buckets)), sign
}

// normalizeBlock scales block to unit L2 norm (no-op for a zero block),
// then multiplies by weight.
func normalizeBlock(block []float64, weight float64) {
	s := 0.0
	for _, x := range block {
		s += x * x
	}
	if s == 0 {
		return
	}
	inv := weight / math.Sqrt(s)
	for i := range block {
		block[i] *= inv
	}
}

// Embed returns g's embedding vector. The zero graph embeds to the zero
// vector.
func (e *Embedder) Embed(g *graph.Graph) []float32 {
	dim := e.Dim()
	out := make([]float32, dim)
	n, m := g.NumNodes(), g.NumEdges()
	if n == 0 {
		return out
	}
	acc := make([]float64, dim)

	// Block 1: graphlet census frequencies.
	census := graphlet.Count(g).Normalize()
	block := acc[:graphlet.NumTypes]
	for i := range census {
		block[i] = census[i]
	}
	normalizeBlock(block, graphletWeight)

	// Block 2: node-label histogram, feature-hashed.
	off := int(graphlet.NumTypes)
	block = acc[off : off+labelBuckets]
	for v := 0; v < n; v++ {
		b, sign := hashSign(g.NodeLabel(v), labelBuckets)
		block[b] += sign
	}
	normalizeBlock(block, labelWeight)

	// Block 3: labeled edge triples (endpoint labels sorted so the feature
	// is orientation-invariant) — the CATAPULT level-1 tree features,
	// feature-hashed to a fixed width.
	off += labelBuckets
	block = acc[off : off+tripleBuckets]
	for ei := 0; ei < m; ei++ {
		edge := g.Edge(ei)
		a, b := g.NodeLabel(edge.U), g.NodeLabel(edge.V)
		if a > b {
			a, b = b, a
		}
		bi, sign := hashSign(a+"\x00"+edge.Label+"\x00"+b, tripleBuckets)
		block[bi] += sign
	}
	normalizeBlock(block, tripleWeight)

	// Block 4: shape statistics — log sizes, mean degree, density. Log and
	// ratio scaling keeps a 40-node graph from dominating an 8-node one.
	off += tripleBuckets
	block = acc[off : off+numStats]
	block[0] = math.Log1p(float64(n))
	block[1] = math.Log1p(float64(m))
	block[2] = 2 * float64(m) / float64(n)
	if n > 1 {
		block[3] = 2 * float64(m) / (float64(n) * float64(n-1))
	}
	normalizeBlock(block, statsWeight)

	// Global L2 normalization: downstream scoring is pure cosine.
	total := 0.0
	for _, x := range acc {
		total += x * x
	}
	if total > 0 {
		inv := 1 / math.Sqrt(total)
		for i, x := range acc {
			out[i] = float32(x * inv)
		}
	}
	return out
}

// embedGrain is the minimum per-worker graph count before corpus-level
// fan-out pays; small corpora embed inline (same reasoning as
// graphlet.CorpusGFDN's grain).
const embedGrain = 8

// EmbedCorpus embeds every graph in c, slot-indexed by corpus position.
// workers <= 0 means GOMAXPROCS; results are identical at any worker count
// because Embed is a pure per-graph function.
func (e *Embedder) EmbedCorpus(c *graph.Corpus, workers int) [][]float32 {
	return par.Map(c.Len(), par.Grain(workers, c.Len(), embedGrain), func(i int) []float32 {
		return e.Embed(c.Graph(i))
	})
}
