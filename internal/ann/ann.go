// Package ann provides sub-linear approximate nearest-neighbor retrieval
// over per-graph embedding vectors: a random-hyperplane (SimHash) LSH
// index with multi-probe lookup, plus the fixed-dimension embedding
// provider that turns a graph into the vector being indexed.
//
// This is the GraphQ trade (PAPERS.md — interactive visual pattern search
// via graph representation learning) applied to this repository's existing
// embeddings: "find graphs like this" answers come from an O(probes)
// candidate shortlist followed by exact cosine scoring, instead of a
// corpus-proportional scan. Exactness is recovered downstream — the
// serving layer re-ranks the shortlist with exact VF2 containment checks —
// so the index only ever changes *which* near neighbors are surfaced,
// never whether a surfaced answer is correct.
//
// Determinism is by construction, the same contract as internal/par:
//
//   - hyperplanes are a pure function of (Config.Seed, plane index) via
//     par.ChildSeed, so index builds are reproducible across processes and
//     worker counts;
//   - per-item signatures are slot-indexed, and bucket membership lists are
//     filled in ascending item order, so the built tables are byte-identical
//     at any worker count;
//   - query results are sorted by (score desc, id asc), so ties break the
//     same way everywhere.
package ann

import (
	"math"
	"slices"
)

// Scored is one retrieved item: its position in the indexed vector set and
// its exact cosine similarity to the query.
type Scored struct {
	ID    int32
	Score float64
}

// Dot returns the float64 dot product of two equal-length float32 vectors.
// Four independent accumulators break the loop-carried dependency chain —
// this is the inner loop of both hashing and scoring. The summation order
// is fixed (lane-striped), so results stay bit-reproducible everywhere.
func Dot(a, b []float32) float64 {
	var s0, s1, s2, s3 float64
	n := len(a) &^ 3
	for i := 0; i < n; i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	s := s0 + s1 + s2 + s3
	for i := n; i < len(a); i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v []float32) float64 {
	s := 0.0
	for _, x := range v {
		s += float64(x) * float64(x)
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b; zero when either vector
// is zero.
func Cosine(a, b []float32) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// ExactTopK is the oracle the approximate path is measured against: exact
// cosine scoring of q against every vector, top-k by (score desc, id asc).
// O(n·dim) — the corpus scan the LSH index exists to avoid.
func ExactTopK(vecs [][]float32, q []float32, k int) []Scored {
	if k <= 0 || len(vecs) == 0 {
		return nil
	}
	scored := make([]Scored, 0, len(vecs))
	for i, v := range vecs {
		scored = append(scored, Scored{ID: int32(i), Score: Cosine(q, v)})
	}
	sortScored(scored)
	if len(scored) > k {
		scored = scored[:k]
	}
	return scored
}

// sortScored orders by score descending, id ascending on ties — the
// package-wide deterministic result order. slices.SortFunc, not
// sort.Slice: this runs on every query's shortlist, where the
// reflection-based swapper showed up as a top profile entry.
func sortScored(s []Scored) {
	slices.SortFunc(s, func(a, b Scored) int {
		switch {
		case a.Score > b.Score:
			return -1
		case a.Score < b.Score:
			return 1
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}
