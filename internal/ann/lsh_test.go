package ann

import (
	"testing"

	"repro/internal/datagen"
)

// testVectors embeds a seeded chemical corpus — the same data family the
// recall acceptance criterion is measured on.
func testVectors(tb testing.TB, seed int64, count int) [][]float32 {
	tb.Helper()
	corpus := datagen.ChemicalCorpus(seed, count, datagen.ChemicalOptions{})
	return NewEmbedder().EmbedCorpus(corpus, 0)
}

// TestBuildWorkerInvariance: the built index (planes, mean, tables) is
// byte-identical at every worker count.
func TestBuildWorkerInvariance(t *testing.T) {
	vecs := testVectors(t, 11, 120)
	dim := NewEmbedder().Dim()
	base := NewConfig()
	base.Workers = 1
	want := Build(vecs, dim, base)
	for _, workers := range []int{2, 3, 8, 0} {
		cfg := NewConfig()
		cfg.Workers = workers
		got := Build(vecs, dim, cfg)
		for p := range want.planes {
			for d := range want.planes[p] {
				if got.planes[p][d] != want.planes[p][d] {
					t.Fatalf("workers=%d: plane %d component %d differs", workers, p, d)
				}
			}
		}
		for d := range want.mean {
			if got.mean[d] != want.mean[d] {
				t.Fatalf("workers=%d: mean component %d differs", workers, d)
			}
		}
		if len(got.tables) != len(want.tables) {
			t.Fatalf("workers=%d: %d tables, want %d", workers, len(got.tables), len(want.tables))
		}
		for ti := range want.tables {
			if len(got.tables[ti]) != len(want.tables[ti]) {
				t.Fatalf("workers=%d: table %d has %d buckets, want %d",
					workers, ti, len(got.tables[ti]), len(want.tables[ti]))
			}
			for sig, ids := range want.tables[ti] {
				gids := got.tables[ti][sig]
				if len(gids) != len(ids) {
					t.Fatalf("workers=%d: table %d bucket %x size differs", workers, ti, sig)
				}
				for i := range ids {
					if gids[i] != ids[i] {
						t.Fatalf("workers=%d: table %d bucket %x order differs", workers, ti, sig)
					}
				}
			}
		}
	}
}

// recallAt10 measures |approx ∩ exact| / |exact| for top-10 self-queries
// over every indexed vector.
func recallAt10(ix *Index, vecs [][]float32, probes int) float64 {
	const k = 10
	hits, want := 0, 0
	for _, q := range vecs {
		exact := ExactTopK(vecs, q, k)
		inExact := make(map[int32]bool, len(exact))
		for _, s := range exact {
			inExact[s.ID] = true
		}
		approx, _ := ix.TopK(q, k, probes)
		for _, s := range approx {
			if inExact[s.ID] {
				hits++
			}
		}
		want += len(exact)
	}
	if want == 0 {
		return 0
	}
	return float64(hits) / float64(want)
}

// TestRecallFloor is the satellite acceptance test: recall@10 ≥ 0.9 on a
// seeded datagen corpus with the default configuration, versus the exact
// cosine scan oracle.
func TestRecallFloor(t *testing.T) {
	vecs := testVectors(t, 42, 300)
	ix := Build(vecs, NewEmbedder().Dim(), NewConfig())
	if r := recallAt10(ix, vecs, 0); r < 0.9 {
		t.Fatalf("recall@10 = %.3f, want >= 0.9 (config %+v)", r, ix.Config())
	}
}

// TestMultiProbeImprovesRecall: more probes must never hurt recall, and a
// single-probe lookup should be measurably worse than the default
// multi-probe setting on a clustered corpus (otherwise the probe sequence
// is not actually reaching neighbor buckets).
func TestMultiProbeImprovesRecall(t *testing.T) {
	vecs := testVectors(t, 13, 200)
	ix := Build(vecs, NewEmbedder().Dim(), NewConfig())
	r1 := recallAt10(ix, vecs, 1)
	rN := recallAt10(ix, vecs, 0)
	if rN < r1 {
		t.Fatalf("multi-probe recall %.3f below single-probe %.3f", rN, r1)
	}
	// Lookup cost must actually reflect the probe budget.
	_, s1 := ix.Candidates(vecs[0], 1)
	_, sN := ix.Candidates(vecs[0], 0)
	if s1.Probed != ix.Config().Tables {
		t.Fatalf("single-probe examined %d buckets, want %d", s1.Probed, ix.Config().Tables)
	}
	if sN.Probed != ix.Config().Tables*ix.Config().Probes {
		t.Fatalf("multi-probe examined %d buckets, want %d",
			sN.Probed, ix.Config().Tables*ix.Config().Probes)
	}
	if sN.Shortlist < s1.Shortlist {
		t.Fatalf("multi-probe shortlist %d smaller than single-probe %d", sN.Shortlist, s1.Shortlist)
	}
}

// TestSelfRetrieval: every indexed vector must retrieve itself as its own
// nearest neighbor (the exact bucket is always probed first).
func TestSelfRetrieval(t *testing.T) {
	vecs := testVectors(t, 17, 150)
	ix := Build(vecs, NewEmbedder().Dim(), NewConfig())
	for i, q := range vecs {
		top, _ := ix.TopK(q, 1, 0)
		if len(top) == 0 {
			t.Fatalf("vector %d: empty result for self-query", i)
		}
		// Duplicates can outrank by ID, but the top score must be ~1.
		if top[0].Score < 0.999 {
			t.Fatalf("vector %d: self-query top score %.4f", i, top[0].Score)
		}
	}
}

func TestEmptyAndEdgeCases(t *testing.T) {
	dim := NewEmbedder().Dim()
	empty := Build(nil, dim, NewConfig())
	if got, stats := empty.TopK(make([]float32, dim), 5, 0); got != nil || stats.Shortlist != 0 {
		t.Fatalf("empty index returned %v / %+v", got, stats)
	}
	vecs := testVectors(t, 19, 20)
	ix := Build(vecs, dim, NewConfig())
	if got, _ := ix.TopK(vecs[0], 0, 0); got != nil {
		t.Fatalf("k=0 returned %v", got)
	}
	if got, _ := ix.TopK(vecs[0], 1000, 0); len(got) > len(vecs) {
		t.Fatalf("k beyond corpus returned %d results", len(got))
	}
	// Zero query vector: must not panic, scores are 0.
	if got, _ := ix.TopK(make([]float32, dim), 3, 0); len(got) > 0 && got[0].Score != 0 {
		t.Fatalf("zero query scored %v", got[0].Score)
	}
}

// TestProbeSequence checks the best-first perturbation order directly: the
// exact signature comes first, buckets are distinct, and the first flip is
// the least-confident bit.
func TestProbeSequence(t *testing.T) {
	margins := []float64{0.9, -0.1, 0.5, -0.02}
	sig := uint64(0b0101) // bits 0 and 2 set
	seq := probeSequence(sig, margins, 6)
	if len(seq) != 6 {
		t.Fatalf("got %d probes, want 6", len(seq))
	}
	if seq[0] != sig {
		t.Fatalf("first probe %b, want exact signature %b", seq[0], sig)
	}
	// Cheapest single flip is bit 3 (|margin| 0.02), then bit 1 (0.1).
	if want := sig ^ (1 << 3); seq[1] != want {
		t.Fatalf("second probe %b, want %b (flip bit 3)", seq[1], want)
	}
	// Costs: flip{3}=0.02, flip{1}=0.10, flip{3,1}=0.12, flip{2}=0.50.
	if want := sig ^ (1 << 1); seq[2] != want {
		t.Fatalf("third probe %b, want %b (flip bit 1)", seq[2], want)
	}
	if want := sig ^ (1 << 3) ^ (1 << 1); seq[3] != want {
		t.Fatalf("fourth probe %b, want %b (flip bits 3+1)", seq[3], want)
	}
	seen := make(map[uint64]bool)
	for _, s := range seq {
		if seen[s] {
			t.Fatalf("duplicate probe %b", s)
		}
		seen[s] = true
	}
}

// TestSignatureRoundTrip: BuildFromSignatures(vecs, Signatures(Build(...)))
// reproduces the built index exactly — same tables, same query answers —
// and rejects structurally invalid signature sets.
func TestSignatureRoundTrip(t *testing.T) {
	vecs := testVectors(t, 19, 90)
	dim := NewEmbedder().Dim()
	for _, cfg := range []Config{NewConfig(), {Tables: 4, Bits: 6, Seed: 3}} {
		built := Build(vecs, dim, cfg)
		sigs := built.Signatures()
		restored, err := BuildFromSignatures(vecs, dim, cfg, sigs)
		if err != nil {
			t.Fatal(err)
		}
		if len(restored.tables) != len(built.tables) {
			t.Fatalf("table count %d, want %d", len(restored.tables), len(built.tables))
		}
		for tt := range built.tables {
			if len(restored.tables[tt]) != len(built.tables[tt]) {
				t.Fatalf("table %d bucket count differs", tt)
			}
			for sig, ids := range built.tables[tt] {
				got := restored.tables[tt][sig]
				if len(got) != len(ids) {
					t.Fatalf("table %d bucket %x differs", tt, sig)
				}
				for i := range ids {
					if got[i] != ids[i] {
						t.Fatalf("table %d bucket %x member %d differs", tt, sig, i)
					}
				}
			}
		}
		for i := 0; i < 10; i++ {
			want, _ := built.TopK(vecs[i], 5, 0)
			got, _ := restored.TopK(vecs[i], 5, 0)
			if len(got) != len(want) {
				t.Fatalf("query %d: %d items, want %d", i, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("query %d item %d: %v, want %v", i, j, got[j], want[j])
				}
			}
		}
	}

	cfg := Config{Tables: 4, Bits: 6, Seed: 3}
	built := Build(vecs, dim, cfg)
	sigs := built.Signatures()
	if _, err := BuildFromSignatures(vecs, dim, cfg, sigs[:len(sigs)-1]); err == nil {
		t.Fatal("row-count mismatch accepted")
	}
	bad := make([][]uint64, len(sigs))
	copy(bad, sigs)
	bad[0] = []uint64{1, 2}
	if _, err := BuildFromSignatures(vecs, dim, cfg, bad); err == nil {
		t.Fatal("table-count mismatch accepted")
	}
	bad[0] = []uint64{1 << 63, 0, 0, 0}
	if _, err := BuildFromSignatures(vecs, dim, cfg, bad); err == nil {
		t.Fatal("out-of-width signature accepted")
	}
}
