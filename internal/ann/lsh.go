package ann

// Random-hyperplane (SimHash) LSH with query-directed multi-probe lookup.
//
// Each of L tables hashes a vector to a b-bit signature: bit j is the sign
// of the dot product with hyperplane (table, j). Vectors at small angle
// agree on most bits, so near neighbors land in the same bucket with
// probability (1 - θ/π)^b per table. Multi-probe additionally visits the
// buckets reachable by flipping the query's *least confident* bits (the
// smallest |dot| margins, per Lv et al.'s query-directed probing), which
// buys recall that would otherwise cost more tables and therefore more
// memory and build time.
//
// Embeddings of a real corpus are not centered at the origin — similar
// graphs cluster on a spherical cap, where origin-crossing hyperplanes
// barely separate anything. Build therefore (by default) mean-centers the
// vectors before hashing; scoring still uses raw cosine on the original
// vectors, so centering only changes which bucket a vector lands in, never
// how a candidate is ranked.

import (
	"fmt"
	"math/rand"
	"slices"

	"repro/internal/par"
)

// Config parameterizes an LSH index. The zero value selects the defaults.
type Config struct {
	// Tables is L, the number of independent hash tables (0 = 12).
	Tables int
	// Bits is b, the signature width per table, capped at 64 (0 = 10).
	Bits int
	// Probes is the number of buckets examined per table per lookup,
	// including the exact bucket (0 = 2·Bits: the exact bucket plus the
	// cheapest multi-bit perturbations). Callers can override per query.
	Probes int
	// Seed drives the hyperplane family via par.ChildSeed; equal seeds give
	// identical planes in any process at any worker count.
	Seed int64
	// Center subtracts the indexed set's mean before hashing. Enabled by
	// NewConfig; the zero value keeps raw hashing for spread-out data.
	Center bool
	// Workers bounds the parallel build (0 = GOMAXPROCS).
	Workers int
}

// NewConfig returns the default configuration: 12 tables × 10 bits,
// multi-probe 2·bits, centered hashing, seed 1. Tuned on seeded chemical
// corpora for recall@10 well above the 0.9 floor (≈0.98 at 300 graphs)
// while probing a corpus-independent number of buckets.
func NewConfig() Config {
	return Config{Tables: 12, Bits: 10, Probes: 20, Seed: 1, Center: true}
}

// Resolved returns c with every zero field replaced by its default — the
// configuration Build actually uses.
func (c Config) Resolved() Config {
	c.defaults()
	return c
}

func (c *Config) defaults() {
	if c.Tables <= 0 {
		c.Tables = 12
	}
	if c.Bits <= 0 {
		c.Bits = 10
	}
	if c.Bits > 64 {
		c.Bits = 64
	}
	if c.Probes <= 0 {
		c.Probes = 2 * c.Bits
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Index is an immutable LSH index over a vector set. Safe for
// unsynchronized concurrent lookups; rebuild to change the indexed set.
type Index struct {
	cfg     Config
	dim     int
	planes  [][]float32 // Tables*Bits hyperplanes, row (t*Bits + j)
	mean    []float32   // hashing offset (nil when Center is off)
	meanDot []float64   // precomputed plane·mean, by plane row
	tables  []map[uint64][]int32
	vecs    [][]float32 // indexed vectors, by id
	norms   []float64   // precomputed L2 norms, by id
}

// Build indexes vecs (dimension dim; nil rows are treated as zero vectors
// and indexed under their signature like any other). The vectors are held
// by reference — treat them as immutable afterwards.
func Build(vecs [][]float32, dim int, cfg Config) *Index {
	cfg.defaults()
	ix := &Index{
		cfg:    cfg,
		dim:    dim,
		planes: make([][]float32, cfg.Tables*cfg.Bits),
		tables: make([]map[uint64][]int32, cfg.Tables),
		vecs:   vecs,
		norms:  make([]float64, len(vecs)),
	}
	// Hyperplanes: plane p's Gaussian components come from an RNG seeded by
	// ChildSeed(Seed, p) — a pure function of (seed, p), so any worker
	// layout generates the identical family.
	par.ForEachN(len(ix.planes), cfg.Workers, func(p int) {
		rng := rand.New(rand.NewSource(par.ChildSeed(cfg.Seed, p)))
		plane := make([]float32, dim)
		for d := range plane {
			plane[d] = float32(rng.NormFloat64())
		}
		ix.planes[p] = plane
	})
	if cfg.Center && len(vecs) > 0 {
		// Sequential accumulation in item order: deterministic float sums.
		mean := make([]float64, dim)
		for _, v := range vecs {
			for d, x := range v {
				mean[d] += float64(x)
			}
		}
		ix.mean = make([]float32, dim)
		inv := 1 / float64(len(vecs))
		for d := range mean {
			ix.mean[d] = float32(mean[d] * inv)
		}
		ix.meanDot = make([]float64, len(ix.planes))
		par.ForEachN(len(ix.planes), cfg.Workers, func(p int) {
			ix.meanDot[p] = Dot(ix.planes[p], ix.mean)
		})
	}
	// Signatures are slot-indexed per item; buckets are then filled one
	// table per task in ascending item order, so table contents are
	// scheduling-independent.
	sigs := par.Map(len(vecs), cfg.Workers, func(i int) []uint64 {
		ix.norms[i] = Norm(vecs[i])
		s := make([]uint64, cfg.Tables)
		for t := 0; t < cfg.Tables; t++ {
			s[t] = ix.signature(t, vecs[i], nil)
		}
		return s
	})
	par.ForEachN(cfg.Tables, cfg.Workers, func(t int) {
		m := make(map[uint64][]int32)
		for i, s := range sigs {
			m[s[t]] = append(m[s[t]], int32(i))
		}
		ix.tables[t] = m
	})
	return ix
}

// Signatures returns every indexed item's per-table signature — row i is
// item i, column t its bucket in table t. This is the persistable half of
// the index: hyperplanes regenerate from cfg.Seed alone, and tables
// regenerate from signatures without re-hashing a single vector (see
// BuildFromSignatures). O(n·Tables), no dot products.
func (ix *Index) Signatures() [][]uint64 {
	sigs := make([][]uint64, len(ix.vecs))
	for i := range sigs {
		sigs[i] = make([]uint64, ix.cfg.Tables)
	}
	for t, m := range ix.tables {
		for sig, ids := range m {
			for _, id := range ids {
				sigs[id][t] = sig
			}
		}
	}
	return sigs
}

// BuildFromSignatures is Build with the signature pass replaced by
// precomputed per-item signatures (from Signatures on an equivalent
// index). Hyperplanes, centering state, and norms are regenerated — they
// are O(planes·dim) and O(n·dim) — but the n·Tables·Bits·dim hashing that
// dominates Build is skipped, so reconstruction cost is bucket insertion.
// Given the signatures Build would have produced for (vecs, dim, cfg),
// the result is byte-identical to Build's.
//
// Signatures are validated structurally (row count, table count, no bits
// set past cfg.Bits); a semantically wrong signature cannot be detected
// without re-hashing and only ever mis-buckets an item, which downstream
// exact re-ranking already tolerates.
func BuildFromSignatures(vecs [][]float32, dim int, cfg Config, sigs [][]uint64) (*Index, error) {
	cfg.defaults()
	if len(sigs) != len(vecs) {
		return nil, fmt.Errorf("ann: %d signature rows for %d vectors", len(sigs), len(vecs))
	}
	for i, row := range sigs {
		if len(row) != cfg.Tables {
			return nil, fmt.Errorf("ann: signature row %d has %d tables, config has %d", i, len(row), cfg.Tables)
		}
		for _, s := range row {
			if cfg.Bits < 64 && s>>uint(cfg.Bits) != 0 {
				return nil, fmt.Errorf("ann: signature row %d has bits set past width %d", i, cfg.Bits)
			}
		}
	}
	ix := &Index{
		cfg:    cfg,
		dim:    dim,
		planes: make([][]float32, cfg.Tables*cfg.Bits),
		tables: make([]map[uint64][]int32, cfg.Tables),
		vecs:   vecs,
		norms:  make([]float64, len(vecs)),
	}
	par.ForEachN(len(ix.planes), cfg.Workers, func(p int) {
		rng := rand.New(rand.NewSource(par.ChildSeed(cfg.Seed, p)))
		plane := make([]float32, dim)
		for d := range plane {
			plane[d] = float32(rng.NormFloat64())
		}
		ix.planes[p] = plane
	})
	if cfg.Center && len(vecs) > 0 {
		mean := make([]float64, dim)
		for _, v := range vecs {
			for d, x := range v {
				mean[d] += float64(x)
			}
		}
		ix.mean = make([]float32, dim)
		inv := 1 / float64(len(vecs))
		for d := range mean {
			ix.mean[d] = float32(mean[d] * inv)
		}
		ix.meanDot = make([]float64, len(ix.planes))
		par.ForEachN(len(ix.planes), cfg.Workers, func(p int) {
			ix.meanDot[p] = Dot(ix.planes[p], ix.mean)
		})
	}
	for i, v := range vecs {
		ix.norms[i] = Norm(v)
	}
	par.ForEachN(cfg.Tables, cfg.Workers, func(t int) {
		m := make(map[uint64][]int32)
		for i := range sigs {
			s := sigs[i][t]
			m[s] = append(m[s], int32(i))
		}
		ix.tables[t] = m
	})
	return ix, nil
}

// Len returns the number of indexed vectors.
func (ix *Index) Len() int { return len(ix.vecs) }

// Dim returns the indexed dimension.
func (ix *Index) Dim() int { return ix.dim }

// Config returns the build configuration (with defaults resolved).
func (ix *Index) Config() Config { return ix.cfg }

// signature hashes v in table t. When margins is non-nil it receives the
// per-bit dot products (the multi-probe confidence scores), length Bits.
func (ix *Index) signature(t int, v []float32, margins []float64) uint64 {
	var sig uint64
	base := t * ix.cfg.Bits
	for j := 0; j < ix.cfg.Bits; j++ {
		d := Dot(ix.planes[base+j], v)
		if ix.meanDot != nil {
			d -= ix.meanDot[base+j]
		}
		if d >= 0 {
			sig |= 1 << uint(j)
		}
		if margins != nil {
			margins[j] = d
		}
	}
	return sig
}

// probeSet is one perturbation in the query-directed probe sequence: a set
// of bit positions (indices into the margin-sorted order) to flip, with the
// summed flip cost.
type probeSet struct {
	bits []int // indices into the sorted-margin order, ascending
	cost float64
}

// probeSequence returns up to `probes` bucket signatures for a query whose
// exact signature is sig with the given per-bit margins, in increasing
// flip-cost order (the exact bucket first). Perturbation sets are expanded
// best-first with the classic shift/expand moves over bits sorted by
// |margin|, so the flipped bits are always the least confident ones.
func probeSequence(sig uint64, margins []float64, probes int) []uint64 {
	out := make([]uint64, 0, probes)
	out = append(out, sig)
	if probes <= 1 || len(margins) == 0 {
		return out
	}
	b := len(margins)
	order := make([]int, b)
	for i := range order {
		order[i] = i
	}
	// Insertion sort by |margin| (ties by index): b <= 64 and this runs
	// once per table per query — a generic sort's overhead is larger than
	// the sort itself at this size.
	for i := 1; i < b; i++ {
		for j := i; j > 0; j-- {
			aj, ap := abs(margins[order[j]]), abs(margins[order[j-1]])
			if aj > ap || (aj == ap && order[j] > order[j-1]) {
				break
			}
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	cost := func(si int) float64 { return abs(margins[order[si]]) }
	flip := func(bits []int) uint64 {
		s := sig
		for _, si := range bits {
			s ^= 1 << uint(order[si])
		}
		return s
	}
	// Best-first over perturbation sets; the heap is tiny (≤ probes live
	// sets), so a sorted slice is simpler than container/heap and just as
	// fast at these sizes.
	frontier := []probeSet{{bits: []int{0}, cost: cost(0)}}
	for len(out) < probes && len(frontier) > 0 {
		best := 0
		for i := 1; i < len(frontier); i++ {
			if frontier[i].cost < frontier[best].cost {
				best = i
			}
		}
		cur := frontier[best]
		frontier = append(frontier[:best], frontier[best+1:]...)
		out = append(out, flip(cur.bits))
		last := cur.bits[len(cur.bits)-1]
		if last+1 < b {
			// Shift: replace the deepest bit with the next-costlier one.
			shifted := append(append([]int(nil), cur.bits[:len(cur.bits)-1]...), last+1)
			frontier = append(frontier, probeSet{bits: shifted, cost: cur.cost - cost(last) + cost(last+1)})
			// Expand: additionally flip the next bit.
			expanded := append(append([]int(nil), cur.bits...), last+1)
			frontier = append(frontier, probeSet{bits: expanded, cost: cur.cost + cost(last+1)})
		}
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// LookupStats reports what one approximate lookup cost and surfaced.
type LookupStats struct {
	Probed    int // buckets examined across all tables
	Shortlist int // distinct candidate ids gathered
}

// Candidates returns the distinct ids in the probed buckets across every
// table, ascending. probes <= 0 uses the build-time default. O(probes ×
// tables) bucket lookups — the sub-linear stage.
func (ix *Index) Candidates(q []float32, probes int) ([]int32, LookupStats) {
	var stats LookupStats
	if len(ix.vecs) == 0 {
		return nil, stats
	}
	if probes <= 0 {
		probes = ix.cfg.Probes
	}
	seen := make([]bool, len(ix.vecs))
	var out []int32
	margins := make([]float64, ix.cfg.Bits)
	for t := 0; t < ix.cfg.Tables; t++ {
		sig := ix.signature(t, q, margins)
		for _, bucket := range probeSequence(sig, margins, probes) {
			stats.Probed++
			for _, id := range ix.tables[t][bucket] {
				if !seen[id] {
					seen[id] = true
					out = append(out, id)
				}
			}
		}
	}
	slices.Sort(out)
	stats.Shortlist = len(out)
	return out, stats
}

// TopK retrieves the approximate top-k: multi-probe candidate gathering
// fused with exact cosine scoring, keeping a bounded (score desc, id asc)
// top-k instead of sorting the whole shortlist — O(shortlist · k) worst
// case but O(shortlist) in practice, since most candidates fail the
// current floor without shifting anything. probes <= 0 uses the
// build-time default. The result is the unique top-k under the total
// order (score desc, id asc), independent of gathering order.
func (ix *Index) TopK(q []float32, k, probes int) ([]Scored, LookupStats) {
	var stats LookupStats
	if k <= 0 || len(ix.vecs) == 0 {
		return nil, stats
	}
	if probes <= 0 {
		probes = ix.cfg.Probes
	}
	qn := Norm(q)
	seen := make([]bool, len(ix.vecs))
	top := make([]Scored, 0, k)
	margins := make([]float64, ix.cfg.Bits)
	for t := 0; t < ix.cfg.Tables; t++ {
		sig := ix.signature(t, q, margins)
		for _, bucket := range probeSequence(sig, margins, probes) {
			stats.Probed++
			for _, id := range ix.tables[t][bucket] {
				if seen[id] {
					continue
				}
				seen[id] = true
				stats.Shortlist++
				s := 0.0
				if qn != 0 && ix.norms[id] != 0 {
					s = Dot(q, ix.vecs[id]) / (qn * ix.norms[id])
				}
				top = insertTopK(top, Scored{ID: id, Score: s}, k)
			}
		}
	}
	return top, stats
}

// insertTopK inserts c into top (held sorted by score desc, id asc),
// keeping at most k entries.
func insertTopK(top []Scored, c Scored, k int) []Scored {
	if len(top) == k {
		w := top[k-1]
		if c.Score < w.Score || (c.Score == w.Score && c.ID > w.ID) {
			return top
		}
		top = top[:k-1]
	}
	i := len(top)
	top = append(top, c)
	for i > 0 {
		p := top[i-1]
		if p.Score > c.Score || (p.Score == c.Score && p.ID < c.ID) {
			break
		}
		top[i] = p
		i--
	}
	top[i] = c
	return top
}
