package ann

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
)

// permuteGraph rebuilds g with vertices renumbered by a random permutation
// — an isomorphic graph whose adjacency structure is stored in a completely
// different order.
func permuteGraph(rng *rand.Rand, g *graph.Graph) *graph.Graph {
	n := g.NumNodes()
	perm := rng.Perm(n)
	out := graph.New(g.Name() + "-perm")
	labels := make([]string, n)
	for v := 0; v < n; v++ {
		labels[perm[v]] = g.NodeLabel(v)
	}
	for _, l := range labels {
		out.AddNode(l)
	}
	// Shuffle edge insertion order too: embedding must not depend on it.
	edges := g.Edges()
	rng.Shuffle(len(edges), func(i, j int) { edges[i], edges[j] = edges[j], edges[i] })
	for _, e := range edges {
		out.MustAddEdge(perm[e.U], perm[e.V], e.Label)
	}
	return out
}

// TestEmbedCanonicalInvariance: the embedding is a function of the
// isomorphism class — any vertex relabeling and edge reordering embeds to
// the byte-identical vector.
func TestEmbedCanonicalInvariance(t *testing.T) {
	e := NewEmbedder()
	rng := rand.New(rand.NewSource(7))
	corpus := datagen.ChemicalCorpus(3, 40, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 24})
	for i := 0; i < corpus.Len(); i++ {
		g := corpus.Graph(i)
		want := e.Embed(g)
		for trial := 0; trial < 3; trial++ {
			got := e.Embed(permuteGraph(rng, g))
			for d := range want {
				if got[d] != want[d] {
					t.Fatalf("graph %s trial %d: component %d differs: %v vs %v",
						g.Name(), trial, d, got[d], want[d])
				}
			}
		}
	}
}

// TestEmbedWorkerInvariance: corpus embedding is identical at every worker
// count (the slot-indexed par contract).
func TestEmbedWorkerInvariance(t *testing.T) {
	e := NewEmbedder()
	corpus := datagen.ChemicalCorpus(5, 60, datagen.ChemicalOptions{})
	want := e.EmbedCorpus(corpus, 1)
	for _, workers := range []int{2, 3, 8, 0} {
		got := e.EmbedCorpus(corpus, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d vectors, want %d", workers, len(got), len(want))
		}
		for i := range want {
			for d := range want[i] {
				if got[i][d] != want[i][d] {
					t.Fatalf("workers=%d: vec %d component %d differs", workers, i, d)
				}
			}
		}
	}
}

func TestEmbedShape(t *testing.T) {
	e := NewEmbedder()
	g := graph.New("g")
	a := g.AddNode("C")
	b := g.AddNode("N")
	g.MustAddEdge(a, b, "s")
	v := e.Embed(g)
	if len(v) != e.Dim() {
		t.Fatalf("dim %d, want %d", len(v), e.Dim())
	}
	// Non-empty graphs embed to unit vectors (cosine metric).
	if n := Norm(v); math.Abs(n-1) > 1e-4 {
		t.Fatalf("norm %v, want 1", n)
	}
	// Empty graph: zero vector, no panic.
	zero := e.Embed(graph.New("empty"))
	if Norm(zero) != 0 {
		t.Fatalf("empty graph norm %v, want 0", Norm(zero))
	}
	if got := Cosine(zero, v); got != 0 {
		t.Fatalf("cosine with zero vector = %v, want 0", got)
	}
}

// TestEmbedDiscriminates: structurally different graphs should not collapse
// to one point — a triangle-rich graph and a star must be farther apart
// than two copies of the same structure.
func TestEmbedDiscriminates(t *testing.T) {
	e := NewEmbedder()
	tri := graph.New("tri")
	for i := 0; i < 3; i++ {
		tri.AddNode("C")
	}
	tri.MustAddEdge(0, 1, "s")
	tri.MustAddEdge(1, 2, "s")
	tri.MustAddEdge(0, 2, "s")
	star := graph.New("star")
	c := star.AddNode("C")
	for i := 0; i < 3; i++ {
		star.MustAddEdge(c, star.AddNode("C"), "s")
	}
	vt, vs := e.Embed(tri), e.Embed(star)
	if sim := Cosine(vt, vs); sim >= 0.999 {
		t.Fatalf("triangle and star embeddings indistinguishable (cosine %v)", sim)
	}
	if sim := Cosine(vt, vt); math.Abs(sim-1) > 1e-6 {
		t.Fatalf("self-cosine %v, want 1", sim)
	}
}
