package simulate

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/pattern"
)

func TestScoreRange(t *testing.T) {
	c := datagen.ChemicalCorpus(5, 20, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 18, RingBias: 0.8})
	w, err := CorpusWorkload(c, 20, 5, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	cm := ErrorAwareCostModel()
	baseline := Evaluate(w, nil, cm)
	panel := append(pattern.Basic(), benzenePattern())
	withPatterns := Evaluate(w, panel, cm)

	crit := Score(CriteriaInputs{
		Summary:         withPatterns,
		Baseline:        baseline,
		PanelSize:       len(panel),
		PanelComplexity: 0.4,
	})
	for name, v := range map[string]float64{
		"learnability": crit.Learnability,
		"flexibility":  crit.Flexibility,
		"robustness":   crit.Robustness,
		"efficiency":   crit.Efficiency,
		"memorability": crit.Memorability,
		"errors":       crit.Errors,
		"satisfaction": crit.Satisfaction,
	} {
		if v < 0 || v > 1 {
			t.Fatalf("%s = %v out of [0,1]", name, v)
		}
	}
	if m := crit.Mean(); m <= 0 || m > 1 {
		t.Fatalf("mean = %v", m)
	}
}

func TestScoreOrdering(t *testing.T) {
	// A pattern panel that genuinely helps must outscore the pattern-less
	// interface on flexibility, efficiency, robustness, and errors.
	c := datagen.ChemicalCorpus(8, 25, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 20, RingBias: 0.8})
	w, err := CorpusWorkload(c, 30, 5, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	cm := ErrorAwareCostModel()
	baseline := Evaluate(w, nil, cm)
	panel := append(pattern.Basic(), benzenePattern())
	dd := Evaluate(w, panel, cm)

	manualScore := Score(CriteriaInputs{Summary: baseline, Baseline: baseline, PanelSize: 0, PanelComplexity: 0.1})
	ddScore := Score(CriteriaInputs{Summary: dd, Baseline: baseline, PanelSize: len(panel), PanelComplexity: 0.4})

	if ddScore.Flexibility <= manualScore.Flexibility {
		t.Fatalf("flexibility: dd %v vs manual %v", ddScore.Flexibility, manualScore.Flexibility)
	}
	if ddScore.Efficiency <= manualScore.Efficiency {
		t.Fatalf("efficiency: dd %v vs manual %v", ddScore.Efficiency, manualScore.Efficiency)
	}
	if ddScore.Errors <= manualScore.Errors {
		t.Fatalf("errors: dd %v vs manual %v", ddScore.Errors, manualScore.Errors)
	}
	if ddScore.Robustness <= manualScore.Robustness {
		t.Fatalf("robustness: dd %v vs manual %v", ddScore.Robustness, manualScore.Robustness)
	}
	// But manual wins learnability (nothing to learn).
	if manualScore.Learnability < ddScore.Learnability {
		t.Fatal("empty panel must be at least as learnable")
	}
}

func TestScoreDegenerateInputs(t *testing.T) {
	crit := Score(CriteriaInputs{})
	if crit.Learnability != 1 {
		t.Fatalf("empty interface learnability = %v", crit.Learnability)
	}
	if crit.Robustness != 0 || crit.Efficiency != 0 {
		t.Fatal("zero measurements must score 0 on performance criteria")
	}
	// No error model: Errors defaults to 1 (no observable slips).
	if crit.Errors != 1 {
		t.Fatalf("errors = %v", crit.Errors)
	}
	if m := crit.Mean(); m < 0 || m > 1 {
		t.Fatalf("mean = %v", m)
	}
}
