package simulate

import (
	"math"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

func benzene() *graph.Graph {
	g := graph.New("benzene")
	g.AddNodes(6, "C")
	for i := 0; i < 6; i++ {
		g.MustAddEdge(i, (i+1)%6, "a")
	}
	return g
}

func benzenePattern() *pattern.Pattern {
	return pattern.New(benzene(), "canned")
}

func TestFormulateEdgeAtATime(t *testing.T) {
	q := benzene()
	f := Formulate(q, nil, DefaultCostModel())
	// 6 nodes + 6 edges = 12 steps, nothing via patterns.
	if f.Steps != 12 {
		t.Fatalf("steps = %d, want 12", f.Steps)
	}
	if f.PatternsUsed != 0 || f.EdgesViaPatterns != 0 || f.EdgesManual != 6 {
		t.Fatalf("formulation = %+v", f)
	}
	wantTime := 6*1.5 + 6*2.0
	if f.Time != wantTime {
		t.Fatalf("time = %v, want %v", f.Time, wantTime)
	}
}

func TestFormulateExactPatternMatch(t *testing.T) {
	// The query IS the benzene pattern: one stamp, no corrections.
	q := benzene()
	f := Formulate(q, []*pattern.Pattern{benzenePattern()}, DefaultCostModel())
	if f.Steps != 1 {
		t.Fatalf("steps = %d, want 1 (single stamp)", f.Steps)
	}
	if f.PatternsUsed != 1 || f.EdgesViaPatterns != 6 || f.EdgesManual != 0 {
		t.Fatalf("formulation = %+v", f)
	}
	if f.Relabels != 0 || f.Merges != 0 {
		t.Fatalf("unexpected corrections: %+v", f)
	}
}

func TestFormulatePatternPlusManual(t *testing.T) {
	// Benzene with a chlorine tail: stamp + 1 node + 1 edge.
	q := benzene()
	cl := q.AddNode("Cl")
	q.MustAddEdge(0, cl, "s")
	f := Formulate(q, []*pattern.Pattern{benzenePattern()}, DefaultCostModel())
	if f.Steps != 3 {
		t.Fatalf("steps = %d, want 3 (stamp + node + edge)", f.Steps)
	}
	if f.EdgesViaPatterns != 6 || f.EdgesManual != 1 {
		t.Fatalf("formulation = %+v", f)
	}
}

func TestFormulateRelabeling(t *testing.T) {
	// Query is a benzene-shaped ring with one nitrogen: pattern stamp +
	// one relabel beats 12 manual steps.
	q := benzene()
	q.SetNodeLabel(2, "N")
	f := Formulate(q, []*pattern.Pattern{benzenePattern()}, DefaultCostModel())
	if f.PatternsUsed != 1 {
		t.Fatalf("pattern not used: %+v", f)
	}
	if f.Relabels != 1 {
		t.Fatalf("relabels = %d, want 1", f.Relabels)
	}
	if f.Steps != 2 {
		t.Fatalf("steps = %d, want 2 (stamp + relabel)", f.Steps)
	}
}

func TestFormulateSkipsUselessPatterns(t *testing.T) {
	// Query is a 2-node chain; a big pattern that doesn't fit must not be
	// stamped (shape larger than query edges).
	q := graph.New("q")
	q.AddNodes(2, "C")
	q.MustAddEdge(0, 1, "s")
	f := Formulate(q, []*pattern.Pattern{benzenePattern()}, DefaultCostModel())
	if f.PatternsUsed != 0 || f.Steps != 3 {
		t.Fatalf("formulation = %+v", f)
	}
}

func TestFormulateEmptyQuery(t *testing.T) {
	f := Formulate(graph.New("q"), nil, DefaultCostModel())
	if f.Steps != 0 || f.Time != 0 {
		t.Fatalf("empty query formulation = %+v", f)
	}
}

func TestDataDrivenBeatsManualOnMatchingWorkload(t *testing.T) {
	// Corpus of ring-heavy compounds; a panel holding actual ring motifs
	// must beat the pattern-less panel on steps and time.
	c := datagen.ChemicalCorpus(8, 30, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 20, RingBias: 0.8})
	w, err := CorpusWorkload(c, 40, 5, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	panel := append(pattern.Basic(), benzenePattern())
	withPatterns := Evaluate(w, panel, DefaultCostModel())
	manual := Evaluate(w, nil, DefaultCostModel())
	if withPatterns.MeanSteps >= manual.MeanSteps {
		t.Fatalf("pattern panel (%v steps) must beat manual (%v steps)",
			withPatterns.MeanSteps, manual.MeanSteps)
	}
	if withPatterns.MeanTime >= manual.MeanTime {
		t.Fatalf("pattern panel (%vs) must beat manual (%vs)",
			withPatterns.MeanTime, manual.MeanTime)
	}
	if withPatterns.PatternEdgeShare <= 0 {
		t.Fatal("patterns never used")
	}
}

func TestErrorModel(t *testing.T) {
	q := benzene()
	noErr := Formulate(q, nil, DefaultCostModel())
	if noErr.ExpectedErrors != 0 {
		t.Fatalf("error model leaked: %v", noErr.ExpectedErrors)
	}
	cm := ErrorAwareCostModel()
	withErr := Formulate(q, nil, cm)
	if withErr.ExpectedErrors <= 0 {
		t.Fatal("expected errors missing")
	}
	// 12 steps × 5% = 0.6 expected slips.
	if math.Abs(withErr.ExpectedErrors-0.6) > 1e-9 {
		t.Fatalf("expected errors = %v, want 0.6", withErr.ExpectedErrors)
	}
	if withErr.Time <= noErr.Time {
		t.Fatal("error recovery must cost time")
	}
	// The errors mechanism: fewer actions → fewer expected slips. The
	// pattern-based formulation of the same query has fewer steps, hence
	// fewer expected errors.
	patterned := Formulate(q, []*pattern.Pattern{benzenePattern()}, cm)
	if patterned.ExpectedErrors >= withErr.ExpectedErrors {
		t.Fatalf("patterned errors %v must be below manual %v",
			patterned.ExpectedErrors, withErr.ExpectedErrors)
	}
	// Summary aggregation carries the measure.
	c := datagen.ChemicalCorpus(3, 10, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	w, err := CorpusWorkload(c, 10, 4, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := Evaluate(w, nil, cm)
	if s.MeanErrors <= 0 {
		t.Fatal("summary errors missing")
	}
}

func TestWorkloadGeneration(t *testing.T) {
	c := datagen.ChemicalCorpus(1, 10, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	w, err := CorpusWorkload(c, 20, 4, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Queries) != 20 {
		t.Fatalf("queries = %d", len(w.Queries))
	}
	for _, q := range w.Queries {
		if q.NumNodes() < 4 || q.NumNodes() > 8 {
			t.Fatalf("query size %d outside range", q.NumNodes())
		}
		if !q.IsConnected() {
			t.Fatal("disconnected query")
		}
	}
	if _, err := CorpusWorkload(graph.NewCorpus(), 5, 4, 8, 1); err == nil {
		t.Fatal("empty corpus accepted")
	}
	g := datagen.BarabasiAlbert(2, 100, 3)
	nw, err := NetworkWorkload(g, 10, 4, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(nw.Queries) != 10 {
		t.Fatalf("network queries = %d", len(nw.Queries))
	}
}

func TestEvaluateAndCompare(t *testing.T) {
	c := datagen.ChemicalCorpus(2, 15, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	w, err := CorpusWorkload(c, 10, 4, 7, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := Compare(w, map[string][]*pattern.Pattern{
		"manual":      nil,
		"data-driven": append(pattern.Basic(), benzenePattern()),
	}, DefaultCostModel())
	if len(res) != 2 {
		t.Fatalf("compare = %v", res)
	}
	if res["manual"].Queries != 10 || res["data-driven"].Queries != 10 {
		t.Fatal("query counts wrong")
	}
	if s := Evaluate(Workload{}, nil, DefaultCostModel()); s.Queries != 0 || s.MeanSteps != 0 {
		t.Fatal("empty workload must be zero")
	}
}

func TestBrowseCostGrowsWithPanelSize(t *testing.T) {
	// Stamping from a huge panel costs more time (browsing) than from a
	// small one, for the same query.
	q := benzene()
	small := []*pattern.Pattern{benzenePattern()}
	big := append([]*pattern.Pattern{}, benzenePattern())
	for i := 0; i < 30; i++ {
		// Filler patterns that never match the query (too big).
		g := graph.New("filler")
		g.AddNodes(9, "X")
		for j := 0; j+1 < 9; j++ {
			g.MustAddEdge(j, j+1, "z")
		}
		g.MustAddEdge(0, 8, "z")
		big = append(big, pattern.New(g, "filler"))
	}
	fs := Formulate(q, small, DefaultCostModel())
	fb := Formulate(q, big, DefaultCostModel())
	if fb.Time <= fs.Time {
		t.Fatalf("big panel time %v must exceed small panel %v", fb.Time, fs.Time)
	}
	if fb.Steps != fs.Steps {
		t.Fatal("steps should match (same stamp)")
	}
}

func TestWildcardBasicsSkippedOnLabeledQueries(t *testing.T) {
	// A wildcard-labeled basic triangle stamped onto a fully labeled
	// triangle would need 6 relabels — more steps than drawing manually —
	// so the simulated user draws instead. This is exactly the tutorial's
	// point: generic basic patterns don't carry data-specific labels, so
	// concrete canned patterns are what cuts formulation effort.
	q := graph.New("q")
	q.AddNodes(3, "C")
	q.MustAddEdge(0, 1, "s")
	q.MustAddEdge(1, 2, "s")
	q.MustAddEdge(0, 2, "s")
	tri := pattern.Basic()[2]
	if tri.G.NodeLabel(0) != isomorph.Wildcard {
		t.Fatal("basic triangle should be wildcard-labeled")
	}
	f := Formulate(q, []*pattern.Pattern{tri}, DefaultCostModel())
	if f.PatternsUsed != 0 {
		t.Fatalf("wildcard triangle should not be stamped: %+v", f)
	}
	if f.Steps != 6 {
		t.Fatalf("steps = %d, want 6 (manual)", f.Steps)
	}
	// The same triangle with concrete matching labels IS worth stamping.
	labeled := q.Clone()
	labeled.SetName("tri-pattern")
	f2 := Formulate(q, []*pattern.Pattern{pattern.New(labeled, "canned")}, DefaultCostModel())
	if f2.PatternsUsed != 1 || f2.Steps != 1 {
		t.Fatalf("concrete triangle formulation = %+v", f2)
	}
}
