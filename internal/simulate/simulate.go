// Package simulate mechanizes the usability studies the tutorial
// summarizes: it measures how many formulation steps (and how much modeled
// time) a user needs to draw a given subgraph query on a given VQI.
//
// The surveyed studies report two quantities — number of formulation steps
// and query formulation time — for data-driven versus manual VQIs. Real
// users are replaced by a GOMS-style simulated user:
//
//   - Edge-at-a-time construction costs one step per node and one per edge
//     (label selection included), the only mode a pattern-less VQI offers.
//   - Pattern-at-a-time construction greedily stamps the panel pattern
//     whose best structural embedding into the target query covers the
//     most not-yet-drawn edges (≥ 2, else drawing manually is cheaper),
//     paying one stamp step, one merge step per node shared with the
//     already-drawn region, and one relabel step per label mismatch; the
//     remainder is drawn edge-at-a-time.
//
// Modeled time adds a pattern-browsing cost that grows logarithmically
// with Pattern Panel size and a per-step motor cost, so a VQI with more
// (or more complex) patterns is not free — exactly the trade-off the
// cognitive-load measure exists to balance.
package simulate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

// CostModel assigns seconds to each atomic action. The defaults are in the
// range HCI models (KLM/GOMS) use for mouse-driven direct manipulation.
type CostModel struct {
	AddNode    float64 // draw a node and pick its label
	AddEdge    float64 // draw an edge and pick its label
	SetLabel   float64 // correct one label on a stamped pattern
	Stamp      float64 // drag a pattern onto the canvas
	Merge      float64 // fuse a stamped node with an existing node
	BrowseBase float64 // scanning cost factor per stamp, × log2(1+panel size)
	// SlipProb is the per-action probability of a slip (mis-click, wrong
	// label) that the user must undo and redo. Zero disables the error
	// model. HCI "Errors" criterion: fewer atomic actions mean fewer
	// opportunities to slip, which is one mechanism by which pattern-at-
	// a-time construction reduces errors.
	SlipProb float64
	// Undo is the time cost of one undo gesture (0 with SlipProb 0).
	Undo float64
}

// DefaultCostModel returns the default action timings (error model off).
func DefaultCostModel() CostModel {
	return CostModel{
		AddNode:    1.5,
		AddEdge:    2.0,
		SetLabel:   1.0,
		Stamp:      1.2,
		Merge:      1.5,
		BrowseBase: 0.6,
	}
}

// ErrorAwareCostModel returns the default timings with a realistic slip
// rate for direct-manipulation interfaces.
func ErrorAwareCostModel() CostModel {
	cm := DefaultCostModel()
	cm.SlipProb = 0.05
	cm.Undo = 0.8
	return cm
}

// Formulation reports the simulated construction of one query.
type Formulation struct {
	Steps            int     // total atomic actions
	Time             float64 // modeled seconds (including expected error recovery)
	PatternsUsed     int     // stamps performed
	EdgesViaPatterns int     // query edges obtained from stamps
	EdgesManual      int     // query edges drawn one at a time
	Relabels         int     // label corrections after stamping
	Merges           int     // node merges after stamping
	// ExpectedErrors is the expected number of slips under the cost
	// model's SlipProb (each slip costs an undo plus a redo of the
	// slipped action, folded into Time).
	ExpectedErrors float64
}

// applyErrorModel folds expected slip recovery into the formulation: each
// of the Steps actions slips with probability SlipProb; recovery is one
// undo gesture plus repeating the action (approximated by the mean action
// time so far).
func (f *Formulation) applyErrorModel(cm CostModel) {
	if cm.SlipProb <= 0 || f.Steps == 0 {
		return
	}
	f.ExpectedErrors = float64(f.Steps) * cm.SlipProb
	meanAction := f.Time / float64(f.Steps)
	f.Time += f.ExpectedErrors * (cm.Undo + meanAction)
}

// Formulate simulates drawing query q on a VQI exposing the given pattern
// panel (basic + canned; nil or empty panel = pure edge-at-a-time).
func Formulate(q *graph.Graph, panel []*pattern.Pattern, cm CostModel) Formulation {
	var f Formulation
	if q.NumNodes() == 0 {
		return f
	}
	coveredEdge := make([]bool, q.NumEdges())
	builtNode := make([]bool, q.NumNodes())
	browse := cm.BrowseBase * math.Log2(1+float64(len(panel)))

	// Structure-only copies of the panel for embedding search.
	type panelEntry struct {
		p      *pattern.Pattern
		shape  *graph.Graph
		labels *graph.Graph
	}
	var entries []panelEntry
	for _, p := range panel {
		if p.G.NumEdges() < 2 || p.G.NumEdges() > q.NumEdges() {
			continue // stamping a single edge is never cheaper than drawing it
		}
		entries = append(entries, panelEntry{p: p, shape: wildcardize(p.G), labels: p.G})
	}

	opts := isomorph.Options{MaxEmbeddings: 300, MaxSteps: 100000}
	for {
		// Find the stamp with the best step savings over drawing the same
		// region manually. A stamp is only worth it when it saves steps;
		// this is why wildcard basics rarely pay off on labeled queries
		// (every label needs a correction) while data-derived canned
		// patterns do.
		bestSavings, bestCost := 0, 0.0
		var bestEmb []graph.NodeID
		var bestEntry *panelEntry
		for i := range entries {
			ent := &entries[i]
			isomorph.Enumerate(ent.shape, q, opts, func(mapping []graph.NodeID) bool {
				ev := evalEmbedding(ent.labels, q, mapping, coveredEdge, builtNode)
				if ev.gain < 2 {
					return true
				}
				// Manual construction of the same region: one step per new
				// node and per new edge. Stamp: 1 + merges + relabels.
				savings := (ev.newNodes + ev.gain) - (1 + ev.merges + ev.nodeRelabels + ev.edgeRelabels)
				cost := cm.Stamp + browse +
					float64(ev.nodeRelabels+ev.edgeRelabels)*cm.SetLabel +
					float64(ev.merges)*cm.Merge
				if savings > bestSavings || (savings == bestSavings && bestEmb != nil && cost < bestCost) {
					bestSavings, bestCost = savings, cost
					bestEmb = append(bestEmb[:0], mapping...)
					bestEntry = ent
				}
				return true
			})
		}
		if bestEntry == nil || bestSavings <= 0 {
			break
		}
		// Apply the stamp.
		f.PatternsUsed++
		f.Steps++ // the stamp itself
		f.Time += cm.Stamp + browse
		pg := bestEntry.labels
		for pv := 0; pv < pg.NumNodes(); pv++ {
			qv := bestEmb[pv]
			if builtNode[qv] {
				// Merging keeps the existing node and its label.
				f.Steps++
				f.Merges++
				f.Time += cm.Merge
				continue
			}
			builtNode[qv] = true
			if pg.NodeLabel(pv) != q.NodeLabel(qv) {
				f.Steps++
				f.Relabels++
				f.Time += cm.SetLabel
			}
		}
		for _, pe := range pg.Edges() {
			qe, ok := q.EdgeBetween(bestEmb[pe.U], bestEmb[pe.V])
			if !ok || coveredEdge[qe] {
				continue
			}
			coveredEdge[qe] = true
			f.EdgesViaPatterns++
			if pe.Label != q.EdgeLabel(qe) {
				f.Steps++
				f.Relabels++
				f.Time += cm.SetLabel
			}
		}
	}

	// Manual completion.
	for v := 0; v < q.NumNodes(); v++ {
		if !builtNode[v] {
			builtNode[v] = true
			f.Steps++
			f.Time += cm.AddNode
		}
	}
	for e := 0; e < q.NumEdges(); e++ {
		if !coveredEdge[e] {
			coveredEdge[e] = true
			f.Steps++
			f.EdgesManual++
			f.Time += cm.AddEdge
		}
	}
	f.applyErrorModel(cm)
	return f
}

// embeddingEval scores one structural embedding of a pattern into the
// query.
type embeddingEval struct {
	gain         int // query edges newly covered
	newNodes     int // query nodes not yet drawn
	nodeRelabels int // new nodes whose stamped label is wrong
	edgeRelabels int // newly covered edges whose stamped label is wrong
	merges       int // stamped nodes that fuse with already-drawn nodes
}

func evalEmbedding(pg, q *graph.Graph, mapping []graph.NodeID, coveredEdge, builtNode []bool) embeddingEval {
	var ev embeddingEval
	for pv := 0; pv < pg.NumNodes(); pv++ {
		qv := mapping[pv]
		if builtNode[qv] {
			ev.merges++
			continue
		}
		ev.newNodes++
		if pg.NodeLabel(pv) != q.NodeLabel(qv) {
			ev.nodeRelabels++
		}
	}
	for _, pe := range pg.Edges() {
		if qe, ok := q.EdgeBetween(mapping[pe.U], mapping[pe.V]); ok && !coveredEdge[qe] {
			ev.gain++
			if pe.Label != q.EdgeLabel(qe) {
				ev.edgeRelabels++
			}
		}
	}
	return ev
}

// wildcardize strips all labels so embedding search is structural.
func wildcardize(g *graph.Graph) *graph.Graph {
	c := g.Clone()
	for v := 0; v < c.NumNodes(); v++ {
		c.SetNodeLabel(v, isomorph.Wildcard)
	}
	for e := 0; e < c.NumEdges(); e++ {
		c.SetEdgeLabel(e, isomorph.Wildcard)
	}
	return c
}

// ---------------------------------------------------------------------------
// Workloads and evaluation
// ---------------------------------------------------------------------------

// Workload is a set of target queries.
type Workload struct {
	Queries []*graph.Graph
}

// CorpusWorkload samples count connected subgraph queries of size
// [minNodes, maxNodes] nodes from random corpus graphs. This mirrors the
// surveyed studies, whose query sets are subgraphs of the test datasets.
func CorpusWorkload(c *graph.Corpus, count, minNodes, maxNodes int, seed int64) (Workload, error) {
	if c.Len() == 0 {
		return Workload{}, fmt.Errorf("simulate: empty corpus")
	}
	rng := rand.New(rand.NewSource(seed))
	var w Workload
	for attempt := 0; len(w.Queries) < count && attempt < 100*count; attempt++ {
		g := c.Graph(rng.Intn(c.Len()))
		size := minNodes + rng.Intn(maxNodes-minNodes+1)
		q := datagen.RandomConnectedSubgraph(rng, g, size)
		if q == nil {
			continue
		}
		q.SetName(fmt.Sprintf("q%d", len(w.Queries)))
		w.Queries = append(w.Queries, q)
	}
	if len(w.Queries) == 0 {
		return w, fmt.Errorf("simulate: could not sample any queries")
	}
	return w, nil
}

// NetworkWorkload samples queries from a single network.
func NetworkWorkload(g *graph.Graph, count, minNodes, maxNodes int, seed int64) (Workload, error) {
	return CorpusWorkload(pattern.SingletonCorpus(g), count, minNodes, maxNodes, seed)
}

// Summary aggregates a workload evaluation.
type Summary struct {
	Queries          int
	MeanSteps        float64
	MeanTime         float64
	MeanPatternsUsed float64
	MeanErrors       float64 // expected slips per query (0 if error model off)
	PatternEdgeShare float64 // fraction of all query edges drawn via patterns
}

// Evaluate runs the simulator over every workload query on the given
// panel.
func Evaluate(w Workload, panel []*pattern.Pattern, cm CostModel) Summary {
	var s Summary
	s.Queries = len(w.Queries)
	if s.Queries == 0 {
		return s
	}
	totalEdges, patternEdges := 0, 0
	for _, q := range w.Queries {
		f := Formulate(q, panel, cm)
		s.MeanSteps += float64(f.Steps)
		s.MeanTime += f.Time
		s.MeanPatternsUsed += float64(f.PatternsUsed)
		s.MeanErrors += f.ExpectedErrors
		totalEdges += q.NumEdges()
		patternEdges += f.EdgesViaPatterns
	}
	n := float64(s.Queries)
	s.MeanSteps /= n
	s.MeanTime /= n
	s.MeanPatternsUsed /= n
	s.MeanErrors /= n
	if totalEdges > 0 {
		s.PatternEdgeShare = float64(patternEdges) / float64(totalEdges)
	}
	return s
}

// Compare evaluates several named panels over the same workload.
func Compare(w Workload, panels map[string][]*pattern.Pattern, cm CostModel) map[string]Summary {
	out := make(map[string]Summary, len(panels))
	for name, panel := range panels {
		out[name] = Evaluate(w, panel, cm)
	}
	return out
}
