package simulate

// Usability criteria. Section 2.1 of the tutorial lists seven criteria
// (after Dix et al.): learnability, flexibility, robustness, efficiency,
// memorability, errors, and satisfaction, and maps the three VQI features
// (search paradigms, maintainability, aesthetics) onto them. The surveyed
// studies quantify a subset with performance measures and capture the rest
// with questionnaires; here every criterion is scored from a measurable
// proxy so interfaces can be compared mechanically. Scores are in [0,1],
// higher is better. The proxies are deliberately simple and documented —
// they order interfaces, they do not claim absolute human validity.

import "math"

// Criteria holds the seven usability scores.
type Criteria struct {
	Learnability float64 // few distinct concepts to learn
	Flexibility  float64 // multiple construction routes actually used
	Robustness   float64 // progress per action (goal support)
	Efficiency   float64 // inverse normalized formulation time
	Memorability float64 // small, stable interface vocabulary
	Errors       float64 // inverse expected slips
	Satisfaction float64 // composite of speed, errors, panel aesthetics
}

// CriteriaInputs are the measurements the scores derive from.
type CriteriaInputs struct {
	// Summary is the workload evaluation of the interface.
	Summary Summary
	// Baseline is the pattern-less (edge-at-a-time) evaluation of the
	// same workload, the normalization anchor.
	Baseline Summary
	// PanelSize is the number of displayed patterns.
	PanelSize int
	// PanelComplexity is the mean visual complexity of the panel's
	// thumbnails (package layout); 0 if not measured.
	PanelComplexity float64
}

// Score computes the criteria. All ratios are clamped to [0,1].
func Score(in CriteriaInputs) Criteria {
	clamp := func(x float64) float64 {
		if math.IsNaN(x) || x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	var c Criteria

	// Learnability: a user must learn the base gestures (draw node, draw
	// edge, run) plus one concept per pattern; panels beyond ~20 entries
	// are no longer learnable at a glance (Hick's law regime).
	c.Learnability = clamp(1 - float64(in.PanelSize)/40)

	// Flexibility: the share of work achievable through the alternative
	// (pattern-at-a-time) route. A pattern-less interface has one route.
	c.Flexibility = clamp(in.Summary.PatternEdgeShare)

	// Robustness: goal progress per action — edges of the target query
	// produced per step, normalized by the baseline's rate. Higher means
	// the interface keeps the user closer to their goal per gesture.
	if in.Summary.MeanSteps > 0 && in.Baseline.MeanSteps > 0 {
		rate := in.Baseline.MeanSteps / in.Summary.MeanSteps
		c.Robustness = clamp(rate / 2) // rate 2× baseline ⇒ 1.0
	}

	// Efficiency: time saved against the baseline.
	if in.Baseline.MeanTime > 0 {
		c.Efficiency = clamp(1 - in.Summary.MeanTime/in.Baseline.MeanTime + 0.5)
		if in.Summary.MeanTime >= in.Baseline.MeanTime {
			c.Efficiency = clamp(in.Baseline.MeanTime / in.Summary.MeanTime / 2)
		}
	}

	// Memorability: like learnability but also penalizes visually complex
	// panels (hard-to-parse thumbnails are hard to remember).
	c.Memorability = clamp(c.Learnability - in.PanelComplexity/4)

	// Errors: inverse expected slips relative to baseline (fewer actions,
	// fewer opportunities).
	if in.Baseline.MeanErrors > 0 {
		c.Errors = clamp(1 - in.Summary.MeanErrors/in.Baseline.MeanErrors + 0.5)
		if in.Summary.MeanErrors >= in.Baseline.MeanErrors {
			c.Errors = clamp(in.Baseline.MeanErrors / in.Summary.MeanErrors / 2)
		}
	} else {
		c.Errors = 1
	}

	// Satisfaction: the aesthetic-usability composite — speed, low
	// errors, and pleasant (moderate-complexity) panels, per Berlyne's
	// inverted-U: both bare (complexity ~0, nothing to engage with) and
	// overloaded panels depress it.
	aesthetic := 1 - math.Abs(in.PanelComplexity-0.5)
	c.Satisfaction = clamp(0.4*c.Efficiency + 0.3*c.Errors + 0.3*clamp(aesthetic))
	return c
}

// Mean returns the unweighted mean of the seven scores.
func (c Criteria) Mean() float64 {
	return (c.Learnability + c.Flexibility + c.Robustness + c.Efficiency +
		c.Memorability + c.Errors + c.Satisfaction) / 7
}
