package qcache

import (
	"sync"
	"sync/atomic"
	"testing"
)

func TestHitMissAndLRU(t *testing.T) {
	c := New[int](2)
	calls := 0
	get := func(key string, v int) int {
		return c.Do(key, func() (int, bool) { calls++; return v, true })
	}
	if get("a", 1) != 1 || get("a", 99) != 1 {
		t.Fatal("a must be computed once and served from cache")
	}
	if calls != 1 {
		t.Fatalf("calls = %d", calls)
	}
	get("b", 2)
	get("c", 3) // evicts a (LRU)
	if c.Len() != 2 {
		t.Fatalf("len = %d", c.Len())
	}
	if get("a", 4) != 4 {
		t.Fatal("a was evicted; must recompute")
	}
	hits, misses, _ := c.Stats()
	if hits != 1 || misses != 4 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestUncacheableNotStored(t *testing.T) {
	c := New[int](4)
	calls := 0
	for i := 0; i < 3; i++ {
		got := c.Do("k", func() (int, bool) { calls++; return 7, false })
		if got != 7 {
			t.Fatalf("got %d", got)
		}
	}
	if calls != 3 {
		t.Fatalf("uncacheable result was stored (calls = %d)", calls)
	}
	if c.Len() != 0 {
		t.Fatalf("len = %d", c.Len())
	}
}

func TestZeroCapacityDedupsOnly(t *testing.T) {
	c := New[int](0)
	c.Do("k", func() (int, bool) { return 1, true })
	if c.Len() != 0 {
		t.Fatal("capacity 0 must not store")
	}
}

func TestSingleFlight(t *testing.T) {
	c := New[int](4)
	var calls int32
	start := make(chan struct{})
	inFn := make(chan struct{})
	go c.Do("k", func() (int, bool) {
		close(inFn)
		<-start
		atomic.AddInt32(&calls, 1)
		return 42, true
	})
	<-inFn // leader is inside fn; everyone else must wait, not recompute
	var wg sync.WaitGroup
	results := make([]int, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Do("k", func() (int, bool) {
				atomic.AddInt32(&calls, 1)
				return 42, true
			})
		}(i)
	}
	// Give the waiters a chance to register, then release the leader.
	for {
		if _, _, d := c.Stats(); d >= 1 {
			break
		}
	}
	close(start)
	wg.Wait()
	if n := atomic.LoadInt32(&calls); n != 1 {
		t.Fatalf("fn ran %d times; single-flight must run it once", n)
	}
	for i, r := range results {
		if r != 42 {
			t.Fatalf("result[%d] = %d", i, r)
		}
	}
}

func TestResetInvalidates(t *testing.T) {
	c := New[int](4)
	c.Do("k", func() (int, bool) { return 1, true })
	c.Reset()
	if c.Len() != 0 {
		t.Fatal("reset must drop entries")
	}
	got := c.Do("k", func() (int, bool) { return 2, true })
	if got != 2 {
		t.Fatalf("got %d; post-reset Do must recompute", got)
	}
}

func TestResetBarsInFlightStore(t *testing.T) {
	c := New[int](4)
	inFn := make(chan struct{})
	release := make(chan struct{})
	done := make(chan int)
	go func() {
		done <- c.Do("k", func() (int, bool) {
			close(inFn)
			<-release
			return 1, true
		})
	}()
	<-inFn
	c.Reset() // the flight's epoch is now stale
	close(release)
	if v := <-done; v != 1 {
		t.Fatalf("waiter got %d", v)
	}
	if c.Len() != 0 {
		t.Fatal("stale flight stored its result past a Reset")
	}
	// A fresh Do must recompute, not see a stale entry or stale flight.
	if v := c.Do("k", func() (int, bool) { return 2, true }); v != 2 {
		t.Fatalf("post-reset Do = %d", v)
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New[int](8)
	var wg sync.WaitGroup
	keys := []string{"a", "b", "c", "d"}
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			k := keys[i%len(keys)]
			v := c.Do(k, func() (int, bool) { return i % len(keys), true })
			if v != i%len(keys) {
				t.Errorf("key %s: got %d", k, v)
			}
			if i%16 == 0 {
				c.Reset()
			}
		}(i)
	}
	wg.Wait()
}

// TestMetricsZeroLookups: a cache that has never been queried must report
// a well-defined zero hit ratio — never NaN from 0/0, which would poison
// any JSON metrics endpoint exporting it (NaN is not representable in
// JSON).
func TestMetricsZeroLookups(t *testing.T) {
	m := New[int](4).Metrics()
	if m.Hits != 0 || m.Misses != 0 {
		t.Fatalf("fresh cache reports traffic: %+v", m)
	}
	if m.HitRatio != 0 {
		t.Fatalf("zero-lookup HitRatio = %v, want exactly 0", m.HitRatio)
	}
	if m.HitRatio != m.HitRatio {
		t.Fatal("zero-lookup HitRatio is NaN")
	}
}

// TestMetricsHitRatio: the ratio tracks Hits/(Hits+Misses) once traffic
// exists.
func TestMetricsHitRatio(t *testing.T) {
	c := New[int](4)
	c.Do("k", func() (int, bool) { return 1, true }) // miss
	c.Do("k", func() (int, bool) { return 1, true }) // hit
	c.Do("k", func() (int, bool) { return 1, true }) // hit
	m := c.Metrics()
	if want := 2.0 / 3.0; m.HitRatio != want {
		t.Fatalf("HitRatio = %v, want %v", m.HitRatio, want)
	}
}
