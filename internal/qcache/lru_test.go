package qcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestLRUEvictionOrderTable drives the cache through access sequences and
// checks exactly which keys survive: eviction must always remove the least
// recently *used* key, where both hits and stores count as use.
func TestLRUEvictionOrderTable(t *testing.T) {
	cases := []struct {
		name    string
		cap     int
		ops     []string // keys accessed via Do, in order
		want    []string // keys that must still be cached afterwards
		evicted []string // keys that must have been evicted
	}{
		{
			name: "fill without eviction",
			cap:  3,
			ops:  []string{"a", "b", "c"},
			want: []string{"a", "b", "c"},
		},
		{
			name:    "oldest insert evicted",
			cap:     3,
			ops:     []string{"a", "b", "c", "d"},
			want:    []string{"b", "c", "d"},
			evicted: []string{"a"},
		},
		{
			name:    "hit refreshes recency",
			cap:     3,
			ops:     []string{"a", "b", "c", "a", "d"},
			want:    []string{"c", "a", "d"},
			evicted: []string{"b"},
		},
		{
			name:    "repeated hits pin the hot key",
			cap:     2,
			ops:     []string{"a", "b", "a", "c", "a", "d"},
			want:    []string{"a", "d"},
			evicted: []string{"b", "c"},
		},
		{
			name:    "sequential scan keeps only the tail",
			cap:     2,
			ops:     []string{"a", "b", "c", "d", "e"},
			want:    []string{"d", "e"},
			evicted: []string{"a", "b", "c"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := New[string](tc.cap)
			computed := map[string]int{}
			get := func(k string) string {
				return c.Do(k, func() (string, bool) {
					computed[k]++
					return "v:" + k, true
				})
			}
			for _, k := range tc.ops {
				if v := get(k); v != "v:"+k {
					t.Fatalf("Do(%q) = %q", k, v)
				}
			}
			if c.Len() != len(tc.want) {
				t.Fatalf("Len = %d, want %d", c.Len(), len(tc.want))
			}
			// A cached key answers without recomputing; an evicted key
			// forces a second computation.
			for _, k := range tc.want {
				before := computed[k]
				get(k)
				if computed[k] != before {
					t.Fatalf("key %q should be cached but recomputed", k)
				}
			}
			for _, k := range tc.evicted {
				before := computed[k]
				get(k)
				if computed[k] != before+1 {
					t.Fatalf("key %q should have been evicted (computed %d times)", k, computed[k])
				}
			}
		})
	}
}

// TestConcurrentDoResetRace hammers Do and Reset from many goroutines
// (run under -race by scripts/verify.sh): every caller must receive the
// value for its own key, single-flight dedup must never hand a key the
// wrong flight, and the store must respect its capacity throughout.
func TestConcurrentDoResetRace(t *testing.T) {
	const (
		workers = 8
		keys    = 5
		rounds  = 200
		cap     = 3
	)
	c := New[string](cap)
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := fmt.Sprintf("k%d", (w+r)%keys)
				v := c.Do(k, func() (string, bool) {
					return "v:" + k, true
				})
				if v != "v:"+k {
					wrong.Add(1)
				}
				if c.Len() > cap {
					wrong.Add(1)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds/4; r++ {
			c.Reset()
		}
	}()
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d wrong values or capacity violations under concurrency", n)
	}
	if c.Len() > cap {
		t.Fatalf("Len = %d exceeds capacity %d", c.Len(), cap)
	}
	hits, misses, dedups := c.Stats()
	if hits+misses+dedups != workers*rounds {
		t.Fatalf("stats %d+%d+%d do not account for %d calls", hits, misses, dedups, workers*rounds)
	}
}

func TestShardAndEpochKeys(t *testing.T) {
	base := "canon"
	if ShardKey(base, 1, 2) == ShardKey(base, 1, 3) {
		t.Fatal("epoch bump must change the shard key")
	}
	if ShardKey(base, 1, 2) == ShardKey(base, 2, 2) {
		t.Fatal("different shards must have different keys")
	}
	if ShardKey(base, 1, 2) != ShardKey(base, 1, 2) {
		t.Fatal("shard key must be deterministic")
	}
	// Shard id/epoch must not be ambiguous ("s12@3" vs "s1@23").
	if ShardKey(base, 12, 3) == ShardKey(base, 1, 23) {
		t.Fatal("shard key collision")
	}
	if EpochKey(base, []uint64{1, 2}) == EpochKey(base, []uint64{1, 3}) {
		t.Fatal("any epoch change must change the epoch key")
	}
	if EpochKey(base, []uint64{1, 2}) == EpochKey(base, []uint64{12}) {
		t.Fatal("epoch vector must be separator-delimited")
	}
	if EpochKey(base, []uint64{0, 0}) != EpochKey(base, []uint64{0, 0}) {
		t.Fatal("epoch key must be deterministic")
	}
}
