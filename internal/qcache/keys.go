package qcache

import "strconv"

// Per-shard-epoch key helpers. A sharded index (gindex.Sharded) bumps a
// shard's epoch only when a batch update rebuilds that shard, so baking
// the epoch into the cache key makes invalidation free and exactly scoped:
// after an update, keys for rebuilt shards change (their old entries
// become unreachable and age out of the LRU) while keys for untouched
// shards still hit. No Reset, no scanning, no entries dropped that are
// still valid.

// ShardKey keys a per-shard partial result: base (typically the canonical
// query code) scoped to one shard at one epoch. Entries cached under it
// stay valid exactly as long as the shard is not rebuilt.
func ShardKey(base string, shard int, epoch uint64) string {
	return base + "|s" + strconv.Itoa(shard) + "@" + strconv.FormatUint(epoch, 10)
}

// EpochKey keys a whole-corpus answer: base scoped to the full epoch
// vector. Any shard rebuild changes the key, so a full answer is reused
// only when no shard changed since it was computed — the sound criterion
// for a result that depends on every shard.
func EpochKey(base string, epochs []uint64) string {
	// Pre-size: "|e" + per-epoch digits + separators.
	n := len(base) + 2 + len(epochs)*3
	buf := make([]byte, 0, n)
	buf = append(buf, base...)
	buf = append(buf, '|', 'e')
	for i, e := range epochs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, e, 10)
	}
	return string(buf)
}
