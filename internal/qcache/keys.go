package qcache

import "strconv"

// Per-shard-epoch key helpers. A sharded index (gindex.Sharded) bumps a
// shard's epoch only when a batch update rebuilds that shard, so baking
// the epoch into the cache key makes invalidation free and exactly scoped:
// after an update, keys for rebuilt shards change (their old entries
// become unreachable and age out of the LRU) while keys for untouched
// shards still hit. No Reset, no scanning, no entries dropped that are
// still valid.

// ShardKey keys a per-shard partial result: base (typically the canonical
// query code) scoped to one shard at one epoch. Entries cached under it
// stay valid exactly as long as the shard is not rebuilt.
func ShardKey(base string, shard int, epoch uint64) string {
	return base + "|s" + strconv.Itoa(shard) + "@" + strconv.FormatUint(epoch, 10)
}

// ViewKey keys a materialized sub-pattern view: the complete per-shard
// containment result for one plan fragment (base is the fragment's
// canonical code plus any matching-option signature). The "v|" prefix
// keeps views in a namespace of their own — a fragment that happens to
// equal a user query must never alias the query's budgeted partial,
// because views are computed unbudgeted (they must be complete to make
// join intersection sound). Epoch scoping works exactly like ShardKey:
// an RCU batch update bumps rebuilt shards' epochs, orphaning precisely
// the views over stale shard contents.
func ViewKey(base string, shard int, epoch uint64) string {
	return "v|" + ShardKey(base, shard, epoch)
}

// PlanKey keys a compiled query plan by canonical query code (plus any
// compile-config signature in base) against the full epoch vector: plans
// bake in corpus-wide label statistics, so any shard rebuild invalidates
// them. The "p|" prefix namespaces plans away from whole-query answers
// cached under the same base.
func PlanKey(base string, epochs []uint64) string {
	return EpochKey("p|"+base, epochs)
}

// EpochKey keys a whole-corpus answer: base scoped to the full epoch
// vector. Any shard rebuild changes the key, so a full answer is reused
// only when no shard changed since it was computed — the sound criterion
// for a result that depends on every shard.
func EpochKey(base string, epochs []uint64) string {
	// Pre-size: "|e" + per-epoch digits + separators.
	n := len(base) + 2 + len(epochs)*3
	buf := make([]byte, 0, n)
	buf = append(buf, base...)
	buf = append(buf, '|', 'e')
	for i, e := range epochs {
		if i > 0 {
			buf = append(buf, ',')
		}
		buf = strconv.AppendUint(buf, e, 10)
	}
	return string(buf)
}
