// Package qcache is a bounded, concurrency-safe result cache keyed by
// canonical query codes, with single-flight de-duplication: when many
// goroutines ask for the same key at once, one computes and the rest wait
// for its result instead of repeating the work. vqiserve uses it to make
// repeated and concurrent identical pattern queries hit memory — the same
// canonical-keying idea as pattern.CoverCache, packaged for a serving
// layer that needs LRU bounds and explicit invalidation.
//
// Invalidation is by epoch: Reset bumps the epoch and drops every entry,
// and a computation that began before a Reset refuses to store its (now
// stale) result. The index rebuild path calls Reset, which is the cache's
// whole consistency story — entries never outlive the corpus snapshot
// they were computed against.
package qcache

import (
	"container/list"
	"sync"
)

// Cache is a single-flight LRU cache from string keys to values of type V.
// The zero value is not usable; call New.
type Cache[V any] struct {
	mu      sync.Mutex
	cap     int
	epoch   uint64
	entries map[string]*list.Element
	order   *list.List // front = most recently used
	flights map[string]*flight[V]

	hits, misses, dedups, evictions, resets uint64
}

type entry[V any] struct {
	key string
	val V
}

type flight[V any] struct {
	done  chan struct{}
	epoch uint64
	val   V
	ok    bool
}

// New returns a cache holding at most capacity entries (capacity <= 0
// disables storage; Do then degrades to pure single-flight de-duplication).
func New[V any](capacity int) *Cache[V] {
	return &Cache[V]{
		cap:     capacity,
		entries: make(map[string]*list.Element),
		order:   list.New(),
		flights: make(map[string]*flight[V]),
	}
}

// Stats reports cache traffic: hits, misses (computations started), and
// dedups (callers who waited on another goroutine's computation).
func (c *Cache[V]) Stats() (hits, misses, dedups uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.dedups
}

// Metrics is a full traffic snapshot — what a serving layer's /metrics
// endpoint exposes per cache.
type Metrics struct {
	Hits      uint64 // lookups served from a stored entry
	Misses    uint64 // computations started (fn invocations)
	Dedups    uint64 // callers coalesced onto another goroutine's flight
	Evictions uint64 // entries dropped by the LRU capacity bound
	Resets    uint64 // whole-cache invalidations
	Len       int    // entries currently stored
	// HitRatio is Hits / (Hits + Misses), 0 when no lookups completed.
	HitRatio float64
}

// Metrics returns the cache's traffic counters.
func (c *Cache[V]) Metrics() Metrics {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := Metrics{
		Hits: c.hits, Misses: c.misses, Dedups: c.dedups,
		Evictions: c.evictions, Resets: c.resets, Len: c.order.Len(),
	}
	if total := m.Hits + m.Misses; total > 0 {
		m.HitRatio = float64(m.Hits) / float64(total)
	}
	return m
}

// Len returns the number of stored entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// Reset invalidates the cache: every stored entry is dropped, every
// in-flight computation is barred from storing its result, and flights are
// orphaned so Do calls arriving after the Reset compute fresh rather than
// joining a pre-Reset computation. Callers already waiting on an orphaned
// flight still receive its value (computed against the old snapshot they
// queried under); it just never enters the cache.
func (c *Cache[V]) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch++
	c.resets++
	c.entries = make(map[string]*list.Element)
	c.order.Init()
	c.flights = make(map[string]*flight[V])
}

// Do returns the cached value for key, or computes it with fn. Concurrent
// Do calls with the same key share one fn invocation. fn's second return
// reports whether the value is cacheable — uncacheable results (errors,
// truncated searches) are handed to every waiter but not stored.
func (c *Cache[V]) Do(key string, fn func() (V, bool)) V {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.hits++
		c.order.MoveToFront(el)
		v := el.Value.(*entry[V]).val
		c.mu.Unlock()
		return v
	}
	if f, ok := c.flights[key]; ok {
		c.dedups++
		c.mu.Unlock()
		<-f.done
		return f.val
	}
	f := &flight[V]{done: make(chan struct{}), epoch: c.epoch}
	c.flights[key] = f
	c.misses++
	c.mu.Unlock()

	f.val, f.ok = fn()
	close(f.done)

	c.mu.Lock()
	// Another flight may own the key already if a Reset ran while fn was
	// in progress; only delete our own registration.
	if c.flights[key] == f {
		delete(c.flights, key)
	}
	// Store only when cacheable AND the epoch did not advance under us —
	// a result computed against a pre-Reset snapshot must not survive the
	// invalidation that retired that snapshot.
	if f.ok && f.epoch == c.epoch && c.cap > 0 {
		if el, ok := c.entries[key]; ok {
			c.order.MoveToFront(el)
			el.Value.(*entry[V]).val = f.val
		} else {
			c.entries[key] = c.order.PushFront(&entry[V]{key: key, val: f.val})
			if c.order.Len() > c.cap {
				old := c.order.Back()
				c.order.Remove(old)
				delete(c.entries, old.Value.(*entry[V]).key)
				c.evictions++
			}
		}
	}
	c.mu.Unlock()
	return f.val
}
