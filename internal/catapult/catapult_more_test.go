package catapult

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/pattern"
)

// Additional behavioural tests: budget/weight edge cases and cross-run
// monotonicity properties of the selection.

func TestCoverageMonotoneInBudget(t *testing.T) {
	c := smallCorpus()
	prev := -1.0
	for _, count := range []int{2, 5, 10} {
		res, err := Select(c, Config{
			Budget: pattern.Budget{Count: count, MinSize: 4, MaxSize: 8},
			Seed:   3,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Coverage < prev-1e-9 {
			t.Fatalf("coverage shrank with budget: %v after %v", res.Coverage, prev)
		}
		prev = res.Coverage
	}
}

func TestCoverageOnlyWeightsMaximizeCoverage(t *testing.T) {
	c := smallCorpus()
	b := pattern.Budget{Count: 6, MinSize: 4, MaxSize: 8}
	covOnly, err := Select(c, Config{Budget: b, Weights: pattern.Weights{Coverage: 1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	divOnly, err := Select(c, Config{Budget: b, Weights: pattern.Weights{Diversity: 1}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if covOnly.Coverage < divOnly.Coverage-1e-9 {
		t.Fatalf("coverage-only run (%v) must not cover less than diversity-only (%v)",
			covOnly.Coverage, divOnly.Coverage)
	}
	if pattern.SetDiversity(divOnly.Patterns)+1e-9 < pattern.SetDiversity(covOnly.Patterns) {
		t.Fatalf("diversity-only run must not be less diverse")
	}
}

func TestTightSizeRange(t *testing.T) {
	c := smallCorpus()
	res, err := Select(c, Config{
		Budget: pattern.Budget{Count: 4, MinSize: 6, MaxSize: 6},
		Seed:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.Size() != 6 {
			t.Fatalf("pattern size %d, want exactly 6", p.Size())
		}
	}
}

func TestSingleGraphCorpus(t *testing.T) {
	// CATAPULT degenerates gracefully on a 1-graph corpus: one cluster,
	// the CSG is the graph itself.
	c := datagen.ChemicalCorpus(9, 1, datagen.ChemicalOptions{MinNodes: 20, MaxNodes: 30})
	res, err := Select(c, Config{Budget: pattern.Budget{Count: 3, MinSize: 4, MaxSize: 7}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering.K != 1 || len(res.CSGs) != 1 {
		t.Fatalf("degenerate corpus: K=%d", res.Clustering.K)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns from single graph")
	}
}

func TestSilhouetteClusterSelection(t *testing.T) {
	c := smallCorpus()
	res, err := Select(c, Config{
		Budget:   pattern.Budget{Count: 3, MinSize: 4, MaxSize: 8},
		Clusters: -1,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering.K < 2 {
		t.Fatalf("silhouette selection chose K=%d", res.Clustering.K)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
}

func TestExplicitClusterCount(t *testing.T) {
	c := smallCorpus()
	res, err := Select(c, Config{
		Budget:   pattern.Budget{Count: 3, MinSize: 4, MaxSize: 8},
		Clusters: 3,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Clustering.K != 3 {
		t.Fatalf("K = %d, want 3", res.Clustering.K)
	}
}
