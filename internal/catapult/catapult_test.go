package catapult

import (
	"math/rand"
	"testing"

	"repro/internal/closure"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func smallCorpus() *graph.Corpus {
	return datagen.ChemicalCorpus(5, 40, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 20})
}

func TestSelectEndToEnd(t *testing.T) {
	c := smallCorpus()
	cfg := Config{Budget: pattern.Budget{Count: 6, MinSize: 4, MaxSize: 10}, Seed: 1}
	res, err := Select(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns selected")
	}
	if len(res.Patterns) > 6 {
		t.Fatalf("budget exceeded: %d", len(res.Patterns))
	}
	for _, p := range res.Patterns {
		if p.Size() < 4 || p.Size() > 10 {
			t.Fatalf("pattern %s outside budget size range", p)
		}
		if !p.G.IsConnected() {
			t.Fatalf("pattern %s not connected", p)
		}
		if p.IsBasic() {
			t.Fatalf("canned pattern %s is basic-sized", p)
		}
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		t.Fatalf("coverage = %v", res.Coverage)
	}
	if res.Candidates == 0 {
		t.Fatal("no candidates generated")
	}
	if res.Clustering == nil || len(res.CSGs) != res.Clustering.K {
		t.Fatal("intermediate artifacts missing")
	}
	if res.FCT == nil || len(res.Vectors) != c.Len() {
		t.Fatal("feature artifacts missing")
	}
}

func TestSelectDeterministic(t *testing.T) {
	cfg := Config{Budget: pattern.Budget{Count: 5, MinSize: 4, MaxSize: 8}, Seed: 9}
	a, err := Select(smallCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(smallCorpus(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("pattern counts differ: %d vs %d", len(a.Patterns), len(b.Patterns))
	}
	for i := range a.Patterns {
		if a.Patterns[i].Canon() != b.Patterns[i].Canon() {
			t.Fatalf("pattern %d differs between identical runs", i)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(graph.NewCorpus(), Config{Budget: pattern.DefaultBudget()}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Select(smallCorpus(), Config{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestSelectedPatternsOccurInCorpus(t *testing.T) {
	// Patterns walked from CSGs are not guaranteed to embed in any single
	// member (closure mixes members), but in practice high-weight walks
	// do; verify that the selected set achieves real coverage, which can
	// only come from actual embeddings.
	c := smallCorpus()
	res, err := Select(c, Config{Budget: pattern.Budget{Count: 8, MinSize: 4, MaxSize: 8}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage == 0 {
		t.Fatal("selected set covers nothing — patterns never embed")
	}
}

func TestGreedyPrefersCoverage(t *testing.T) {
	// Corpus: many copies of a square with one diagonal-ish tail plus a
	// rare pentagon. The square pattern should be picked before the
	// pentagon when coverage dominates.
	c := graph.NewCorpus()
	square := func(name string) *graph.Graph {
		g := graph.New(name)
		g.AddNodes(4, "A")
		g.MustAddEdge(0, 1, "-")
		g.MustAddEdge(1, 2, "-")
		g.MustAddEdge(2, 3, "-")
		g.MustAddEdge(3, 0, "-")
		return g
	}
	for i := 0; i < 9; i++ {
		c.MustAdd(square("sq" + string(rune('0'+i))))
	}
	pent := graph.New("pent")
	pent.AddNodes(5, "B")
	for i := 0; i < 5; i++ {
		pent.MustAddEdge(i, (i+1)%5, "-")
	}
	c.MustAdd(pent)

	sqPat := pattern.New(square("p-sq"), "cand")
	pentPat := pattern.New(func() *graph.Graph {
		g := graph.New("p-pent")
		g.AddNodes(5, "B")
		for i := 0; i < 5; i++ {
			g.MustAddEdge(i, (i+1)%5, "-")
		}
		return g
	}(), "cand")

	b := pattern.Budget{Count: 1, MinSize: 4, MaxSize: 6}
	sel, cov := GreedySelect([]*pattern.Pattern{pentPat, sqPat}, c, b, pattern.Weights{Coverage: 1}, pattern.MatchOptions())
	if len(sel) != 1 || sel[0] != sqPat {
		t.Fatal("coverage-weighted greedy must pick the square")
	}
	if cov <= 0 {
		t.Fatalf("coverage = %v", cov)
	}
}

func TestGreedyDiversityAvoidsDuplicates(t *testing.T) {
	c := smallCorpus()
	mk := func() *pattern.Pattern {
		g := graph.New("p")
		g.AddNodes(5, "C")
		for i := 0; i+1 < 5; i++ {
			g.MustAddEdge(i, i+1, "s")
		}
		return pattern.New(g, "cand")
	}
	star := graph.New("s")
	ctr := star.AddNode("C")
	for i := 0; i < 4; i++ {
		l := star.AddNode("C")
		star.MustAddEdge(ctr, l, "s")
	}
	starPat := pattern.New(star, "cand")
	b := pattern.Budget{Count: 2, MinSize: 4, MaxSize: 6}
	// Two identical chains plus one star: with diversity weighting, the
	// second pick must be the star even if the duplicate chain has equal
	// coverage structure.
	sel, _ := GreedySelect([]*pattern.Pattern{mk(), mk(), starPat}, c, b,
		pattern.Weights{Coverage: 1, Diversity: 2}, pattern.MatchOptions())
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	if sel[1].Canon() == sel[0].Canon() {
		t.Fatal("diversity weighting failed to avoid the duplicate")
	}
}

func TestSampleCandidatesRespectBudget(t *testing.T) {
	corpus := smallCorpus()
	var graphs []*graph.Graph
	corpus.Each(func(_ int, g *graph.Graph) { graphs = append(graphs, g) })
	csg := closure.Merge(graphs[:10])
	rng := rand.New(rand.NewSource(3))
	b := pattern.Budget{Count: 10, MinSize: 4, MaxSize: 7}
	cands := SampleCandidates(csg, b, 200, rng)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for _, p := range cands {
		if p.Size() < 4 || p.Size() > 7 {
			t.Fatalf("candidate size %d outside [4,7]", p.Size())
		}
		if !p.G.IsConnected() {
			t.Fatal("candidate not connected")
		}
	}
	// Empty CSG yields nothing.
	if SampleCandidates(closure.Merge(nil), b, 10, rng) != nil {
		t.Fatal("empty CSG must yield no candidates")
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{Budget: pattern.DefaultBudget()}
	cfg.defaults(100)
	if cfg.Clusters < 2 || cfg.WalksPerCSG == 0 || cfg.MinSupportFrac == 0 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
	if cfg.Weights == (pattern.Weights{}) {
		t.Fatal("weights default missing")
	}
}
