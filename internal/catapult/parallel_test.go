package catapult

import (
	"testing"

	"repro/internal/pattern"
)

// selectSignature flattens a Result into a comparable shape: the canonical
// codes and supports of the selected patterns plus the scalar stats.
func selectSignature(t *testing.T, res *Result) []string {
	t.Helper()
	var sig []string
	for _, p := range res.Patterns {
		sig = append(sig, p.Canon())
	}
	return sig
}

// TestSelectWorkerCountInvariant is the tentpole determinism guarantee:
// Workers: 8 must produce byte-identical selections to Workers: 1.
func TestSelectWorkerCountInvariant(t *testing.T) {
	c := smallCorpus()
	base := Config{
		Budget: pattern.Budget{Count: 6, MinSize: 3, MaxSize: 8},
		Seed:   42,
	}

	seq := base
	seq.Workers = 1
	want, err := Select(c, seq)
	if err != nil {
		t.Fatal(err)
	}
	wantSig := selectSignature(t, want)

	for _, workers := range []int{0, 2, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := Select(c, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Candidates != want.Candidates {
			t.Fatalf("workers=%d: %d candidates, sequential %d", workers, got.Candidates, want.Candidates)
		}
		if got.Coverage != want.Coverage {
			t.Fatalf("workers=%d: coverage %v, sequential %v", workers, got.Coverage, want.Coverage)
		}
		gotSig := selectSignature(t, got)
		if len(gotSig) != len(wantSig) {
			t.Fatalf("workers=%d: %d patterns, sequential %d", workers, len(gotSig), len(wantSig))
		}
		for i := range wantSig {
			if gotSig[i] != wantSig[i] {
				t.Fatalf("workers=%d: pattern %d differs from sequential", workers, i)
			}
		}
		for i := range want.Vectors {
			for j := range want.Vectors[i] {
				if got.Vectors[i][j] != want.Vectors[i][j] {
					t.Fatalf("workers=%d: feature vector %d differs", workers, i)
				}
			}
		}
		if got.Clustering.K != want.Clustering.K {
			t.Fatalf("workers=%d: K=%d, sequential %d", workers, got.Clustering.K, want.Clustering.K)
		}
		for i, a := range want.Clustering.Assignments {
			if got.Clustering.Assignments[i] != a {
				t.Fatalf("workers=%d: assignment %d differs", workers, i)
			}
		}
	}
}

// TestSelectWorkerCountInvariantSilhouette covers the Clusters: -1 path
// (silhouette-driven K selection) under the same invariance requirement.
func TestSelectWorkerCountInvariantSilhouette(t *testing.T) {
	c := smallCorpus()
	base := Config{
		Budget:   pattern.Budget{Count: 4, MinSize: 3, MaxSize: 8},
		Clusters: -1,
		Seed:     7,
	}
	seq := base
	seq.Workers = 1
	want, err := Select(c, seq)
	if err != nil {
		t.Fatal(err)
	}
	wantSig := selectSignature(t, want)
	par := base
	par.Workers = 8
	got, err := Select(c, par)
	if err != nil {
		t.Fatal(err)
	}
	gotSig := selectSignature(t, got)
	if len(gotSig) != len(wantSig) {
		t.Fatalf("workers=8: %d patterns, sequential %d", len(gotSig), len(wantSig))
	}
	for i := range wantSig {
		if gotSig[i] != wantSig[i] {
			t.Fatalf("workers=8: pattern %d differs from sequential", i)
		}
	}
}
