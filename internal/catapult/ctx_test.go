package catapult

import (
	"context"
	"testing"

	"repro/internal/datagen"
	"repro/internal/pattern"
)

func TestSelectCtxCanceledDegradesGracefully(t *testing.T) {
	c := datagen.ChemicalCorpus(5, 40, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 20})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SelectCtx(ctx, c, Config{
		Budget: pattern.Budget{Count: 6, MinSize: 4, MaxSize: 10}, Seed: 3})
	if err != nil {
		t.Fatalf("canceled context must degrade, not error: %v", err)
	}
	if !res.Truncated {
		t.Fatal("canceled run not marked truncated")
	}
	if len(res.Patterns) != 0 {
		// A pre-canceled context may still produce an empty (valid)
		// selection; it must never produce budget-violating patterns.
		for _, p := range res.Patterns {
			if p.G.NumEdges() < 4 || p.G.NumEdges() > 10 {
				t.Fatalf("truncated run emitted out-of-budget pattern (%d edges)", p.G.NumEdges())
			}
		}
	}
}

func TestSelectCtxBackgroundMatchesSelect(t *testing.T) {
	c := datagen.ChemicalCorpus(5, 30, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	cfg := Config{Budget: pattern.Budget{Count: 4, MinSize: 4, MaxSize: 9}, Seed: 11}
	plain, err := Select(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SelectCtx(context.Background(), c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withCtx.Truncated {
		t.Fatal("live context marked truncated")
	}
	if len(plain.Patterns) != len(withCtx.Patterns) {
		t.Fatalf("pattern count diverged: %d vs %d", len(plain.Patterns), len(withCtx.Patterns))
	}
	for i := range plain.Patterns {
		if plain.Patterns[i].Canon() != withCtx.Patterns[i].Canon() {
			t.Fatalf("pattern %d diverged under a live context", i)
		}
	}
	if plain.Coverage != withCtx.Coverage {
		t.Fatalf("coverage diverged: %v vs %v", plain.Coverage, withCtx.Coverage)
	}
}

func TestGreedySelectCachedCtxPartial(t *testing.T) {
	c := datagen.ChemicalCorpus(5, 25, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	res, err := Select(c, Config{Budget: pattern.Budget{Count: 8, MinSize: 4, MaxSize: 10}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Candidates == 0 {
		t.Skip("no candidates on this seed")
	}
	// Regenerate the candidate pool and select under a dead context: the
	// greedy loop must return immediately with an empty partial selection.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cc := pattern.NewCoverCache(c, pattern.NewUniverse(c), pattern.MatchOptions())
	sel, _, truncated := GreedySelectCachedCtx(ctx, res.Patterns, cc, pattern.Budget{Count: 8, MinSize: 4, MaxSize: 10}, pattern.DefaultWeights(), 0)
	if !truncated {
		t.Fatal("dead-context greedy not marked truncated")
	}
	if len(sel) != 0 {
		t.Fatalf("dead-context greedy selected %d patterns", len(sel))
	}
}
