// Package catapult implements the CATAPULT framework: data-driven selection
// of canned patterns from a large collection of small- or medium-sized data
// graphs (SIGMOD 2019, as reviewed in the tutorial's Section 2.3).
//
// The pipeline has three steps:
//
//  1. Cluster the corpus: each data graph is embedded as a frequent-tree
//     feature vector (package fct) and the corpus is partitioned with
//     k-medoids (package cluster).
//  2. Summarize each cluster into a cluster summary graph by iterated
//     graph closure (package closure); shared motifs accumulate weight.
//  3. Generate candidate patterns by weighted random walks over the CSGs
//     (transition probability proportional to edge weight, so walks follow
//     substructures common across the cluster), then greedily select the
//     canned pattern set: each step picks the candidate maximizing a
//     pattern score combining marginal coverage gain, marginal structural
//     diversity, and (negatively) cognitive load, until the user budget is
//     met or candidates are exhausted.
package catapult

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/closure"
	"repro/internal/cluster"
	"repro/internal/fct"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pattern"
)

// Config parameterizes a CATAPULT run.
type Config struct {
	// Budget is the user-specified pattern budget (count and size range).
	Budget pattern.Budget
	// Weights balance coverage, diversity and cognitive load in the greedy
	// pattern score.
	Weights pattern.Weights
	// Clusters is the number of corpus clusters: 0 = the ~√N heuristic
	// (capped at 16); -1 = silhouette-based selection (cluster.SelectK,
	// slower but data-driven); otherwise the explicit count.
	Clusters int
	// WalksPerCSG is the number of candidate-generating random walks per
	// cluster summary graph (0 = 120).
	WalksPerCSG int
	// MinSupportFrac is the frequent-tree support threshold as a fraction
	// of the corpus size (0 = 0.1).
	MinSupportFrac float64
	// FeatureMaxEdges bounds the mined feature trees (0 = 2).
	FeatureMaxEdges int
	// Seed drives all randomized stages; runs are deterministic per seed.
	Seed int64
	// Match bounds embedding searches during scoring (zero value =
	// pattern.MatchOptions()).
	Match isomorph.Options
	// Workers bounds the worker pool used by the parallel stages (feature
	// vectors, clustering, CSG construction, candidate walks, coverage
	// sweeps). <= 0 means GOMAXPROCS. Results are identical at any value:
	// every stage writes slot-indexed output and candidate walks draw from
	// per-cluster RNGs seeded by par.ChildSeed(Seed, cluster).
	Workers int
}

func (c *Config) defaults(corpusLen int) {
	if c.Clusters == 0 {
		c.Clusters = 1
		for c.Clusters*c.Clusters < corpusLen && c.Clusters < 16 {
			c.Clusters++
		}
	}
	if c.WalksPerCSG == 0 {
		c.WalksPerCSG = 120
	}
	if c.MinSupportFrac == 0 {
		c.MinSupportFrac = 0.1
	}
	if c.FeatureMaxEdges == 0 {
		c.FeatureMaxEdges = 2
	}
	if c.Weights == (pattern.Weights{}) {
		c.Weights = pattern.DefaultWeights()
	}
	if c.Match.IsZero() {
		c.Match = pattern.MatchOptions()
	}
}

// Result carries the selected patterns and every intermediate artifact
// (MIDAS maintains these rather than recomputing them).
type Result struct {
	Patterns   []*pattern.Pattern
	FCT        *fct.Set
	Vectors    [][]float64 // feature vector per corpus position
	Clustering *cluster.Clustering
	CSGs       []*closure.CSG // one per cluster
	Candidates int            // distinct candidates generated
	Coverage   float64        // corpus edge coverage of the selected set
	// Truncated reports that the run's context was canceled mid-pipeline:
	// the result holds the best pattern set reachable within the budget
	// (possibly empty) rather than the full selection.
	Truncated bool
}

// Select runs the full CATAPULT pipeline over the corpus.
func Select(c *graph.Corpus, cfg Config) (*Result, error) {
	return SelectCtx(context.Background(), c, cfg)
}

// SelectCtx is Select under a context: the pipeline checks ctx between
// stages (and inside the parallel/VF2-heavy ones) and degrades gracefully —
// when the context dies, the stages completed so far are returned with
// Result.Truncated set instead of an error, so an interactive caller gets
// the best-so-far pattern set. Validation errors are still errors.
func SelectCtx(ctx context.Context, c *graph.Corpus, cfg Config) (*Result, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("catapult: empty corpus")
	}
	if err := cfg.Budget.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults(c.Len())
	if cfg.Match.Ctx == nil {
		// Thread the run context into every embedding search so even a
		// single pathological VF2 sweep respects the deadline.
		cfg.Match.Ctx = ctx
	}

	res := &Result{}
	// Each pipeline stage runs under an obs span: the stage's wall time
	// lands in the global stage_seconds histogram, and when the context
	// carries a trace (vqibuild -metrics) the per-run stage table gets a
	// row. The deferred closer ends whichever stage an early (truncated or
	// failed) return leaves open.
	var stage *obs.Span
	endStage := func() {
		if stage != nil {
			stage.End()
			stage = nil
		}
	}
	defer endStage()

	// Step 1: features and clustering.
	_, stage = obs.StartSpan(ctx, "catapult.cluster")
	minSup := int(cfg.MinSupportFrac * float64(c.Len()))
	if minSup < 1 {
		minSup = 1
	}
	set, err := fct.Miner{MinSupport: minSup, MaxEdges: cfg.FeatureMaxEdges}.Mine(c)
	if err != nil {
		return nil, err
	}
	res.FCT = set
	res.Vectors = make([][]float64, c.Len())
	// Per-graph feature vectors are cheap (a handful of VF2 probes), so
	// fan out only when each worker gets a meaningful batch — small
	// corpora run inline (the 0.96× Select regression in
	// BENCH_parallel.json was goroutine overhead on exactly this stage).
	if err := par.ForEachNCtx(ctx, c.Len(), par.Grain(cfg.Workers, c.Len(), 8), func(i int) {
		res.Vectors[i] = set.FeatureVector(c.Graph(i))
	}); err != nil {
		res.Truncated = true
		return res, nil
	}
	var cl *cluster.Clustering
	if cfg.Clusters == -1 {
		maxK := 2
		for maxK*maxK < c.Len() && maxK < 16 {
			maxK++
		}
		_, selected, err := cluster.SelectKN(res.Vectors, maxK, cluster.Jaccard, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, err
		}
		cl = selected
	} else {
		var err error
		cl, err = cluster.KMedoidsN(res.Vectors, cfg.Clusters, cluster.Jaccard, cfg.Seed, 0, cfg.Workers)
		if err != nil {
			return nil, err
		}
	}
	res.Clustering = cl
	endStage()
	if ctx.Err() != nil {
		res.Truncated = true
		return res, nil
	}

	// Step 2: one CSG per cluster.
	_, stage = obs.StartSpan(ctx, "catapult.csg")
	csgs := make([]*closure.CSG, cl.K)
	if err := par.ForEachNCtx(ctx, cl.K, cfg.Workers, func(ci int) {
		var members []*graph.Graph
		for _, idx := range cl.Members(ci) {
			members = append(members, c.Graph(idx))
		}
		csgs[ci] = closure.Merge(members)
	}); err != nil {
		res.Truncated = true
		return res, nil
	}
	res.CSGs = csgs
	endStage()

	// Step 3: candidates and greedy selection. Each cluster's walks use a
	// private RNG seeded from (Seed, cluster index), so the candidate stream
	// per cluster is a pure function of the seed — independent of how the
	// clusters are scheduled across workers.
	_, stage = obs.StartSpan(ctx, "catapult.walk")
	perCSG, err := par.MapCtx(ctx, len(res.CSGs), cfg.Workers, func(ci int) []*pattern.Pattern {
		rng := rand.New(rand.NewSource(par.ChildSeed(cfg.Seed, ci)))
		return SampleCandidates(res.CSGs[ci], cfg.Budget, cfg.WalksPerCSG, rng)
	})
	if err != nil {
		res.Truncated = true
		return res, nil
	}
	var candidates []*pattern.Pattern
	for _, part := range perCSG {
		candidates = append(candidates, part...)
	}
	candidates = pattern.Dedup(candidates)
	res.Candidates = len(candidates)
	endStage()

	_, stage = obs.StartSpan(ctx, "catapult.select")
	var truncated bool
	res.Patterns, res.Coverage, truncated = greedySelectCtx(ctx, candidates, c, cfg.Budget, cfg.Weights, cfg.Match, cfg.Workers)
	res.Truncated = res.Truncated || truncated
	return res, nil
}

// BuildCSGs merges each cluster's member graphs into a cluster summary
// graph, in cluster order. Equivalent to BuildCSGsN with
// workers = GOMAXPROCS.
func BuildCSGs(c *graph.Corpus, cl *cluster.Clustering) []*closure.CSG {
	return BuildCSGsN(c, cl, 0)
}

// BuildCSGsN is BuildCSGs with an explicit worker count: clusters are
// disjoint and closure.Merge only reads the member graphs, so each summary
// is built independently into its slot.
func BuildCSGsN(c *graph.Corpus, cl *cluster.Clustering, workers int) []*closure.CSG {
	csgs := make([]*closure.CSG, cl.K)
	par.ForEachN(cl.K, workers, func(ci int) {
		var members []*graph.Graph
		for _, idx := range cl.Members(ci) {
			members = append(members, c.Graph(idx))
		}
		csgs[ci] = closure.Merge(members)
	})
	return csgs
}

// SampleCandidates generates candidate patterns from a CSG by weighted
// random walks: a walk starts at an edge drawn proportionally to its
// weight, repeatedly extends across frontier edges (again weight-
// proportional) until a target size drawn from the budget's range, and
// emits the walked subgraph as a candidate. Only candidates within the
// budget's size range survive.
func SampleCandidates(csg *closure.CSG, b pattern.Budget, walks int, rng *rand.Rand) []*pattern.Pattern {
	g := csg.G
	if g.NumEdges() == 0 {
		return nil
	}
	// Cumulative weights for start-edge sampling.
	cum := make([]int, g.NumEdges())
	total := 0
	for e := 0; e < g.NumEdges(); e++ {
		total += csg.EdgeWeight[e]
		cum[e] = total
	}
	pickStart := func() graph.EdgeID {
		x := rng.Intn(total)
		lo := sort.SearchInts(cum, x+1)
		return graph.EdgeID(lo)
	}
	var out []*pattern.Pattern
	for w := 0; w < walks; w++ {
		target := b.MinSize + rng.Intn(b.MaxSize-b.MinSize+1)
		inWalk := map[graph.EdgeID]bool{}
		inNodes := map[graph.NodeID]bool{}
		var nodeList []graph.NodeID // insertion-ordered for determinism
		addNode := func(v graph.NodeID) {
			if !inNodes[v] {
				inNodes[v] = true
				nodeList = append(nodeList, v)
			}
		}
		start := pickStart()
		walkEdges := []graph.EdgeID{start}
		inWalk[start] = true
		se := g.Edge(start)
		addNode(se.U)
		addNode(se.V)
		for len(walkEdges) < target {
			// Frontier: edges incident to walked nodes, not yet in walk.
			var frontier []graph.EdgeID
			fTotal := 0
			inFrontier := map[graph.EdgeID]bool{}
			for _, v := range nodeList {
				g.VisitNeighbors(v, func(_ graph.NodeID, e graph.EdgeID) bool {
					if !inWalk[e] && !inFrontier[e] {
						inFrontier[e] = true
						frontier = append(frontier, e)
						fTotal += csg.EdgeWeight[e]
					}
					return true
				})
			}
			if len(frontier) == 0 || fTotal == 0 {
				break
			}
			x := rng.Intn(fTotal)
			var next graph.EdgeID
			for _, e := range frontier {
				x -= csg.EdgeWeight[e]
				if x < 0 {
					next = e
					break
				}
			}
			inWalk[next] = true
			walkEdges = append(walkEdges, next)
			ne := g.Edge(next)
			addNode(ne.U)
			addNode(ne.V)
		}
		if len(walkEdges) < b.MinSize {
			continue
		}
		sub, _ := g.SubgraphFromEdges(walkEdges)
		sub.SetName(fmt.Sprintf("catapult-w%d", w))
		p := pattern.New(sub, "catapult")
		p.Support = csg.Members
		if b.Admits(p) && sub.IsConnected() {
			out = append(out, p)
		}
	}
	return out
}

// GreedySelect repeatedly picks the candidate with the highest pattern
// score — weighted normalized marginal coverage gain plus marginal
// diversity minus normalized cognitive load — until the budget count is
// reached or candidates run out. It returns the selection and its corpus
// edge coverage. Each candidate's covered-edge bitset is computed exactly
// once (one bounded VF2 sweep over the corpus); the greedy rounds are then
// pure bitset arithmetic, which is what keeps selection time linear-ish in
// corpus size. The same loop serves CATAPULT, the modular extractor, and
// (via swapping) MIDAS.
func GreedySelect(candidates []*pattern.Pattern, c *graph.Corpus, b pattern.Budget, w pattern.Weights, opts isomorph.Options) ([]*pattern.Pattern, float64) {
	return GreedySelectN(candidates, c, b, w, opts, 0)
}

// GreedySelectN is GreedySelect with an explicit worker count for the
// coverage sweep.
func GreedySelectN(candidates []*pattern.Pattern, c *graph.Corpus, b pattern.Budget, w pattern.Weights, opts isomorph.Options, workers int) ([]*pattern.Pattern, float64) {
	cc := pattern.NewCoverCache(c, pattern.NewUniverse(c), opts)
	return GreedySelectCached(candidates, cc, b, w, workers)
}

// greedySelectCtx is the context-aware selection used by SelectCtx: the
// coverage sweep inherits any Ctx inside opts (sweeps self-truncate on
// deadline) and the greedy rounds stop early on cancellation, returning
// the patterns picked so far with truncated = true.
func greedySelectCtx(ctx context.Context, candidates []*pattern.Pattern, c *graph.Corpus, b pattern.Budget, w pattern.Weights, opts isomorph.Options, workers int) ([]*pattern.Pattern, float64, bool) {
	cc := pattern.NewCoverCache(c, pattern.NewUniverse(c), opts)
	return GreedySelectCachedCtx(ctx, candidates, cc, b, w, workers)
}

// GreedySelectCached is the greedy loop against a shared coverage cache:
// candidates whose canonical form was already evaluated (in this call or a
// previous one against the same cache) reuse the memoized bitset instead of
// re-running the VF2 sweep. MIDAS holds one cache across swap scans for
// exactly this reason.
func GreedySelectCached(candidates []*pattern.Pattern, cc *pattern.CoverCache, b pattern.Budget, w pattern.Weights, workers int) ([]*pattern.Pattern, float64) {
	sel, cov, _ := GreedySelectCachedCtx(context.Background(), candidates, cc, b, w, workers)
	return sel, cov
}

// GreedySelectCachedCtx is GreedySelectCached under a context: each greedy
// round starts only while ctx is live, so a deadline yields the best
// partial selection instead of blocking. The boolean reports truncation.
func GreedySelectCachedCtx(ctx context.Context, candidates []*pattern.Pattern, cc *pattern.CoverCache, b pattern.Budget, w pattern.Weights, workers int) ([]*pattern.Pattern, float64, bool) {
	pool := make([]*pattern.Pattern, 0, len(candidates))
	for _, p := range candidates {
		if b.Admits(p) {
			pool = append(pool, p)
		}
	}
	u := cc.Universe()
	covers := cc.Bitsets(pool, workers)
	covered := pattern.NewBitset(u.Total())
	total := float64(u.Total())
	truncated := false
	var selected []*pattern.Pattern
	alive := make([]bool, len(pool))
	for i := range alive {
		alive[i] = true
	}
	for len(selected) < b.Count {
		if ctx.Err() != nil {
			truncated = true
			break
		}
		bestI := -1
		bestScore := 0.0
		for i, p := range pool {
			if !alive[i] {
				continue
			}
			covGain := 0.0
			if total > 0 {
				covGain = float64(covers[i].AndNotCount(covered)) / total
			}
			score := w.Coverage*covGain +
				w.Diversity*pattern.MarginalDiversity(selected, p) -
				w.CogLoad*pattern.NormalizedCognitiveLoad(p, b)
			if bestI == -1 || score > bestScore {
				bestI, bestScore = i, score
			}
		}
		if bestI == -1 {
			break
		}
		alive[bestI] = false
		covered.Or(covers[bestI])
		selected = append(selected, pool[bestI])
	}
	coverage := 0.0
	if u.Total() > 0 {
		coverage = float64(covered.Popcount()) / total
	}
	return selected, coverage, truncated
}
