package pattern

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/isomorph"
)

func pathPattern(n int, label string) *Pattern {
	g := graph.New("p")
	g.AddNodes(n, label)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, isomorph.Wildcard)
	}
	return New(g, "test")
}

func cyclePattern(n int, label string) *Pattern {
	g := graph.New("c")
	g.AddNodes(n, label)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, isomorph.Wildcard)
	}
	return New(g, "test")
}

func starPattern(leaves int) *Pattern {
	g := graph.New("s")
	c := g.AddNode(isomorph.Wildcard)
	for i := 0; i < leaves; i++ {
		l := g.AddNode(isomorph.Wildcard)
		g.MustAddEdge(c, l, isomorph.Wildcard)
	}
	return New(g, "test")
}

func testCorpus() *graph.Corpus {
	c := graph.NewCorpus()
	// g0: triangle with tail (4 edges).
	g0 := graph.New("g0")
	g0.AddNodes(4, "A")
	g0.MustAddEdge(0, 1, "-")
	g0.MustAddEdge(1, 2, "-")
	g0.MustAddEdge(0, 2, "-")
	g0.MustAddEdge(2, 3, "-")
	c.MustAdd(g0)
	// g1: path of 4 (3 edges).
	g1 := graph.New("g1")
	g1.AddNodes(4, "A")
	g1.MustAddEdge(0, 1, "-")
	g1.MustAddEdge(1, 2, "-")
	g1.MustAddEdge(2, 3, "-")
	c.MustAdd(g1)
	return c
}

func TestBasicPatterns(t *testing.T) {
	basics := Basic()
	if len(basics) != 3 {
		t.Fatalf("Basic() returned %d patterns", len(basics))
	}
	sizes := []int{1, 2, 3}
	for i, p := range basics {
		if p.Size() != sizes[i] {
			t.Errorf("basic %d: size %d, want %d", i, p.Size(), sizes[i])
		}
		if !p.IsBasic() {
			t.Errorf("basic %d not flagged basic", i)
		}
		if p.Source != "basic" {
			t.Errorf("basic %d source = %q", i, p.Source)
		}
	}
	if pathPattern(6, "A").IsBasic() {
		t.Fatal("5-edge path flagged basic")
	}
}

func TestBudgetValidate(t *testing.T) {
	if err := DefaultBudget().Validate(); err != nil {
		t.Fatalf("default budget invalid: %v", err)
	}
	bad := []Budget{
		{Count: 0, MinSize: 4, MaxSize: 12},
		{Count: 5, MinSize: 0, MaxSize: 12},
		{Count: 5, MinSize: 8, MaxSize: 4},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("budget %d (%+v) accepted", i, b)
		}
	}
	b := Budget{Count: 3, MinSize: 4, MaxSize: 6}
	if b.Admits(pathPattern(4, "A")) { // 3 edges
		t.Fatal("3-edge pattern admitted into [4,6]")
	}
	if !b.Admits(pathPattern(5, "A")) { // 4 edges
		t.Fatal("4-edge pattern rejected from [4,6]")
	}
}

func TestCognitiveLoadOrdering(t *testing.T) {
	edge := pathPattern(2, "A")
	p6 := pathPattern(7, "A") // 6-edge path, sparse
	c6 := cyclePattern(6, "A")
	k4 := New(clique(4), "test") // 6 edges, dense
	if CognitiveLoad(edge) >= CognitiveLoad(p6) {
		t.Fatal("longer pattern must load more than an edge")
	}
	if CognitiveLoad(p6) >= CognitiveLoad(k4) {
		t.Fatalf("dense 6-edge pattern must load more than sparse 6-edge path: %v vs %v",
			CognitiveLoad(p6), CognitiveLoad(k4))
	}
	if CognitiveLoad(c6) >= CognitiveLoad(k4) {
		t.Fatal("clique must load more than cycle of equal edge count")
	}
	b := Budget{Count: 5, MinSize: 4, MaxSize: 12}
	for _, p := range []*Pattern{edge, p6, c6, k4} {
		n := NormalizedCognitiveLoad(p, b)
		if n < 0 || n > 1 {
			t.Fatalf("normalized load %v out of [0,1]", n)
		}
	}
	if SetCognitiveLoad(nil, b) != 0 {
		t.Fatal("empty set load must be 0")
	}
}

func clique(n int) *graph.Graph {
	g := graph.New("k")
	g.AddNodes(n, "A")
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, "-")
		}
	}
	return g
}

func TestSimilarityProperties(t *testing.T) {
	p := cyclePattern(5, "A")
	q := pathPattern(6, "A")
	if s := Similarity(p, p); math.Abs(s-1) > 1e-9 {
		t.Fatalf("self similarity = %v, want 1", s)
	}
	if s1, s2 := Similarity(p, q), Similarity(q, p); math.Abs(s1-s2) > 1e-12 {
		t.Fatal("similarity not symmetric")
	}
	if s := Similarity(p, q); s < 0 || s > 1 {
		t.Fatalf("similarity %v out of range", s)
	}
	// A cycle is more similar to another cycle than to a star.
	if Similarity(cyclePattern(5, "A"), cyclePattern(6, "A")) <= Similarity(cyclePattern(5, "A"), starPattern(5)) {
		t.Fatal("cycle-cycle similarity should exceed cycle-star")
	}
}

func TestSetDiversity(t *testing.T) {
	if SetDiversity(nil) != 1 || SetDiversity([]*Pattern{starPattern(4)}) != 1 {
		t.Fatal("small sets must be vacuously diverse")
	}
	same := []*Pattern{cyclePattern(5, "A"), cyclePattern(5, "A")}
	mixed := []*Pattern{cyclePattern(5, "A"), starPattern(5)}
	if SetDiversity(same) >= SetDiversity(mixed) {
		t.Fatalf("identical set diversity %v must be below mixed %v",
			SetDiversity(same), SetDiversity(mixed))
	}
	if d := SetDiversity(same); math.Abs(d) > 1e-9 {
		t.Fatalf("identical pair diversity = %v, want 0", d)
	}
	// Marginal diversity of a duplicate is 0; of something different, > 0.
	set := []*Pattern{cyclePattern(5, "A")}
	if md := MarginalDiversity(set, cyclePattern(5, "A")); math.Abs(md) > 1e-9 {
		t.Fatalf("duplicate marginal diversity = %v", md)
	}
	if MarginalDiversity(set, starPattern(6)) <= 0 {
		t.Fatal("novel pattern must add diversity")
	}
	if MarginalDiversity(nil, starPattern(6)) != 1 {
		t.Fatal("empty-set marginal diversity must be 1")
	}
}

func TestGraphCoverage(t *testing.T) {
	c := testCorpus()
	opts := MatchOptions()
	tri := cyclePattern(3, "A")
	tri.G.SetNodeLabel(0, "A")
	// Triangle covers only g0.
	if cov := GraphCoverage(cyclePattern(3, isomorph.Wildcard), c, opts); cov != 0.5 {
		t.Fatalf("triangle coverage = %v, want 0.5", cov)
	}
	// Edge covers both.
	if cov := GraphCoverage(pathPattern(2, isomorph.Wildcard), c, opts); cov != 1 {
		t.Fatalf("edge coverage = %v, want 1", cov)
	}
	if GraphCoverage(pathPattern(2, isomorph.Wildcard), graph.NewCorpus(), opts) != 0 {
		t.Fatal("empty corpus coverage must be 0")
	}
}

func TestCoverageIndex(t *testing.T) {
	c := testCorpus() // 7 edges total
	idx := NewCoverageIndex(c, MatchOptions())
	if idx.TotalEdges() != 7 || idx.Covered() != 0 {
		t.Fatalf("fresh index: total=%d covered=%v", idx.TotalEdges(), idx.Covered())
	}
	tri := cyclePattern(3, isomorph.Wildcard)
	if gain := idx.Gain(tri); gain != 3 {
		t.Fatalf("triangle gain = %d, want 3", gain)
	}
	if got := idx.Commit(tri); got != 3 {
		t.Fatalf("triangle commit = %d, want 3", got)
	}
	// Second commit of the same pattern adds nothing.
	if got := idx.Commit(tri); got != 0 {
		t.Fatalf("repeat commit = %d, want 0", got)
	}
	if cov := idx.Covered(); math.Abs(cov-3.0/7) > 1e-12 {
		t.Fatalf("covered = %v, want 3/7", cov)
	}
	// Path4 (3 edges) covers g1 fully and the tail paths in g0.
	p4 := pathPattern(4, isomorph.Wildcard)
	gainBefore := idx.Gain(p4)
	clone := idx.Clone()
	idx.Commit(p4)
	if clone.Covered() == idx.Covered() {
		t.Fatal("clone must be independent")
	}
	if gainBefore == 0 {
		t.Fatal("path4 should cover new edges")
	}
}

func TestSetEdgeCoverageAndScore(t *testing.T) {
	c := testCorpus()
	opts := MatchOptions()
	b := Budget{Count: 2, MinSize: 1, MaxSize: 12}
	w := DefaultWeights()
	edgeOnly := []*Pattern{pathPattern(2, isomorph.Wildcard)}
	if cov := SetEdgeCoverage(edgeOnly, c, opts); cov != 1 {
		t.Fatalf("edge pattern set coverage = %v", cov)
	}
	triOnly := []*Pattern{cyclePattern(3, isomorph.Wildcard)}
	if cov := SetEdgeCoverage(triOnly, c, opts); math.Abs(cov-3.0/7) > 1e-12 {
		t.Fatalf("triangle set coverage = %v", cov)
	}
	// Score rewards coverage: edge-only set beats triangle-only under
	// equal weights (higher coverage, lower load).
	if SetScore(edgeOnly, c, b, w, opts) <= SetScore(triOnly, c, b, w, opts) {
		t.Fatal("score ordering wrong")
	}
}

func TestDedup(t *testing.T) {
	a := cyclePattern(5, "A")
	b := cyclePattern(5, "A") // isomorphic duplicate
	s := starPattern(4)
	out := Dedup([]*Pattern{a, b, s})
	if len(out) != 2 {
		t.Fatalf("Dedup kept %d, want 2", len(out))
	}
	if out[0] != a || out[1] != s {
		t.Fatal("Dedup must preserve first occurrences in order")
	}
}

func TestSingletonCorpus(t *testing.T) {
	g := clique(4)
	c := SingletonCorpus(g)
	if c.Len() != 1 || c.Graph(0) != g {
		t.Fatal("singleton corpus wrong")
	}
}

func TestPatternString(t *testing.T) {
	p := starPattern(3)
	if p.String() != "test[n=4,m=3]" {
		t.Fatalf("String = %q", p.String())
	}
	if p.Canon() == "" || p.Canon() != p.Canon() {
		t.Fatal("Canon must be stable and non-empty")
	}
}
