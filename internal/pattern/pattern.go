// Package pattern defines the pattern model shared by every selection and
// maintenance framework in this repository, together with the three quality
// measures the tutorial reviews: coverage, diversity, and cognitive load.
//
// Terminology follows the tutorial (Section 2.3):
//
//   - A basic (default) pattern has size at most BasicMaxSize edges (edge,
//     2-path, triangle). End users know these shapes; every VQI exposes
//     them statically.
//   - A canned pattern is a connected subgraph larger than BasicMaxSize,
//     mined from the data source; canned pattern sets should have high
//     coverage, high structural diversity, and low cognitive load.
//
// Pattern size is measured in edges, consistent with the "edge, 2-edge,
// triangle" enumeration of basic patterns in the tutorial.
package pattern

import (
	"fmt"
	"math"

	"repro/internal/canon"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/isomorph"
	"repro/internal/plan"
)

// BasicMaxSize is the maximum size (in edges) of a basic pattern; larger
// patterns are canned patterns. The tutorial uses z ≤ 3.
const BasicMaxSize = 3

// Pattern is a reusable query building block displayed on a VQI's Pattern
// Panel.
type Pattern struct {
	// G is the pattern graph. Node/edge labels may be isomorph.Wildcard to
	// match any label.
	G *graph.Graph
	// Source records which generator produced the pattern (e.g. "basic",
	// "catapult", "tattoo:star"), for reporting and ablation.
	Source string
	// Support is generator-specific frequency information (e.g. number of
	// cluster summary graphs or truss regions the pattern occurred in).
	Support int

	canonStr string    // lazily computed canonical form
	features []float64 // lazily computed feature vector
}

// New wraps a graph as a pattern.
func New(g *graph.Graph, source string) *Pattern {
	return &Pattern{G: g, Source: source}
}

// Size returns the pattern size in edges.
func (p *Pattern) Size() int { return p.G.NumEdges() }

// Nodes returns the number of nodes.
func (p *Pattern) Nodes() int { return p.G.NumNodes() }

// IsBasic reports whether the pattern is a basic (default) pattern.
func (p *Pattern) IsBasic() bool { return p.Size() <= BasicMaxSize }

// Canon returns the canonical string of the pattern graph, computed once.
func (p *Pattern) Canon() string {
	if p.canonStr == "" {
		p.canonStr = canon.String(p.G)
	}
	return p.canonStr
}

// String returns a short description.
func (p *Pattern) String() string {
	return fmt.Sprintf("%s[n=%d,m=%d]", p.Source, p.G.NumNodes(), p.G.NumEdges())
}

// Budget is the user-specified constraint on a canned pattern set: how many
// patterns the Pattern Panel displays and the permissible size range (in
// edges) of each.
type Budget struct {
	Count   int // number of canned patterns to select
	MinSize int // minimum pattern size in edges (> BasicMaxSize for canned)
	MaxSize int // maximum pattern size in edges
}

// Validate returns an error if the budget is not sensible.
func (b Budget) Validate() error {
	if b.Count <= 0 {
		return fmt.Errorf("pattern: budget count %d must be positive", b.Count)
	}
	if b.MinSize <= 0 || b.MaxSize < b.MinSize {
		return fmt.Errorf("pattern: budget size range [%d,%d] invalid", b.MinSize, b.MaxSize)
	}
	return nil
}

// Admits reports whether a pattern's size falls within the budget's range.
func (b Budget) Admits(p *Pattern) bool {
	return p.Size() >= b.MinSize && p.Size() <= b.MaxSize
}

// DefaultBudget mirrors the ranges used in the surveyed evaluations: 10
// patterns of 4-12 edges.
func DefaultBudget() Budget { return Budget{Count: 10, MinSize: 4, MaxSize: 12} }

// Basic returns the three basic patterns (edge, 2-path, triangle) with
// wildcard labels. Every VQI, manual or data-driven, exposes these.
func Basic() []*Pattern {
	edge := graph.New("basic-edge")
	edge.AddNodes(2, isomorph.Wildcard)
	edge.MustAddEdge(0, 1, isomorph.Wildcard)

	path2 := graph.New("basic-2path")
	path2.AddNodes(3, isomorph.Wildcard)
	path2.MustAddEdge(0, 1, isomorph.Wildcard)
	path2.MustAddEdge(1, 2, isomorph.Wildcard)

	tri := graph.New("basic-triangle")
	tri.AddNodes(3, isomorph.Wildcard)
	tri.MustAddEdge(0, 1, isomorph.Wildcard)
	tri.MustAddEdge(1, 2, isomorph.Wildcard)
	tri.MustAddEdge(0, 2, isomorph.Wildcard)

	return []*Pattern{New(edge, "basic"), New(path2, "basic"), New(tri, "basic")}
}

// MatchOptions returns the embedding-search budgets used when scoring
// patterns. Bounded search keeps pattern scoring tractable on medium
// graphs; coverage becomes a sound under-approximation when budgets bind.
func MatchOptions() isomorph.Options {
	return isomorph.Options{MaxEmbeddings: 64, MaxSteps: 200000}
}

// PlanConfig returns the plan-compiler configuration matched to this
// package's pattern model and MatchOptions budgets: queries up to
// double the basic-pattern size stay monolithic (fragment overhead always
// loses on shapes a user assembles in a couple of gestures), larger
// canned-pattern-sized queries become decomposition candidates, and the
// stitch buffer is sized against the embedding budget. Deployment
// capabilities (ANN state, result budget, view cache) are the caller's to
// fill in.
func PlanConfig() plan.Config {
	return plan.Config{
		MinDecomposeEdges: 2*BasicMaxSize + 2,
		JoinBuffer:        4 * MatchOptions().MaxEmbeddings,
	}
}

// ---------------------------------------------------------------------------
// Cognitive load
// ---------------------------------------------------------------------------

// CognitiveLoad quantifies the working-memory demand of visually
// interpreting a pattern, following the size-and-density model of the
// surveyed work: interpreting edge relationships gets harder with the
// number of edges and with how entangled they are. The measure is
//
//	cl(p) = m · (1 + density(p)) / 2
//
// normalized so an edge pattern scores ≈ 0.5·(1+1)=1 low and a 12-edge
// near-clique scores ≈ 12. Lower is better.
func CognitiveLoad(p *Pattern) float64 {
	m := float64(p.G.NumEdges())
	return m * (1 + p.G.Density()) / 2
}

// NormalizedCognitiveLoad maps CognitiveLoad into [0,1] relative to the
// worst admissible pattern under the budget (a clique of MaxSize edges,
// density → 1).
func NormalizedCognitiveLoad(p *Pattern, b Budget) float64 {
	worst := float64(b.MaxSize) // m·(1+1)/2 with m = MaxSize
	if worst == 0 {
		return 0
	}
	cl := CognitiveLoad(p) / worst
	if cl > 1 {
		cl = 1
	}
	return cl
}

// SetCognitiveLoad is the mean normalized cognitive load of a pattern set.
func SetCognitiveLoad(set []*Pattern, b Budget) float64 {
	if len(set) == 0 {
		return 0
	}
	s := 0.0
	for _, p := range set {
		s += NormalizedCognitiveLoad(p, b)
	}
	return s / float64(len(set))
}

// ---------------------------------------------------------------------------
// Diversity
// ---------------------------------------------------------------------------

// FeatureVector embeds a pattern into a fixed-dimension numeric space:
// its graphlet census plus coarse structural descriptors. Used for the
// structural-similarity measure underlying diversity. The vector is
// computed once per pattern and cached — the greedy and swapping loops
// evaluate similarities thousands of times.
func FeatureVector(p *Pattern) []float64 {
	if p.features == nil {
		gl := graphlet.Count(p.G)
		v := make([]float64, 0, int(graphlet.NumTypes)+3)
		for _, x := range gl {
			v = append(v, x)
		}
		v = append(v,
			float64(p.G.NumNodes()),
			float64(p.G.NumEdges()),
			float64(p.G.MaxDegree()),
		)
		p.features = v
	}
	return p.features
}

// Similarity is the cosine similarity of two patterns' feature vectors, in
// [0,1] (feature vectors are non-negative). Identical structures score 1.
func Similarity(p, q *Pattern) float64 {
	a, b := FeatureVector(p), FeatureVector(q)
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// SetDiversity is 1 minus the mean pairwise similarity of the set, in
// [0,1]. Singleton and empty sets score 1 (vacuously diverse).
func SetDiversity(set []*Pattern) float64 {
	if len(set) < 2 {
		return 1
	}
	sum, pairs := 0.0, 0
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			sum += Similarity(set[i], set[j])
			pairs++
		}
	}
	return 1 - sum/float64(pairs)
}

// MarginalDiversity returns the diversity contribution of adding cand to
// set: 1 minus its maximum similarity to any member. An empty set yields 1.
func MarginalDiversity(set []*Pattern, cand *Pattern) float64 {
	maxSim := 0.0
	for _, p := range set {
		if s := Similarity(p, cand); s > maxSim {
			maxSim = s
		}
	}
	return 1 - maxSim
}

// ---------------------------------------------------------------------------
// Coverage
// ---------------------------------------------------------------------------

// GraphCoverage returns the fraction of corpus graphs that contain at least
// one embedding of p ("p covers G" in the tutorial's definition).
func GraphCoverage(p *Pattern, c *graph.Corpus, opts isomorph.Options) float64 {
	if c.Len() == 0 {
		return 0
	}
	covered := 0
	c.Each(func(_ int, g *graph.Graph) {
		if isomorph.Exists(p.G, g, opts) {
			covered++
		}
	})
	return float64(covered) / float64(c.Len())
}

// CoverageIndex tracks, per corpus edge, whether any committed pattern
// covers it. It supports the greedy marginal-gain loop shared by CATAPULT,
// TATTOO (on a single network: use a 1-graph corpus), and MIDAS's swapping
// strategy.
type CoverageIndex struct {
	corpus  *graph.Corpus
	opts    isomorph.Options
	covered [][]bool // per graph, per edge
	total   int      // total edges in corpus
	hit     int      // covered edges
}

// NewCoverageIndex builds an empty index over the corpus.
func NewCoverageIndex(c *graph.Corpus, opts isomorph.Options) *CoverageIndex {
	idx := &CoverageIndex{corpus: c, opts: opts}
	idx.covered = make([][]bool, c.Len())
	c.Each(func(i int, g *graph.Graph) {
		idx.covered[i] = make([]bool, g.NumEdges())
		idx.total += g.NumEdges()
	})
	return idx
}

// Covered returns the fraction of corpus edges currently covered.
func (idx *CoverageIndex) Covered() float64 {
	if idx.total == 0 {
		return 0
	}
	return float64(idx.hit) / float64(idx.total)
}

// TotalEdges returns the number of edges in the indexed corpus.
func (idx *CoverageIndex) TotalEdges() int { return idx.total }

// Gain returns the number of corpus edges p would newly cover.
func (idx *CoverageIndex) Gain(p *Pattern) int {
	type key struct {
		gi int
		e  graph.EdgeID
	}
	seen := make(map[key]bool)
	gain := 0
	idx.visit(p, func(gi int, e graph.EdgeID) {
		k := key{gi, e}
		if !idx.covered[gi][e] && !seen[k] {
			seen[k] = true
			gain++
		}
	})
	return gain
}

// Commit marks the edges covered by p and returns the number newly
// covered.
func (idx *CoverageIndex) Commit(p *Pattern) int {
	gain := 0
	idx.visit(p, func(gi int, e graph.EdgeID) {
		if !idx.covered[gi][e] {
			idx.covered[gi][e] = true
			gain++
		}
	})
	idx.hit += gain
	return gain
}

// EachCovered calls fn for every currently covered edge, identified by
// corpus position and edge ID.
func (idx *CoverageIndex) EachCovered(fn func(gi int, e graph.EdgeID)) {
	for gi, row := range idx.covered {
		for e, cov := range row {
			if cov {
				fn(gi, e)
			}
		}
	}
}

// Clone returns an independent copy of the index (used by MIDAS's
// multi-scan swapping to evaluate tentative swaps).
func (idx *CoverageIndex) Clone() *CoverageIndex {
	c := &CoverageIndex{corpus: idx.corpus, opts: idx.opts, total: idx.total, hit: idx.hit}
	c.covered = make([][]bool, len(idx.covered))
	for i, row := range idx.covered {
		c.covered[i] = append([]bool(nil), row...)
	}
	return c
}

func (idx *CoverageIndex) visit(p *Pattern, fn func(gi int, e graph.EdgeID)) {
	pEdges := p.G.Edges()
	idx.corpus.Each(func(gi int, g *graph.Graph) {
		if p.G.NumNodes() > g.NumNodes() || p.G.NumEdges() > g.NumEdges() {
			return
		}
		isomorph.Enumerate(p.G, g, idx.opts, func(mapping []graph.NodeID) bool {
			for _, pe := range pEdges {
				if te, ok := g.EdgeBetween(mapping[pe.U], mapping[pe.V]); ok {
					fn(gi, te)
				}
			}
			return true
		})
	})
}

// SetEdgeCoverage computes the fraction of corpus edges covered by the
// union of the set's embeddings, from scratch.
func SetEdgeCoverage(set []*Pattern, c *graph.Corpus, opts isomorph.Options) float64 {
	idx := NewCoverageIndex(c, opts)
	for _, p := range set {
		idx.Commit(p)
	}
	return idx.Covered()
}

// SingletonCorpus wraps a single large network as a 1-graph corpus so the
// same coverage machinery serves TATTOO.
func SingletonCorpus(g *graph.Graph) *graph.Corpus {
	c := graph.NewCorpus()
	c.MustAdd(g)
	return c
}

// ---------------------------------------------------------------------------
// Pattern-set score
// ---------------------------------------------------------------------------

// Weights balances the three quality measures in the combined score. The
// surveyed frameworks expose these as tunables; equal thirds is the
// default.
type Weights struct {
	Coverage  float64
	Diversity float64
	CogLoad   float64
}

// DefaultWeights returns the default configuration: coverage and diversity
// weighted equally, with cognitive load as a lighter regularizer — a full
// unit weight on load would make the greedy collapse onto the smallest
// admissible patterns, defeating coverage.
func DefaultWeights() Weights { return Weights{Coverage: 1, Diversity: 1, CogLoad: 0.3} }

// SetScore is the pattern-set score: weighted coverage plus diversity minus
// cognitive load, the quantity the greedy selectors maximize and MIDAS's
// maintenance guarantee is stated over. Higher is better.
func SetScore(set []*Pattern, c *graph.Corpus, b Budget, w Weights, opts isomorph.Options) float64 {
	cov := SetEdgeCoverage(set, c, opts)
	div := SetDiversity(set)
	cl := SetCognitiveLoad(set, b)
	return w.Coverage*cov + w.Diversity*div - w.CogLoad*cl
}

// Dedup removes patterns with duplicate canonical forms, preserving order.
func Dedup(set []*Pattern) []*Pattern {
	seen := make(map[string]bool, len(set))
	out := set[:0:0]
	for _, p := range set {
		if key := p.Canon(); !seen[key] {
			seen[key] = true
			out = append(out, p)
		}
	}
	return out
}
