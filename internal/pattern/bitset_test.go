package pattern

import (
	"testing"

	"repro/internal/graph"
)

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130)
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if b.Popcount() != 3 {
		t.Fatalf("popcount = %d", b.Popcount())
	}
	if !b.Get(64) || b.Get(63) {
		t.Fatal("Get wrong")
	}
	o := NewBitset(130)
	o.Set(1)
	o.Or(b)
	if o.Popcount() != 4 {
		t.Fatalf("or popcount = %d", o.Popcount())
	}
	c := b.Clone()
	c.Set(2)
	if b.Popcount() != 3 {
		t.Fatal("clone shares storage")
	}
	// AndNotCount: bits in b not in o — none, since o includes all of b.
	if n := b.AndNotCount(o); n != 0 {
		t.Fatalf("AndNotCount = %d", n)
	}
	if n := o.AndNotCount(b); n != 1 {
		t.Fatalf("AndNotCount = %d", n)
	}
}

func TestUniverseAndCoverBitset(t *testing.T) {
	c := testCorpus() // g0: 4 edges, g1: 3 edges
	u := NewUniverse(c)
	if u.Total() != 7 {
		t.Fatalf("universe total = %d", u.Total())
	}
	if u.Index(1, 0) != 4 {
		t.Fatalf("offset = %d", u.Index(1, 0))
	}
	tri := cyclePattern(3, "A")
	for e := 0; e < 3; e++ {
		tri.G.SetEdgeLabel(e, "-")
	}
	for v := 0; v < 3; v++ {
		tri.G.SetNodeLabel(v, "A")
	}
	bs := CoverBitset(tri, c, u, MatchOptions())
	// Triangle covers the 3 triangle edges of g0 only.
	if bs.Popcount() != 3 {
		t.Fatalf("cover popcount = %d", bs.Popcount())
	}
	// Agreement with CoverageIndex.
	idx := NewCoverageIndex(c, MatchOptions())
	idx.Commit(tri)
	count := 0
	idx.EachCovered(func(gi int, e graph.EdgeID) {
		if !bs.Get(u.Index(gi, e)) {
			t.Fatal("bitset and coverage index disagree")
		}
		count++
	})
	if count != bs.Popcount() {
		t.Fatal("coverage counts disagree")
	}
	// Empty pattern covers nothing.
	if CoverBitset(New(graph.New("e"), "t"), c, u, MatchOptions()).Popcount() != 0 {
		t.Fatal("empty pattern must cover nothing")
	}
}
