package pattern

import (
	"math/bits"

	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/par"
)

// This file provides the dense covered-edge bitset machinery shared by the
// greedy selectors (CATAPULT, TATTOO via its own edge sets, the modular
// extractor) and MIDAS's multi-scan swapping: each pattern's covered corpus
// edges are computed once with bounded subgraph matching, after which any
// set's coverage is pure bitset arithmetic.

// Bitset is a fixed-capacity bit vector.
type Bitset []uint64

// NewBitset returns a bitset able to hold n bits.
func NewBitset(n int) Bitset { return make(Bitset, (n+63)/64) }

// Set sets bit i.
func (b Bitset) Set(i int) { b[i/64] |= 1 << (uint(i) % 64) }

// Get reports bit i.
func (b Bitset) Get(i int) bool { return b[i/64]&(1<<(uint(i)%64)) != 0 }

// Or folds o into b.
func (b Bitset) Or(o Bitset) {
	for i := range b {
		b[i] |= o[i]
	}
}

// Popcount returns the number of set bits.
func (b Bitset) Popcount() int {
	c := 0
	for _, w := range b {
		c += bits.OnesCount64(w)
	}
	return c
}

// AndNotCount returns |b \ o|: bits set in b but not in o.
func (b Bitset) AndNotCount(o Bitset) int {
	c := 0
	for i := range b {
		c += bits.OnesCount64(b[i] &^ o[i])
	}
	return c
}

// Clone returns an independent copy.
func (b Bitset) Clone() Bitset {
	o := make(Bitset, len(b))
	copy(o, b)
	return o
}

// Universe maps (corpus position, edge id) pairs onto dense bit indices.
type Universe struct {
	offsets []int
	total   int
}

// NewUniverse builds the edge universe of a corpus.
func NewUniverse(c *graph.Corpus) *Universe {
	u := &Universe{offsets: make([]int, c.Len())}
	c.Each(func(i int, g *graph.Graph) {
		u.offsets[i] = u.total
		u.total += g.NumEdges()
	})
	return u
}

// Total returns the number of edges in the universe.
func (u *Universe) Total() int { return u.total }

// Index returns the dense index of edge e of corpus graph gi.
func (u *Universe) Index(gi int, e graph.EdgeID) int { return u.offsets[gi] + int(e) }

// CoverBitsets computes the covered-edge bitsets of many patterns
// concurrently on the shared par pool. Each pattern's sweep is independent,
// so this is the single-machine analogue of the distributed fan-out the
// tutorial's "massive networks" direction calls for; results are
// deterministic (slot-indexed) regardless of scheduling. workers ≤ 0 means
// GOMAXPROCS.
func CoverBitsets(pats []*Pattern, c *graph.Corpus, u *Universe, opts isomorph.Options, workers int) []Bitset {
	return par.Map(len(pats), workers, func(i int) Bitset {
		return CoverBitset(pats[i], c, u, opts)
	})
}

// CoverBitset computes the covered-edge bitset of p over the corpus with
// bounded matching: one VF2 sweep per corpus graph.
func CoverBitset(p *Pattern, c *graph.Corpus, u *Universe, opts isomorph.Options) Bitset {
	bs := NewBitset(u.total)
	if p.G.NumEdges() == 0 {
		return bs
	}
	pEdges := p.G.Edges()
	c.Each(func(gi int, g *graph.Graph) {
		if p.G.NumNodes() > g.NumNodes() || p.G.NumEdges() > g.NumEdges() {
			return
		}
		isomorph.Enumerate(p.G, g, opts, func(mapping []graph.NodeID) bool {
			for _, pe := range pEdges {
				if te, ok := g.EdgeBetween(mapping[pe.U], mapping[pe.V]); ok {
					bs.Set(u.Index(gi, te))
				}
			}
			return true
		})
	})
	return bs
}
