package pattern

import (
	"testing"

	"repro/internal/graph"
)

func parallelFixtures() ([]*Pattern, *graph.Corpus, *Universe) {
	c := testCorpus()
	u := NewUniverse(c)
	mk := func(build func(g *graph.Graph)) *Pattern {
		g := graph.New("p")
		build(g)
		return New(g, "t")
	}
	pats := []*Pattern{
		mk(func(g *graph.Graph) { // edge
			g.AddNodes(2, "A")
			g.MustAddEdge(0, 1, "-")
		}),
		mk(func(g *graph.Graph) { // wedge
			g.AddNodes(3, "A")
			g.MustAddEdge(0, 1, "-")
			g.MustAddEdge(1, 2, "-")
		}),
		mk(func(g *graph.Graph) { // triangle
			g.AddNodes(3, "A")
			g.MustAddEdge(0, 1, "-")
			g.MustAddEdge(1, 2, "-")
			g.MustAddEdge(0, 2, "-")
		}),
		mk(func(g *graph.Graph) { // path4
			g.AddNodes(4, "A")
			g.MustAddEdge(0, 1, "-")
			g.MustAddEdge(1, 2, "-")
			g.MustAddEdge(2, 3, "-")
		}),
	}
	return pats, c, u
}

func TestCoverBitsetsMatchesSequential(t *testing.T) {
	pats, c, u := parallelFixtures()
	opts := MatchOptions()
	for _, workers := range []int{0, 1, 2, 8} {
		got := CoverBitsets(pats, c, u, opts, workers)
		for i, p := range pats {
			want := CoverBitset(p, c, u, opts)
			if len(got[i]) != len(want) {
				t.Fatalf("workers=%d pattern %d: length mismatch", workers, i)
			}
			for w := range want {
				if got[i][w] != want[w] {
					t.Fatalf("workers=%d pattern %d: bitset differs", workers, i)
				}
			}
		}
	}
}

func TestCoverBitsetsEmpty(t *testing.T) {
	_, c, u := parallelFixtures()
	if out := CoverBitsets(nil, c, u, MatchOptions(), 4); len(out) != 0 {
		t.Fatal("empty input")
	}
}
