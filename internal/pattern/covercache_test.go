package pattern

import (
	"reflect"
	"sync"
	"testing"
)

func TestCoverCacheMatchesDirectSweep(t *testing.T) {
	pats, c, u := parallelFixtures()
	opts := MatchOptions()
	cc := NewCoverCache(c, u, opts)
	got := cc.Bitsets(pats, 4)
	for i, p := range pats {
		want := CoverBitset(p, c, u, opts)
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("pattern %d: cached bitset differs from direct sweep", i)
		}
	}
	if cc.Misses() != len(pats) {
		t.Fatalf("misses = %d, want %d", cc.Misses(), len(pats))
	}
	if cc.Hits() != 0 {
		t.Fatalf("hits = %d, want 0", cc.Hits())
	}
}

func TestCoverCacheHitsOnRepeat(t *testing.T) {
	pats, c, u := parallelFixtures()
	cc := NewCoverCache(c, u, MatchOptions())
	first := cc.Bitsets(pats, 0)
	second := cc.Bitsets(pats, 0)
	for i := range pats {
		// Hits must return the identical cached slice, not a recomputation.
		if len(first[i]) > 0 && &first[i][0] != &second[i][0] {
			t.Fatalf("pattern %d: repeat lookup recomputed the bitset", i)
		}
	}
	if cc.Misses() != len(pats) {
		t.Fatalf("misses after repeat = %d, want %d", cc.Misses(), len(pats))
	}
	if cc.Hits() != len(pats) {
		t.Fatalf("hits after repeat = %d, want %d", cc.Hits(), len(pats))
	}
	if cc.Len() != len(pats) {
		t.Fatalf("cache size = %d, want %d", cc.Len(), len(pats))
	}
}

func TestCoverCacheDedupsCanonWithinBatch(t *testing.T) {
	pats, c, u := parallelFixtures()
	// Duplicate every pattern: same canonical forms, so only the distinct
	// structures should be swept.
	doubled := append(append([]*Pattern(nil), pats...), pats...)
	cc := NewCoverCache(c, u, MatchOptions())
	out := cc.Bitsets(doubled, 3)
	if cc.Misses() != len(pats) {
		t.Fatalf("misses = %d, want %d distinct sweeps", cc.Misses(), len(pats))
	}
	for i := range pats {
		if !reflect.DeepEqual(out[i], out[i+len(pats)]) {
			t.Fatalf("duplicate pattern %d got a different bitset", i)
		}
	}
}

func TestCoverCacheSingleLookup(t *testing.T) {
	pats, c, u := parallelFixtures()
	cc := NewCoverCache(c, u, MatchOptions())
	a := cc.Bitset(pats[0])
	b := cc.Bitset(pats[0])
	if len(a) > 0 && &a[0] != &b[0] {
		t.Fatal("Bitset did not serve the second lookup from cache")
	}
	if cc.Hits() != 1 || cc.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 1/1", cc.Hits(), cc.Misses())
	}
}

func TestCoverCacheConcurrentAccess(t *testing.T) {
	pats, c, u := parallelFixtures()
	// Pre-resolve canon keys: Pattern.Canon caches lazily and is not
	// synchronized, mirroring how Bitsets resolves keys up front.
	for _, p := range pats {
		p.Canon()
	}
	cc := NewCoverCache(c, u, MatchOptions())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				cc.Bitsets(pats, 2)
			} else {
				for _, p := range pats {
					cc.Bitset(p)
				}
			}
		}(w)
	}
	wg.Wait()
	if cc.Len() != len(pats) {
		t.Fatalf("cache size = %d, want %d", cc.Len(), len(pats))
	}
	want := cc.Bitsets(pats, 1)
	for i, p := range pats {
		if !reflect.DeepEqual(want[i], CoverBitset(p, c, u, MatchOptions())) {
			t.Fatalf("pattern %d: concurrent fills corrupted the cache", i)
		}
	}
}
