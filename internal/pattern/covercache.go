package pattern

import (
	"sync"

	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/par"
)

// CoverCache memoizes covered-edge bitsets by canonical pattern code, so a
// pattern already evaluated against a corpus snapshot is never swept again.
// The greedy selectors and MIDAS's multi-scan swapping repeatedly meet the
// same canonical structures — random walks resample common motifs, swap
// scans re-evaluate the incumbent set — and the VF2 sweep is by far the
// most expensive step they share. Canonical equality implies label-
// preserving isomorphism, which implies identical embeddings, so keying by
// canon is lossless.
//
// A cache is bound to one corpus snapshot (its Universe and match options
// are fixed at construction). After any corpus mutation, build a fresh
// cache — MIDAS does this once per maintenance batch.
//
// The cache is safe for concurrent use; Bitsets fills misses on the shared
// par pool while serving hits without recomputation.
type CoverCache struct {
	corpus *graph.Corpus
	u      *Universe
	opts   isomorph.Options

	mu     sync.Mutex
	byKey  map[string]Bitset
	hits   int
	misses int
}

// NewCoverCache builds an empty cache over a corpus snapshot.
func NewCoverCache(c *graph.Corpus, u *Universe, opts isomorph.Options) *CoverCache {
	return &CoverCache{corpus: c, u: u, opts: opts, byKey: make(map[string]Bitset)}
}

// Universe returns the edge universe the cached bitsets are indexed by.
func (cc *CoverCache) Universe() *Universe { return cc.u }

// Hits returns how many lookups were served from the cache.
func (cc *CoverCache) Hits() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.hits
}

// Misses returns how many lookups required a fresh coverage sweep.
func (cc *CoverCache) Misses() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.misses
}

// Len returns the number of distinct canonical codes cached.
func (cc *CoverCache) Len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return len(cc.byKey)
}

// Bitset returns p's covered-edge bitset, computing and caching it on a
// miss. The returned bitset is shared — callers must not mutate it (use
// Clone before Or-ing into it).
func (cc *CoverCache) Bitset(p *Pattern) Bitset {
	key := p.Canon()
	cc.mu.Lock()
	if bs, ok := cc.byKey[key]; ok {
		cc.hits++
		cc.mu.Unlock()
		return bs
	}
	cc.misses++
	cc.mu.Unlock()
	bs := CoverBitset(p, cc.corpus, cc.u, cc.opts)
	cc.mu.Lock()
	// Another goroutine may have raced the same key; keep the first entry
	// so callers observe one stable bitset per canon.
	if prev, ok := cc.byKey[key]; ok {
		bs = prev
	} else {
		cc.byKey[key] = bs
	}
	cc.mu.Unlock()
	return bs
}

// Bitsets returns the covered-edge bitsets of pats, slot-indexed. Canon
// keys are computed up front on the calling goroutine (Pattern.Canon caches
// lazily and is not itself synchronized), then only the distinct misses are
// swept, in parallel on the shared pool.
func (cc *CoverCache) Bitsets(pats []*Pattern, workers int) []Bitset {
	// Resolve keys and split hits from misses.
	keys := make([]string, len(pats))
	for i, p := range pats {
		keys[i] = p.Canon()
	}
	out := make([]Bitset, len(pats))
	var missIdx []int // first position of each distinct missing key
	missOf := make(map[string]int)
	cc.mu.Lock()
	for i, key := range keys {
		if bs, ok := cc.byKey[key]; ok {
			cc.hits++
			out[i] = bs
			continue
		}
		if _, queued := missOf[key]; queued {
			cc.hits++ // deduplicated within this batch: no extra sweep
			continue
		}
		cc.misses++
		missOf[key] = i
		missIdx = append(missIdx, i)
	}
	cc.mu.Unlock()

	fresh := par.Map(len(missIdx), workers, func(j int) Bitset {
		return CoverBitset(pats[missIdx[j]], cc.corpus, cc.u, cc.opts)
	})

	cc.mu.Lock()
	for j, i := range missIdx {
		if prev, ok := cc.byKey[keys[i]]; ok {
			fresh[j] = prev
		} else {
			cc.byKey[keys[i]] = fresh[j]
		}
	}
	for i, key := range keys {
		if out[i] == nil {
			out[i] = cc.byKey[key]
		}
	}
	cc.mu.Unlock()
	return out
}
