package midas

import (
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/pattern"
)

// TestApplyWorkerCountInvariant builds two identical states with different
// worker counts, pushes the same major batch through both, and requires the
// maintained pattern sets and reports to agree exactly.
func TestApplyWorkerCountInvariant(t *testing.T) {
	run := func(workers int) (*State, *Report) {
		c := datagen.ChemicalCorpus(1, 30, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
		st, err := Build(c, Config{
			Catapult: catapult.Config{
				Budget:  pattern.Budget{Count: 5, MinSize: 4, MaxSize: 8},
				Seed:    1,
				Workers: workers,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		// A batch this large relative to the corpus reliably crosses the
		// major-modification threshold.
		rep, err := st.Apply(newBatch(5, 20, "wb"), nil)
		if err != nil {
			t.Fatal(err)
		}
		return st, rep
	}

	wantState, wantRep := run(1)
	for _, workers := range []int{0, 8} {
		gotState, gotRep := run(workers)
		// Wall-clock is the one legitimately nondeterministic field.
		g, w := *gotRep, *wantRep
		g.Elapsed, w.Elapsed = 0, 0
		if g != w {
			t.Fatalf("workers=%d: report %+v, sequential %+v", workers, g, w)
		}
		wantPats, gotPats := wantState.Patterns(), gotState.Patterns()
		if len(gotPats) != len(wantPats) {
			t.Fatalf("workers=%d: %d patterns, sequential %d", workers, len(gotPats), len(wantPats))
		}
		for i := range wantPats {
			if gotPats[i].Canon() != wantPats[i].Canon() {
				t.Fatalf("workers=%d: pattern %d differs from sequential", workers, i)
			}
		}
		if gotState.gfd != wantState.gfd {
			t.Fatalf("workers=%d: gfd differs from sequential", workers)
		}
	}
}
