package midas

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func buildState(t *testing.T, n int) *State {
	t.Helper()
	c := datagen.ChemicalCorpus(1, n, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
	st, err := Build(c, Config{
		Catapult: catapult.Config{
			Budget: pattern.Budget{Count: 5, MinSize: 4, MaxSize: 8},
			Seed:   1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func newBatch(seed int64, n int, tag string) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	var out []*graph.Graph
	for i := 0; i < n; i++ {
		out = append(out, datagen.Chemical(rng, fmt.Sprintf("%s-%d", tag, i),
			datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18}))
	}
	return out
}

func TestBuildState(t *testing.T) {
	st := buildState(t, 30)
	if len(st.Patterns()) == 0 {
		t.Fatal("no initial patterns")
	}
	if st.Corpus().Len() != 30 {
		t.Fatalf("corpus len = %d", st.Corpus().Len())
	}
	total := 0
	for _, cs := range st.clusters {
		total += len(cs.names)
	}
	if total != 30 {
		t.Fatalf("cluster membership total = %d", total)
	}
}

func TestApplySmallBatchIsMinor(t *testing.T) {
	st := buildState(t, 40)
	// One similar graph: GFD barely moves.
	rep, err := st.Apply(newBatch(9, 1, "tiny"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 1 || rep.Removed != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Major {
		t.Fatalf("single similar graph classified major (dist %v)", rep.GFDDistance)
	}
	if rep.Swaps != 0 || rep.Candidates != 0 {
		t.Fatal("minor modification must skip pattern maintenance")
	}
	if st.Corpus().Len() != 41 {
		t.Fatal("corpus not updated")
	}
}

func TestApplyMajorBatchSwaps(t *testing.T) {
	st := buildState(t, 30)
	before := append([]*pattern.Pattern(nil), st.Patterns()...)
	// A structurally alien batch: dense cliques instead of sparse
	// compounds. The GFD shifts heavily toward triangles/cliques.
	var batch []*graph.Graph
	for i := 0; i < 25; i++ {
		g := graph.New(fmt.Sprintf("clique-%d", i))
		g.AddNodes(6, "C")
		for a := 0; a < 6; a++ {
			for b := a + 1; b < 6; b++ {
				g.MustAddEdge(a, b, "s")
			}
		}
		batch = append(batch, g)
	}
	rep, err := st.Apply(batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Major {
		t.Fatalf("alien batch classified minor (dist %v)", rep.GFDDistance)
	}
	if rep.ScoreAfter+1e-9 < rep.ScoreBefore {
		t.Fatalf("maintenance guarantee violated: %v -> %v", rep.ScoreBefore, rep.ScoreAfter)
	}
	if rep.Candidates == 0 {
		t.Fatal("major modification generated no candidates")
	}
	_ = before
}

func TestApplyRemovals(t *testing.T) {
	st := buildState(t, 30)
	names := st.Corpus().Names()[:5]
	rep, err := st.Apply(nil, names)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Removed != 5 {
		t.Fatalf("removed = %d", rep.Removed)
	}
	if st.Corpus().Len() != 25 {
		t.Fatalf("corpus len = %d", st.Corpus().Len())
	}
	for _, name := range names {
		if _, ok := st.Corpus().ByName(name); ok {
			t.Fatalf("%q still present", name)
		}
		for _, cs := range st.clusters {
			if cs.names[name] {
				t.Fatalf("%q still in a cluster", name)
			}
		}
	}
}

func TestApplyUnknownRemovalFails(t *testing.T) {
	st := buildState(t, 10)
	if _, err := st.Apply(nil, []string{"no-such-graph"}); err == nil {
		t.Fatal("unknown removal accepted")
	}
}

func TestApplyDuplicateAddFails(t *testing.T) {
	st := buildState(t, 10)
	dup := graph.New(st.Corpus().Names()[0])
	dup.AddNode("C")
	if _, err := st.Apply([]*graph.Graph{dup}, nil); err == nil {
		t.Fatal("duplicate add accepted")
	}
}

func TestGFDDistanceGrowsWithBatchMagnitude(t *testing.T) {
	small := buildState(t, 40)
	repSmall, err := small.Apply(newBatch(5, 2, "s"), nil)
	if err != nil {
		t.Fatal(err)
	}
	big := buildState(t, 40)
	var batch []*graph.Graph
	for i := 0; i < 30; i++ {
		g := graph.New(fmt.Sprintf("dense-%d", i))
		g.AddNodes(5, "C")
		for a := 0; a < 5; a++ {
			for b := a + 1; b < 5; b++ {
				g.MustAddEdge(a, b, "s")
			}
		}
		batch = append(batch, g)
	}
	repBig, err := big.Apply(batch, nil)
	if err != nil {
		t.Fatal(err)
	}
	if repBig.GFDDistance <= repSmall.GFDDistance {
		t.Fatalf("distance must grow with magnitude: small=%v big=%v",
			repSmall.GFDDistance, repBig.GFDDistance)
	}
}

func TestMaintainedQualityComparableToRerun(t *testing.T) {
	// After maintenance, the maintained set's score must be at least the
	// stale set's score evaluated on the updated corpus (the formal
	// guarantee), and the maintained corpus state must remain consistent.
	st := buildState(t, 30)
	stale := append([]*pattern.Pattern(nil), st.Patterns()...)
	var batch []*graph.Graph
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		g := datagen.Chemical(rng, fmt.Sprintf("ring-%d", i), datagen.ChemicalOptions{
			MinNodes: 10, MaxNodes: 20, RingBias: 0.9})
		batch = append(batch, g)
	}
	rep, err := st.Apply(batch, st.Corpus().Names()[:10])
	if err != nil {
		t.Fatal(err)
	}
	b := pattern.Budget{Count: 5, MinSize: 4, MaxSize: 8}
	w := pattern.DefaultWeights()
	opts := pattern.MatchOptions()
	staleScore := pattern.SetScore(stale, st.Corpus(), b, w, opts)
	maintainedScore := pattern.SetScore(st.Patterns(), st.Corpus(), b, w, opts)
	if rep.Major && maintainedScore+1e-9 < staleScore {
		t.Fatalf("maintained %v < stale %v on updated corpus", maintainedScore, staleScore)
	}
	// Cluster membership covers exactly the corpus.
	total := 0
	for _, cs := range st.clusters {
		total += len(cs.names)
	}
	if total != st.Corpus().Len() {
		t.Fatalf("cluster membership %d != corpus %d", total, st.Corpus().Len())
	}
}
