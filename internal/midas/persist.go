package midas

// State persistence. A maintained VQI outlives any single process: the
// corpus is updated daily, so the maintenance state (cluster membership,
// medoid features, frequent trees with supports, canned patterns, last
// GFD) must round-trip to disk between batches. The corpus itself is
// persisted separately in .lg form; Load re-attaches the state to it.

import (
	"encoding/json"
	"fmt"

	"repro/internal/canon"
	"repro/internal/closure"
	"repro/internal/fct"
	"repro/internal/gio"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/pattern"
)

type stateJSON struct {
	Config   configJSON        `json:"config"`
	GFD      []float64         `json:"gfd"`
	Clusters []clusterJSON     `json:"clusters"`
	Patterns []json.RawMessage `json:"patterns"`
	Sources  []string          `json:"pattern_sources"`
	FCT      fctJSON           `json:"fct"`
}

type configJSON struct {
	BudgetCount    int     `json:"budget_count"`
	BudgetMinSize  int     `json:"budget_min_size"`
	BudgetMaxSize  int     `json:"budget_max_size"`
	Threshold      float64 `json:"threshold"`
	MaxScans       int     `json:"max_scans"`
	CandidateWalks int     `json:"candidate_walks"`
	Seed           int64   `json:"seed"`
	WCoverage      float64 `json:"w_coverage"`
	WDiversity     float64 `json:"w_diversity"`
	WCogLoad       float64 `json:"w_cogload"`
}

type clusterJSON struct {
	Names  []string  `json:"names"`
	Medoid []float64 `json:"medoid"`
}

type fctJSON struct {
	MinSupport int               `json:"min_support"`
	MaxEdges   int               `json:"max_edges"`
	Trees      []json.RawMessage `json:"trees"`
	Supports   []int             `json:"supports"`
}

// Marshal serializes the maintenance state (everything except the corpus,
// which callers persist as .lg alongside).
func (s *State) Marshal() ([]byte, error) {
	out := stateJSON{
		Config: configJSON{
			BudgetCount:    s.cfg.Catapult.Budget.Count,
			BudgetMinSize:  s.cfg.Catapult.Budget.MinSize,
			BudgetMaxSize:  s.cfg.Catapult.Budget.MaxSize,
			Threshold:      s.cfg.Threshold,
			MaxScans:       s.cfg.MaxScans,
			CandidateWalks: s.cfg.CandidateWalks,
			Seed:           s.cfg.Catapult.Seed,
			WCoverage:      s.selection.Coverage,
			WDiversity:     s.selection.Diversity,
			WCogLoad:       s.selection.CogLoad,
		},
		GFD: s.gfd[:],
		FCT: fctJSON{
			MinSupport: s.fctSet.Miner.MinSupport,
			MaxEdges:   s.fctSet.Miner.MaxEdges,
		},
	}
	for _, cs := range s.clusters {
		cj := clusterJSON{Medoid: cs.medoid}
		for _, g := range s.memberGraphs(cs) {
			cj.Names = append(cj.Names, g.Name())
		}
		out.Clusters = append(out.Clusters, cj)
	}
	for _, p := range s.patterns {
		raw, err := gio.MarshalGraphJSON(p.G)
		if err != nil {
			return nil, err
		}
		out.Patterns = append(out.Patterns, raw)
		out.Sources = append(out.Sources, p.Source)
	}
	for _, t := range s.fctSet.Trees {
		raw, err := gio.MarshalGraphJSON(t.G)
		if err != nil {
			return nil, err
		}
		out.FCT.Trees = append(out.FCT.Trees, raw)
		out.FCT.Supports = append(out.FCT.Supports, t.Support)
	}
	return json.MarshalIndent(out, "", " ")
}

// Load reconstructs a maintenance state over the given (already loaded)
// corpus. The corpus must be the exact corpus the state was saved against:
// every cluster member name must resolve.
func Load(data []byte, corpus *graph.Corpus) (*State, error) {
	var in stateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("midas: load: %v", err)
	}
	st := &State{corpus: corpus}
	st.cfg.Catapult.Budget = pattern.Budget{
		Count:   in.Config.BudgetCount,
		MinSize: in.Config.BudgetMinSize,
		MaxSize: in.Config.BudgetMaxSize,
	}
	st.cfg.Catapult.Seed = in.Config.Seed
	st.cfg.Threshold = in.Config.Threshold
	st.cfg.MaxScans = in.Config.MaxScans
	st.cfg.CandidateWalks = in.Config.CandidateWalks
	st.selection = pattern.Weights{
		Coverage:  in.Config.WCoverage,
		Diversity: in.Config.WDiversity,
		CogLoad:   in.Config.WCogLoad,
	}
	st.cfg.defaults()
	if len(in.GFD) != len(st.gfd) {
		return nil, fmt.Errorf("midas: load: GFD has %d entries, want %d", len(in.GFD), len(st.gfd))
	}
	var gfd graphlet.Vector
	copy(gfd[:], in.GFD)
	st.gfd = gfd

	seen := make(map[string]bool)
	for ci, cj := range in.Clusters {
		cs := &clusterState{names: make(map[string]bool), medoid: cj.Medoid}
		for _, name := range cj.Names {
			if _, ok := corpus.ByName(name); !ok {
				return nil, fmt.Errorf("midas: load: cluster %d member %q not in corpus", ci, name)
			}
			if seen[name] {
				return nil, fmt.Errorf("midas: load: graph %q in two clusters", name)
			}
			seen[name] = true
			cs.names[name] = true
		}
		st.clusters = append(st.clusters, cs)
	}
	if len(seen) != corpus.Len() {
		return nil, fmt.Errorf("midas: load: clusters cover %d of %d corpus graphs", len(seen), corpus.Len())
	}

	if len(in.Sources) != len(in.Patterns) {
		return nil, fmt.Errorf("midas: load: %d sources for %d patterns", len(in.Sources), len(in.Patterns))
	}
	for i, raw := range in.Patterns {
		g, err := gio.UnmarshalGraphJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("midas: load: pattern %d: %v", i, err)
		}
		st.patterns = append(st.patterns, pattern.New(g, in.Sources[i]))
	}

	if len(in.FCT.Supports) != len(in.FCT.Trees) {
		return nil, fmt.Errorf("midas: load: %d supports for %d trees", len(in.FCT.Supports), len(in.FCT.Trees))
	}
	st.fctSet = fct.NewSet(fct.Miner{MinSupport: in.FCT.MinSupport, MaxEdges: in.FCT.MaxEdges})
	for i, raw := range in.FCT.Trees {
		g, err := gio.UnmarshalGraphJSON(raw)
		if err != nil {
			return nil, fmt.Errorf("midas: load: fct tree %d: %v", i, err)
		}
		st.fctSet.Insert(&fct.Tree{G: g, Support: in.FCT.Supports[i], Canon: canon.String(g)})
	}

	// Rebuild CSGs from membership (cheap relative to selection, and it
	// avoids serializing weighted summaries).
	for _, cs := range st.clusters {
		cs.csg = closure.Merge(st.memberGraphs(cs))
	}
	return st, nil
}
