package midas

import (
	"context"
	"testing"

	"repro/internal/catapult"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func TestApplyCtxCanceledKeepsStateConsistent(t *testing.T) {
	c := datagen.ChemicalCorpus(1, 24, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
	st, err := Build(c, Config{Catapult: catapult.Config{
		Budget: pattern.Budget{Count: 4, MinSize: 4, MaxSize: 9}, Seed: 5},
		Threshold: -1, // force every batch major so pattern maintenance is exercised
	})
	if err != nil {
		t.Fatal(err)
	}
	before := len(st.Patterns())
	batch := datagen.ChemicalCorpus(99, 8, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
	var added []*graph.Graph
	batch.Each(func(_ int, g *graph.Graph) { added = append(added, g.Clone()) })
	for i, g := range added {
		g.SetName(g.Name() + "-b" + string(rune('a'+i)))
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := st.ApplyCtx(ctx, added, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Major {
		t.Fatal("negative threshold batch must be major")
	}
	if !rep.Truncated {
		t.Fatal("canceled maintenance not marked truncated")
	}
	// Bookkeeping stages must have completed despite the dead context.
	if rep.Added != len(added) {
		t.Fatalf("added %d of %d", rep.Added, len(added))
	}
	if st.Corpus().Len() != 24+len(added) {
		t.Fatalf("corpus length %d", st.Corpus().Len())
	}
	// The stale pattern set survives intact — valid, just unimproved.
	if len(st.Patterns()) != before {
		t.Fatalf("pattern count changed under dead context: %d -> %d", before, len(st.Patterns()))
	}
	// A follow-up live batch still works on the consistent state.
	rep2, err := st.ApplyCtx(context.Background(), nil, []string{added[0].Name()})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Removed != 1 {
		t.Fatalf("follow-up removal failed: %+v", rep2)
	}
}
