package midas

import (
	"context"
	"math/rand"
	"sort"

	"repro/internal/catapult"
	"repro/internal/par"
	"repro/internal/pattern"
)

// This file implements MIDAS's multi-scan swapping strategy. After a major
// modification, candidate patterns are generated from the CSGs of the
// modified clusters and repeatedly scanned; each scan tries to swap a
// candidate for a current pattern when the swap improves the pattern-set
// score. Scanning stops when a pass makes no swap or MaxScans is reached.
// Two indices make this fast:
//
//   - a coverage index: the exact covered-edge bitset of every current
//     pattern and candidate over the updated corpus, computed once, so any
//     tentative set's coverage is pure bitset arithmetic; and
//   - a contribution index: the marginal coverage of each selected pattern
//     within the current set, whose minimum is the coverage-based pruning
//     bound — a candidate whose total coverage cannot beat the weakest
//     member's contribution is skipped without evaluation.
//
// Because a swap is applied only when the score strictly improves, the
// maintained set's score never drops below the stale set's score — MIDAS's
// "at least the same or better" guarantee.

// maintainPatterns generates candidates from the modified clusters' CSGs
// and runs multi-scan swapping. Swap scans poll ctx between candidates:
// because a swap is only ever applied when it strictly improves the score,
// stopping at any point leaves a valid set no worse than the stale one —
// the deadline merely bounds how many improvements are attempted
// (Report.Truncated records an early stop).
func (s *State) maintainPatterns(ctx context.Context, rep *Report, modified []*clusterState) error {
	workers := s.cfg.Catapult.Workers
	budget := s.cfg.Catapult.Budget
	// Each modified cluster samples with a private RNG derived from the
	// maintenance seed and its position in the modified list, so the walks
	// per cluster are a pure function of the seed regardless of scheduling.
	perCluster := par.Map(len(modified), workers, func(i int) []*pattern.Pattern {
		rng := rand.New(rand.NewSource(par.ChildSeed(s.cfg.Catapult.Seed+1, i)))
		return catapult.SampleCandidates(modified[i].csg, budget, s.cfg.CandidateWalks, rng)
	})
	var sampled []*pattern.Pattern
	for _, part := range perCluster {
		sampled = append(sampled, part...)
	}
	// First pruning index: sample frequency. Weighted walks revisit common
	// motifs, so how often a canonical form was sampled is a cheap proxy
	// for its coverage; only the most-sampled candidates graduate to exact
	// (expensive) coverage evaluation. Candidates isomorphic to current
	// patterns are dropped outright.
	current := make(map[string]bool, len(s.patterns))
	for _, p := range s.patterns {
		current[p.Canon()] = true
	}
	freq := make(map[string]int)
	byCanon := make(map[string]*pattern.Pattern)
	for _, c := range sampled {
		key := c.Canon()
		if current[key] {
			continue
		}
		freq[key]++
		if _, ok := byCanon[key]; !ok {
			byCanon[key] = c
		}
	}
	candidates := make([]*pattern.Pattern, 0, len(byCanon))
	for _, c := range byCanon {
		candidates = append(candidates, c)
	}
	sort.Slice(candidates, func(i, j int) bool {
		fi, fj := freq[candidates[i].Canon()], freq[candidates[j].Canon()]
		if fi != fj {
			return fi > fj
		}
		return candidates[i].Canon() < candidates[j].Canon()
	})
	if cap := 4 * budget.Count; len(candidates) > cap {
		candidates = candidates[:cap]
	}
	rep.Candidates = len(candidates)

	// Coverage index: exact covered-edge bitsets over the updated corpus.
	// Both sweeps share one memoized cache keyed by canonical code, so a
	// shape that appears among both the current patterns and the candidate
	// pool — or repeatedly across swap scans — runs its VF2 sweep once.
	u := pattern.NewUniverse(s.corpus)
	opts := pattern.MatchOptions()
	opts.Ctx = ctx // coverage sweeps self-truncate at the deadline
	cc := pattern.NewCoverCache(s.corpus, u, opts)
	patCover := cc.Bitsets(s.patterns, workers)
	candCover := cc.Bitsets(candidates, workers)

	weights := s.selection
	score := func(set []*pattern.Pattern, covers []pattern.Bitset) float64 {
		union := pattern.NewBitset(u.Total())
		for _, bs := range covers {
			union.Or(bs)
		}
		cov := 0.0
		if u.Total() > 0 {
			cov = float64(union.Popcount()) / float64(u.Total())
		}
		return weights.Coverage*cov +
			weights.Diversity*pattern.SetDiversity(set) -
			weights.CogLoad*pattern.SetCognitiveLoad(set, budget)
	}

	curScore := score(s.patterns, patCover)
	rep.ScoreBefore = curScore

	// Contribution index: marginal coverage of each selected pattern. Rows
	// are independent (each reads the shared patCover slice and writes its
	// own slot), so the index rebuilds in parallel between scans.
	contribution := func() []int {
		return par.Map(len(s.patterns), workers, func(i int) int {
			others := pattern.NewBitset(u.Total())
			for j := range s.patterns {
				if j != i {
					others.Or(patCover[j])
				}
			}
			return patCover[i].AndNotCount(others)
		})
	}

	// Candidates scanned in descending total-coverage order.
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca, cb := candCover[order[a]].Popcount(), candCover[order[b]].Popcount()
		if ca != cb {
			return ca > cb
		}
		return candidates[order[a]].Canon() < candidates[order[b]].Canon()
	})

	const eps = 1e-9
	used := make([]bool, len(candidates))
	for scan := 0; scan < s.cfg.MaxScans; scan++ {
		if ctx.Err() != nil {
			rep.Truncated = true
			break
		}
		swapped := false
		contrib := contribution()
		minContrib := 0
		if len(contrib) > 0 {
			minContrib = contrib[0]
			for _, c := range contrib[1:] {
				if c < minContrib {
					minContrib = c
				}
			}
		}
		for _, ci := range order {
			if used[ci] {
				continue
			}
			if ctx.Err() != nil {
				rep.Truncated = true
				break
			}
			// Coverage-based pruning: a candidate whose entire coverage is
			// below the weakest member's marginal contribution cannot
			// improve coverage by swapping; with non-negative diversity
			// weight it could still help diversity, so prune only when the
			// candidate also duplicates an existing structure class — the
			// conservative test here is coverage-only, as in MIDAS.
			if candCover[ci].Popcount() < minContrib {
				continue
			}
			bestJ, bestScore := -1, curScore
			for j := range s.patterns {
				tentSet := make([]*pattern.Pattern, len(s.patterns))
				copy(tentSet, s.patterns)
				tentSet[j] = candidates[ci]
				tentCover := make([]pattern.Bitset, len(patCover))
				copy(tentCover, patCover)
				tentCover[j] = candCover[ci]
				if sc := score(tentSet, tentCover); sc > bestScore+eps {
					bestJ, bestScore = j, sc
				}
			}
			if bestJ >= 0 {
				s.patterns[bestJ] = candidates[ci]
				patCover[bestJ] = candCover[ci]
				curScore = bestScore
				used[ci] = true
				rep.Swaps++
				swapped = true
			}
		}
		if !swapped {
			break
		}
	}
	rep.ScoreAfter = curScore
	return nil
}
