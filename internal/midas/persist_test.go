package midas

import (
	"testing"

	"repro/internal/graph"
)

func TestMarshalLoadRoundTrip(t *testing.T) {
	st := buildState(t, 25)
	data, err := st.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data, st.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	// Patterns identical.
	if len(back.Patterns()) != len(st.Patterns()) {
		t.Fatalf("patterns %d vs %d", len(back.Patterns()), len(st.Patterns()))
	}
	for i := range st.Patterns() {
		if st.Patterns()[i].Canon() != back.Patterns()[i].Canon() {
			t.Fatalf("pattern %d changed", i)
		}
	}
	// Clusters cover the corpus and match.
	if len(back.clusters) != len(st.clusters) {
		t.Fatal("cluster count changed")
	}
	for ci := range st.clusters {
		if len(back.clusters[ci].names) != len(st.clusters[ci].names) {
			t.Fatalf("cluster %d membership changed", ci)
		}
	}
	// FCT set identical.
	if back.fctSet.Len() != st.fctSet.Len() {
		t.Fatalf("fct %d vs %d", back.fctSet.Len(), st.fctSet.Len())
	}
	// GFD preserved.
	if back.gfd != st.gfd {
		t.Fatal("gfd changed")
	}
}

func TestLoadedStateContinuesMaintenance(t *testing.T) {
	st := buildState(t, 25)
	data, err := st.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Load(data, st.Corpus())
	if err != nil {
		t.Fatal(err)
	}
	// Apply a batch through the restored state.
	rep, err := back.Apply(newBatch(7, 5, "post-load"), back.Corpus().Names()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 5 || rep.Removed != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if back.Corpus().Len() != 28 {
		t.Fatalf("corpus = %d", back.Corpus().Len())
	}
}

func TestLoadValidation(t *testing.T) {
	st := buildState(t, 10)
	data, err := st.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	// Wrong corpus: a member name won't resolve.
	other := graph.NewCorpus()
	g := graph.New("unrelated")
	g.AddNode("C")
	other.MustAdd(g)
	if _, err := Load(data, other); err == nil {
		t.Fatal("state loaded against the wrong corpus")
	}
	// Corrupt JSON.
	if _, err := Load([]byte("{"), st.Corpus()); err == nil {
		t.Fatal("corrupt JSON accepted")
	}
	// Partial coverage: corpus with extra graphs not in any cluster.
	extended := st.Corpus().Clone()
	ng := graph.New("extra")
	ng.AddNode("C")
	extended.MustAdd(ng)
	if _, err := Load(data, extended); err == nil {
		t.Fatal("cluster membership gap accepted")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	st := buildState(t, 15)
	a, err := st.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := st.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("marshal not deterministic")
	}
}
