// Package midas implements the MIDAS framework: efficient and effective
// maintenance of canned patterns in a visual graph query interface as the
// underlying collection of data graphs evolves (SIGMOD 2021, as reviewed in
// the tutorial's Section 2.4).
//
// MIDAS maintains the CATAPULT artifacts (frequent-tree features, clusters,
// cluster summary graphs, canned pattern set) under *batch* updates:
//
//  1. Newly added graphs are assigned to their nearest existing cluster;
//     deleted graphs are removed from theirs.
//  2. The corpus's graphlet frequency distribution (GFD) is recomputed; the
//     Euclidean distance between the old and new GFD classifies the batch
//     as a minor or major modification.
//  3. Frequent closed tree features are maintained incrementally
//     (fct.Set.Update — exact, no re-mining).
//  4. Modified clusters' summary graphs are rebuilt from their current
//     members.
//  5. For a major modification, candidate patterns are generated from the
//     CSGs of new/modified clusters and the canned set is updated by a
//     multi-scan swapping strategy with coverage-based pruning, which
//     guarantees the updated set scores at least as high as the stale one.
//     For a minor modification no pattern maintenance happens — only the
//     clusters and CSGs are kept consistent.
package midas

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/catapult"
	"repro/internal/closure"
	"repro/internal/fct"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pattern"
)

// Config parameterizes MIDAS on top of a CATAPULT configuration.
type Config struct {
	// Catapult is the underlying selection configuration (budget, weights,
	// clustering parameters).
	Catapult catapult.Config
	// Threshold is the GFD Euclidean-distance boundary between minor and
	// major modifications (0 = 0.02).
	Threshold float64
	// MaxScans bounds the multi-scan swapping passes (0 = 3).
	MaxScans int
	// CandidateWalks is the number of candidate-generating walks per
	// modified CSG during maintenance (0 = the catapult WalksPerCSG).
	CandidateWalks int
}

func (c *Config) defaults() {
	if c.Threshold == 0 {
		c.Threshold = 0.02
	}
	if c.MaxScans == 0 {
		c.MaxScans = 3
	}
}

// State is the maintained MIDAS state for one evolving corpus.
type State struct {
	cfg    Config
	corpus *graph.Corpus
	fctSet *fct.Set
	// clusters maps cluster id -> member graph names. Cluster medoid
	// feature vectors are kept for incremental assignment.
	clusters  []*clusterState
	patterns  []*pattern.Pattern
	gfd       graphlet.Vector
	selection pattern.Weights
}

type clusterState struct {
	names  map[string]bool
	medoid []float64 // feature vector of the medoid at build time
	csg    *closure.CSG
	dirty  bool
}

// Report describes one maintenance batch.
type Report struct {
	Added, Removed int
	GFDDistance    float64
	Major          bool
	Candidates     int
	Swaps          int
	ScoreBefore    float64
	ScoreAfter     float64
	// Truncated reports that the batch's context died during pattern
	// maintenance: the corpus, clusters, features and CSGs are fully
	// consistent (those stages always complete), but the swap scans
	// stopped early — the pattern set is valid and scores at least as
	// high as before, it just may have missed further improvements.
	Truncated bool
	// Elapsed is the wall-clock cost of the whole maintenance batch, so
	// callers report timing without wrapping ApplyCtx themselves.
	Elapsed time.Duration
}

// Build runs CATAPULT from scratch and wraps the result in a maintainable
// state. The corpus is used by reference and must subsequently be mutated
// only through Apply.
func Build(c *graph.Corpus, cfg Config) (*State, error) {
	cfg.defaults()
	res, err := catapult.Select(c, cfg.Catapult)
	if err != nil {
		return nil, err
	}
	if cfg.CandidateWalks == 0 {
		cfg.CandidateWalks = 120
	}
	weights := cfg.Catapult.Weights
	if weights == (pattern.Weights{}) {
		weights = pattern.DefaultWeights()
	}
	st := &State{
		cfg:       cfg,
		corpus:    c,
		fctSet:    res.FCT,
		patterns:  res.Patterns,
		gfd:       graphlet.CorpusGFDN(c, cfg.Catapult.Workers),
		selection: weights,
	}
	st.clusters = make([]*clusterState, res.Clustering.K)
	for ci := 0; ci < res.Clustering.K; ci++ {
		cs := &clusterState{names: make(map[string]bool), csg: res.CSGs[ci]}
		cs.medoid = res.Vectors[res.Clustering.Medoids[ci]]
		for _, idx := range res.Clustering.Members(ci) {
			cs.names[c.Graph(idx).Name()] = true
		}
		st.clusters[ci] = cs
	}
	return st, nil
}

// Patterns returns the current canned pattern set.
func (s *State) Patterns() []*pattern.Pattern { return s.patterns }

// Corpus returns the maintained corpus.
func (s *State) Corpus() *graph.Corpus { return s.corpus }

// Apply ingests a batch update: added graphs are inserted into the corpus
// and removedNames deleted from it, then the MIDAS maintenance pipeline
// runs. It returns a report of what happened.
func (s *State) Apply(added []*graph.Graph, removedNames []string) (*Report, error) {
	return s.ApplyCtx(context.Background(), added, removedNames)
}

// ApplyCtx is Apply under a context. Consistency-critical stages (corpus
// mutation, cluster assignment, GFD, FCT maintenance, CSG rebuilds) always
// run to completion — interrupting them would corrupt the maintained
// state. Only the optional pattern-maintenance stage degrades: swap scans
// stop at the deadline with Report.Truncated set, leaving a valid pattern
// set that scores no worse than the stale one.
func (s *State) ApplyCtx(ctx context.Context, added []*graph.Graph, removedNames []string) (*Report, error) {
	rep := &Report{}
	start := time.Now()
	defer func() { rep.Elapsed = time.Since(start) }()

	// Maintenance stages run under obs spans (stage_seconds histogram +
	// optional per-batch trace rows via vqimaintain -metrics).
	_, stage := obs.StartSpan(ctx, "midas.assign")

	// Collect removed graph copies before deletion (FCT maintenance needs
	// their content) and detach them from their clusters.
	var removed []*graph.Graph
	for _, name := range removedNames {
		g, ok := s.corpus.ByName(name)
		if !ok {
			return nil, fmt.Errorf("midas: removed graph %q not in corpus", name)
		}
		removed = append(removed, g)
		for _, cs := range s.clusters {
			if cs.names[name] {
				delete(cs.names, name)
				cs.dirty = true
			}
		}
		s.corpus.Remove(name)
	}
	rep.Removed = len(removed)

	// Step 1b: insert and assign added graphs to nearest clusters using
	// the (pre-update) feature space. Feature vectors (the costly part) are
	// computed concurrently; insertion and assignment stay sequential in
	// batch order.
	workers := s.cfg.Catapult.Workers
	vecs := par.Map(len(added), par.Grain(workers, len(added), 8), func(i int) []float64 {
		return s.fctSet.FeatureVector(added[i])
	})
	for i, g := range added {
		if err := s.corpus.Add(g); err != nil {
			return nil, fmt.Errorf("midas: %v", err)
		}
		ci := s.nearestCluster(vecs[i])
		s.clusters[ci].names[g.Name()] = true
		s.clusters[ci].dirty = true
	}
	rep.Added = len(added)
	stage.End()

	// Step 2: GFD distance decides minor vs major.
	_, stage = obs.StartSpan(ctx, "midas.gfd")
	newGFD := graphlet.CorpusGFDN(s.corpus, workers)
	rep.GFDDistance = graphlet.EuclideanDistance(s.gfd, newGFD)
	rep.Major = rep.GFDDistance > s.cfg.Threshold
	s.gfd = newGFD
	stage.End()

	// Step 3: FCT maintenance (exact incremental update).
	_, stage = obs.StartSpan(ctx, "midas.fct")
	if err := s.fctSet.Update(s.corpus, added, removed); err != nil {
		stage.End()
		return nil, err
	}
	stage.End()

	// Step 4: rebuild the CSGs of modified clusters concurrently — each
	// rebuild only reads the corpus and writes its own cluster's csg field.
	_, stage = obs.StartSpan(ctx, "midas.csg")
	var modified []*clusterState
	for _, cs := range s.clusters {
		if cs.dirty {
			modified = append(modified, cs)
		}
	}
	par.ForEachN(len(modified), workers, func(i int) {
		cs := modified[i]
		cs.csg = closure.Merge(s.memberGraphs(cs))
		cs.dirty = false
	})
	stage.End()

	// Step 5: pattern maintenance only on major modification, with
	// candidates drawn only from the CSGs of modified clusters — the
	// stable regions' contribution is already embodied in the current
	// pattern set.
	if rep.Major {
		if ctx.Err() != nil {
			// No budget left for the optional stage: report truncation
			// and keep the (still-valid) stale pattern set.
			rep.Truncated = true
			return rep, nil
		}
		sctx, swap := obs.StartSpan(ctx, "midas.swap")
		err := s.maintainPatterns(sctx, rep, modified)
		swap.End()
		if err != nil {
			return nil, err
		}
	}
	return rep, nil
}

func (s *State) nearestCluster(vec []float64) int {
	best, bestD := 0, -1.0
	for ci, cs := range s.clusters {
		d := euclidean(vec, cs.medoid)
		if bestD < 0 || d < bestD {
			best, bestD = ci, d
		}
	}
	return best
}

func euclidean(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a[i] - b[i]
		s += d * d
	}
	// Dimensions present in only one vector count fully.
	for i := n; i < len(a); i++ {
		s += a[i] * a[i]
	}
	for i := n; i < len(b); i++ {
		s += b[i] * b[i]
	}
	return s
}

func (s *State) memberGraphs(cs *clusterState) []*graph.Graph {
	names := make([]string, 0, len(cs.names))
	for n := range cs.names {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*graph.Graph
	for _, n := range names {
		if g, ok := s.corpus.ByName(n); ok {
			out = append(out, g)
		}
	}
	return out
}
