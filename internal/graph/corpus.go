package graph

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// corpusEntry is one corpus slot. Eager entries carry their graph from the
// start; lazy entries carry a loader that decodes the graph on first touch
// (single-flight: concurrent touches share one decode), after which the
// outcome — graph or error — is latched for the corpus's lifetime.
type corpusEntry struct {
	name string
	load func() (*Graph, error) // nil for eager entries; immutable

	once sync.Once
	done atomic.Bool
	g    *Graph
	err  error
}

// hydrate resolves the entry's graph, decoding it on the first call.
func (e *corpusEntry) hydrate() (*Graph, error) {
	e.once.Do(func() {
		if e.load != nil {
			e.g, e.err = e.load()
		}
		e.done.Store(true)
	})
	return e.g, e.err
}

// hydrated reports whether the entry's graph is resident (or its load has
// already failed) without triggering a load.
func (e *corpusEntry) hydrated() bool { return e.load == nil || e.done.Load() }

// Corpus is an ordered collection of data graphs — the "large collection of
// small- or medium-sized data graphs" (chemical compounds, protein
// structures) that CATAPULT and MIDAS operate over. Graphs are addressable
// both by position and by name; names must be unique within a corpus.
//
// Entries may be resident (Add) or lazy (AddLazy): a lazy entry holds only
// its name plus a loader, and the graph is decoded — e.g. from an mmap'd
// snapshot frame — on first touch. Name, EachName, Names, Len, and Remove
// never hydrate; Graph, ByName, Each, Clone, and Stats do. Hydration is
// single-flight per entry and safe under concurrent readers; the structural
// operations (Add, Remove, Adopt) are not, matching the repo-wide contract
// that corpora are built single-threaded and immutable while queried.
type Corpus struct {
	entries []*corpusEntry
	byName  map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byName: make(map[string]int)}
}

// Len returns the number of graphs in the corpus.
func (c *Corpus) Len() int { return len(c.entries) }

// Add appends g to the corpus. It returns an error if a graph with the same
// name is already present or if g is nil.
func (c *Corpus) Add(g *Graph) error {
	if g == nil {
		return fmt.Errorf("corpus: Add: nil graph")
	}
	return c.addEntry(&corpusEntry{name: g.Name(), g: g})
}

// MustAdd is Add but panics on error; for fixtures and generators.
func (c *Corpus) MustAdd(g *Graph) {
	if err := c.Add(g); err != nil {
		panic(err)
	}
}

// AddLazy appends a lazy entry: the graph named name is produced by load on
// first touch. load must return a graph whose Name() equals name; it runs
// at most once, and its result (or error) is latched.
func (c *Corpus) AddLazy(name string, load func() (*Graph, error)) error {
	if load == nil {
		return fmt.Errorf("corpus: AddLazy: nil loader")
	}
	return c.addEntry(&corpusEntry{name: name, load: load})
}

// Adopt appends entry i of another corpus, sharing its hydration state:
// if either corpus later touches the graph, both see the same decoded
// value without a second load. It is how derived corpora (batch-apply
// copies, shard partitions) stay lazy instead of forcing a full decode.
func (c *Corpus) Adopt(from *Corpus, i int) error {
	return c.addEntry(from.entries[i])
}

// MustAdopt is Adopt but panics on error.
func (c *Corpus) MustAdopt(from *Corpus, i int) {
	if err := c.Adopt(from, i); err != nil {
		panic(err)
	}
}

func (c *Corpus) addEntry(e *corpusEntry) error {
	if _, dup := c.byName[e.name]; dup {
		return fmt.Errorf("corpus: Add: duplicate graph name %q", e.name)
	}
	c.byName[e.name] = len(c.entries)
	c.entries = append(c.entries, e)
	return nil
}

// Graph returns the graph at position i, hydrating a lazy entry. A failed
// load (a corrupt on-disk frame) panics with the latched error; callers
// that must degrade instead of crash use Hydrate.
func (c *Corpus) Graph(i int) *Graph {
	g, err := c.entries[i].hydrate()
	if err != nil {
		panic(fmt.Errorf("corpus: graph %q: %w", c.entries[i].name, err))
	}
	return g
}

// Hydrate returns the graph at position i, decoding it on first touch. A
// corrupt frame surfaces here as an error (wrapping store.ErrCorrupt), and
// every later touch returns the same error — never a wrong graph.
func (c *Corpus) Hydrate(i int) (*Graph, error) {
	return c.entries[i].hydrate()
}

// Hydrated reports whether entry i is resident, without loading it.
func (c *Corpus) Hydrated(i int) bool { return c.entries[i].hydrated() }

// Name returns the name of the graph at position i without hydrating it.
func (c *Corpus) Name(i int) string { return c.entries[i].name }

// Has reports whether a graph with the given name is present, without
// hydrating it.
func (c *Corpus) Has(name string) bool {
	_, ok := c.byName[name]
	return ok
}

// IndexOf returns the position of the graph with the given name, without
// hydrating it.
func (c *Corpus) IndexOf(name string) (int, bool) {
	i, ok := c.byName[name]
	return i, ok
}

// ByName returns the graph with the given name, if present, hydrating a
// lazy entry (panicking, like Graph, if its frame is corrupt).
func (c *Corpus) ByName(name string) (*Graph, bool) {
	i, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return c.Graph(i), true
}

// Remove deletes the graph with the given name, preserving the relative
// order of the remaining graphs. It reports whether a graph was removed.
// Removal never hydrates anything.
func (c *Corpus) Remove(name string) bool {
	i, ok := c.byName[name]
	if !ok {
		return false
	}
	c.entries = append(c.entries[:i], c.entries[i+1:]...)
	delete(c.byName, name)
	for j := i; j < len(c.entries); j++ {
		c.byName[c.entries[j].name] = j
	}
	return true
}

// Names returns the graph names in corpus order, without hydrating.
func (c *Corpus) Names() []string {
	out := make([]string, len(c.entries))
	for i, e := range c.entries {
		out[i] = e.name
	}
	return out
}

// Clone returns a deep copy of the corpus. Cloning hydrates every entry —
// a deep copy of an undecoded graph has no meaning.
func (c *Corpus) Clone() *Corpus {
	out := NewCorpus()
	for i := range c.entries {
		out.MustAdd(c.Graph(i).Clone())
	}
	return out
}

// Each calls fn for every graph in corpus order, hydrating lazy entries
// (and panicking, like Graph, on a corrupt frame).
func (c *Corpus) Each(fn func(i int, g *Graph)) {
	for i := range c.entries {
		fn(i, c.Graph(i))
	}
}

// EachName calls fn for every entry in corpus order without hydrating any.
func (c *Corpus) EachName(fn func(i int, name string)) {
	for i, e := range c.entries {
		fn(i, e.name)
	}
}

// CorpusStats summarizes a corpus; it backs the data-driven population of a
// VQI's Attribute Panel and the reporting in the experiment harness.
type CorpusStats struct {
	Graphs     int
	TotalNodes int
	TotalEdges int
	MinNodes   int
	MaxNodes   int
	MeanNodes  float64
	MeanEdges  float64
	NodeLabels map[string]int // label -> number of occurrences corpus-wide
	EdgeLabels map[string]int
}

// Stats computes summary statistics over the corpus (hydrating it).
func (c *Corpus) Stats() CorpusStats {
	s := CorpusStats{
		Graphs:     len(c.entries),
		NodeLabels: make(map[string]int),
		EdgeLabels: make(map[string]int),
	}
	if len(c.entries) == 0 {
		return s
	}
	s.MinNodes = c.Graph(0).NumNodes()
	c.Each(func(_ int, g *Graph) {
		n, m := g.NumNodes(), g.NumEdges()
		s.TotalNodes += n
		s.TotalEdges += m
		if n < s.MinNodes {
			s.MinNodes = n
		}
		if n > s.MaxNodes {
			s.MaxNodes = n
		}
		for l, k := range g.NodeLabels() {
			s.NodeLabels[l] += k
		}
		for l, k := range g.EdgeLabels() {
			s.EdgeLabels[l] += k
		}
	})
	s.MeanNodes = float64(s.TotalNodes) / float64(len(c.entries))
	s.MeanEdges = float64(s.TotalEdges) / float64(len(c.entries))
	return s
}

// SortedNodeLabels returns the corpus's node labels sorted by descending
// frequency, ties broken alphabetically. This ordering is exactly what a
// data-driven Attribute Panel displays.
func (s CorpusStats) SortedNodeLabels() []string {
	return sortLabelsByFreq(s.NodeLabels)
}

// SortedEdgeLabels is SortedNodeLabels for edge labels.
func (s CorpusStats) SortedEdgeLabels() []string {
	return sortLabelsByFreq(s.EdgeLabels)
}

func sortLabelsByFreq(m map[string]int) []string {
	labels := make([]string, 0, len(m))
	for l := range m {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if m[labels[i]] != m[labels[j]] {
			return m[labels[i]] > m[labels[j]]
		}
		return labels[i] < labels[j]
	})
	return labels
}
