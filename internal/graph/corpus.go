package graph

import (
	"fmt"
	"sort"
)

// Corpus is an ordered collection of data graphs — the "large collection of
// small- or medium-sized data graphs" (chemical compounds, protein
// structures) that CATAPULT and MIDAS operate over. Graphs are addressable
// both by position and by name; names must be unique within a corpus.
type Corpus struct {
	graphs []*Graph
	byName map[string]int
}

// NewCorpus returns an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{byName: make(map[string]int)}
}

// Len returns the number of graphs in the corpus.
func (c *Corpus) Len() int { return len(c.graphs) }

// Add appends g to the corpus. It returns an error if a graph with the same
// name is already present or if g is nil.
func (c *Corpus) Add(g *Graph) error {
	if g == nil {
		return fmt.Errorf("corpus: Add: nil graph")
	}
	if _, dup := c.byName[g.Name()]; dup {
		return fmt.Errorf("corpus: Add: duplicate graph name %q", g.Name())
	}
	c.byName[g.Name()] = len(c.graphs)
	c.graphs = append(c.graphs, g)
	return nil
}

// MustAdd is Add but panics on error; for fixtures and generators.
func (c *Corpus) MustAdd(g *Graph) {
	if err := c.Add(g); err != nil {
		panic(err)
	}
}

// Graph returns the graph at position i.
func (c *Corpus) Graph(i int) *Graph { return c.graphs[i] }

// ByName returns the graph with the given name, if present.
func (c *Corpus) ByName(name string) (*Graph, bool) {
	i, ok := c.byName[name]
	if !ok {
		return nil, false
	}
	return c.graphs[i], true
}

// Remove deletes the graph with the given name, preserving the relative
// order of the remaining graphs. It reports whether a graph was removed.
func (c *Corpus) Remove(name string) bool {
	i, ok := c.byName[name]
	if !ok {
		return false
	}
	c.graphs = append(c.graphs[:i], c.graphs[i+1:]...)
	delete(c.byName, name)
	for j := i; j < len(c.graphs); j++ {
		c.byName[c.graphs[j].Name()] = j
	}
	return true
}

// Names returns the graph names in corpus order.
func (c *Corpus) Names() []string {
	out := make([]string, len(c.graphs))
	for i, g := range c.graphs {
		out[i] = g.Name()
	}
	return out
}

// Clone returns a deep copy of the corpus.
func (c *Corpus) Clone() *Corpus {
	out := NewCorpus()
	for _, g := range c.graphs {
		out.MustAdd(g.Clone())
	}
	return out
}

// Each calls fn for every graph in corpus order.
func (c *Corpus) Each(fn func(i int, g *Graph)) {
	for i, g := range c.graphs {
		fn(i, g)
	}
}

// CorpusStats summarizes a corpus; it backs the data-driven population of a
// VQI's Attribute Panel and the reporting in the experiment harness.
type CorpusStats struct {
	Graphs     int
	TotalNodes int
	TotalEdges int
	MinNodes   int
	MaxNodes   int
	MeanNodes  float64
	MeanEdges  float64
	NodeLabels map[string]int // label -> number of occurrences corpus-wide
	EdgeLabels map[string]int
}

// Stats computes summary statistics over the corpus.
func (c *Corpus) Stats() CorpusStats {
	s := CorpusStats{
		Graphs:     len(c.graphs),
		NodeLabels: make(map[string]int),
		EdgeLabels: make(map[string]int),
	}
	if len(c.graphs) == 0 {
		return s
	}
	s.MinNodes = c.graphs[0].NumNodes()
	for _, g := range c.graphs {
		n, m := g.NumNodes(), g.NumEdges()
		s.TotalNodes += n
		s.TotalEdges += m
		if n < s.MinNodes {
			s.MinNodes = n
		}
		if n > s.MaxNodes {
			s.MaxNodes = n
		}
		for l, k := range g.NodeLabels() {
			s.NodeLabels[l] += k
		}
		for l, k := range g.EdgeLabels() {
			s.EdgeLabels[l] += k
		}
	}
	s.MeanNodes = float64(s.TotalNodes) / float64(len(c.graphs))
	s.MeanEdges = float64(s.TotalEdges) / float64(len(c.graphs))
	return s
}

// SortedNodeLabels returns the corpus's node labels sorted by descending
// frequency, ties broken alphabetically. This ordering is exactly what a
// data-driven Attribute Panel displays.
func (s CorpusStats) SortedNodeLabels() []string {
	return sortLabelsByFreq(s.NodeLabels)
}

// SortedEdgeLabels is SortedNodeLabels for edge labels.
func (s CorpusStats) SortedEdgeLabels() []string {
	return sortLabelsByFreq(s.EdgeLabels)
}

func sortLabelsByFreq(m map[string]int) []string {
	labels := make([]string, 0, len(m))
	for l := range m {
		labels = append(labels, l)
	}
	sort.Slice(labels, func(i, j int) bool {
		if m[labels[i]] != m[labels[j]] {
			return m[labels[i]] > m[labels[j]]
		}
		return labels[i] < labels[j]
	})
	return labels
}
