package graph

import (
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

// triangleWithTail builds the 4-node fixture
//
//	0 - 1
//	|  /
//	2 - 3
func triangleWithTail(t *testing.T) *Graph {
	t.Helper()
	g := New("fixture")
	for i := 0; i < 4; i++ {
		g.AddNode("C")
	}
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	g.MustAddEdge(0, 2, "-")
	g.MustAddEdge(2, 3, "-")
	return g
}

func TestAddNodeAndEdge(t *testing.T) {
	g := New("t")
	a := g.AddNode("C")
	b := g.AddNode("N")
	if a != 0 || b != 1 {
		t.Fatalf("node ids = %d,%d, want 0,1", a, b)
	}
	id, err := g.AddEdge(a, b, "single")
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if id != 0 {
		t.Fatalf("edge id = %d, want 0", id)
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("counts = (%d,%d), want (2,1)", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(a, b) || !g.HasEdge(b, a) {
		t.Fatal("HasEdge must be symmetric")
	}
	if g.NodeLabel(a) != "C" || g.EdgeLabel(id) != "single" {
		t.Fatal("labels not stored")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New("t")
	a := g.AddNode("C")
	b := g.AddNode("C")
	g.MustAddEdge(a, b, "-")
	cases := []struct {
		name string
		u, v NodeID
	}{
		{"self-loop", a, a},
		{"duplicate", a, b},
		{"duplicate-reversed", b, a},
		{"u-out-of-range", -1, b},
		{"v-out-of-range", a, 99},
	}
	for _, tc := range cases {
		if _, err := g.AddEdge(tc.u, tc.v, "-"); err == nil {
			t.Errorf("%s: AddEdge(%d,%d) succeeded, want error", tc.name, tc.u, tc.v)
		}
	}
	if g.NumEdges() != 1 {
		t.Fatalf("failed AddEdge mutated the graph: m=%d", g.NumEdges())
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Fatal("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint must panic")
		}
	}()
	e.Other(5)
}

func TestNeighborsAndDegree(t *testing.T) {
	g := triangleWithTail(t)
	if got := g.Degree(2); got != 3 {
		t.Fatalf("Degree(2) = %d, want 3", got)
	}
	nbrs := g.Neighbors(2, nil)
	sort.Ints(nbrs)
	if !reflect.DeepEqual(nbrs, []NodeID{0, 1, 3}) {
		t.Fatalf("Neighbors(2) = %v", nbrs)
	}
	edges := g.IncidentEdges(2, nil)
	if len(edges) != 3 {
		t.Fatalf("IncidentEdges(2) = %v", edges)
	}
}

func TestVisitNeighborsEarlyStop(t *testing.T) {
	g := triangleWithTail(t)
	count := 0
	g.VisitNeighbors(2, func(NodeID, EdgeID) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d, want 2", count)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := triangleWithTail(t)
	c := g.Clone()
	c.SetNodeLabel(0, "X")
	c.AddNode("Y")
	if g.NodeLabel(0) != "C" || g.NumNodes() != 4 {
		t.Fatal("mutating clone affected original")
	}
	if c.Dump() == g.Dump() {
		t.Fatal("clone should differ after mutation")
	}
}

func TestBFSDepths(t *testing.T) {
	g := triangleWithTail(t)
	depth := map[NodeID]int{}
	g.BFS(3, func(n NodeID, d int) bool {
		depth[n] = d
		return true
	})
	want := map[NodeID]int{3: 0, 2: 1, 0: 2, 1: 2}
	if !reflect.DeepEqual(depth, want) {
		t.Fatalf("BFS depths = %v, want %v", depth, want)
	}
}

func TestDFSDeterministicOrder(t *testing.T) {
	g := triangleWithTail(t)
	var order []NodeID
	g.DFS(0, func(n NodeID) bool {
		order = append(order, n)
		return true
	})
	if len(order) != 4 || order[0] != 0 {
		t.Fatalf("DFS order = %v", order)
	}
	var again []NodeID
	g.DFS(0, func(n NodeID) bool {
		again = append(again, n)
		return true
	})
	if !reflect.DeepEqual(order, again) {
		t.Fatalf("DFS not deterministic: %v vs %v", order, again)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New("cc")
	for i := 0; i < 5; i++ {
		g.AddNode("A")
	}
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(3, 4, "-")
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3 groups", comps)
	}
	want := [][]NodeID{{0, 1}, {2}, {3, 4}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("components = %v, want %v", comps, want)
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if !triangleWithTail(t).IsConnected() {
		t.Fatal("connected graph reported disconnected")
	}
}

func TestShortestPathAndDiameter(t *testing.T) {
	g := triangleWithTail(t)
	if d := g.ShortestPathLen(0, 3); d != 2 {
		t.Fatalf("ShortestPathLen(0,3) = %d, want 2", d)
	}
	if d := g.ShortestPathLen(0, 0); d != 0 {
		t.Fatalf("ShortestPathLen(0,0) = %d, want 0", d)
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("Diameter = %d, want 2", d)
	}
	lonely := New("l")
	lonely.AddNode("A")
	lonely.AddNode("B")
	if d := lonely.ShortestPathLen(0, 1); d != -1 {
		t.Fatalf("unreachable ShortestPathLen = %d, want -1", d)
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangleWithTail(t)
	sub, orig := g.InducedSubgraph([]NodeID{0, 1, 2, 2})
	if sub.NumNodes() != 3 || sub.NumEdges() != 3 {
		t.Fatalf("induced = %s, want triangle", sub)
	}
	if !reflect.DeepEqual(orig, []NodeID{0, 1, 2}) {
		t.Fatalf("orig map = %v", orig)
	}
}

func TestSubgraphFromEdges(t *testing.T) {
	g := triangleWithTail(t)
	// Edge 3 is (2,3); edge 1 is (1,2).
	sub, orig := g.SubgraphFromEdges([]EdgeID{3, 1, 3})
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("sub = %s, want path of 3 nodes", sub)
	}
	if len(orig) != 3 {
		t.Fatalf("orig = %v", orig)
	}
}

func TestCountTriangles(t *testing.T) {
	if n := triangleWithTail(t).CountTriangles(); n != 1 {
		t.Fatalf("triangles = %d, want 1", n)
	}
	k4 := New("k4")
	for i := 0; i < 4; i++ {
		k4.AddNode("A")
	}
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.MustAddEdge(i, j, "-")
		}
	}
	if n := k4.CountTriangles(); n != 4 {
		t.Fatalf("K4 triangles = %d, want 4", n)
	}
	path := New("p")
	path.AddNodes(3, "A")
	path.MustAddEdge(0, 1, "-")
	path.MustAddEdge(1, 2, "-")
	if n := path.CountTriangles(); n != 0 {
		t.Fatalf("path triangles = %d, want 0", n)
	}
}

func TestTrianglesRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		n := 4 + rng.Intn(10)
		g := New("r")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		brute := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for k := j + 1; k < n; k++ {
					if g.HasEdge(i, j) && g.HasEdge(j, k) && g.HasEdge(i, k) {
						brute++
					}
				}
			}
		}
		if got := g.CountTriangles(); got != brute {
			t.Fatalf("trial %d: CountTriangles = %d, brute force = %d\n%s", trial, got, brute, g.Dump())
		}
	}
}

func TestDegreeSequenceAndDensity(t *testing.T) {
	g := triangleWithTail(t)
	if ds := g.DegreeSequence(); !reflect.DeepEqual(ds, []int{3, 2, 2, 1}) {
		t.Fatalf("degree sequence = %v", ds)
	}
	if g.MaxDegree() != 3 {
		t.Fatalf("MaxDegree = %d", g.MaxDegree())
	}
	want := 2.0 * 4 / (4 * 3)
	if d := g.Density(); d != want {
		t.Fatalf("Density = %v, want %v", d, want)
	}
	if (&Graph{}).Density() != 0 {
		t.Fatal("empty graph density must be 0")
	}
}

func TestLabelMaps(t *testing.T) {
	g := New("l")
	g.AddNode("C")
	g.AddNode("C")
	g.AddNode("N")
	g.MustAddEdge(0, 1, "single")
	g.MustAddEdge(1, 2, "double")
	if m := g.NodeLabels(); m["C"] != 2 || m["N"] != 1 {
		t.Fatalf("NodeLabels = %v", m)
	}
	if m := g.EdgeLabels(); m["single"] != 1 || m["double"] != 1 {
		t.Fatalf("EdgeLabels = %v", m)
	}
}

func TestDumpStable(t *testing.T) {
	g := triangleWithTail(t)
	d := g.Dump()
	if !strings.Contains(d, "v 0 C") || !strings.Contains(d, "e 0 2 -") {
		t.Fatalf("Dump output unexpected:\n%s", d)
	}
	if d != g.Dump() {
		t.Fatal("Dump not stable")
	}
}

// TestPropertyHandshake checks the handshake lemma (sum of degrees = 2m) on
// random graphs via testing/quick.
func TestPropertyHandshake(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw%20)
		g := New("q")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.3 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		sum := 0
		for v := 0; v < n; v++ {
			sum += g.Degree(v)
		}
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertySubgraphClosed checks that induced subgraphs never contain
// edges missing from the parent and preserve labels.
func TestPropertySubgraphClosed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(12)
		g := New("q")
		labels := []string{"C", "N", "O"}
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(len(labels))])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		var pick []NodeID
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.5 {
				pick = append(pick, v)
			}
		}
		sub, orig := g.InducedSubgraph(pick)
		if sub.NumNodes() != len(orig) {
			return false
		}
		for i := 0; i < sub.NumNodes(); i++ {
			if sub.NodeLabel(i) != g.NodeLabel(orig[i]) {
				return false
			}
			for j := i + 1; j < sub.NumNodes(); j++ {
				if sub.HasEdge(i, j) != g.HasEdge(orig[i], orig[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
