// Package graph provides the labeled undirected graph type that underpins
// every subsystem in this repository: graph corpora of small data graphs
// (chemical compounds, protein structures), single large networks (social,
// coauthorship), visual query patterns, and query graphs drawn on a VQI.
//
// Graphs are simple (no self-loops, no parallel edges), undirected, and
// carry string labels on both nodes and edges. Node identifiers are dense
// integer indices assigned in insertion order, which keeps adjacency
// representations compact and makes the type cheap enough to use for
// 200k-node networks as well as 10-node patterns.
package graph

import (
	"fmt"
	"sort"
	"strings"
)

// NodeID identifies a node within a single Graph. IDs are dense indices in
// [0, NumNodes()).
type NodeID = int

// EdgeID identifies an edge within a single Graph. IDs are dense indices in
// [0, NumEdges()).
type EdgeID = int

// Node is a labeled vertex.
type Node struct {
	Label string
}

// Edge is an undirected labeled edge between nodes U and V (U < V is not
// required; the pair is unordered).
type Edge struct {
	U, V  NodeID
	Label string
}

// Other returns the endpoint of e that is not n. It panics if n is not an
// endpoint of e.
func (e Edge) Other(n NodeID) NodeID {
	switch n {
	case e.U:
		return e.V
	case e.V:
		return e.U
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of edge %v", n, e))
}

type adjEntry struct {
	to   NodeID
	edge EdgeID
}

// Graph is a simple undirected labeled graph.
//
// The zero value is an empty graph ready for use. Graph is not safe for
// concurrent mutation; concurrent reads are safe.
type Graph struct {
	name  string
	nodes []Node
	edges []Edge
	adj   [][]adjEntry
}

// New returns an empty graph with the given name. The name is carried
// through I/O and is used by corpora to identify member graphs.
func New(name string) *Graph {
	return &Graph{name: name}
}

// Name returns the graph's name.
func (g *Graph) Name() string { return g.name }

// SetName sets the graph's name.
func (g *Graph) SetName(name string) { g.name = name }

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// AddNode appends a node with the given label and returns its ID.
func (g *Graph) AddNode(label string) NodeID {
	g.nodes = append(g.nodes, Node{Label: label})
	g.adj = append(g.adj, nil)
	return len(g.nodes) - 1
}

// AddNodes appends n nodes all carrying the same label and returns the ID of
// the first. The IDs are contiguous.
func (g *Graph) AddNodes(n int, label string) NodeID {
	first := len(g.nodes)
	for i := 0; i < n; i++ {
		g.AddNode(label)
	}
	return first
}

// AddEdge inserts an undirected edge between u and v with the given label
// and returns its ID. It returns an error if either endpoint is out of
// range, if u == v (self-loop), or if the edge already exists.
func (g *Graph) AddEdge(u, v NodeID, label string) (EdgeID, error) {
	if u < 0 || u >= len(g.nodes) {
		return -1, fmt.Errorf("graph %q: AddEdge: node %d out of range [0,%d)", g.name, u, len(g.nodes))
	}
	if v < 0 || v >= len(g.nodes) {
		return -1, fmt.Errorf("graph %q: AddEdge: node %d out of range [0,%d)", g.name, v, len(g.nodes))
	}
	if u == v {
		return -1, fmt.Errorf("graph %q: AddEdge: self-loop on node %d not allowed", g.name, u)
	}
	if g.HasEdge(u, v) {
		return -1, fmt.Errorf("graph %q: AddEdge: edge (%d,%d) already exists", g.name, u, v)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, Label: label})
	g.adj[u] = append(g.adj[u], adjEntry{to: v, edge: id})
	g.adj[v] = append(g.adj[v], adjEntry{to: u, edge: id})
	return id, nil
}

// MustAddEdge is AddEdge but panics on error. It is intended for
// construction of fixed test fixtures and generated graphs whose validity is
// guaranteed by construction.
func (g *Graph) MustAddEdge(u, v NodeID, label string) EdgeID {
	id, err := g.AddEdge(u, v, label)
	if err != nil {
		panic(err)
	}
	return id
}

// HasEdge reports whether an edge between u and v exists. Out-of-range
// arguments report false.
func (g *Graph) HasEdge(u, v NodeID) bool {
	_, ok := g.EdgeBetween(u, v)
	return ok
}

// EdgeBetween returns the ID of the edge between u and v, if any. It scans
// the shorter of the two adjacency lists.
func (g *Graph) EdgeBetween(u, v NodeID) (EdgeID, bool) {
	if u < 0 || u >= len(g.nodes) || v < 0 || v >= len(g.nodes) {
		return -1, false
	}
	a, b := u, v
	if len(g.adj[a]) > len(g.adj[b]) {
		a, b = b, a
	}
	for _, ent := range g.adj[a] {
		if ent.to == b {
			return ent.edge, true
		}
	}
	return -1, false
}

// Node returns the node with the given ID.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id EdgeID) Edge { return g.edges[id] }

// NodeLabel returns the label of node id.
func (g *Graph) NodeLabel(id NodeID) string { return g.nodes[id].Label }

// EdgeLabel returns the label of edge id.
func (g *Graph) EdgeLabel(id EdgeID) string { return g.edges[id].Label }

// SetNodeLabel replaces the label of node id.
func (g *Graph) SetNodeLabel(id NodeID, label string) { g.nodes[id].Label = label }

// SetEdgeLabel replaces the label of edge id.
func (g *Graph) SetEdgeLabel(id EdgeID, label string) { g.edges[id].Label = label }

// Degree returns the degree of node id.
func (g *Graph) Degree(id NodeID) int { return len(g.adj[id]) }

// Neighbors appends the neighbors of node id to dst and returns the
// extended slice. Passing a nil dst allocates. The order matches edge
// insertion order.
func (g *Graph) Neighbors(id NodeID, dst []NodeID) []NodeID {
	for _, ent := range g.adj[id] {
		dst = append(dst, ent.to)
	}
	return dst
}

// IncidentEdges appends the IDs of edges incident to node id to dst and
// returns the extended slice.
func (g *Graph) IncidentEdges(id NodeID, dst []EdgeID) []EdgeID {
	for _, ent := range g.adj[id] {
		dst = append(dst, ent.edge)
	}
	return dst
}

// VisitNeighbors calls fn for every neighbor of id with the neighbor ID and
// the connecting edge ID. Iteration stops early if fn returns false.
func (g *Graph) VisitNeighbors(id NodeID, fn func(nbr NodeID, e EdgeID) bool) {
	for _, ent := range g.adj[id] {
		if !fn(ent.to, ent.edge) {
			return
		}
	}
}

// Edges returns a copy of the edge list.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		name:  g.name,
		nodes: make([]Node, len(g.nodes)),
		edges: make([]Edge, len(g.edges)),
		adj:   make([][]adjEntry, len(g.adj)),
	}
	copy(c.nodes, g.nodes)
	copy(c.edges, g.edges)
	for i, a := range g.adj {
		c.adj[i] = append([]adjEntry(nil), a...)
	}
	return c
}

// NodeLabels returns the multiset of node labels as a frequency map.
func (g *Graph) NodeLabels() map[string]int {
	m := make(map[string]int)
	for _, n := range g.nodes {
		m[n.Label]++
	}
	return m
}

// EdgeLabels returns the multiset of edge labels as a frequency map.
func (g *Graph) EdgeLabels() map[string]int {
	m := make(map[string]int)
	for _, e := range g.edges {
		m[e.Label]++
	}
	return m
}

// DegreeSequence returns the sorted (descending) degree sequence.
func (g *Graph) DegreeSequence() []int {
	ds := make([]int, len(g.nodes))
	for i := range g.nodes {
		ds[i] = len(g.adj[i])
	}
	sort.Sort(sort.Reverse(sort.IntSlice(ds)))
	return ds
}

// MaxDegree returns the maximum degree, or 0 for an empty graph.
func (g *Graph) MaxDegree() int {
	max := 0
	for i := range g.adj {
		if d := len(g.adj[i]); d > max {
			max = d
		}
	}
	return max
}

// String returns a compact human-readable description, e.g.
// "g12(n=6,m=7)".
func (g *Graph) String() string {
	return fmt.Sprintf("%s(n=%d,m=%d)", g.name, len(g.nodes), len(g.edges))
}

// Dump returns a full multi-line listing of nodes and edges, intended for
// debugging and golden tests.
func (g *Graph) Dump() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graph %s nodes=%d edges=%d\n", g.name, len(g.nodes), len(g.edges))
	for i, n := range g.nodes {
		fmt.Fprintf(&b, "v %d %s\n", i, n.Label)
	}
	for _, e := range g.edges {
		u, v := e.U, e.V
		if u > v {
			u, v = v, u
		}
		fmt.Fprintf(&b, "e %d %d %s\n", u, v, e.Label)
	}
	return b.String()
}
