package graph

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func lazyGraph(name string) *Graph {
	g := New(name)
	a := g.AddNode("C")
	b := g.AddNode("O")
	g.AddEdge(a, b, "s")
	return g
}

func TestAddLazyHydratesOnFirstTouch(t *testing.T) {
	c := NewCorpus()
	var loads atomic.Int32
	if err := c.AddLazy("g1", func() (*Graph, error) {
		loads.Add(1)
		return lazyGraph("g1"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if c.Hydrated(0) {
		t.Fatal("lazy entry reports hydrated before first touch")
	}
	if got := c.Name(0); got != "g1" {
		t.Fatalf("Name = %q before hydration", got)
	}
	if loads.Load() != 0 {
		t.Fatal("Name hydrated the entry")
	}
	g, err := c.Hydrate(0)
	if err != nil || g.Name() != "g1" {
		t.Fatalf("Hydrate = %v, %v", g, err)
	}
	if !c.Hydrated(0) {
		t.Fatal("entry not hydrated after touch")
	}
	c.Graph(0)
	if loads.Load() != 1 {
		t.Fatalf("loader ran %d times, want 1", loads.Load())
	}
}

func TestAddLazySingleFlight(t *testing.T) {
	c := NewCorpus()
	var loads atomic.Int32
	c.AddLazy("g1", func() (*Graph, error) {
		loads.Add(1)
		return lazyGraph("g1"), nil
	})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if g, err := c.Hydrate(0); err != nil || g == nil {
				t.Errorf("Hydrate = %v, %v", g, err)
			}
		}()
	}
	wg.Wait()
	if loads.Load() != 1 {
		t.Fatalf("loader ran %d times under concurrency, want 1", loads.Load())
	}
}

func TestAddLazyErrorIsLatched(t *testing.T) {
	c := NewCorpus()
	boom := errors.New("bad frame")
	var loads atomic.Int32
	c.AddLazy("bad", func() (*Graph, error) {
		loads.Add(1)
		return nil, boom
	})
	for i := 0; i < 3; i++ {
		if _, err := c.Hydrate(0); !errors.Is(err, boom) {
			t.Fatalf("Hydrate = %v, want latched %v", err, boom)
		}
	}
	if loads.Load() != 1 {
		t.Fatalf("failed loader re-ran %d times", loads.Load())
	}
	// Graph() escalates the latched error to a panic (serving layers
	// recover it into a 500).
	defer func() {
		if recover() == nil {
			t.Fatal("Graph on a corrupt entry did not panic")
		}
	}()
	c.Graph(0)
}

func TestAdoptSharesHydration(t *testing.T) {
	a := NewCorpus()
	var loads atomic.Int32
	a.AddLazy("g1", func() (*Graph, error) {
		loads.Add(1)
		return lazyGraph("g1"), nil
	})
	b := NewCorpus()
	if err := b.Adopt(a, 0); err != nil {
		t.Fatal(err)
	}
	g1 := b.Graph(0)
	g2 := a.Graph(0)
	if g1 != g2 {
		t.Fatal("adopted entry decoded separately")
	}
	if loads.Load() != 1 {
		t.Fatalf("loader ran %d times across corpora, want 1", loads.Load())
	}
	if !a.Hydrated(0) || !b.Hydrated(0) {
		t.Fatal("hydration state not shared")
	}
}

func TestRemoveAndNamesNeverHydrate(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("g%d", i)
		c.AddLazy(name, func() (*Graph, error) {
			t.Errorf("loader for %s ran", name)
			return lazyGraph(name), nil
		})
	}
	if got := c.Names(); len(got) != 4 {
		t.Fatalf("Names = %v", got)
	}
	if !c.Has("g2") || c.Has("nope") {
		t.Fatal("Has wrong")
	}
	if !c.Remove("g1") {
		t.Fatal("Remove failed")
	}
	if c.Len() != 3 || c.Name(1) != "g2" {
		t.Fatalf("order after Remove: %v", c.Names())
	}
	seen := 0
	c.EachName(func(i int, name string) { seen++ })
	if seen != 3 {
		t.Fatalf("EachName visited %d", seen)
	}
	if i, ok := c.IndexOf("g3"); !ok || i != 2 {
		t.Fatalf("IndexOf(g3) = %d, %v", i, ok)
	}
}

func TestAddLazyRejectsDuplicatesAndNilLoader(t *testing.T) {
	c := NewCorpus()
	if err := c.AddLazy("x", nil); err == nil {
		t.Fatal("nil loader accepted")
	}
	c.MustAdd(lazyGraph("x"))
	if err := c.AddLazy("x", func() (*Graph, error) { return lazyGraph("x"), nil }); err == nil {
		t.Fatal("duplicate lazy name accepted")
	}
}
