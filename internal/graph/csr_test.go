package graph

import (
	"math/rand"
	"testing"
)

func randomTestGraph(seed int64, n int, p float64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	g := New("r")
	labels := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	elabels := []string{"s", "d"}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.MustAddEdge(i, j, elabels[rng.Intn(len(elabels))])
			}
		}
	}
	return g
}

func TestSnapshotStructure(t *testing.T) {
	g := randomTestGraph(1, 40, 0.2)
	cs := g.Snapshot()
	if cs.NumNodes() != g.NumNodes() || cs.NumEdges() != g.NumEdges() {
		t.Fatalf("sizes: csr %d/%d vs graph %d/%d", cs.NumNodes(), cs.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for v := 0; v < g.NumNodes(); v++ {
		if cs.Degree(v) != g.Degree(v) {
			t.Fatalf("degree(%d): %d vs %d", v, cs.Degree(v), g.Degree(v))
		}
		row, eids := cs.NeighborEdges(v)
		for i := range row {
			if i > 0 && row[i-1] >= row[i] {
				t.Fatalf("row %d not strictly ascending: %v", v, row)
			}
			// The parallel edge id must be the edge between v and row[i].
			e := g.Edge(int(eids[i]))
			if e.Other(v) != int(row[i]) {
				t.Fatalf("row %d: edge %d does not connect %d-%d", v, eids[i], v, row[i])
			}
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		u, v := cs.EdgeEndpoints(e)
		if u >= v {
			t.Fatalf("edge %d endpoints not normalized: %d,%d", e, u, v)
		}
		ge := g.Edge(e)
		gu, gv := ge.U, ge.V
		if gu > gv {
			gu, gv = gv, gu
		}
		if int(u) != gu || int(v) != gv {
			t.Fatalf("edge %d endpoints %d,%d vs graph %d,%d", e, u, v, gu, gv)
		}
	}
}

func TestSnapshotLabels(t *testing.T) {
	g := randomTestGraph(2, 30, 0.15)
	cs := g.Snapshot()
	for v := 0; v < g.NumNodes(); v++ {
		if cs.Label(cs.NodeLabelID(v)) != g.NodeLabel(v) {
			t.Fatalf("node %d label roundtrip", v)
		}
	}
	for e := 0; e < g.NumEdges(); e++ {
		if cs.Label(cs.EdgeLabelID(e)) != g.EdgeLabel(e) {
			t.Fatalf("edge %d label roundtrip", e)
		}
	}
	if id, ok := cs.LabelID(g.NodeLabel(0)); !ok || cs.Label(id) != g.NodeLabel(0) {
		t.Fatal("LabelID lookup")
	}
	if _, ok := cs.LabelID("no-such-label"); ok {
		t.Fatal("absent label must not resolve")
	}
	if cs.NumLabels() < 1 {
		t.Fatal("labels interned")
	}
	// Interning is deterministic: two snapshots of the same graph agree.
	cs2 := g.Snapshot()
	for v := 0; v < g.NumNodes(); v++ {
		if cs.NodeLabelID(v) != cs2.NodeLabelID(v) {
			t.Fatal("interning not deterministic")
		}
	}
}

func TestSnapshotHasEdgeMatchesGraph(t *testing.T) {
	g := randomTestGraph(3, 25, 0.3)
	cs := g.Snapshot()
	for u := 0; u < g.NumNodes(); u++ {
		for v := 0; v < g.NumNodes(); v++ {
			if u == v {
				continue
			}
			if cs.HasEdge(u, v) != g.HasEdge(u, v) {
				t.Fatalf("HasEdge(%d,%d) mismatch", u, v)
			}
		}
	}
}

func TestSnapshotCommonNeighbors(t *testing.T) {
	g := randomTestGraph(4, 30, 0.25)
	cs := g.Snapshot()
	for u := 0; u < g.NumNodes(); u++ {
		for v := u + 1; v < g.NumNodes(); v++ {
			want := 0
			for w := 0; w < g.NumNodes(); w++ {
				if w != u && w != v && g.HasEdge(u, w) && g.HasEdge(v, w) {
					want++
				}
			}
			if got := cs.CommonCount(u, v); got != want {
				t.Fatalf("CommonCount(%d,%d) = %d want %d", u, v, got, want)
			}
			prev := int32(-1)
			cs.ForEachCommon(u, v, func(w, eu, ev int32) {
				if w <= prev {
					t.Fatalf("common neighbors of (%d,%d) not ascending", u, v)
				}
				prev = w
				if g.Edge(int(eu)).Other(u) != int(w) || g.Edge(int(ev)).Other(v) != int(w) {
					t.Fatalf("common edge ids wrong for (%d,%d,w=%d)", u, v, w)
				}
			})
		}
	}
}

func TestSnapshotIsDecoupled(t *testing.T) {
	g := New("g")
	g.AddNodes(3, "A")
	g.MustAddEdge(0, 1, "x")
	cs := g.Snapshot()
	g.MustAddEdge(1, 2, "x")
	if cs.NumEdges() != 1 {
		t.Fatal("snapshot must not track later mutations")
	}
	if cs.HasEdge(1, 2) {
		t.Fatal("snapshot saw a post-build edge")
	}
}

func TestSnapshotEmpty(t *testing.T) {
	cs := New("e").Snapshot()
	if cs.NumNodes() != 0 || cs.NumEdges() != 0 || cs.NumLabels() != 0 {
		t.Fatal("empty snapshot")
	}
}
