package graph

import "sort"

// CSR is an immutable compressed-sparse-row snapshot of a Graph: flat
// []int32 offset/neighbor/edge arrays with per-row neighbor ids sorted
// ascending, plus a dense label-id interning table for node and edge
// labels. Kernels that sweep adjacency millions of times (graphlet
// censuses, triangle counting, truss support) build one snapshot per graph
// and then iterate with zero map lookups and zero per-call allocation.
//
// Contract:
//
//   - A CSR is a snapshot. It is decoupled from the Graph it was built
//     from; mutating the Graph afterwards does NOT update the snapshot.
//     Rebuild (Graph.Snapshot) after any mutation, exactly like
//     gindex.Index or pattern.CoverCache after a corpus change.
//   - A CSR is immutable and safe for unsynchronized concurrent reads.
//     Accessors returning slices (Neighbors, NeighborEdges) return views
//     into shared arrays; callers must not modify them.
//   - Node ids are the Graph's dense NodeIDs; edge ids its dense EdgeIDs.
//     Edge endpoints are normalized so EdgeEndpoints returns u < v.
//   - Label ids are dense int32s assigned in first-appearance order (all
//     node labels in node order, then edge labels in edge order), so the
//     interning is deterministic for a given Graph.
type CSR struct {
	offsets   []int32 // len NumNodes+1; row v is [offsets[v], offsets[v+1])
	nbrs      []int32 // concatenated neighbor ids, sorted within each row
	eids      []int32 // edge id parallel to nbrs
	edgeU     []int32 // edge id -> smaller endpoint
	edgeV     []int32 // edge id -> larger endpoint
	nodeLabel []int32 // node id -> interned label id
	edgeLabel []int32 // edge id -> interned label id
	labels    []string
	labelID   map[string]int32
}

// Snapshot builds a CSR snapshot of g. Construction is O(n + m log d_max)
// (per-row sorts); everything after that is allocation-free iteration.
func (g *Graph) Snapshot() *CSR {
	n, m := len(g.nodes), len(g.edges)
	cs := &CSR{
		offsets:   make([]int32, n+1),
		nbrs:      make([]int32, 2*m),
		eids:      make([]int32, 2*m),
		edgeU:     make([]int32, m),
		edgeV:     make([]int32, m),
		nodeLabel: make([]int32, n),
		edgeLabel: make([]int32, m),
		labelID:   make(map[string]int32),
	}
	intern := func(s string) int32 {
		if id, ok := cs.labelID[s]; ok {
			return id
		}
		id := int32(len(cs.labels))
		cs.labels = append(cs.labels, s)
		cs.labelID[s] = id
		return id
	}
	for v := 0; v < n; v++ {
		cs.offsets[v+1] = cs.offsets[v] + int32(len(g.adj[v]))
		cs.nodeLabel[v] = intern(g.nodes[v].Label)
	}
	for e := 0; e < m; e++ {
		ed := g.edges[e]
		u, v := ed.U, ed.V
		if u > v {
			u, v = v, u
		}
		cs.edgeU[e], cs.edgeV[e] = int32(u), int32(v)
		cs.edgeLabel[e] = intern(ed.Label)
	}
	fill := make([]int32, n)
	for v := 0; v < n; v++ {
		for _, ent := range g.adj[v] {
			p := cs.offsets[v] + fill[v]
			cs.nbrs[p] = int32(ent.to)
			cs.eids[p] = int32(ent.edge)
			fill[v]++
		}
	}
	for v := 0; v < n; v++ {
		lo, hi := cs.offsets[v], cs.offsets[v+1]
		sort.Sort(csrRow{nbrs: cs.nbrs[lo:hi], eids: cs.eids[lo:hi]})
	}
	return cs
}

type csrRow struct{ nbrs, eids []int32 }

func (r csrRow) Len() int           { return len(r.nbrs) }
func (r csrRow) Less(i, j int) bool { return r.nbrs[i] < r.nbrs[j] }
func (r csrRow) Swap(i, j int) {
	r.nbrs[i], r.nbrs[j] = r.nbrs[j], r.nbrs[i]
	r.eids[i], r.eids[j] = r.eids[j], r.eids[i]
}

// NumNodes returns the number of nodes in the snapshot.
func (cs *CSR) NumNodes() int { return len(cs.offsets) - 1 }

// NumEdges returns the number of edges in the snapshot.
func (cs *CSR) NumEdges() int { return len(cs.edgeU) }

// Degree returns the degree of node v.
func (cs *CSR) Degree(v int) int { return int(cs.offsets[v+1] - cs.offsets[v]) }

// Neighbors returns node v's neighbor ids, sorted ascending. The slice is
// a view into the snapshot and must not be modified.
func (cs *CSR) Neighbors(v int) []int32 { return cs.nbrs[cs.offsets[v]:cs.offsets[v+1]] }

// NeighborEdges returns node v's neighbor ids and the parallel edge ids.
// Both slices are views into the snapshot and must not be modified.
func (cs *CSR) NeighborEdges(v int) (nbrs, eids []int32) {
	lo, hi := cs.offsets[v], cs.offsets[v+1]
	return cs.nbrs[lo:hi], cs.eids[lo:hi]
}

// EdgeEndpoints returns the endpoints of edge e with u < v.
func (cs *CSR) EdgeEndpoints(e int) (u, v int32) { return cs.edgeU[e], cs.edgeV[e] }

// HasEdge reports whether nodes u and v are adjacent, by binary search on
// the shorter sorted row.
func (cs *CSR) HasEdge(u, v int) bool {
	if cs.Degree(u) > cs.Degree(v) {
		u, v = v, u
	}
	row := cs.Neighbors(u)
	t := int32(v)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= t })
	return i < len(row) && row[i] == t
}

// NodeLabelID returns the interned label id of node v.
func (cs *CSR) NodeLabelID(v int) int32 { return cs.nodeLabel[v] }

// EdgeLabelID returns the interned label id of edge e.
func (cs *CSR) EdgeLabelID(e int) int32 { return cs.edgeLabel[e] }

// Label returns the label string for an interned id.
func (cs *CSR) Label(id int32) string { return cs.labels[id] }

// LabelID returns the interned id of a label, if present in the snapshot.
func (cs *CSR) LabelID(label string) (int32, bool) {
	id, ok := cs.labelID[label]
	return id, ok
}

// NumLabels returns the number of distinct (node or edge) labels interned.
func (cs *CSR) NumLabels() int { return len(cs.labels) }

// ForEachCommon calls fn for every common neighbor w of u and v, with the
// edge ids of (u,w) and (v,w), in ascending w order. Rows are sorted, so
// this is a two-pointer merge: O(deg(u)+deg(v)), no allocation.
func (cs *CSR) ForEachCommon(u, v int, fn func(w, eu, ev int32)) {
	an, ae := cs.NeighborEdges(u)
	bn, be := cs.NeighborEdges(v)
	i, j := 0, 0
	for i < len(an) && j < len(bn) {
		switch {
		case an[i] < bn[j]:
			i++
		case an[i] > bn[j]:
			j++
		default:
			fn(an[i], ae[i], be[j])
			i++
			j++
		}
	}
}

// CommonCount returns the number of common neighbors of u and v.
func (cs *CSR) CommonCount(u, v int) int {
	c := 0
	cs.ForEachCommon(u, v, func(_, _, _ int32) { c++ })
	return c
}
