package graph

import (
	"fmt"
	"reflect"
	"testing"
)

func makeCorpus(t *testing.T, n int) *Corpus {
	t.Helper()
	c := NewCorpus()
	for i := 0; i < n; i++ {
		g := New(fmt.Sprintf("g%d", i))
		g.AddNode("C")
		g.AddNode("N")
		g.MustAddEdge(0, 1, "-")
		c.MustAdd(g)
	}
	return c
}

func TestCorpusAddAndLookup(t *testing.T) {
	c := makeCorpus(t, 3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	g, ok := c.ByName("g1")
	if !ok || g.Name() != "g1" {
		t.Fatalf("ByName(g1) = %v, %v", g, ok)
	}
	if _, ok := c.ByName("missing"); ok {
		t.Fatal("ByName(missing) must fail")
	}
	if c.Graph(2).Name() != "g2" {
		t.Fatal("positional access broken")
	}
}

func TestCorpusDuplicateAndNil(t *testing.T) {
	c := makeCorpus(t, 1)
	dup := New("g0")
	if err := c.Add(dup); err == nil {
		t.Fatal("duplicate Add must fail")
	}
	if err := c.Add(nil); err == nil {
		t.Fatal("nil Add must fail")
	}
}

func TestCorpusRemoveReindexes(t *testing.T) {
	c := makeCorpus(t, 4)
	if !c.Remove("g1") {
		t.Fatal("Remove(g1) failed")
	}
	if c.Remove("g1") {
		t.Fatal("second Remove(g1) must report false")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d after removal", c.Len())
	}
	// Remaining graphs keep order and lookups stay consistent.
	if !reflect.DeepEqual(c.Names(), []string{"g0", "g2", "g3"}) {
		t.Fatalf("Names = %v", c.Names())
	}
	for _, name := range c.Names() {
		g, ok := c.ByName(name)
		if !ok || g.Name() != name {
			t.Fatalf("lookup of %q broken after removal", name)
		}
	}
}

func TestCorpusCloneIsDeep(t *testing.T) {
	c := makeCorpus(t, 2)
	cl := c.Clone()
	g, _ := cl.ByName("g0")
	g.SetNodeLabel(0, "X")
	orig, _ := c.ByName("g0")
	if orig.NodeLabel(0) != "C" {
		t.Fatal("Clone shares graph storage")
	}
}

func TestCorpusStats(t *testing.T) {
	c := NewCorpus()
	g1 := New("a")
	g1.AddNode("C")
	g1.AddNode("C")
	g1.MustAddEdge(0, 1, "single")
	c.MustAdd(g1)
	g2 := New("b")
	g2.AddNode("N")
	g2.AddNode("O")
	g2.AddNode("C")
	g2.MustAddEdge(0, 1, "double")
	g2.MustAddEdge(1, 2, "single")
	c.MustAdd(g2)

	s := c.Stats()
	if s.Graphs != 2 || s.TotalNodes != 5 || s.TotalEdges != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MinNodes != 2 || s.MaxNodes != 3 {
		t.Fatalf("min/max = %d/%d", s.MinNodes, s.MaxNodes)
	}
	if s.MeanNodes != 2.5 || s.MeanEdges != 1.5 {
		t.Fatalf("means = %v/%v", s.MeanNodes, s.MeanEdges)
	}
	if s.NodeLabels["C"] != 3 {
		t.Fatalf("node label counts = %v", s.NodeLabels)
	}
	// C(3) first, then N and O alphabetical (1 each).
	if got := s.SortedNodeLabels(); !reflect.DeepEqual(got, []string{"C", "N", "O"}) {
		t.Fatalf("SortedNodeLabels = %v", got)
	}
	if got := s.SortedEdgeLabels(); !reflect.DeepEqual(got, []string{"single", "double"}) {
		t.Fatalf("SortedEdgeLabels = %v", got)
	}
}

func TestCorpusStatsEmpty(t *testing.T) {
	s := NewCorpus().Stats()
	if s.Graphs != 0 || s.MeanNodes != 0 {
		t.Fatalf("empty stats = %+v", s)
	}
}

func TestCorpusEachOrder(t *testing.T) {
	c := makeCorpus(t, 3)
	var names []string
	c.Each(func(i int, g *Graph) {
		names = append(names, fmt.Sprintf("%d:%s", i, g.Name()))
	})
	if !reflect.DeepEqual(names, []string{"0:g0", "1:g1", "2:g2"}) {
		t.Fatalf("Each order = %v", names)
	}
}
