package graph

import "sort"

// This file contains traversal and structural queries: BFS/DFS, connected
// components, shortest paths (unweighted), induced subgraphs, and triangle
// counting. These are the primitives the pattern-selection frameworks lean
// on (CATAPULT's random walks, TATTOO's topology classification, cognitive
// load measures that need density and triangle counts).

// BFS visits nodes in breadth-first order starting from src, calling fn with
// each visited node and its distance from src. Traversal stops early if fn
// returns false.
func (g *Graph) BFS(src NodeID, fn func(n NodeID, depth int) bool) {
	if src < 0 || src >= len(g.nodes) {
		return
	}
	seen := make([]bool, len(g.nodes))
	type item struct {
		n NodeID
		d int
	}
	queue := []item{{src, 0}}
	seen[src] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if !fn(cur.n, cur.d) {
			return
		}
		for _, ent := range g.adj[cur.n] {
			if !seen[ent.to] {
				seen[ent.to] = true
				queue = append(queue, item{ent.to, cur.d + 1})
			}
		}
	}
}

// DFS visits nodes in depth-first (preorder) order starting from src.
// Traversal stops early if fn returns false.
func (g *Graph) DFS(src NodeID, fn func(n NodeID) bool) {
	if src < 0 || src >= len(g.nodes) {
		return
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{src}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if !fn(n) {
			return
		}
		// Push neighbors in reverse so that lower-index neighbors are
		// visited first, giving deterministic preorder.
		for i := len(g.adj[n]) - 1; i >= 0; i-- {
			if to := g.adj[n][i].to; !seen[to] {
				stack = append(stack, to)
			}
		}
	}
}

// ConnectedComponents returns the node sets of the connected components,
// each sorted ascending, in order of their smallest member.
func (g *Graph) ConnectedComponents() [][]NodeID {
	seen := make([]bool, len(g.nodes))
	var comps [][]NodeID
	for s := range g.nodes {
		if seen[s] {
			continue
		}
		var comp []NodeID
		g.BFS(s, func(n NodeID, _ int) bool {
			seen[n] = true
			comp = append(comp, n)
			return true
		})
		insertionSort(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph is connected. The empty graph is
// considered connected.
func (g *Graph) IsConnected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	count := 0
	g.BFS(0, func(NodeID, int) bool {
		count++
		return true
	})
	return count == len(g.nodes)
}

// ShortestPathLen returns the number of edges on a shortest path between u
// and v, or -1 if v is unreachable from u.
func (g *Graph) ShortestPathLen(u, v NodeID) int {
	res := -1
	g.BFS(u, func(n NodeID, d int) bool {
		if n == v {
			res = d
			return false
		}
		return true
	})
	return res
}

// Eccentricity returns the greatest shortest-path distance from n to any
// node reachable from n.
func (g *Graph) Eccentricity(n NodeID) int {
	max := 0
	g.BFS(n, func(_ NodeID, d int) bool {
		if d > max {
			max = d
		}
		return true
	})
	return max
}

// Diameter returns the longest shortest path over all reachable pairs. It
// is intended for small graphs (patterns); cost is O(n·(n+m)).
func (g *Graph) Diameter() int {
	max := 0
	for n := range g.nodes {
		if e := g.Eccentricity(n); e > max {
			max = e
		}
	}
	return max
}

// InducedSubgraph returns the subgraph induced by the given nodes, together
// with the mapping from new node IDs to original IDs. Duplicate input nodes
// are ignored. The subgraph's name is the original name with a "#sub"
// suffix.
func (g *Graph) InducedSubgraph(nodes []NodeID) (*Graph, []NodeID) {
	remap := make(map[NodeID]NodeID, len(nodes))
	sub := New(g.name + "#sub")
	var orig []NodeID
	for _, n := range nodes {
		if _, dup := remap[n]; dup {
			continue
		}
		remap[n] = sub.AddNode(g.nodes[n].Label)
		orig = append(orig, n)
	}
	for _, e := range g.edges {
		nu, okU := remap[e.U]
		nv, okV := remap[e.V]
		if okU && okV {
			sub.MustAddEdge(nu, nv, e.Label)
		}
	}
	return sub, orig
}

// SubgraphFromEdges returns the subgraph consisting of exactly the given
// edges and their endpoints, together with the mapping from new node IDs to
// original IDs. Duplicate edges are ignored.
func (g *Graph) SubgraphFromEdges(edges []EdgeID) (*Graph, []NodeID) {
	remap := make(map[NodeID]NodeID)
	sub := New(g.name + "#sub")
	var orig []NodeID
	node := func(n NodeID) NodeID {
		if id, ok := remap[n]; ok {
			return id
		}
		id := sub.AddNode(g.nodes[n].Label)
		remap[n] = id
		orig = append(orig, n)
		return id
	}
	seen := make(map[EdgeID]bool, len(edges))
	for _, eid := range edges {
		if seen[eid] {
			continue
		}
		seen[eid] = true
		e := g.edges[eid]
		u, v := node(e.U), node(e.V)
		if !sub.HasEdge(u, v) {
			sub.MustAddEdge(u, v, e.Label)
		}
	}
	return sub, orig
}

// CountTriangles returns the number of triangles in the graph. It uses the
// standard degree-ordered enumeration, O(m^{3/2}).
func (g *Graph) CountTriangles() int {
	n := len(g.nodes)
	// rank orders nodes by (degree, id); edges are oriented from lower to
	// higher rank so each triangle is counted exactly once.
	rank := make([]int, n)
	order := make([]NodeID, n)
	for i := range order {
		order[i] = i
	}
	// Simple counting-sort-free ordering: sort by degree then id.
	sortNodesByDegree(order, g)
	for r, id := range order {
		rank[id] = r
	}
	higher := make([][]NodeID, n)
	for _, e := range g.edges {
		u, v := e.U, e.V
		if rank[u] > rank[v] {
			u, v = v, u
		}
		higher[u] = append(higher[u], v)
	}
	mark := make([]bool, n)
	count := 0
	for u := range higher {
		for _, v := range higher[u] {
			mark[v] = true
		}
		for _, v := range higher[u] {
			for _, w := range higher[v] {
				if mark[w] {
					count++
				}
			}
		}
		for _, v := range higher[u] {
			mark[v] = false
		}
	}
	return count
}

// Density returns 2m / (n·(n-1)) for n ≥ 2, else 0.
func (g *Graph) Density() float64 {
	n := len(g.nodes)
	if n < 2 {
		return 0
	}
	return 2 * float64(len(g.edges)) / (float64(n) * float64(n-1))
}

func sortNodesByDegree(order []NodeID, g *Graph) {
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		da, db := len(g.adj[a]), len(g.adj[b])
		if da != db {
			return da < db
		}
		return a < b
	})
}

func insertionSort(s []NodeID) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
