// Package timeseries transfers the data-driven VQI paradigm to time-series
// (data-series) querying, the tutorial's "Beyond Graphs" future direction
// (Section 2.5): sketch-based query interfaces let users draw a shape to
// search for, but finding *which* shapes are worth sketching in a large
// series collection is itself time-consuming — so, exactly as a Pattern
// Panel exposes canned subgraphs, a data-driven sketch interface should
// expose canned *motifs* mined from the data.
//
// The pipeline mirrors the graph side:
//
//	discretize  — z-normalize windows and encode them as SAX words
//	mine        — count word frequencies across the collection (coverage)
//	select      — greedily pick a motif set balancing coverage, shape
//	              diversity, and sketch complexity (the cognitive-load
//	              analogue: direction changes in the drawn shape)
//	match       — sliding-window normalized-distance search for a sketch
package timeseries

import (
	"fmt"
	"math"
	"sort"
)

// Series is one time series.
type Series struct {
	Name   string
	Values []float64
}

// Collection is a set of series — the "graph repository" analogue.
type Collection struct {
	Series []Series
}

// Add appends a series.
func (c *Collection) Add(name string, values []float64) {
	c.Series = append(c.Series, Series{Name: name, Values: values})
}

// ZNormalize returns (x - mean) / std of the slice; a constant slice maps
// to all zeros.
func ZNormalize(x []float64) []float64 {
	out := make([]float64, len(x))
	if len(x) == 0 {
		return out
	}
	mean := 0.0
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	variance := 0.0
	for _, v := range x {
		variance += (v - mean) * (v - mean)
	}
	std := math.Sqrt(variance / float64(len(x)))
	if std < 1e-12 {
		return out
	}
	for i, v := range x {
		out[i] = (v - mean) / std
	}
	return out
}

// PAA reduces x to segments piecewise-aggregate means.
func PAA(x []float64, segments int) []float64 {
	if segments <= 0 || len(x) == 0 {
		return nil
	}
	if segments > len(x) {
		segments = len(x)
	}
	out := make([]float64, segments)
	for s := 0; s < segments; s++ {
		lo := s * len(x) / segments
		hi := (s + 1) * len(x) / segments
		sum := 0.0
		for i := lo; i < hi; i++ {
			sum += x[i]
		}
		out[s] = sum / float64(hi-lo)
	}
	return out
}

// saxBreakpoints for alphabet sizes 3-6 (standard Gaussian equiprobable
// cut points).
var saxBreakpoints = map[int][]float64{
	3: {-0.43, 0.43},
	4: {-0.67, 0, 0.67},
	5: {-0.84, -0.25, 0.25, 0.84},
	6: {-0.97, -0.43, 0, 0.43, 0.97},
}

// SAX encodes a z-normalized, PAA-reduced window as a word over an
// alphabet of the given size (3-6).
func SAX(x []float64, segments, alphabet int) (string, error) {
	bps, ok := saxBreakpoints[alphabet]
	if !ok {
		return "", fmt.Errorf("timeseries: unsupported alphabet size %d (3-6)", alphabet)
	}
	paa := PAA(ZNormalize(x), segments)
	word := make([]byte, len(paa))
	for i, v := range paa {
		letter := 0
		for _, bp := range bps {
			if v > bp {
				letter++
			}
		}
		word[i] = byte('a' + letter)
	}
	return string(word), nil
}

// Motif is a canned sketch: a representative shape mined from the
// collection, the analogue of a canned pattern.
type Motif struct {
	Word string // SAX word
	// Shape is the mean z-normalized window of all occurrences, the curve
	// the Sketch Panel displays.
	Shape []float64
	// Count is the number of windows encoding to Word.
	Count int
	// SeriesCoverage is the fraction of collection series containing the
	// motif.
	SeriesCoverage float64
}

// Complexity is the sketch-complexity (cognitive load analogue) of a
// motif: the number of direction changes in its shape, normalized by
// length. Flat or monotone shapes are easy to sketch and recognize;
// oscillating ones are not.
func (m *Motif) Complexity() float64 {
	if len(m.Shape) < 3 {
		return 0
	}
	changes := 0
	for i := 2; i < len(m.Shape); i++ {
		d1 := m.Shape[i-1] - m.Shape[i-2]
		d2 := m.Shape[i] - m.Shape[i-1]
		if d1*d2 < 0 {
			changes++
		}
	}
	return float64(changes) / float64(len(m.Shape)-2)
}

// ShapeDistance is the Euclidean distance between two motif shapes
// (equal-length by construction), the diversity measure.
func ShapeDistance(a, b *Motif) float64 {
	n := len(a.Shape)
	if len(b.Shape) < n {
		n = len(b.Shape)
	}
	s := 0.0
	for i := 0; i < n; i++ {
		d := a.Shape[i] - b.Shape[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Config parameterizes motif mining and selection.
type Config struct {
	Window   int // sliding window length (0 = 32)
	Segments int // SAX word length (0 = 8)
	Alphabet int // SAX alphabet size (0 = 4)
	Budget   int // motifs to display (0 = 8)
	// Weights over coverage, diversity, complexity (zero = 1, 1, 0.3).
	WCoverage, WDiversity, WComplexity float64
}

func (c *Config) defaults() {
	if c.Window == 0 {
		c.Window = 32
	}
	if c.Segments == 0 {
		c.Segments = 8
	}
	if c.Alphabet == 0 {
		c.Alphabet = 4
	}
	if c.Budget == 0 {
		c.Budget = 8
	}
	if c.WCoverage == 0 && c.WDiversity == 0 && c.WComplexity == 0 {
		c.WCoverage, c.WDiversity, c.WComplexity = 1, 1, 0.3
	}
}

// MineMotifs slides a window over every series, SAX-encodes each window,
// and aggregates occurrences per word. Returned motifs are sorted by
// descending count.
func MineMotifs(col *Collection, cfg Config) ([]*Motif, error) {
	cfg.defaults()
	if _, ok := saxBreakpoints[cfg.Alphabet]; !ok {
		return nil, fmt.Errorf("timeseries: unsupported alphabet size %d", cfg.Alphabet)
	}
	type agg struct {
		sum    []float64
		count  int
		series map[int]bool
	}
	byWord := make(map[string]*agg)
	for si, s := range col.Series {
		if len(s.Values) < cfg.Window {
			continue
		}
		// Stride of half a window keeps cost linear while still seeing
		// every region.
		stride := cfg.Window / 2
		if stride == 0 {
			stride = 1
		}
		for off := 0; off+cfg.Window <= len(s.Values); off += stride {
			win := s.Values[off : off+cfg.Window]
			word, err := SAX(win, cfg.Segments, cfg.Alphabet)
			if err != nil {
				return nil, err
			}
			a, ok := byWord[word]
			if !ok {
				a = &agg{sum: make([]float64, cfg.Window), series: make(map[int]bool)}
				byWord[word] = a
			}
			zn := ZNormalize(win)
			for i, v := range zn {
				a.sum[i] += v
			}
			a.count++
			a.series[si] = true
		}
	}
	motifs := make([]*Motif, 0, len(byWord))
	for word, a := range byWord {
		shape := make([]float64, len(a.sum))
		for i, v := range a.sum {
			shape[i] = v / float64(a.count)
		}
		motifs = append(motifs, &Motif{
			Word:           word,
			Shape:          shape,
			Count:          a.count,
			SeriesCoverage: float64(len(a.series)) / float64(len(col.Series)),
		})
	}
	sort.Slice(motifs, func(i, j int) bool {
		if motifs[i].Count != motifs[j].Count {
			return motifs[i].Count > motifs[j].Count
		}
		return motifs[i].Word < motifs[j].Word
	})
	return motifs, nil
}

// SelectSketches greedily picks the canned sketch set from mined motifs,
// maximizing weighted coverage gain plus shape diversity minus sketch
// complexity — the direct transfer of the canned-pattern score.
func SelectSketches(motifs []*Motif, cfg Config) []*Motif {
	cfg.defaults()
	pool := append([]*Motif(nil), motifs...)
	var selected []*Motif
	totalCount := 0
	for _, m := range pool {
		totalCount += m.Count
	}
	if totalCount == 0 {
		return nil
	}
	for len(selected) < cfg.Budget && len(pool) > 0 {
		bestI := -1
		bestScore := math.Inf(-1)
		for i, m := range pool {
			cov := float64(m.Count) / float64(totalCount)
			div := 1.0
			for _, s := range selected {
				// Normalize distance by window length so div ∈ [0,~1].
				d := ShapeDistance(m, s) / math.Sqrt(float64(len(m.Shape)))
				if d < div {
					div = d
				}
			}
			score := cfg.WCoverage*cov + cfg.WDiversity*div - cfg.WComplexity*m.Complexity()
			if score > bestScore {
				bestI, bestScore = i, score
			}
		}
		selected = append(selected, pool[bestI])
		pool = append(pool[:bestI], pool[bestI+1:]...)
	}
	return selected
}

// Match is one sketch-query hit.
type Match struct {
	Series string
	Offset int
	Dist   float64 // z-normalized Euclidean distance per point
}

// QuerySketch searches the collection for windows matching the sketched
// shape within the distance threshold (per-point normalized Euclidean).
// The sketch may be any length ≥ 2; windows of the same length are
// compared after z-normalization, so amplitude and offset don't matter —
// only shape, which is the semantics sketch interfaces implement.
func QuerySketch(col *Collection, sketch []float64, threshold float64, limit int) []Match {
	if len(sketch) < 2 {
		return nil
	}
	zq := ZNormalize(sketch)
	var out []Match
	for _, s := range col.Series {
		for off := 0; off+len(zq) <= len(s.Values); off++ {
			zw := ZNormalize(s.Values[off : off+len(zq)])
			sum := 0.0
			for i := range zq {
				d := zq[i] - zw[i]
				sum += d * d
			}
			dist := math.Sqrt(sum / float64(len(zq)))
			if dist <= threshold {
				out = append(out, Match{Series: s.Name, Offset: off, Dist: dist})
				if limit > 0 && len(out) >= limit {
					return out
				}
			}
		}
	}
	return out
}

// SketchPanel is the time-series analogue of the VQI Pattern Panel.
type SketchPanel struct {
	Window   int      `json:"window"`
	Sketches []*Motif `json:"sketches"`
}

// BuildSketchPanel mines and selects in one step — the data-driven
// construction entry point.
func BuildSketchPanel(col *Collection, cfg Config) (*SketchPanel, error) {
	cfg.defaults()
	motifs, err := MineMotifs(col, cfg)
	if err != nil {
		return nil, err
	}
	return &SketchPanel{Window: cfg.Window, Sketches: SelectSketches(motifs, cfg)}, nil
}
