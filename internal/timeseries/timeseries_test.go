package timeseries

import (
	"math"
	"math/rand"
	"testing"
)

func sineSeries(n int, period float64, phase float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(2*math.Pi*float64(i)/period + phase)
	}
	return out
}

func rampSeries(n int, slope float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = slope * float64(i)
	}
	return out
}

func testCollection() *Collection {
	col := &Collection{}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		col.Add("sine", sineSeries(256, 32, float64(i)))
	}
	for i := 0; i < 10; i++ {
		ramp := rampSeries(256, 1)
		for j := range ramp {
			ramp[j] += rng.Float64() * 0.01
		}
		col.Add("ramp", ramp)
	}
	return col
}

func TestZNormalize(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	z := ZNormalize(x)
	mean, sq := 0.0, 0.0
	for _, v := range z {
		mean += v
	}
	mean /= float64(len(z))
	for _, v := range z {
		sq += (v - mean) * (v - mean)
	}
	std := math.Sqrt(sq / float64(len(z)))
	if math.Abs(mean) > 1e-9 || math.Abs(std-1) > 1e-9 {
		t.Fatalf("z-normalized mean=%v std=%v", mean, std)
	}
	// Constant series → zeros, no NaN.
	for _, v := range ZNormalize([]float64{3, 3, 3}) {
		if v != 0 {
			t.Fatal("constant series must normalize to zeros")
		}
	}
	if len(ZNormalize(nil)) != 0 {
		t.Fatal("empty input")
	}
}

func TestPAA(t *testing.T) {
	x := []float64{1, 1, 2, 2, 3, 3}
	got := PAA(x, 3)
	want := []float64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PAA = %v", got)
		}
	}
	if len(PAA(x, 10)) != 6 {
		t.Fatal("segments clamp to length")
	}
	if PAA(nil, 3) != nil || PAA(x, 0) != nil {
		t.Fatal("degenerate PAA")
	}
}

func TestSAX(t *testing.T) {
	// A rising ramp must produce a non-decreasing word.
	word, err := SAX(rampSeries(64, 1), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(word) != 8 {
		t.Fatalf("word = %q", word)
	}
	for i := 1; i < len(word); i++ {
		if word[i] < word[i-1] {
			t.Fatalf("ramp word not monotone: %q", word)
		}
	}
	if word[0] != 'a' || word[len(word)-1] != 'd' {
		t.Fatalf("ramp word endpoints: %q", word)
	}
	// Shape-invariance: scaling/offsetting doesn't change the word.
	scaled := rampSeries(64, 5)
	for i := range scaled {
		scaled[i] += 100
	}
	word2, _ := SAX(scaled, 8, 4)
	if word2 != word {
		t.Fatalf("SAX not shape-invariant: %q vs %q", word, word2)
	}
	if _, err := SAX(rampSeries(64, 1), 8, 99); err == nil {
		t.Fatal("bad alphabet accepted")
	}
}

func TestMineMotifs(t *testing.T) {
	col := testCollection()
	motifs, err := MineMotifs(col, Config{Window: 32, Segments: 8, Alphabet: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(motifs) == 0 {
		t.Fatal("no motifs")
	}
	// Sorted by count descending.
	for i := 1; i < len(motifs); i++ {
		if motifs[i].Count > motifs[i-1].Count {
			t.Fatal("motifs not sorted")
		}
	}
	// The ramp motif (all series identical up to noise) must have very
	// high coverage: its word appears in all 10 ramp series.
	found := false
	for _, m := range motifs {
		if m.SeriesCoverage >= 0.5 {
			found = true
		}
		if len(m.Shape) != 32 {
			t.Fatal("shape length wrong")
		}
	}
	if !found {
		t.Fatal("no high-coverage motif in a highly regular collection")
	}
}

func TestComplexityOrdering(t *testing.T) {
	ramp := &Motif{Shape: ZNormalize(rampSeries(32, 1))}
	sine := &Motif{Shape: ZNormalize(sineSeries(32, 8, 0))} // 4 periods → many bends
	if ramp.Complexity() >= sine.Complexity() {
		t.Fatalf("ramp complexity %v must be below oscillating %v",
			ramp.Complexity(), sine.Complexity())
	}
	if (&Motif{Shape: []float64{1, 2}}).Complexity() != 0 {
		t.Fatal("short shape complexity must be 0")
	}
}

func TestSelectSketches(t *testing.T) {
	col := testCollection()
	cfg := Config{Window: 32, Segments: 8, Alphabet: 4, Budget: 4}
	motifs, err := MineMotifs(col, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sel := SelectSketches(motifs, cfg)
	if len(sel) == 0 || len(sel) > 4 {
		t.Fatalf("selected %d", len(sel))
	}
	// No duplicate words.
	seen := map[string]bool{}
	for _, m := range sel {
		if seen[m.Word] {
			t.Fatal("duplicate sketch")
		}
		seen[m.Word] = true
	}
	if SelectSketches(nil, cfg) != nil {
		t.Fatal("empty motif list must select nothing")
	}
}

func TestQuerySketch(t *testing.T) {
	col := testCollection()
	// Sketch a rising line: must match ramp series.
	sketch := rampSeries(32, 2)
	matches := QuerySketch(col, sketch, 0.2, 0)
	if len(matches) == 0 {
		t.Fatal("rising sketch must match ramps")
	}
	rampHits := 0
	for _, m := range matches {
		if m.Series == "ramp" {
			rampHits++
		}
		if m.Dist > 0.2 {
			t.Fatal("threshold violated")
		}
	}
	if rampHits == 0 {
		t.Fatal("no ramp hits")
	}
	// Limit respected.
	if got := QuerySketch(col, sketch, 0.5, 3); len(got) != 3 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	// Degenerate sketches.
	if QuerySketch(col, []float64{1}, 0.5, 0) != nil {
		t.Fatal("1-point sketch must match nothing")
	}
}

func TestBuildSketchPanel(t *testing.T) {
	col := testCollection()
	panel, err := BuildSketchPanel(col, Config{Budget: 5})
	if err != nil {
		t.Fatal(err)
	}
	if panel.Window != 32 {
		t.Fatalf("window = %d", panel.Window)
	}
	if len(panel.Sketches) == 0 || len(panel.Sketches) > 5 {
		t.Fatalf("sketches = %d", len(panel.Sketches))
	}
	// Data-driven property: every displayed sketch matches the data it
	// was mined from.
	for _, m := range panel.Sketches {
		if len(QuerySketch(col, m.Shape, 0.6, 1)) == 0 {
			t.Fatalf("sketch %q does not match its own collection", m.Word)
		}
	}
	if _, err := BuildSketchPanel(col, Config{Alphabet: 17}); err == nil {
		t.Fatal("bad config accepted")
	}
}
