package truss

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

// Property tests for the decomposition's structural invariants.

// TestPropertyTrussnessBounds: trussness is always in [2, maxPossible],
// and an edge's trussness never exceeds its triangle count + 2.
func TestPropertyTrussnessBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(12)
		g := graph.New("q")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		tr := Decompose(g)
		for id, k := range tr {
			if k < 2 {
				return false
			}
			// Triangle count of the edge in the full graph upper-bounds
			// support, hence trussness ≤ support+2.
			e := g.Edge(id)
			tris := 0
			for w := 0; w < n; w++ {
				if w != e.U && w != e.V && g.HasEdge(e.U, w) && g.HasEdge(e.V, w) {
					tris++
				}
			}
			if k > tris+2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyKTrussIsSubgraphOfK1Truss: the edge set of the (k+1)-truss
// is contained in the k-truss for every k.
func TestPropertyTrussNesting(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		g := graph.New("q")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		tr := Decompose(g)
		// Nesting is implied by trussness being well-defined: edges with
		// trussness ≥ k+1 are a subset of those with trussness ≥ k. Check
		// the k-truss property directly: within the subgraph of edges of
		// trussness ≥ k, every edge has ≥ k-2 triangles.
		max := 0
		for _, k := range tr {
			if k > max {
				max = k
			}
		}
		for k := 3; k <= max; k++ {
			var keep []graph.EdgeID
			for id, kk := range tr {
				if kk >= k {
					keep = append(keep, id)
				}
			}
			sub, _ := g.SubgraphFromEdges(keep)
			for _, e := range sub.Edges() {
				tris := 0
				for w := 0; w < sub.NumNodes(); w++ {
					if w != e.U && w != e.V && sub.HasEdge(e.U, w) && sub.HasEdge(e.V, w) {
						tris++
					}
				}
				if tris < k-2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAddingEdgesNeverLowersMaxTrussness: supersets of edges can
// only sustain denser trusses.
func TestPropertyEdgeAdditionMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(8)
		g := graph.New("q")
		g.AddNodes(n, "A")
		var missing [][2]int
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(i, j, "-")
				} else {
					missing = append(missing, [2]int{i, j})
				}
			}
		}
		if g.NumEdges() == 0 || len(missing) == 0 {
			return true
		}
		before := MaxTrussness(g)
		add := missing[rng.Intn(len(missing))]
		g.MustAddEdge(add[0], add[1], "-")
		return MaxTrussness(g) >= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
