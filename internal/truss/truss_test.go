package truss

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func clique(n int) *graph.Graph {
	g := graph.New("k")
	g.AddNodes(n, "A")
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.MustAddEdge(i, j, "-")
		}
	}
	return g
}

func path(n int) *graph.Graph {
	g := graph.New("p")
	g.AddNodes(n, "A")
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, "-")
	}
	return g
}

// bruteTrussness computes edge trussness by direct iterative peeling per k.
func bruteTrussness(g *graph.Graph) []int {
	m := g.NumEdges()
	tr := make([]int, m)
	for i := range tr {
		tr[i] = 2
	}
	for k := 3; ; k++ {
		// Compute the k-truss: repeatedly delete edges with < k-2
		// triangles among alive edges.
		alive := make([]bool, m)
		for i := range alive {
			alive[i] = tr[i] >= k-1 // edges that survived the previous level
		}
		for {
			changed := false
			for id := 0; id < m; id++ {
				if !alive[id] {
					continue
				}
				e := g.Edge(id)
				tris := 0
				for w := 0; w < g.NumNodes(); w++ {
					if w == e.U || w == e.V {
						continue
					}
					e1, ok1 := g.EdgeBetween(e.U, graph.NodeID(w))
					e2, ok2 := g.EdgeBetween(e.V, graph.NodeID(w))
					if ok1 && ok2 && alive[e1] && alive[e2] {
						tris++
					}
				}
				if tris < k-2 {
					alive[id] = false
					changed = true
				}
			}
			if !changed {
				break
			}
		}
		any := false
		for id := 0; id < m; id++ {
			if alive[id] {
				tr[id] = k
				any = true
			}
		}
		if !any {
			return tr
		}
	}
}

func TestDecomposeKnown(t *testing.T) {
	// A clique K5: every edge has trussness 5.
	for _, tr := range Decompose(clique(5)) {
		if tr != 5 {
			t.Fatalf("K5 trussness = %d, want 5", tr)
		}
	}
	// A path: no triangles, all trussness 2.
	for _, tr := range Decompose(path(6)) {
		if tr != 2 {
			t.Fatalf("path trussness = %d, want 2", tr)
		}
	}
	// Empty graph.
	if Decompose(graph.New("e")) != nil {
		t.Fatal("empty decomposition must be nil")
	}
}

func TestDecomposeTriangleWithTail(t *testing.T) {
	g := graph.New("t")
	g.AddNodes(4, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	g.MustAddEdge(0, 2, "-")
	tail := g.MustAddEdge(2, 3, "-")
	tr := Decompose(g)
	for id, k := range tr {
		want := 3
		if id == tail {
			want = 2
		}
		if k != want {
			t.Fatalf("edge %d trussness = %d, want %d", id, k, want)
		}
	}
	if MaxTrussness(g) != 3 {
		t.Fatalf("MaxTrussness = %d", MaxTrussness(g))
	}
}

func TestDecomposeMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(10)
		g := graph.New("r")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		if g.NumEdges() == 0 {
			continue
		}
		got := Decompose(g)
		want := bruteTrussness(g)
		for id := range got {
			if got[id] != want[id] {
				t.Fatalf("trial %d edge %d: trussness %d, brute %d\n%s", trial, id, got[id], want[id], g.Dump())
			}
		}
	}
}

func TestDecomposeWorkerCountInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 5; trial++ {
		n := 30 + rng.Intn(40)
		g := graph.New("w")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.15 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		want := DecomposeN(g, 1)
		for _, workers := range []int{0, 2, 8} {
			got := DecomposeN(g, workers)
			for id := range got {
				if got[id] != want[id] {
					t.Fatalf("trial %d workers=%d edge %d: %d != %d", trial, workers, id, got[id], want[id])
				}
			}
		}
	}
}

func TestSplit(t *testing.T) {
	// Triangle 0-1-2 with a tail 2-3-4.
	g := graph.New("t")
	g.AddNodes(5, "A")
	g.MustAddEdge(0, 1, "-")
	g.MustAddEdge(1, 2, "-")
	g.MustAddEdge(0, 2, "-")
	g.MustAddEdge(2, 3, "-")
	g.MustAddEdge(3, 4, "-")
	gT, gO, tNodes, oNodes := Split(g, 3)
	if gT.NumEdges() != 3 || gT.NumNodes() != 3 {
		t.Fatalf("G_T = %s", gT)
	}
	if gO.NumEdges() != 2 || gO.NumNodes() != 3 {
		t.Fatalf("G_O = %s", gO)
	}
	// Node maps point back into g.
	for i := 0; i < gT.NumNodes(); i++ {
		if g.NodeLabel(tNodes[i]) != gT.NodeLabel(i) {
			t.Fatal("G_T node map broken")
		}
	}
	for i := 0; i < gO.NumNodes(); i++ {
		if g.NodeLabel(oNodes[i]) != gO.NodeLabel(i) {
			t.Fatal("G_O node map broken")
		}
	}
	// Edges partition: counts add up.
	if gT.NumEdges()+gO.NumEdges() != g.NumEdges() {
		t.Fatal("split does not partition edges")
	}
}

func TestComputeStats(t *testing.T) {
	g := clique(4)
	tail := g.AddNode("A")
	g.MustAddEdge(0, tail, "-")
	s := ComputeStats(g)
	if s.Edges != 7 || s.TrussEdges != 6 || s.ObliviousEdge != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MaxTrussness != 4 || s.Histogram[4] != 6 || s.Histogram[2] != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestDecomposeLargeRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("large graph")
	}
	rng := rand.New(rand.NewSource(9))
	n := 3000
	g := graph.New("big")
	g.AddNodes(n, "A")
	// Preferential-attachment-ish: triangles guaranteed by wiring each new
	// node to two random adjacent prior nodes.
	for v := 2; v < n; v++ {
		a := rng.Intn(v)
		b := (a + 1 + rng.Intn(v-1)) % v
		if !g.HasEdge(v, a) {
			g.MustAddEdge(v, a, "-")
		}
		if !g.HasEdge(v, b) {
			g.MustAddEdge(v, b, "-")
		}
		if !g.HasEdge(a, b) && rng.Float64() < 0.5 {
			g.MustAddEdge(a, b, "-")
		}
	}
	tr := Decompose(g)
	if len(tr) != g.NumEdges() {
		t.Fatal("wrong length")
	}
	for _, k := range tr {
		if k < 2 {
			t.Fatalf("trussness %d < 2", k)
		}
	}
}

func BenchmarkDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 2000
	g := graph.New("b")
	g.AddNodes(n, "A")
	for v := 2; v < n; v++ {
		a := rng.Intn(v)
		bb := rng.Intn(v)
		if a != bb {
			if !g.HasEdge(v, a) {
				g.MustAddEdge(v, a, "-")
			}
			if !g.HasEdge(v, bb) {
				g.MustAddEdge(v, bb, "-")
			}
			if !g.HasEdge(a, bb) {
				g.MustAddEdge(a, bb, "-")
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decompose(g)
	}
}
