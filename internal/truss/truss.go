// Package truss implements k-truss decomposition of undirected graphs.
//
// The k-truss of a graph is the maximal subgraph in which every edge is
// supported by at least k-2 triangles within the subgraph. The trussness of
// an edge is the largest k for which the edge belongs to the k-truss.
//
// TATTOO uses truss decomposition to split a large network into a dense
// "truss-infested" region G_T (edges of trussness ≥ 3, i.e. edges that
// participate in triangles of the 3-truss) and a sparse "truss-oblivious"
// region G_O (everything else). Triangle-like candidate patterns are mined
// from G_T, chain/star/tree-like ones from G_O.
//
// The decomposition is the standard support-peeling algorithm with a bucket
// queue, O(m^{1.5}) time, which handles the multi-hundred-thousand-edge
// networks in the experiments comfortably.
package truss

import (
	"repro/internal/graph"
)

// Decompose returns the trussness of every edge of g, indexed by EdgeID.
// Edges in no triangle have trussness 2.
func Decompose(g *graph.Graph) []int {
	m := g.NumEdges()
	if m == 0 {
		return nil
	}
	// adj[v] maps neighbor -> edge id for alive edges; rebuilt locally so
	// peeling can delete edges without mutating g.
	n := g.NumNodes()
	adj := make([]map[graph.NodeID]graph.EdgeID, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[graph.NodeID]graph.EdgeID, g.Degree(v))
	}
	for id, e := range g.Edges() {
		adj[e.U][e.V] = graph.EdgeID(id)
		adj[e.V][e.U] = graph.EdgeID(id)
	}

	// Initial support: number of triangles containing each edge.
	support := make([]int, m)
	maxSup := 0
	for id := 0; id < m; id++ {
		e := g.Edge(id)
		support[id] = countCommon(adj, e.U, e.V)
		if support[id] > maxSup {
			maxSup = support[id]
		}
	}

	// Bucket queue keyed by current support.
	buckets := make([][]graph.EdgeID, maxSup+1)
	for id := 0; id < m; id++ {
		buckets[support[id]] = append(buckets[support[id]], id)
	}
	trussness := make([]int, m)
	removed := make([]bool, m)
	processed := 0
	k := 2
	cur := 0
	for processed < m {
		// Find the lowest non-empty bucket at or below the current level;
		// supports only decrease, so stale entries are skipped lazily.
		if cur > maxSup {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		id := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[id] || support[id] != cur {
			continue // stale entry
		}
		if support[id]+2 > k {
			k = support[id] + 2
		}
		trussness[id] = k
		removed[id] = true
		processed++
		e := g.Edge(id)
		u, v := e.U, e.V
		delete(adj[u], v)
		delete(adj[v], u)
		// Every triangle (u,v,w) loses this edge; decrement the supports
		// of (u,w) and (v,w).
		small, big := u, v
		if len(adj[small]) > len(adj[big]) {
			small, big = big, small
		}
		for w := range adj[small] {
			otherID, ok := adj[big][w]
			if !ok {
				continue
			}
			sideID := adj[small][w]
			for _, dec := range []graph.EdgeID{otherID, sideID} {
				if !removed[dec] && support[dec] > 0 {
					support[dec]--
					buckets[support[dec]] = append(buckets[support[dec]], dec)
					if support[dec] < cur {
						cur = support[dec]
					}
				}
			}
		}
	}
	return trussness
}

// countCommon returns the number of common alive neighbors of u and v.
func countCommon(adj []map[graph.NodeID]graph.EdgeID, u, v graph.NodeID) int {
	if len(adj[u]) > len(adj[v]) {
		u, v = v, u
	}
	c := 0
	for w := range adj[u] {
		if _, ok := adj[v][w]; ok {
			c++
		}
	}
	return c
}

// MaxTrussness returns the maximum edge trussness of g, or 0 for an
// edgeless graph.
func MaxTrussness(g *graph.Graph) int {
	max := 0
	for _, t := range Decompose(g) {
		if t > max {
			max = t
		}
	}
	return max
}

// Split partitions g into the truss-infested region G_T (edges with
// trussness ≥ k) and the truss-oblivious region G_O (the remaining edges),
// as standalone graphs. It also returns the node maps from each region's
// node IDs back to g's node IDs. Nodes incident to edges of both regions
// appear in both. TATTOO uses k = 3.
func Split(g *graph.Graph, k int) (gT, gO *graph.Graph, gtNodes, goNodes []graph.NodeID) {
	trussness := Decompose(g)
	var tEdges, oEdges []graph.EdgeID
	for id := range trussness {
		if trussness[id] >= k {
			tEdges = append(tEdges, id)
		} else {
			oEdges = append(oEdges, id)
		}
	}
	gT, gtNodes = g.SubgraphFromEdges(tEdges)
	gT.SetName(g.Name() + "#trussy")
	gO, goNodes = g.SubgraphFromEdges(oEdges)
	gO.SetName(g.Name() + "#oblivious")
	return gT, gO, gtNodes, goNodes
}

// Stats summarizes a decomposition for reporting (experiment E6).
type Stats struct {
	Edges         int
	TrussEdges    int // trussness ≥ 3
	ObliviousEdge int // trussness 2
	MaxTrussness  int
	Histogram     map[int]int // trussness -> edge count
}

// ComputeStats runs the decomposition and returns summary statistics.
func ComputeStats(g *graph.Graph) Stats {
	tr := Decompose(g)
	s := Stats{Edges: len(tr), Histogram: make(map[int]int)}
	for _, t := range tr {
		s.Histogram[t]++
		if t >= 3 {
			s.TrussEdges++
		} else {
			s.ObliviousEdge++
		}
		if t > s.MaxTrussness {
			s.MaxTrussness = t
		}
	}
	return s
}
