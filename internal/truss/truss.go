// Package truss implements k-truss decomposition of undirected graphs.
//
// The k-truss of a graph is the maximal subgraph in which every edge is
// supported by at least k-2 triangles within the subgraph. The trussness of
// an edge is the largest k for which the edge belongs to the k-truss.
//
// TATTOO uses truss decomposition to split a large network into a dense
// "truss-infested" region G_T (edges of trussness ≥ 3, i.e. edges that
// participate in triangles of the 3-truss) and a sparse "truss-oblivious"
// region G_O (everything else). Triangle-like candidate patterns are mined
// from G_T, chain/star/tree-like ones from G_O.
//
// The decomposition is the standard support-peeling algorithm with a bucket
// queue, O(m^{1.5}) time, which handles the multi-hundred-thousand-edge
// networks in the experiments comfortably.
package truss

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/par"
)

// halfEdge is one directed half of an undirected edge in the sorted
// adjacency representation.
type halfEdge struct {
	nbr graph.NodeID
	id  graph.EdgeID
}

// Decompose returns the trussness of every edge of g, indexed by EdgeID.
// Edges in no triangle have trussness 2. Equivalent to DecomposeN with
// workers = GOMAXPROCS.
func Decompose(g *graph.Graph) []int {
	return DecomposeN(g, 0)
}

// DecomposeN is Decompose with an explicit worker count for the initial
// support pass. Adjacency is kept as neighbor-sorted slices and common
// neighbors are found by two-pointer intersection — allocation-free, unlike
// the map-based variant this replaces, whose per-edge map probing dominated
// Decompose allocations. Edge removal during peeling is a flag flip; the
// intersection skips dead half-edges. The (sequential) peeling result is
// identical at any worker count: initial supports are exact integers
// written slot-indexed.
func DecomposeN(g *graph.Graph, workers int) []int {
	m := g.NumEdges()
	if m == 0 {
		return nil
	}
	// adj[v] lists v's half-edges sorted by neighbor id; removal only flips
	// removed[id], so the build is read-only on g and shared by all workers.
	n := g.NumNodes()
	adj := make([][]halfEdge, n)
	for v := 0; v < n; v++ {
		adj[v] = make([]halfEdge, 0, g.Degree(v))
	}
	for id := 0; id < m; id++ {
		e := g.Edge(id)
		adj[e.U] = append(adj[e.U], halfEdge{e.V, graph.EdgeID(id)})
		adj[e.V] = append(adj[e.V], halfEdge{e.U, graph.EdgeID(id)})
	}
	par.ForEachChunk(n, workers, func(lo, hi int) {
		for v := lo; v < hi; v++ {
			a := adj[v]
			sort.Slice(a, func(i, j int) bool { return a[i].nbr < a[j].nbr })
		}
	})
	removed := make([]bool, m)

	// Initial support: number of triangles containing each edge, counted
	// concurrently in contiguous chunks (pure reads of the shared sorted
	// adjacency).
	support := make([]int, m)
	par.ForEachChunk(m, workers, func(lo, hi int) {
		for id := lo; id < hi; id++ {
			e := g.Edge(id)
			support[id] = countCommon(adj, removed, e.U, e.V)
		}
	})
	maxSup := 0
	for id := 0; id < m; id++ {
		if support[id] > maxSup {
			maxSup = support[id]
		}
	}

	// Bucket queue keyed by current support.
	buckets := make([][]graph.EdgeID, maxSup+1)
	for id := 0; id < m; id++ {
		buckets[support[id]] = append(buckets[support[id]], id)
	}
	trussness := make([]int, m)
	processed := 0
	k := 2
	cur := 0
	// dec lowers one side edge's support during peeling; hoisted out of the
	// loop (with its triangle callback) so the peel allocates nothing.
	dec := func(d graph.EdgeID) {
		if support[d] > 0 {
			support[d]--
			buckets[support[d]] = append(buckets[support[d]], d)
			if support[d] < cur {
				cur = support[d]
			}
		}
	}
	onTriangle := func(uw, vw graph.EdgeID) {
		dec(vw)
		dec(uw)
	}
	for processed < m {
		// Find the lowest non-empty bucket at or below the current level;
		// supports only decrease, so stale entries are skipped lazily.
		if cur > maxSup {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		id := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[id] || support[id] != cur {
			continue // stale entry
		}
		if support[id]+2 > k {
			k = support[id] + 2
		}
		trussness[id] = k
		removed[id] = true
		processed++
		e := g.Edge(id)
		// Every triangle (u,v,w) loses this edge; decrement the supports
		// of (u,w) and (v,w). The intersection yields w only when both
		// side edges are still alive.
		forEachCommon(adj, removed, e.U, e.V, onTriangle)
	}
	return trussness
}

// countCommon returns the number of common neighbors of u and v reachable
// through alive edges, by two-pointer merge of the sorted adjacency slices.
func countCommon(adj [][]halfEdge, removed []bool, u, v graph.NodeID) int {
	c := 0
	forEachCommon(adj, removed, u, v, func(_, _ graph.EdgeID) { c++ })
	return c
}

// forEachCommon calls fn(uw, vw) for every common neighbor w of u and v
// whose edges (u,w) and (v,w) are both alive. Simple graphs keep each
// adjacency slice strictly increasing in neighbor id, so a single merge
// pass finds every match in O(deg(u)+deg(v)) with no allocation.
func forEachCommon(adj [][]halfEdge, removed []bool, u, v graph.NodeID, fn func(uw, vw graph.EdgeID)) {
	a, b := adj[u], adj[v]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].nbr < b[j].nbr:
			i++
		case a[i].nbr > b[j].nbr:
			j++
		default:
			if !removed[a[i].id] && !removed[b[j].id] {
				fn(a[i].id, b[j].id)
			}
			i++
			j++
		}
	}
}

// MaxTrussness returns the maximum edge trussness of g, or 0 for an
// edgeless graph.
func MaxTrussness(g *graph.Graph) int {
	max := 0
	for _, t := range Decompose(g) {
		if t > max {
			max = t
		}
	}
	return max
}

// Split partitions g into the truss-infested region G_T (edges with
// trussness ≥ k) and the truss-oblivious region G_O (the remaining edges),
// as standalone graphs. It also returns the node maps from each region's
// node IDs back to g's node IDs. Nodes incident to edges of both regions
// appear in both. TATTOO uses k = 3.
func Split(g *graph.Graph, k int) (gT, gO *graph.Graph, gtNodes, goNodes []graph.NodeID) {
	trussness := Decompose(g)
	var tEdges, oEdges []graph.EdgeID
	for id := range trussness {
		if trussness[id] >= k {
			tEdges = append(tEdges, id)
		} else {
			oEdges = append(oEdges, id)
		}
	}
	gT, gtNodes = g.SubgraphFromEdges(tEdges)
	gT.SetName(g.Name() + "#trussy")
	gO, goNodes = g.SubgraphFromEdges(oEdges)
	gO.SetName(g.Name() + "#oblivious")
	return gT, gO, gtNodes, goNodes
}

// Stats summarizes a decomposition for reporting (experiment E6).
type Stats struct {
	Edges         int
	TrussEdges    int // trussness ≥ 3
	ObliviousEdge int // trussness 2
	MaxTrussness  int
	Histogram     map[int]int // trussness -> edge count
}

// ComputeStats runs the decomposition and returns summary statistics.
func ComputeStats(g *graph.Graph) Stats {
	tr := Decompose(g)
	s := Stats{Edges: len(tr), Histogram: make(map[int]int)}
	for _, t := range tr {
		s.Histogram[t]++
		if t >= 3 {
			s.TrussEdges++
		} else {
			s.ObliviousEdge++
		}
		if t > s.MaxTrussness {
			s.MaxTrussness = t
		}
	}
	return s
}
