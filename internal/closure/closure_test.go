package closure

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
)

func chain(name string, labels ...string) *graph.Graph {
	g := graph.New(name)
	for _, l := range labels {
		g.AddNode(l)
	}
	for i := 0; i+1 < len(labels); i++ {
		g.MustAddEdge(i, i+1, "-")
	}
	return g
}

func TestMergeIdenticalGraphs(t *testing.T) {
	a := chain("a", "A", "B", "C")
	b := chain("b", "A", "B", "C")
	c := Merge([]*graph.Graph{a, b})
	if c.Members != 2 {
		t.Fatalf("members = %d", c.Members)
	}
	// Identical graphs align perfectly: summary keeps the same shape.
	if c.G.NumNodes() != 3 || c.G.NumEdges() != 2 {
		t.Fatalf("summary = %s, want 3 nodes / 2 edges", c.G)
	}
	for _, w := range c.NodeWeight {
		if w != 2 {
			t.Fatalf("node weights = %v, want all 2", c.NodeWeight)
		}
	}
	for e := range c.EdgeWeight {
		if c.EdgeWeight[e] != 2 {
			t.Fatalf("edge weights = %v", c.EdgeWeight)
		}
		if c.EdgeFrequency(e) != 1 {
			t.Fatalf("edge freq = %v", c.EdgeFrequency(e))
		}
	}
}

func TestMergeDisjointLabels(t *testing.T) {
	a := chain("a", "A", "A")
	b := chain("b", "X", "X")
	c := Merge([]*graph.Graph{a, b})
	// No label overlap: nothing merges.
	if c.G.NumNodes() != 4 || c.G.NumEdges() != 2 {
		t.Fatalf("summary = %s, want disjoint union", c.G)
	}
	for _, w := range c.NodeWeight {
		if w != 1 {
			t.Fatalf("weights = %v", c.NodeWeight)
		}
	}
}

func TestMergeOverlappingGraphs(t *testing.T) {
	// Both share the A-B edge; b adds a C branch.
	a := chain("a", "A", "B")
	b := chain("b", "A", "B", "C")
	c := Merge([]*graph.Graph{a, b})
	if c.Members != 2 {
		t.Fatal("members")
	}
	// A and B align; C is appended → 3 nodes, 2 edges.
	if c.G.NumNodes() != 3 || c.G.NumEdges() != 2 {
		t.Fatalf("summary = %s", c.G)
	}
	// The shared A-B edge has weight 2, the B-C edge weight 1.
	weights := map[int]int{}
	for e := range c.EdgeWeight {
		weights[c.EdgeWeight[e]]++
	}
	if weights[2] != 1 || weights[1] != 1 {
		t.Fatalf("edge weights = %v", c.EdgeWeight)
	}
}

func TestEveryMemberEdgeRepresented(t *testing.T) {
	// The closure property: total edge weight equals the total number of
	// member edges (every member edge maps somewhere).
	corpus := datagen.ChemicalCorpus(3, 10, datagen.ChemicalOptions{MinNodes: 6, MaxNodes: 16})
	var graphs []*graph.Graph
	totalEdges, totalNodes := 0, 0
	corpus.Each(func(_ int, g *graph.Graph) {
		graphs = append(graphs, g)
		totalEdges += g.NumEdges()
		totalNodes += g.NumNodes()
	})
	c := Merge(graphs)
	sumE := 0
	for _, w := range c.EdgeWeight {
		sumE += w
	}
	if sumE != totalEdges {
		t.Fatalf("edge weight sum = %d, member edges = %d", sumE, totalEdges)
	}
	sumN := 0
	for _, w := range c.NodeWeight {
		sumN += w
	}
	if sumN != totalNodes {
		t.Fatalf("node weight sum = %d, member nodes = %d", sumN, totalNodes)
	}
	// Compression: the summary should be far smaller than the disjoint
	// union (shared motifs align).
	if c.G.NumNodes() >= totalNodes {
		t.Fatalf("no compression: %d summary nodes vs %d member nodes", c.G.NumNodes(), totalNodes)
	}
}

func TestMajorityLabels(t *testing.T) {
	// Three graphs; the same aligned edge carries label "s" twice and "d"
	// once → majority "s".
	mk := func(name, el string) *graph.Graph {
		g := graph.New(name)
		g.AddNode("A")
		g.AddNode("B")
		g.MustAddEdge(0, 1, el)
		return g
	}
	c := Merge([]*graph.Graph{mk("a", "s"), mk("b", "d"), mk("c", "s")})
	if c.G.NumEdges() != 1 {
		t.Fatalf("summary = %s", c.G)
	}
	if c.G.EdgeLabel(0) != "s" {
		t.Fatalf("majority edge label = %q", c.G.EdgeLabel(0))
	}
}

func TestEmptyAndSingle(t *testing.T) {
	c := Merge(nil)
	if c.Members != 0 || c.G.NumNodes() != 0 {
		t.Fatal("empty merge must be empty")
	}
	if c.EdgeFrequency(0) != 0 {
		// Index 0 doesn't exist, but Members==0 short-circuits first.
		t.Fatal("empty CSG edge frequency must be 0")
	}
	single := Merge([]*graph.Graph{chain("a", "A", "B", "C")})
	if single.Members != 1 || single.G.NumNodes() != 3 {
		t.Fatalf("single merge = %s", single)
	}
}

func TestFoldAccumulates(t *testing.T) {
	c := Merge(nil)
	for i := 0; i < 5; i++ {
		c.Fold(chain("x", "A", "B"))
	}
	if c.Members != 5 || c.G.NumNodes() != 2 {
		t.Fatalf("fold result = %s", c)
	}
	if c.EdgeFrequency(0) != 1 {
		t.Fatalf("freq = %v", c.EdgeFrequency(0))
	}
}
