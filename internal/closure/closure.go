// Package closure builds cluster summary graphs (CSGs) by iterated
// approximate graph closure, CATAPULT's second stage.
//
// A closure graph integrates graphs of varying sizes into a single graph
// such that every vertex and edge of every member is represented (He &
// Singh's closure-tree construction). Exact closure requires optimal graph
// alignment, which is itself NP-hard; like the original system this package
// uses a greedy label/degree/neighborhood alignment, which preserves the
// property that matters downstream: motifs shared by many cluster members
// accumulate high weight in the summary, so weighted random walks gravitate
// toward representative substructures.
//
// Every CSG node and edge carries a weight — the number of member graphs
// mapped onto it — and a label histogram from which the majority label is
// exposed.
package closure

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// CSG is a cluster summary graph.
type CSG struct {
	// G is the summary structure. Node and edge labels are the current
	// majority labels over the merged members.
	G *graph.Graph
	// NodeWeight[i] is the number of member graphs with a node mapped to
	// summary node i; EdgeWeight likewise for edges.
	NodeWeight []int
	EdgeWeight []int
	// Members is the number of graphs merged into the summary.
	Members int

	nodeLabels []map[string]int
	edgeLabels []map[string]int
}

// Merge builds a CSG over the given graphs by folding them in one at a
// time. An empty input yields an empty summary.
func Merge(graphs []*graph.Graph) *CSG {
	c := &CSG{G: graph.New("csg")}
	for _, g := range graphs {
		c.Fold(g)
	}
	return c
}

// Fold merges one more graph into the summary.
func (c *CSG) Fold(g *graph.Graph) {
	mapping := c.align(g)
	// Ensure mapped/new nodes.
	for v := 0; v < g.NumNodes(); v++ {
		if mapping[v] < 0 {
			id := c.G.AddNode(g.NodeLabel(v))
			c.NodeWeight = append(c.NodeWeight, 0)
			c.nodeLabels = append(c.nodeLabels, make(map[string]int))
			mapping[v] = id
		}
		sv := mapping[v]
		c.NodeWeight[sv]++
		c.nodeLabels[sv][g.NodeLabel(v)]++
		c.G.SetNodeLabel(sv, majority(c.nodeLabels[sv]))
	}
	for ei := 0; ei < g.NumEdges(); ei++ {
		e := g.Edge(ei)
		su, sv := mapping[e.U], mapping[e.V]
		id, ok := c.G.EdgeBetween(su, sv)
		if !ok {
			id = c.G.MustAddEdge(su, sv, e.Label)
			c.EdgeWeight = append(c.EdgeWeight, 0)
			c.edgeLabels = append(c.edgeLabels, make(map[string]int))
		}
		c.EdgeWeight[id]++
		c.edgeLabels[id][e.Label]++
		c.G.SetEdgeLabel(id, majority(c.edgeLabels[id]))
	}
	c.Members++
}

// align greedily maps g's nodes onto distinct summary nodes, preferring
// equal labels, then similar degrees and overlapping neighbor label sets.
// Unmatchable nodes map to -1 (the caller appends them as new summary
// nodes). Matches below a minimal affinity are rejected so dissimilar
// regions don't collapse together.
func (c *CSG) align(g *graph.Graph) []graph.NodeID {
	n := g.NumNodes()
	mapping := make([]graph.NodeID, n)
	for i := range mapping {
		mapping[i] = -1
	}
	if c.G.NumNodes() == 0 {
		return mapping
	}
	type cand struct {
		gv    graph.NodeID
		sv    graph.NodeID
		score float64
	}
	// Summary-side neighbor label histograms are reused across every gv —
	// computing them per (gv, sv) pair made align quadratic in map builds.
	sumNbr := make([]map[string]int, c.G.NumNodes())
	for sv := range sumNbr {
		sumNbr[sv] = neighborLabels(c.G, sv)
	}
	var cands []cand
	for gv := 0; gv < n; gv++ {
		gl := g.NodeLabel(gv)
		gNbrLabels := neighborLabels(g, gv)
		for sv := 0; sv < c.G.NumNodes(); sv++ {
			if c.G.NodeLabel(sv) != gl {
				continue // label mismatch: never merge
			}
			score := 1.0
			// Degree affinity.
			dg, ds := g.Degree(gv), c.G.Degree(sv)
			diff := dg - ds
			if diff < 0 {
				diff = -diff
			}
			score += 1.0 / float64(1+diff)
			// Neighbor label overlap.
			score += overlap(gNbrLabels, sumNbr[sv])
			// Prefer heavy summary nodes: they represent common motifs.
			score += float64(c.NodeWeight[sv]) / float64(c.Members+1)
			cands = append(cands, cand{gv, sv, score})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		if cands[i].gv != cands[j].gv {
			return cands[i].gv < cands[j].gv
		}
		return cands[i].sv < cands[j].sv
	})
	usedS := make(map[graph.NodeID]bool)
	for _, cd := range cands {
		if mapping[cd.gv] >= 0 || usedS[cd.sv] {
			continue
		}
		mapping[cd.gv] = cd.sv
		usedS[cd.sv] = true
	}
	return mapping
}

func neighborLabels(g *graph.Graph, v graph.NodeID) map[string]int {
	m := make(map[string]int)
	g.VisitNeighbors(v, func(nbr graph.NodeID, _ graph.EdgeID) bool {
		m[g.NodeLabel(nbr)]++
		return true
	})
	return m
}

// overlap returns the multiset Jaccard overlap of two label histograms.
func overlap(a, b map[string]int) float64 {
	inter, union := 0, 0
	for l, ka := range a {
		kb := b[l]
		if ka < kb {
			inter += ka
		} else {
			inter += kb
		}
		if ka > kb {
			union += ka
		} else {
			union += kb
		}
	}
	for l, kb := range b {
		if _, seen := a[l]; !seen {
			union += kb
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func majority(m map[string]int) string {
	best, bestK := "", -1
	for l, k := range m {
		if k > bestK || (k == bestK && l < best) {
			best, bestK = l, k
		}
	}
	return best
}

// AppendDisjoint adds g to the summary as a disjoint component with all
// weights 1, skipping alignment entirely. It is the degenerate merge used
// by the modular pipeline's disjoint-union stage.
func (c *CSG) AppendDisjoint(g *graph.Graph) {
	offset := c.G.NumNodes()
	for v := 0; v < g.NumNodes(); v++ {
		label := g.NodeLabel(v)
		c.G.AddNode(label)
		c.NodeWeight = append(c.NodeWeight, 1)
		c.nodeLabels = append(c.nodeLabels, map[string]int{label: 1})
	}
	for ei := 0; ei < g.NumEdges(); ei++ {
		e := g.Edge(ei)
		c.G.MustAddEdge(offset+e.U, offset+e.V, e.Label)
		c.EdgeWeight = append(c.EdgeWeight, 1)
		c.edgeLabels = append(c.edgeLabels, map[string]int{e.Label: 1})
	}
	c.Members++
}

// String summarizes the CSG.
func (c *CSG) String() string {
	return fmt.Sprintf("csg(members=%d,n=%d,m=%d)", c.Members, c.G.NumNodes(), c.G.NumEdges())
}

// EdgeFrequency returns EdgeWeight[e] / Members: the fraction of member
// graphs containing edge e's aligned image. CATAPULT's random walks use
// this as the transition bias.
func (c *CSG) EdgeFrequency(e graph.EdgeID) float64 {
	if c.Members == 0 {
		return 0
	}
	return float64(c.EdgeWeight[e]) / float64(c.Members)
}
