package modular

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func corpus() *graph.Corpus {
	return datagen.ChemicalCorpus(3, 30, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
}

func budget() pattern.Budget {
	return pattern.Budget{Count: 5, MinSize: 4, MaxSize: 8}
}

func TestCatapultEquivalentPipeline(t *testing.T) {
	p := CatapultEquivalent(budget(), 1)
	res, err := p.Run(corpus())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}
	if res.Stages != [4]string{"fct-cosine", "k-medoids", "graph-closure", "weighted-walk+greedy"} {
		t.Fatalf("stages = %v", res.Stages)
	}
	if len(res.CSGs) != len(res.Clusters) {
		t.Fatal("CSG/cluster mismatch")
	}
	for _, pt := range res.Patterns {
		if pt.Size() < 4 || pt.Size() > 8 {
			t.Fatalf("pattern size %d outside budget", pt.Size())
		}
	}
}

func TestAllStageCombinationsRun(t *testing.T) {
	sims := []Similarity{FCTSimilarity{}, GraphletSimilarity{}, LabelSimilarity{}}
	clus := []Clusterer{KMedoidsClusterer{}, AgglomerativeClusterer{}, SingleCluster{}}
	mers := []Merger{ClosureMerger{}, UnionMerger{}}
	exts := []Extractor{WalkExtractor{Walks: 40}, HeaviestSubgraphExtractor{}}
	c := corpus()
	for _, s := range sims {
		for _, cl := range clus {
			for _, m := range mers {
				for _, e := range exts {
					p := Pipeline{Similarity: s, Clusterer: cl, Merger: m, Extractor: e,
						Budget: budget(), Seed: 2}
					res, err := p.Run(c)
					if err != nil {
						t.Fatalf("%s/%s/%s/%s: %v", s.Name(), cl.Name(), m.Name(), e.Name(), err)
					}
					if len(res.Patterns) > budget().Count {
						t.Fatalf("%v: budget exceeded", res.Stages)
					}
					for _, pt := range res.Patterns {
						if !pt.G.IsConnected() {
							t.Fatalf("%v: disconnected pattern", res.Stages)
						}
					}
				}
			}
		}
	}
}

func TestPipelineValidation(t *testing.T) {
	if _, err := (Pipeline{Budget: budget()}).Run(corpus()); err == nil {
		t.Fatal("missing stages accepted")
	}
	p := CatapultEquivalent(budget(), 1)
	if _, err := p.Run(graph.NewCorpus()); err == nil {
		t.Fatal("empty corpus accepted")
	}
	p.Budget = pattern.Budget{}
	if _, err := p.Run(corpus()); err == nil {
		t.Fatal("invalid budget accepted")
	}
}

func TestSimilarityMatrixProperties(t *testing.T) {
	c := corpus()
	for _, s := range []Similarity{FCTSimilarity{}, GraphletSimilarity{}, LabelSimilarity{}} {
		m, err := s.Matrix(c)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(m) != c.Len() {
			t.Fatalf("%s: matrix size %d", s.Name(), len(m))
		}
		for i := range m {
			if m[i][i] != 1 {
				t.Fatalf("%s: diagonal not 1", s.Name())
			}
			for j := range m {
				if m[i][j] != m[j][i] {
					t.Fatalf("%s: not symmetric", s.Name())
				}
				if m[i][j] < -1e-9 || m[i][j] > 1+1e-9 {
					t.Fatalf("%s: value %v out of range", s.Name(), m[i][j])
				}
			}
		}
	}
}

func TestSingleClusterGroupsEverything(t *testing.T) {
	m := [][]float64{{1, 0}, {0, 1}}
	groups, err := SingleCluster{}.Cluster(m, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 1 || len(groups[0]) != 2 {
		t.Fatalf("groups = %v", groups)
	}
	if _, err := (SingleCluster{}).Cluster(nil, 1, 0); err == nil {
		t.Fatal("empty matrix accepted")
	}
}

func TestUnionMergerNoCompression(t *testing.T) {
	g1 := graph.New("a")
	g1.AddNode("A")
	g1.AddNode("A")
	g1.MustAddEdge(0, 1, "-")
	g2 := graph.New("b")
	g2.AddNode("A")
	g2.AddNode("A")
	g2.MustAddEdge(0, 1, "-")
	csg := UnionMerger{}.Merge([]*graph.Graph{g1, g2})
	if csg.G.NumNodes() != 4 || csg.G.NumEdges() != 2 {
		t.Fatalf("union = %s", csg.G)
	}
	for e := 0; e < csg.G.NumEdges(); e++ {
		if csg.EdgeWeight[e] != 1 {
			t.Fatal("union weights must be 1")
		}
	}
	// Closure merger compresses the identical graphs instead.
	ccsg := ClosureMerger{}.Merge([]*graph.Graph{g1, g2})
	if ccsg.G.NumNodes() != 2 {
		t.Fatalf("closure = %s", ccsg.G)
	}
}

func TestHeaviestExtractorDeterministic(t *testing.T) {
	c := corpus()
	p := Pipeline{Similarity: LabelSimilarity{}, Clusterer: SingleCluster{},
		Merger: ClosureMerger{}, Extractor: HeaviestSubgraphExtractor{},
		Budget: budget(), Seed: 7}
	a, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatal("nondeterministic")
	}
	for i := range a.Patterns {
		if a.Patterns[i].Canon() != b.Patterns[i].Canon() {
			t.Fatal("nondeterministic pattern")
		}
	}
}
