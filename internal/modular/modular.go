// Package modular implements the highly modular architecture for the
// canned pattern selection problem proposed by Tzanikos et al. (DEXA 2021,
// as reviewed in the tutorial's Section 2.3).
//
// The selection problem is decomposed into four independent tasks, each
// behind an interface so that implementations can be swapped and optimized
// separately:
//
//	similarity  — score the pairwise similarity of the corpus graphs
//	clustering  — partition the corpus using those scores
//	merging     — fuse each cluster into one continuous graph
//	extraction  — pull canned patterns out of the continuous graphs
//
// The concrete implementations here reuse this repository's substrates
// (frequent-tree features, graphlet censuses, k-medoids/agglomerative
// clustering, graph closure, weighted random walks), so a Pipeline with the
// right choices reproduces CATAPULT exactly, while other choices give the
// cheaper or more accurate variants the modular paper argues for.
package modular

import (
	"fmt"
	"math/rand"

	"repro/internal/catapult"
	"repro/internal/closure"
	"repro/internal/cluster"
	"repro/internal/fct"
	"repro/internal/graph"
	"repro/internal/graphlet"
	"repro/internal/pattern"
)

// Similarity scores pairwise graph similarity in [0,1].
type Similarity interface {
	Name() string
	// Matrix returns the symmetric similarity matrix of the corpus.
	Matrix(c *graph.Corpus) ([][]float64, error)
}

// Clusterer partitions the corpus given a similarity matrix.
type Clusterer interface {
	Name() string
	// Cluster returns k groups of corpus positions.
	Cluster(sim [][]float64, k int, seed int64) ([][]int, error)
}

// Merger fuses one cluster's graphs into a continuous graph (a weighted
// summary).
type Merger interface {
	Name() string
	Merge(graphs []*graph.Graph) *closure.CSG
}

// Extractor pulls canned patterns from the continuous graphs.
type Extractor interface {
	Name() string
	Extract(csgs []*closure.CSG, corpus *graph.Corpus, b pattern.Budget, w pattern.Weights, seed int64) []*pattern.Pattern
}

// Pipeline composes the four stages.
type Pipeline struct {
	Similarity Similarity
	Clusterer  Clusterer
	Merger     Merger
	Extractor  Extractor
	// K is the number of clusters (0 = √N heuristic capped at 16).
	K int
	// Budget and Weights configure extraction.
	Budget  pattern.Budget
	Weights pattern.Weights
	// Seed drives all randomized stages.
	Seed int64
}

// Result reports the pipeline outcome.
type Result struct {
	Patterns []*pattern.Pattern
	Clusters [][]int
	CSGs     []*closure.CSG
	Stages   [4]string // names of the stage implementations used
}

// Run executes the pipeline over the corpus.
func (p Pipeline) Run(c *graph.Corpus) (*Result, error) {
	if c.Len() == 0 {
		return nil, fmt.Errorf("modular: empty corpus")
	}
	if p.Similarity == nil || p.Clusterer == nil || p.Merger == nil || p.Extractor == nil {
		return nil, fmt.Errorf("modular: all four stages must be configured")
	}
	if err := p.Budget.Validate(); err != nil {
		return nil, err
	}
	if p.Weights == (pattern.Weights{}) {
		p.Weights = pattern.DefaultWeights()
	}
	k := p.K
	if k == 0 {
		k = 1
		for k*k < c.Len() && k < 16 {
			k++
		}
	}
	sim, err := p.Similarity.Matrix(c)
	if err != nil {
		return nil, fmt.Errorf("modular: similarity: %v", err)
	}
	clusters, err := p.Clusterer.Cluster(sim, k, p.Seed)
	if err != nil {
		return nil, fmt.Errorf("modular: clustering: %v", err)
	}
	res := &Result{Clusters: clusters}
	for _, members := range clusters {
		var graphs []*graph.Graph
		for _, idx := range members {
			graphs = append(graphs, c.Graph(idx))
		}
		res.CSGs = append(res.CSGs, p.Merger.Merge(graphs))
	}
	res.Patterns = p.Extractor.Extract(res.CSGs, c, p.Budget, p.Weights, p.Seed)
	res.Stages = [4]string{p.Similarity.Name(), p.Clusterer.Name(), p.Merger.Name(), p.Extractor.Name()}
	return res, nil
}

// CatapultEquivalent returns the pipeline whose stage choices reproduce
// CATAPULT: frequent-tree cosine similarity, k-medoids, graph closure,
// weighted-random-walk extraction with greedy scored selection.
func CatapultEquivalent(b pattern.Budget, seed int64) Pipeline {
	return Pipeline{
		Similarity: FCTSimilarity{MaxEdges: 2, MinSupportFrac: 0.1},
		Clusterer:  KMedoidsClusterer{},
		Merger:     ClosureMerger{},
		Extractor:  WalkExtractor{Walks: 120},
		Budget:     b,
		Seed:       seed,
	}
}

// ---------------------------------------------------------------------------
// Similarity implementations
// ---------------------------------------------------------------------------

// FCTSimilarity embeds graphs as frequent-tree feature vectors and scores
// cosine similarity (CATAPULT's choice).
type FCTSimilarity struct {
	MaxEdges       int
	MinSupportFrac float64
}

// Name implements Similarity.
func (FCTSimilarity) Name() string { return "fct-cosine" }

// Matrix implements Similarity.
func (s FCTSimilarity) Matrix(c *graph.Corpus) ([][]float64, error) {
	maxEdges := s.MaxEdges
	if maxEdges == 0 {
		maxEdges = 2
	}
	frac := s.MinSupportFrac
	if frac == 0 {
		frac = 0.1
	}
	minSup := int(frac * float64(c.Len()))
	if minSup < 1 {
		minSup = 1
	}
	set, err := fct.Miner{MinSupport: minSup, MaxEdges: maxEdges}.Mine(c)
	if err != nil {
		return nil, err
	}
	vecs := make([][]float64, c.Len())
	c.Each(func(i int, g *graph.Graph) {
		vecs[i] = set.FeatureVector(g)
	})
	return cosineMatrix(vecs), nil
}

// GraphletSimilarity embeds graphs as graphlet count vectors — cheaper than
// tree mining and label-oblivious.
type GraphletSimilarity struct{}

// Name implements Similarity.
func (GraphletSimilarity) Name() string { return "graphlet-cosine" }

// Matrix implements Similarity.
func (GraphletSimilarity) Matrix(c *graph.Corpus) ([][]float64, error) {
	vecs := make([][]float64, c.Len())
	c.Each(func(i int, g *graph.Graph) {
		gl := graphlet.Count(g)
		v := make([]float64, len(gl))
		copy(v, gl[:])
		vecs[i] = v
	})
	return cosineMatrix(vecs), nil
}

// LabelSimilarity compares node-label histograms — the cheapest stage, apt
// when labels alone discriminate domains.
type LabelSimilarity struct{}

// Name implements Similarity.
func (LabelSimilarity) Name() string { return "label-histogram" }

// Matrix implements Similarity.
func (LabelSimilarity) Matrix(c *graph.Corpus) ([][]float64, error) {
	// Build a stable label universe.
	universe := map[string]int{}
	c.Each(func(_ int, g *graph.Graph) {
		for l := range g.NodeLabels() {
			if _, ok := universe[l]; !ok {
				universe[l] = len(universe)
			}
		}
	})
	vecs := make([][]float64, c.Len())
	c.Each(func(i int, g *graph.Graph) {
		v := make([]float64, len(universe))
		for l, k := range g.NodeLabels() {
			v[universe[l]] = float64(k)
		}
		vecs[i] = v
	})
	return cosineMatrix(vecs), nil
}

func cosineMatrix(vecs [][]float64) [][]float64 {
	n := len(vecs)
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n)
		m[i][i] = 1
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 1 - cluster.Cosine(vecs[i], vecs[j])
			m[i][j], m[j][i] = s, s
		}
	}
	return m
}

// ---------------------------------------------------------------------------
// Clusterer implementations
// ---------------------------------------------------------------------------

// simToDist converts a similarity matrix into row vectors usable with a
// Euclidean metric: each graph is represented by its similarity profile.
func simToDist(sim [][]float64) [][]float64 { return sim }

// KMedoidsClusterer wraps cluster.KMedoids over similarity profiles.
type KMedoidsClusterer struct{}

// Name implements Clusterer.
func (KMedoidsClusterer) Name() string { return "k-medoids" }

// Cluster implements Clusterer.
func (KMedoidsClusterer) Cluster(sim [][]float64, k int, seed int64) ([][]int, error) {
	cl, err := cluster.KMedoids(simToDist(sim), k, cluster.Euclidean, seed, 0)
	if err != nil {
		return nil, err
	}
	return groups(cl), nil
}

// AgglomerativeClusterer wraps average-linkage agglomerative clustering.
type AgglomerativeClusterer struct{}

// Name implements Clusterer.
func (AgglomerativeClusterer) Name() string { return "agglomerative" }

// Cluster implements Clusterer.
func (AgglomerativeClusterer) Cluster(sim [][]float64, k int, _ int64) ([][]int, error) {
	cl, err := cluster.Agglomerative(simToDist(sim), k, cluster.Euclidean)
	if err != nil {
		return nil, err
	}
	return groups(cl), nil
}

// SingleCluster puts everything in one cluster — the degenerate choice that
// turns the pipeline into "summarize the whole corpus then extract".
type SingleCluster struct{}

// Name implements Clusterer.
func (SingleCluster) Name() string { return "single" }

// Cluster implements Clusterer.
func (SingleCluster) Cluster(sim [][]float64, _ int, _ int64) ([][]int, error) {
	if len(sim) == 0 {
		return nil, fmt.Errorf("modular: empty similarity matrix")
	}
	all := make([]int, len(sim))
	for i := range all {
		all[i] = i
	}
	return [][]int{all}, nil
}

func groups(cl *cluster.Clustering) [][]int {
	out := make([][]int, cl.K)
	for ci := 0; ci < cl.K; ci++ {
		out[ci] = cl.Members(ci)
	}
	return out
}

// ---------------------------------------------------------------------------
// Merger implementations
// ---------------------------------------------------------------------------

// ClosureMerger builds a cluster summary graph by iterated graph closure
// (CATAPULT's choice).
type ClosureMerger struct{}

// Name implements Merger.
func (ClosureMerger) Name() string { return "graph-closure" }

// Merge implements Merger.
func (ClosureMerger) Merge(graphs []*graph.Graph) *closure.CSG {
	return closure.Merge(graphs)
}

// UnionMerger concatenates the cluster members without alignment — cheap,
// no compression, every edge weight 1. A useful lower bound for ablation.
type UnionMerger struct{}

// Name implements Merger.
func (UnionMerger) Name() string { return "disjoint-union" }

// Merge implements Merger.
func (UnionMerger) Merge(graphs []*graph.Graph) *closure.CSG {
	csg := closure.Merge(nil)
	for _, g := range graphs {
		csg.AppendDisjoint(g)
	}
	return csg
}

// ---------------------------------------------------------------------------
// Extractor implementations
// ---------------------------------------------------------------------------

// WalkExtractor samples candidates by weighted random walks and selects
// greedily on the pattern score (CATAPULT's choice).
type WalkExtractor struct {
	Walks int
}

// Name implements Extractor.
func (WalkExtractor) Name() string { return "weighted-walk+greedy" }

// Extract implements Extractor.
func (e WalkExtractor) Extract(csgs []*closure.CSG, corpus *graph.Corpus, b pattern.Budget, w pattern.Weights, seed int64) []*pattern.Pattern {
	walks := e.Walks
	if walks == 0 {
		walks = 120
	}
	rng := rand.New(rand.NewSource(seed))
	var candidates []*pattern.Pattern
	for _, csg := range csgs {
		candidates = append(candidates, catapult.SampleCandidates(csg, b, walks, rng)...)
	}
	candidates = pattern.Dedup(candidates)
	selected, _ := catapult.GreedySelect(candidates, corpus, b, w, pattern.MatchOptions())
	return selected
}

// HeaviestSubgraphExtractor deterministically grows patterns from the
// heaviest CSG edges — no randomness, no coverage computation; the fastest
// but least adaptive extractor.
type HeaviestSubgraphExtractor struct{}

// Name implements Extractor.
func (HeaviestSubgraphExtractor) Name() string { return "heaviest-greedy" }

// Extract implements Extractor.
func (HeaviestSubgraphExtractor) Extract(csgs []*closure.CSG, _ *graph.Corpus, b pattern.Budget, _ pattern.Weights, _ int64) []*pattern.Pattern {
	var out []*pattern.Pattern
	for _, csg := range csgs {
		if csg.G.NumEdges() == 0 {
			continue
		}
		// Start from the heaviest edge; greedily add the heaviest frontier
		// edge until MaxSize.
		best := 0
		for e := 1; e < csg.G.NumEdges(); e++ {
			if csg.EdgeWeight[e] > csg.EdgeWeight[best] {
				best = e
			}
		}
		edges := []graph.EdgeID{best}
		inSet := map[graph.EdgeID]bool{best: true}
		nodes := []graph.NodeID{csg.G.Edge(best).U, csg.G.Edge(best).V}
		inNodes := map[graph.NodeID]bool{nodes[0]: true, nodes[1]: true}
		for len(edges) < b.MaxSize {
			bestE, bestW := graph.EdgeID(-1), -1
			for _, v := range nodes {
				csg.G.VisitNeighbors(v, func(_ graph.NodeID, eid graph.EdgeID) bool {
					if !inSet[eid] && csg.EdgeWeight[eid] > bestW {
						bestE, bestW = eid, csg.EdgeWeight[eid]
					}
					return true
				})
			}
			if bestE < 0 {
				break
			}
			inSet[bestE] = true
			edges = append(edges, bestE)
			ne := csg.G.Edge(bestE)
			for _, v := range []graph.NodeID{ne.U, ne.V} {
				if !inNodes[v] {
					inNodes[v] = true
					nodes = append(nodes, v)
				}
			}
		}
		if len(edges) >= b.MinSize {
			sub, _ := csg.G.SubgraphFromEdges(edges)
			sub.SetName("heaviest")
			p := pattern.New(sub, "modular:heaviest")
			if b.Admits(p) && sub.IsConnected() {
				out = append(out, p)
			}
		}
	}
	out = pattern.Dedup(out)
	if len(out) > b.Count {
		out = out[:b.Count]
	}
	return out
}
