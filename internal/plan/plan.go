// Package plan compiles a visual query into an optimized physical plan —
// the "query engine bridge" between what the user draws and how the
// matcher executes it.
//
// Compilation is three stages:
//
//  1. Parse lifts the drawn pattern into an AST with interned label ids
//     (Parse). Interning gives every label a stable integer identity, so
//     all downstream tie-breaks are byte-stable across runs and across
//     the order the user happened to draw nodes in.
//
//  2. RarestFirstOrder turns corpus label statistics (the Stats interface,
//     implemented by gindex over its inverted bitsets) into a
//     connectivity-preserving VF2 matching order that crosses the rarest
//     edges first — the classic "most selective first" join ordering
//     applied to backtracking search. The order changes only how fast VF2
//     runs, never which embeddings exist, so it is always safe to apply.
//
//  3. Compile chooses a Strategy with a deterministic cost model:
//     monolithic VF2, decomposition into sub-pattern fragments joined on
//     shared nodes (profitable when fragment views are cached or the
//     pattern is large), or ANN-shortlist-then-verify (profitable when a
//     small MaxResults budget meets a large candidate set). Every
//     strategy returns exactly the monolithic answer — the plan layer
//     trades work, not correctness; the executor (gindex.SearchPlan)
//     verifies stitched matches with exact VF2 and falls back to the
//     monolithic path whenever a shortcut cannot be proven sound.
//
// Plans are immutable and safe to share/cache; qcache.PlanKey keys them by
// canonical query code and the index epoch vector so corpus updates
// invalidate exactly the plans whose statistics went stale.
package plan

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/canon"
	"repro/internal/graph"
)

// Strategy names a physical execution strategy.
type Strategy string

const (
	// StrategyMonolithic runs one VF2 per filter candidate, with the
	// compiled matching order.
	StrategyMonolithic Strategy = "monolithic"
	// StrategyDecomposed probes cached per-fragment containment views,
	// intersects them, and verifies only the joint survivors by stitching
	// fragment embeddings (bounded join buffer + exact verification).
	StrategyDecomposed Strategy = "decomposed"
	// StrategyANN verifies the most embedding-similar candidates first so a
	// MaxResults budget fills (and starts pruning) early, then completes an
	// ascending sweep for exactness.
	StrategyANN Strategy = "ann"
)

// Config bounds compilation. The zero value resolves to usable defaults.
type Config struct {
	// MinDecomposeEdges is the smallest pattern (in edges) considered for
	// decomposition (0 = 8). Below it fragment overhead always loses.
	MinDecomposeEdges int
	// MaxFragments caps the fragment count, prefix fragment included
	// (0 = 3). More fragments mean more views to probe and join.
	MaxFragments int
	// JoinBuffer caps the fragment-embedding lists and partial assignments
	// held while stitching one graph (0 = 256). Overflow falls back to
	// plain VF2 for that graph — never an error, never a wrong answer.
	JoinBuffer int
	// ANN reports that the executing index carries similarity state, making
	// StrategyANN available.
	ANN bool
	// MaxResults is the serving result budget the plan will run under
	// (0 = unlimited). StrategyANN is only profitable under a budget.
	MaxResults int
	// HasViewCache reports that fragment views will be served from a
	// materialized-view cache, discounting the probe cost for warm views.
	HasViewCache bool
	// Force, when non-empty, overrides the cost-model choice with the given
	// strategy where feasible (a forced StrategyDecomposed still requires a
	// decomposable pattern, a forced StrategyANN an ANN-enabled config;
	// otherwise the plan degrades to StrategyMonolithic). Used by the
	// serving layer's ?plan= override and by benchmarks that measure one
	// strategy in isolation.
	Force Strategy
}

func (c Config) resolved() Config {
	if c.MinDecomposeEdges <= 0 {
		c.MinDecomposeEdges = 8
	}
	if c.MaxFragments <= 0 {
		c.MaxFragments = 3
	}
	if c.JoinBuffer <= 0 {
		c.JoinBuffer = 256
	}
	return c
}

// Plan is a compiled physical plan. Immutable; safe for concurrent use and
// for caching under qcache.PlanKey.
type Plan struct {
	// Canon is the canonical code of the compiled query.
	Canon string
	// Strategy is the chosen execution strategy.
	Strategy Strategy
	// Order is the compiled matching order: a permutation of the pattern's
	// nodes, rarest-edge-first and connectivity-preserving. Valid for every
	// strategy (isomorph.Options.Order).
	Order []graph.NodeID
	// Fragments is the sub-pattern decomposition (nil unless the pattern
	// decomposes; always populated when it does, even if the cost model
	// picked another strategy, so a forced decomposed run needs no
	// recompile).
	Fragments []Fragment
	// JoinBuffer is the resolved stitch buffer bound.
	JoinBuffer int
	// Connected reports the pattern is connected (decomposition requires
	// it).
	Connected bool
	// EstCandidates estimates how many corpus graphs survive filtering.
	EstCandidates float64
	// CostMonolithic and CostDecomposed are the cost-model scores that
	// picked Strategy (CostDecomposed is 0 when the pattern does not
	// decompose). Units are abstract "work"; only the comparison matters.
	CostMonolithic float64
	CostDecomposed float64
}

// Cost-model constants. The model is deliberately coarse — it has to rank
// three strategies, not predict wall time — and fully deterministic: equal
// inputs compile equal plans, byte for byte.
const (
	// verifyBase is the per-edge branching factor of a VF2 check; cost
	// grows geometrically with pattern edges (capped so huge patterns do
	// not overflow).
	verifyBase   = 1.35
	verifyCapExp = 18
	// viewCacheDiscount scales fragment probe cost when views are served
	// from a warm materialized-view cache.
	viewCacheDiscount = 0.35
	// stitchDiscount scales the verification cost of a stitched match
	// relative to a from-scratch VF2 (fragment embeddings pre-anchor most
	// of the mapping).
	stitchDiscount = 0.6
	// joinOverhead is the flat per-joint-candidate cost of merging
	// fragment embedding lists.
	joinOverhead = 32
	// annShortlistFactor: StrategyANN pays off when the candidate estimate
	// exceeds this multiple of the result budget.
	annShortlistFactor = 4
)

// verifyCost scores one VF2 containment check of an m-edge pattern.
func verifyCost(m int) float64 {
	e := m
	if e > verifyCapExp {
		e = verifyCapExp
	}
	return float64(1+m) * math.Pow(verifyBase, float64(e))
}

// Compile builds the physical plan for q against a corpus described by st.
func Compile(q *graph.Graph, st Stats, cfg Config) *Plan {
	cfg = cfg.resolved()
	a := Parse(q)
	pl := &Plan{
		Canon:      canon.String(q),
		Order:      a.RarestFirstOrder(st),
		JoinBuffer: cfg.JoinBuffer,
		Connected:  a.Connected,
	}
	n := st.Graphs()
	if n <= 0 {
		n = 1
	}
	m := len(a.Edges)
	minSel := 1.0
	for _, e := range a.Edges {
		if s := float64(edgeRarity(a, st, e)) / float64(n); s < minSel {
			minSel = s
		}
	}
	pl.EstCandidates = float64(n) * minSel
	pl.CostMonolithic = math.Max(pl.EstCandidates, 1) * verifyCost(m)

	if m >= cfg.MinDecomposeEdges && a.Connected {
		pl.Fragments = Decompose(a, pl.Order, cfg.MaxFragments)
	}
	decomposed := false
	if len(pl.Fragments) >= 2 {
		probe, joint := 0.0, 1.0
		for i := range pl.Fragments {
			fsel := fragmentSelectivity(&pl.Fragments[i], st, n)
			probe += math.Max(float64(n)*fsel, 1) * verifyCost(pl.Fragments[i].G.NumEdges())
			joint *= fsel
		}
		if cfg.HasViewCache {
			probe *= viewCacheDiscount
		}
		estJoint := float64(n) * joint
		pl.CostDecomposed = probe + math.Max(estJoint, 1)*(verifyCost(m)*stitchDiscount+joinOverhead)
		decomposed = pl.CostDecomposed < pl.CostMonolithic
	}

	switch {
	case cfg.Force == StrategyMonolithic:
		pl.Strategy = StrategyMonolithic
	case cfg.Force == StrategyDecomposed:
		pl.Strategy = StrategyMonolithic
		if len(pl.Fragments) >= 2 {
			pl.Strategy = StrategyDecomposed
		}
	case cfg.Force == StrategyANN:
		pl.Strategy = StrategyMonolithic
		if cfg.ANN {
			pl.Strategy = StrategyANN
		}
	case decomposed:
		pl.Strategy = StrategyDecomposed
	case cfg.ANN && cfg.MaxResults > 0 &&
		pl.EstCandidates > annShortlistFactor*float64(cfg.MaxResults):
		pl.Strategy = StrategyANN
	default:
		pl.Strategy = StrategyMonolithic
	}
	return pl
}

// fragmentSelectivity estimates the fraction of corpus graphs containing
// the fragment: the selectivity of its rarest edge.
func fragmentSelectivity(f *Fragment, st Stats, n int) float64 {
	sel := 1.0
	for _, e := range f.G.Edges() {
		r := rarityOf(st, f.G.NodeLabel(e.U), e.Label, f.G.NodeLabel(e.V))
		if s := float64(r) / float64(n); s < sel {
			sel = s
		}
	}
	return sel
}

// String renders a compact human-readable plan summary (trace output).
func (p *Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s order=%v", p.Strategy, p.Order)
	if p.Strategy == StrategyDecomposed {
		fmt.Fprintf(&b, " fragments=%d buffer=%d", len(p.Fragments), p.JoinBuffer)
	}
	fmt.Fprintf(&b, " est_candidates=%.1f cost=%.0f/%.0f",
		p.EstCandidates, p.CostMonolithic, p.CostDecomposed)
	return b.String()
}
