package plan

// Stats is the corpus statistics surface the compiler plans against: for
// each label (or labeled edge triple), how many corpus graphs contain it
// at least once. gindex implements it over the same inverted bitsets its
// filter uses (one popcount per label), so the compiler's selectivity
// estimates are exact document frequencies, not samples.
//
// TripleGraphs takes its endpoint labels in normalized (a <= b) order —
// the same normalization gindex applies to its triple index. Lookups for
// labels absent from the corpus return 0.
type Stats interface {
	// Graphs is the corpus size.
	Graphs() int
	// NodeLabelGraphs is the number of graphs with >= 1 node labeled l.
	NodeLabelGraphs(l string) int
	// EdgeLabelGraphs is the number of graphs with >= 1 edge labeled l.
	EdgeLabelGraphs(l string) int
	// TripleGraphs is the number of graphs containing an edge labeled e
	// between nodes labeled a and b (a <= b).
	TripleGraphs(a, e, b string) int
}

// MapStats is a simple map-backed Stats, used by tests and by callers
// without an index at hand.
type MapStats struct {
	N     int
	Node  map[string]int
	Edge  map[string]int
	Trip  map[[3]string]int
}

// Graphs implements Stats.
func (m *MapStats) Graphs() int { return m.N }

// NodeLabelGraphs implements Stats.
func (m *MapStats) NodeLabelGraphs(l string) int { return m.Node[l] }

// EdgeLabelGraphs implements Stats.
func (m *MapStats) EdgeLabelGraphs(l string) int { return m.Edge[l] }

// TripleGraphs implements Stats.
func (m *MapStats) TripleGraphs(a, e, b string) int {
	if a > b {
		a, b = b, a
	}
	return m.Trip[[3]string{a, e, b}]
}
