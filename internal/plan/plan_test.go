package plan

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
)

// randStats builds deterministic pseudo-random corpus statistics covering
// every label of the given graphs, so ordering decisions exercise real
// rarity differences (and real ties).
func randStats(rng *rand.Rand, graphs ...*graph.Graph) *MapStats {
	st := &MapStats{
		N:    100,
		Node: map[string]int{},
		Edge: map[string]int{},
		Trip: map[[3]string]int{},
	}
	for _, g := range graphs {
		for v := 0; v < g.NumNodes(); v++ {
			l := g.NodeLabel(v)
			if _, ok := st.Node[l]; !ok {
				st.Node[l] = 1 + rng.Intn(st.N)
			}
		}
		for _, e := range g.Edges() {
			if _, ok := st.Edge[e.Label]; !ok {
				st.Edge[e.Label] = 1 + rng.Intn(st.N)
			}
			a, b := g.NodeLabel(e.U), g.NodeLabel(e.V)
			if a > b {
				a, b = b, a
			}
			k := [3]string{a, e.Label, b}
			if _, ok := st.Trip[k]; !ok {
				st.Trip[k] = 1 + rng.Intn(st.N)
			}
		}
	}
	return st
}

func randomPatterns(t *testing.T, seed int64, count, minNodes, maxNodes int) []*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	base := datagen.Chemical(rng, "base", datagen.ChemicalOptions{MinNodes: 40, MaxNodes: 60})
	var out []*graph.Graph
	for len(out) < count {
		size := minNodes + rng.Intn(maxNodes-minNodes+1)
		q := datagen.RandomConnectedSubgraph(rng, base, size)
		if q.NumNodes() >= minNodes && q.NumEdges() >= 1 {
			out = append(out, q)
		}
	}
	return out
}

func TestParseInternsSortedLabels(t *testing.T) {
	g := graph.New("q")
	g.AddNode("O")
	g.AddNode("C")
	g.AddNode("N")
	g.AddEdge(0, 1, "s")
	g.AddEdge(1, 2, "d")
	a := Parse(g)
	want := []string{"C", "N", "O", "d", "s"}
	if !reflect.DeepEqual(a.Labels, want) {
		t.Fatalf("intern table = %v, want %v", a.Labels, want)
	}
	if a.Nodes[0].LabelID != 2 || a.Nodes[1].LabelID != 0 {
		t.Fatalf("node label ids = %+v", a.Nodes)
	}
	if !a.Connected {
		t.Fatal("path pattern should parse as connected")
	}
	if a.LabelID("s") != 4 || a.LabelID("zz") != -1 {
		t.Fatalf("LabelID lookups wrong: s=%d zz=%d", a.LabelID("s"), a.LabelID("zz"))
	}
}

// TestOrderIsValidPermutation: the compiled order is always a permutation,
// and for connected patterns every node after the first is adjacent to an
// earlier node (connectivity-preserving — what keeps VF2 anchored).
func TestOrderIsValidPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i, q := range randomPatterns(t, 7, 40, 3, 14) {
		a := Parse(q)
		ord := a.RarestFirstOrder(randStats(rng, q))
		if len(ord) != q.NumNodes() {
			t.Fatalf("pattern %d: order len %d, want %d", i, len(ord), q.NumNodes())
		}
		seen := make([]bool, q.NumNodes())
		for _, v := range ord {
			if v < 0 || v >= q.NumNodes() || seen[v] {
				t.Fatalf("pattern %d: order %v is not a permutation", i, ord)
			}
			seen[v] = true
		}
		if !a.Connected {
			continue
		}
		for j := 1; j < len(ord); j++ {
			anchored := false
			for k := 0; k < j && !anchored; k++ {
				anchored = q.HasEdge(ord[j], ord[k])
			}
			if !anchored {
				t.Fatalf("pattern %d: order %v breaks connectivity at %d", i, ord, j)
			}
		}
	}
}

// TestOrderStartsAtRarestEdge: the first two nodes span an edge with the
// minimum rarity over all edges, rarer endpoint first.
func TestOrderStartsAtRarestEdge(t *testing.T) {
	g := graph.New("q")
	g.AddNode("A") // 0
	g.AddNode("B") // 1
	g.AddNode("C") // 2
	g.AddNode("D") // 3
	g.AddEdge(0, 1, "x")
	g.AddEdge(1, 2, "x")
	g.AddEdge(2, 3, "y")
	st := &MapStats{
		N:    100,
		Node: map[string]int{"A": 90, "B": 80, "C": 20, "D": 70},
		Edge: map[string]int{"x": 50, "y": 60},
		Trip: map[[3]string]int{
			{"A", "x", "B"}: 40, {"B", "x", "C"}: 5, {"C", "y", "D"}: 30,
		},
	}
	a := Parse(g)
	ord := a.RarestFirstOrder(st)
	// Rarest edge is (1,2) at 5; endpoint C (node 2, rarity 20) is rarer
	// than B (node 1, rarity 80).
	if ord[0] != 2 || ord[1] != 1 {
		t.Fatalf("order %v, want start [2 1 ...]", ord)
	}
}

// TestOrderByteStableAcrossDrawings is the determinism regression: two
// drawings of the same pattern — nodes inserted in different orders — must
// compile to orders with identical label sequences, because all rarity
// ties break on interned label ids (sorted label table), never on node
// insertion order.
func TestOrderByteStableAcrossDrawings(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	mk := func(perm []int) *graph.Graph {
		// K3 with all-equal stats: every tie-break falls through to labels.
		labels := []string{"C", "N", "O"}
		g := graph.New("q")
		for _, p := range perm {
			g.AddNode(labels[p])
		}
		g.AddEdge(0, 1, "s")
		g.AddEdge(1, 2, "s")
		g.AddEdge(0, 2, "s")
		return g
	}
	st := &MapStats{
		N:    100,
		Node: map[string]int{"C": 50, "N": 50, "O": 50},
		Edge: map[string]int{"s": 50},
		Trip: map[[3]string]int{},
	}
	_ = rng
	var wantLabels []string
	for _, perm := range [][]int{{0, 1, 2}, {2, 0, 1}, {1, 2, 0}, {2, 1, 0}} {
		g := mk(perm)
		ord := Parse(g).RarestFirstOrder(st)
		got := make([]string, len(ord))
		for i, v := range ord {
			got[i] = g.NodeLabel(v)
		}
		if wantLabels == nil {
			wantLabels = got
			continue
		}
		if !reflect.DeepEqual(got, wantLabels) {
			t.Fatalf("drawing %v ordered labels %v, want %v (tie-break is not drawing-invariant)",
				perm, got, wantLabels)
		}
	}
}

// TestOrderDeterministic: repeated compiles of the identical input are
// byte-equal.
func TestOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, q := range randomPatterns(t, 13, 10, 4, 12) {
		st := randStats(rng, q)
		first := Parse(q).RarestFirstOrder(st)
		for i := 0; i < 5; i++ {
			if got := Parse(q).RarestFirstOrder(st); !reflect.DeepEqual(got, first) {
				t.Fatalf("recompile %d: order %v != %v", i, got, first)
			}
		}
	}
}

// TestDecomposeProperties: fragments jointly cover every pattern edge
// (overlap is allowed — undersized leftover components are grown with
// adjacent pattern edges to keep their views selective), each fragment is
// connected with >= 1 edge, node mappings are consistent, and each later
// fragment shares >= 1 node with the prefix fragment (the join chain the
// executor depends on).
func TestDecomposeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	decomposed := 0
	for i, q := range randomPatterns(t, 17, 60, 5, 16) {
		a := Parse(q)
		ord := a.RarestFirstOrder(randStats(rng, q))
		frags := Decompose(a, ord, 3)
		if frags == nil {
			continue
		}
		decomposed++
		if len(frags) < 2 {
			t.Fatalf("pattern %d: %d fragments, want >= 2", i, len(frags))
		}
		covered := map[[2]int]int{}
		prefixNodes := map[int]bool{}
		for fi, f := range frags {
			if f.G.NumEdges() == 0 {
				t.Fatalf("pattern %d fragment %d: no edges", i, fi)
			}
			if f.Canon == "" {
				t.Fatalf("pattern %d fragment %d: empty canon", i, fi)
			}
			if !Parse(f.G).Connected {
				t.Fatalf("pattern %d fragment %d: disconnected", i, fi)
			}
			shares := fi == 0
			for li, pv := range f.Nodes {
				if f.G.NodeLabel(li) != q.NodeLabel(pv) {
					t.Fatalf("pattern %d fragment %d: node %d label mismatch", i, fi, li)
				}
				if fi == 0 {
					prefixNodes[pv] = true
				} else if prefixNodes[pv] {
					shares = true
				}
			}
			if !shares {
				t.Fatalf("pattern %d fragment %d: no node shared with prefix fragment", i, fi)
			}
			for _, e := range f.G.Edges() {
				u, v := f.Nodes[e.U], f.Nodes[e.V]
				if u > v {
					u, v = v, u
				}
				if _, ok := q.EdgeBetween(u, v); !ok {
					t.Fatalf("pattern %d fragment %d: edge (%d,%d) not in pattern", i, fi, u, v)
				}
				covered[[2]int{u, v}]++
			}
		}
		for key, n := range covered {
			if n < 1 {
				t.Fatalf("pattern %d: edge %v covered %d times", i, key, n)
			}
		}
		if len(covered) != q.NumEdges() {
			t.Fatalf("pattern %d: fragments cover %d/%d edges", i, len(covered), q.NumEdges())
		}
	}
	if decomposed == 0 {
		t.Fatal("no pattern decomposed; generator or Decompose too strict")
	}
}

// TestCompileStrategySelection: small patterns stay monolithic, large
// decomposable patterns with selective fragments choose decomposition,
// and Force overrides where feasible.
func TestCompileStrategySelection(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	patterns := randomPatterns(t, 19, 30, 10, 16)
	sawDecomposed := false
	for _, q := range patterns {
		st := randStats(rng, q)
		pl := Compile(q, st, Config{HasViewCache: true})
		if pl.Strategy == StrategyDecomposed {
			sawDecomposed = true
			if len(pl.Fragments) < 2 {
				t.Fatal("decomposed plan without fragments")
			}
		}
		forced := Compile(q, st, Config{Force: StrategyMonolithic})
		if forced.Strategy != StrategyMonolithic {
			t.Fatalf("Force monolithic got %s", forced.Strategy)
		}
		fd := Compile(q, st, Config{Force: StrategyDecomposed})
		if len(fd.Fragments) >= 2 && fd.Strategy != StrategyDecomposed {
			t.Fatalf("Force decomposed got %s with %d fragments", fd.Strategy, len(fd.Fragments))
		}
		fa := Compile(q, st, Config{Force: StrategyANN})
		if fa.Strategy != StrategyMonolithic {
			t.Fatalf("Force ann without ANN config got %s, want monolithic fallback", fa.Strategy)
		}
		fa = Compile(q, st, Config{Force: StrategyANN, ANN: true})
		if fa.Strategy != StrategyANN {
			t.Fatalf("Force ann with ANN config got %s", fa.Strategy)
		}
	}
	if !sawDecomposed {
		t.Fatal("no 10..16-node pattern chose decomposition")
	}
	// A tiny pattern must never decompose.
	small := graph.New("small")
	small.AddNode("C")
	small.AddNode("C")
	small.AddEdge(0, 1, "s")
	pl := Compile(small, randStats(rng, small), Config{})
	if pl.Strategy != StrategyMonolithic || pl.Fragments != nil {
		t.Fatalf("2-node pattern compiled to %s with %d fragments", pl.Strategy, len(pl.Fragments))
	}
	// ANN kicks in only under a budget with a large candidate estimate.
	wide := graph.New("wide")
	wide.AddNode("C")
	wide.AddNode("C")
	wide.AddEdge(0, 1, "s")
	st := &MapStats{N: 1000, Node: map[string]int{"C": 1000}, Edge: map[string]int{"s": 1000},
		Trip: map[[3]string]int{{"C", "s", "C"}: 1000}}
	pl = Compile(wide, st, Config{ANN: true, MaxResults: 5})
	if pl.Strategy != StrategyANN {
		t.Fatalf("broad budgeted query compiled to %s, want ann", pl.Strategy)
	}
	pl = Compile(wide, st, Config{ANN: true})
	if pl.Strategy != StrategyMonolithic {
		t.Fatalf("unbudgeted query compiled to %s, want monolithic", pl.Strategy)
	}
}

// TestCompileDeterministic: equal inputs compile byte-equal plans.
func TestCompileDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, q := range randomPatterns(t, 23, 10, 8, 14) {
		st := randStats(rng, q)
		a := Compile(q, st, Config{HasViewCache: true})
		for i := 0; i < 3; i++ {
			b := Compile(q, st, Config{HasViewCache: true})
			if a.Strategy != b.Strategy || !reflect.DeepEqual(a.Order, b.Order) ||
				a.Canon != b.Canon || len(a.Fragments) != len(b.Fragments) {
				t.Fatalf("recompile diverged: %s vs %s", a, b)
			}
			for fi := range a.Fragments {
				if a.Fragments[fi].Canon != b.Fragments[fi].Canon {
					t.Fatalf("fragment %d canon diverged", fi)
				}
			}
		}
	}
}
