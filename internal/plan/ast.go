package plan

import (
	"sort"

	"repro/internal/graph"
	"repro/internal/isomorph"
)

// AST is the parsed form of a visual query: nodes and edges annotated with
// interned label ids. The intern table is the sorted list of distinct
// labels appearing anywhere in the pattern (node and edge labels share
// one table), so label ids depend only on the label set — never on the
// order the user drew the pattern in. That is what makes every id-based
// tie-break below byte-stable across runs.
type AST struct {
	Nodes []ASTNode
	Edges []ASTEdge
	// Labels is the intern table: sorted distinct labels.
	Labels []string
	// Connected reports whether the pattern is connected (ignoring the
	// degenerate empty pattern, which counts as connected).
	Connected bool

	adj [][]int // node -> indexes into Edges
}

// ASTNode is one pattern node.
type ASTNode struct {
	Label   string
	LabelID int
}

// ASTEdge is one pattern edge.
type ASTEdge struct {
	U, V    int
	Label   string
	LabelID int
}

// Parse lifts a query graph into an AST.
func Parse(q *graph.Graph) *AST {
	n := q.NumNodes()
	a := &AST{
		Nodes: make([]ASTNode, n),
		Edges: make([]ASTEdge, 0, q.NumEdges()),
		adj:   make([][]int, n),
	}
	seen := make(map[string]bool)
	for v := 0; v < n; v++ {
		l := q.NodeLabel(v)
		a.Nodes[v] = ASTNode{Label: l}
		if !seen[l] {
			seen[l] = true
			a.Labels = append(a.Labels, l)
		}
	}
	for _, e := range q.Edges() {
		ei := len(a.Edges)
		a.Edges = append(a.Edges, ASTEdge{U: int(e.U), V: int(e.V), Label: e.Label})
		a.adj[e.U] = append(a.adj[e.U], ei)
		a.adj[e.V] = append(a.adj[e.V], ei)
		if !seen[e.Label] {
			seen[e.Label] = true
			a.Labels = append(a.Labels, e.Label)
		}
	}
	sort.Strings(a.Labels)
	id := make(map[string]int, len(a.Labels))
	for i, l := range a.Labels {
		id[l] = i
	}
	for v := range a.Nodes {
		a.Nodes[v].LabelID = id[a.Nodes[v].Label]
	}
	for ei := range a.Edges {
		a.Edges[ei].LabelID = id[a.Edges[ei].Label]
	}
	a.Connected = a.connected()
	return a
}

// LabelID returns the interned id of l, or -1 if l does not occur in the
// pattern.
func (a *AST) LabelID(l string) int {
	i := sort.SearchStrings(a.Labels, l)
	if i < len(a.Labels) && a.Labels[i] == l {
		return i
	}
	return -1
}

// other returns the endpoint of edge ei that is not v.
func (a *AST) other(ei, v int) int {
	e := a.Edges[ei]
	if e.U == v {
		return e.V
	}
	return e.U
}

func (a *AST) connected() bool {
	n := len(a.Nodes)
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	queue := []int{0}
	seen[0] = true
	visited := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ei := range a.adj[v] {
			if w := a.other(ei, v); !seen[w] {
				seen[w] = true
				visited++
				queue = append(queue, w)
			}
		}
	}
	return visited == n
}

// wildcard reports whether l is the match-anything label.
func wildcard(l string) bool { return l == isomorph.Wildcard }
