package plan

// Rarest-edge-first matching order. VF2's wall time is dominated by the
// branching near the root of the search tree, so the order seeds the
// search at the edge satisfied by the fewest corpus graphs and always
// extends across the rarest edge leaving the matched frontier. Corpus-
// level document frequencies (Stats) stand in for per-graph frequencies —
// one order is compiled per query and reused across every candidate
// graph, instead of re-ranking labels per target the way the uncompiled
// matcher does.
//
// Determinism contract: every comparison that can tie on rarity is broken
// by interned label ids and then node indexes, so the compiled order —
// and everything downstream keyed on it — is byte-stable across runs and
// independent of map iteration or drawing order.

// edgeRarity returns how many corpus graphs can possibly satisfy edge e:
// the tightest available document frequency given which of its three
// labels are wildcards. Wildcards contribute no constraint.
func edgeRarity(a *AST, st Stats, e ASTEdge) int {
	return rarityOf(st, a.Nodes[e.U].Label, e.Label, a.Nodes[e.V].Label)
}

// rarityOf is edgeRarity on raw labels (la, le, lb) = (endpoint, edge,
// endpoint).
func rarityOf(st Stats, la, le, lb string) int {
	r := st.Graphs()
	min := func(v int) {
		if v < r {
			r = v
		}
	}
	if !wildcard(la) {
		min(st.NodeLabelGraphs(la))
	}
	if !wildcard(lb) {
		min(st.NodeLabelGraphs(lb))
	}
	if !wildcard(le) {
		min(st.EdgeLabelGraphs(le))
	}
	if !wildcard(la) && !wildcard(le) && !wildcard(lb) {
		x, y := la, lb
		if x > y {
			x, y = y, x
		}
		min(st.TripleGraphs(x, le, y))
	}
	return r
}

// nodeRarity returns how many corpus graphs contain node v's label.
func nodeRarity(a *AST, st Stats, v int) int {
	if wildcard(a.Nodes[v].Label) {
		return st.Graphs()
	}
	return st.NodeLabelGraphs(a.Nodes[v].Label)
}

// edgeKey is the comparison key for edge selection: lexicographic
// ascending on (rarity, edge label id, endpoint label ids, endpoint
// indexes). Two distinct edges never compare equal — the final component
// is the unique (min,max) endpoint pair plus the edge's slot.
type edgeKey struct {
	rarity     int
	labelID    int
	loLabel    int
	hiLabel    int
	loNode     int
	hiNode     int
	index      int
}

func (a *AST) keyOf(st Stats, ei int) edgeKey {
	e := a.Edges[ei]
	lu, lv := a.Nodes[e.U].LabelID, a.Nodes[e.V].LabelID
	nu, nv := e.U, e.V
	if lu > lv || (lu == lv && nu > nv) {
		lu, lv, nu, nv = lv, lu, nv, nu
	}
	return edgeKey{
		rarity:  edgeRarity(a, st, e),
		labelID: e.LabelID,
		loLabel: lu,
		hiLabel: lv,
		loNode:  nu,
		hiNode:  nv,
		index:   ei,
	}
}

func (k edgeKey) less(o edgeKey) bool {
	switch {
	case k.rarity != o.rarity:
		return k.rarity < o.rarity
	case k.labelID != o.labelID:
		return k.labelID < o.labelID
	case k.loLabel != o.loLabel:
		return k.loLabel < o.loLabel
	case k.hiLabel != o.hiLabel:
		return k.hiLabel < o.hiLabel
	case k.loNode != o.loNode:
		return k.loNode < o.loNode
	case k.hiNode != o.hiNode:
		return k.hiNode < o.hiNode
	}
	return k.index < o.index
}

// RarestFirstOrder compiles the matching order: a permutation of the
// pattern's nodes that starts at the rarest edge (rarer endpoint first)
// and then repeatedly extends to the frontier node with the most edges
// back into the already-ordered core, rarest edge first among those.
// Back-degree outranks rarity during extension because each back-edge is
// a constraint VF2 checks the moment the node is assigned — on label-
// uniform patterns (where every edge ties on rarity) it is the only
// pruning signal there is. Disconnected patterns restart at the rarest
// remaining edge; isolated nodes come last, rarest label first. The
// result is valid for isomorph.Options.Order under any Stats (including
// a nil-like empty one): ordering affects only search speed, never the
// embedding set.
func (a *AST) RarestFirstOrder(st Stats) []int {
	n := len(a.Nodes)
	order := make([]int, 0, n)
	in := make([]bool, n)
	add := func(v int) {
		order = append(order, v)
		in[v] = true
	}
	// backDeg counts edges from v into the ordered core — deterministic,
	// derived only from the AST and the partial order built so far.
	backDeg := func(v int) int {
		d := 0
		for _, e := range a.Edges {
			if (e.U == v && in[e.V]) || (e.V == v && in[e.U]) {
				d++
			}
		}
		return d
	}
	// addEndpoints appends both endpoints of a component-starting edge,
	// most constrained endpoint first.
	addEndpoints := func(e ASTEdge) {
		u, v := e.U, e.V
		ru, rv := nodeRarity(a, st, u), nodeRarity(a, st, v)
		lu, lv := a.Nodes[u].LabelID, a.Nodes[v].LabelID
		if ru > rv || (ru == rv && (lu > lv || (lu == lv && u > v))) {
			u, v = v, u
		}
		add(u)
		add(v)
	}
	for len(order) < n {
		// Pick the best edge with at least one un-ordered endpoint,
		// preferring edges that touch the frontier; among frontier edges,
		// the one whose new endpoint has the most back-edges wins.
		bestEdge, bestFrontier, bestBack := -1, false, -1
		var bestKey edgeKey
		for ei := range a.Edges {
			e := a.Edges[ei]
			if in[e.U] && in[e.V] {
				continue
			}
			frontier := in[e.U] || in[e.V]
			if bestEdge >= 0 && frontier != bestFrontier {
				if bestFrontier {
					continue
				}
				bestEdge = -1 // frontier edge beats any non-frontier best
			}
			back := 0
			if frontier {
				w := e.U
				if in[e.U] {
					w = e.V
				}
				back = backDeg(w)
			}
			k := a.keyOf(st, ei)
			if bestEdge < 0 || back > bestBack || (back == bestBack && k.less(bestKey)) {
				bestEdge, bestFrontier, bestBack, bestKey = ei, frontier, back, k
			}
		}
		if bestEdge < 0 {
			// Only isolated nodes remain: rarest label first.
			best := -1
			for v := 0; v < n; v++ {
				if in[v] {
					continue
				}
				if best < 0 {
					best = v
					continue
				}
				rv, rb := nodeRarity(a, st, v), nodeRarity(a, st, best)
				lv, lb := a.Nodes[v].LabelID, a.Nodes[best].LabelID
				if rv < rb || (rv == rb && (lv < lb || (lv == lb && v < best))) {
					best = v
				}
			}
			add(best)
			continue
		}
		e := a.Edges[bestEdge]
		switch {
		case in[e.U]:
			add(e.V)
		case in[e.V]:
			add(e.U)
		default:
			addEndpoints(e)
		}
	}
	return order
}
