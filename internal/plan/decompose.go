package plan

import (
	"fmt"
	"sort"

	"repro/internal/canon"
	"repro/internal/graph"
)

// Fragment is one sub-pattern of a decomposed query: a connected subgraph
// of the pattern together with the mapping from fragment node ids back to
// pattern node ids. Fragments are keyed by canonical code, so a
// materialized view computed for one query's fragment is shared by every
// other query that decomposes into the same sub-pattern — including the
// canned patterns a query panel offers, which are exactly the recurring
// sub-shapes users compose larger queries from.
type Fragment struct {
	G *graph.Graph
	// Nodes maps fragment node id -> pattern node id.
	Nodes []int
	// Canon is the fragment's canonical code (view cache key base).
	Canon string
}

// Decompose splits a connected pattern into 2..maxFragments fragments
// that jointly cover every pattern edge and pairwise chain through shared
// nodes: the first fragment is the pattern induced on a prefix of the
// compiled matching order holding about half the edges, and each
// remaining fragment is a connected component of the leftover edges
// (every one of which touches the prefix, because the pattern is
// connected). Returns nil when the pattern does not usefully decompose
// (disconnected, too small, or too many components).
//
// Soundness requirement used by the executor: any embedding of the whole
// pattern restricts to an embedding of each fragment, and conversely a
// candidate assignment merged from complete fragment embedding sets that
// agree on shared nodes, is injective, and passes an exact whole-pattern
// verification IS an embedding. Fragments therefore never change the
// answer — only how much of it is computed from cached views.
func Decompose(a *AST, order []int, maxFragments int) []Fragment {
	n, m := len(a.Nodes), len(a.Edges)
	if !a.Connected || n < 3 || m < 4 || maxFragments < 2 {
		return nil
	}
	rank := make([]int, n)
	for i, v := range order {
		rank[v] = i
	}
	// Find the shortest order prefix holding >= half the edges, leaving at
	// least one node (hence >= 1 edge, by connectivity) outside.
	target := (m + 1) / 2
	prefixLen, inPrefix := 0, 0
	for j := 1; j < n-1; j++ {
		for _, ei := range a.adj[order[j]] {
			if rank[a.other(ei, order[j])] < j {
				inPrefix++
			}
		}
		if inPrefix >= target {
			prefixLen = j + 1
			break
		}
	}
	if prefixLen == 0 || inPrefix == m {
		return nil
	}

	prefix := make([]bool, n)
	for _, v := range order[:prefixLen] {
		prefix[v] = true
	}
	var restEdges []int
	for ei := range a.Edges {
		e := a.Edges[ei]
		if !prefix[e.U] || !prefix[e.V] {
			restEdges = append(restEdges, ei)
		}
	}

	// Union the leftover edges into connected components.
	parent := make([]int, n)
	for v := range parent {
		parent[v] = v
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	for _, ei := range restEdges {
		e := a.Edges[ei]
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	comps := make(map[int][]int) // root -> edge ids
	for _, ei := range restEdges {
		r := find(a.Edges[ei].U)
		comps[r] = append(comps[r], ei)
	}
	if 1+len(comps) > maxFragments {
		return nil
	}

	frags := []Fragment{buildFragment(a, order[:prefixLen], nil, 0)}
	// Deterministic component order: by smallest pattern node involved.
	roots := make([]int, 0, len(comps))
	for r := range comps {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool {
		return minNode(a, comps[roots[i]]) < minNode(a, comps[roots[j]])
	})
	for fi, r := range roots {
		frags = append(frags, buildFragment(a, nil, growFragment(a, comps[r]), fi+1))
	}
	return frags
}

// minFragEdges is the smallest fragment worth materializing a view for: a
// 2-3-edge motif matches nearly every graph in a skewed corpus, so its
// view prunes nothing and the join degenerates to the prefix view alone.
const minFragEdges = 6

// growFragment pads an undersized leftover component with adjacent
// pattern edges until it reaches minFragEdges or runs out of pattern.
// Fragments may overlap — soundness never depended on disjointness (any
// whole-pattern embedding restricts to every fragment either way), and a
// bigger fragment is a rarer one, which is the whole point of a view.
// Ring-closing edges (both endpoints already in the fragment) are taken
// first: they tighten the view without growing its embedding count.
func growFragment(a *AST, edges []int) []int {
	if len(edges) >= minFragEdges {
		return edges
	}
	grown := append([]int(nil), edges...)
	inSet := make(map[int]bool, len(grown))
	nodeSet := make(map[int]bool)
	for _, ei := range grown {
		inSet[ei] = true
		nodeSet[a.Edges[ei].U] = true
		nodeSet[a.Edges[ei].V] = true
	}
	for len(grown) < minFragEdges {
		best := -1 // ascending edge index within each class: deterministic
		for ei := range a.Edges {
			if inSet[ei] {
				continue
			}
			e := a.Edges[ei]
			if nodeSet[e.U] && nodeSet[e.V] {
				best = ei
				break
			}
			if best < 0 && (nodeSet[e.U] || nodeSet[e.V]) {
				best = ei
			}
		}
		if best < 0 {
			break
		}
		inSet[best] = true
		grown = append(grown, best)
		nodeSet[a.Edges[best].U] = true
		nodeSet[a.Edges[best].V] = true
	}
	return grown
}

func minNode(a *AST, edges []int) int {
	lo := a.Edges[edges[0]].U
	for _, ei := range edges {
		e := a.Edges[ei]
		if e.U < lo {
			lo = e.U
		}
		if e.V < lo {
			lo = e.V
		}
	}
	return lo
}

// buildFragment materializes one fragment as a graph: either the pattern
// induced on the given node set (edges nil), or the subgraph spanned by
// the given edge set (nodes nil). Fragment node order is ascending
// pattern node id — deterministic regardless of discovery order.
func buildFragment(a *AST, nodes []int, edges []int, fi int) Fragment {
	nodeSet := make(map[int]bool)
	if nodes != nil {
		for _, v := range nodes {
			nodeSet[v] = true
		}
	} else {
		for _, ei := range edges {
			nodeSet[a.Edges[ei].U] = true
			nodeSet[a.Edges[ei].V] = true
		}
	}
	mapping := make([]int, 0, len(nodeSet))
	for v := range nodeSet {
		mapping = append(mapping, v)
	}
	sort.Ints(mapping)
	local := make(map[int]int, len(mapping))
	for i, v := range mapping {
		local[v] = i
	}
	g := graph.New(fmt.Sprintf("frag%d", fi))
	for _, v := range mapping {
		g.AddNode(a.Nodes[v].Label)
	}
	addEdge := func(ei int) {
		e := a.Edges[ei]
		if _, err := g.AddEdge(local[e.U], local[e.V], e.Label); err != nil {
			// Duplicate pattern edges cannot occur (graph.AddEdge rejects
			// them at pattern build time); a failure here would mean the
			// AST no longer mirrors the pattern.
			panic(err)
		}
	}
	if nodes != nil {
		for ei := range a.Edges {
			e := a.Edges[ei]
			if nodeSet[e.U] && nodeSet[e.V] {
				addEdge(ei)
			}
		}
	} else {
		for _, ei := range edges {
			addEdge(ei)
		}
	}
	return Fragment{G: g, Nodes: mapping, Canon: canon.String(g)}
}
