// Package tattoo implements the TATTOO framework: data-driven canned
// pattern selection for a single large network (PVLDB 2021, as reviewed in
// the tutorial's Section 2.3).
//
// TATTOO sidesteps the unavailability of public graph query logs by
// classifying candidate topologies after the published analysis of large
// SPARQL query logs (Bonifati et al.): real queries are dominated by
// chains, stars, trees, cycles, petals and flowers, plus triangle-rich
// shapes. The framework:
//
//  1. Decomposes the network into a dense truss-infested region G_T (edges
//     of trussness ≥ k, default 3) and a sparse truss-oblivious region G_O
//     (package truss).
//  2. Samples candidate pattern instances per topology class — triangle-
//     like classes (triangle chains, petals, flowers, near-cliques) from
//     G_T, triangle-free classes (chains, stars, trees, cycles) from G_O —
//     recording the network edges each instance occupies.
//  3. Greedily selects the canned pattern set maximizing a pattern-set
//     score of coverage (network edges occupied by selected instances),
//     structural diversity, and low cognitive load. Greedy maximization of
//     this submodular objective is what gives the original system its
//     1/e-approximation guarantee.
package tattoo

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/truss"
)

// Class names the topology classes, mirroring the query-log taxonomy.
type Class string

// Topology classes. Chain through Cycle are mined from the truss-oblivious
// region; TriangleChain through NearClique from the truss-infested region.
const (
	Chain         Class = "chain"
	Star          Class = "star"
	Tree          Class = "tree"
	Cycle         Class = "cycle"
	TriangleChain Class = "trianglechain"
	Petal         Class = "petal"
	Flower        Class = "flower"
	NearClique    Class = "nearclique"
)

// Classes lists all topology classes in generation order.
func Classes() []Class {
	return []Class{Chain, Star, Tree, Cycle, TriangleChain, Petal, Flower, NearClique}
}

// Config parameterizes a TATTOO run.
type Config struct {
	// Budget is the canned-pattern budget (count, size range in edges).
	Budget pattern.Budget
	// Weights balance coverage, diversity, cognitive load.
	Weights pattern.Weights
	// SamplesPerClass is the number of instance samples drawn per topology
	// class (0 = scaled to the network: max(150, edges/200)). More samples
	// raise instance coverage at linear cost.
	SamplesPerClass int
	// TrussK is the trussness threshold separating G_T from G_O (0 = 3).
	TrussK int
	// Seed drives sampling; runs are deterministic per seed.
	Seed int64
	// Workers bounds the worker pool for the parallel stages (truss support
	// counting, per-class candidate generation). <= 0 means GOMAXPROCS.
	// Results are identical at any value: each topology class samples from
	// its own RNG seeded by par.ChildSeed(Seed, class index) and the class
	// results are merged in the fixed Classes() order.
	Workers int
}

func (c *Config) defaults(edges int) {
	if c.SamplesPerClass == 0 {
		c.SamplesPerClass = 150
		if scaled := edges / 200; scaled > c.SamplesPerClass {
			c.SamplesPerClass = scaled
		}
	}
	if c.TrussK == 0 {
		c.TrussK = 3
	}
	if c.Weights == (pattern.Weights{}) {
		c.Weights = pattern.DefaultWeights()
	}
}

// Result is the outcome of a TATTOO run.
type Result struct {
	Patterns []*pattern.Pattern
	// TrussStats summarizes the G_T / G_O decomposition.
	TrussStats truss.Stats
	// Candidates is the number of distinct candidate patterns generated.
	Candidates int
	// Coverage is the fraction of network edges covered by the selected
	// patterns' sampled instances.
	Coverage float64
	// ClassCounts reports how many distinct candidates each topology class
	// produced.
	ClassCounts map[Class]int
	// SelectedClasses reports the class of each selected pattern.
	SelectedClasses []Class
	// Truncated reports that the run's context was canceled mid-pipeline:
	// the pattern set is the best reachable within the budget (sampling
	// and/or greedy rounds stopped early) rather than the full selection.
	Truncated bool
}

// candidate accumulates the sampled instances of one canonical pattern.
type candidate struct {
	pat   *pattern.Pattern
	class Class
	edges map[graph.EdgeID]bool // union of instance edges in the network
}

// Select runs TATTOO over the network.
func Select(g *graph.Graph, cfg Config) (*Result, error) {
	return SelectCtx(context.Background(), g, cfg)
}

// SelectCtx is Select under a context: sampling loops poll ctx between
// instances and the greedy selection between rounds, so a deadline yields
// the best pattern set reachable within the budget with Result.Truncated
// set instead of an error. Validation errors are still errors.
func SelectCtx(ctx context.Context, g *graph.Graph, cfg Config) (*Result, error) {
	if g.NumEdges() == 0 {
		return nil, fmt.Errorf("tattoo: network has no edges")
	}
	if err := cfg.Budget.Validate(); err != nil {
		return nil, err
	}
	cfg.defaults(g.NumEdges())
	if ctx.Err() != nil {
		return &Result{ClassCounts: make(map[Class]int), Truncated: true}, nil
	}

	// Stage spans mirror the pipeline steps; see catapult.SelectCtx for
	// the contract (global stage_seconds histogram + optional trace rows).
	_, spTruss := obs.StartSpan(ctx, "tattoo.truss")
	trussness := truss.DecomposeN(g, cfg.Workers)
	spTruss.End()
	res := &Result{ClassCounts: make(map[Class]int)}
	for _, t := range trussness {
		res.TrussStats.Edges++
		if t >= cfg.TrussK {
			res.TrussStats.TrussEdges++
		} else {
			res.TrussStats.ObliviousEdge++
		}
		if t > res.TrussStats.MaxTrussness {
			res.TrussStats.MaxTrussness = t
		}
	}
	res.TrussStats.Histogram = make(map[int]int)
	for _, t := range trussness {
		res.TrussStats.Histogram[t]++
	}

	// Template generator: region edge lists are built once and shared
	// read-only by every class task; only the RNG is per-task.
	template := &generator{
		g:         g,
		trussness: trussness,
		k:         cfg.TrussK,
		budget:    cfg.Budget,
	}
	template.buildRegionEdgeLists()

	classes := Classes()
	samplers := map[Class]func(*generator) []graph.EdgeID{
		Chain:         (*generator).sampleChain,
		Star:          (*generator).sampleStar,
		Tree:          (*generator).sampleTree,
		Cycle:         (*generator).sampleCycle,
		TriangleChain: (*generator).sampleTriangleChain,
		Petal:         (*generator).samplePetal,
		Flower:        (*generator).sampleFlower,
		NearClique:    (*generator).sampleNearClique,
	}

	// Each topology class samples independently with an RNG derived from
	// (Seed, class index), accumulating candidates (including the canonical
	// codes, the expensive part) into a private insertion-ordered list.
	type classPart struct {
		cands []*candidate
	}
	_, spSample := obs.StartSpan(ctx, "tattoo.sample")
	parts, perr := par.MapCtx(ctx, len(classes), cfg.Workers, func(ci int) classPart {
		class := classes[ci]
		gen := *template
		gen.rng = rand.New(rand.NewSource(par.ChildSeed(cfg.Seed, ci)))
		sample := samplers[class]
		local := make(map[string]*candidate)
		var order []*candidate
		for i := 0; i < cfg.SamplesPerClass; i++ {
			// Sampling is the dominant cost on big networks; poll the
			// context cheaply so a deadline stops mid-class with the
			// candidates accumulated so far.
			if i%16 == 0 && ctx.Err() != nil {
				break
			}
			inst := sample(&gen)
			if inst == nil || len(inst) < cfg.Budget.MinSize || len(inst) > cfg.Budget.MaxSize {
				continue
			}
			sub, _ := g.SubgraphFromEdges(inst)
			if !sub.IsConnected() {
				continue
			}
			sub.SetName("tattoo-" + string(class))
			p := pattern.New(sub, "tattoo:"+string(class))
			key := p.Canon()
			c, ok := local[key]
			if !ok {
				c = &candidate{pat: p, class: class, edges: make(map[graph.EdgeID]bool)}
				local[key] = c
				order = append(order, c)
			}
			c.pat.Support++
			for _, e := range inst {
				c.edges[e] = true
			}
		}
		return classPart{cands: order}
	})

	// Merge class results sequentially in Classes() order: first class to
	// produce a canonical form owns it; later classes fold their support and
	// instance edges into the owner.
	byCanon := make(map[string]*candidate)
	for _, part := range parts {
		for _, c := range part.cands {
			key := c.pat.Canon()
			if owner, ok := byCanon[key]; ok {
				owner.pat.Support += c.pat.Support
				for e := range c.edges {
					owner.edges[e] = true
				}
			} else {
				byCanon[key] = c
				res.ClassCounts[c.class]++
			}
		}
	}

	// Deterministic candidate order.
	cands := make([]*candidate, 0, len(byCanon))
	for _, c := range byCanon {
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].pat.Canon() < cands[j].pat.Canon() })
	res.Candidates = len(cands)
	spSample.End()

	_, spGreedy := obs.StartSpan(ctx, "tattoo.greedy")
	var truncated bool
	res.Patterns, res.SelectedClasses, res.Coverage, truncated = greedy(ctx, cands, g.NumEdges(), cfg)
	spGreedy.End()
	res.Truncated = truncated || perr != nil
	return res, nil
}

// greedy runs the submodular greedy selection over candidates using their
// sampled instance edges for coverage. Rounds start only while ctx is live;
// the boolean reports an early stop.
func greedy(ctx context.Context, cands []*candidate, totalEdges int, cfg Config) ([]*pattern.Pattern, []Class, float64, bool) {
	covered := make(map[graph.EdgeID]bool)
	truncated := false
	var selected []*pattern.Pattern
	var classes []Class
	pool := append([]*candidate(nil), cands...)
	for len(selected) < cfg.Budget.Count && len(pool) > 0 {
		if ctx.Err() != nil {
			truncated = true
			break
		}
		bestI := -1
		bestScore := 0.0
		for i, c := range pool {
			gain := 0
			for e := range c.edges {
				if !covered[e] {
					gain++
				}
			}
			score := cfg.Weights.Coverage*float64(gain)/float64(totalEdges) +
				cfg.Weights.Diversity*pattern.MarginalDiversity(selected, c.pat) -
				cfg.Weights.CogLoad*pattern.NormalizedCognitiveLoad(c.pat, cfg.Budget)
			if bestI == -1 || score > bestScore {
				bestI, bestScore = i, score
			}
		}
		chosen := pool[bestI]
		pool = append(pool[:bestI], pool[bestI+1:]...)
		for e := range chosen.edges {
			covered[e] = true
		}
		selected = append(selected, chosen.pat)
		classes = append(classes, chosen.class)
	}
	coverage := 0.0
	if totalEdges > 0 {
		coverage = float64(len(covered)) / float64(totalEdges)
	}
	return selected, classes, coverage, truncated
}
