package tattoo

import (
	"context"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/pattern"
)

func TestSelectCtxCanceledDegradesGracefully(t *testing.T) {
	g := datagen.WattsStrogatz(7, 400, 6, 0.15)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SelectCtx(ctx, g, Config{
		Budget: pattern.Budget{Count: 5, MinSize: 4, MaxSize: 10}, Seed: 2})
	if err != nil {
		t.Fatalf("canceled context must degrade, not error: %v", err)
	}
	if !res.Truncated {
		t.Fatal("canceled run not marked truncated")
	}
}

func TestSelectCtxDeadlineBounded(t *testing.T) {
	// A large network with a short deadline must return promptly with a
	// truncated (possibly empty) pattern set.
	g := datagen.BarabasiAlbert(3, 4000, 6)
	budget := 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	res, err := SelectCtx(ctx, g, Config{
		Budget: pattern.Budget{Count: 8, MinSize: 4, MaxSize: 12}, Seed: 2,
		SamplesPerClass: 100000}) // absurd sampling load: only the deadline stops it
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("deadline run not marked truncated")
	}
	// Truss decomposition runs before the first poll; allow it plus
	// generous scheduler headroom, but rule out unbounded sampling (which
	// would take many seconds at 100k samples/class).
	if elapsed > 5*time.Second {
		t.Fatalf("deadline run took %v", elapsed)
	}
}

func TestSelectCtxBackgroundMatchesSelect(t *testing.T) {
	g := datagen.WattsStrogatz(7, 300, 6, 0.15)
	cfg := Config{Budget: pattern.Budget{Count: 5, MinSize: 4, MaxSize: 10}, Seed: 2}
	plain, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	withCtx, err := SelectCtx(context.Background(), g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if withCtx.Truncated {
		t.Fatal("live context marked truncated")
	}
	if len(plain.Patterns) != len(withCtx.Patterns) {
		t.Fatalf("pattern count diverged: %d vs %d", len(plain.Patterns), len(withCtx.Patterns))
	}
	for i := range plain.Patterns {
		if plain.Patterns[i].Canon() != withCtx.Patterns[i].Canon() {
			t.Fatalf("pattern %d diverged under a live context", i)
		}
	}
}
