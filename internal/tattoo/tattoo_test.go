package tattoo

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func testNetwork() *graph.Graph {
	// A Watts-Strogatz network has both triangle-rich lattice structure
	// (G_T) and rewired sparse parts; add a BA tail for hubs.
	return datagen.WattsStrogatz(7, 400, 6, 0.15)
}

func defaultConfig() Config {
	return Config{
		Budget: pattern.Budget{Count: 8, MinSize: 4, MaxSize: 10},
		Seed:   1,
	}
}

func TestSelectEndToEnd(t *testing.T) {
	g := testNetwork()
	res, err := Select(g, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 || len(res.Patterns) > 8 {
		t.Fatalf("selected %d patterns", len(res.Patterns))
	}
	for i, p := range res.Patterns {
		if p.Size() < 4 || p.Size() > 10 {
			t.Fatalf("pattern %d size %d outside budget", i, p.Size())
		}
		if !p.G.IsConnected() {
			t.Fatalf("pattern %d disconnected", i)
		}
		if !strings.HasPrefix(p.Source, "tattoo:") {
			t.Fatalf("pattern %d source = %q", i, p.Source)
		}
	}
	if res.Coverage <= 0 || res.Coverage > 1 {
		t.Fatalf("coverage = %v", res.Coverage)
	}
	if res.Candidates == 0 {
		t.Fatal("no candidates")
	}
	if len(res.SelectedClasses) != len(res.Patterns) {
		t.Fatal("class annotations missing")
	}
	if res.TrussStats.Edges != g.NumEdges() {
		t.Fatal("truss stats wrong")
	}
	if res.TrussStats.TrussEdges == 0 {
		t.Fatal("WS network must have a truss-infested region")
	}
}

func TestSelectDeterministic(t *testing.T) {
	g := testNetwork()
	a, err := Select(g, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Select(g, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Patterns) != len(b.Patterns) {
		t.Fatalf("counts differ: %d vs %d", len(a.Patterns), len(b.Patterns))
	}
	for i := range a.Patterns {
		if a.Patterns[i].Canon() != b.Patterns[i].Canon() {
			t.Fatalf("pattern %d differs", i)
		}
	}
}

func TestSelectErrors(t *testing.T) {
	if _, err := Select(graph.New("empty"), defaultConfig()); err == nil {
		t.Fatal("edgeless network accepted")
	}
	g := testNetwork()
	if _, err := Select(g, Config{}); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestClassDiversityOnMixedNetwork(t *testing.T) {
	// On a network with both dense and sparse regions, candidates should
	// come from several topology classes.
	g := testNetwork()
	res, err := Select(g, defaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ClassCounts) < 3 {
		t.Fatalf("only %d topology classes produced candidates: %v", len(res.ClassCounts), res.ClassCounts)
	}
}

func TestTriangleFreeNetworkUsesObliviousClasses(t *testing.T) {
	// A tree-like network has no triangles: all candidates must come from
	// truss-oblivious classes.
	g := graph.New("tree")
	g.AddNode("A")
	for v := 1; v < 300; v++ {
		g.AddNode("A")
		g.MustAddEdge(v, (v-1)/2, "-")
	}
	res, err := Select(g, Config{Budget: pattern.Budget{Count: 5, MinSize: 4, MaxSize: 8}, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrussStats.TrussEdges != 0 {
		t.Fatal("tree cannot have truss edges")
	}
	for cls := range res.ClassCounts {
		switch cls {
		case TriangleChain, Petal, Flower, NearClique:
			t.Fatalf("triangle class %s produced candidates on a tree", cls)
		}
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns on tree network")
	}
}

func TestDenseNetworkProducesTriangleClasses(t *testing.T) {
	// A dense ER graph is triangle-rich.
	g := datagen.ErdosRenyi(5, 120, 1200)
	res, err := Select(g, Config{Budget: pattern.Budget{Count: 6, MinSize: 4, MaxSize: 9}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	triangleClasses := 0
	for cls, n := range res.ClassCounts {
		switch cls {
		case TriangleChain, Petal, Flower, NearClique:
			triangleClasses += n
		}
	}
	if triangleClasses == 0 {
		t.Fatal("dense network produced no triangle-class candidates")
	}
}

func TestCoverageGrowsWithBudget(t *testing.T) {
	g := testNetwork()
	cfg := defaultConfig()
	cfg.Budget.Count = 2
	small, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Budget.Count = 12
	large, err := Select(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if large.Coverage < small.Coverage {
		t.Fatalf("coverage shrank with budget: %v -> %v", small.Coverage, large.Coverage)
	}
}

func TestClassesList(t *testing.T) {
	if len(Classes()) != 8 {
		t.Fatalf("Classes() = %v", Classes())
	}
}

func TestInstanceEdgesAreReal(t *testing.T) {
	// Sampled candidate patterns must embed in the network (they were cut
	// out of it), so each selected pattern must occur in g.
	g := datagen.WattsStrogatz(11, 150, 6, 0.1)
	res, err := Select(g, Config{Budget: pattern.Budget{Count: 5, MinSize: 4, MaxSize: 7}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		cov := pattern.GraphCoverage(p, pattern.SingletonCorpus(g), pattern.MatchOptions())
		if cov != 1 {
			t.Fatalf("selected pattern %s does not embed in its own network", p)
		}
	}
}
