package tattoo

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// generator samples topology-class instances from the two truss regions of
// a network. All sampling walks the original graph but is restricted to
// edges of the appropriate region via the trussness array, so no subgraph
// copies are needed.
type generator struct {
	g         *graph.Graph
	trussness []int
	k         int
	budget    pattern.Budget
	rng       *rand.Rand

	trussEdges     []graph.EdgeID // trussness ≥ k
	obliviousEdges []graph.EdgeID // trussness < k
}

func (gen *generator) buildRegionEdgeLists() {
	for id, t := range gen.trussness {
		if t >= gen.k {
			gen.trussEdges = append(gen.trussEdges, id)
		} else {
			gen.obliviousEdges = append(gen.obliviousEdges, id)
		}
	}
}

// inTruss reports whether edge e belongs to the truss-infested region.
func (gen *generator) inTruss(e graph.EdgeID) bool { return gen.trussness[e] >= gen.k }

func (gen *generator) randomEdge(region []graph.EdgeID) (graph.EdgeID, bool) {
	if len(region) == 0 {
		return 0, false
	}
	return region[gen.rng.Intn(len(region))], true
}

// targetSize draws a size (in edges) from the budget range.
func (gen *generator) targetSize() int {
	return gen.budget.MinSize + gen.rng.Intn(gen.budget.MaxSize-gen.budget.MinSize+1)
}

// regionNeighbors calls fn for each incident edge of v in the given region
// (wantTruss selects G_T or G_O).
func (gen *generator) regionNeighbors(v graph.NodeID, wantTruss bool, fn func(nbr graph.NodeID, e graph.EdgeID) bool) {
	gen.g.VisitNeighbors(v, func(nbr graph.NodeID, e graph.EdgeID) bool {
		if gen.inTruss(e) == wantTruss {
			return fn(nbr, e)
		}
		return true
	})
}

// sampleChain samples a simple path in G_O of target length.
func (gen *generator) sampleChain() []graph.EdgeID {
	start, ok := gen.randomEdge(gen.obliviousEdges)
	if !ok {
		return nil
	}
	target := gen.targetSize()
	e := gen.g.Edge(start)
	edges := []graph.EdgeID{start}
	visited := map[graph.NodeID]bool{e.U: true, e.V: true}
	// Extend from both ends alternately.
	ends := [2]graph.NodeID{e.U, e.V}
	for len(edges) < target {
		extended := false
		for side := 0; side < 2 && len(edges) < target; side++ {
			var options []struct {
				n graph.NodeID
				e graph.EdgeID
			}
			gen.regionNeighbors(ends[side], false, func(nbr graph.NodeID, eid graph.EdgeID) bool {
				if !visited[nbr] {
					options = append(options, struct {
						n graph.NodeID
						e graph.EdgeID
					}{nbr, eid})
				}
				return true
			})
			if len(options) == 0 {
				continue
			}
			pick := options[gen.rng.Intn(len(options))]
			visited[pick.n] = true
			edges = append(edges, pick.e)
			ends[side] = pick.n
			extended = true
		}
		if !extended {
			break
		}
	}
	return edges
}

// sampleStar samples a star in G_O: a center and up to target leaf edges.
func (gen *generator) sampleStar() []graph.EdgeID {
	start, ok := gen.randomEdge(gen.obliviousEdges)
	if !ok {
		return nil
	}
	e := gen.g.Edge(start)
	center := e.U
	if gen.g.Degree(e.V) > gen.g.Degree(e.U) {
		center = e.V
	}
	target := gen.targetSize()
	edges := []graph.EdgeID{}
	gen.regionNeighbors(center, false, func(_ graph.NodeID, eid graph.EdgeID) bool {
		edges = append(edges, eid)
		return len(edges) < target
	})
	return edges
}

// sampleTree samples a random tree in G_O by frontier expansion that never
// closes a cycle.
func (gen *generator) sampleTree() []graph.EdgeID {
	start, ok := gen.randomEdge(gen.obliviousEdges)
	if !ok {
		return nil
	}
	target := gen.targetSize()
	e := gen.g.Edge(start)
	edges := []graph.EdgeID{start}
	inTree := map[graph.NodeID]bool{e.U: true, e.V: true}
	nodes := []graph.NodeID{e.U, e.V}
	for len(edges) < target {
		// Random frontier edge from a random tree node.
		perm := gen.rng.Perm(len(nodes))
		added := false
		for _, pi := range perm {
			v := nodes[pi]
			var opts []struct {
				n graph.NodeID
				e graph.EdgeID
			}
			gen.regionNeighbors(v, false, func(nbr graph.NodeID, eid graph.EdgeID) bool {
				if !inTree[nbr] {
					opts = append(opts, struct {
						n graph.NodeID
						e graph.EdgeID
					}{nbr, eid})
				}
				return true
			})
			if len(opts) == 0 {
				continue
			}
			pick := opts[gen.rng.Intn(len(opts))]
			inTree[pick.n] = true
			nodes = append(nodes, pick.n)
			edges = append(edges, pick.e)
			added = true
			break
		}
		if !added {
			break
		}
	}
	return edges
}

// sampleCycle finds a simple cycle through a random G_O edge via a
// depth-limited BFS between its endpoints that avoids the edge itself.
// Cycles of length ≥ 4 live outside triangles, hence G_O.
func (gen *generator) sampleCycle() []graph.EdgeID {
	start, ok := gen.randomEdge(gen.obliviousEdges)
	if !ok {
		return nil
	}
	e := gen.g.Edge(start)
	maxLen := gen.budget.MaxSize - 1 // path edges allowed
	type crumb struct {
		node graph.NodeID
		via  graph.EdgeID
		prev int
	}
	crumbs := []crumb{{node: e.U, via: -1, prev: -1}}
	visited := map[graph.NodeID]bool{e.U: true}
	queue := []int{0}
	depth := map[graph.NodeID]int{e.U: 0}
	for len(queue) > 0 {
		ci := queue[0]
		queue = queue[1:]
		cur := crumbs[ci]
		if depth[cur.node] >= maxLen {
			continue
		}
		found := -1
		gen.g.VisitNeighbors(cur.node, func(nbr graph.NodeID, eid graph.EdgeID) bool {
			if eid == start {
				return true
			}
			if nbr == e.V {
				crumbs = append(crumbs, crumb{node: nbr, via: eid, prev: ci})
				found = len(crumbs) - 1
				return false
			}
			if !visited[nbr] {
				visited[nbr] = true
				depth[nbr] = depth[cur.node] + 1
				crumbs = append(crumbs, crumb{node: nbr, via: eid, prev: ci})
				queue = append(queue, len(crumbs)-1)
			}
			return true
		})
		if found >= 0 {
			edges := []graph.EdgeID{start}
			for i := found; crumbs[i].via >= 0; i = crumbs[i].prev {
				edges = append(edges, crumbs[i].via)
			}
			return edges
		}
	}
	return nil
}

// sampleTriangleChain grows a chain of edge-sharing triangles in G_T.
func (gen *generator) sampleTriangleChain() []graph.EdgeID {
	start, ok := gen.randomEdge(gen.trussEdges)
	if !ok {
		return nil
	}
	target := gen.targetSize()
	edges := map[graph.EdgeID]bool{start: true}
	nodes := map[graph.NodeID]bool{}
	e := gen.g.Edge(start)
	nodes[e.U], nodes[e.V] = true, true
	frontier := []graph.EdgeID{start}
	for len(edges) < target && len(frontier) > 0 {
		// Close a triangle over a random frontier edge.
		fi := gen.rng.Intn(len(frontier))
		base := frontier[fi]
		frontier = append(frontier[:fi], frontier[fi+1:]...)
		be := gen.g.Edge(base)
		var w graph.NodeID = -1
		var e1, e2 graph.EdgeID
		gen.regionNeighbors(be.U, true, func(nbr graph.NodeID, ea graph.EdgeID) bool {
			if nodes[nbr] {
				return true
			}
			if eb, ok := gen.g.EdgeBetween(be.V, nbr); ok && gen.inTruss(eb) {
				w, e1, e2 = nbr, ea, eb
				return false
			}
			return true
		})
		if w < 0 {
			continue
		}
		nodes[w] = true
		if !edges[e1] {
			edges[e1] = true
			frontier = append(frontier, e1)
		}
		if !edges[e2] {
			edges[e2] = true
			frontier = append(frontier, e2)
		}
	}
	if len(edges) < 3 {
		return nil
	}
	return edgeKeys(edges)
}

// samplePetal builds a petal: two anchor nodes joined by an edge and by
// several internally disjoint 2-paths (their common neighbors in G_T).
func (gen *generator) samplePetal() []graph.EdgeID {
	start, ok := gen.randomEdge(gen.trussEdges)
	if !ok {
		return nil
	}
	e := gen.g.Edge(start)
	target := gen.targetSize()
	edges := []graph.EdgeID{start}
	gen.regionNeighbors(e.U, true, func(nbr graph.NodeID, ea graph.EdgeID) bool {
		if nbr == e.V {
			return true
		}
		eb, ok := gen.g.EdgeBetween(e.V, nbr)
		if !ok || !gen.inTruss(eb) {
			return true
		}
		if len(edges)+2 > target {
			return false
		}
		edges = append(edges, ea, eb)
		return true
	})
	if len(edges) < 5 { // at least two petals (1 + 2·2)
		return nil
	}
	return edges
}

// sampleFlower combines a triangle at a center node with star edges
// radiating from it (petal + chains around a core, after the query-log
// taxonomy).
func (gen *generator) sampleFlower() []graph.EdgeID {
	start, ok := gen.randomEdge(gen.trussEdges)
	if !ok {
		return nil
	}
	e := gen.g.Edge(start)
	center := e.U
	// Find a triangle through the center.
	var tri []graph.EdgeID
	gen.regionNeighbors(center, true, func(nbr graph.NodeID, ea graph.EdgeID) bool {
		gen.regionNeighbors(nbr, true, func(nbr2 graph.NodeID, eb graph.EdgeID) bool {
			if nbr2 == center {
				return true
			}
			if ec, ok := gen.g.EdgeBetween(center, nbr2); ok && gen.inTruss(ec) {
				tri = []graph.EdgeID{ea, eb, ec}
				return false
			}
			return true
		})
		return tri == nil
	})
	if tri == nil {
		return nil
	}
	target := gen.targetSize()
	edges := map[graph.EdgeID]bool{tri[0]: true, tri[1]: true, tri[2]: true}
	// Radiate leaves from the center (any region).
	gen.g.VisitNeighbors(center, func(_ graph.NodeID, eid graph.EdgeID) bool {
		if len(edges) >= target {
			return false
		}
		edges[eid] = true
		return true
	})
	if len(edges) < 4 {
		return nil
	}
	return edgeKeys(edges)
}

// sampleNearClique grows a dense subgraph in G_T: starting from a triangle,
// repeatedly absorb the neighbor adjacent to the most selected nodes,
// keeping all induced region edges.
func (gen *generator) sampleNearClique() []graph.EdgeID {
	start, ok := gen.randomEdge(gen.trussEdges)
	if !ok {
		return nil
	}
	e := gen.g.Edge(start)
	members := []graph.NodeID{e.U, e.V}
	inMembers := map[graph.NodeID]bool{e.U: true, e.V: true}
	target := gen.targetSize()
	for {
		// Candidate: neighbor of a member adjacent to ≥2 members.
		var best graph.NodeID = -1
		bestAdj := 1
		for _, v := range members {
			gen.regionNeighbors(v, true, func(nbr graph.NodeID, _ graph.EdgeID) bool {
				if inMembers[nbr] {
					return true
				}
				adj := 0
				for _, u := range members {
					if eid, ok := gen.g.EdgeBetween(nbr, u); ok && gen.inTruss(eid) {
						adj++
					}
				}
				if adj > bestAdj {
					best, bestAdj = nbr, adj
				}
				return true
			})
		}
		if best < 0 {
			break
		}
		// Count edges if we add best.
		added := 0
		for _, u := range members {
			if eid, ok := gen.g.EdgeBetween(best, u); ok && gen.inTruss(eid) {
				added++
			}
		}
		if currentInducedEdges(gen, members)+added > target {
			break
		}
		members = append(members, best)
		inMembers[best] = true
		if len(members) > 8 {
			break
		}
	}
	if len(members) < 3 {
		return nil
	}
	var edges []graph.EdgeID
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if eid, ok := gen.g.EdgeBetween(members[i], members[j]); ok && gen.inTruss(eid) {
				edges = append(edges, eid)
			}
		}
	}
	return edges
}

func currentInducedEdges(gen *generator, members []graph.NodeID) int {
	c := 0
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			if eid, ok := gen.g.EdgeBetween(members[i], members[j]); ok && gen.inTruss(eid) {
				c++
			}
		}
	}
	return c
}

// edgeKeys returns the map keys sorted for determinism.
func edgeKeys(m map[graph.EdgeID]bool) []graph.EdgeID {
	out := make([]graph.EdgeID, 0, len(m))
	for e := range m {
		out = append(out, e)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
