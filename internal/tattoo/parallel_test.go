package tattoo

import (
	"testing"
)

// TestSelectWorkerCountInvariant requires Workers: 8 to produce exactly the
// selection of Workers: 1 — the per-class child-RNG design makes candidate
// streams a pure function of (Seed, class), independent of scheduling.
func TestSelectWorkerCountInvariant(t *testing.T) {
	g := testNetwork()
	base := defaultConfig()
	base.Seed = 99

	seq := base
	seq.Workers = 1
	want, err := Select(g, seq)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{0, 2, 8} {
		cfg := base
		cfg.Workers = workers
		got, err := Select(g, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Candidates != want.Candidates {
			t.Fatalf("workers=%d: %d candidates, sequential %d", workers, got.Candidates, want.Candidates)
		}
		if got.Coverage != want.Coverage {
			t.Fatalf("workers=%d: coverage %v, sequential %v", workers, got.Coverage, want.Coverage)
		}
		if len(got.Patterns) != len(want.Patterns) {
			t.Fatalf("workers=%d: %d patterns, sequential %d", workers, len(got.Patterns), len(want.Patterns))
		}
		for i := range want.Patterns {
			if got.Patterns[i].Canon() != want.Patterns[i].Canon() {
				t.Fatalf("workers=%d: pattern %d differs from sequential", workers, i)
			}
			if got.Patterns[i].Support != want.Patterns[i].Support {
				t.Fatalf("workers=%d: pattern %d support %d != %d", workers, i, got.Patterns[i].Support, want.Patterns[i].Support)
			}
			if got.SelectedClasses[i] != want.SelectedClasses[i] {
				t.Fatalf("workers=%d: pattern %d class %s != %s", workers, i, got.SelectedClasses[i], want.SelectedClasses[i])
			}
		}
		for class, n := range want.ClassCounts {
			if got.ClassCounts[class] != n {
				t.Fatalf("workers=%d: class %s count %d != %d", workers, class, got.ClassCounts[class], n)
			}
		}
	}
}
