// Package par is the repository's single bounded-parallelism idiom: a
// deterministic fork-join worker pool shared by every hot path (pattern
// coverage sweeps, cluster distance matrices, graphlet censuses, truss
// support counting, candidate generation fan-out).
//
// Determinism is by construction, not by luck:
//
//   - results are slot-indexed — worker i writes only out[i] (or its own
//     contiguous chunk), so the collected output is identical regardless of
//     how goroutines are scheduled;
//   - randomized tasks take per-task child RNGs derived with ChildSeed, so
//     a task's random stream depends only on (seed, task index), never on
//     which worker ran it or in what order.
//
// Together these guarantee that any workers value — including 1 — produces
// byte-identical results, which the determinism tests in the consuming
// packages assert.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves an effective worker count for n independent tasks:
// workers <= 0 means GOMAXPROCS, and the count never exceeds n.
func Workers(workers, n int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Grain resolves a worker count for n tasks that are individually cheap:
// on top of the Workers resolution it caps the pool at n/grain, so a stage
// only fans out once every worker has at least `grain` tasks' worth of
// work. Below that threshold goroutine + slot bookkeeping costs more than
// the tasks themselves (the CorpusGFD and catapult scoring regressions in
// BENCH_parallel.json), and the stage runs inline. grain <= 1 is a no-op.
func Grain(workers, n, grain int) int {
	w := Workers(workers, n)
	if grain > 1 {
		if max := n / grain; w > max {
			w = max
		}
		if w < 1 {
			w = 1
		}
	}
	return w
}

// ForEachN runs fn(i) for every i in [0, n) on a bounded pool. Indices are
// claimed dynamically (atomic counter), which balances uneven task costs —
// the right shape for per-pattern isomorphism sweeps where one task can be
// orders of magnitude slower than another. fn must only write to
// slot-indexed state (out[i]) for the result to be deterministic.
// workers <= 0 means GOMAXPROCS; workers == 1 runs inline with no
// goroutines.
func ForEachN(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachChunk partitions [0, n) into at most `workers` contiguous chunks
// and runs fn(lo, hi) per chunk — the right shape for loops of many cheap
// items (per-edge support counts, per-cell distance rows) where per-index
// dispatch overhead would dominate. Chunk boundaries depend only on n and
// workers, so slot-indexed writes remain deterministic. workers <= 0 means
// GOMAXPROCS; a single chunk runs inline.
func ForEachChunk(n, workers int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = Workers(workers, n)
	if workers == 1 {
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// Map computes [fn(0), ..., fn(n-1)] on a bounded pool, slot-indexed so the
// output order is scheduling-independent.
func Map[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEachN(n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// ChildSeed derives a statistically independent child seed for task i of a
// run seeded with seed, using a splitmix64 finalizer. Sequential and
// parallel executions hand task i the same RNG stream, which is what keeps
// randomized fan-outs (candidate walks per CSG, per-class topology
// sampling) reproducible at any worker count.
func ChildSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return int64(z)
}
