package par

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0,100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3,100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8,3) = %d, want 3", got)
	}
	if got := Workers(4, 100); got != 4 {
		t.Fatalf("Workers(4,100) = %d, want 4", got)
	}
	if got := Workers(5, 0); got != 1 {
		t.Fatalf("Workers(5,0) = %d, want 1", got)
	}
}

func TestForEachNCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 7, 64} {
		const n = 1000
		counts := make([]int64, n)
		ForEachN(n, workers, func(i int) {
			atomic.AddInt64(&counts[i], 1)
		})
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachNEmpty(t *testing.T) {
	called := false
	ForEachN(0, 4, func(int) { called = true })
	ForEachN(-5, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachChunkCoversRangeExactly(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 16} {
		for _, n := range []int{1, 2, 10, 97, 1000} {
			seen := make([]int64, n)
			ForEachChunk(n, workers, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt64(&seen[i], 1)
				}
			})
			for i, c := range seen {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestMapSlotIndexedDeterministic(t *testing.T) {
	fn := func(i int) int { return i * i }
	want := Map(500, 1, fn)
	for _, workers := range []int{0, 2, 5, 32} {
		got := Map(500, workers, fn)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Map output differs from sequential", workers)
		}
	}
}

func TestChildSeedStable(t *testing.T) {
	// Same (seed, index) always yields the same child; distinct indices and
	// distinct parents yield distinct children.
	if ChildSeed(7, 3) != ChildSeed(7, 3) {
		t.Fatal("ChildSeed not a pure function")
	}
	seen := make(map[int64]bool)
	for seed := int64(0); seed < 8; seed++ {
		for i := 0; i < 64; i++ {
			s := ChildSeed(seed, i)
			if seen[s] {
				t.Fatalf("collision at seed=%d i=%d", seed, i)
			}
			seen[s] = true
		}
	}
}

func TestChildSeedStreamsIndependentOfWorkers(t *testing.T) {
	draw := func(workers int) [][]float64 {
		out := make([][]float64, 16)
		ForEachN(16, workers, func(i int) {
			rng := rand.New(rand.NewSource(ChildSeed(42, i)))
			row := make([]float64, 8)
			for j := range row {
				row[j] = rng.Float64()
			}
			out[i] = row
		})
		return out
	}
	want := draw(1)
	for _, workers := range []int{2, 8} {
		if got := draw(workers); !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: child RNG streams differ from sequential", workers)
		}
	}
}

// TestStressRace hammers the pool with many small mixed invocations; run
// under -race this is the package's data-race smoke test.
func TestStressRace(t *testing.T) {
	for round := 0; round < 50; round++ {
		n := 1 + round%17
		sum := int64(0)
		ForEachN(n, 0, func(i int) { atomic.AddInt64(&sum, int64(i)) })
		want := int64(n*(n-1)) / 2
		if sum != want {
			t.Fatalf("round %d: sum = %d, want %d", round, sum, want)
		}
		total := int64(0)
		ForEachChunk(n*3, 4, func(lo, hi int) { atomic.AddInt64(&total, int64(hi-lo)) })
		if total != int64(n*3) {
			t.Fatalf("round %d: chunk cover = %d, want %d", round, total, n*3)
		}
		_ = Map(n, 3, func(i int) int { return i })
	}
}
