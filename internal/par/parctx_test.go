package par

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachNCtxCompletesLikePlain(t *testing.T) {
	const n = 500
	for _, workers := range []int{1, 4, 0} {
		out := make([]int, n)
		if err := ForEachNCtx(context.Background(), n, workers, func(i int) {
			out[i] = i * i
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, out[i])
			}
		}
	}
}

func TestForEachNCtxPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := ForEachNCtx(ctx, 100, 4, func(i int) { atomic.AddInt64(&ran, 1) })
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	// Workers may each claim at most one task before observing
	// cancellation; the bulk of the work must not run.
	if ran > 16 {
		t.Fatalf("%d tasks ran under a pre-canceled context", ran)
	}
}

func TestForEachNCtxStopsDispatching(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	const n = 10000
	var ran int64
	err := ForEachNCtx(ctx, n, 4, func(i int) {
		if atomic.AddInt64(&ran, 1) == 8 {
			cancel()
		}
		time.Sleep(100 * time.Microsecond)
	})
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if got := atomic.LoadInt64(&ran); got >= n {
		t.Fatalf("cancellation did not stop dispatch: %d/%d tasks ran", got, n)
	}
}

func TestForEachNCtxCompletedSlotsDeterministic(t *testing.T) {
	// Tasks that do run must compute exactly what the plain variant would:
	// re-run with cancellation and verify every written slot agrees with
	// the sequential reference.
	const n = 2000
	ref := make([]int64, n)
	for i := range ref {
		ref[i] = ChildSeed(42, i)
	}
	ctx, cancel := context.WithCancel(context.Background())
	out := make([]int64, n)
	var ran int64
	_ = ForEachNCtx(ctx, n, 8, func(i int) {
		out[i] = ChildSeed(42, i)
		if atomic.AddInt64(&ran, 1) == 50 {
			cancel()
		}
	})
	for i := range out {
		if out[i] != 0 && out[i] != ref[i] {
			t.Fatalf("slot %d diverged under cancellation", i)
		}
	}
}

func TestForEachChunkCtx(t *testing.T) {
	const n = 1000
	out := make([]int, n)
	if err := ForEachChunkCtx(context.Background(), n, 4, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i + 1
		}
	}); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != i+1 {
			t.Fatalf("slot %d = %d", i, out[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	if err := ForEachChunkCtx(ctx, n, 4, func(lo, hi int) { atomic.AddInt64(&ran, 1) }); err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if ran != 0 {
		t.Fatalf("%d chunks dispatched under a pre-canceled context", ran)
	}
}

func TestMapCtx(t *testing.T) {
	got, err := MapCtx(context.Background(), 64, 4, func(i int) int { return i * 3 })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*3 {
			t.Fatalf("slot %d = %d", i, v)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := MapCtx(ctx, 64, 4, func(i int) int { return i + 1 })
	if err != context.Canceled {
		t.Fatalf("err = %v", err)
	}
	if len(partial) != 64 {
		t.Fatalf("len = %d", len(partial))
	}
}
