package par

// Context-aware variants of the pool primitives. They preserve the
// slot-indexed determinism contract for every task that runs: a task either
// executes exactly as it would under the plain variant (same index, same
// ChildSeed stream) or does not start at all. Cancellation only affects
// *which* tasks run — never what an executed task computes — so partial
// results remain byte-identical to a prefix-complete run at any worker
// count.
//
// Cancellation is checked before each task is claimed; a task already
// running is never interrupted (pass the context into the task itself via
// isomorph.Options.Ctx or similar when intra-task cancellation matters).

import (
	"context"
	"sync"
	"sync/atomic"
)

// ForEachNCtx is ForEachN with cooperative cancellation: workers stop
// claiming new indices once ctx is done and the call returns ctx.Err().
// Slots whose task completed hold valid results; the caller decides whether
// a partial result is usable (the repo's pipelines treat it as a sound
// under-approximation and mark the outcome truncated).
func ForEachNCtx(ctx context.Context, n, workers int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			fn(i)
		}
		return ctx.Err()
	}
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForEachChunkCtx is ForEachChunk with cooperative cancellation, checked
// before each chunk is dispatched. Chunk boundaries are identical to
// ForEachChunk's, so completed chunks are byte-identical to the plain run.
func ForEachChunkCtx(ctx context.Context, n, workers int, fn func(lo, hi int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers, n)
	if workers == 1 {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		fn(0, n)
		return ctx.Err()
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		if ctx.Err() != nil {
			break
		}
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return ctx.Err()
}

// MapCtx is Map with cooperative cancellation. The returned slice always
// has length n; on cancellation, slots whose task did not run hold the zero
// value and the error is ctx.Err(). done[i] semantics are intentionally not
// reported — callers that need per-slot validity should fold a sentinel
// into T.
func MapCtx[T any](ctx context.Context, n, workers int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	err := ForEachNCtx(ctx, n, workers, func(i int) {
		out[i] = fn(i)
	})
	return out, err
}
