// Package workload generates subgraph-query workloads whose topology mix
// follows the published analysis of large real-world SPARQL query logs
// (Bonifati, Martens, Timm — the study TATTOO builds its candidate
// taxonomy on): real visual queries are overwhelmingly chains and stars,
// with trees, cycles, petals and flowers making up the tail.
//
// Generated queries carry labels sampled from a data source (corpus or
// network) so they are answerable against it, and each query is annotated
// with its topology class, letting the usability experiments report
// formulation effort per class.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Topology names a query shape class.
type Topology string

// Query topology classes, after the query-log taxonomy.
const (
	Chain  Topology = "chain"
	Star   Topology = "star"
	Tree   Topology = "tree"
	Cycle  Topology = "cycle"
	Petal  Topology = "petal"
	Flower Topology = "flower"
)

// DefaultMix approximates the published query-log shape distribution:
// chains dominate, then stars; complex shapes are rare.
func DefaultMix() map[Topology]float64 {
	return map[Topology]float64{
		Chain:  0.55,
		Star:   0.25,
		Tree:   0.10,
		Cycle:  0.05,
		Petal:  0.03,
		Flower: 0.02,
	}
}

// Query is one generated query with its class annotation.
type Query struct {
	G     *graph.Graph
	Class Topology
}

// LabelSource supplies node and edge labels for generated queries. Use
// FromCorpus or FromGraph, or provide custom pools.
type LabelSource struct {
	NodeLabels []string
	EdgeLabels []string
}

// FromCorpus builds a label source from corpus-wide label frequencies
// (most frequent first, so sampling is realistic).
func FromCorpus(c *graph.Corpus) LabelSource {
	stats := c.Stats()
	return LabelSource{
		NodeLabels: stats.SortedNodeLabels(),
		EdgeLabels: stats.SortedEdgeLabels(),
	}
}

// FromGraph builds a label source from a single network.
func FromGraph(g *graph.Graph) LabelSource {
	stats := graph.CorpusStats{NodeLabels: g.NodeLabels(), EdgeLabels: g.EdgeLabels()}
	return LabelSource{
		NodeLabels: stats.SortedNodeLabels(),
		EdgeLabels: stats.SortedEdgeLabels(),
	}
}

func (ls LabelSource) node(rng *rand.Rand) string {
	if len(ls.NodeLabels) == 0 {
		return ""
	}
	// Zipf-ish: prefer the head of the frequency-sorted list.
	i := int(float64(len(ls.NodeLabels)) * rng.Float64() * rng.Float64())
	return ls.NodeLabels[i]
}

func (ls LabelSource) edge(rng *rand.Rand) string {
	if len(ls.EdgeLabels) == 0 {
		return ""
	}
	i := int(float64(len(ls.EdgeLabels)) * rng.Float64() * rng.Float64())
	return ls.EdgeLabels[i]
}

// Options configure generation.
type Options struct {
	// Mix is the topology distribution (nil = DefaultMix). Weights need
	// not sum to 1; they are normalized.
	Mix map[Topology]float64
	// MinNodes/MaxNodes bound query size (0 = 4..10).
	MinNodes, MaxNodes int
}

func (o *Options) defaults() {
	if o.Mix == nil {
		o.Mix = DefaultMix()
	}
	if o.MinNodes == 0 {
		o.MinNodes = 4
	}
	if o.MaxNodes == 0 {
		o.MaxNodes = 10
	}
}

// Generate produces n queries with the configured topology mix.
func Generate(n int, ls LabelSource, opts Options, seed int64) ([]Query, error) {
	opts.defaults()
	if opts.MinNodes < 3 || opts.MaxNodes < opts.MinNodes {
		return nil, fmt.Errorf("workload: node range [%d,%d] invalid (min 3)", opts.MinNodes, opts.MaxNodes)
	}
	// Normalize the mix into a cumulative distribution over a stable
	// topology order.
	order := []Topology{Chain, Star, Tree, Cycle, Petal, Flower}
	total := 0.0
	for _, t := range order {
		total += opts.Mix[t]
	}
	if total <= 0 {
		return nil, fmt.Errorf("workload: empty topology mix")
	}
	rng := rand.New(rand.NewSource(seed))
	queries := make([]Query, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * total
		var class Topology
		for _, t := range order {
			x -= opts.Mix[t]
			if x < 0 {
				class = t
				break
			}
		}
		if class == "" {
			class = Chain
		}
		size := opts.MinNodes + rng.Intn(opts.MaxNodes-opts.MinNodes+1)
		g := build(class, size, ls, rng)
		g.SetName(fmt.Sprintf("q%d-%s", i, class))
		queries = append(queries, Query{G: g, Class: class})
	}
	return queries, nil
}

// build constructs one query graph of the given class with ~size nodes.
func build(class Topology, size int, ls LabelSource, rng *rand.Rand) *graph.Graph {
	g := graph.New("q")
	switch class {
	case Chain:
		g.AddNode(ls.node(rng))
		for v := 1; v < size; v++ {
			g.AddNode(ls.node(rng))
			g.MustAddEdge(v-1, v, ls.edge(rng))
		}
	case Star:
		c := g.AddNode(ls.node(rng))
		for v := 1; v < size; v++ {
			l := g.AddNode(ls.node(rng))
			g.MustAddEdge(c, l, ls.edge(rng))
		}
	case Tree:
		g.AddNode(ls.node(rng))
		for v := 1; v < size; v++ {
			parent := rng.Intn(v)
			g.AddNode(ls.node(rng))
			g.MustAddEdge(parent, v, ls.edge(rng))
		}
	case Cycle:
		for v := 0; v < size; v++ {
			g.AddNode(ls.node(rng))
		}
		for v := 0; v < size; v++ {
			g.MustAddEdge(v, (v+1)%size, ls.edge(rng))
		}
	case Petal:
		// Two anchors joined by an edge and by (size-2) internally
		// disjoint 2-paths.
		u := g.AddNode(ls.node(rng))
		v := g.AddNode(ls.node(rng))
		g.MustAddEdge(u, v, ls.edge(rng))
		for k := 2; k < size; k++ {
			w := g.AddNode(ls.node(rng))
			g.MustAddEdge(u, w, ls.edge(rng))
			g.MustAddEdge(w, v, ls.edge(rng))
		}
	case Flower:
		// A triangle core with star rays from one core node.
		a := g.AddNode(ls.node(rng))
		b := g.AddNode(ls.node(rng))
		c := g.AddNode(ls.node(rng))
		g.MustAddEdge(a, b, ls.edge(rng))
		g.MustAddEdge(b, c, ls.edge(rng))
		g.MustAddEdge(a, c, ls.edge(rng))
		for v := 3; v < size; v++ {
			l := g.AddNode(ls.node(rng))
			g.MustAddEdge(a, l, ls.edge(rng))
		}
	}
	return g
}

// ClassCounts tallies the classes of a generated workload.
func ClassCounts(qs []Query) map[Topology]int {
	out := make(map[Topology]int)
	for _, q := range qs {
		out[q.Class]++
	}
	return out
}
