package workload

import (
	"testing"

	"repro/internal/datagen"
)

func source() LabelSource {
	return FromCorpus(datagen.ChemicalCorpus(1, 10, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14}))
}

func TestGenerateMixProportions(t *testing.T) {
	qs, err := Generate(2000, source(), Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	counts := ClassCounts(qs)
	if counts[Chain] < counts[Star] || counts[Star] < counts[Tree] {
		t.Fatalf("mix violates log proportions: %v", counts)
	}
	// Every class appears at this sample size.
	for _, cls := range []Topology{Chain, Star, Tree, Cycle, Petal, Flower} {
		if counts[cls] == 0 {
			t.Fatalf("class %s never generated: %v", cls, counts)
		}
	}
	// Chains should be roughly 55% ± 5pp.
	frac := float64(counts[Chain]) / 2000
	if frac < 0.50 || frac > 0.60 {
		t.Fatalf("chain fraction %v, want ≈0.55", frac)
	}
}

func TestGeneratedShapes(t *testing.T) {
	qs, err := Generate(300, source(), Options{MinNodes: 5, MaxNodes: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		g := q.G
		if !g.IsConnected() {
			t.Fatalf("%s: disconnected", g.Name())
		}
		if g.NumNodes() < 5 && q.Class != Petal && q.Class != Flower {
			t.Fatalf("%s: %d nodes below range", g.Name(), g.NumNodes())
		}
		switch q.Class {
		case Chain:
			if g.NumEdges() != g.NumNodes()-1 || g.MaxDegree() > 2 {
				t.Fatalf("%s: not a chain", g.Name())
			}
		case Star:
			if g.MaxDegree() != g.NumNodes()-1 {
				t.Fatalf("%s: not a star", g.Name())
			}
		case Tree:
			if g.NumEdges() != g.NumNodes()-1 {
				t.Fatalf("%s: not a tree", g.Name())
			}
		case Cycle:
			if g.NumEdges() != g.NumNodes() || g.MaxDegree() != 2 {
				t.Fatalf("%s: not a cycle", g.Name())
			}
		case Petal:
			// 2 anchors + k midpoints: m = 1 + 2k, every midpoint degree 2.
			if g.NumEdges() != 1+2*(g.NumNodes()-2) {
				t.Fatalf("%s: not a petal (%d nodes %d edges)", g.Name(), g.NumNodes(), g.NumEdges())
			}
		case Flower:
			if g.CountTriangles() < 1 {
				t.Fatalf("%s: flower without core triangle", g.Name())
			}
		}
		// Labels drawn from the source.
		for v := 0; v < g.NumNodes(); v++ {
			if g.NodeLabel(v) == "" {
				t.Fatalf("%s: empty label", g.Name())
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(50, source(), Options{}, 9)
	b, _ := Generate(50, source(), Options{}, 9)
	for i := range a {
		if a[i].Class != b[i].Class || a[i].G.Dump() != b[i].G.Dump() {
			t.Fatal("generation nondeterministic")
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(5, source(), Options{MinNodes: 2, MaxNodes: 5}, 1); err == nil {
		t.Fatal("min below 3 accepted")
	}
	if _, err := Generate(5, source(), Options{Mix: map[Topology]float64{}, MinNodes: 4, MaxNodes: 6}, 1); err == nil {
		t.Fatal("empty mix accepted")
	}
	// Custom single-class mix.
	qs, err := Generate(20, source(), Options{Mix: map[Topology]float64{Cycle: 1}}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.Class != Cycle {
			t.Fatal("mix ignored")
		}
	}
}

func TestFromGraphSource(t *testing.T) {
	g := datagen.BarabasiAlbert(1, 100, 2)
	ls := FromGraph(g)
	if len(ls.NodeLabels) == 0 || len(ls.EdgeLabels) == 0 {
		t.Fatalf("label source empty: %+v", ls)
	}
	qs, err := Generate(10, ls, Options{}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(qs) != 10 {
		t.Fatal("generation failed")
	}
}

func TestEmptyLabelSource(t *testing.T) {
	// Wildcard-only queries are still valid (labels "").
	qs, err := Generate(5, LabelSource{}, Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range qs {
		if q.G.NumNodes() == 0 {
			t.Fatal("empty query")
		}
	}
}
