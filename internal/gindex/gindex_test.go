package gindex

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

func testCorpus() *graph.Corpus {
	return datagen.ChemicalCorpus(3, 80, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
}

// bruteSearch scans every graph with VF2.
func bruteSearch(c *graph.Corpus, q *graph.Graph, opts isomorph.Options) []string {
	var out []string
	c.Each(func(_ int, g *graph.Graph) {
		if isomorph.Exists(q, g, opts) {
			out = append(out, g.Name())
		}
	})
	return out
}

func TestSearchMatchesBruteForce(t *testing.T) {
	c := testCorpus()
	idx := Build(c)
	rng := rand.New(rand.NewSource(5))
	opts := pattern.MatchOptions()
	for trial := 0; trial < 30; trial++ {
		src := c.Graph(rng.Intn(c.Len()))
		q := datagen.RandomConnectedSubgraph(rng, src, 3+rng.Intn(5))
		if q == nil {
			continue
		}
		got := idx.Search(q, opts)
		want := bruteSearch(c, q, opts)
		sort.Strings(got.Matches)
		sort.Strings(want)
		if !reflect.DeepEqual(got.Matches, want) {
			t.Fatalf("trial %d: index %v vs brute %v\nquery:\n%s", trial, got.Matches, want, q.Dump())
		}
		if got.Candidates > got.Scanned {
			t.Fatal("more candidates than corpus graphs")
		}
	}
}

func TestCandidatesAreSuperset(t *testing.T) {
	c := testCorpus()
	idx := Build(c)
	rng := rand.New(rand.NewSource(9))
	opts := pattern.MatchOptions()
	for trial := 0; trial < 20; trial++ {
		src := c.Graph(rng.Intn(c.Len()))
		q := datagen.RandomConnectedSubgraph(rng, src, 4)
		if q == nil {
			continue
		}
		candSet := map[int]bool{}
		for _, gi := range idx.Candidates(q) {
			candSet[gi] = true
		}
		c.Each(func(gi int, g *graph.Graph) {
			if isomorph.Exists(q, g, opts) && !candSet[gi] {
				t.Fatalf("false dismissal: %s matches but filtered out", g.Name())
			}
		})
	}
}

func TestFilteringIsEffective(t *testing.T) {
	c := testCorpus()
	idx := Build(c)
	// A query with a rare label (Br) should prune most of the corpus.
	q := graph.New("q")
	q.AddNode("Br")
	q.AddNode("C")
	q.MustAddEdge(0, 1, "s")
	ratio := idx.FilterRatio(q)
	if ratio < 0.3 {
		t.Fatalf("rare-label filter ratio = %v, expected substantial pruning", ratio)
	}
	// A wildcard-only query prunes nothing beyond size bounds.
	wq := graph.New("w")
	wq.AddNode(isomorph.Wildcard)
	wq.AddNode(isomorph.Wildcard)
	wq.MustAddEdge(0, 1, isomorph.Wildcard)
	if idx.FilterRatio(wq) > 0.1 {
		t.Fatalf("wildcard query over-pruned: %v", idx.FilterRatio(wq))
	}
}

func TestAbsentLabelShortCircuits(t *testing.T) {
	c := testCorpus()
	idx := Build(c)
	q := graph.New("q")
	q.AddNode("Xe") // not in the generator's alphabet
	q.AddNode("C")
	q.MustAddEdge(0, 1, "s")
	if cands := idx.Candidates(q); len(cands) != 0 {
		t.Fatalf("absent label produced %d candidates", len(cands))
	}
	res := idx.Search(q, pattern.MatchOptions())
	if len(res.Matches) != 0 || res.Candidates != 0 {
		t.Fatalf("search = %+v", res)
	}
}

func TestEmptyQueryAndCorpus(t *testing.T) {
	idx := Build(testCorpus())
	res := idx.Search(graph.New("empty"), pattern.MatchOptions())
	if len(res.Matches) != 0 {
		t.Fatal("empty query must match nothing")
	}
	emptyIdx := Build(graph.NewCorpus())
	if emptyIdx.FilterRatio(graph.New("q")) != 0 {
		t.Fatal("empty corpus ratio")
	}
}

func BenchmarkIndexedVsScan(b *testing.B) {
	c := datagen.ChemicalCorpus(1, 400, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
	idx := Build(c)
	rng := rand.New(rand.NewSource(1))
	q := datagen.RandomConnectedSubgraph(rng, c.Graph(0), 5)
	opts := pattern.MatchOptions()
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.Search(q, opts)
		}
	})
	b.Run("scan", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bruteSearch(c, q, opts)
		}
	})
}
