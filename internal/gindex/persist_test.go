package gindex

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/ann"
	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

// sectionsMap packages EncodeSections output the way core offers it to
// RestoreSharded.
func sectionsMap(secs [][]byte) map[int][]byte {
	m := make(map[int][]byte, len(secs))
	for s, b := range secs {
		m[s] = b
	}
	return m
}

// TestSectionRoundTripMatchesBuild: an index restored entirely from its
// own sections answers every query — exact search and ANN similarity —
// identically to the freshly built index it was encoded from.
func TestSectionRoundTripMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	opts := pattern.MatchOptions()
	annCfg := ann.Config{Tables: 4, Bits: 6, Seed: 3}
	for _, n := range []int{1, 17, 60} {
		c := datagen.ChemicalCorpus(int64(n), n, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
		built := BuildShardedANN(c, 4, 2, annCfg)
		secs := built.EncodeSections()
		restored, rep := RestoreSharded(c, 4, 2, &annCfg, sectionsMap(secs))
		if rep.Rebuilt != 0 {
			t.Fatalf("n=%d: %d shards rebuilt on clean restore (%v)", n, rep.Rebuilt, rep.RebuiltShards)
		}
		if rep.Restored != 4 {
			t.Fatalf("n=%d: Restored = %d, want 4", n, rep.Restored)
		}
		for _, q := range randomQueries(rng, c, 6) {
			want := built.Search(q, opts)
			got := restored.Search(q, opts)
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				t.Fatalf("n=%d: search mismatch: got %v want %v", n, got.Matches, want.Matches)
			}
			wantSim, err := built.Similar(q, SimilarOptions{K: 5})
			if err != nil {
				t.Fatal(err)
			}
			gotSim, err := restored.Similar(q, SimilarOptions{K: 5})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotSim.Matches, wantSim.Matches) {
				t.Fatalf("n=%d: similar mismatch: got %v want %v", n, gotSim.Matches, wantSim.Matches)
			}
		}
	}
}

// TestSectionRestoreNeverHydrates: restoring from sections must not touch
// a single graph — that is the entire point of the mmap boot path.
func TestSectionRestoreNeverHydrates(t *testing.T) {
	c := datagen.ChemicalCorpus(5, 30, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	built := BuildSharded(c, 4, 2)
	secs := built.EncodeSections()

	lazy := graph.NewCorpus()
	c.EachName(func(i int, name string) {
		g := c.Graph(i)
		if err := lazy.AddLazy(name, func() (*graph.Graph, error) {
			t.Errorf("restore hydrated graph %s", name)
			return g, nil
		}); err != nil {
			t.Fatal(err)
		}
	})
	_, rep := RestoreSharded(lazy, 4, 2, nil, sectionsMap(secs))
	if rep.Rebuilt != 0 {
		t.Fatalf("%d shards rebuilt, want 0", rep.Rebuilt)
	}
}

// TestCorruptSectionRebuildsShard: a section that fails structural
// validation falls back to rebuilding exactly that shard, and answers
// stay correct.
func TestCorruptSectionRebuildsShard(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	opts := pattern.MatchOptions()
	c := datagen.ChemicalCorpus(3, 40, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	built := BuildSharded(c, 4, 2)
	secs := built.EncodeSections()

	cases := map[string]func(m map[int][]byte){
		"truncated":   func(m map[int][]byte) { m[1] = m[1][:len(m[1])/2] },
		"bad version": func(m map[int][]byte) { b := append([]byte(nil), m[1]...); b[0] = 99; m[1] = b },
		"missing":     func(m map[int][]byte) { delete(m, 1) },
		"trailing bit": func(m map[int][]byte) {
			// Flip a high bit in some bitset word so a position past the
			// shard's graph count is set.
			b := append([]byte(nil), m[1]...)
			b[len(b)-2] ^= 0xFF
			m[1] = b
		},
	}
	for name, corrupt := range cases {
		m := sectionsMap(built.EncodeSections())
		corrupt(m)
		restored, rep := RestoreSharded(c, 4, 2, nil, m)
		if rep.Rebuilt == 0 {
			t.Fatalf("%s: no shard rebuilt", name)
		}
		for _, q := range randomQueries(rng, c, 4) {
			want := built.Search(q, opts)
			got := restored.Search(q, opts)
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				t.Fatalf("%s: search mismatch after fallback: got %v want %v", name, got.Matches, want.Matches)
			}
		}
	}
	_ = secs
}

// TestSectionANNConfigMismatchRebuilds: sections encoded without ANN
// state cannot restore an ANN-enabled index (and vice versa) — the shard
// is rebuilt, never restored half-configured.
func TestSectionANNConfigMismatchRebuilds(t *testing.T) {
	c := datagen.ChemicalCorpus(4, 20, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	annCfg := ann.Config{Tables: 4, Bits: 6, Seed: 3}

	plain := BuildSharded(c, 2, 2)
	_, rep := RestoreSharded(c, 2, 2, &annCfg, sectionsMap(plain.EncodeSections()))
	if rep.Rebuilt != 2 {
		t.Fatalf("plain sections into ANN index: Rebuilt = %d, want 2", rep.Rebuilt)
	}

	withANN := BuildShardedANN(c, 2, 2, annCfg)
	_, rep = RestoreSharded(c, 2, 2, nil, sectionsMap(withANN.EncodeSections()))
	if rep.Rebuilt != 2 {
		t.Fatalf("ANN sections into plain index: Rebuilt = %d, want 2", rep.Rebuilt)
	}
}

// TestRestoredIndexSupportsApplyBatch: a section-restored index is a
// first-class Sharded — batch updates rebuild touched shards and the
// result matches a fresh build over the updated corpus.
func TestRestoredIndexSupportsApplyBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	opts := pattern.MatchOptions()
	c := datagen.ChemicalCorpus(6, 30, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	extra := datagen.ChemicalCorpus(60, 5, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	built := BuildSharded(c, 4, 2)
	restored, rep := RestoreSharded(c, 4, 2, nil, sectionsMap(built.EncodeSections()))
	if rep.Rebuilt != 0 {
		t.Fatal("restore fell back to rebuild")
	}

	var added []*graph.Graph
	extra.Each(func(_ int, g *graph.Graph) {
		ng := g.Clone()
		ng.SetName("new" + g.Name())
		added = append(added, ng)
	})
	removed := []string{c.Name(0), c.Name(7)}
	next, _, err := restored.ApplyBatch(added, removed)
	if err != nil {
		t.Fatal(err)
	}

	nc := graph.NewCorpus()
	c.EachName(func(i int, name string) {
		if name != removed[0] && name != removed[1] {
			nc.MustAdopt(c, i)
		}
	})
	for _, g := range added {
		nc.MustAdd(g)
	}
	fresh := BuildSharded(nc, 4, 2)
	for _, q := range randomQueries(rng, nc, 6) {
		want := fresh.Search(q, opts)
		got := next.Search(q, opts)
		if !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("post-batch mismatch: got %v want %v", got.Matches, want.Matches)
		}
	}
}
