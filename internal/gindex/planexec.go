package gindex

// Plan execution: runs a compiled physical plan (internal/plan) against a
// Sharded index while preserving the monolithic search contract exactly —
// same match set, same order, same Truncated semantics, at any shard
// count, worker count, and MaxResults budget.
//
// Strategies:
//
//   monolithic — the existing budgeted fan-out, with VF2 running under the
//   plan's compiled rarest-edge-first matching order.
//
//   decomposed — three phases. (1) fragment-probe: for every (fragment,
//   shard) pair, compute or fetch the fragment's containment view — the
//   complete, unbudgeted list of shard graphs containing the fragment
//   (cacheable under qcache.ViewKey: fragment canon x shard x epoch, so
//   RCU updates invalidate exactly the rebuilt shards' views, and two
//   queries sharing a sub-pattern share the view). (2) join: intersect the
//   per-shard views — a graph lacking any fragment provably lacks the
//   whole pattern, because an embedding restricts to an embedding of every
//   fragment. (3) verify: for each joint survivor in ascending corpus
//   order (under the shared cross-shard result budget), stitch fragment
//   embeddings together on shared nodes inside a bounded join buffer and
//   confirm the stitched mapping with isomorph.VerifyMapping — an exact
//   whole-pattern check, so a stitched "yes" is as sound as a VF2 "yes".
//   Any overflow or truncation on the shortcut path falls back to plain
//   ordered VF2 for that graph; a failed or faulted join falls back to the
//   monolithic path for that shard. Degrade, never a wrong answer.
//
//   ann — verify the most embedding-similar candidates first so a
//   MaxResults budget fills (and its position bound starts pruning) early,
//   then complete the ascending sweep reusing the recorded outcomes. The
//   final per-shard match list is the same ascending prefix the oracle
//   computes; extra verified matches beyond the prefix merge away.
//
// The decomposed join is the one place a plan can "fail" at runtime, so it
// carries the fault-injection site "plan.join" (error/panic → monolithic
// fallback for the shard; delay → context pressure surfaces as Truncated
// downstream). The join buffer is exercised under -race by the
// fault/equivalence tests.

import (
	"context"
	"sort"
	"strconv"

	"repro/internal/ann"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/plan"
	"repro/internal/qcache"
)

// Plan-execution observability: strategy mix, join failures (fault or
// panic → shard-level monolithic fallback), incomplete views (shard-level
// fallback), per-graph stitch outcomes.
var (
	obsPlanMono        = obs.Default.Counter("gindex_plan_searches_total", "strategy", "monolithic")
	obsPlanDecomp      = obs.Default.Counter("gindex_plan_searches_total", "strategy", "decomposed")
	obsPlanANN         = obs.Default.Counter("gindex_plan_searches_total", "strategy", "ann")
	obsPlanJoinFail    = obs.Default.Counter("gindex_plan_join_failures_total")
	obsPlanShardFall   = obs.Default.Counter("gindex_plan_shard_fallbacks_total")
	obsPlanStitched    = obs.Default.Counter("gindex_plan_stitched_verifies_total")
	obsPlanGraphFall   = obs.Default.Counter("gindex_plan_graph_fallbacks_total")
)

// stitchEnumCap bounds per-fragment embedding enumeration inside
// stitchGraph (see the comment there). Deliberately tight: measured
// against first-embedding ordered VF2, stitching only wins when every
// fragment embeds a couple of ways, and the cap is also what keeps a
// failed probe cheap — when a fragment embeds hundreds of ways, VF2
// finds the (cap+1)th embedding almost immediately and the probe bails
// for roughly the price of a first-embedding check.
const stitchEnumCap = 2

// PlanOptions carries the executor's optional collaborators.
type PlanOptions struct {
	// Views, when non-nil, caches fragment containment views under
	// qcache.ViewKey. Truncated views are never cached (they are not
	// complete, hence not reusable).
	Views *qcache.Cache[ShardResult]
	// Inject, when non-nil, fires the "plan.join" fault site once per
	// shard join.
	Inject *faultinject.Injector
}

// CompilePlan compiles q against this index's label statistics. ANN is
// automatically masked off when the index carries no similarity state.
func (sh *Sharded) CompilePlan(q *graph.Graph, cfg plan.Config) *plan.Plan {
	if sh.annCfg == nil {
		cfg.ANN = false
	}
	return plan.Compile(q, sh.PlanStats(), cfg)
}

// SearchPlan executes a compiled plan. The result is set-equal (and, under
// a MaxResults budget, order-exact) to SearchCtx with the same options —
// property-tested against the monolithic oracle at every strategy.
func (sh *Sharded) SearchPlan(ctx context.Context, q *graph.Graph, opts isomorph.Options, pl *plan.Plan, po PlanOptions) Result {
	if pl == nil {
		return sh.SearchCtx(ctx, q, opts)
	}
	switch pl.Strategy {
	case plan.StrategyDecomposed:
		if len(pl.Fragments) >= 2 {
			if obs.On() {
				obsPlanDecomp.Inc()
			}
			return sh.searchDecomposed(ctx, q, opts, pl, po)
		}
	case plan.StrategyANN:
		if sh.annCfg != nil {
			if obs.On() {
				obsPlanANN.Inc()
			}
			return sh.searchANNFirst(ctx, q, opts, pl)
		}
	}
	if obs.On() {
		obsPlanMono.Inc()
	}
	opts.Order = pl.Order
	return sh.SearchCtx(ctx, q, opts)
}

// viewBase builds the option-sensitive part of a view cache key: views
// depend on the fragment and on anything that can change a containment
// verdict (step budget, induced semantics) — never on MaxResults, which
// views deliberately ignore.
func viewBase(fragCanon string, opts isomorph.Options) string {
	b := fragCanon + "|ms" + strconv.Itoa(opts.MaxSteps)
	if opts.Induced {
		b += "|ind"
	}
	return b
}

func (sh *Sharded) searchDecomposed(ctx context.Context, q *graph.Graph, opts isomorph.Options, pl *plan.Plan, po PlanOptions) Result {
	nf := len(pl.Fragments)

	// Phase 1 — fragment-probe: complete containment views per (fragment,
	// shard). Views are unbudgeted (MaxResults=0): the join below is only
	// sound against complete lists. Fragment searches use the per-target
	// heuristic order — fragments are small and their compiled order would
	// differ per fragment anyway.
	viewOpts := opts
	viewOpts.MaxResults = 0
	viewOpts.MaxEmbeddings = 1
	viewOpts.Order = nil
	viewOpts.TargetIndex = nil
	pctx, span := obs.StartSpan(ctx, "plan.fragment-probe")
	views := make([]ShardResult, nf*sh.k)
	par.ForEachN(nf*sh.k, sh.workers, func(i int) {
		f, s := i/sh.k, i%sh.k
		frag := pl.Fragments[f]
		compute := func() (ShardResult, bool) {
			r := sh.SearchShardCtx(pctx, s, frag.G, viewOpts)
			return r, !r.Truncated
		}
		if po.Views != nil {
			views[i] = po.Views.Do(qcache.ViewKey(viewBase(frag.Canon, viewOpts), s, sh.epochs[s]), compute)
		} else {
			views[i], _ = compute()
		}
	})
	span.End()

	// Phase 2 — join: per-shard intersection of the views' match
	// positions. A shard whose join fails (fault, panic) or whose views
	// are incomplete degrades to the monolithic path below.
	_, span = obs.StartSpan(ctx, "plan.join")
	joint := make([][]int, sh.k)
	fallback := make([]bool, sh.k)
	for s := 0; s < sh.k; s++ {
		joint[s], fallback[s] = joinShardViews(views, nf, sh.k, s, po.Inject)
	}
	span.End()

	// Phase 3 — verify joint survivors (or run the monolithic shard search
	// where the join degraded) under the shared cross-shard budget.
	vctx, span := obs.StartSpan(ctx, "plan.verify")
	defer span.End()
	var b *resultBudget
	if opts.MaxResults > 0 {
		b = newResultBudget(opts.MaxResults)
	}
	partials := make([]ShardResult, sh.k)
	par.ForEachN(sh.k, sh.workers, func(s int) {
		if fallback[s] {
			sOpts := opts
			sOpts.Order = pl.Order
			partials[s] = sh.searchShard(vctx, s, q, sOpts, b)
			return
		}
		partials[s] = sh.verifyJoint(vctx, s, q, opts, pl, joint[s], b)
	})
	return MergeShardResults(partials, opts.MaxResults)
}

// joinShardViews intersects shard s's fragment views into the ascending
// list of global positions that contain every fragment. fallback is
// reported (with a nil list) when any view is incomplete or the join
// fires a fault — the caller then runs the shard monolithically, which is
// always sound.
func joinShardViews(views []ShardResult, nf, k, s int, inject *faultinject.Injector) (joint []int, fallback bool) {
	defer func() {
		if r := recover(); r != nil {
			if obs.On() {
				obsPlanJoinFail.Inc()
			}
			joint, fallback = nil, true
		}
	}()
	for f := 0; f < nf; f++ {
		if views[f*k+s].Truncated {
			if obs.On() {
				obsPlanShardFall.Inc()
			}
			return nil, true
		}
	}
	if err := inject.Fire("plan.join"); err != nil {
		if obs.On() {
			obsPlanJoinFail.Inc()
		}
		return nil, true
	}
	for _, m := range views[s].Matches { // fragment 0
		joint = append(joint, m.Pos)
	}
	for f := 1; f < nf && len(joint) > 0; f++ {
		joint = intersectAsc(joint, views[f*k+s].Matches)
	}
	return joint, false
}

// intersectAsc intersects an ascending position list with a ShardResult's
// ascending matches.
func intersectAsc(a []int, b []ShardMatch) []int {
	out := a[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j].Pos:
			i++
		case a[i] > b[j].Pos:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// verifyJoint confirms each joint candidate of shard s in ascending
// corpus order — the same loop shape (budget viability, hydration
// degrade, MaxResults break) as searchShard, so order-exactness under
// budgets carries over unchanged. Graphs are confirmed by stitching
// fragment embeddings; any stitch anomaly falls back to plain ordered VF2
// for that graph.
func (sh *Sharded) verifyJoint(ctx context.Context, s int, q *graph.Graph, opts isomorph.Options, pl *plan.Plan, joint []int, b *resultBudget) ShardResult {
	core := sh.shards[s]
	res := ShardResult{Shard: s, Epoch: sh.epochs[s], Scanned: core.sub.Len(), Candidates: len(joint)}
	defer func() { recordSearch(res.Candidates, res.Verified, len(res.Matches), res.Truncated) }()
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	opts.MaxEmbeddings = 1
	// Whether fragments embed few enough ways to stitch is a property of
	// the corpus region, not of one graph: once several graphs in a row
	// have surrendered to VF2, the rest of the shard will too, and the
	// doomed enumeration attempts are pure overhead. Stop trying after a
	// streak; one clean stitch re-arms the shortcut.
	const stitchGiveUpStreak = 2
	fallStreak := 0
	for _, gp := range joint {
		if ctx.Err() != nil {
			res.Truncated = true
			break
		}
		if b != nil && !b.viable(gp) {
			if obs.On() {
				obsBudgetStops.Inc()
			}
			break
		}
		li := sort.SearchInts(sh.globals[s], gp)
		g, err := core.sub.Hydrate(li)
		if err != nil {
			res.Truncated = true
			continue
		}
		tix := core.idx.targetIndexFor(li, g)
		found, clean := false, false
		if fallStreak < stitchGiveUpStreak {
			found, clean = stitchGraph(q, pl, g, tix, opts)
			if obs.On() {
				obsPlanStitched.Inc()
			}
		}
		trunc := false
		if !clean {
			fallStreak++
			if obs.On() {
				obsPlanGraphFall.Inc()
			}
			vopts := opts
			vopts.Order = pl.Order
			vopts.TargetIndex = tix
			r := isomorph.Count(q, g, vopts)
			found, trunc = r.Embeddings > 0, r.Truncated
		} else {
			fallStreak = 0
		}
		res.Verified++
		if found {
			res.Matches = append(res.Matches, ShardMatch{Pos: gp, Name: g.Name()})
			if b != nil {
				b.admit(gp)
			}
			if opts.MaxResults > 0 && len(res.Matches) >= opts.MaxResults {
				break
			}
		} else if trunc {
			res.Truncated = true
		}
	}
	return res
}

// stitchGraph decides whether q embeds in g by enumerating each
// fragment's embeddings (complete, up to the join buffer) and merging
// them on shared pattern nodes under injectivity, then verifying any
// complete assignment with an exact whole-pattern check. Outcomes:
//
//	clean && found   — q embeds in g (VerifyMapping-confirmed).
//	clean && !found  — q provably does not embed: the fragment embedding
//	                   lists were complete and no consistent union exists,
//	                   but any true embedding would restrict to one row of
//	                   each list and survive the merge.
//	!clean           — the shortcut could not run to completion (buffer
//	                   overflow, truncated enumeration, or a view that
//	                   disagrees with the graph); the caller must decide
//	                   with a plain VF2 check, which carries its own
//	                   Truncated reporting.
func stitchGraph(q *graph.Graph, pl *plan.Plan, g *graph.Graph, tix *isomorph.LabelIndex, opts isomorph.Options) (found, clean bool) {
	n := q.NumNodes()
	buf := pl.JoinBuffer
	// Enumerating a fragment's embeddings costs far more than the
	// first-embedding VF2 check the fallback runs, so the stitch only pays
	// off when every fragment's embedding list is genuinely small. Cap the
	// enumeration well below the merge buffer and surrender the graph to
	// ordered VF2 past it — the join already did the expensive pruning.
	enumCap := stitchEnumCap
	if enumCap > buf {
		enumCap = buf
	}
	eopts := isomorph.Options{
		MaxEmbeddings: enumCap + 1,
		MaxSteps:      opts.MaxSteps,
		Ctx:           opts.Ctx,
		CheckEvery:    opts.CheckEvery,
		TargetIndex:   tix,
	}
	// attempts bounds total merge work, not just surviving assignments: a
	// common fragment can drive buf x buf failing merges per stage — all
	// wasted if the stitch then overflows anyway. Past the cap the plain
	// VF2 fallback is the cheaper way to decide this graph.
	attempts, maxAttempts := 0, 32*buf
	assigns := [][]graph.NodeID{nil}
	for fi := range pl.Fragments {
		frag := &pl.Fragments[fi]
		var embs [][]graph.NodeID
		r := isomorph.Enumerate(frag.G, g, eopts, func(m []graph.NodeID) bool {
			embs = append(embs, append([]graph.NodeID(nil), m...))
			return true
		})
		if r.Truncated || len(embs) > enumCap || len(embs) == 0 {
			return false, false
		}
		var next [][]graph.NodeID
		for _, a := range assigns {
			for _, e := range embs {
				attempts++
				if attempts > maxAttempts {
					return false, false
				}
				if merged, ok := mergeAssignment(a, n, frag.Nodes, e); ok {
					next = append(next, merged)
					if len(next) > buf {
						return false, false
					}
				}
			}
		}
		if len(next) == 0 {
			return false, true
		}
		assigns = next
	}
	for _, a := range assigns {
		if complete(a) && isomorph.VerifyMapping(q, g, a, opts.Induced) {
			return true, true
		}
	}
	return false, true
}

// mergeAssignment extends partial assignment a (pattern node -> target
// node, -1 unset) with one fragment embedding, rejecting conflicts on
// shared nodes and injectivity violations.
func mergeAssignment(a []graph.NodeID, n int, fragNodes []int, emb []graph.NodeID) ([]graph.NodeID, bool) {
	merged := make([]graph.NodeID, n)
	if a == nil {
		for i := range merged {
			merged[i] = -1
		}
	} else {
		copy(merged, a)
	}
	for li, pv := range fragNodes {
		tv := emb[li]
		if merged[pv] == tv {
			continue
		}
		if merged[pv] != -1 {
			return nil, false // shared node mapped differently
		}
		for _, other := range merged {
			if other == tv {
				return nil, false // injectivity
			}
		}
		merged[pv] = tv
	}
	return merged, true
}

func complete(a []graph.NodeID) bool {
	for _, v := range a {
		if v == -1 {
			return false
		}
	}
	return true
}

// searchANNFirst runs the ANN-shortlist-then-verify strategy: phase 1
// verifies the top-K most similar candidates per shard so the shared
// budget's position bound tightens early; phase 2 is the standard
// ascending sweep, reusing phase-1 outcomes instead of re-verifying. The
// per-shard match list is the ascending prefix the oracle would emit,
// possibly plus already-verified matches beyond it — which the global
// merge's sort-and-truncate discards identically.
func (sh *Sharded) searchANNFirst(ctx context.Context, q *graph.Graph, opts isomorph.Options, pl *plan.Plan) Result {
	sctx, span := obs.StartSpan(ctx, "plan.shortlist")
	qv := sh.emb.Embed(q)
	span.End()
	vctx, span := obs.StartSpan(sctx, "plan.verify")
	defer span.End()
	var b *resultBudget
	if opts.MaxResults > 0 {
		b = newResultBudget(opts.MaxResults)
	}
	partials := make([]ShardResult, sh.k)
	par.ForEachN(sh.k, sh.workers, func(s int) {
		partials[s] = sh.searchShardANNFirst(vctx, s, q, qv, opts, pl, b)
	})
	return MergeShardResults(partials, opts.MaxResults)
}

func (sh *Sharded) searchShardANNFirst(ctx context.Context, s int, q *graph.Graph, qv []float32, opts isomorph.Options, pl *plan.Plan, b *resultBudget) ShardResult {
	core := sh.shards[s]
	res := ShardResult{Shard: s, Epoch: sh.epochs[s], Scanned: core.sub.Len()}
	defer func() { recordSearch(res.Candidates, res.Verified, len(res.Matches), res.Truncated) }()
	if q.NumNodes() == 0 || core.sub.Len() == 0 {
		return res
	}
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	cands := core.idx.Candidates(q)
	res.Candidates = len(cands)
	opts.MaxEmbeddings = 1
	opts.Order = pl.Order

	outcome := make(map[int]bool) // local index -> matched
	names := make(map[int]string)
	verify := func(li int) (matched, ok bool) {
		g, err := core.sub.Hydrate(li)
		if err != nil {
			res.Truncated = true
			return false, false
		}
		vopts := opts
		vopts.TargetIndex = core.idx.targetIndexFor(li, g)
		r := isomorph.Count(q, g, vopts)
		res.Verified++
		if r.Truncated && r.Embeddings == 0 {
			res.Truncated = true
		}
		names[li] = g.Name()
		return r.Embeddings > 0, true
	}

	// Phase 1 — shortlist: cosine-rank the candidates and verify the most
	// similar first. Deterministic: ties order by ascending position.
	shortK := annShortlistSize(opts.MaxResults)
	if shortK > len(cands) {
		shortK = len(cands)
	}
	if shortK > 0 && b != nil {
		type scored struct {
			li    int
			score float64
		}
		rank := make([]scored, len(cands))
		for i, li := range cands {
			rank[i] = scored{li: li, score: ann.Cosine(core.vecs[li], qv)}
		}
		sort.Slice(rank, func(i, j int) bool {
			if rank[i].score != rank[j].score {
				return rank[i].score > rank[j].score
			}
			return rank[i].li < rank[j].li
		})
		for _, c := range rank[:shortK] {
			if ctx.Err() != nil {
				res.Truncated = true
				break
			}
			gp := sh.globals[s][c.li]
			if b.viable(gp) {
				if m, ok := verify(c.li); ok {
					outcome[c.li] = m
					if m {
						b.admit(gp)
					}
				}
			}
		}
	}

	// Phase 2 — ascending sweep, identical to the oracle's loop except
	// that phase-1 outcomes are reused instead of recomputed. The budget
	// bound compares strictly, so a phase-1 match can make its own
	// position non-viable; the post-loop pass below re-emits any verified
	// match the sweep skipped (extras beyond the global top-limit merge
	// away under the final sort-and-truncate).
	emitted := make(map[int]bool)
	count := 0
	for _, li := range cands {
		if ctx.Err() != nil {
			res.Truncated = true
			break
		}
		gp := sh.globals[s][li]
		if b != nil && !b.viable(gp) {
			if obs.On() {
				obsBudgetStops.Inc()
			}
			break
		}
		m, seen := outcome[li]
		if !seen {
			var ok bool
			if m, ok = verify(li); !ok {
				continue
			}
			outcome[li] = m
			if m && b != nil {
				b.admit(gp)
			}
		}
		if m {
			res.Matches = append(res.Matches, ShardMatch{Pos: gp, Name: names[li]})
			emitted[li] = true
			count++
			if opts.MaxResults > 0 && count >= opts.MaxResults {
				break
			}
		}
	}
	for _, li := range cands {
		if outcome[li] && !emitted[li] {
			res.Matches = append(res.Matches, ShardMatch{Pos: sh.globals[s][li], Name: names[li]})
		}
	}
	sort.Slice(res.Matches, func(i, j int) bool { return res.Matches[i].Pos < res.Matches[j].Pos })
	return res
}

// annShortlistSize sizes the phase-1 shortlist from the result budget.
func annShortlistSize(maxResults int) int {
	if maxResults <= 0 {
		return 0
	}
	k := 4 * maxResults
	if k < 16 {
		k = 16
	}
	return k
}
