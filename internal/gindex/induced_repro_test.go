package gindex

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// fragInducedClosed reports whether every pattern edge between two
// fragment nodes is present in the fragment.
func fragInducedClosed(q *graph.Graph, f plan.Fragment) bool {
	inFrag := make(map[int]int)
	for li, pv := range f.Nodes {
		inFrag[pv] = li
	}
	for _, e := range q.Edges() {
		lu, uok := inFrag[int(e.U)]
		lv, vok := inFrag[int(e.V)]
		if uok && vok {
			if _, ok := f.G.EdgeBetween(graph.NodeID(lu), graph.NodeID(lv)); !ok {
				return false
			}
		}
	}
	return true
}

func TestInducedDecomposedRepro(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	opts := pattern.MatchOptions()
	opts.Induced = true
	nonClosed := 0
	mismatch := 0
	for _, seed := range []int64{1, 2, 3, 4, 5, 6, 7} {
		c := datagen.ChemicalCorpus(seed, 60, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 24})
		sh := BuildSharded(c, 3, 2)
		for _, q := range planQueries(rng, c, 15, 6, 14) {
			pl := sh.CompilePlan(q, plan.Config{Force: plan.StrategyDecomposed})
			if pl.Strategy != plan.StrategyDecomposed {
				continue
			}
			for _, f := range pl.Fragments {
				if !fragInducedClosed(q, f) {
					nonClosed++
					break
				}
			}
			got := sh.SearchPlan(context.Background(), q, opts, pl, PlanOptions{})
			want := sh.SearchCtx(context.Background(), q, opts)
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				mismatch++
				if mismatch <= 3 {
					t.Logf("MISMATCH seed=%d q edges=%d: plan=%v oracle=%v", seed, q.NumEdges(), got.Matches, want.Matches)
				}
			}
		}
	}
	t.Logf("non-induced-closed fragments seen in %d plans; induced mismatches: %d", nonClosed, mismatch)
	if mismatch > 0 {
		t.Fatalf("induced decomposed mismatches: %d", mismatch)
	}
}
