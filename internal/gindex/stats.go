package gindex

// Corpus label statistics for the plan compiler. The numbers are exact
// document frequencies read straight off the inverted bitsets the filter
// already maintains — one popcount per label — aggregated across shards.
// The aggregate is computed lazily on first use and cached on the Sharded
// value; ApplyBatch produces a new value, so a generation's statistics
// are immutable once computed and stale statistics can never leak across
// an RCU swap.

import (
	"repro/internal/plan"
)

// planStats implements plan.Stats over aggregated per-shard counts.
type planStats struct {
	n    int
	node map[string]int
	edge map[string]int
	trip map[triple]int
}

func newPlanStats() *planStats {
	return &planStats{
		node: make(map[string]int),
		edge: make(map[string]int),
		trip: make(map[triple]int),
	}
}

// Graphs implements plan.Stats.
func (ps *planStats) Graphs() int { return ps.n }

// NodeLabelGraphs implements plan.Stats.
func (ps *planStats) NodeLabelGraphs(l string) int { return ps.node[l] }

// EdgeLabelGraphs implements plan.Stats.
func (ps *planStats) EdgeLabelGraphs(l string) int { return ps.edge[l] }

// TripleGraphs implements plan.Stats (a <= b, matching the index's triple
// normalization; un-normalized calls are normalized here defensively).
func (ps *planStats) TripleGraphs(a, e, b string) int {
	if a > b {
		a, b = b, a
	}
	return ps.trip[triple{a, e, b}]
}

// addStats accumulates this index's per-label graph counts into ps.
func (idx *Index) addStats(ps *planStats) {
	ps.n += idx.corpus.Len()
	for l, b := range idx.nodeLabel {
		ps.node[l] += b.Popcount()
	}
	for l, b := range idx.edgeLabel {
		ps.edge[l] += b.Popcount()
	}
	for tr, b := range idx.triples {
		ps.trip[tr] += b.Popcount()
	}
}

// PlanStats returns corpus label statistics for the plan compiler.
func (idx *Index) PlanStats() plan.Stats {
	ps := newPlanStats()
	idx.addStats(ps)
	return ps
}

// PlanStats returns corpus-wide label statistics aggregated across all
// shards, computed lazily on first use and cached on this generation
// (concurrent first calls may both compute; they produce identical
// values and the CAS keeps one). ApplyBatch returns a new Sharded with
// an empty cache, so statistics always describe exactly this epoch
// vector's contents.
func (sh *Sharded) PlanStats() plan.Stats {
	if ps := sh.stats.Load(); ps != nil {
		return ps
	}
	ps := newPlanStats()
	for _, core := range sh.shards {
		core.idx.addStats(ps)
	}
	sh.stats.CompareAndSwap(nil, ps)
	return sh.stats.Load()
}
