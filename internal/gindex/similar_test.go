package gindex

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/ann"
	"repro/internal/datagen"
	"repro/internal/graph"
)

func annCorpus(tb testing.TB, seed int64, count int) *graph.Corpus {
	tb.Helper()
	return datagen.ChemicalCorpus(seed, count, datagen.ChemicalOptions{})
}

func TestSimilarStructuralErrors(t *testing.T) {
	c := annCorpus(t, 1, 20)
	plain := BuildSharded(c, 4, 0)
	if _, err := plain.Similar(c.Graph(0), SimilarOptions{}); err != ErrANNDisabled {
		t.Fatalf("plain index: err = %v, want ErrANNDisabled", err)
	}
	if plain.ANNEnabled() {
		t.Fatal("plain index reports ANNEnabled")
	}
	withANN := BuildShardedANN(c, 4, 0, ann.NewConfig())
	if !withANN.ANNEnabled() {
		t.Fatal("ANN index reports disabled")
	}
	if got := withANN.ANNConfig(); got.Tables != ann.NewConfig().Tables {
		t.Fatalf("ANNConfig = %+v", got)
	}
	if _, err := withANN.Similar(graph.New("empty"), SimilarOptions{}); err == nil {
		t.Fatal("empty query: want error")
	}
	if _, err := withANN.Similar(nil, SimilarOptions{}); err == nil {
		t.Fatal("nil query: want error")
	}
}

// TestSimilarExactOracle: exact mode over the sharded index returns the
// same ranking as a global exact cosine scan of the whole corpus.
func TestSimilarExactOracle(t *testing.T) {
	c := annCorpus(t, 2, 120)
	sh := BuildShardedANN(c, 5, 0, ann.NewConfig())
	emb := ann.NewEmbedder()
	vecs := emb.EmbedCorpus(c, 0)
	for qi := 0; qi < c.Len(); qi += 7 {
		q := c.Graph(qi)
		res, err := sh.Similar(q, SimilarOptions{K: 10, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		if res.Approx {
			t.Fatal("exact query marked Approx")
		}
		if res.Shortlist != c.Len() || res.Scanned != c.Len() {
			t.Fatalf("exact scan shortlist=%d scanned=%d, want %d", res.Shortlist, res.Scanned, c.Len())
		}
		want := ann.ExactTopK(vecs, emb.Embed(q), 10)
		if len(res.Matches) != len(want) {
			t.Fatalf("query %d: %d matches, want %d", qi, len(res.Matches), len(want))
		}
		for i, m := range res.Matches {
			if m.Pos != int(want[i].ID) || m.Score != want[i].Score {
				t.Fatalf("query %d rank %d: got (%d, %v), want (%d, %v)",
					qi, i, m.Pos, m.Score, want[i].ID, want[i].Score)
			}
			if m.Name != c.Graph(m.Pos).Name() {
				t.Fatalf("query %d rank %d: name %q does not match position %d", qi, i, m.Name, m.Pos)
			}
		}
	}
}

// TestSimilarApproxRecall: the sharded approximate path keeps recall@10
// ≥ 0.9 against the exact oracle (per-shard centering and per-shard top-k
// merging must not destroy the single-index recall).
func TestSimilarApproxRecall(t *testing.T) {
	c := annCorpus(t, 3, 250)
	sh := BuildShardedANN(c, 4, 0, ann.NewConfig())
	hits, want := 0, 0
	for qi := 0; qi < c.Len(); qi++ {
		q := c.Graph(qi)
		exact, err := sh.Similar(q, SimilarOptions{K: 10, Exact: true})
		if err != nil {
			t.Fatal(err)
		}
		approx, err := sh.Similar(q, SimilarOptions{K: 10})
		if err != nil {
			t.Fatal(err)
		}
		if !approx.Approx || approx.Probed == 0 {
			t.Fatalf("approx query reported Approx=%v Probed=%d", approx.Approx, approx.Probed)
		}
		inExact := make(map[int]bool, len(exact.Matches))
		for _, m := range exact.Matches {
			inExact[m.Pos] = true
		}
		for _, m := range approx.Matches {
			if inExact[m.Pos] {
				hits++
			}
		}
		want += len(exact.Matches)
	}
	if r := float64(hits) / float64(want); r < 0.9 {
		t.Fatalf("sharded recall@10 = %.3f, want >= 0.9", r)
	}
}

// TestSimilarWorkerDeterminism: identical results at every worker count
// (shard count fixed — centering is per-shard, so K is part of identity).
func TestSimilarWorkerDeterminism(t *testing.T) {
	c := annCorpus(t, 4, 100)
	base := BuildShardedANN(c, 4, 1, ann.NewConfig())
	q := c.Graph(17)
	want, err := base.Similar(q, SimilarOptions{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 0} {
		sh := BuildShardedANN(c, 4, workers, ann.NewConfig())
		got, err := sh.Similar(q, SimilarOptions{K: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Matches) != len(want.Matches) {
			t.Fatalf("workers=%d: %d matches, want %d", workers, len(got.Matches), len(want.Matches))
		}
		for i := range want.Matches {
			if got.Matches[i] != want.Matches[i] {
				t.Fatalf("workers=%d rank %d: %+v, want %+v", workers, i, got.Matches[i], want.Matches[i])
			}
		}
	}
}

// TestSimilarVerify: VF2 re-rank puts verified-containing graphs first,
// and a pattern cut out of a corpus graph is contained in its source.
func TestSimilarVerify(t *testing.T) {
	c := annCorpus(t, 5, 80)
	sh := BuildShardedANN(c, 4, 0, ann.NewConfig())
	rng := rand.New(rand.NewSource(9))
	src := c.Graph(11)
	q := datagen.RandomConnectedSubgraph(rng, src, 6)
	if q == nil {
		t.Skip("no connected subgraph sampled")
	}
	res, err := sh.Similar(q, SimilarOptions{K: 10, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Truncated {
		t.Fatalf("verification truncated: %+v", res)
	}
	if res.Verified != len(res.Matches) {
		t.Fatalf("verified %d of %d matches", res.Verified, len(res.Matches))
	}
	seenNonContaining := false
	for _, m := range res.Matches {
		if !m.Contains {
			seenNonContaining = true
		} else if seenNonContaining {
			t.Fatalf("containing graph ranked after non-containing: %+v", res.Matches)
		}
	}
}

// TestSimilarTruncatedOnCancel: a dead context degrades verification to
// Truncated instead of erroring; the scored matches survive.
func TestSimilarTruncatedOnCancel(t *testing.T) {
	c := annCorpus(t, 6, 60)
	sh := BuildShardedANN(c, 4, 0, ann.NewConfig())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sh.SimilarCtx(ctx, c.Graph(0), SimilarOptions{K: 5, Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated {
		t.Fatal("cancelled verify not marked Truncated")
	}
	if res.Verified != 0 {
		t.Fatalf("verified %d under a dead context", res.Verified)
	}
	if len(res.Matches) == 0 {
		t.Fatal("cancelled verify dropped the scored matches")
	}
}

// TestApplyBatchANNRebuild: the acceptance property — a batch touching one
// shard rebuilds exactly that shard's ANN table (obs counter delta of 1),
// the new graph is immediately retrievable, and the old generation still
// answers over the pre-batch corpus.
func TestApplyBatchANNRebuild(t *testing.T) {
	c := annCorpus(t, 7, 100)
	k := 8
	builds0 := obsANNShardBuilds.Value()
	sh := BuildShardedANN(c, k, 0, ann.NewConfig())
	if d := obsANNShardBuilds.Value() - builds0; d != int64(k) {
		t.Fatalf("initial build incremented ann build counter by %d, want %d", d, k)
	}

	add := datagen.Chemical(rand.New(rand.NewSource(99)), "batch-added", datagen.ChemicalOptions{})
	rebuilds0 := obsANNShardRebuilds.Value()
	next, rep, err := sh.ApplyBatch([]*graph.Graph{add}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rebuilt) != 1 {
		t.Fatalf("one added graph rebuilt %d shards: %v", len(rep.Rebuilt), rep.Rebuilt)
	}
	if d := obsANNShardRebuilds.Value() - rebuilds0; d != 1 {
		t.Fatalf("ann rebuild counter delta = %d, want 1 (touched shards only)", d)
	}
	// Untouched shards share their ANN state with the old generation.
	for s := 0; s < k; s++ {
		shared := next.shards[s].ann == sh.shards[s].ann
		if touched := s == rep.Rebuilt[0]; touched == shared {
			t.Fatalf("shard %d: touched=%v but shared=%v", s, touched, shared)
		}
	}
	// The added graph retrieves itself from the new generation...
	res, err := next.Similar(add, SimilarOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches) == 0 || res.Matches[0].Name != "batch-added" {
		t.Fatalf("added graph not its own nearest neighbor: %+v", res.Matches)
	}
	// ...and is invisible to the old one.
	old, err := sh.Similar(add, SimilarOptions{K: 100})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range old.Matches {
		if m.Name == "batch-added" {
			t.Fatal("old generation sees the added graph")
		}
	}
}
