// Package gindex accelerates subgraph search over a corpus with the
// classical filter-then-verify strategy used by graph-database query
// processors: cheap per-graph features (node labels, labeled edge
// triples, size bounds) prune graphs that cannot contain the query, and
// only the surviving candidates pay for a subgraph-isomorphism check.
//
// A VQI's Results Panel issues exactly this kind of query every time the
// user presses Run, so the index is what makes interactive response times
// possible on corpora of thousands of graphs — the "powerful graph query
// processing engines" the tutorial's introduction says visual interfaces
// democratize.
package gindex

import (
	"context"
	"math/bits"
	"sort"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/obs"
	"repro/internal/pattern"
)

// Metric handles resolved once; searches record their totals at the end
// of a call (a few atomic adds), never per candidate. Gated on obs.On().
var (
	obsSearches    = obs.Default.Counter("gindex_searches_total")
	obsCandidates  = obs.Default.Counter("gindex_filter_candidates_total")
	obsVerified    = obs.Default.Counter("gindex_verify_total")
	obsMatches     = obs.Default.Counter("gindex_matches_total")
	obsTruncated   = obs.Default.Counter("gindex_truncated_total")
	obsBudgetStops = obs.Default.Counter("gindex_budget_stops_total")
)

// recordSearch publishes one completed (whole-index or per-shard)
// filter-verify pass.
func recordSearch(candidates, verified, matches int, truncated bool) {
	if !obs.On() {
		return
	}
	obsSearches.Inc()
	obsCandidates.Add(int64(candidates))
	obsVerified.Add(int64(verified))
	obsMatches.Add(int64(matches))
	if truncated {
		obsTruncated.Inc()
	}
}

type triple struct{ a, e, b string }

// sizeClass answers "which graphs have size >= k" in O(log distinct-sizes)
// with one precomputed suffix bitset per distinct size, replacing the O(n)
// per-query scan over the size arrays.
type sizeClass struct {
	sizes []int            // distinct sizes, ascending
	ge    []pattern.Bitset // ge[i]: graphs with size >= sizes[i]
}

func buildSizeClass(vals []int) sizeClass {
	n := len(vals)
	var sc sizeClass
	if n == 0 {
		// Empty corpus: no value range, so no suffix bitsets. atLeast
		// then always answers (nil, false), which Candidates turns into
		// "no matches".
		return sc
	}
	seen := make(map[int]bool, n)
	for _, v := range vals {
		if !seen[v] {
			seen[v] = true
			sc.sizes = append(sc.sizes, v)
		}
	}
	sort.Ints(sc.sizes)
	sc.ge = make([]pattern.Bitset, len(sc.sizes))
	for i, s := range sc.sizes {
		b := pattern.NewBitset(n)
		for gi, v := range vals {
			if v >= s {
				b.Set(gi)
			}
		}
		sc.ge[i] = b
	}
	return sc
}

// atLeast returns the bitset of graphs with size >= k; ok is false when no
// graph is that large. The returned bitset is shared — do not modify.
func (sc sizeClass) atLeast(k int) (pattern.Bitset, bool) {
	i := sort.SearchInts(sc.sizes, k)
	if i == len(sc.sizes) {
		return nil, false
	}
	return sc.ge[i], true
}

// Index is an immutable filter index over a corpus snapshot. Rebuild after
// corpus changes (construction is linear and cheap relative to one
// unfiltered scan).
type Index struct {
	corpus    *graph.Corpus
	nodeLabel map[string]pattern.Bitset
	edgeLabel map[string]pattern.Bitset
	triples   map[triple]pattern.Bitset
	numNodes  []int
	numEdges  []int
	sizeNodes sizeClass
	sizeEdges sizeClass
	// labelIdx holds the per-graph node-label index for VF2. Eager builds
	// fill every slot; an index restored from a persisted section leaves
	// them nil and fills each on first verification of that graph (atomic,
	// so concurrent shard searches race benignly to an identical value).
	labelIdx []atomic.Pointer[isomorph.LabelIndex]
}

// targetIndexFor returns graph gi's label index, building and caching it
// if the slot is still empty (a section-restored index never paid the
// eager pass).
func (idx *Index) targetIndexFor(gi int, g *graph.Graph) *isomorph.LabelIndex {
	if li := idx.labelIdx[gi].Load(); li != nil {
		return li
	}
	li := isomorph.BuildLabelIndex(g)
	idx.labelIdx[gi].CompareAndSwap(nil, li)
	return li
}

// Build indexes the corpus.
func Build(c *graph.Corpus) *Index {
	idx := &Index{
		corpus:    c,
		nodeLabel: make(map[string]pattern.Bitset),
		edgeLabel: make(map[string]pattern.Bitset),
		triples:   make(map[triple]pattern.Bitset),
		numNodes:  make([]int, c.Len()),
		numEdges:  make([]int, c.Len()),
		labelIdx:  make([]atomic.Pointer[isomorph.LabelIndex], c.Len()),
	}
	n := c.Len()
	bs := func(m map[string]pattern.Bitset, key string) pattern.Bitset {
		b, ok := m[key]
		if !ok {
			b = pattern.NewBitset(n)
			m[key] = b
		}
		return b
	}
	c.Each(func(gi int, g *graph.Graph) {
		idx.numNodes[gi] = g.NumNodes()
		idx.numEdges[gi] = g.NumEdges()
		idx.labelIdx[gi].Store(isomorph.BuildLabelIndex(g))
		for v := 0; v < g.NumNodes(); v++ {
			bs(idx.nodeLabel, g.NodeLabel(v)).Set(gi)
		}
		for ei := 0; ei < g.NumEdges(); ei++ {
			e := g.Edge(ei)
			bs(idx.edgeLabel, e.Label).Set(gi)
			a, b := g.NodeLabel(e.U), g.NodeLabel(e.V)
			if a > b {
				a, b = b, a
			}
			bs2 := func(tr triple) pattern.Bitset {
				tb, ok := idx.triples[tr]
				if !ok {
					tb = pattern.NewBitset(n)
					idx.triples[tr] = tb
				}
				return tb
			}
			bs2(triple{a, e.Label, b}).Set(gi)
		}
	})
	idx.sizeNodes = buildSizeClass(idx.numNodes)
	idx.sizeEdges = buildSizeClass(idx.numEdges)
	return idx
}

// appendDedup adds s to dst unless already present (linear scan — query
// graphs are small, so this beats a map allocation).
func appendDedup(dst []string, s string) []string {
	for _, x := range dst {
		if x == s {
			return dst
		}
	}
	return append(dst, s)
}

// Candidates returns the corpus positions that pass every filter for q —
// a superset of the true matches (no false dismissals). Wildcard labels
// contribute no constraint. Filtering is pure bitset arithmetic: the size
// suffix bitsets seed the candidate set, label/triple inverted bitsets are
// ANDed in place, and the survivors are extracted with trailing-zero
// scans. Returns nil when nothing survives.
func (idx *Index) Candidates(q *graph.Graph) []int {
	if idx.corpus.Len() == 0 {
		return nil
	}
	seed, ok := idx.sizeNodes.atLeast(q.NumNodes())
	if !ok {
		return nil
	}
	cand := seed.Clone()
	and := func(b pattern.Bitset, ok bool) bool {
		if !ok {
			// Constraint label absent from the whole corpus: no matches.
			return false
		}
		zero := true
		for i := range cand {
			cand[i] &= b[i]
			if cand[i] != 0 {
				zero = false
			}
		}
		return !zero
	}
	if !and(idx.sizeEdges.atLeast(q.NumEdges())) {
		return nil
	}
	// Distinct query labels via slice dedup: no per-query label maps.
	nodeLabels := make([]string, 0, q.NumNodes())
	edgeLabels := make([]string, 0, q.NumEdges())
	for v := 0; v < q.NumNodes(); v++ {
		if l := q.NodeLabel(v); l != isomorph.Wildcard {
			nodeLabels = appendDedup(nodeLabels, l)
		}
	}
	for ei := 0; ei < q.NumEdges(); ei++ {
		if l := q.EdgeLabel(ei); l != isomorph.Wildcard {
			edgeLabels = appendDedup(edgeLabels, l)
		}
	}
	for _, l := range nodeLabels {
		b, ok := idx.nodeLabel[l]
		if !and(b, ok) {
			return nil
		}
	}
	for _, l := range edgeLabels {
		b, ok := idx.edgeLabel[l]
		if !and(b, ok) {
			return nil
		}
	}
	for ei := 0; ei < q.NumEdges(); ei++ {
		e := q.Edge(ei)
		a, b := q.NodeLabel(e.U), q.NodeLabel(e.V)
		if a == isomorph.Wildcard || b == isomorph.Wildcard || e.Label == isomorph.Wildcard {
			continue
		}
		if a > b {
			a, b = b, a
		}
		tb, ok := idx.triples[triple{a, e.Label, b}]
		if !and(tb, ok) {
			return nil
		}
	}
	out := make([]int, 0, cand.Popcount())
	for wi, w := range cand {
		for w != 0 {
			out = append(out, wi*64+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return out
}

// CandidatesReference is the pre-bitset-rewrite implementation of
// Candidates, kept verbatim as the oracle the property tests and the K1
// benchmark compare the fast path against.
func (idx *Index) CandidatesReference(q *graph.Graph) []int {
	n := idx.corpus.Len()
	// Start from all-ones and intersect constraint bitsets.
	cand := pattern.NewBitset(n)
	for i := 0; i < n; i++ {
		if idx.numNodes[i] >= q.NumNodes() && idx.numEdges[i] >= q.NumEdges() {
			cand.Set(i)
		}
	}
	intersect := func(b pattern.Bitset, ok bool) {
		if !ok {
			// Constraint label absent from the whole corpus: no matches.
			for i := range cand {
				cand[i] = 0
			}
			return
		}
		for i := range cand {
			cand[i] &= b[i]
		}
	}
	for l := range q.NodeLabels() {
		if l == isomorph.Wildcard {
			continue
		}
		b, ok := idx.nodeLabel[l]
		intersect(b, ok)
	}
	for l := range q.EdgeLabels() {
		if l == isomorph.Wildcard {
			continue
		}
		b, ok := idx.edgeLabel[l]
		intersect(b, ok)
	}
	for _, e := range q.Edges() {
		a, b := q.NodeLabel(e.U), q.NodeLabel(e.V)
		if a == isomorph.Wildcard || b == isomorph.Wildcard || e.Label == isomorph.Wildcard {
			continue
		}
		if a > b {
			a, b = b, a
		}
		tb, ok := idx.triples[triple{a, e.Label, b}]
		intersect(tb, ok)
	}
	var out []int
	for i := 0; i < n; i++ {
		if cand.Get(i) {
			out = append(out, i)
		}
	}
	return out
}

// Result reports a search outcome.
type Result struct {
	// Matches are the names of graphs containing the query.
	Matches []string
	// Candidates is how many graphs survived filtering (verification
	// cost); Scanned is the corpus size.
	Candidates int
	Scanned    int
	// Verified is how many candidates were actually checked; less than
	// Candidates when the search was cut short.
	Verified int
	// Truncated reports the search gave up early — the context died or a
	// per-graph step budget tripped — so Matches is a sound subset of the
	// true answer, not the complete one.
	Truncated bool
}

// Search runs filter-then-verify for query q.
func (idx *Index) Search(q *graph.Graph, opts isomorph.Options) Result {
	return idx.SearchCtx(context.Background(), q, opts)
}

// SearchCtx is Search under a context: the context is threaded into every
// per-candidate VF2 check and polled between candidates, so an expired
// deadline returns the matches confirmed so far with Truncated set. A
// graph whose own check truncated (budget or cancellation) also marks the
// result truncated — its absence from Matches is "unknown", not "no".
func (idx *Index) SearchCtx(ctx context.Context, q *graph.Graph, opts isomorph.Options) Result {
	res := Result{Scanned: idx.corpus.Len()}
	defer func() { recordSearch(res.Candidates, res.Verified, len(res.Matches), res.Truncated) }()
	if q.NumNodes() == 0 {
		return res
	}
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	cands := idx.Candidates(q)
	res.Candidates = len(cands)
	opts.MaxEmbeddings = 1
	for _, gi := range cands {
		if ctx.Err() != nil {
			res.Truncated = true
			break
		}
		g, err := idx.corpus.Hydrate(gi)
		if err != nil {
			// Corrupt lazy frame: this graph is unknowable, not a non-match.
			res.Truncated = true
			continue
		}
		// The prebuilt per-graph label index makes VF2 seed its root scan
		// rarest-label-first instead of sweeping every target node.
		opts.TargetIndex = idx.targetIndexFor(gi, g)
		r := isomorph.Count(q, g, opts)
		res.Verified++
		if r.Embeddings > 0 {
			res.Matches = append(res.Matches, g.Name())
			// Candidates are verified in ascending corpus order, so
			// stopping at the budget returns exactly the MaxResults
			// lowest-position matches — the same prefix Sharded's
			// budgeted fan-out reconstructs.
			if opts.MaxResults > 0 && len(res.Matches) >= opts.MaxResults {
				break
			}
		} else if r.Truncated {
			res.Truncated = true
		}
	}
	return res
}

// FilterRatio returns the fraction of the corpus pruned without
// verification for query q, in [0,1]; higher is better.
func (idx *Index) FilterRatio(q *graph.Graph) float64 {
	if idx.corpus.Len() == 0 {
		return 0
	}
	return 1 - float64(len(idx.Candidates(q)))/float64(idx.corpus.Len())
}
