package gindex

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

// randomQueries draws connected subgraph queries from graphs of c.
func randomQueries(rng *rand.Rand, c *graph.Corpus, n int) []*graph.Graph {
	var out []*graph.Graph
	for len(out) < n {
		src := c.Graph(rng.Intn(c.Len()))
		if q := datagen.RandomConnectedSubgraph(rng, src, 3+rng.Intn(5)); q != nil {
			out = append(out, q)
		}
	}
	return out
}

// TestShardedMatchesMonolithic is the core equivalence property: for
// randomized corpora, any shard count, any worker count, and any
// MaxResults budget, Sharded returns the same result set and order as the
// monolithic Index (the K=1 oracle).
func TestShardedMatchesMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	opts := pattern.MatchOptions()
	for _, corpusN := range []int{1, 3, 37} {
		c := datagen.ChemicalCorpus(int64(corpusN), corpusN, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
		mono := Build(c)
		queries := randomQueries(rng, c, 8)
		for _, k := range []int{1, 2, 3, 8, 64} {
			for _, workers := range []int{1, 4} {
				sh := BuildSharded(c, k, workers)
				if sh.Len() != c.Len() || sh.NumShards() != k {
					t.Fatalf("k=%d: Len=%d NumShards=%d", k, sh.Len(), sh.NumShards())
				}
				for qi, q := range queries {
					want := mono.Search(q, opts)
					got := sh.Search(q, opts)
					if !reflect.DeepEqual(want.Matches, got.Matches) {
						t.Fatalf("n=%d k=%d w=%d q%d: matches %v vs %v", corpusN, k, workers, qi, got.Matches, want.Matches)
					}
					if got.Candidates != want.Candidates || got.Scanned != want.Scanned ||
						got.Verified != want.Verified || got.Truncated != want.Truncated {
						t.Fatalf("n=%d k=%d w=%d q%d: stats %+v vs %+v", corpusN, k, workers, qi, got, want)
					}
					// Under a budget both must return the same prefix of
					// the unbudgeted answer, in the same order.
					for _, max := range []int{1, 2, 5} {
						bopts := opts
						bopts.MaxResults = max
						bw := mono.Search(q, bopts)
						bg := sh.Search(q, bopts)
						if !reflect.DeepEqual(bw.Matches, bg.Matches) {
							t.Fatalf("n=%d k=%d w=%d q%d max=%d: %v vs %v", corpusN, k, workers, qi, max, bg.Matches, bw.Matches)
						}
						wantPrefix := want.Matches
						if len(wantPrefix) > max {
							wantPrefix = wantPrefix[:max]
						}
						if !reflect.DeepEqual(bw.Matches, wantPrefix) {
							t.Fatalf("budgeted answer %v is not the prefix of %v", bw.Matches, want.Matches)
						}
					}
				}
			}
		}
	}
}

// TestShardedSearchIsDeterministic hammers the budgeted fan-out: the
// shared budget races across worker goroutines, but the returned matches
// must be identical on every run.
func TestShardedSearchIsDeterministic(t *testing.T) {
	c := datagen.ChemicalCorpus(7, 60, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	sh := BuildSharded(c, 8, 0)
	rng := rand.New(rand.NewSource(7))
	opts := pattern.MatchOptions()
	opts.MaxResults = 4
	for _, q := range randomQueries(rng, c, 5) {
		first := sh.Search(q, opts)
		for run := 0; run < 20; run++ {
			again := sh.Search(q, opts)
			if !reflect.DeepEqual(first.Matches, again.Matches) {
				t.Fatalf("run %d: %v vs %v", run, again.Matches, first.Matches)
			}
		}
	}
}

// mutateCorpus applies the same batch to a plain corpus the way
// Corpus.Remove/Add do, as the oracle for ApplyBatch's renumbering.
func mutateCorpus(c *graph.Corpus, added []*graph.Graph, removed []string) *graph.Corpus {
	out := graph.NewCorpus()
	rm := map[string]bool{}
	for _, n := range removed {
		rm[n] = true
	}
	c.Each(func(_ int, g *graph.Graph) {
		if !rm[g.Name()] {
			out.MustAdd(g)
		}
	})
	for _, g := range added {
		out.MustAdd(g)
	}
	return out
}

// TestApplyBatchMatchesFreshBuild applies random add/remove batches
// incrementally and checks, after every batch, that the maintained Sharded
// answers exactly like a monolithic index freshly built over the mutated
// corpus — and that only the touched shards were rebuilt.
func TestApplyBatchMatchesFreshBuild(t *testing.T) {
	const k = 6
	rng := rand.New(rand.NewSource(23))
	c := datagen.ChemicalCorpus(1, 40, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	extra := datagen.ChemicalCorpus(2, 30, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	// Distinct names for the incoming graphs.
	var pool []*graph.Graph
	extra.Each(func(i int, g *graph.Graph) {
		ng := g.Clone()
		ng.SetName("new" + g.Name())
		pool = append(pool, ng)
	})

	sh := BuildSharded(c, k, 0)
	live := c.Clone()
	opts := pattern.MatchOptions()
	for batch := 0; batch < 5 && len(pool) > 0; batch++ {
		// Remove up to 3 random survivors, add up to 4 from the pool.
		var removed []string
		names := live.Names()
		for _, i := range rng.Perm(len(names))[:min(3, len(names))] {
			removed = append(removed, names[i])
		}
		take := min(1+rng.Intn(4), len(pool))
		added := pool[:take]
		pool = pool[take:]

		prevEpochs := sh.Epochs()
		prevShards := make([]*shardCore, k)
		copy(prevShards, sh.shards)
		next, rep, err := sh.ApplyBatch(added, removed)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Added != len(added) || rep.Removed != len(removed) || rep.Shards != k {
			t.Fatalf("report %+v", rep)
		}
		touched := map[int]bool{}
		for _, s := range rep.Rebuilt {
			touched[s] = true
		}
		for s := 0; s < k; s++ {
			if touched[s] {
				if next.Epoch(s) != prevEpochs[s]+1 {
					t.Fatalf("shard %d rebuilt but epoch %d -> %d", s, prevEpochs[s], next.Epoch(s))
				}
			} else {
				if next.Epoch(s) != prevEpochs[s] {
					t.Fatalf("shard %d untouched but epoch bumped", s)
				}
				if next.shards[s] != prevShards[s] {
					t.Fatalf("shard %d untouched but core not shared", s)
				}
			}
		}

		live = mutateCorpus(live, added, removed)
		fresh := Build(live)
		sh = next
		for qi, q := range randomQueries(rng, live, 6) {
			want := fresh.Search(q, opts)
			got := sh.Search(q, opts)
			if !reflect.DeepEqual(want.Matches, got.Matches) || got.Candidates != want.Candidates {
				t.Fatalf("batch %d q%d: %+v vs %+v", batch, qi, got, want)
			}
		}
	}
}

func TestApplyBatchRejectsBadBatches(t *testing.T) {
	c := datagen.ChemicalCorpus(1, 10, datagen.ChemicalOptions{MinNodes: 6, MaxNodes: 10})
	sh := BuildSharded(c, 4, 1)
	if _, _, err := sh.ApplyBatch(nil, []string{"no-such-graph"}); err == nil {
		t.Fatal("removing an unindexed graph must error")
	}
	dup := c.Graph(0).Clone()
	if _, _, err := sh.ApplyBatch([]*graph.Graph{dup}, nil); err == nil {
		t.Fatal("adding a duplicate name must error")
	}
	// Remove-then-readd of the same name within one batch is legal (the
	// MIDAS shape for a replaced graph).
	if _, _, err := sh.ApplyBatch([]*graph.Graph{dup}, []string{dup.Name()}); err != nil {
		t.Fatalf("replace batch: %v", err)
	}
	if _, _, err := sh.ApplyBatch([]*graph.Graph{nil}, nil); err == nil {
		t.Fatal("nil added graph must error")
	}
}

// TestShardPartialsMergeToGlobalAnswer pins the serving layer's cache
// path: per-shard partials obtained independently (as vqiserve caches
// them) merge to exactly the global budgeted answer.
func TestShardPartialsMergeToGlobalAnswer(t *testing.T) {
	c := datagen.ChemicalCorpus(5, 50, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	sh := BuildSharded(c, 5, 0)
	mono := Build(c)
	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	for _, q := range randomQueries(rng, c, 6) {
		for _, max := range []int{0, 3} {
			opts := pattern.MatchOptions()
			opts.MaxResults = max
			partials := make([]ShardResult, sh.NumShards())
			for s := range partials {
				partials[s] = sh.SearchShardCtx(ctx, s, q, opts)
				if partials[s].Epoch != sh.Epoch(s) {
					t.Fatalf("partial epoch %d vs shard epoch %d", partials[s].Epoch, sh.Epoch(s))
				}
			}
			merged := MergeShardResults(partials, max)
			want := mono.SearchCtx(ctx, q, opts)
			if !reflect.DeepEqual(want.Matches, merged.Matches) {
				t.Fatalf("max=%d: merged %v vs monolithic %v", max, merged.Matches, want.Matches)
			}
		}
	}
}

func TestShardedSearchCtxCanceledTruncates(t *testing.T) {
	c := datagen.ChemicalCorpus(9, 40, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 18})
	sh := BuildSharded(c, 4, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := graph.New("q")
	q.AddNode("C")
	q.AddNode("C")
	q.MustAddEdge(0, 1, "s")
	res := sh.SearchCtx(ctx, q, pattern.MatchOptions())
	if !res.Truncated {
		t.Fatal("canceled search must report truncation")
	}
	if res.Verified != 0 {
		t.Fatalf("canceled before any verification, Verified = %d", res.Verified)
	}
}

func TestShardedEmptyCorpus(t *testing.T) {
	sh := BuildSharded(graph.NewCorpus(), 4, 1)
	q := graph.New("q")
	q.AddNode("C")
	res := sh.Search(q, pattern.MatchOptions())
	if len(res.Matches) != 0 || res.Candidates != 0 || res.Scanned != 0 {
		t.Fatalf("empty corpus search = %+v", res)
	}
	g := graph.New("g1")
	g.AddNode("C")
	next, rep, err := sh.ApplyBatch([]*graph.Graph{g}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rebuilt) != 1 {
		t.Fatalf("one added graph must rebuild one shard, got %v", rep.Rebuilt)
	}
	if got := next.Search(q, isomorph.Options{}); len(got.Matches) != 1 || got.Matches[0] != "g1" {
		t.Fatalf("after add: %+v", got)
	}
}

func TestShardOfIsStable(t *testing.T) {
	// The hash partition must be a pure function of (name, k).
	for _, name := range []string{"", "mol0", "mol1", "a-very-long-graph-name"} {
		for _, k := range []int{1, 2, 7, 16} {
			s := ShardOf(name, k)
			if s < 0 || s >= k {
				t.Fatalf("ShardOf(%q,%d) = %d out of range", name, k, s)
			}
			if s != ShardOf(name, k) {
				t.Fatalf("ShardOf(%q,%d) unstable", name, k)
			}
		}
	}
	if ShardOf("mol0", 1) != 0 {
		t.Fatal("k=1 must map everything to shard 0")
	}
}

// TestValidateBatchMatchesApplyBatch pins the durability contract: a
// batch ValidateBatch accepts must apply cleanly, and one it rejects must
// be rejected by ApplyBatch with the same error — so a serving layer can
// validate, durably log, then apply, knowing the logged record will
// always replay.
func TestValidateBatchMatchesApplyBatch(t *testing.T) {
	c := datagen.ChemicalCorpus(1, 12, datagen.ChemicalOptions{MinNodes: 6, MaxNodes: 10})
	sh := BuildSharded(c, 4, 1)
	fresh := datagen.ChemicalCorpus(9, 3, datagen.ChemicalOptions{MinNodes: 5, MaxNodes: 8})
	var adds []*graph.Graph
	fresh.Each(func(_ int, g *graph.Graph) {
		ng := g.Clone()
		ng.SetName("v" + g.Name())
		adds = append(adds, ng)
	})
	dup := c.Graph(0).Clone()
	cases := []struct {
		added   []*graph.Graph
		removed []string
	}{
		{adds, nil},
		{adds, []string{c.Graph(1).Name()}},
		{[]*graph.Graph{dup}, []string{dup.Name()}}, // replace: legal
		{nil, []string{"missing"}},                  // unindexed removal
		{nil, []string{c.Graph(0).Name(), c.Graph(0).Name()}},
		{[]*graph.Graph{dup}, nil}, // duplicate add
		{[]*graph.Graph{nil}, nil},
		{[]*graph.Graph{adds[0], adds[0]}, nil}, // added twice
	}
	for i, tc := range cases {
		verr := sh.ValidateBatch(tc.added, tc.removed)
		_, _, aerr := sh.ApplyBatch(tc.added, tc.removed)
		if (verr == nil) != (aerr == nil) {
			t.Fatalf("case %d: ValidateBatch err=%v, ApplyBatch err=%v", i, verr, aerr)
		}
		if verr != nil && verr.Error() != aerr.Error() {
			t.Fatalf("case %d: error mismatch: %v vs %v", i, verr, aerr)
		}
	}
}

// TestRestoreEpochs pins the recovery path: a fresh build with restored
// epochs is indistinguishable — epochs included — from the instance that
// applied the batches live.
func TestRestoreEpochs(t *testing.T) {
	const k = 5
	c := datagen.ChemicalCorpus(3, 20, datagen.ChemicalOptions{MinNodes: 6, MaxNodes: 10})
	live := BuildSharded(c, k, 1)
	cur := c.Clone()
	fresh := datagen.ChemicalCorpus(8, 6, datagen.ChemicalOptions{MinNodes: 5, MaxNodes: 8})
	var pool []*graph.Graph
	fresh.Each(func(_ int, g *graph.Graph) {
		ng := g.Clone()
		ng.SetName("r" + g.Name())
		pool = append(pool, ng)
	})
	for i := 0; i < 3; i++ {
		added := pool[i*2 : i*2+2]
		removed := []string{cur.Graph(i).Name()}
		next, _, err := live.ApplyBatch(added, removed)
		if err != nil {
			t.Fatal(err)
		}
		live = next
		cur = mutateCorpus(cur, added, removed)
	}

	rebuilt := BuildSharded(cur, k, 1)
	rebuilt.RestoreEpochs(live.Epochs())
	for s := 0; s < k; s++ {
		if rebuilt.Epoch(s) != live.Epoch(s) {
			t.Fatalf("shard %d epoch %d, want %d", s, rebuilt.Epoch(s), live.Epoch(s))
		}
	}
	// Mismatched length must be ignored, not partially applied.
	before := rebuilt.Epochs()
	rebuilt.RestoreEpochs([]uint64{1, 2})
	if !reflect.DeepEqual(rebuilt.Epochs(), before) {
		t.Fatal("RestoreEpochs applied a wrong-length epoch vector")
	}
	// Epochs keep advancing from the restored values.
	next, rep, err := rebuilt.ApplyBatch(nil, []string{cur.Graph(0).Name()})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range rep.Rebuilt {
		if next.Epoch(s) != rebuilt.Epoch(s)+1 {
			t.Fatalf("shard %d epoch did not advance from restored value", s)
		}
	}
}
