package gindex

// Two-stage similarity retrieval over an ANN-enabled Sharded index:
//
//   stage 1 (shortlist) — embed the query with the shared provider, then
//   gather a candidate shortlist per shard: O(probes) LSH bucket lookups in
//   approx mode, or the full exact cosine scan in exact mode (the oracle
//   the approximate path is benchmarked against);
//
//   stage 2 (re-rank) — merge the per-shard top-k sets into the global
//   top-k by (cosine desc, corpus position asc), then optionally verify
//   each survivor with an exact VF2 containment check and stably re-rank
//   containing graphs first.
//
// The degrade contract matches Search: similarity queries never fail on
// budget pressure — context cancellation or a VF2 step budget marks the
// result Truncated (scores are still exact for everything scored; only
// verification coverage is reduced). Results are deterministic at any
// worker count: per-shard shortlists are slot-indexed and the merge orders
// by (score desc, pos asc).

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ann"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/obs"
	"repro/internal/par"
)

// ErrANNDisabled is returned by Similar on an index built without
// similarity state (BuildSharded instead of BuildShardedANN).
var ErrANNDisabled = errors.New("gindex: similarity retrieval requires an ANN-enabled index (BuildShardedANN)")

// Similarity observability: query counts by mode, shortlist/probe sizes,
// and per-stage wall time (via obs.StartSpan stage histograms).
var (
	obsSimilarQueries   = obs.Default.Counter("gindex_similar_queries_total")
	obsSimilarApprox    = obs.Default.Counter("gindex_similar_approx_total")
	obsSimilarProbes    = obs.Default.HistogramBuckets("gindex_similar_probes", []float64{8, 16, 32, 64, 128, 256, 512})
	obsSimilarShortlist = obs.Default.HistogramBuckets("gindex_similar_shortlist", []float64{4, 16, 64, 256, 1024, 4096})
)

// SimilarOptions parameterizes one similarity query. The zero value asks
// for the approximate top-10 without verification.
type SimilarOptions struct {
	// K is the result size (0 = 10).
	K int
	// Exact replaces the LSH shortlist with a full cosine scan — the exact
	// oracle; probes are ignored.
	Exact bool
	// Probes overrides the per-table probe count (0 = the index's build
	// default). Approx mode only.
	Probes int
	// Verify re-ranks the top-k by exact VF2 containment (does the query
	// pattern embed in the graph?), containing graphs first.
	Verify bool
	// VerifyOpts bounds each VF2 check (MaxSteps, Ctx...). MaxEmbeddings is
	// forced to 1 — containment is a yes/no question.
	VerifyOpts isomorph.Options
}

// SimilarMatch is one retrieved graph.
type SimilarMatch struct {
	Name  string
	Pos   int     // global corpus position
	Score float64 // exact cosine similarity to the query embedding
	// Contains reports that the query pattern was verified (VF2) to embed
	// in this graph. Only meaningful when SimilarOptions.Verify was set and
	// the result is not Truncated at this entry.
	Contains bool
}

// SimilarResult is the outcome of one similarity query.
type SimilarResult struct {
	Matches   []SimilarMatch
	Approx    bool // shortlist came from the LSH index
	Probed    int  // LSH buckets examined across shards (approx only)
	Shortlist int  // candidates exact-scored across shards
	Scanned   int  // vectors visible to the query (corpus size)
	Verified  int  // VF2 containment checks completed
	Truncated bool // verification coverage was cut short; scores are exact
}

// simCand carries a scored candidate with enough addressing to verify it
// without re-deriving shard membership.
type simCand struct {
	shard, local int
	pos          int
	score        float64
}

// Similar is SimilarCtx with a background context.
func (sh *Sharded) Similar(q *graph.Graph, opts SimilarOptions) (SimilarResult, error) {
	return sh.SimilarCtx(context.Background(), q, opts)
}

// SimilarCtx runs the two-stage similarity query. It returns an error only
// for structural misuse (ANN disabled, empty query); resource pressure
// degrades to Truncated instead.
func (sh *Sharded) SimilarCtx(ctx context.Context, q *graph.Graph, opts SimilarOptions) (SimilarResult, error) {
	var res SimilarResult
	if sh.annCfg == nil {
		return res, ErrANNDisabled
	}
	if q == nil || q.NumNodes() == 0 {
		return res, fmt.Errorf("gindex: Similar: empty query graph")
	}
	k := opts.K
	if k <= 0 {
		k = 10
	}
	res.Approx = !opts.Exact
	res.Scanned = sh.Len()
	if obs.On() {
		obsSimilarQueries.Inc()
		if res.Approx {
			obsSimilarApprox.Inc()
		}
	}

	sctx, span := obs.StartSpan(ctx, "similar_embed")
	qv := sh.emb.Embed(q)
	span.End()

	// Stage 1: per-shard shortlists, slot-indexed for determinism. Each
	// shard contributes at most k candidates — the global top-k is a subset
	// of the union of per-shard top-ks.
	type shardTop struct {
		scored []ann.Scored
		stats  ann.LookupStats
	}
	// Exact scans are corpus-proportional, so they fan out across shards;
	// approximate lookups cost O(probes) bucket reads plus a short scoring
	// pass per shard — less than the goroutine fan-out itself — so they run
	// inline. (Measured: at interactive corpus sizes the spawn overhead was
	// the single largest term of approximate lookup latency.)
	sctx, span = obs.StartSpan(sctx, "similar_shortlist")
	tops := make([]shardTop, sh.k)
	shortlistWorkers := sh.workers
	if !opts.Exact {
		shortlistWorkers = 1
	}
	par.ForEachN(sh.k, shortlistWorkers, func(s int) {
		core := sh.shards[s]
		if opts.Exact {
			scored := ann.ExactTopK(core.vecs, qv, k)
			tops[s] = shardTop{scored: scored, stats: ann.LookupStats{Shortlist: len(core.vecs)}}
			return
		}
		scored, stats := core.ann.TopK(qv, k, opts.Probes)
		tops[s] = shardTop{scored: scored, stats: stats}
	})
	span.End()

	cands := make([]simCand, 0, sh.k*k)
	for s, top := range tops {
		res.Probed += top.stats.Probed
		res.Shortlist += top.stats.Shortlist
		for _, sc := range top.scored {
			cands = append(cands, simCand{
				shard: s,
				local: int(sc.ID),
				pos:   sh.globals[s][sc.ID],
				score: sc.Score,
			})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].score != cands[j].score {
			return cands[i].score > cands[j].score
		}
		return cands[i].pos < cands[j].pos
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	if obs.On() {
		obsSimilarShortlist.Observe(float64(res.Shortlist))
		if res.Approx {
			obsSimilarProbes.Observe(float64(res.Probed))
		}
	}

	res.Matches = make([]SimilarMatch, len(cands))
	for i, c := range cands {
		res.Matches[i] = SimilarMatch{Name: sh.order[c.pos], Pos: c.pos, Score: c.score}
	}

	// Stage 2: optional exact VF2 containment re-rank of the k survivors.
	// Sequential — k is interactive-scale — and degrade-not-error: a dead
	// context or exhausted step budget leaves the remaining entries
	// unverified and marks the result Truncated.
	if opts.Verify {
		_, span = obs.StartSpan(sctx, "similar_verify")
		defer span.End()
		vopts := opts.VerifyOpts
		vopts.MaxEmbeddings = 1
		if vopts.Ctx == nil {
			vopts.Ctx = sctx
		}
		for i, c := range cands {
			if sctx.Err() != nil {
				res.Truncated = true
				break
			}
			core := sh.shards[c.shard]
			g, err := core.sub.Hydrate(c.local)
			if err != nil {
				// Corrupt lazy frame: leave this entry unverified.
				res.Truncated = true
				continue
			}
			vopts.TargetIndex = core.idx.targetIndexFor(c.local, g)
			r := isomorph.Count(q, g, vopts)
			res.Verified++
			if r.Embeddings > 0 {
				res.Matches[i].Contains = true
			} else if r.Truncated {
				res.Truncated = true
			}
		}
		sort.SliceStable(res.Matches, func(i, j int) bool {
			return res.Matches[i].Contains && !res.Matches[j].Contains
		})
	}
	return res, nil
}
