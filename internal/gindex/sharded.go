package gindex

// Sharded partitions the filter-verify index across K shards so that
// (a) corpus changes rebuild only the shards that actually hold touched
// graphs (batch-update latency scales with touched-shard count, not corpus
// size — the MIDAS maintenance story applied to the query index), and
// (b) queries fan out across shards in parallel under a shared result
// budget, stopping shards early once the budget provably cannot admit
// anything they still hold.
//
// Contract:
//
//   - Partitioning is a deterministic hash of the graph name (ShardOf), so
//     the same corpus always shards the same way at a given K.
//   - Results are merged in global corpus order, and Search returns exactly
//     the same match set and order as the monolithic Index built over the
//     same corpus — including under an opts.MaxResults budget, where both
//     return the first MaxResults matches in corpus order. Index is the
//     K=1 oracle; the property tests assert the equivalence.
//   - ApplyBatch is copy-on-write: it returns a new Sharded sharing the
//     untouched shards' indexes with the old one and bumps the epochs of
//     the rebuilt shards only. The old value stays fully usable, which is
//     what lets a serving layer swap indexes under concurrent queries
//     without locking readers.
//   - Per-shard epochs are the cache-invalidation currency: an entry keyed
//     by (query, shard, epoch) stays valid across updates that did not
//     rebuild that shard (see qcache.ShardKey / qcache.EpochKey).

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/obs"
	"repro/internal/par"
)

// Build/rebuild observability: per-shard (re)build wall time feeds a
// histogram so batch-update latency is visible per shard, and the
// counters separate from-scratch builds from incremental rebuilds. The
// ann counters mirror the pair for the per-shard LSH tables — the
// touched-shards-only rebuild property is asserted against them.
var (
	obsShardBuilds      = obs.Default.Counter("gindex_shard_builds_total")
	obsShardRebuilds    = obs.Default.Counter("gindex_shard_rebuilds_total")
	obsBatchUpdates     = obs.Default.Counter("gindex_batch_updates_total")
	obsShardBuildSecs   = obs.Default.Histogram("gindex_shard_build_seconds")
	obsShardRebuildSec  = obs.Default.Histogram("gindex_shard_rebuild_seconds")
	obsANNShardBuilds   = obs.Default.Counter("gindex_ann_shard_builds_total")
	obsANNShardRebuilds = obs.Default.Counter("gindex_ann_shard_rebuilds_total")
)

// ShardOf returns the shard owning the graph with the given name, in
// [0, k). The FNV-1a hash is stable across processes, so a corpus shards
// identically wherever it is loaded.
func ShardOf(name string, k int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(k))
}

// shardCore is the immutable per-shard state: the shard's sub-corpus and
// the monolithic Index built over it. ApplyBatch shares cores of untouched
// shards between generations; everything position-dependent (global
// positions, epochs) lives on Sharded itself because removals anywhere in
// the corpus renumber every shard's graphs.
type shardCore struct {
	sub *graph.Corpus
	idx *Index

	// Similarity state, present only on ANN-enabled indexes
	// (BuildShardedANN): the shard's embedding vectors by local position and
	// the LSH index over them. Rebuilt together with idx, so a shared core
	// always has mutually consistent exact and approximate views.
	vecs [][]float32
	ann  *ann.Index
}

// Sharded is a K-way sharded filter-verify index over a corpus snapshot.
// It is immutable: Search never mutates it, and ApplyBatch returns a new
// value. Safe for unsynchronized concurrent reads.
type Sharded struct {
	k       int
	workers int
	shards  []*shardCore
	globals [][]int // shard -> local position -> global corpus position (ascending)
	epochs  []uint64
	order   []string       // graph names in global corpus order
	pos     map[string]int // name -> global position

	// Similarity configuration, nil/absent on plain BuildSharded indexes.
	// annCfg is shared (never mutated) across generations so rebuilt shards
	// hash with the identical hyperplane family.
	annCfg *ann.Config
	emb    *ann.Embedder

	// stats caches this generation's aggregated corpus label statistics
	// (PlanStats). Lazily filled; never shared across generations because
	// ApplyBatch allocates a fresh Sharded.
	stats atomic.Pointer[planStats]
}

// buildCore builds one shard's immutable state: the filter-verify index,
// plus — on ANN-enabled values — the shard's embedding vectors and LSH
// table. Inner builds run single-threaded because every call site already
// fans out one core per worker.
func (sh *Sharded) buildCore(sub *graph.Corpus) *shardCore {
	core := &shardCore{sub: sub, idx: Build(sub)}
	if sh.annCfg != nil {
		cfg := *sh.annCfg
		cfg.Workers = 1
		core.vecs = sh.emb.EmbedCorpus(sub, 1)
		core.ann = ann.Build(core.vecs, sh.emb.Dim(), cfg)
	}
	return core
}

// ANNEnabled reports whether this index carries per-shard embedding
// vectors and LSH tables (built by BuildShardedANN).
func (sh *Sharded) ANNEnabled() bool { return sh.annCfg != nil }

// ANNConfig returns the similarity configuration (defaults resolved), or
// the zero Config when ANN is disabled.
func (sh *Sharded) ANNConfig() ann.Config {
	if sh.annCfg == nil {
		return ann.Config{}
	}
	return *sh.annCfg
}

// BuildSharded partitions c into k shards by ShardOf and builds the
// per-shard indexes in parallel on a bounded pool (workers <= 0 =
// GOMAXPROCS). k <= 0 also defaults to GOMAXPROCS. The corpus graphs are
// held by reference; treat them as immutable afterwards.
func BuildSharded(c *graph.Corpus, k, workers int) *Sharded {
	return buildSharded(c, k, workers, nil)
}

// BuildShardedANN is BuildSharded plus per-shard similarity state: every
// shard also embeds its graphs (ann.Embedder) and builds an LSH index over
// the vectors with the given configuration. All shards share one
// hyperplane family (cfg.Seed), so a shard rebuilt by ApplyBatch hashes
// exactly as it would in a from-scratch build.
func BuildShardedANN(c *graph.Corpus, k, workers int, cfg ann.Config) *Sharded {
	return buildSharded(c, k, workers, &cfg)
}

func buildSharded(c *graph.Corpus, k, workers int, annCfg *ann.Config) *Sharded {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	sh := &Sharded{
		k:       k,
		workers: workers,
		shards:  make([]*shardCore, k),
		globals: make([][]int, k),
		epochs:  make([]uint64, k),
		order:   make([]string, 0, c.Len()),
		pos:     make(map[string]int, c.Len()),
	}
	if annCfg != nil {
		cfg := annCfg.Resolved()
		cfg.Workers = 0 // per-core build parallelism is set at the build site
		sh.annCfg = &cfg
		sh.emb = ann.NewEmbedder()
	}
	subs := make([]*graph.Corpus, k)
	for s := range subs {
		subs[s] = graph.NewCorpus()
	}
	// Partitioning goes by name only (Adopt shares hydration state), so a
	// lazy mmap-backed corpus is not forced resident just to be sharded —
	// the eager decode cost is paid by Build below, or skipped entirely
	// when the caller restores shard indexes from persisted sections.
	c.EachName(func(gi int, name string) {
		s := ShardOf(name, k)
		subs[s].MustAdopt(c, gi)
		sh.globals[s] = append(sh.globals[s], gi)
		sh.pos[name] = gi
		sh.order = append(sh.order, name)
	})
	par.ForEachN(k, workers, func(s int) {
		t0 := time.Now()
		sh.shards[s] = sh.buildCore(subs[s])
		if obs.On() {
			obsShardBuilds.Inc()
			obsShardBuildSecs.Observe(time.Since(t0).Seconds())
			if sh.annCfg != nil {
				obsANNShardBuilds.Inc()
			}
		}
	})
	return sh
}

// NumShards returns K.
func (sh *Sharded) NumShards() int { return sh.k }

// Len returns the number of indexed graphs.
func (sh *Sharded) Len() int { return len(sh.order) }

// Epoch returns shard s's epoch: it starts at 0 and is bumped every time
// ApplyBatch rebuilds the shard. Equal epochs at equal K mean the shard's
// contents are unchanged.
func (sh *Sharded) Epoch(s int) uint64 { return sh.epochs[s] }

// Epochs returns a copy of all per-shard epochs, indexed by shard.
func (sh *Sharded) Epochs() []uint64 {
	out := make([]uint64, len(sh.epochs))
	copy(out, sh.epochs)
	return out
}

// UpdateReport describes one incremental ApplyBatch.
type UpdateReport struct {
	Added, Removed int
	Shards         int   // K
	Rebuilt        []int // ids of the shards that were rebuilt, ascending
}

// ValidateBatch checks a batch against this index without applying it:
// every removed name must be indexed and appear once, every added graph
// must be non-nil, unique within the batch, and not already indexed
// (unless the same batch removes it first). Serving layers that log
// batches durably before applying them call this first — a batch that
// passes here is guaranteed to apply cleanly, so a logged record can
// always be replayed.
func (sh *Sharded) ValidateBatch(added []*graph.Graph, removedNames []string) error {
	_, _, err := sh.validateBatch(added, removedNames)
	return err
}

func (sh *Sharded) validateBatch(added []*graph.Graph, removedNames []string) (removedSet, addedSet map[string]bool, err error) {
	removedSet = make(map[string]bool, len(removedNames))
	for _, name := range removedNames {
		if _, ok := sh.pos[name]; !ok {
			return nil, nil, fmt.Errorf("gindex: ApplyBatch: removed graph %q not indexed", name)
		}
		if removedSet[name] {
			return nil, nil, fmt.Errorf("gindex: ApplyBatch: graph %q removed twice", name)
		}
		removedSet[name] = true
	}
	addedSet = make(map[string]bool, len(added))
	for _, g := range added {
		if g == nil {
			return nil, nil, fmt.Errorf("gindex: ApplyBatch: nil added graph")
		}
		name := g.Name()
		if _, exists := sh.pos[name]; exists && !removedSet[name] {
			return nil, nil, fmt.Errorf("gindex: ApplyBatch: added graph %q already indexed", name)
		}
		if addedSet[name] {
			return nil, nil, fmt.Errorf("gindex: ApplyBatch: graph %q added twice", name)
		}
		addedSet[name] = true
	}
	return removedSet, addedSet, nil
}

// RestoreEpochs overwrites the per-shard epochs with values recovered
// from a persisted snapshot, so that an index rebuilt from durable state
// reports the same epochs as the never-restarted instance whose state was
// snapshotted. len(epochs) must equal NumShards; extra or missing values
// are ignored rather than guessed at. Called once, right after a build,
// before the index is published.
func (sh *Sharded) RestoreEpochs(epochs []uint64) {
	if len(epochs) != sh.k {
		return
	}
	copy(sh.epochs, epochs)
}

// ApplyBatch applies a batch update — removals first, then additions, the
// MIDAS batch shape — and returns a new Sharded. Only the shards owning a
// removed or added graph are rebuilt; every other shard's sub-corpus and
// index are shared with the receiver, and only rebuilt shards' epochs are
// bumped. The receiver is left untouched and remains a valid index over
// the pre-batch corpus.
func (sh *Sharded) ApplyBatch(added []*graph.Graph, removedNames []string) (*Sharded, *UpdateReport, error) {
	removedSet, addedSet, err := sh.validateBatch(added, removedNames)
	if err != nil {
		return nil, nil, err
	}

	touched := make(map[int]bool)
	for name := range removedSet {
		touched[ShardOf(name, sh.k)] = true
	}
	for name := range addedSet {
		touched[ShardOf(name, sh.k)] = true
	}

	next := &Sharded{
		k:       sh.k,
		workers: sh.workers,
		shards:  make([]*shardCore, sh.k),
		globals: make([][]int, sh.k),
		epochs:  make([]uint64, sh.k),
		order:   make([]string, 0, len(sh.order)-len(removedSet)+len(added)),
		pos:     make(map[string]int, len(sh.order)-len(removedSet)+len(added)),
		annCfg:  sh.annCfg,
		emb:     sh.emb,
	}
	copy(next.epochs, sh.epochs)

	// New global order: corpus semantics — removals preserve relative
	// order, additions append in batch order.
	for _, name := range sh.order {
		if !removedSet[name] {
			next.order = append(next.order, name)
		}
	}
	for _, g := range added {
		next.order = append(next.order, g.Name())
	}
	for gi, name := range next.order {
		next.pos[name] = gi
		s := ShardOf(name, sh.k)
		next.globals[s] = append(next.globals[s], gi)
	}

	// Untouched shards share their core; touched shards get a fresh
	// sub-corpus (old members minus removals, plus this shard's additions
	// in batch order) and a rebuilt index, in parallel.
	var rebuilt []int
	subs := make([]*graph.Corpus, sh.k)
	for s := 0; s < sh.k; s++ {
		if !touched[s] {
			next.shards[s] = sh.shards[s]
			continue
		}
		rebuilt = append(rebuilt, s)
		next.epochs[s] = sh.epochs[s] + 1
		sub := graph.NewCorpus()
		from := sh.shards[s].sub
		from.EachName(func(i int, name string) {
			if !removedSet[name] {
				sub.MustAdopt(from, i)
			}
		})
		subs[s] = sub
	}
	for _, g := range added {
		subs[ShardOf(g.Name(), sh.k)].MustAdd(g)
	}
	par.ForEachN(len(rebuilt), sh.workers, func(i int) {
		s := rebuilt[i]
		t0 := time.Now()
		next.shards[s] = next.buildCore(subs[s])
		if obs.On() {
			obsShardRebuilds.Inc()
			obsShardRebuildSec.Observe(time.Since(t0).Seconds())
			if next.annCfg != nil {
				obsANNShardRebuilds.Inc()
			}
		}
	})
	if obs.On() {
		obsBatchUpdates.Inc()
	}

	rep := &UpdateReport{
		Added:   len(added),
		Removed: len(removedSet),
		Shards:  sh.k,
		Rebuilt: rebuilt,
	}
	return next, rep, nil
}

// ShardMatch is one matching graph from a shard-local search, carrying its
// global corpus position so partials from different shards merge into
// corpus order.
type ShardMatch struct {
	Pos  int
	Name string
}

// ShardResult is the outcome of filter-verify restricted to one shard. A
// complete (non-Truncated) ShardResult depends only on the shard's
// contents and the query, which is what makes it cacheable under a
// (query, shard, epoch) key.
type ShardResult struct {
	Shard      int
	Epoch      uint64
	Matches    []ShardMatch // ascending Pos
	Candidates int
	Scanned    int
	Verified   int
	Truncated  bool
}

// SearchShardCtx runs filter-then-verify for q against shard s only.
// Matches are capped at opts.MaxResults (a shard can contribute at most
// that many graphs to any budgeted global answer), which keeps cached
// partials bounded without losing merge exactness.
func (sh *Sharded) SearchShardCtx(ctx context.Context, s int, q *graph.Graph, opts isomorph.Options) ShardResult {
	return sh.searchShard(ctx, s, q, opts, nil)
}

// searchShard is SearchShardCtx plus an optional cross-shard budget: when
// b is non-nil, confirmed matches are offered to the shared top-MaxResults
// heap, and the shard stops outright once its next candidate's global
// position exceeds the heap's bound — every later candidate in this shard
// has a larger position still, so none can enter the final answer.
func (sh *Sharded) searchShard(ctx context.Context, s int, q *graph.Graph, opts isomorph.Options, b *resultBudget) ShardResult {
	core := sh.shards[s]
	res := ShardResult{Shard: s, Epoch: sh.epochs[s], Scanned: core.sub.Len()}
	defer func() { recordSearch(res.Candidates, res.Verified, len(res.Matches), res.Truncated) }()
	if q.NumNodes() == 0 || core.sub.Len() == 0 {
		return res
	}
	if opts.Ctx == nil {
		opts.Ctx = ctx
	}
	cands := core.idx.Candidates(q)
	res.Candidates = len(cands)
	opts.MaxEmbeddings = 1
	for _, li := range cands {
		if ctx.Err() != nil {
			res.Truncated = true
			break
		}
		gp := sh.globals[s][li]
		if b != nil && !b.viable(gp) {
			// The shared cross-shard budget proves no later candidate in
			// this shard can enter the answer; count the early exit.
			if obs.On() {
				obsBudgetStops.Inc()
			}
			break
		}
		g, err := core.sub.Hydrate(li)
		if err != nil {
			// Corrupt lazy frame: this graph is unknowable, not a non-match.
			res.Truncated = true
			continue
		}
		opts.TargetIndex = core.idx.targetIndexFor(li, g)
		r := isomorph.Count(q, g, opts)
		res.Verified++
		if r.Embeddings > 0 {
			res.Matches = append(res.Matches, ShardMatch{Pos: gp, Name: g.Name()})
			if b != nil {
				b.admit(gp)
			}
			if opts.MaxResults > 0 && len(res.Matches) >= opts.MaxResults {
				break
			}
		} else if r.Truncated {
			res.Truncated = true
		}
	}
	return res
}

// MergeShardResults merges per-shard partials into one Result in global
// corpus order, truncating to maxResults (0 = unlimited). The merge is
// deterministic: it depends only on the partials' contents, never on the
// order they were computed in.
func MergeShardResults(partials []ShardResult, maxResults int) Result {
	var res Result
	var all []ShardMatch
	for _, p := range partials {
		res.Candidates += p.Candidates
		res.Scanned += p.Scanned
		res.Verified += p.Verified
		if p.Truncated {
			res.Truncated = true
		}
		all = append(all, p.Matches...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Pos < all[j].Pos })
	if maxResults > 0 && len(all) > maxResults {
		all = all[:maxResults]
	}
	for _, m := range all {
		res.Matches = append(res.Matches, m.Name)
	}
	return res
}

// Search runs filter-then-verify for q across all shards.
func (sh *Sharded) Search(q *graph.Graph, opts isomorph.Options) Result {
	return sh.SearchCtx(context.Background(), q, opts)
}

// SearchCtx fans the query out across shards on a bounded pool. When
// opts.MaxResults is set, shards share one atomic result budget: as soon
// as MaxResults matches with positions below a shard's scan frontier are
// confirmed anywhere, that shard stops verifying. The merged answer is
// byte-identical to the monolithic Index's at any K, worker count, and
// scheduling — the budget only changes how much verification work is
// skipped, never which matches survive.
func (sh *Sharded) SearchCtx(ctx context.Context, q *graph.Graph, opts isomorph.Options) Result {
	var b *resultBudget
	if opts.MaxResults > 0 {
		b = newResultBudget(opts.MaxResults)
	}
	partials := make([]ShardResult, sh.k)
	par.ForEachN(sh.k, sh.workers, func(s int) {
		partials[s] = sh.searchShard(ctx, s, q, opts, b)
	})
	return MergeShardResults(partials, opts.MaxResults)
}

// resultBudget is the shared cross-shard result budget: a max-heap of the
// `limit` smallest match positions confirmed so far, with the heap's
// maximum mirrored into an atomic so the per-candidate viability check is
// a single load. Skipping is sound by construction — a position is only
// declared non-viable when `limit` confirmed matches all precede it, and
// confirmed matches never leave the answer.
type resultBudget struct {
	limit int
	bound atomic.Int64 // heap max once full; MaxInt64 before that
	mu    sync.Mutex
	heap  []int // max-heap
}

func newResultBudget(limit int) *resultBudget {
	b := &resultBudget{limit: limit, heap: make([]int, 0, limit)}
	b.bound.Store(math.MaxInt64)
	return b
}

// viable reports whether a match at global position pos could still enter
// the final top-limit answer. Positions are unique across shards, so a
// strict comparison against the full heap's maximum is exact.
func (b *resultBudget) viable(pos int) bool {
	return int64(pos) < b.bound.Load()
}

// admit records a confirmed match position.
func (b *resultBudget) admit(pos int) {
	b.mu.Lock()
	if len(b.heap) < b.limit {
		b.heap = append(b.heap, pos)
		b.siftUp(len(b.heap) - 1)
		if len(b.heap) == b.limit {
			b.bound.Store(int64(b.heap[0]))
		}
	} else if pos < b.heap[0] {
		b.heap[0] = pos
		b.siftDown(0)
		b.bound.Store(int64(b.heap[0]))
	}
	b.mu.Unlock()
}

func (b *resultBudget) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if b.heap[p] >= b.heap[i] {
			return
		}
		b.heap[p], b.heap[i] = b.heap[i], b.heap[p]
		i = p
	}
}

func (b *resultBudget) siftDown(i int) {
	n := len(b.heap)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && b.heap[l] > b.heap[big] {
			big = l
		}
		if r < n && b.heap[r] > b.heap[big] {
			big = r
		}
		if big == i {
			return
		}
		b.heap[i], b.heap[big] = b.heap[big], b.heap[i]
		i = big
	}
}
