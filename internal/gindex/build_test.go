package gindex

import (
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

// Regression tests for the corpus-size edge cases: an empty corpus must
// not allocate size-class suffix bitsets (there is no value range to
// cover), and a single-graph corpus must behave exactly like the general
// case.

func TestBuildSizeClassEmpty(t *testing.T) {
	sc := buildSizeClass(nil)
	if len(sc.sizes) != 0 || len(sc.ge) != 0 {
		t.Fatalf("empty value range allocated %d sizes, %d suffix bitsets", len(sc.sizes), len(sc.ge))
	}
	if _, ok := sc.atLeast(0); ok {
		t.Fatal("atLeast over an empty range must report no graphs")
	}
}

func TestBuildEmptyCorpus(t *testing.T) {
	idx := Build(graph.NewCorpus())
	if n := len(idx.sizeNodes.ge) + len(idx.sizeEdges.ge); n != 0 {
		t.Fatalf("empty corpus allocated %d suffix bitsets", n)
	}
	q := graph.New("q")
	q.AddNode("C")
	if cands := idx.Candidates(q); cands != nil {
		t.Fatalf("Candidates on empty corpus = %v", cands)
	}
	res := idx.Search(q, pattern.MatchOptions())
	if len(res.Matches) != 0 || res.Candidates != 0 || res.Scanned != 0 || res.Truncated {
		t.Fatalf("search on empty corpus = %+v", res)
	}
	if idx.FilterRatio(q) != 0 {
		t.Fatalf("FilterRatio on empty corpus = %v", idx.FilterRatio(q))
	}
}

func TestBuildSingleGraph(t *testing.T) {
	g := graph.New("only")
	g.AddNode("C")
	g.AddNode("O")
	g.MustAddEdge(0, 1, "s")
	c := graph.NewCorpus()
	c.MustAdd(g)
	idx := Build(c)

	hit := graph.New("hit")
	hit.AddNode("C")
	hit.AddNode("O")
	hit.MustAddEdge(0, 1, "s")
	if res := idx.Search(hit, isomorph.Options{}); !reflect.DeepEqual(res.Matches, []string{"only"}) {
		t.Fatalf("single-graph hit = %+v", res)
	}
	// A query larger than the one graph must be pruned by the size class.
	big := graph.New("big")
	big.AddNodes(3, "C")
	big.MustAddEdge(0, 1, "s")
	big.MustAddEdge(1, 2, "s")
	if cands := idx.Candidates(big); len(cands) != 0 {
		t.Fatalf("oversized query produced candidates %v", cands)
	}
	miss := graph.New("miss")
	miss.AddNode("N")
	if cands := idx.Candidates(miss); len(cands) != 0 {
		t.Fatalf("absent-label query produced candidates %v", cands)
	}
}

// TestSearchMaxResultsIsOrderedPrefix pins the monolithic MaxResults
// contract Sharded's budget reproduces: the budgeted answer is the prefix
// of the unbudgeted one, in corpus order.
func TestSearchMaxResultsIsOrderedPrefix(t *testing.T) {
	c := datagen.ChemicalCorpus(4, 60, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14})
	idx := Build(c)
	q := graph.New("q")
	q.AddNode("C")
	q.AddNode("C")
	q.MustAddEdge(0, 1, "s")
	opts := pattern.MatchOptions()
	full := idx.Search(q, opts)
	if len(full.Matches) < 5 {
		t.Fatalf("fixture too weak: only %d matches", len(full.Matches))
	}
	for _, max := range []int{1, 3, len(full.Matches), len(full.Matches) + 10} {
		bopts := opts
		bopts.MaxResults = max
		got := idx.Search(q, bopts)
		want := full.Matches
		if len(want) > max {
			want = want[:max]
		}
		if !reflect.DeepEqual(got.Matches, want) {
			t.Fatalf("max=%d: %v, want prefix %v", max, got.Matches, want)
		}
		if got.Truncated {
			t.Fatal("a satisfied MaxResults budget is not a truncation")
		}
		if max < full.Verified && got.Verified >= full.Verified {
			t.Fatalf("budget did not cut verification: %d vs %d", got.Verified, full.Verified)
		}
	}
}
