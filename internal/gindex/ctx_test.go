package gindex

import (
	"context"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/pattern"
)

func wildcardEdgeQuery() *graph.Graph {
	q := graph.New("q")
	q.AddNodes(2, "")
	q.MustAddEdge(0, 1, "")
	return q
}

func TestSearchCtxCanceledTruncates(t *testing.T) {
	c := datagen.ChemicalCorpus(3, 40, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	idx := Build(c)
	q := wildcardEdgeQuery()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := idx.SearchCtx(ctx, q, pattern.MatchOptions())
	if !res.Truncated {
		t.Fatal("canceled search not marked truncated")
	}
	if res.Verified != 0 || len(res.Matches) != 0 {
		t.Fatalf("canceled search verified %d, matched %d", res.Verified, len(res.Matches))
	}
	if res.Candidates == 0 {
		t.Fatal("filtering should still report candidates")
	}
}

func TestSearchCtxLiveMatchesSearch(t *testing.T) {
	c := datagen.ChemicalCorpus(3, 40, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
	idx := Build(c)
	q := wildcardEdgeQuery()
	plain := idx.Search(q, pattern.MatchOptions())
	withCtx := idx.SearchCtx(context.Background(), q, pattern.MatchOptions())
	if plain.Truncated || withCtx.Truncated {
		t.Fatal("unexpected truncation")
	}
	if len(plain.Matches) != len(withCtx.Matches) || len(plain.Matches) == 0 {
		t.Fatalf("matches diverged: %d vs %d", len(plain.Matches), len(withCtx.Matches))
	}
	for i := range plain.Matches {
		if plain.Matches[i] != withCtx.Matches[i] {
			t.Fatalf("match %d diverged", i)
		}
	}
	if withCtx.Verified != withCtx.Candidates {
		t.Fatalf("live search verified %d of %d candidates", withCtx.Verified, withCtx.Candidates)
	}
}
