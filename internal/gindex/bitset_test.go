package gindex

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
)

// TestCandidatesMatchReference is the property test for the bitset rewrite:
// on the seed corpus, across random connected queries plus wildcard and
// absent-label edge cases, the fast path must return exactly the reference
// implementation's candidate list (same positions, same ascending order).
func TestCandidatesMatchReference(t *testing.T) {
	c := testCorpus()
	idx := Build(c)
	rng := rand.New(rand.NewSource(17))
	check := func(name string, q *graph.Graph) {
		t.Helper()
		got := idx.Candidates(q)
		want := idx.CandidatesReference(q)
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: bitset %v vs reference %v\nquery:\n%s", name, got, want, q.Dump())
		}
	}
	for trial := 0; trial < 40; trial++ {
		src := c.Graph(rng.Intn(c.Len()))
		q := datagen.RandomConnectedSubgraph(rng, src, 2+rng.Intn(6))
		if q == nil {
			continue
		}
		check("random", q)
		// A wildcard variant of the same query exercises the skip paths.
		wq := q.Clone()
		wq.SetNodeLabel(0, isomorph.Wildcard)
		if wq.NumEdges() > 0 {
			wq.SetEdgeLabel(0, isomorph.Wildcard)
		}
		check("wildcard", wq)
	}
	// Absent label: both must return no candidates.
	aq := graph.New("absent")
	aq.AddNode("Xe")
	check("absent", aq)
	// Oversized query: exceeds every corpus graph.
	big := graph.New("big")
	big.AddNodes(10_000, "C")
	check("oversized", big)
	// Empty query: no size or label constraint beyond >= 0.
	check("empty", graph.New("empty"))
}

// TestSearchUsesLabelIndex pins that indexed verification returns the same
// matches as verification without the TargetIndex hook, and does not take
// more VF2 steps.
func TestSearchUsesLabelIndex(t *testing.T) {
	c := testCorpus()
	idx := Build(c)
	rng := rand.New(rand.NewSource(23))
	opts := pattern.MatchOptions()
	for trial := 0; trial < 10; trial++ {
		q := datagen.RandomConnectedSubgraph(rng, c.Graph(rng.Intn(c.Len())), 4)
		if q == nil {
			continue
		}
		res := idx.Search(q, opts)
		for _, gi := range idx.Candidates(q) {
			g := c.Graph(gi)
			plain := isomorph.Count(q, g, pattern.MatchOptions())
			hooked := pattern.MatchOptions()
			hooked.TargetIndex = isomorph.BuildLabelIndex(g)
			fast := isomorph.Count(q, g, hooked)
			if plain.Embeddings != fast.Embeddings {
				t.Fatalf("trial %d graph %s: %d embeddings plain vs %d indexed", trial, g.Name(), plain.Embeddings, fast.Embeddings)
			}
			if fast.Steps > plain.Steps {
				t.Fatalf("trial %d graph %s: indexed search took more steps (%d > %d)", trial, g.Name(), fast.Steps, plain.Steps)
			}
		}
		_ = res
	}
}

func BenchmarkCandidates(b *testing.B) {
	c := datagen.ChemicalCorpus(1, 400, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
	idx := Build(c)
	rng := rand.New(rand.NewSource(1))
	q := datagen.RandomConnectedSubgraph(rng, c.Graph(0), 5)
	b.Run("bitset", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.Candidates(q)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			idx.CandidatesReference(q)
		}
	})
}
