package gindex

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/ann"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/qcache"
)

// planQueries draws connected subgraph queries large enough to decompose
// (node sizes chosen so edge counts land in the 4..16 range).
func planQueries(rng *rand.Rand, c *graph.Corpus, n, minNodes, maxNodes int) []*graph.Graph {
	var out []*graph.Graph
	for len(out) < n {
		src := c.Graph(rng.Intn(c.Len()))
		size := minNodes + rng.Intn(maxNodes-minNodes+1)
		if q := datagen.RandomConnectedSubgraph(rng, src, size); q != nil && q.NumEdges() >= 2 {
			out = append(out, q)
		}
	}
	return out
}

// planConfigs returns one compile config per strategy worth testing.
func planConfigs(hasViews bool) []plan.Config {
	base := plan.Config{HasViewCache: hasViews}
	return []plan.Config{
		base, // cost model decides
		{Force: plan.StrategyMonolithic, HasViewCache: hasViews},
		{Force: plan.StrategyDecomposed, HasViewCache: hasViews, JoinBuffer: 64},
		{Force: plan.StrategyANN, HasViewCache: hasViews},
	}
}

// TestSearchPlanMatchesOracle is the tentpole equivalence property: at
// every strategy (cost-chosen and forced), shard count, worker count, and
// MaxResults budget, with and without a view cache, SearchPlan returns
// byte-identical matches to the monolithic K=1 Index oracle.
func TestSearchPlanMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	opts := pattern.MatchOptions()
	for _, corpusN := range []int{3, 60} {
		c := datagen.ChemicalCorpus(int64(corpusN), corpusN, datagen.ChemicalOptions{MinNodes: 10, MaxNodes: 24})
		mono := Build(c)
		queries := planQueries(rng, c, 10, 5, 14)
		for _, k := range []int{1, 3, 5} {
			for _, workers := range []int{1, 4} {
				sh := BuildShardedANN(c, k, workers, ann.NewConfig())
				for _, useViews := range []bool{false, true} {
					var views *qcache.Cache[ShardResult]
					if useViews {
						views = qcache.New[ShardResult](1024)
					}
					for qi, q := range queries {
						want := mono.Search(q, opts)
						for ci, cfg := range planConfigs(useViews) {
							for _, max := range []int{0, 1, 5} {
								bopts := opts
								bopts.MaxResults = max
								ccfg := cfg
								ccfg.MaxResults = max
								ccfg.ANN = true
								pl := sh.CompilePlan(q, ccfg)
								got := sh.SearchPlan(context.Background(), q, bopts, pl, PlanOptions{Views: views})
								wantM := want.Matches
								if max > 0 && len(wantM) > max {
									wantM = wantM[:max]
								}
								if !reflect.DeepEqual(got.Matches, wantM) {
									t.Fatalf("n=%d k=%d w=%d q%d cfg%d (%s) max=%d views=%v:\n got %v\nwant %v",
										corpusN, k, workers, qi, ci, pl.Strategy, max, useViews, got.Matches, wantM)
								}
								if got.Truncated {
									t.Fatalf("n=%d k=%d q%d cfg%d: unexpected Truncated", corpusN, k, qi, ci)
								}
							}
						}
					}
					// Warm pass: repeat with a hot view cache, must not change answers.
					if useViews {
						for qi, q := range queries {
							want := mono.Search(q, opts)
							cfg := plan.Config{Force: plan.StrategyDecomposed, HasViewCache: true}
							pl := sh.CompilePlan(q, cfg)
							got := sh.SearchPlan(context.Background(), q, opts, pl, PlanOptions{Views: views})
							if !reflect.DeepEqual(got.Matches, want.Matches) {
								t.Fatalf("warm views q%d: %v vs %v", qi, got.Matches, want.Matches)
							}
						}
					}
				}
			}
		}
	}
}

// TestSearchPlanDecomposedExercised guards the test above against
// silently testing only monolithic plans: across the query pool, forced
// decomposition must actually run with >= 2 fragments at least once.
func TestSearchPlanDecomposedExercised(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	c := datagen.ChemicalCorpus(7, 50, datagen.ChemicalOptions{MinNodes: 12, MaxNodes: 28})
	sh := BuildSharded(c, 3, 2)
	decomposed := 0
	for _, q := range planQueries(rng, c, 20, 9, 15) {
		pl := sh.CompilePlan(q, plan.Config{Force: plan.StrategyDecomposed})
		if pl.Strategy == plan.StrategyDecomposed && len(pl.Fragments) >= 2 {
			decomposed++
		}
	}
	if decomposed == 0 {
		t.Fatal("no query decomposed; the equivalence property is not exercising the join path")
	}
}

// TestPlanStatsCounts: PlanStats aggregates must equal brute-force
// document frequencies, at any shard count, and match the monolithic
// Index's stats.
func TestPlanStatsCounts(t *testing.T) {
	c := datagen.ChemicalCorpus(13, 40, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 20})
	wantNode := map[string]int{}
	wantEdge := map[string]int{}
	wantTrip := map[[3]string]int{}
	c.Each(func(gi int, g *graph.Graph) {
		seenN, seenE, seenT := map[string]bool{}, map[string]bool{}, map[[3]string]bool{}
		for v := 0; v < g.NumNodes(); v++ {
			seenN[g.NodeLabel(v)] = true
		}
		for _, e := range g.Edges() {
			seenE[e.Label] = true
			a, b := g.NodeLabel(e.U), g.NodeLabel(e.V)
			if a > b {
				a, b = b, a
			}
			seenT[[3]string{a, e.Label, b}] = true
		}
		for l := range seenN {
			wantNode[l]++
		}
		for l := range seenE {
			wantEdge[l]++
		}
		for tr := range seenT {
			wantTrip[tr]++
		}
	})
	for _, k := range []int{1, 4, 7} {
		st := BuildSharded(c, k, 2).PlanStats()
		if st.Graphs() != c.Len() {
			t.Fatalf("k=%d: Graphs=%d want %d", k, st.Graphs(), c.Len())
		}
		for l, n := range wantNode {
			if got := st.NodeLabelGraphs(l); got != n {
				t.Fatalf("k=%d: NodeLabelGraphs(%q)=%d want %d", k, l, got, n)
			}
		}
		for l, n := range wantEdge {
			if got := st.EdgeLabelGraphs(l); got != n {
				t.Fatalf("k=%d: EdgeLabelGraphs(%q)=%d want %d", k, l, got, n)
			}
		}
		for tr, n := range wantTrip {
			if got := st.TripleGraphs(tr[0], tr[1], tr[2]); got != n {
				t.Fatalf("k=%d: TripleGraphs(%v)=%d want %d", k, tr, got, n)
			}
		}
		if st.NodeLabelGraphs("no-such-label") != 0 {
			t.Fatalf("k=%d: absent label should count 0", k)
		}
	}
	mst := Build(c).PlanStats()
	if mst.Graphs() != c.Len() || mst.NodeLabelGraphs("C") != wantNode["C"] {
		t.Fatal("Index.PlanStats disagrees with brute force")
	}
}

// decomposablePlan finds a (query, plan) pair that truly decomposes, for
// the fault tests.
func decomposablePlan(t *testing.T, rng *rand.Rand, c *graph.Corpus, sh *Sharded) (*graph.Graph, *plan.Plan) {
	t.Helper()
	for _, q := range planQueries(rng, c, 40, 9, 16) {
		pl := sh.CompilePlan(q, plan.Config{Force: plan.StrategyDecomposed})
		if pl.Strategy == plan.StrategyDecomposed && len(pl.Fragments) >= 2 {
			return q, pl
		}
	}
	t.Fatal("no decomposable query found")
	return nil, nil
}

// TestPlanJoinFaultInjectionError: an error injected at the plan.join
// site degrades the affected shards to the monolithic path — the answer
// stays byte-identical and is not marked Truncated (the fallback ran to
// completion).
func TestPlanJoinFaultInjectionError(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	c := datagen.ChemicalCorpus(17, 50, datagen.ChemicalOptions{MinNodes: 12, MaxNodes: 28})
	sh := BuildSharded(c, 4, 2)
	q, pl := decomposablePlan(t, rng, c, sh)
	opts := pattern.MatchOptions()
	want := sh.SearchCtx(context.Background(), q, opts)

	inj := faultinject.New(1, faultinject.Fault{
		Site: "plan.join",
		Err:  errors.New("injected join failure"),
	})
	got := sh.SearchPlan(context.Background(), q, opts, pl, PlanOptions{Inject: inj})
	if inj.Fired("plan.join") == 0 {
		t.Fatal("fault never fired; test is vacuous")
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("join error changed the answer: %v vs %v", got.Matches, want.Matches)
	}
	if got.Truncated {
		t.Fatal("completed monolithic fallback must not be Truncated")
	}
}

// TestPlanJoinFaultInjectionPanic: a panic at plan.join is recovered and
// degrades like an error — same answer, no crash.
func TestPlanJoinFaultInjectionPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	c := datagen.ChemicalCorpus(19, 50, datagen.ChemicalOptions{MinNodes: 12, MaxNodes: 28})
	sh := BuildSharded(c, 3, 2)
	q, pl := decomposablePlan(t, rng, c, sh)
	opts := pattern.MatchOptions()
	want := sh.SearchCtx(context.Background(), q, opts)

	inj := faultinject.New(2, faultinject.Fault{
		Site:     "plan.join",
		PanicMsg: "injected join panic",
	})
	got := sh.SearchPlan(context.Background(), q, opts, pl, PlanOptions{Inject: inj})
	if inj.Fired("plan.join") == 0 {
		t.Fatal("fault never fired; test is vacuous")
	}
	if !reflect.DeepEqual(got.Matches, want.Matches) {
		t.Fatalf("join panic changed the answer: %v vs %v", got.Matches, want.Matches)
	}
	if got.Truncated {
		t.Fatal("recovered fallback must not be Truncated")
	}
}

// TestPlanJoinFaultInjectionDelay: a delay at plan.join under an already-
// tight deadline surfaces Truncated with a sound subset — never a wrong
// or fabricated match.
func TestPlanJoinFaultInjectionDelay(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	c := datagen.ChemicalCorpus(23, 50, datagen.ChemicalOptions{MinNodes: 12, MaxNodes: 28})
	sh := BuildSharded(c, 3, 1)
	q, pl := decomposablePlan(t, rng, c, sh)
	opts := pattern.MatchOptions()
	want := sh.SearchCtx(context.Background(), q, opts)
	wantSet := map[string]bool{}
	for _, m := range want.Matches {
		wantSet[m] = true
	}

	inj := faultinject.New(3, faultinject.Fault{
		Site:  "plan.join",
		Delay: 50 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	got := sh.SearchPlan(ctx, q, opts, pl, PlanOptions{Inject: inj})
	if !got.Truncated {
		t.Fatal("deadline blown inside the join must surface Truncated")
	}
	for _, m := range got.Matches {
		if !wantSet[m] {
			t.Fatalf("truncated result fabricated match %q", m)
		}
	}
}

// TestSearchPlanConcurrentCtx hammers the decomposed path (shared view
// cache, join buffers, result budgets) from many goroutines under -race,
// with some contexts canceled mid-flight. Complete runs must all agree
// with the oracle.
func TestSearchPlanConcurrentCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	c := datagen.ChemicalCorpus(29, 40, datagen.ChemicalOptions{MinNodes: 12, MaxNodes: 24})
	sh := BuildSharded(c, 4, 4)
	q, pl := decomposablePlan(t, rng, c, sh)
	opts := pattern.MatchOptions()
	want := sh.SearchCtx(context.Background(), q, opts)
	views := qcache.New[ShardResult](256)

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%4 == 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i)*100*time.Microsecond)
				defer cancel()
			}
			got := sh.SearchPlan(ctx, q, opts, pl, PlanOptions{Views: views})
			if got.Truncated {
				return // canceled mid-flight: sound subset by contract
			}
			if !reflect.DeepEqual(got.Matches, want.Matches) {
				errs <- "concurrent SearchPlan diverged from oracle"
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// TestSearchPlanNilAndMonolithic: a nil plan falls back to SearchCtx; a
// monolithic plan applies the compiled order without changing answers.
func TestSearchPlanNilAndMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	c := datagen.ChemicalCorpus(31, 30, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 18})
	sh := BuildSharded(c, 3, 2)
	opts := pattern.MatchOptions()
	for _, q := range planQueries(rng, c, 6, 4, 10) {
		want := sh.SearchCtx(context.Background(), q, opts)
		if got := sh.SearchPlan(context.Background(), q, opts, nil, PlanOptions{}); !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("nil plan diverged: %v vs %v", got.Matches, want.Matches)
		}
		pl := sh.CompilePlan(q, plan.Config{Force: plan.StrategyMonolithic})
		if got := sh.SearchPlan(context.Background(), q, opts, pl, PlanOptions{}); !reflect.DeepEqual(got.Matches, want.Matches) {
			t.Fatalf("monolithic plan diverged: %v vs %v", got.Matches, want.Matches)
		}
	}
}

// TestStitchAgainstVF2 unit-tests the stitch kernel directly: for random
// (query, graph) pairs with decomposable queries, stitchGraph's clean
// verdicts must agree with plain VF2.
func TestStitchAgainstVF2(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	c := datagen.ChemicalCorpus(37, 40, datagen.ChemicalOptions{MinNodes: 12, MaxNodes: 28})
	sh := BuildSharded(c, 1, 1)
	opts := pattern.MatchOptions()
	checked := 0
	for tries := 0; tries < 25; tries++ {
		q, pl := decomposablePlan(t, rng, c, sh)
		for gi := 0; gi < c.Len(); gi++ {
			g := c.Graph(gi)
			found, clean := stitchGraph(q, pl, g, isomorph.BuildLabelIndex(g), opts)
			if !clean {
				continue
			}
			vopts := opts
			vopts.MaxEmbeddings = 1
			want := isomorph.Count(q, g, vopts).Embeddings > 0
			if found != want {
				t.Fatalf("stitch(%s in %s)=%v, VF2 says %v", q.Name(), g.Name(), found, want)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("stitch kernel never produced a clean verdict")
	}
}
