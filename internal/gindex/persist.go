package gindex

// Per-shard index sections: the serialized form of one shard's filter
// index (label/triple inverted bitsets, size arrays) plus its similarity
// vectors, persisted inside snapshot-format-v2 files so a restart can
// restore shards instead of re-deriving them from every graph.
//
// What is and is not persisted follows from what is cheap to regenerate:
//
//   - Inverted bitsets and size arrays require touching every graph to
//     rebuild — exactly the O(corpus) decode pass an mmap boot avoids —
//     so they are stored verbatim.
//   - The size-class suffix bitsets are derived from the size arrays in
//     O(distinct sizes · corpus/64) without touching graphs; rebuilt.
//   - Per-graph VF2 label indexes are only needed for graphs that reach
//     verification; left empty and filled lazily (Index.targetIndexFor).
//   - ANN state persists the embedding vectors plus each item's per-table
//     LSH signatures: hyperplanes are a pure function of cfg.Seed so they
//     regenerate for free, and with signatures on hand the hash tables
//     refill by bucket insertion (ann.BuildFromSignatures) — the
//     n·Tables·Bits·dim hashing pass that would otherwise make restore
//     cost scale with corpus size is skipped entirely.
//
// A section is opaque bytes to the store layer, which frames and
// checksums it; decoding here still validates structure defensively
// (word counts, trailing bits, graph counts) because a section that
// passed its CRC can still disagree with the corpus it is restored
// against — e.g. after a shard-count change. Any mismatch falls back to
// rebuilding that one shard from graphs; a section can cost time, never
// correctness.

import (
	"encoding/binary"
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/ann"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/pattern"
)

var (
	obsSectionRestores   = obs.Default.Counter("gindex_section_restores_total")
	obsSectionRebuilds   = obs.Default.Counter("gindex_section_rebuilds_total")
	obsSectionRestoreSec = obs.Default.Histogram("gindex_section_restore_seconds")
)

// sectionVersion is the per-shard section format version. Bump on any
// layout change; RestoreSharded rebuilds shards whose version it does not
// understand.
const sectionVersion = 1

// maxSectionLabels caps decoded map sizes, bounding what a structurally
// valid but hostile length field can allocate.
const maxSectionLabels = 1 << 24

// senc is a tiny append-only encoder (the store codec's shape, local to
// this package so sections do not import persistence internals).
type senc struct{ b []byte }

func (e *senc) u8(v byte)    { e.b = append(e.b, v) }
func (e *senc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *senc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *senc) str(s string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}
func (e *senc) bitset(b pattern.Bitset) {
	for _, w := range b {
		e.u64(w)
	}
}

// sdec is the matching sticky-error decoder.
type sdec struct {
	b   []byte
	err error
}

func (d *sdec) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("gindex: corrupt section: truncated %s", what)
	}
}

func (d *sdec) u8() byte {
	if d.err != nil || len(d.b) < 1 {
		d.fail("u8")
		return 0
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v
}

func (d *sdec) u32() uint32 {
	if d.err != nil || len(d.b) < 4 {
		d.fail("u32")
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v
}

func (d *sdec) u64() uint64 {
	if d.err != nil || len(d.b) < 8 {
		d.fail("u64")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b)
	d.b = d.b[8:]
	return v
}

func (d *sdec) str() string {
	if d.err != nil {
		return ""
	}
	n, k := binary.Uvarint(d.b)
	if k <= 0 || uint64(len(d.b)-k) < n {
		d.fail("string")
		return ""
	}
	s := string(d.b[k : k+int(n)])
	d.b = d.b[k+int(n):]
	return s
}

// bitset decodes exactly ceil(n/64) words and validates that no bit at
// position >= n is set — a trailing set bit means the section was encoded
// against a different corpus.
func (d *sdec) bitset(n int) pattern.Bitset {
	words := (n + 63) / 64
	if d.err != nil || len(d.b) < 8*words {
		d.fail("bitset")
		return nil
	}
	b := make(pattern.Bitset, words)
	for i := range b {
		b[i] = binary.LittleEndian.Uint64(d.b[8*i:])
	}
	d.b = d.b[8*words:]
	if words > 0 {
		if tail := uint(n % 64); tail != 0 && b[words-1]>>tail != 0 {
			d.fail("bitset (bits set past graph count)")
			return nil
		}
	}
	return b
}

func (d *sdec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.b) != 0 {
		return fmt.Errorf("gindex: corrupt section: %d trailing bytes", len(d.b))
	}
	return nil
}

// encodeSection serializes one shard's restorable state.
func encodeSection(core *shardCore, annEnabled bool, dim int) []byte {
	idx := core.idx
	n := core.sub.Len()
	e := &senc{}
	e.u8(sectionVersion)
	e.u32(uint32(n))
	for _, v := range idx.numNodes {
		e.u32(uint32(v))
	}
	for _, v := range idx.numEdges {
		e.u32(uint32(v))
	}
	writeLabelMap := func(m map[string]pattern.Bitset) {
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		e.u32(uint32(len(keys)))
		for _, k := range keys {
			e.str(k)
			e.bitset(m[k])
		}
	}
	writeLabelMap(idx.nodeLabel)
	writeLabelMap(idx.edgeLabel)
	trs := make([]triple, 0, len(idx.triples))
	for t := range idx.triples {
		trs = append(trs, t)
	}
	sort.Slice(trs, func(i, j int) bool {
		a, b := trs[i], trs[j]
		if a.a != b.a {
			return a.a < b.a
		}
		if a.e != b.e {
			return a.e < b.e
		}
		return a.b < b.b
	})
	e.u32(uint32(len(trs)))
	for _, t := range trs {
		e.str(t.a)
		e.str(t.e)
		e.str(t.b)
		e.bitset(idx.triples[t])
	}
	if annEnabled {
		e.u8(1)
		e.u32(uint32(dim))
		for _, vec := range core.vecs {
			for _, x := range vec {
				e.u32(math.Float32bits(x))
			}
		}
		sigs := core.ann.Signatures()
		e.u32(uint32(core.ann.Config().Tables))
		for _, row := range sigs {
			for _, s := range row {
				e.u64(s)
			}
		}
	} else {
		e.u8(0)
	}
	return e.b
}

// EncodeSections serializes every shard's restorable index state, indexed
// by shard id. Encoding touches only index structures — never graphs — so
// it is safe on a partially hydrated (mmap-backed) corpus. Pass the
// result to store.Store.Compact / WriteSnapshot to persist it.
func (sh *Sharded) EncodeSections() [][]byte {
	out := make([][]byte, sh.k)
	dim := 0
	if sh.annCfg != nil {
		dim = sh.emb.Dim()
	}
	for s, core := range sh.shards {
		out[s] = encodeSection(core, sh.annCfg != nil, dim)
	}
	return out
}

// decodeSection rebuilds one shard's core from its section. sub is the
// shard's (possibly lazy) sub-corpus; the section must have been encoded
// against a shard with identical membership and order. annCfg selects
// whether ANN state is required: a section without vectors cannot restore
// an ANN-enabled shard (and vice versa the extra vectors are rejected, not
// ignored — a config change is a rebuild, not a guess).
func decodeSection(data []byte, sub *graph.Corpus, annCfg *ann.Config, emb *ann.Embedder) (*shardCore, error) {
	d := &sdec{b: data}
	if v := d.u8(); d.err == nil && v != sectionVersion {
		return nil, fmt.Errorf("gindex: unsupported section version %d", v)
	}
	n := int(d.u32())
	if d.err == nil && n != sub.Len() {
		return nil, fmt.Errorf("gindex: section covers %d graphs, shard holds %d", n, sub.Len())
	}
	idx := &Index{
		corpus:    sub,
		nodeLabel: make(map[string]pattern.Bitset),
		edgeLabel: make(map[string]pattern.Bitset),
		triples:   make(map[triple]pattern.Bitset),
		numNodes:  make([]int, n),
		numEdges:  make([]int, n),
		labelIdx:  make([]atomic.Pointer[isomorph.LabelIndex], n),
	}
	for i := range idx.numNodes {
		idx.numNodes[i] = int(d.u32())
	}
	for i := range idx.numEdges {
		idx.numEdges[i] = int(d.u32())
	}
	readLabelMap := func(m map[string]pattern.Bitset, what string) {
		count := d.u32()
		if d.err != nil {
			return
		}
		if count > maxSectionLabels {
			d.fail(what + " (count exceeds limit)")
			return
		}
		prev := ""
		for i := uint32(0); i < count && d.err == nil; i++ {
			k := d.str()
			if i > 0 && k <= prev {
				d.fail(what + " (keys out of order)")
				return
			}
			prev = k
			m[k] = d.bitset(n)
		}
	}
	readLabelMap(idx.nodeLabel, "node-label map")
	readLabelMap(idx.edgeLabel, "edge-label map")
	trCount := d.u32()
	if d.err == nil && trCount > maxSectionLabels {
		d.fail("triple map (count exceeds limit)")
	}
	for i := uint32(0); i < trCount && d.err == nil; i++ {
		t := triple{a: d.str(), e: d.str(), b: d.str()}
		if _, dup := idx.triples[t]; dup {
			d.fail("triple map (duplicate key)")
			break
		}
		idx.triples[t] = d.bitset(n)
	}
	core := &shardCore{sub: sub, idx: idx}
	hasANN := d.u8() == 1
	if d.err == nil && hasANN != (annCfg != nil) {
		return nil, fmt.Errorf("gindex: section ANN state (%v) disagrees with index configuration (%v)", hasANN, annCfg != nil)
	}
	var sigs [][]uint64
	if hasANN && d.err == nil {
		dim := int(d.u32())
		if d.err == nil && dim != emb.Dim() {
			return nil, fmt.Errorf("gindex: section embedding dim %d, embedder produces %d", dim, emb.Dim())
		}
		core.vecs = make([][]float32, n)
		for i := range core.vecs {
			vec := make([]float32, dim)
			for j := range vec {
				vec[j] = math.Float32frombits(d.u32())
			}
			core.vecs[i] = vec
		}
		tables := int(d.u32())
		if d.err == nil && tables != annCfg.Resolved().Tables {
			return nil, fmt.Errorf("gindex: section has %d LSH tables, configuration wants %d", tables, annCfg.Resolved().Tables)
		}
		sigs = make([][]uint64, n)
		for i := range sigs {
			row := make([]uint64, tables)
			for t := range row {
				row[t] = d.u64()
			}
			sigs[i] = row
		}
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	idx.sizeNodes = buildSizeClass(idx.numNodes)
	idx.sizeEdges = buildSizeClass(idx.numEdges)
	if hasANN {
		cfg := annCfg.Resolved()
		cfg.Workers = 1
		ix, err := ann.BuildFromSignatures(core.vecs, emb.Dim(), cfg, sigs)
		if err != nil {
			return nil, err
		}
		core.ann = ix
	}
	return core, nil
}

// RestoreReport says how each shard of a RestoreSharded call was brought
// up.
type RestoreReport struct {
	// Restored counts shards reconstructed from their persisted section —
	// no graph in those shards was decoded.
	Restored int
	// Rebuilt counts shards built from graphs: no section was offered, or
	// the offered one failed validation.
	Rebuilt int
	// RebuiltShards lists the rebuilt shard ids, ascending.
	RebuiltShards []int
}

// RestoreSharded is BuildSharded/BuildShardedANN with persisted sections:
// shards whose entry in sections decodes cleanly against their sub-corpus
// are restored without touching a single graph; the rest are built the
// normal way. sections maps shard id → bytes from EncodeSections — the
// caller (core.OpenDurableIndex) offers only sections whose shard epoch
// matched the recovered snapshot, so a stale section is never even
// considered here. annCfg nil builds a plain index; non-nil, an
// ANN-enabled one (sections must carry vectors to restore).
//
// On a lazy corpus this is the O(index) half of the mmap cold boot: with
// every section valid, boot cost is decode-sections + size-class
// reconstruction, independent of total graph bytes.
func RestoreSharded(c *graph.Corpus, k, workers int, annCfg *ann.Config, sections map[int][]byte) (*Sharded, *RestoreReport) {
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	sh := &Sharded{
		k:       k,
		workers: workers,
		shards:  make([]*shardCore, k),
		globals: make([][]int, k),
		epochs:  make([]uint64, k),
		order:   make([]string, 0, c.Len()),
		pos:     make(map[string]int, c.Len()),
	}
	if annCfg != nil {
		cfg := annCfg.Resolved()
		cfg.Workers = 0
		sh.annCfg = &cfg
		sh.emb = ann.NewEmbedder()
	}
	subs := make([]*graph.Corpus, k)
	for s := range subs {
		subs[s] = graph.NewCorpus()
	}
	c.EachName(func(gi int, name string) {
		s := ShardOf(name, k)
		subs[s].MustAdopt(c, gi)
		sh.globals[s] = append(sh.globals[s], gi)
		sh.pos[name] = gi
		sh.order = append(sh.order, name)
	})

	rep := &RestoreReport{}
	rebuilt := make([]bool, k)
	par.ForEachN(k, workers, func(s int) {
		if data, ok := sections[s]; ok {
			t0 := time.Now()
			core, err := decodeSection(data, subs[s], sh.annCfg, sh.emb)
			if err == nil {
				sh.shards[s] = core
				if obs.On() {
					obsSectionRestores.Inc()
					obsSectionRestoreSec.Observe(time.Since(t0).Seconds())
				}
				return
			}
		}
		rebuilt[s] = true
		t0 := time.Now()
		sh.shards[s] = sh.buildCore(subs[s])
		if obs.On() {
			obsSectionRebuilds.Inc()
			obsShardBuilds.Inc()
			obsShardBuildSecs.Observe(time.Since(t0).Seconds())
			if sh.annCfg != nil {
				obsANNShardBuilds.Inc()
			}
		}
	})
	for s, rb := range rebuilt {
		if rb {
			rep.Rebuilt++
			rep.RebuiltShards = append(rep.RebuiltShards, s)
		} else {
			rep.Restored++
		}
	}
	return sh, rep
}
