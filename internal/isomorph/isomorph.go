// Package isomorph implements subgraph matching for labeled undirected
// graphs: subgraph monomorphism (the semantics of visual subgraph queries),
// exact graph isomorphism, and embedding enumeration with budgets.
//
// The matcher is a VF2-style backtracking search with a connectivity-
// preserving matching order, label-based candidate filtering, and degree
// pruning. Patterns in this repository are small (≤ ~15 nodes), so the
// matcher is tuned for many small-pattern-vs-medium-graph calls rather than
// for single huge instances; budgets (step and embedding limits) keep worst
// cases bounded when scoring thousands of candidate patterns.
//
// Label semantics: a pattern label matches a target label if they are equal
// or if the pattern label is Wildcard (""). This holds for both node and
// edge labels.
package isomorph

import (
	"context"

	"repro/internal/graph"
	"repro/internal/obs"
)

// Package-level metric handles, resolved once so the per-call cost of
// instrumentation is a few atomic adds at the end of Enumerate — never
// anything per search step. Gated on obs.On().
var (
	obsSearches    = obs.Default.Counter("isomorph_searches_total")
	obsSteps       = obs.Default.Counter("isomorph_steps_total")
	obsEmbeddings  = obs.Default.Counter("isomorph_embeddings_total")
	obsTruncSteps  = obs.Default.Counter("isomorph_truncated_total", "reason", string(StopSteps))
	obsTruncCancel = obs.Default.Counter("isomorph_truncated_total", "reason", string(StopCanceled))
)

// recordSearch publishes one completed matching run's totals.
func recordSearch(res *Result) {
	if !obs.On() {
		return
	}
	obsSearches.Inc()
	obsSteps.Add(int64(res.Steps))
	obsEmbeddings.Add(int64(res.Embeddings))
	switch res.Reason {
	case StopSteps:
		obsTruncSteps.Inc()
	case StopCanceled:
		obsTruncCancel.Inc()
	}
}

// Wildcard is the pattern label that matches any target label.
const Wildcard = ""

// DefaultCheckEvery is the step interval at which the matcher polls
// Options.Ctx when CheckEvery is zero. Steps are cheap (a few pointer
// chases), so 1024 steps keeps cancellation latency in the microsecond
// range without measurable polling overhead.
const DefaultCheckEvery = 1024

// Options control a matching run.
type Options struct {
	// MaxEmbeddings stops enumeration after this many embeddings have been
	// reported. Zero means unlimited.
	MaxEmbeddings int
	// MaxSteps bounds the number of backtracking search steps, as a safety
	// valve against pathological instances. Zero means unlimited. When the
	// budget is exhausted the search stops; Result.Truncated reports it.
	MaxSteps int
	// MaxResults bounds the number of matching *graphs* a filter-verify
	// search over a corpus returns (gindex.Index.Search and
	// gindex.Sharded.Search); the matcher itself ignores it. The budget is
	// order-preserving: the matches returned are always the first
	// MaxResults in corpus order, never an arbitrary subset. Like
	// MaxEmbeddings, hitting the budget is a satisfied request, not a
	// truncation. Zero means unlimited.
	MaxResults int
	// Induced requires the mapping to be an induced-subgraph isomorphism:
	// non-adjacent pattern nodes must map to non-adjacent target nodes.
	// The default (false) is monomorphism, the semantics of subgraph
	// queries drawn on a VQI.
	Induced bool
	// Ctx, when non-nil, is polled every CheckEvery search steps; a
	// canceled or expired context stops the search with the embeddings
	// found so far and Result.Reason == StopCanceled. This is what lets an
	// interactive front end put a wall-clock deadline on a query without
	// guessing a step budget.
	Ctx context.Context
	// CheckEvery is the polling interval in steps (0 = DefaultCheckEvery).
	CheckEvery int
	// TargetIndex, when non-nil, must be a LabelIndex built over the exact
	// target graph being searched. The matcher then ranks pattern nodes by
	// label rarity without recounting target labels, and restricts the root
	// scan of each pattern component with a non-wildcard label to the nodes
	// in that label class. Class node lists are ascending, so embeddings
	// are found in the same order and counts are identical to the unindexed
	// search — only Result.Steps shrinks.
	TargetIndex *LabelIndex
	// Order, when it is a permutation of the pattern's nodes, replaces the
	// per-target matching-order heuristic with a precomputed order — the
	// hook a compiled query plan (internal/plan) uses to rank pattern nodes
	// by corpus-level label rarity once instead of per target graph.
	// Anchors are derived from the order (each node anchors on its first
	// earlier neighbor), so a connectivity-preserving order keeps candidate
	// generation neighbor-driven. The matching order never changes which
	// embeddings exist — only Result.Steps — so any permutation is safe;
	// anything that is not a permutation is ignored and the heuristic runs.
	Order []graph.NodeID
}

// IsZero reports whether o is the zero Options (no budgets, no context,
// no index, no order) — the "caller didn't configure matching" sentinel
// some call sites replace with their own defaults. Needed as a method
// because the Order slice makes Options non-comparable with ==.
func (o Options) IsZero() bool {
	return o.MaxEmbeddings == 0 && o.MaxSteps == 0 && o.MaxResults == 0 &&
		!o.Induced && o.Ctx == nil && o.CheckEvery == 0 &&
		o.TargetIndex == nil && o.Order == nil
}

// StopReason says why a search gave up before exhausting its space.
type StopReason string

// Stop reasons. StopNone means the search ran to completion (or hit
// MaxEmbeddings, which is a satisfied request, not a failure to finish).
const (
	StopNone     StopReason = ""
	StopSteps    StopReason = "steps"    // MaxSteps budget exhausted
	StopCanceled StopReason = "canceled" // Options.Ctx canceled or deadline exceeded
)

// Result summarizes a matching run.
type Result struct {
	// Embeddings is the number of embeddings found (capped by
	// MaxEmbeddings if set).
	Embeddings int
	// Steps is the number of search-tree nodes expanded.
	Steps int
	// Truncated reports that the search gave up (step budget or context
	// cancellation) before the search space was fully explored — the
	// counts are a sound lower bound, not an exact answer.
	Truncated bool
	// Reason distinguishes *why* a truncated search gave up: a step budget
	// (StopSteps) or a canceled/expired context (StopCanceled). StopNone
	// when Truncated is false.
	Reason StopReason
}

type matcher struct {
	p, t     *graph.Graph
	opts     Options
	order    []graph.NodeID // pattern matching order
	anchors  []anchor       // for order[i>0]: a previously-matched neighbor + edge label
	pAdj     [][]pedge      // pattern adjacency with labels
	core     []graph.NodeID // pattern node -> target node (-1 unmatched)
	used     []bool         // target node already used
	fn       func(mapping []graph.NodeID) bool
	res      Result
	stopped  bool
	ctxEvery int // poll Ctx every this many steps (0 = no context)
}

type pedge struct {
	to    graph.NodeID
	label string
}

type anchor struct {
	prev  graph.NodeID // pattern node matched earlier
	label string       // label of edge (prev, order[i]) in the pattern
}

// labelMatch reports whether pattern label pl is compatible with target
// label tl.
func labelMatch(pl, tl string) bool { return pl == Wildcard || pl == tl }

// Exists reports whether pattern has at least one embedding in target under
// the given options.
func Exists(pattern, target *graph.Graph, opts Options) bool {
	opts.MaxEmbeddings = 1
	r := Enumerate(pattern, target, opts, nil)
	return r.Embeddings > 0
}

// Count returns the number of embeddings of pattern in target, subject to
// opts budgets.
func Count(pattern, target *graph.Graph, opts Options) Result {
	return Enumerate(pattern, target, opts, nil)
}

// Enumerate finds embeddings of pattern in target and calls fn for each one
// with the mapping from pattern node IDs to target node IDs. The mapping
// slice is reused between calls; fn must copy it to retain it. Enumeration
// stops when fn returns false, the embedding cap is hit, or the step budget
// is exhausted. fn may be nil (counting only).
//
// The empty pattern has exactly one (empty) embedding in any target.
func Enumerate(pattern, target *graph.Graph, opts Options, fn func(mapping []graph.NodeID) bool) Result {
	res := enumerate(pattern, target, opts, fn)
	recordSearch(&res)
	return res
}

func enumerate(pattern, target *graph.Graph, opts Options, fn func(mapping []graph.NodeID) bool) Result {
	m := &matcher{p: pattern, t: target, opts: opts, fn: fn}
	if opts.Ctx != nil {
		m.ctxEvery = opts.CheckEvery
		if m.ctxEvery <= 0 {
			m.ctxEvery = DefaultCheckEvery
		}
		// An already-dead context yields an immediate, clearly-marked
		// truncation instead of paying for even one search step.
		if opts.Ctx.Err() != nil {
			m.res.Truncated = true
			m.res.Reason = StopCanceled
			return m.res
		}
	}
	if pattern.NumNodes() == 0 {
		m.res.Embeddings = 1
		if fn != nil {
			fn(nil)
		}
		return m.res
	}
	if pattern.NumNodes() > target.NumNodes() || pattern.NumEdges() > target.NumEdges() {
		return m.res
	}
	m.prepare()
	m.core = make([]graph.NodeID, pattern.NumNodes())
	for i := range m.core {
		m.core[i] = -1
	}
	m.used = make([]bool, target.NumNodes())
	m.search(0)
	return m.res
}

// prepare computes the matching order: a connectivity-preserving order that
// starts at the most constrained node (rarest label, then highest degree)
// and always extends the matched frontier when possible (patterns may be
// disconnected; each new component restarts at its most constrained node).
// A valid Options.Order short-circuits the heuristic entirely.
func (m *matcher) prepare() {
	n := m.p.NumNodes()
	m.pAdj = make([][]pedge, n)
	for i := 0; i < n; i++ {
		m.p.VisitNeighbors(i, func(nbr graph.NodeID, e graph.EdgeID) bool {
			m.pAdj[i] = append(m.pAdj[i], pedge{to: nbr, label: m.p.EdgeLabel(e)})
			return true
		})
	}
	if m.adoptOrder(m.opts.Order) {
		return
	}
	// Rarity of node labels in the target guides the start node: a
	// prebuilt LabelIndex answers frequencies directly, otherwise count
	// once into a map.
	var tLabelFreq map[string]int
	if m.opts.TargetIndex == nil {
		tLabelFreq = m.t.NodeLabels()
	}
	rarity := func(v graph.NodeID) int {
		l := m.p.NodeLabel(v)
		if l == Wildcard {
			return m.t.NumNodes()
		}
		if ix := m.opts.TargetIndex; ix != nil {
			return ix.Freq(l)
		}
		return tLabelFreq[l]
	}
	inOrder := make([]bool, n)
	m.order = m.order[:0]
	m.anchors = make([]anchor, n)
	for len(m.order) < n {
		// Pick the best frontier node: adjacent to the matched set if any
		// such node exists, otherwise the best unmatched node (new
		// component).
		best := graph.NodeID(-1)
		bestAnchored := false
		better := func(v graph.NodeID, anchored bool) bool {
			if best == -1 {
				return true
			}
			if anchored != bestAnchored {
				return anchored
			}
			rv, rb := rarity(v), rarity(best)
			if rv != rb {
				return rv < rb
			}
			dv, db := len(m.pAdj[v]), len(m.pAdj[best])
			if dv != db {
				return dv > db
			}
			// Equal rarity and degree: break the tie by label, not node
			// index, so two drawings of the same pattern (nodes inserted in
			// different orders) compute label-identical matching orders —
			// required for compiled plans to be byte-stable across runs.
			if lv, lb := m.p.NodeLabel(v), m.p.NodeLabel(best); lv != lb {
				return lv < lb
			}
			return v < best
		}
		for v := 0; v < n; v++ {
			if inOrder[v] {
				continue
			}
			anchored := false
			for _, pe := range m.pAdj[v] {
				if inOrder[pe.to] {
					anchored = true
					break
				}
			}
			if better(v, anchored) {
				best = v
				bestAnchored = anchored
			}
		}
		idx := len(m.order)
		m.order = append(m.order, best)
		inOrder[best] = true
		m.anchors[idx] = anchor{prev: -1}
		if bestAnchored {
			for _, pe := range m.pAdj[best] {
				if pe.to != best && containsNode(m.order[:idx], pe.to) {
					m.anchors[idx] = anchor{prev: pe.to, label: pe.label}
					break
				}
			}
		}
	}
}

// adoptOrder installs a caller-supplied matching order (Options.Order) if
// it is a permutation of the pattern's nodes, deriving each node's anchor
// from its first neighbor that appears earlier in the order. Non-
// permutations are rejected (heuristic runs instead); a permutation that
// is not connectivity-preserving merely leaves some anchors empty, which
// costs full root scans but stays correct — tryExtend checks every
// matched neighbor regardless of anchoring.
func (m *matcher) adoptOrder(ord []graph.NodeID) bool {
	n := m.p.NumNodes()
	if len(ord) != n {
		return false
	}
	seen := make([]bool, n)
	for _, v := range ord {
		if v < 0 || v >= n || seen[v] {
			return false
		}
		seen[v] = true
	}
	m.order = append(m.order[:0], ord...)
	m.anchors = make([]anchor, n)
	inOrder := make([]bool, n)
	for i, v := range ord {
		m.anchors[i] = anchor{prev: -1}
		for _, pe := range m.pAdj[v] {
			if pe.to != v && inOrder[pe.to] {
				m.anchors[i] = anchor{prev: pe.to, label: pe.label}
				break
			}
		}
		inOrder[v] = true
	}
	return true
}

// VerifyMapping reports whether mapping (pattern node -> target node,
// len == pattern.NumNodes()) is an embedding of pattern in target: node
// labels compatible, mapping injective, every pattern edge present in the
// target with a compatible label, and — under induced semantics — no
// target adjacency between images of non-adjacent pattern nodes. This is
// the exact final check a query plan runs on a match stitched together
// from sub-pattern embeddings; anything that passes here is as good as a
// from-scratch VF2 hit.
func VerifyMapping(pattern, target *graph.Graph, mapping []graph.NodeID, induced bool) bool {
	n := pattern.NumNodes()
	if len(mapping) != n {
		return false
	}
	used := make(map[graph.NodeID]bool, n)
	for pv, tv := range mapping {
		if tv < 0 || tv >= target.NumNodes() || used[tv] {
			return false
		}
		used[tv] = true
		if !labelMatch(pattern.NodeLabel(pv), target.NodeLabel(tv)) {
			return false
		}
	}
	for _, pe := range pattern.Edges() {
		te, ok := target.EdgeBetween(mapping[pe.U], mapping[pe.V])
		if !ok || !labelMatch(pe.Label, target.EdgeLabel(te)) {
			return false
		}
	}
	if induced {
		for pu := 0; pu < n; pu++ {
			for pv := pu + 1; pv < n; pv++ {
				if !pattern.HasEdge(pu, pv) && target.HasEdge(mapping[pu], mapping[pv]) {
					return false
				}
			}
		}
	}
	return true
}

func containsNode(s []graph.NodeID, v graph.NodeID) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func (m *matcher) search(depth int) {
	if m.stopped {
		return
	}
	if depth == len(m.order) {
		m.res.Embeddings++
		if m.fn != nil && !m.fn(m.core) {
			m.stopped = true
		}
		if m.opts.MaxEmbeddings > 0 && m.res.Embeddings >= m.opts.MaxEmbeddings {
			m.stopped = true
		}
		return
	}
	pv := m.order[depth]
	a := m.anchors[depth]
	if a.prev >= 0 {
		// Candidates are the neighbors of the already-matched anchor.
		tu := m.core[a.prev]
		m.t.VisitNeighbors(tu, func(tv graph.NodeID, e graph.EdgeID) bool {
			if m.stopped {
				return false
			}
			if !m.used[tv] && labelMatch(a.label, m.t.EdgeLabel(e)) {
				m.tryExtend(depth, pv, tv)
			}
			return !m.stopped
		})
		return
	}
	// No anchor (first node of a component): scan the root label's class
	// when an index is available, otherwise all target nodes. The class is
	// ascending, so this visits exactly the nodes the full scan would pass
	// to tryExtend and survive its label check, in the same order.
	if ix := m.opts.TargetIndex; ix != nil {
		if l := m.p.NodeLabel(pv); l != Wildcard {
			for _, tv := range ix.Nodes(l) {
				if m.stopped {
					return
				}
				if !m.used[tv] {
					m.tryExtend(depth, pv, tv)
				}
			}
			return
		}
	}
	for tv := 0; tv < m.t.NumNodes() && !m.stopped; tv++ {
		if !m.used[tv] {
			m.tryExtend(depth, pv, tv)
		}
	}
}

// tryExtend attempts to map pattern node pv to target node tv at the given
// depth and recurses on success.
func (m *matcher) tryExtend(depth int, pv, tv graph.NodeID) {
	m.res.Steps++
	if m.opts.MaxSteps > 0 && m.res.Steps > m.opts.MaxSteps {
		m.res.Truncated = true
		m.res.Reason = StopSteps
		m.stopped = true
		return
	}
	if m.ctxEvery > 0 && m.res.Steps%m.ctxEvery == 0 && m.opts.Ctx.Err() != nil {
		m.res.Truncated = true
		m.res.Reason = StopCanceled
		m.stopped = true
		return
	}
	if !labelMatch(m.p.NodeLabel(pv), m.t.NodeLabel(tv)) {
		return
	}
	if len(m.pAdj[pv]) > m.t.Degree(tv) {
		return
	}
	// Feasibility: every already-matched pattern neighbor of pv must be a
	// target neighbor of tv with a compatible edge label; under Induced,
	// additionally no already-matched pattern NON-neighbor may be adjacent
	// to tv.
	for _, pe := range m.pAdj[pv] {
		if tu := m.core[pe.to]; tu >= 0 {
			te, ok := m.t.EdgeBetween(tv, tu)
			if !ok || !labelMatch(pe.label, m.t.EdgeLabel(te)) {
				return
			}
		}
	}
	if m.opts.Induced {
		for pu, tu := range m.core {
			if tu < 0 || m.p.HasEdge(pv, graph.NodeID(pu)) {
				continue
			}
			if m.t.HasEdge(tv, tu) {
				return
			}
		}
	}
	m.core[pv] = tv
	m.used[tv] = true
	m.search(depth + 1)
	m.core[pv] = -1
	m.used[tv] = false
}

// Isomorphic reports whether a and b are isomorphic as labeled graphs.
func Isomorphic(a, b *graph.Graph) bool {
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		return false
	}
	if !sameMultiset(a.NodeLabels(), b.NodeLabels()) || !sameMultiset(a.EdgeLabels(), b.EdgeLabels()) {
		return false
	}
	if !sameDegreeSeq(a, b) {
		return false
	}
	return Exists(a, b, Options{Induced: true})
}

// Automorphisms returns the number of automorphisms of g (label-preserving
// self-isomorphisms). Intended for small pattern graphs.
func Automorphisms(g *graph.Graph) int {
	r := Count(g, g, Options{Induced: true})
	return r.Embeddings
}

// CountDistinct returns the number of distinct matches of pattern in
// target — embeddings modulo the pattern's automorphisms. This is the
// count a Results Panel reports to users: a triangle occurring once has
// one match, not six. The result is exact when neither search truncates.
func CountDistinct(pattern, target *graph.Graph, opts Options) int {
	if pattern.NumNodes() == 0 {
		return 0
	}
	aut := Automorphisms(pattern)
	if aut == 0 {
		return 0
	}
	r := Count(pattern, target, opts)
	return r.Embeddings / aut
}

func sameMultiset(a, b map[string]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func sameDegreeSeq(a, b *graph.Graph) bool {
	da, db := a.DegreeSequence(), b.DegreeSequence()
	for i := range da {
		if da[i] != db[i] {
			return false
		}
	}
	return true
}

// CoveredEdges returns, for each edge of target, whether it is covered by
// at least one embedding of pattern. Enumeration respects the opts budgets;
// with tight budgets the result is a (sound) under-approximation.
//
// Edge coverage is the quantity CATAPULT's and TATTOO's coverage measures
// aggregate: an edge (u,v) of the target is covered if some embedding maps
// a pattern edge onto it.
func CoveredEdges(pattern, target *graph.Graph, opts Options) []bool {
	covered := make([]bool, target.NumEdges())
	if pattern.NumNodes() == 0 || pattern.NumEdges() == 0 {
		return covered
	}
	pEdges := pattern.Edges()
	Enumerate(pattern, target, opts, func(mapping []graph.NodeID) bool {
		for _, pe := range pEdges {
			if te, ok := target.EdgeBetween(mapping[pe.U], mapping[pe.V]); ok {
				covered[te] = true
			}
		}
		return true
	})
	return covered
}

// CoverageFraction returns the fraction of target edges covered by
// embeddings of pattern, in [0,1].
func CoverageFraction(pattern, target *graph.Graph, opts Options) float64 {
	if target.NumEdges() == 0 {
		return 0
	}
	covered := CoveredEdges(pattern, target, opts)
	n := 0
	for _, c := range covered {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(covered))
}
