package isomorph

import (
	"context"
	"testing"
	"time"

	"repro/internal/graph"
)

// hardInstance builds a pattern/target pair whose search space is large
// enough to outlive short deadlines: an unlabeled 8-node path matched into
// an unlabeled 2D grid has a huge number of embeddings.
func hardInstance() (*graph.Graph, *graph.Graph) {
	p := graph.New("path")
	p.AddNodes(8, "")
	for i := 0; i < 7; i++ {
		p.MustAddEdge(i, i+1, "")
	}
	const side = 40
	t := graph.New("grid")
	t.AddNodes(side*side, "")
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := r*side + c
			if c+1 < side {
				t.MustAddEdge(v, v+1, "")
			}
			if r+1 < side {
				t.MustAddEdge(v, v+side, "")
			}
		}
	}
	return p, t
}

func TestEnumerateCanceledContext(t *testing.T) {
	p, g := hardInstance()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Count(p, g, Options{Ctx: ctx})
	if !res.Truncated || res.Reason != StopCanceled {
		t.Fatalf("pre-canceled context: Truncated=%v Reason=%q", res.Truncated, res.Reason)
	}
	if res.Steps != 0 {
		t.Fatalf("pre-canceled context expanded %d steps", res.Steps)
	}
}

func TestEnumerateDeadline(t *testing.T) {
	p, g := hardInstance()
	budget := 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	res := Count(p, g, Options{Ctx: ctx})
	elapsed := time.Since(start)
	if !res.Truncated || res.Reason != StopCanceled {
		t.Fatalf("deadline search: Truncated=%v Reason=%q steps=%d", res.Truncated, res.Reason, res.Steps)
	}
	// The search must stop promptly after the deadline. The polling
	// interval is ~microseconds of work; 10x headroom keeps slow CI green.
	if elapsed > 10*budget {
		t.Fatalf("search ran %v past a %v budget", elapsed, budget)
	}
	if res.Embeddings == 0 {
		t.Fatal("expected partial embeddings before the deadline on an embedding-rich instance")
	}
}

func TestStopReasonSteps(t *testing.T) {
	p, g := hardInstance()
	res := Count(p, g, Options{MaxSteps: 1000})
	if !res.Truncated || res.Reason != StopSteps {
		t.Fatalf("step budget: Truncated=%v Reason=%q", res.Truncated, res.Reason)
	}
}

func TestStopReasonNoneOnCompletion(t *testing.T) {
	p := graph.New("edge")
	p.AddNodes(2, "")
	p.MustAddEdge(0, 1, "")
	g := graph.New("tri")
	g.AddNodes(3, "")
	g.MustAddEdge(0, 1, "")
	g.MustAddEdge(1, 2, "")
	g.MustAddEdge(0, 2, "")
	ctx := context.Background()
	res := Count(p, g, Options{Ctx: ctx})
	if res.Truncated || res.Reason != StopNone {
		t.Fatalf("complete search: Truncated=%v Reason=%q", res.Truncated, res.Reason)
	}
	if res.Embeddings != 6 {
		t.Fatalf("edge in triangle: %d embeddings", res.Embeddings)
	}
	// MaxEmbeddings is a satisfied request, not a truncation.
	res = Count(p, g, Options{MaxEmbeddings: 2, Ctx: ctx})
	if res.Truncated || res.Reason != StopNone || res.Embeddings != 2 {
		t.Fatalf("capped search: %+v", res)
	}
}

func TestContextResultsMatchUncanceled(t *testing.T) {
	// A live context must not change the result of a completed search.
	p := graph.New("p")
	p.AddNodes(3, "A")
	p.MustAddEdge(0, 1, "x")
	p.MustAddEdge(1, 2, "x")
	g := graph.New("g")
	g.AddNodes(6, "A")
	for i := 0; i < 5; i++ {
		g.MustAddEdge(i, i+1, "x")
	}
	plain := Count(p, g, Options{})
	withCtx := Count(p, g, Options{Ctx: context.Background(), CheckEvery: 1})
	if plain.Embeddings != withCtx.Embeddings || plain.Steps != withCtx.Steps {
		t.Fatalf("ctx changed result: %+v vs %+v", plain, withCtx)
	}
}
