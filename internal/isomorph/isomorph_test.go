package isomorph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func pathGraph(n int, nodeLabel, edgeLabel string) *graph.Graph {
	g := graph.New("path")
	g.AddNodes(n, nodeLabel)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, edgeLabel)
	}
	return g
}

func cycleGraph(n int, nodeLabel, edgeLabel string) *graph.Graph {
	g := pathGraph(n, nodeLabel, edgeLabel)
	g.SetName("cycle")
	g.MustAddEdge(n-1, 0, edgeLabel)
	return g
}

func starGraph(leaves int, centerLabel, leafLabel string) *graph.Graph {
	g := graph.New("star")
	c := g.AddNode(centerLabel)
	for i := 0; i < leaves; i++ {
		l := g.AddNode(leafLabel)
		g.MustAddEdge(c, l, "-")
	}
	return g
}

func TestExistsBasic(t *testing.T) {
	target := cycleGraph(5, "A", "-")
	if !Exists(pathGraph(3, "A", "-"), target, Options{}) {
		t.Fatal("path3 must embed in cycle5")
	}
	if Exists(cycleGraph(3, "A", "-"), target, Options{}) {
		t.Fatal("triangle must not embed in C5")
	}
	if !Exists(cycleGraph(5, "A", "-"), target, Options{}) {
		t.Fatal("C5 must embed in itself")
	}
	if Exists(pathGraph(6, "A", "-"), target, Options{}) {
		t.Fatal("path6 has more nodes than C5")
	}
}

func TestLabelSemantics(t *testing.T) {
	target := graph.New("t")
	target.AddNode("C")
	target.AddNode("N")
	target.MustAddEdge(0, 1, "double")

	exact := graph.New("p")
	exact.AddNode("C")
	exact.AddNode("N")
	exact.MustAddEdge(0, 1, "double")
	if !Exists(exact, target, Options{}) {
		t.Fatal("exact labels must match")
	}

	wrongNode := graph.New("p")
	wrongNode.AddNode("C")
	wrongNode.AddNode("O")
	wrongNode.MustAddEdge(0, 1, "double")
	if Exists(wrongNode, target, Options{}) {
		t.Fatal("wrong node label must not match")
	}

	wrongEdge := graph.New("p")
	wrongEdge.AddNode("C")
	wrongEdge.AddNode("N")
	wrongEdge.MustAddEdge(0, 1, "single")
	if Exists(wrongEdge, target, Options{}) {
		t.Fatal("wrong edge label must not match")
	}

	wild := graph.New("p")
	wild.AddNode(Wildcard)
	wild.AddNode("N")
	wild.MustAddEdge(0, 1, Wildcard)
	if !Exists(wild, target, Options{}) {
		t.Fatal("wildcard labels must match anything")
	}
}

func TestCountEmbeddings(t *testing.T) {
	// An edge pattern A-A in a triangle has 6 embeddings (3 edges × 2
	// orientations).
	tri := cycleGraph(3, "A", "-")
	edge := pathGraph(2, "A", "-")
	if r := Count(edge, tri, Options{}); r.Embeddings != 6 {
		t.Fatalf("edge in triangle: %d embeddings, want 6", r.Embeddings)
	}
	// Path3 in triangle: 3 choices of middle × 2 orientations = 6.
	if r := Count(pathGraph(3, "A", "-"), tri, Options{}); r.Embeddings != 6 {
		t.Fatalf("path3 in triangle: %d, want 6", r.Embeddings)
	}
	// Triangle in K4: 4 triangles × 6 automorphisms = 24.
	k4 := graph.New("k4")
	k4.AddNodes(4, "A")
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.MustAddEdge(i, j, "-")
		}
	}
	if r := Count(cycleGraph(3, "A", "-"), k4, Options{}); r.Embeddings != 24 {
		t.Fatalf("triangle in K4: %d, want 24", r.Embeddings)
	}
}

func TestMaxEmbeddingsCap(t *testing.T) {
	k4 := graph.New("k4")
	k4.AddNodes(4, "A")
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.MustAddEdge(i, j, "-")
		}
	}
	r := Count(cycleGraph(3, "A", "-"), k4, Options{MaxEmbeddings: 5})
	if r.Embeddings != 5 {
		t.Fatalf("cap ignored: %d", r.Embeddings)
	}
}

func TestMaxStepsTruncates(t *testing.T) {
	big := cycleGraph(50, "A", "-")
	r := Count(pathGraph(10, "A", "-"), big, Options{MaxSteps: 5})
	if !r.Truncated {
		t.Fatal("step budget must truncate the search")
	}
	if r.Steps > 6 {
		t.Fatalf("steps = %d, budget was 5", r.Steps)
	}
}

func TestInducedVsMonomorphism(t *testing.T) {
	// Pattern: path of 3 nodes. Target: triangle. A monomorphism exists,
	// but no induced embedding (the endpoints are always adjacent).
	tri := cycleGraph(3, "A", "-")
	p3 := pathGraph(3, "A", "-")
	if !Exists(p3, tri, Options{}) {
		t.Fatal("monomorphism must exist")
	}
	if Exists(p3, tri, Options{Induced: true}) {
		t.Fatal("induced embedding must not exist")
	}
}

func TestEnumerateMappingsValid(t *testing.T) {
	target := cycleGraph(6, "A", "-")
	pattern := pathGraph(4, "A", "-")
	count := 0
	Enumerate(pattern, target, Options{}, func(mapping []graph.NodeID) bool {
		count++
		seen := map[graph.NodeID]bool{}
		for _, tv := range mapping {
			if seen[tv] {
				t.Fatal("mapping not injective")
			}
			seen[tv] = true
		}
		for _, pe := range pattern.Edges() {
			if !target.HasEdge(mapping[pe.U], mapping[pe.V]) {
				t.Fatal("mapping does not preserve edges")
			}
		}
		return true
	})
	// 6 starting points × 2 directions.
	if count != 12 {
		t.Fatalf("path4 in C6: %d embeddings, want 12", count)
	}
}

func TestEnumerateEarlyStop(t *testing.T) {
	target := cycleGraph(6, "A", "-")
	count := 0
	r := Enumerate(pathGraph(2, "A", "-"), target, Options{}, func([]graph.NodeID) bool {
		count++
		return count < 3
	})
	if count != 3 || r.Embeddings != 3 {
		t.Fatalf("early stop: fn calls=%d embeddings=%d", count, r.Embeddings)
	}
}

func TestEmptyAndOversizePatterns(t *testing.T) {
	target := pathGraph(3, "A", "-")
	empty := graph.New("e")
	r := Count(empty, target, Options{})
	if r.Embeddings != 1 {
		t.Fatalf("empty pattern: %d, want 1", r.Embeddings)
	}
	if Exists(pathGraph(4, "A", "-"), target, Options{}) {
		t.Fatal("larger pattern cannot embed")
	}
	// More edges than target.
	if Exists(cycleGraph(3, "A", "-"), pathGraph(3, "A", "-"), Options{}) {
		t.Fatal("triangle cannot embed in path")
	}
}

func TestDisconnectedPattern(t *testing.T) {
	// Two disjoint edges as pattern; target is a path of 4 nodes which
	// contains two disjoint edges: (0,1) and (2,3).
	p := graph.New("p")
	p.AddNodes(4, "A")
	p.MustAddEdge(0, 1, "-")
	p.MustAddEdge(2, 3, "-")
	target := pathGraph(4, "A", "-")
	if !Exists(p, target, Options{}) {
		t.Fatal("disjoint edges must embed in path4")
	}
	// But not in path3 (only 3 nodes... path3 has 3 nodes < 4).
	if Exists(p, pathGraph(3, "A", "-"), Options{}) {
		t.Fatal("4-node pattern in 3-node target")
	}
	// Count in path4: edge pairs {(0,1),(2,3)} only; orientations 2×2=4,
	// and the two pattern edges can swap roles ×2 = 8.
	if r := Count(p, target, Options{}); r.Embeddings != 8 {
		t.Fatalf("disjoint edges in path4: %d, want 8", r.Embeddings)
	}
}

func TestIsomorphic(t *testing.T) {
	if !Isomorphic(cycleGraph(4, "A", "-"), cycleGraph(4, "A", "-")) {
		t.Fatal("C4 ≅ C4")
	}
	if Isomorphic(cycleGraph(4, "A", "-"), pathGraph(4, "A", "-")) {
		t.Fatal("C4 ≇ P4")
	}
	// Same degree sequence, different structure: C6 vs two triangles.
	c6 := cycleGraph(6, "A", "-")
	twoTri := graph.New("2tri")
	twoTri.AddNodes(6, "A")
	twoTri.MustAddEdge(0, 1, "-")
	twoTri.MustAddEdge(1, 2, "-")
	twoTri.MustAddEdge(0, 2, "-")
	twoTri.MustAddEdge(3, 4, "-")
	twoTri.MustAddEdge(4, 5, "-")
	twoTri.MustAddEdge(3, 5, "-")
	if Isomorphic(c6, twoTri) {
		t.Fatal("C6 ≇ 2×C3")
	}
	// Label-sensitive isomorphism.
	a := pathGraph(3, "A", "-")
	b := pathGraph(3, "A", "-")
	b.SetNodeLabel(1, "B")
	if Isomorphic(a, b) {
		t.Fatal("different labels must break isomorphism")
	}
	b.SetNodeLabel(1, "A")
	b.SetEdgeLabel(0, "x")
	if Isomorphic(a, b) {
		t.Fatal("different edge labels must break isomorphism")
	}
}

func TestIsomorphicPermutedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	labels := []string{"C", "N", "O"}
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(8)
		a := graph.New("a")
		for i := 0; i < n; i++ {
			a.AddNode(labels[rng.Intn(len(labels))])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.35 {
					a.MustAddEdge(i, j, labels[rng.Intn(2)])
				}
			}
		}
		perm := rng.Perm(n)
		b := graph.New("b")
		inv := make([]int, n)
		for i, p := range perm {
			inv[p] = i
		}
		for i := 0; i < n; i++ {
			b.AddNode(a.NodeLabel(inv[i]))
		}
		for _, e := range a.Edges() {
			b.MustAddEdge(perm[e.U], perm[e.V], e.Label)
		}
		if !Isomorphic(a, b) {
			t.Fatalf("trial %d: permuted copy not isomorphic\n%s\n%s", trial, a.Dump(), b.Dump())
		}
	}
}

func TestAutomorphisms(t *testing.T) {
	cases := []struct {
		g    *graph.Graph
		want int
	}{
		{pathGraph(3, "A", "-"), 2},
		{cycleGraph(3, "A", "-"), 6},
		{cycleGraph(4, "A", "-"), 8},
		{starGraph(3, "A", "A"), 6},
		{starGraph(3, "X", "A"), 6}, // distinct center label: leaves still permute
	}
	for i, tc := range cases {
		if got := Automorphisms(tc.g); got != tc.want {
			t.Errorf("case %d (%s): automorphisms = %d, want %d", i, tc.g, got, tc.want)
		}
	}
}

func TestCountDistinct(t *testing.T) {
	// Triangle in K4: 4 distinct triangles (24 embeddings / 6 autos).
	k4 := graph.New("k4")
	k4.AddNodes(4, "A")
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			k4.MustAddEdge(i, j, "-")
		}
	}
	if n := CountDistinct(cycleGraph(3, "A", "-"), k4, Options{}); n != 4 {
		t.Fatalf("distinct triangles in K4 = %d, want 4", n)
	}
	// Edge in C5: 5 distinct edges.
	if n := CountDistinct(pathGraph(2, "A", "-"), cycleGraph(5, "A", "-"), Options{}); n != 5 {
		t.Fatalf("distinct edges in C5 = %d, want 5", n)
	}
	if CountDistinct(graph.New("e"), k4, Options{}) != 0 {
		t.Fatal("empty pattern distinct count must be 0")
	}
}

func TestCoveredEdges(t *testing.T) {
	// Target: triangle with a tail. Triangle pattern covers the 3 triangle
	// edges but not the tail edge.
	target := graph.New("t")
	target.AddNodes(4, "A")
	target.MustAddEdge(0, 1, "-")
	target.MustAddEdge(1, 2, "-")
	e02 := target.MustAddEdge(0, 2, "-")
	tail := target.MustAddEdge(2, 3, "-")

	tri := cycleGraph(3, "A", "-")
	cov := CoveredEdges(tri, target, Options{})
	if !cov[0] || !cov[1] || !cov[e02] {
		t.Fatalf("triangle edges not covered: %v", cov)
	}
	if cov[tail] {
		t.Fatal("tail edge must not be covered by triangle")
	}
	if f := CoverageFraction(tri, target, Options{}); f != 0.75 {
		t.Fatalf("coverage = %v, want 0.75", f)
	}
	// Edge pattern covers everything.
	if f := CoverageFraction(pathGraph(2, "A", "-"), target, Options{}); f != 1 {
		t.Fatalf("edge coverage = %v, want 1", f)
	}
	// Empty/zero cases.
	if f := CoverageFraction(graph.New("e"), target, Options{}); f != 0 {
		t.Fatalf("empty pattern coverage = %v", f)
	}
	if f := CoverageFraction(tri, graph.New("e"), Options{}); f != 0 {
		t.Fatalf("empty target coverage = %v", f)
	}
}

// TestPropertySubgraphAlwaysEmbeds: any connected edge-subset subgraph of a
// random graph must embed in that graph (monomorphism).
func TestPropertySubgraphAlwaysEmbeds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		labels := []string{"C", "N"}
		g := graph.New("g")
		for i := 0; i < n; i++ {
			g.AddNode(labels[rng.Intn(2)])
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.4 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		if g.NumEdges() == 0 {
			return true
		}
		// Random subset of edges.
		var edges []graph.EdgeID
		for e := 0; e < g.NumEdges(); e++ {
			if rng.Float64() < 0.5 {
				edges = append(edges, e)
			}
		}
		if len(edges) == 0 {
			edges = append(edges, 0)
		}
		sub, _ := g.SubgraphFromEdges(edges)
		return Exists(sub, g, Options{})
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyCountMatchesAutomorphismScaling: for a vertex-transitive-free
// check we verify that Count(pattern, pattern, induced) equals
// Automorphisms(pattern) by definition.
func TestPropertyCountSelfInduced(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		g := graph.New("g")
		g.AddNodes(n, "A")
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Float64() < 0.5 {
					g.MustAddEdge(i, j, "-")
				}
			}
		}
		return Automorphisms(g) == Count(g, g, Options{Induced: true}).Embeddings
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
