package isomorph

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/graph"
)

// orderedLabels runs prepare() on (pattern, target) and returns the label
// sequence of the computed matching order — white-box access for the
// determinism regression.
func orderedLabels(p, t *graph.Graph, opts Options) []string {
	m := &matcher{p: p, t: t, opts: opts}
	m.prepare()
	out := make([]string, len(m.order))
	for i, v := range m.order {
		out[i] = p.NodeLabel(v)
	}
	return out
}

// TestPrepareTieBreakByLabel is the candidate-order determinism
// regression: when two pattern nodes tie on label rarity AND degree, the
// matching order must break the tie by label (equivalently, by interned
// label id — the intern table is sorted, so string order and id order
// agree), not by node insertion order. Two drawings of the same pattern
// must therefore produce identical ordered label sequences.
func TestPrepareTieBreakByLabel(t *testing.T) {
	target := graph.New("t")
	// One node of each label: all pattern labels tie on rarity (freq 1).
	for _, l := range []string{"A", "B", "C"} {
		target.AddNode(l)
	}
	target.AddEdge(0, 1, "x")
	target.AddEdge(1, 2, "x")
	target.AddEdge(0, 2, "x")

	mk := func(perm []string) *graph.Graph {
		g := graph.New("p")
		for _, l := range perm {
			g.AddNode(l)
		}
		// Triangle: every node has degree 2 — degree never breaks the tie.
		g.AddEdge(0, 1, "x")
		g.AddEdge(1, 2, "x")
		g.AddEdge(0, 2, "x")
		return g
	}
	var want []string
	for _, perm := range [][]string{
		{"A", "B", "C"}, {"C", "A", "B"}, {"B", "C", "A"}, {"C", "B", "A"},
	} {
		got := orderedLabels(mk(perm), target, Options{})
		if want == nil {
			want = got
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("drawing %v ordered labels %v, want %v — tie-break depends on insertion order", perm, got, want)
		}
	}
	if want[0] != "A" {
		t.Fatalf("tie-break should pick the smallest label first, got %v", want)
	}
}

// TestOptionsOrderEquivalence: any permutation supplied via Options.Order
// yields exactly the embeddings the heuristic order finds — the matching
// order changes Steps, never the answer.
func TestOptionsOrderEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		target := randomGraph(rng, 12, 20)
		pattern := randomGraph(rng, 4, 5)
		base := Count(pattern, target, Options{})
		n := pattern.NumNodes()
		perm := rng.Perm(n)
		got := Count(pattern, target, Options{Order: perm})
		if got.Embeddings != base.Embeddings {
			t.Fatalf("trial %d: order %v found %d embeddings, heuristic %d",
				trial, perm, got.Embeddings, base.Embeddings)
		}
		// Enumerated mappings must be the same set.
		collect := func(opts Options) map[string]bool {
			set := map[string]bool{}
			Enumerate(pattern, target, opts, func(m []graph.NodeID) bool {
				key := ""
				for _, v := range m {
					key += string(rune('a'+v)) + ","
				}
				set[key] = true
				return true
			})
			return set
		}
		if a, b := collect(Options{}), collect(Options{Order: perm}); !reflect.DeepEqual(a, b) {
			t.Fatalf("trial %d: embedding sets differ under order %v", trial, perm)
		}
	}
}

// TestOptionsOrderInvalidIgnored: non-permutations (wrong length,
// out-of-range, duplicates) fall back to the heuristic instead of
// corrupting the search.
func TestOptionsOrderInvalidIgnored(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	target := randomGraph(rng, 10, 18)
	pattern := randomGraph(rng, 4, 4)
	base := Count(pattern, target, Options{})
	for _, bad := range [][]graph.NodeID{
		{0},
		{0, 1, 2, 99},
		{0, 0, 1, 2},
		{-1, 0, 1, 2},
		{0, 1, 2, 3, 4},
	} {
		got := Count(pattern, target, Options{Order: bad})
		if got.Embeddings != base.Embeddings {
			t.Fatalf("invalid order %v changed the answer: %d vs %d",
				bad, got.Embeddings, base.Embeddings)
		}
	}
}

// TestVerifyMapping: accepts exactly the mappings Enumerate reports and
// rejects corrupted ones.
func TestVerifyMapping(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	verified := 0
	for trial := 0; trial < 40; trial++ {
		target := randomGraph(rng, 10, 16)
		pattern := randomGraph(rng, 3, 3)
		Enumerate(pattern, target, Options{MaxEmbeddings: 8}, func(m []graph.NodeID) bool {
			verified++
			if !VerifyMapping(pattern, target, m, false) {
				t.Fatalf("trial %d: VerifyMapping rejected a real embedding %v", trial, m)
			}
			// Corrupt it: duplicate a target node (breaks injectivity).
			bad := append([]graph.NodeID(nil), m...)
			if len(bad) >= 2 {
				bad[0] = bad[1]
				if VerifyMapping(pattern, target, bad, false) {
					t.Fatalf("trial %d: VerifyMapping accepted non-injective %v", trial, bad)
				}
			}
			return true
		})
	}
	if verified == 0 {
		t.Fatal("no embeddings found across trials; generator too sparse")
	}
	// Induced semantics: a chord in the target must reject a path mapping.
	p := graph.New("p")
	p.AddNode("C")
	p.AddNode("C")
	p.AddNode("C")
	p.AddEdge(0, 1, "s")
	p.AddEdge(1, 2, "s")
	tg := graph.New("t")
	tg.AddNode("C")
	tg.AddNode("C")
	tg.AddNode("C")
	tg.AddEdge(0, 1, "s")
	tg.AddEdge(1, 2, "s")
	tg.AddEdge(0, 2, "s")
	m := []graph.NodeID{0, 1, 2}
	if !VerifyMapping(p, tg, m, false) {
		t.Fatal("monomorphism mapping rejected")
	}
	if VerifyMapping(p, tg, m, true) {
		t.Fatal("induced mapping with a chord accepted")
	}
}

// randomGraph builds a small random labeled graph (connected not
// required).
func randomGraph(rng *rand.Rand, nodes, edges int) *graph.Graph {
	labels := []string{"C", "N", "O"}
	g := graph.New("r")
	for i := 0; i < nodes; i++ {
		g.AddNode(labels[rng.Intn(len(labels))])
	}
	for i := 0; i < edges; i++ {
		u, v := rng.Intn(nodes), rng.Intn(nodes)
		if u != v {
			g.AddEdge(u, v, []string{"s", "d"}[rng.Intn(2)]) //nolint:errcheck
		}
	}
	return g
}
