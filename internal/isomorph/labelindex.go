package isomorph

import "repro/internal/graph"

// LabelIndex is a precomputed node-label inverted index over one target
// graph: label -> the ascending list of target nodes carrying it. Built
// once per corpus graph (gindex does this at index-build time) and passed
// to the matcher via Options.TargetIndex, it replaces two per-call costs:
// the NodeLabels frequency map the matcher otherwise rebuilds to rank
// pattern nodes by rarity, and the full 0..n root scan for each pattern
// component, which shrinks to just the nodes in the root label's class.
//
// A LabelIndex is immutable after Build and is only valid for the exact
// graph it was built from; rebuild after any target mutation.
type LabelIndex struct {
	nodes map[string][]graph.NodeID
	n     int
}

// BuildLabelIndex indexes the node labels of t.
func BuildLabelIndex(t *graph.Graph) *LabelIndex {
	ix := &LabelIndex{nodes: make(map[string][]graph.NodeID), n: t.NumNodes()}
	for v := 0; v < t.NumNodes(); v++ {
		l := t.NodeLabel(v)
		ix.nodes[l] = append(ix.nodes[l], graph.NodeID(v))
	}
	return ix
}

// Nodes returns the target nodes with the given label, ascending. The
// slice is shared; callers must not modify it.
func (ix *LabelIndex) Nodes(label string) []graph.NodeID { return ix.nodes[label] }

// Freq returns how many target nodes carry the label.
func (ix *LabelIndex) Freq(label string) int { return len(ix.nodes[label]) }

// NumNodes returns the node count of the indexed graph.
func (ix *LabelIndex) NumNodes() int { return ix.n }
