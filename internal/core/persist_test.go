package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
)

func TestMaintainerPersistenceRoundTrip(t *testing.T) {
	c := corpus()
	opts := smallOpts()
	m, err := NewMaintainer(c, opts)
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadMaintainer(data, m.Corpus(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Spec().Patterns.Canned) != len(m.Spec().Patterns.Canned) {
		t.Fatal("restored spec differs")
	}
	if len(back.Spec().Patterns.Basic) != 3 {
		t.Fatal("basic panel not rebuilt after load")
	}
	// The restored maintainer keeps working.
	rng := rand.New(rand.NewSource(8))
	var batch []*graph.Graph
	for i := 0; i < 6; i++ {
		batch = append(batch, datagen.Chemical(rng, fmt.Sprintf("pl-%d", i),
			datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16}))
	}
	rep, err := back.ApplyBatch(batch, back.Corpus().Names()[:2])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 6 || rep.Removed != 2 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestLoadMaintainerRejectsWrongCorpus(t *testing.T) {
	m, err := NewMaintainer(corpus(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	data, err := m.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	wrong := graph.NewCorpus()
	g := graph.New("x")
	g.AddNode("C")
	wrong.MustAdd(g)
	if _, err := LoadMaintainer(data, wrong, smallOpts()); err == nil {
		t.Fatal("wrong corpus accepted")
	}
}
