package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/graph"
	"repro/internal/isomorph"
)

func corpus() *graph.Corpus {
	return datagen.ChemicalCorpus(6, 25, datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16})
}

func smallOpts() Options {
	return Options{Budget: Budget{Count: 4, MinSize: 4, MaxSize: 8}, Seed: 1}
}

func TestBuildCorpusVQI(t *testing.T) {
	spec, err := BuildCorpusVQI(corpus(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Patterns.Canned) == 0 {
		t.Fatal("no canned patterns")
	}
	d := Describe(spec)
	if !strings.Contains(d, "data-driven") {
		t.Fatalf("Describe = %q", d)
	}
}

func TestBuildNetworkVQI(t *testing.T) {
	g := datagen.WattsStrogatz(4, 250, 6, 0.1)
	spec, err := BuildNetworkVQI(g, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Patterns.Canned) == 0 {
		t.Fatal("no canned patterns")
	}
}

func TestBuildManualVQI(t *testing.T) {
	spec, err := BuildManualVQI("chemistry", corpus())
	if err != nil {
		t.Fatal(err)
	}
	if spec.Mode != "manual" {
		t.Fatalf("mode = %s", spec.Mode)
	}
	if _, err := BuildManualVQI("bogus", corpus()); err == nil {
		t.Fatal("bogus preset accepted")
	}
}

func TestMaintainerLifecycle(t *testing.T) {
	m, err := NewMaintainer(corpus(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Spec().Patterns.Basic) != 3 {
		t.Fatal("basic panel missing")
	}
	before := len(m.Spec().Patterns.Canned)
	if before == 0 {
		t.Fatal("no canned patterns")
	}
	rng := rand.New(rand.NewSource(2))
	var batch []*graph.Graph
	for i := 0; i < 8; i++ {
		batch = append(batch, datagen.Chemical(rng, fmt.Sprintf("b-%d", i),
			datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 16}))
	}
	rep, err := m.ApplyBatch(batch, m.Corpus().Names()[:3])
	if err != nil {
		t.Fatal(err)
	}
	if rep.Added != 8 || rep.Removed != 3 {
		t.Fatalf("report = %+v", rep)
	}
	if m.Corpus().Len() != 30 {
		t.Fatalf("corpus len = %d", m.Corpus().Len())
	}
	// Attribute panel refreshed from the updated corpus.
	if len(m.Spec().Attribute.NodeLabels) == 0 {
		t.Fatal("attribute panel lost")
	}
}

// TestMaintainerIndexFollowsBatches attaches a sharded index and checks
// every batch keeps it consistent with the maintained corpus: after each
// ApplyBatch the index's answers must equal a brute-force QueryCorpus scan.
func TestMaintainerIndexFollowsBatches(t *testing.T) {
	m, err := NewMaintainer(corpus(), smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if m.Index() != nil {
		t.Fatal("index attached before EnableIndex")
	}
	const shards = 3
	m.EnableIndex(shards, 0)
	if m.Index() == nil || m.Index().NumShards() != shards {
		t.Fatalf("index = %+v", m.Index())
	}

	q := graph.New("q")
	q.AddNode("C")
	q.AddNode("C")
	q.MustAddEdge(0, 1, "s")
	rng := rand.New(rand.NewSource(9))
	for bi := 0; bi < 3; bi++ {
		var batch []*graph.Graph
		for i := 0; i < 4; i++ {
			batch = append(batch, datagen.Chemical(rng, fmt.Sprintf("ib%d-%d", bi, i),
				datagen.ChemicalOptions{MinNodes: 8, MaxNodes: 14}))
		}
		rm := m.Corpus().Names()[:2]
		rep, err := m.ApplyBatch(batch, rm)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Index == nil {
			t.Fatal("batch report missing index maintenance")
		}
		if rep.Index.Shards != shards || len(rep.Index.Rebuilt) == 0 {
			t.Fatalf("index report = %+v", rep.Index)
		}
		if rep.Index.Added != len(batch) || rep.Index.Removed != len(rm) {
			t.Fatalf("index report = %+v", rep.Index)
		}
		if m.Index().Len() != m.Corpus().Len() {
			t.Fatalf("index holds %d graphs, corpus %d", m.Index().Len(), m.Corpus().Len())
		}
		got := m.Index().Search(q, isomorph.Options{MaxEmbeddings: 1, MaxSteps: 500000}).Matches
		want := QueryCorpus(q, m.Corpus())
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("batch %d: index %v, brute force %v", bi, got, want)
		}
	}
}

func TestEvaluateQuality(t *testing.T) {
	c := corpus()
	ddSpec, err := BuildCorpusVQI(c, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	manSpec, err := BuildManualVQI("basic-only", c)
	if err != nil {
		t.Fatal(err)
	}
	dd, err := EvaluateQuality(ddSpec, c, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	man, err := EvaluateQuality(manSpec, c, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	if dd.Coverage <= man.Coverage {
		t.Fatalf("data-driven coverage %v must beat manual %v", dd.Coverage, man.Coverage)
	}
	if dd.Coverage <= 0 || dd.Coverage > 1 || dd.Diversity < 0 || dd.Diversity > 1 {
		t.Fatalf("quality out of range: %+v", dd)
	}
}

func TestEvaluateUsability(t *testing.T) {
	c := corpus()
	spec, err := BuildCorpusVQI(c, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	u, err := EvaluateUsability(spec, c, 15, 4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Queries != 15 || u.MeanSteps <= 0 || u.MeanTime <= 0 {
		t.Fatalf("usability = %+v", u)
	}
	if _, err := EvaluateUsability(spec, graph.NewCorpus(), 5, 4, 8, 1); err == nil {
		t.Fatal("empty corpus accepted")
	}
}

func TestSessionsAndQuery(t *testing.T) {
	c := corpus()
	spec, err := BuildCorpusVQI(c, smallOpts())
	if err != nil {
		t.Fatal(err)
	}
	s := OpenSession(spec, c)
	a := s.AddNode("C")
	b := s.AddNode("C")
	if err := s.AddEdge(a, b, "s"); err != nil {
		t.Fatal(err)
	}
	if res := s.Run(); len(res.MatchedGraphs) == 0 {
		t.Fatal("C-C query must match")
	}
	if names := QueryCorpus(s.Query, c); len(names) == 0 {
		t.Fatal("QueryCorpus must match")
	}
	g := datagen.BarabasiAlbert(3, 100, 2)
	ns := OpenNetworkSession(spec, g)
	na := ns.AddNode("")
	nb := ns.AddNode("")
	ns.AddEdge(na, nb, "")
	if res := ns.Run(); res.Embeddings == 0 {
		t.Fatal("network session must find embeddings")
	}
}
