// Package core is the high-level facade of the data-driven visual graph
// query interface (VQI) library. It stitches the subsystem packages into
// the handful of operations a downstream application performs:
//
//	build      — construct a data-driven VQI from a graph repository
//	            (CATAPULT for corpora of data graphs, TATTOO for a single
//	            large network) or a manual preset for comparison;
//	maintain   — keep a corpus-backed VQI's canned patterns fresh under
//	            batch updates (MIDAS);
//	interact   — open a session (Query/Results panels) over a built VQI;
//	evaluate   — measure usability (formulation steps/time) and pattern-set
//	            quality (coverage, diversity, cognitive load) of any VQI.
//
// Everything is deterministic per seed and stdlib-only.
package core

import (
	"context"
	"fmt"

	"repro/internal/catapult"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/isomorph"
	"repro/internal/midas"
	"repro/internal/par"
	"repro/internal/pattern"
	"repro/internal/simulate"
	"repro/internal/tattoo"
	"repro/internal/vqi"
)

// Budget re-exports the canned-pattern budget: how many patterns the
// Pattern Panel shows and their permissible size range in edges.
type Budget = pattern.Budget

// Weights re-exports the coverage/diversity/cognitive-load weighting.
type Weights = pattern.Weights

// Spec re-exports the serializable VQI description.
type Spec = vqi.Spec

// Options configures VQI construction.
type Options struct {
	// Budget for the canned pattern set; zero value = 10 patterns of 4-12
	// edges.
	Budget Budget
	// Weights for pattern selection; zero value = equal weights.
	Weights Weights
	// Seed drives all randomized stages.
	Seed int64
	// Workers bounds the worker pools of the parallel stages across the
	// pipelines (0 = GOMAXPROCS). Results are identical at any value.
	Workers int
}

func (o *Options) defaults() {
	if o.Budget == (Budget{}) {
		o.Budget = pattern.DefaultBudget()
	}
	if o.Weights == (Weights{}) {
		o.Weights = pattern.DefaultWeights()
	}
}

// BuildCorpusVQI constructs a data-driven VQI over a corpus of small- or
// medium-sized data graphs using the CATAPULT pipeline.
func BuildCorpusVQI(c *graph.Corpus, opts Options) (*Spec, error) {
	spec, _, err := BuildCorpusVQICtx(context.Background(), c, opts)
	return spec, err
}

// BuildCorpusVQICtx is BuildCorpusVQI under a context/deadline. If the
// budget runs out mid-build the spec holds the best pattern set selected
// so far and truncated reports true.
func BuildCorpusVQICtx(ctx context.Context, c *graph.Corpus, opts Options) (spec *Spec, truncated bool, err error) {
	opts.defaults()
	spec, res, err := vqi.BuildFromCorpusCtx(ctx, c, catapult.Config{
		Budget:  opts.Budget,
		Weights: opts.Weights,
		Seed:    opts.Seed,
		Workers: opts.Workers,
	})
	if res != nil {
		truncated = res.Truncated
	}
	return spec, truncated, err
}

// BuildNetworkVQI constructs a data-driven VQI over a single large network
// using the TATTOO pipeline.
func BuildNetworkVQI(g *graph.Graph, opts Options) (*Spec, error) {
	spec, _, err := BuildNetworkVQICtx(context.Background(), g, opts)
	return spec, err
}

// BuildNetworkVQICtx is BuildNetworkVQI under a context/deadline,
// degrading like BuildCorpusVQICtx.
func BuildNetworkVQICtx(ctx context.Context, g *graph.Graph, opts Options) (spec *Spec, truncated bool, err error) {
	opts.defaults()
	spec, res, err := vqi.BuildFromNetworkCtx(ctx, g, tattoo.Config{
		Budget:  opts.Budget,
		Weights: opts.Weights,
		Seed:    opts.Seed,
		Workers: opts.Workers,
	})
	if res != nil {
		truncated = res.Truncated
	}
	return spec, truncated, err
}

// BuildManualVQI constructs a manual (hard-coded pattern set) VQI for
// comparison: preset "basic-only" or "chemistry".
func BuildManualVQI(preset string, c *graph.Corpus) (*Spec, error) {
	return vqi.BuildManual(vqi.ManualPreset(preset), c)
}

// Maintainer keeps a corpus-backed VQI fresh under batch updates using
// MIDAS. With EnableIndex it additionally maintains a sharded
// filter-verify index over the same corpus, rebuilding only the shards a
// batch touches.
type Maintainer struct {
	state *midas.State
	spec  *Spec
	seed  int64

	idx        *gindex.Sharded // nil until EnableIndex
	idxWorkers int
}

// NewMaintainer builds the VQI and its maintenance state in one pass. The
// corpus is subsequently owned by the maintainer: mutate it only through
// ApplyBatch.
func NewMaintainer(c *graph.Corpus, opts Options) (*Maintainer, error) {
	opts.defaults()
	st, err := midas.Build(c, midas.Config{Catapult: catapult.Config{
		Budget:  opts.Budget,
		Weights: opts.Weights,
		Seed:    opts.Seed,
		Workers: opts.Workers,
	}})
	if err != nil {
		return nil, err
	}
	stats := c.Stats()
	spec := &Spec{
		Name: "maintained-corpus-vqi",
		Mode: vqi.DataDriven,
		Attribute: vqi.AttributePanel{
			NodeLabels: stats.SortedNodeLabels(),
			EdgeLabels: stats.SortedEdgeLabels(),
		},
	}
	m := &Maintainer{state: st, spec: spec, seed: opts.Seed}
	m.refreshSpec()
	return m, nil
}

func (m *Maintainer) refreshSpec() {
	// Rebuild the basic panel alongside the canned one so a fresh spec is
	// complete.
	if len(m.spec.Patterns.Basic) == 0 {
		for i, p := range pattern.Basic() {
			m.spec.Patterns.Basic = append(m.spec.Patterns.Basic, vqiPatternSpec(p, m.seed+int64(i)))
		}
	}
	m.spec.RefreshPatterns(m.state.Patterns(), m.seed+100)
	stats := m.state.Corpus().Stats()
	m.spec.Attribute = vqi.AttributePanel{
		NodeLabels: stats.SortedNodeLabels(),
		EdgeLabels: stats.SortedEdgeLabels(),
	}
}

// vqiPatternSpec adapts the unexported spec constructor via RefreshPatterns
// on a scratch spec.
func vqiPatternSpec(p *pattern.Pattern, seed int64) vqi.PatternSpec {
	var scratch Spec
	scratch.RefreshPatterns([]*pattern.Pattern{p}, seed)
	return scratch.Patterns.Canned[0]
}

// Spec returns the current VQI spec (valid until the next ApplyBatch).
func (m *Maintainer) Spec() *Spec { return m.spec }

// Corpus returns the maintained corpus.
func (m *Maintainer) Corpus() *graph.Corpus { return m.state.Corpus() }

// EnableIndex attaches a sharded filter-verify index (gindex.Sharded) to
// the maintainer: it is built once over the current corpus and from then
// on maintained incrementally by ApplyBatch — each batch rebuilds only the
// shards owning touched graphs, reported in BatchReport.Index. shards<=0
// means GOMAXPROCS; workers bounds the per-shard build pool.
func (m *Maintainer) EnableIndex(shards, workers int) {
	m.idxWorkers = workers
	m.idx = gindex.BuildSharded(m.state.Corpus(), shards, workers)
}

// Index returns the maintained sharded index, or nil if EnableIndex was
// never called. The returned value is immutable; ApplyBatch installs a
// fresh one.
func (m *Maintainer) Index() *gindex.Sharded { return m.idx }

// BatchReport is MIDAS's per-batch report plus, when an index is attached
// (EnableIndex), the incremental index-maintenance report.
type BatchReport struct {
	midas.Report
	// Index describes the sharded-index maintenance for this batch: how
	// many shards exist and which were rebuilt. nil when no index is
	// attached.
	Index *gindex.UpdateReport
}

// ApplyBatch ingests added graphs and removes the named ones, maintains
// the canned pattern set, and refreshes the spec.
func (m *Maintainer) ApplyBatch(added []*graph.Graph, removedNames []string) (*BatchReport, error) {
	return m.ApplyBatchCtx(context.Background(), added, removedNames)
}

// ApplyBatchCtx is ApplyBatch under a context/deadline. Corpus bookkeeping
// always completes (the state stays consistent); only pattern maintenance
// is cut short, reported via BatchReport.Truncated.
func (m *Maintainer) ApplyBatchCtx(ctx context.Context, added []*graph.Graph, removedNames []string) (*BatchReport, error) {
	rep, err := m.state.ApplyCtx(ctx, added, removedNames)
	if err != nil {
		return nil, err
	}
	m.refreshSpec()
	out := &BatchReport{Report: *rep}
	if m.idx != nil {
		// Index maintenance mirrors the batch MIDAS just applied, touching
		// only the shards owning added or removed graphs. It is
		// consistency-critical like the corpus bookkeeping, so it does not
		// degrade under the context.
		next, irep, err := m.idx.ApplyBatch(added, removedNames)
		if err != nil {
			return nil, fmt.Errorf("core: index maintenance: %v", err)
		}
		m.idx = next
		out.Index = irep
	}
	return out, nil
}

// MarshalState serializes the maintenance state (cluster membership,
// features, patterns, GFD) for persistence between runs. The corpus is
// persisted separately (gio.SaveCorpus).
func (m *Maintainer) MarshalState() ([]byte, error) { return m.state.Marshal() }

// LoadMaintainer restores a maintainer from a serialized state and the
// corpus it was saved against.
func LoadMaintainer(data []byte, c *graph.Corpus, opts Options) (*Maintainer, error) {
	opts.defaults()
	st, err := midas.Load(data, c)
	if err != nil {
		return nil, err
	}
	spec := &Spec{Name: "maintained-corpus-vqi", Mode: vqi.DataDriven}
	m := &Maintainer{state: st, spec: spec, seed: opts.Seed}
	m.refreshSpec()
	return m, nil
}

// Quality summarizes a VQI's canned-pattern quality over its data source.
type Quality struct {
	Coverage      float64 // fraction of source edges covered by the canned set
	Diversity     float64 // 1 - mean pairwise similarity
	CognitiveLoad float64 // mean normalized load (lower is better)
	SetScore      float64 // weighted combination
}

// EvaluateQuality measures a spec's canned patterns against a corpus.
func EvaluateQuality(spec *Spec, c *graph.Corpus, opts Options) (Quality, error) {
	opts.defaults()
	var canned []*pattern.Pattern
	for _, ps := range spec.Patterns.Canned {
		g, err := ps.PatternGraph()
		if err != nil {
			return Quality{}, err
		}
		canned = append(canned, pattern.New(g, ps.Source))
	}
	mo := pattern.MatchOptions()
	q := Quality{
		Coverage:      pattern.SetEdgeCoverage(canned, c, mo),
		Diversity:     pattern.SetDiversity(canned),
		CognitiveLoad: pattern.SetCognitiveLoad(canned, opts.Budget),
	}
	q.SetScore = opts.Weights.Coverage*q.Coverage +
		opts.Weights.Diversity*q.Diversity -
		opts.Weights.CogLoad*q.CognitiveLoad
	return q, nil
}

// Usability re-exports the simulated usability summary.
type Usability = simulate.Summary

// EvaluateUsability simulates a query workload against the spec's full
// pattern panel and reports mean formulation steps and time.
func EvaluateUsability(spec *Spec, c *graph.Corpus, queries, minNodes, maxNodes int, seed int64) (Usability, error) {
	w, err := simulate.CorpusWorkload(c, queries, minNodes, maxNodes, seed)
	if err != nil {
		return Usability{}, err
	}
	panel, err := spec.AllPatterns()
	if err != nil {
		return Usability{}, err
	}
	return simulate.Evaluate(w, panel, simulate.DefaultCostModel()), nil
}

// OpenSession opens an interactive Query/Results session over a corpus.
func OpenSession(spec *Spec, c *graph.Corpus) *vqi.Session {
	return vqi.NewSession(spec, vqi.DataSource{Corpus: c})
}

// OpenNetworkSession opens a session over a single network.
func OpenNetworkSession(spec *Spec, g *graph.Graph) *vqi.Session {
	return vqi.NewSession(spec, vqi.DataSource{Corpus: pattern.SingletonCorpus(g), Network: true})
}

// QueryCorpus runs a one-off subgraph query against a corpus and returns
// the names of matching graphs — the programmatic equivalent of the
// Results Panel.
func QueryCorpus(q *graph.Graph, c *graph.Corpus) []string {
	matched := par.Map(c.Len(), 0, func(i int) bool {
		return isomorph.Exists(q, c.Graph(i), isomorph.Options{MaxEmbeddings: 1, MaxSteps: 500000})
	})
	var out []string
	for i, m := range matched {
		if m {
			out = append(out, c.Graph(i).Name())
		}
	}
	return out
}

// Describe returns a one-paragraph summary of a spec for CLI output.
func Describe(spec *Spec) string {
	return fmt.Sprintf("%s (%s): %d node labels, %d edge labels, %d basic + %d canned patterns",
		spec.Name, spec.Mode,
		len(spec.Attribute.NodeLabels), len(spec.Attribute.EdgeLabels),
		len(spec.Patterns.Basic), len(spec.Patterns.Canned))
}
