package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ann"
	"repro/internal/gindex"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/store"
)

// DurableIndexOptions configures OpenDurableIndex.
type DurableIndexOptions struct {
	// Shards is the sharded-index shard count (<=0 = GOMAXPROCS).
	Shards int
	// Workers bounds index build/rebuild pools (0 = GOMAXPROCS).
	Workers int
	// ANN, when non-nil, enables per-shard similarity state
	// (gindex.BuildShardedANN) with this configuration.
	ANN *ann.Config
	// Store configures the persistence engine (fsync policy, fault
	// injection).
	Store store.Options
}

// BootReport describes what OpenDurableIndex reconstructed.
type BootReport struct {
	// Seeded reports that the data directory was empty and the provided
	// seed corpus became the initial snapshot.
	Seeded bool
	// Replayed is the number of WAL batches re-applied on top of the
	// snapshot.
	Replayed int
	// TailTruncated and SnapshotsSkipped surface the corruption the
	// recovery degraded around (see store.Recovery).
	TailTruncated    bool
	SnapshotsSkipped int
	// Seq is the recovered durable sequence number.
	Seq uint64
	// EpochsRestored reports that the snapshot's per-shard epochs were
	// carried over (shard counts matched); false means the index restarted
	// at epoch zero, which only costs cache warmth, never correctness.
	EpochsRestored bool
	// SectionsRestored / SectionsRebuilt split the shards between those
	// reconstructed from persisted index sections (no graph decoded) and
	// those rebuilt from graphs. Both zero on a non-mmap boot, where no
	// sections are surfaced.
	SectionsRestored int
	SectionsRebuilt  int
	// Mapped reports that the corpus is served from an OS mapping of the
	// snapshot (store.Recovery.Mapped).
	Mapped bool
}

// DurableIndex is a sharded filter-verify index bound to a crash-safe
// store: every ApplyBatch is durably logged before it is applied, and
// OpenDurableIndex reconstructs the exact pre-crash index — same corpus,
// same per-shard epochs — from the snapshot + WAL suffix. It is the
// library-level recovery path; vqiserve wires the same store into its own
// serving loop.
type DurableIndex struct {
	mu     sync.Mutex
	st     *store.Store
	opts   DurableIndexOptions
	corpus *graph.Corpus
	idx    *gindex.Sharded
}

// OpenDurableIndex mounts dir and rebuilds the index from durable state.
// When the directory holds no snapshot, seed becomes the initial one
// (seed == nil with an empty directory is an error). Recovery = newest
// valid snapshot → index build → epoch restore → WAL replay through
// ApplyBatch, so the result is equivalent to an instance that applied
// every durable batch live and never crashed.
func OpenDurableIndex(ctx context.Context, dir string, seed *graph.Corpus, opts DurableIndexOptions) (*DurableIndex, *BootReport, error) {
	st, rec, err := store.Open(ctx, dir, opts.Store)
	if err != nil {
		return nil, nil, err
	}
	rep := &BootReport{
		TailTruncated:    rec.TailTruncated,
		SnapshotsSkipped: rec.SnapshotsSkipped,
		Seq:              rec.LastSeq(),
	}
	corpus := rec.Corpus
	if corpus == nil {
		if seed == nil {
			st.Close()
			return nil, nil, fmt.Errorf("core: data directory %s is empty and no seed corpus was provided", dir)
		}
		corpus = seed
		// Seed refuses a directory that holds WAL records without any
		// snapshot — that is lost state, not a fresh directory.
		if err := st.Seed(corpus); err != nil {
			st.Close()
			return nil, nil, fmt.Errorf("core: writing seed snapshot: %w", err)
		}
		rep.Seeded = true
	}

	rep.Mapped = rec.Mapped
	_, span := obs.StartSpan(ctx, "core.boot.build")
	var idx *gindex.Sharded
	k := opts.Shards
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if len(rec.Sections) > 0 && rec.Meta.Shards == k {
		// Persisted per-shard index sections whose epoch matches the
		// recovered snapshot restore without decoding a single graph; any
		// shard whose section is missing, stale, or invalid is rebuilt from
		// graphs by RestoreSharded itself.
		secs := make(map[int][]byte, len(rec.Sections))
		for _, s := range rec.Sections {
			if s.Shard < len(rec.Meta.Epochs) && s.Epoch == rec.Meta.Epochs[s.Shard] {
				secs[s.Shard] = s.Data
			}
		}
		var rr *gindex.RestoreReport
		idx, rr = gindex.RestoreSharded(corpus, k, opts.Workers, opts.ANN, secs)
		rep.SectionsRestored, rep.SectionsRebuilt = rr.Restored, rr.Rebuilt
	} else if opts.ANN != nil {
		idx = gindex.BuildShardedANN(corpus, opts.Shards, opts.Workers, *opts.ANN)
	} else {
		idx = gindex.BuildSharded(corpus, opts.Shards, opts.Workers)
	}
	if rec.Meta.Shards == idx.NumShards() {
		// Same shard count as the snapshotted instance: carry its epochs so
		// epoch-keyed caches and equivalence checks line up exactly.
		idx.RestoreEpochs(rec.Meta.Epochs)
		rep.EpochsRestored = true
	}
	span.End()

	_, span = obs.StartSpan(ctx, "core.boot.replay")
	for _, b := range rec.Batches {
		next, _, err := idx.ApplyBatch(b.Added, b.Removed)
		if err != nil {
			span.End()
			st.Close()
			return nil, nil, fmt.Errorf("core: replaying WAL batch seq %d: %w", b.Seq, err)
		}
		corpus, err = store.ApplyToCorpus(corpus, b)
		if err != nil {
			span.End()
			st.Close()
			return nil, nil, err
		}
		idx = next
		rep.Replayed++
	}
	span.End()

	return &DurableIndex{st: st, opts: opts, corpus: corpus, idx: idx}, rep, nil
}

// Corpus returns the current corpus snapshot (immutable; ApplyBatch
// installs a fresh one).
func (di *DurableIndex) Corpus() *graph.Corpus {
	di.mu.Lock()
	defer di.mu.Unlock()
	return di.corpus
}

// Index returns the current index snapshot (immutable; ApplyBatch
// installs a fresh one).
func (di *DurableIndex) Index() *gindex.Sharded {
	di.mu.Lock()
	defer di.mu.Unlock()
	return di.idx
}

// LastSeq returns the highest durable sequence number.
func (di *DurableIndex) LastSeq() uint64 { return di.st.LastSeq() }

// ApplyBatch validates, durably logs, then applies one batch, returning
// the record's sequence number and the index-maintenance report. The
// ordering is the durability contract: validation first (a logged record
// must always replay cleanly), the WAL append second (when it fails the
// batch is NOT applied — memory must never get ahead of the log), the
// in-memory apply last. A batch is acknowledged only by a nil error, at
// which point it has reached the WAL under the store's fsync policy.
func (di *DurableIndex) ApplyBatch(added []*graph.Graph, removedNames []string) (uint64, *gindex.UpdateReport, error) {
	di.mu.Lock()
	defer di.mu.Unlock()
	if err := di.idx.ValidateBatch(added, removedNames); err != nil {
		return 0, nil, err
	}
	seq, err := di.st.Append(store.Batch{Added: added, Removed: removedNames})
	if err != nil {
		return 0, nil, err
	}
	next, irep, err := di.idx.ApplyBatch(added, removedNames)
	if err != nil {
		// Unreachable by construction (ValidateBatch passed), but if it ever
		// trips, the durable record is still replayable and in-memory state
		// is simply behind — the safe side of the invariant.
		return seq, nil, err
	}
	nc, err := store.ApplyToCorpus(di.corpus, store.Batch{Added: added, Removed: removedNames})
	if err != nil {
		return seq, nil, err
	}
	di.idx = next
	di.corpus = nc
	return seq, irep, nil
}

// Compact folds the WAL into a fresh snapshot of the current corpus,
// index metadata, and serialized per-shard index sections (the mmap boot
// path restores shards from them instead of rebuilding): after it
// returns, recovery needs only the new snapshot (plus any batches
// appended later). The previous snapshot is retained as the corruption
// fallback; older ones, stale temp files, and fully-covered WAL records
// are pruned — the report says what was reclaimed.
func (di *DurableIndex) Compact() (store.PruneReport, error) {
	di.mu.Lock()
	defer di.mu.Unlock()
	return di.st.Compact(di.corpus, di.idx.NumShards(), di.idx.Epochs(), di.idx.EncodeSections()...)
}

// Close releases the store. The index stays readable; further ApplyBatch
// calls fail.
func (di *DurableIndex) Close() error { return di.st.Close() }

// Abandon releases the store's OS resources without flushing — the
// crash-test stand-in for a process death (see store.Store.Abandon).
func (di *DurableIndex) Abandon() { di.st.Abandon() }
